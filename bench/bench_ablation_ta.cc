// Ablation: the Threshold Algorithm baseline the paper argues against
// (Sections 4.1 / 5.1) — measured rather than asserted.
//
// TA needs the full |D| x |C| distance postings precomputed offline; we
// build them on a deliberately small world (this is the point: the
// space/precompute cost is the reason the paper rules TA out at UMLS
// scale) and compare RDS query times and update cost against kNDS and
// the exhaustive baseline. TA does not support SDS at all.

#include <cstdio>
#include <iostream>
#include <memory>

#include "bench/bench_common.h"
#include "core/exhaustive_ranker.h"
#include "core/knds.h"
#include "core/ta_ranker.h"
#include "corpus/query_gen.h"
#include "index/precomputed_postings.h"
#include "util/table_printer.h"
#include "util/timer.h"

int main() {
  // TA's precompute is O(|D| * |C|) space; keep this world small no
  // matter what ECDR_BENCH_SCALE says.
  const double scale = std::min(0.02, ecdr::bench::ScaleFromEnv());
  const std::uint32_t queries = ecdr::bench::QueriesFromEnv();
  ecdr::bench::Testbed testbed =
      ecdr::bench::BuildTestbed(scale, /*include_patient=*/false);
  ecdr::bench::PrintTestbedBanner(
      "Ablation: TA on precomputed distance postings vs kNDS (RDS only)",
      testbed, scale, queries);
  const ecdr::bench::Collection& radio = testbed.radio;

  // Offline cost TA pays and kNDS avoids.
  const ecdr::index::PrecomputedPostings postings(*radio.corpus);
  std::printf(
      "TA offline precompute: %.2f s, %.1f MiB for %u docs x %u concepts\n"
      "(kNDS needs neither; it also supports on-the-fly document inserts)\n\n",
      postings.build_seconds(),
      static_cast<double>(postings.memory_bytes()) / (1024.0 * 1024.0),
      radio.corpus->num_documents(), testbed.ontology->num_concepts());

  ecdr::ontology::AddressEnumerator enumerator(*testbed.ontology);
  ecdr::core::Drc drc(*testbed.ontology, &enumerator);
  ecdr::core::TaRanker ta(*radio.corpus, postings);
  ecdr::core::ExhaustiveRanker exhaustive(*radio.corpus, &drc);
  ecdr::core::KndsOptions options;
  options.error_threshold = radio.rds_error_threshold;
  ecdr::core::Knds knds(*radio.corpus, *radio.inverted, &drc, options);

  ecdr::util::TablePrinter table({"nq", "k", "TA ms", "TA docs scored",
                                  "kNDS ms", "exhaustive ms"});
  for (const std::uint32_t nq : {3u, 5u, 10u}) {
    for (const std::uint32_t k : {10u, 100u}) {
      const auto rds_queries = ecdr::corpus::GenerateRdsQueries(
          *radio.corpus, queries, nq, 900 + nq);
      double ta_ms = 0.0;
      double ta_docs = 0.0;
      double knds_ms = 0.0;
      double exhaustive_ms = 0.0;
      for (const auto& query : rds_queries) {
        const auto ta_result = ta.TopKRelevant(query, k);
        ECDR_CHECK(ta_result.ok());
        ta_ms += ta.last_stats().seconds * 1e3;
        ta_docs += static_cast<double>(ta.last_stats().documents_scored);

        const auto knds_result = knds.SearchRds(query, k);
        ECDR_CHECK(knds_result.ok());
        knds_ms += knds.last_stats().total_seconds * 1e3;

        const auto exhaustive_result = exhaustive.TopKRelevant(query, k);
        ECDR_CHECK(exhaustive_result.ok());
        exhaustive_ms += exhaustive.last_stats().seconds * 1e3;

        // All three agree on the top-k distance multiset.
        ECDR_CHECK_EQ(ta_result->size(), knds_result->size());
        for (std::size_t i = 0; i < ta_result->size(); ++i) {
          ECDR_CHECK((*ta_result)[i].distance == (*knds_result)[i].distance);
        }
      }
      const double n = queries;
      table.AddRow({std::to_string(nq), std::to_string(k),
                    ecdr::util::TablePrinter::FormatDouble(ta_ms / n, 2),
                    ecdr::util::TablePrinter::FormatDouble(ta_docs / n, 1),
                    ecdr::util::TablePrinter::FormatDouble(knds_ms / n, 2),
                    ecdr::util::TablePrinter::FormatDouble(
                        exhaustive_ms / n, 2)});
    }
  }
  table.Print(std::cout);

  // The update cost asymmetry (Section 1): adding one document.
  std::printf("\nincremental insert of one document:\n");
  {
    auto doc = radio.corpus->document(0);
    // kNDS-side update: append to corpus + inverted index.
    ecdr::util::WallTimer timer;
    // (Measured on copies so the shared testbed stays intact.)
    ecdr::corpus::Corpus scratch(*testbed.ontology);
    ECDR_CHECK(scratch.AddDocument(doc).ok());
    ecdr::index::InvertedIndex scratch_index(scratch);
    const double knds_update_ms = timer.ElapsedMillis();
    // TA-side update: recompute the new document's distance to every
    // concept (one multi-source BFS) and merge into |C| sorted lists —
    // approximated here by rebuilding postings for a 1-doc corpus.
    timer.Restart();
    const ecdr::index::PrecomputedPostings rebuilt(scratch);
    const double ta_update_ms = timer.ElapsedMillis();
    std::printf("  kNDS structures: %.3f ms;  TA postings: %.3f ms\n",
                knds_update_ms, ta_update_ms);
  }
  return 0;
}
