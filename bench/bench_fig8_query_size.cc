// Reproduces Figure 8: RDS query time vs query size nq, kNDS vs the
// exhaustive baseline (both using DRC as the distance component, as in
// the paper), on PATIENT (8a) and RADIO (8b). k = 10, eps at each
// collection's default (0.5 / 0.9).
//
// Shape to reproduce: both grow roughly n log n in nq; kNDS wins by a
// large factor everywhere.

#include <cstdio>
#include <iostream>
#include <vector>

#include "bench/bench_common.h"
#include "core/exhaustive_ranker.h"
#include "core/knds.h"
#include "corpus/query_gen.h"
#include "util/table_printer.h"

namespace {

using ecdr::bench::Collection;
using ecdr::util::TablePrinter;

constexpr std::uint32_t kDefaultK = 10;

void RunCollection(const ecdr::ontology::Ontology& ontology,
                   const Collection& collection, std::uint32_t queries,
                   TablePrinter* table) {
  ecdr::ontology::AddressEnumerator enumerator(ontology);
  ecdr::core::Drc drc(ontology, &enumerator);
  ecdr::core::ExhaustiveRanker baseline(*collection.corpus, &drc);
  ecdr::core::KndsOptions options;
  options.error_threshold = collection.rds_error_threshold;
  ecdr::core::Knds knds(*collection.corpus, *collection.inverted, &drc,
                        options);

  for (const std::uint32_t nq : {1u, 3u, 5u, 10u}) {
    const auto rds_queries = ecdr::corpus::GenerateRdsQueries(
        *collection.corpus, queries, nq, 500 + nq);
    double knds_ms = 0.0;
    double knds_drc_ms = 0.0;
    double baseline_ms = 0.0;
    for (const auto& query : rds_queries) {
      const auto got = knds.SearchRds(query, kDefaultK);
      ECDR_CHECK(got.ok());
      knds_ms += knds.last_stats().total_seconds * 1e3;
      knds_drc_ms += knds.last_stats().distance_seconds * 1e3;
      const auto want = baseline.TopKRelevant(query, kDefaultK);
      ECDR_CHECK(want.ok());
      baseline_ms += baseline.last_stats().seconds * 1e3;
      // Sanity: identical top-k distance multisets.
      ECDR_CHECK_EQ(got->size(), want->size());
      for (std::size_t i = 0; i < got->size(); ++i) {
        ECDR_CHECK((*got)[i].distance == (*want)[i].distance);
      }
    }
    const double n = queries;
    table->AddRow(
        {collection.name, std::to_string(nq),
         TablePrinter::FormatDouble(knds_ms / n, 2),
         TablePrinter::FormatDouble(knds_drc_ms / n, 2),
         TablePrinter::FormatDouble(baseline_ms / n, 2),
         TablePrinter::FormatDouble(baseline_ms / std::max(1e-9, knds_ms),
                                    1)});
  }
}

}  // namespace

int main() {
  const double scale = ecdr::bench::ScaleFromEnv();
  const std::uint32_t queries = ecdr::bench::QueriesFromEnv();
  ecdr::bench::Testbed testbed = ecdr::bench::BuildTestbed(scale);
  ecdr::bench::PrintTestbedBanner(
      "Figure 8: RDS query time vs query size nq (kNDS vs exhaustive "
      "baseline, k=10)",
      testbed, scale, queries);

  TablePrinter table({"collection", "nq", "kNDS ms", "kNDS DRC ms",
                      "baseline ms", "speedup x"});
  RunCollection(*testbed.ontology, testbed.patient, queries, &table);
  RunCollection(*testbed.ontology, testbed.radio, queries, &table);
  table.Print(std::cout);
  std::printf(
      "\nexpected shape (paper Fig. 8): times grow ~ n log n with nq; kNDS\n"
      "beats the baseline by a large margin at every query size.\n");
  return 0;
}
