// Shared testbed for the benchmark harness.
//
// Every bench binary reproduces one table or figure from the paper's
// Section 6 on the same substrate: a synthetic SNOMED-CT-like ontology
// and synthetic PATIENT / RADIO corpora (see DESIGN.md for the
// substitution rationale). Scale knobs:
//
//   ECDR_BENCH_SCALE    fraction of the paper's sizes (default 0.08;
//                       1.0 = 296,433 concepts, 983 + 12,373 documents)
//   ECDR_BENCH_QUERIES  queries per measured configuration (default 8;
//                       the paper used 100 for ranking, 5000 for Fig. 6)
//
// Corpora are passed through the paper's concept filters (depth >= 4,
// collection frequency <= mu + sigma) before indexing, as in Section 6.1.

#ifndef ECDR_BENCH_BENCH_COMMON_H_
#define ECDR_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "corpus/corpus.h"
#include "corpus/filters.h"
#include "corpus/generator.h"
#include "index/inverted_index.h"
#include "ontology/dewey.h"
#include "ontology/generator.h"
#include "ontology/ontology.h"
#include "util/macros.h"

namespace ecdr::bench {

inline double ScaleFromEnv() {
  const char* raw = std::getenv("ECDR_BENCH_SCALE");
  if (raw == nullptr) return 0.08;
  const double value = std::atof(raw);
  ECDR_CHECK(value > 0.0 && value <= 1.0);
  return value;
}

inline std::uint32_t QueriesFromEnv() {
  const char* raw = std::getenv("ECDR_BENCH_QUERIES");
  if (raw == nullptr) return 8;
  const int value = std::atoi(raw);
  ECDR_CHECK(value > 0);
  return static_cast<std::uint32_t>(value);
}

/// Error-threshold defaults. The paper picked 0.5 (PATIENT) and 0.9
/// (RADIO) from its sensitivity study on a MySQL-backed deployment,
/// where graph traversal paid I/O. This build's indexes are memory-
/// resident, so the same study (bench_fig7_error_threshold) puts the
/// optimum lower; these values are the in-memory optima. The paper's
/// regime is reproduced in Fig. 7's simulated-I/O sweep.
inline constexpr double kPatientRdsErrorThreshold = 0.25;
inline constexpr double kPatientSdsErrorThreshold = 0.0;
inline constexpr double kRadioRdsErrorThreshold = 0.25;
inline constexpr double kRadioSdsErrorThreshold = 0.0;

/// One corpus with its indexes and metadata.
struct Collection {
  std::string name;
  double rds_error_threshold;
  double sds_error_threshold;
  std::unique_ptr<corpus::Corpus> corpus;
  std::unique_ptr<index::InvertedIndex> inverted;
};

/// Ontology + PATIENT + RADIO, built deterministically at the given
/// scale.
struct Testbed {
  std::unique_ptr<ontology::Ontology> ontology;
  Collection patient;
  Collection radio;

  Collection& collection(bool patient_side) {
    return patient_side ? patient : radio;
  }
};

inline Testbed BuildTestbed(double scale, bool include_patient = true,
                            bool include_radio = true) {
  Testbed testbed;
  ontology::OntologyGeneratorConfig ontology_config;
  ontology_config.num_concepts = std::max<std::uint32_t>(
      2'000, static_cast<std::uint32_t>(296'433 * scale));
  ontology_config.seed = 2014;  // Calibrated: depth ~14.4, ~10.3 addresses/concept at default scale.
  auto built = ontology::GenerateOntology(ontology_config);
  ECDR_CHECK(built.ok());
  testbed.ontology =
      std::make_unique<ontology::Ontology>(std::move(built).value());

  const auto make_collection = [&](Collection* out, const std::string& name,
                                   corpus::CorpusGeneratorConfig config,
                                   double rds_eps, double sds_eps) {
    auto generated = corpus::GenerateCorpus(*testbed.ontology, config);
    ECDR_CHECK(generated.ok());
    // Section 6.1 filters: depth >= 4, cf <= mu + sigma.
    corpus::ConceptFilterOptions filter_options;
    corpus::ConceptFilterReport report;
    auto filtered =
        corpus::ApplyConceptFilters(*generated, filter_options, &report);
    ECDR_CHECK(filtered.ok());
    out->name = name;
    out->rds_error_threshold = rds_eps;
    out->sds_error_threshold = sds_eps;
    out->corpus =
        std::make_unique<corpus::Corpus>(std::move(filtered).value());
    out->inverted = std::make_unique<index::InvertedIndex>(*out->corpus);
  };

  if (include_patient) {
    make_collection(&testbed.patient, "PATIENT",
                    corpus::PatientLikeConfig(scale, /*seed=*/17),
                    kPatientRdsErrorThreshold, kPatientSdsErrorThreshold);
  }
  if (include_radio) {
    make_collection(&testbed.radio, "RADIO",
                    corpus::RadioLikeConfig(scale, /*seed=*/18),
                    kRadioRdsErrorThreshold, kRadioSdsErrorThreshold);
  }
  return testbed;
}

inline void PrintTestbedBanner(const char* title, const Testbed& testbed,
                               double scale, std::uint32_t queries) {
  std::printf("== %s ==\n", title);
  std::printf(
      "substrate: synthetic SNOMED-like ontology, %u concepts, %llu edges "
      "(scale=%.3f, queries/config=%u)\n",
      testbed.ontology->num_concepts(),
      static_cast<unsigned long long>(testbed.ontology->num_edges()), scale,
      queries);
  for (const Collection* collection : {&testbed.patient, &testbed.radio}) {
    if (collection->corpus == nullptr) continue;
    const auto stats = corpus::ComputeCorpusStats(*collection->corpus);
    std::printf(
        "corpus %s: %u docs, %u distinct concepts, %.1f avg concepts/doc "
        "(after Section 6.1 filters)\n",
        collection->name.c_str(), stats.num_documents,
        stats.num_distinct_concepts, stats.avg_concepts_per_document);
  }
  std::printf("\n");
}

}  // namespace ecdr::bench

#endif  // ECDR_BENCH_BENCH_COMMON_H_
