// Persistence benchmark: what durability costs and what recovery
// saves. Four phases over one generated corpus and one mixed
// add/delete/update workload:
//
//   write fsync=always   the honest write path — every publish fsyncs
//   write fsync=never    the OS-buffered floor (bulk loads, tests)
//   boot replay-wal      Open() re-applying every WAL record
//   boot from-image      Open() after a checkpoint (mmap + verify; the
//                        index rebuild and Dewey DFS are skipped)
//
// plus the checkpoint write itself (image bytes included). The two
// boot rows are the headline: recovery cost must scale with the WAL
// suffix, not corpus size, once a checkpoint exists. Steady-state
// assertions fail hard: recovered engines must report the workload's
// exact LSN, and the from-image boot must replay zero records.
// Results land in BENCH_persistence.json; `--smoke` bounds the
// workload so CI keeps the binary honest.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <random>
#include <string>
#include <vector>

#include <iostream>

#include "bench/bench_common.h"
#include "core/ranking_engine.h"
#include "ontology/generator.h"
#include "storage/env.h"
#include "storage/image.h"
#include "storage/store.h"
#include "util/table_printer.h"
#include "util/timer.h"

namespace {

using ecdr::util::TablePrinter;

struct Row {
  std::string phase;
  std::uint64_t ops = 0;      // workload ops or WAL records replayed
  double seconds = 0.0;
  double ops_per_sec = 0.0;
  std::uint64_t bytes = 0;    // WAL or image size after the phase
};

struct Op {
  enum Kind { kAdd, kDelete, kUpdate };
  Kind kind = kAdd;
  ecdr::corpus::DocId target = 0;
  std::vector<ecdr::ontology::ConceptId> concepts;
};

std::vector<Op> MakeWorkload(std::uint64_t seed, std::uint32_t num_concepts,
                             std::size_t count) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int> kind_dist(0, 9);
  std::uniform_int_distribution<std::uint32_t> size_dist(4, 24);
  std::uniform_int_distribution<std::uint32_t> id_dist(0, num_concepts - 1);
  std::vector<Op> ops;
  std::vector<ecdr::corpus::DocId> live;
  ecdr::corpus::DocId next_id = 0;
  while (ops.size() < count) {
    const int roll = kind_dist(rng);
    if (roll < 7 || live.size() < 2) {
      std::vector<ecdr::ontology::ConceptId> concepts(size_dist(rng));
      for (auto& c : concepts) c = id_dist(rng);
      std::sort(concepts.begin(), concepts.end());
      concepts.erase(std::unique(concepts.begin(), concepts.end()),
                     concepts.end());
      ops.push_back(Op{Op::kAdd, 0, std::move(concepts)});
      live.push_back(next_id++);
    } else {
      std::uniform_int_distribution<std::size_t> pick(0, live.size() - 1);
      const std::size_t at = pick(rng);
      if (roll < 9) {
        ops.push_back(Op{Op::kDelete, live[at], {}});
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(at));
      } else {
        std::vector<ecdr::ontology::ConceptId> concepts{id_dist(rng)};
        ops.push_back(Op{Op::kUpdate, live[at], std::move(concepts)});
      }
    }
  }
  return ops;
}

void ApplyWorkload(ecdr::core::RankingEngine* engine,
                   const std::vector<Op>& ops) {
  for (const Op& op : ops) {
    switch (op.kind) {
      case Op::kAdd:
        ECDR_CHECK(engine->AddDocument(op.concepts).ok());
        break;
      case Op::kDelete:
        ECDR_CHECK(engine->DeleteDocument(op.target).ok());
        break;
      case Op::kUpdate:
        ECDR_CHECK(engine->UpdateDocument(op.target, op.concepts).ok());
        break;
    }
  }
}

void WipeDir(const std::string& dir) {
  const auto entries = ecdr::storage::Env::Posix()->ListDir(dir);
  if (!entries.ok()) return;
  for (const std::string& entry : *entries) {
    std::remove((dir + "/" + entry).c_str());
  }
}

void WriteJson(const std::vector<Row>& rows, double scale, bool smoke,
               const char* path) {
  std::FILE* file = std::fopen(path, "w");
  ECDR_CHECK(file != nullptr);
  std::fprintf(file, "{\n  \"benchmark\": \"persistence\",\n");
  std::fprintf(file, "  \"scale\": %.4f,\n", scale);
  std::fprintf(file, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(file, "  \"rows\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    std::fprintf(file,
                 "    {\"phase\": \"%s\", \"ops\": %llu, \"seconds\": %.4f, "
                 "\"ops_per_sec\": %.1f, \"bytes\": %llu}%s\n",
                 row.phase.c_str(), static_cast<unsigned long long>(row.ops),
                 row.seconds, row.ops_per_sec,
                 static_cast<unsigned long long>(row.bytes),
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(file, "  ]\n}\n");
  std::fclose(file);
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string data_dir = "bench_persistence_data";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strncmp(argv[i], "--data_dir=", 11) == 0) data_dir = argv[i] + 11;
  }
  const double scale = ecdr::bench::ScaleFromEnv();
  const std::size_t num_ops = static_cast<std::size_t>(
      (smoke ? 200 : 4000) * std::max(scale, 0.05));

  ecdr::ontology::OntologyGeneratorConfig onto_config;
  onto_config.num_concepts =
      static_cast<std::uint32_t>(std::max(500.0, 20'000 * scale));
  onto_config.seed = 7;
  auto ontology_or = ecdr::ontology::GenerateOntology(onto_config);
  ECDR_CHECK(ontology_or.ok());
  const auto ops = MakeWorkload(11, onto_config.num_concepts, num_ops);

  std::printf(
      "Persistence: WAL write cost, checkpoint cost, and recovery time\n"
      "%u concepts, %zu lifecycle ops, data dir '%s'\n\n",
      onto_config.num_concepts, ops.size(), data_dir.c_str());

  const auto fresh_ontology = [&] {
    auto o = ecdr::ontology::GenerateOntology(onto_config);
    ECDR_CHECK(o.ok());
    return std::move(o).value();
  };

  std::vector<Row> rows;
  const auto run_write_phase = [&](const char* phase,
                                   ecdr::storage::StoreOptions::FsyncMode
                                       fsync_mode) {
    WipeDir(data_dir);
    ecdr::core::RankingEngineOptions options;
    options.storage.data_dir = data_dir;
    options.storage.fsync_mode = fsync_mode;
    auto engine = ecdr::core::RankingEngine::Open(fresh_ontology(), options);
    ECDR_CHECK(engine.ok());
    ecdr::util::WallTimer timer;
    ApplyWorkload(engine->get(), ops);
    ECDR_CHECK((*engine)->SyncDurability().ok());
    const double seconds = timer.ElapsedSeconds();
    const auto stats = (*engine)->durability_stats().store;
    ECDR_CHECK_EQ(stats.last_lsn, ops.size());
    rows.push_back(Row{phase, ops.size(), seconds,
                       static_cast<double>(ops.size()) / seconds,
                       stats.wal_bytes});
  };

  run_write_phase("write fsync=always",
                  ecdr::storage::StoreOptions::FsyncMode::kAlways);
  run_write_phase("write fsync=never",
                  ecdr::storage::StoreOptions::FsyncMode::kNever);

  // The fsync=never directory (full WAL, no image) is what the replay
  // boot recovers.
  ecdr::core::RankingEngineOptions durable_options;
  durable_options.storage.data_dir = data_dir;
  {
    ecdr::util::WallTimer timer;
    auto engine =
        ecdr::core::RankingEngine::Open(fresh_ontology(), durable_options);
    const double seconds = timer.ElapsedSeconds();
    ECDR_CHECK(engine.ok());
    const auto stats = (*engine)->durability_stats().store;
    ECDR_CHECK_EQ(stats.records_replayed, ops.size());
    ECDR_CHECK_EQ(stats.last_lsn, ops.size());
    rows.push_back(Row{"boot replay-wal", stats.records_replayed, seconds,
                       static_cast<double>(stats.records_replayed) / seconds,
                       stats.wal_bytes});

    ecdr::util::WallTimer checkpoint_timer;
    ECDR_CHECK((*engine)->Checkpoint().ok());
    const double checkpoint_seconds = checkpoint_timer.ElapsedSeconds();
    const std::string image_path =
        data_dir + "/" +
        ecdr::storage::ImageFileName(
            (*engine)->durability_stats().store.image_generation);
    const auto image = ecdr::storage::Env::Posix()->ReadFile(image_path);
    ECDR_CHECK(image.ok());
    rows.push_back(Row{"checkpoint", 1, checkpoint_seconds,
                       1.0 / checkpoint_seconds, (*image)->data().size()});
  }
  {
    ecdr::util::WallTimer timer;
    auto engine =
        ecdr::core::RankingEngine::Open(fresh_ontology(), durable_options);
    const double seconds = timer.ElapsedSeconds();
    ECDR_CHECK(engine.ok());
    const auto stats = (*engine)->durability_stats().store;
    ECDR_CHECK_EQ(stats.records_replayed, 0u);
    ECDR_CHECK_EQ(stats.last_lsn, ops.size());
    rows.push_back(Row{"boot from-image", ops.size(), seconds,
                       static_cast<double>(ops.size()) / seconds, 0});
  }
  WipeDir(data_dir);

  TablePrinter table({"phase", "ops", "seconds", "ops/s", "bytes"});
  for (const Row& row : rows) {
    table.AddRow({row.phase, std::to_string(row.ops),
                  TablePrinter::FormatDouble(row.seconds, 4),
                  TablePrinter::FormatDouble(row.ops_per_sec, 1),
                  std::to_string(row.bytes)});
  }
  table.Print(std::cout);
  WriteJson(rows, scale, smoke, "BENCH_persistence.json");
  std::printf("\nwrote BENCH_persistence.json\n");
  return 0;
}
