// Parallel query execution: kNDS wall-clock vs KndsOptions::num_threads
// over the Fig. 9 top-k workload (k=10, nq=5), on PATIENT and RADIO,
// RDS and SDS. Sweeps 1/2/4/8 lanes, reports p50/p95 per-query latency
// and the speedup over the serial run, verifies every lane count
// returns the serial results bit-for-bit, and writes the rows to
// BENCH_parallel_scaling.json.
//
// Expected shape: speedup approaches the physical core count while the
// wave sizes stay large (DRC verification dominates); on a single-core
// machine all configurations tie, modulo pool overhead — the
// determinism check is then the interesting output.

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "core/drc.h"
#include "core/knds.h"
#include "corpus/query_gen.h"
#include "util/table_printer.h"
#include "util/thread_pool.h"

namespace {

using ecdr::bench::Collection;
using ecdr::util::TablePrinter;

constexpr std::uint32_t kDefaultNq = 5;
constexpr std::uint32_t kTopK = 10;
constexpr std::size_t kThreadSweep[] = {1, 2, 4, 8};

struct Row {
  std::string collection;
  std::string mode;
  std::size_t threads = 1;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double mean_ms = 0.0;
  double speedup = 1.0;
  std::uint64_t parallel_waves = 0;
  std::uint64_t speculative_drc_calls = 0;
  bool matches_serial = true;
};

double Percentile(std::vector<double> sorted, double p) {
  if (sorted.empty()) return 0.0;
  std::sort(sorted.begin(), sorted.end());
  const std::size_t index = std::min(
      sorted.size() - 1,
      static_cast<std::size_t>(p * static_cast<double>(sorted.size())));
  return sorted[index];
}

bool SameResults(const std::vector<ecdr::core::ScoredDocument>& a,
                 const std::vector<ecdr::core::ScoredDocument>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].id != b[i].id || a[i].distance != b[i].distance) return false;
  }
  return true;
}

void RunCollection(const ecdr::ontology::Ontology& ontology,
                   ecdr::ontology::AddressEnumerator* enumerator,
                   const Collection& collection, bool sds,
                   std::uint32_t queries, std::vector<Row>* rows) {
  const auto rds_queries = ecdr::corpus::GenerateRdsQueries(
      *collection.corpus, queries, kDefaultNq, 700);
  const auto sds_queries =
      ecdr::corpus::SampleQueryDocuments(*collection.corpus, queries, 701);

  ecdr::core::KndsOptions options;
  options.error_threshold =
      sds ? collection.sds_error_threshold : collection.rds_error_threshold;

  std::vector<std::vector<ecdr::core::ScoredDocument>> reference;
  double serial_mean_ms = 0.0;
  for (const std::size_t threads : kThreadSweep) {
    options.num_threads = threads;
    ecdr::core::Drc drc(ontology, enumerator);
    ecdr::core::Knds knds(*collection.corpus, *collection.inverted, &drc,
                          options);

    Row row;
    row.collection = collection.name;
    row.mode = sds ? "SDS" : "RDS";
    row.threads = threads;
    std::vector<double> latencies_ms;
    latencies_ms.reserve(queries);
    for (std::uint32_t q = 0; q < queries; ++q) {
      const auto result =
          sds ? knds.SearchSds(collection.corpus->document(sds_queries[q]),
                               kTopK)
              : knds.SearchRds(rds_queries[q], kTopK);
      ECDR_CHECK(result.ok());
      latencies_ms.push_back(knds.last_stats().total_seconds * 1e3);
      row.parallel_waves += knds.last_stats().parallel_waves;
      row.speculative_drc_calls += knds.last_stats().speculative_drc_calls;
      if (threads == 1) {
        reference.push_back(*result);
      } else {
        row.matches_serial =
            row.matches_serial && SameResults(reference[q], *result);
      }
    }
    for (const double ms : latencies_ms) row.mean_ms += ms;
    row.mean_ms /= static_cast<double>(latencies_ms.size());
    row.p50_ms = Percentile(latencies_ms, 0.50);
    row.p95_ms = Percentile(latencies_ms, 0.95);
    if (threads == 1) serial_mean_ms = row.mean_ms;
    row.speedup = serial_mean_ms / std::max(1e-9, row.mean_ms);
    rows->push_back(row);
  }
}

void WriteJson(const std::vector<Row>& rows, const char* path) {
  std::FILE* file = std::fopen(path, "w");
  ECDR_CHECK(file != nullptr);
  std::fprintf(file, "{\n  \"benchmark\": \"parallel_scaling\",\n");
  std::fprintf(file, "  \"workload\": \"fig9_topk\",\n  \"k\": %u,\n",
               kTopK);
  std::fprintf(file, "  \"hardware_concurrency\": %zu,\n",
               ecdr::util::ThreadPool::DefaultThreads());
  std::fprintf(file, "  \"rows\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    std::fprintf(file,
                 "    {\"collection\": \"%s\", \"mode\": \"%s\", "
                 "\"threads\": %zu, \"p50_ms\": %.4f, \"p95_ms\": %.4f, "
                 "\"mean_ms\": %.4f, \"speedup\": %.3f, "
                 "\"parallel_waves\": %llu, \"speculative_drc_calls\": %llu, "
                 "\"matches_serial\": %s}%s\n",
                 row.collection.c_str(), row.mode.c_str(), row.threads,
                 row.p50_ms, row.p95_ms, row.mean_ms, row.speedup,
                 static_cast<unsigned long long>(row.parallel_waves),
                 static_cast<unsigned long long>(row.speculative_drc_calls),
                 row.matches_serial ? "true" : "false",
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(file, "  ]\n}\n");
  std::fclose(file);
}

}  // namespace

int main() {
  const double scale = ecdr::bench::ScaleFromEnv();
  const std::uint32_t queries = ecdr::bench::QueriesFromEnv();
  ecdr::bench::Testbed testbed = ecdr::bench::BuildTestbed(scale);
  ecdr::bench::PrintTestbedBanner(
      "Parallel scaling: kNDS latency vs num_threads (Fig. 9 workload, "
      "k=10)",
      testbed, scale, queries);
  std::printf("hardware_concurrency=%zu\n\n",
              ecdr::util::ThreadPool::DefaultThreads());

  // Frozen shared address cache, as RankingEngine configures it.
  ecdr::ontology::AddressEnumerator enumerator(*testbed.ontology);
  enumerator.PrecomputeAll();

  std::vector<Row> rows;
  for (const bool sds : {false, true}) {
    RunCollection(*testbed.ontology, &enumerator, testbed.patient, sds,
                  queries, &rows);
    RunCollection(*testbed.ontology, &enumerator, testbed.radio, sds,
                  queries, &rows);
  }

  TablePrinter table({"collection", "mode", "threads", "p50 ms", "p95 ms",
                      "mean ms", "speedup", "waves", "spec DRC",
                      "matches serial"});
  bool all_match = true;
  for (const Row& row : rows) {
    all_match = all_match && row.matches_serial;
    table.AddRow({row.collection, row.mode, std::to_string(row.threads),
                  TablePrinter::FormatDouble(row.p50_ms, 3),
                  TablePrinter::FormatDouble(row.p95_ms, 3),
                  TablePrinter::FormatDouble(row.mean_ms, 3),
                  TablePrinter::FormatDouble(row.speedup, 2) + "x",
                  std::to_string(row.parallel_waves),
                  std::to_string(row.speculative_drc_calls),
                  row.matches_serial ? "yes" : "NO"});
  }
  table.Print(std::cout);

  WriteJson(rows, "BENCH_parallel_scaling.json");
  std::printf("\nwrote BENCH_parallel_scaling.json\n");
  std::printf("all thread counts match the serial results: %s\n",
              all_match ? "yes" : "NO");
  ECDR_CHECK(all_match);
  return 0;
}
