// Anytime quality vs deadline budget on the Fig. 9 top-k workload
// (k=10, nq=5): each query first runs without a deadline to establish
// the exact top-k and its latency, then re-runs under budgets set to
// fractions of the collection's mean baseline latency. Reports, per
// (collection, budget fraction): recall@k against the exact top-k, the
// mean reported per-result error bound, and the fractions of queries
// that truncated or escalated the error threshold. Rows go to
// BENCH_deadline_degradation.json.
//
// Expected shape: recall rises monotonically with budget toward 1.0;
// generous budgets (>= 1x mean latency) should rarely truncate, and
// starved budgets should still return bounded results, never errors.

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <string>
#include <unordered_set>
#include <vector>

#include "bench/bench_common.h"
#include "core/drc.h"
#include "core/knds.h"
#include "corpus/query_gen.h"
#include "util/deadline.h"
#include "util/table_printer.h"

namespace {

using ecdr::bench::Collection;
using ecdr::util::TablePrinter;

constexpr std::uint32_t kDefaultNq = 5;
constexpr std::uint32_t kTopK = 10;
constexpr double kBudgetFractions[] = {0.1, 0.25, 0.5, 1.0, 2.0};

struct Row {
  std::string collection;
  double budget_fraction = 0.0;
  double budget_ms = 0.0;
  double recall_at_k = 0.0;
  double mean_error_bound = 0.0;
  double truncated_fraction = 0.0;
  double escalated_fraction = 0.0;
};

void RunCollection(const ecdr::ontology::Ontology& ontology,
                   ecdr::ontology::AddressEnumerator* enumerator,
                   const Collection& collection, std::uint32_t queries,
                   std::vector<Row>* rows) {
  const auto rds_queries = ecdr::corpus::GenerateRdsQueries(
      *collection.corpus, queries, kDefaultNq, 900);

  ecdr::core::KndsOptions options;
  options.error_threshold = collection.rds_error_threshold;
  ecdr::core::Drc drc(ontology, enumerator);
  ecdr::core::Knds knds(*collection.corpus, *collection.inverted, &drc,
                        options);

  // Baseline: exact top-k per query, and the mean latency that anchors
  // the budget fractions.
  std::vector<std::unordered_set<ecdr::corpus::DocId>> truth(queries);
  double mean_latency_seconds = 0.0;
  for (std::uint32_t q = 0; q < queries; ++q) {
    const auto result = knds.SearchRds(rds_queries[q], kTopK);
    ECDR_CHECK(result.ok());
    ECDR_CHECK(!knds.last_stats().truncated);
    for (const auto& scored : *result) truth[q].insert(scored.id);
    mean_latency_seconds += knds.last_stats().total_seconds;
  }
  mean_latency_seconds /= std::max<std::uint32_t>(1, queries);

  for (const double fraction : kBudgetFractions) {
    Row row;
    row.collection = collection.name;
    row.budget_fraction = fraction;
    const double budget = fraction * mean_latency_seconds;
    row.budget_ms = budget * 1e3;
    double recall_sum = 0.0;
    double bound_sum = 0.0;
    std::uint64_t bound_count = 0;
    for (std::uint32_t q = 0; q < queries; ++q) {
      ecdr::core::KndsOptions budgeted = options;
      budgeted.deadline = ecdr::util::Deadline::After(budget);
      ecdr::core::Knds anytime(*collection.corpus, *collection.inverted,
                               &drc, budgeted);
      const auto result = anytime.SearchRds(rds_queries[q], kTopK);
      ECDR_CHECK(result.ok());
      std::uint32_t found = 0;
      for (const auto& scored : *result) {
        if (truth[q].contains(scored.id)) ++found;
        bound_sum += scored.error_bound;
        ++bound_count;
      }
      recall_sum += truth[q].empty()
                        ? 1.0
                        : static_cast<double>(found) /
                              static_cast<double>(truth[q].size());
      if (anytime.last_stats().truncated) row.truncated_fraction += 1.0;
      if (anytime.last_stats().error_threshold_escalated) {
        row.escalated_fraction += 1.0;
      }
    }
    const double nq = static_cast<double>(std::max<std::uint32_t>(1, queries));
    row.recall_at_k = recall_sum / nq;
    row.mean_error_bound =
        bound_count == 0 ? 0.0
                         : bound_sum / static_cast<double>(bound_count);
    row.truncated_fraction /= nq;
    row.escalated_fraction /= nq;
    rows->push_back(row);
  }
}

void WriteJson(const std::vector<Row>& rows, const char* path) {
  std::FILE* file = std::fopen(path, "w");
  ECDR_CHECK(file != nullptr);
  std::fprintf(file, "{\n  \"benchmark\": \"deadline_degradation\",\n");
  std::fprintf(file, "  \"workload\": \"fig9_topk\",\n  \"k\": %u,\n", kTopK);
  std::fprintf(file, "  \"rows\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    std::fprintf(file,
                 "    {\"collection\": \"%s\", \"budget_fraction\": %.2f, "
                 "\"budget_ms\": %.4f, \"recall_at_k\": %.4f, "
                 "\"mean_error_bound\": %.4f, \"truncated_fraction\": %.3f, "
                 "\"escalated_fraction\": %.3f}%s\n",
                 row.collection.c_str(), row.budget_fraction, row.budget_ms,
                 row.recall_at_k, row.mean_error_bound,
                 row.truncated_fraction, row.escalated_fraction,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(file, "  ]\n}\n");
  std::fclose(file);
}

}  // namespace

int main() {
  const double scale = ecdr::bench::ScaleFromEnv();
  const std::uint32_t queries = ecdr::bench::QueriesFromEnv();
  ecdr::bench::Testbed testbed = ecdr::bench::BuildTestbed(scale);
  ecdr::bench::PrintTestbedBanner(
      "Deadline degradation: anytime recall@k and error bounds vs budget "
      "(Fig. 9 workload, k=10)",
      testbed, scale, queries);

  ecdr::ontology::AddressEnumerator enumerator(*testbed.ontology);
  enumerator.PrecomputeAll();

  std::vector<Row> rows;
  RunCollection(*testbed.ontology, &enumerator, testbed.patient, queries,
                &rows);
  RunCollection(*testbed.ontology, &enumerator, testbed.radio, queries,
                &rows);

  TablePrinter table({"collection", "budget", "budget ms", "recall@k",
                      "mean err bound", "truncated", "escalated"});
  for (const Row& row : rows) {
    table.AddRow({row.collection,
                  TablePrinter::FormatDouble(row.budget_fraction, 2) + "x",
                  TablePrinter::FormatDouble(row.budget_ms, 3),
                  TablePrinter::FormatDouble(row.recall_at_k, 3),
                  TablePrinter::FormatDouble(row.mean_error_bound, 3),
                  TablePrinter::FormatDouble(row.truncated_fraction * 100.0,
                                             0) +
                      "%",
                  TablePrinter::FormatDouble(row.escalated_fraction * 100.0,
                                             0) +
                      "%"});
  }
  table.Print(std::cout);

  WriteJson(rows, "BENCH_deadline_degradation.json");
  std::printf("\nwrote BENCH_deadline_degradation.json\n");
  return 0;
}
