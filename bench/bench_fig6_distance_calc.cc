// Reproduces Figure 6: document-document (SDS) distance-calculation time
// vs query size nq, for the quadratic baseline BL vs DRC, on PATIENT
// (6a) and RADIO (6b).
//
// Shape to reproduce: BL grows quadratically in nq and is dominated by
// the corpus document's concept count; DRC grows ~ n log n and stays
// milliseconds where BL climbs to seconds ("DRC takes less than two
// seconds in the worst case" on the paper's hardware).

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench/bench_common.h"
#include "core/baseline_distance.h"
#include "core/drc.h"
#include "corpus/query_gen.h"
#include "util/random.h"
#include "util/stats.h"
#include "util/table_printer.h"
#include "util/timer.h"

namespace {

using ecdr::bench::Collection;
using ecdr::util::TablePrinter;

void RunCollection(const ecdr::ontology::Ontology& ontology,
                   const Collection& collection, std::uint32_t queries,
                   TablePrinter* table) {
  ecdr::ontology::AddressEnumerator enumerator(ontology);
  ecdr::core::Drc drc(ontology, &enumerator);
  ecdr::core::BaselineDistance baseline(ontology);
  ecdr::util::Rng rng(4242);

  for (const std::uint32_t nq : {1u, 3u, 5u, 10u, 50u, 100u, 200u, 500u}) {
    // The quadratic baseline gets expensive fast; trim its trial count
    // the way the paper trims its plotted range.
    const std::uint32_t drc_trials = queries;
    const std::uint32_t bl_trials =
        std::max(1u, nq >= 50 ? queries / 4 : queries / 2);

    const auto query_docs = ecdr::corpus::GenerateQueryDocuments(
        ontology, std::max(drc_trials, bl_trials), nq, 9000 + nq);

    ecdr::util::RunningStat drc_ms;
    ecdr::util::RunningStat bl_ms;
    for (std::uint32_t t = 0; t < drc_trials; ++t) {
      const auto& doc = collection.corpus->document(
          static_cast<ecdr::corpus::DocId>(rng.UniformInt(
              0, collection.corpus->num_documents() - 1)));
      ecdr::util::WallTimer timer;
      const auto distance =
          drc.DocDocDistance(query_docs[t].concepts(), doc.concepts());
      ECDR_CHECK(distance.ok());
      drc_ms.Add(timer.ElapsedMillis());
    }
    for (std::uint32_t t = 0; t < bl_trials; ++t) {
      const auto& doc = collection.corpus->document(
          static_cast<ecdr::corpus::DocId>(rng.UniformInt(
              0, collection.corpus->num_documents() - 1)));
      ecdr::util::WallTimer timer;
      const auto distance =
          baseline.DocDocDistance(query_docs[t].concepts(), doc.concepts());
      ECDR_CHECK(distance.ok());
      bl_ms.Add(timer.ElapsedMillis());
    }
    table->AddRow({collection.name, std::to_string(nq),
                   TablePrinter::FormatDouble(bl_ms.mean(), 3),
                   TablePrinter::FormatDouble(drc_ms.mean(), 3),
                   TablePrinter::FormatDouble(bl_ms.mean() /
                                                  std::max(1e-9, drc_ms.mean()),
                                              1)});
  }
}

}  // namespace

int main() {
  const double scale = ecdr::bench::ScaleFromEnv();
  const std::uint32_t queries = ecdr::bench::QueriesFromEnv();
  ecdr::bench::Testbed testbed = ecdr::bench::BuildTestbed(scale);
  ecdr::bench::PrintTestbedBanner(
      "Figure 6: SDS distance-calculation time vs query size nq (BL vs DRC)",
      testbed, scale, queries);

  TablePrinter table(
      {"collection", "nq", "BL avg ms", "DRC avg ms", "BL/DRC"});
  RunCollection(*testbed.ontology, testbed.patient, queries, &table);
  RunCollection(*testbed.ontology, testbed.radio, queries, &table);
  table.Print(std::cout);
  std::printf(
      "\nexpected shape (paper Fig. 6): BL grows quadratically with nq and\n"
      "with the document size (PATIENT >> RADIO); DRC grows ~ n log n and\n"
      "wins by a widening factor.\n");
  return 0;
}
