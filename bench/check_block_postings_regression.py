#!/usr/bin/env python3
"""Gate compressed block-max postings against the committed baseline.

Usage: check_block_postings_regression.py <committed.json> <fresh.json>

Checks a fresh bench_block_postings run (which has already proven
bit-identity against the dense referee in-process via ECDR_CHECKs)
against BENCH_block_postings.json:

  * compression_ratio >= 4.0 absolutely, and >= committed * (1 - TOL) —
    the layout is deterministic at a given scale, so a drop means the
    codec or block metadata grew.
  * at least one row shows a nonzero skipped_block_fraction: the
    block-max sweep must actually retire blocks un-decoded at k << |D|.
  * per row, block_p50_ms <= dense_p50_ms * (1 + TOL): the dense
    referee is measured in the same process on the same queries, so the
    ratio is machine-independent — no cross-file normalization needed
    (compare check_hotpath_regression.py, which must synthesize a
    machine factor from in-run no-reuse rows).

Rows are keyed by (nq, k); only keys present in both files are latency-
compared, so --smoke runs gate the subset they measure.
"""

import json
import sys

TOLERANCE = 0.15
MIN_COMPRESSION = 4.0


def load(path):
    with open(path) as f:
        return json.load(f)


def main(argv):
    if len(argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    committed = load(argv[1])
    fresh = load(argv[2])

    failed = False

    ratio = fresh["compression_ratio"]
    floor = max(MIN_COMPRESSION, committed["compression_ratio"] * (1 - TOLERANCE))
    verdict = "ok" if ratio >= floor else "FAIL"
    print(f"{verdict}: compression_ratio {ratio:.2f}x "
          f"(floor {floor:.2f} = max({MIN_COMPRESSION}, committed "
          f"{committed['compression_ratio']:.2f} x {1 - TOLERANCE:.2f}))")
    if ratio < floor:
        failed = True

    max_skipped = max(
        (row["skipped_block_fraction"] for row in fresh["rows"]), default=0.0)
    verdict = "ok" if max_skipped > 0.0 else "FAIL"
    print(f"{verdict}: max skipped_block_fraction {max_skipped:.4f} "
          f"(must be > 0: the threshold test has to retire whole blocks)")
    if max_skipped <= 0.0:
        failed = True

    fresh_rows = {(row["nq"], row["k"]): row for row in fresh["rows"]}
    committed_keys = {(row["nq"], row["k"]) for row in committed["rows"]}
    for key in sorted(fresh_rows):
        if key not in committed_keys:
            continue
        row = fresh_rows[key]
        budget = row["dense_p50_ms"] * (1 + TOLERANCE)
        got = row["block_p50_ms"]
        verdict = "ok" if got <= budget else "FAIL"
        print(f"{verdict}: nq={key[0]} k={key[1]} block p50 {got:.4f} ms "
              f"(budget {budget:.4f} = in-run dense "
              f"{row['dense_p50_ms']:.4f} x {1 + TOLERANCE:.2f})")
        if got > budget:
            failed = True

    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
