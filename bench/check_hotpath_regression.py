#!/usr/bin/env python3
"""Gate DRC hot-path performance against the committed baseline.

Usage: check_hotpath_regression.py <committed.json> <fresh.json>

Compares the reuse rows (ddq, ddd) of a fresh bench_drc_hotpath run
against the committed BENCH_drc_hotpath.json, normalizing away machine
speed via the in-run no-reuse rows: both files carry ddq_noreuse /
ddd_noreuse rows measured in the same process as their reuse rows, so

    factor = fresh_noreuse / committed_noreuse

estimates how much slower (or faster) this machine/build is than the
one that produced the baseline, independent of the reuse machinery.
The gate fails when

    fresh_reuse > committed_reuse * factor * (1 + TOLERANCE)

i.e. when the *relative* speedup of reuse over rebuild has regressed by
more than TOLERANCE, which survives noisy CI runners that a raw
ns-per-distance comparison would not. Also fails on any nonzero
allocs_per_distance (the steady state must stay allocation-free).
"""

import json
import sys

TOLERANCE = 0.15

PAIRS = [("ddq", "ddq_noreuse"), ("ddd", "ddd_noreuse")]


def load_rows(path):
    with open(path) as f:
        data = json.load(f)
    return {row["workload"]: row for row in data["rows"]}


def main(argv):
    if len(argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    committed = load_rows(argv[1])
    fresh = load_rows(argv[2])

    failed = False
    for reuse, noreuse in PAIRS:
        missing = [w for w in (reuse, noreuse)
                   if w not in committed or w not in fresh]
        if missing:
            print(f"FAIL: missing workload rows {missing}")
            failed = True
            continue

        factor = (fresh[noreuse]["ns_per_distance"]
                  / committed[noreuse]["ns_per_distance"])
        budget = committed[reuse]["ns_per_distance"] * factor * (1 + TOLERANCE)
        got = fresh[reuse]["ns_per_distance"]
        verdict = "ok" if got <= budget else "FAIL"
        print(f"{verdict}: {reuse} {got:.1f} ns/distance "
              f"(budget {budget:.1f} = committed "
              f"{committed[reuse]['ns_per_distance']:.1f} "
              f"x machine-factor {factor:.3f} x {1 + TOLERANCE:.2f})")
        if got > budget:
            failed = True

        allocs = fresh[reuse]["allocs_per_distance"]
        if allocs != 0:
            print(f"FAIL: {reuse} allocs_per_distance {allocs} != 0")
            failed = True

    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
