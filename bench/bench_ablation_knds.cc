// Ablation: the Section 5.3 kNDS engineering optimizations and the BFS
// node-queue limit (the knob discussed in Section 6.1's setup).
//
//   - prune_candidates: drop documents whose lower bound exceeds D+k
//   - partial_candidate_heap: heap-select instead of sorting Ld
//   - covered_distance_shortcut: skip DRC for fully covered documents
//   - node_queue_limit sweep: small limits force early DRC probes
//     ("may cause excessive calls to DRC", Section 6.2)

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "core/knds.h"
#include "corpus/query_gen.h"
#include "util/table_printer.h"

namespace {

using ecdr::bench::Collection;
using ecdr::util::TablePrinter;

constexpr std::uint32_t kDefaultK = 10;
constexpr std::uint32_t kDefaultNq = 5;

void RunConfig(const ecdr::ontology::Ontology& ontology,
               const Collection& collection, const std::string& label,
               const ecdr::core::KndsOptions& options, bool sds,
               std::uint32_t queries, TablePrinter* table) {
  ecdr::ontology::AddressEnumerator enumerator(ontology);
  ecdr::core::Drc drc(ontology, &enumerator);
  ecdr::core::Knds knds(*collection.corpus, *collection.inverted, &drc,
                        options);
  const auto rds_queries = ecdr::corpus::GenerateRdsQueries(
      *collection.corpus, queries, kDefaultNq, 801);
  const auto sds_queries =
      ecdr::corpus::SampleQueryDocuments(*collection.corpus, queries, 802);

  double total_ms = 0.0;
  double drc_calls = 0.0;
  double pruned = 0.0;
  double queue_hits = 0.0;
  for (std::uint32_t q = 0; q < queries; ++q) {
    const auto results =
        sds ? knds.SearchSds(collection.corpus->document(sds_queries[q]),
                             kDefaultK)
            : knds.SearchRds(rds_queries[q], kDefaultK);
    ECDR_CHECK(results.ok());
    const auto& stats = knds.last_stats();
    total_ms += stats.total_seconds * 1e3;
    drc_calls += static_cast<double>(stats.drc_calls);
    pruned += static_cast<double>(stats.documents_pruned);
    queue_hits += static_cast<double>(stats.queue_limit_hits);
  }
  const double n = queries;
  table->AddRow({collection.name, sds ? "SDS" : "RDS", label,
                 TablePrinter::FormatDouble(total_ms / n, 2),
                 TablePrinter::FormatDouble(drc_calls / n, 1),
                 TablePrinter::FormatDouble(pruned / n, 1),
                 TablePrinter::FormatDouble(queue_hits / n, 1)});
}

}  // namespace

int main() {
  const double scale = ecdr::bench::ScaleFromEnv();
  const std::uint32_t queries = ecdr::bench::QueriesFromEnv();
  ecdr::bench::Testbed testbed = ecdr::bench::BuildTestbed(scale);
  ecdr::bench::PrintTestbedBanner(
      "Ablation: kNDS Section 5.3 optimizations (k=10, nq=5)", testbed,
      scale, queries);

  TablePrinter table({"collection", "mode", "config", "avg ms",
                      "DRC calls", "pruned docs", "queue-limit hits"});
  for (const bool patient_side : {true, false}) {
    Collection& collection =
        patient_side ? testbed.patient : testbed.radio;
    for (const bool sds : {false, true}) {
      ecdr::core::KndsOptions base;
      base.error_threshold = sds ? collection.sds_error_threshold
                                 : collection.rds_error_threshold;
      RunConfig(*testbed.ontology, collection, "all optimizations", base,
                sds, queries, &table);
      {
        auto options = base;
        options.prune_candidates = false;
        RunConfig(*testbed.ontology, collection, "no Ld pruning", options,
                  sds, queries, &table);
      }
      {
        auto options = base;
        options.partial_candidate_heap = false;
        RunConfig(*testbed.ontology, collection, "sort Ld (no heap)",
                  options, sds, queries, &table);
      }
      {
        auto options = base;
        options.covered_distance_shortcut = false;
        RunConfig(*testbed.ontology, collection, "no covered shortcut",
                  options, sds, queries, &table);
      }
      for (const std::size_t limit : {std::size_t{1'000}, std::size_t{10'000},
                                      std::size_t{50'000}}) {
        auto options = base;
        options.node_queue_limit = limit;
        RunConfig(*testbed.ontology, collection,
                  "queue limit " + std::to_string(limit), options, sds,
                  queries, &table);
      }
    }
  }
  table.Print(std::cout);
  std::printf(
      "\nexpected: each optimization reduces time or DRC calls; tiny queue\n"
      "limits trigger forced examinations (extra DRC calls), mirroring the\n"
      "paper's note that the 50K cap can cause excessive DRC probes.\n");
  return 0;
}
