#!/usr/bin/env python3
"""Gate incremental ontology evolution against the committed baseline.

Usage: check_ontology_evolution_regression.py <committed.json> <fresh.json>

Checks a fresh bench_ontology_evolution run against
BENCH_ontology_evolution.json on two axes:

  * Structural proportionality (exact, machine-independent): the
    workload shapes are deterministic, so readdressed / reused /
    invalidated counts and the retained pair-cache fraction must match
    the committed file exactly when both ran at the same scale. The
    no-op (retire-only) row must re-address nothing; the single-leaf
    rows must re-address exactly their batch size with 100% retention.

  * Incremental speedup (ratio, machine-independent): the cold rebuild
    is measured in the same process on the same evolved DAG, so
    cold_ms / incremental_ms carries across machines. The no-op row
    must stay >= 25x, structural rows with affected_fraction < 5% must
    stay >= 2x, and every row must hold >= committed * (1 - TOL).

Rows are keyed by workload name; only keys present in both files are
compared, so --smoke runs gate the subset they measure.
"""

import json
import sys

TOLERANCE = 0.40  # timing ratios wobble more than latency quantiles
MIN_NOOP_SPEEDUP = 25.0
MIN_SMALL_SPEEDUP = 2.0
SMALL_FRACTION = 0.05


def load(path):
    with open(path) as f:
        return json.load(f)


def main(argv):
    if len(argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    committed = load(argv[1])
    fresh = load(argv[2])
    same_scale = abs(committed["scale"] - fresh["scale"]) < 1e-9

    committed_rows = {row["workload"]: row for row in committed["rows"]}
    failed = False

    for row in fresh["rows"]:
        name = row["workload"]

        # Absolute structural invariants, independent of the baseline.
        if name.startswith("noop"):
            for key in ("readdressed", "invalidated"):
                ok = row[key] == 0
                print(f"{'ok' if ok else 'FAIL'}: {name} {key} "
                      f"{row[key]} (must be 0: retire-only batches share "
                      f"the base pool outright)")
                failed |= not ok
        if name.startswith("leaf_add"):
            ok = row["readdressed"] == row["mutations"]
            print(f"{'ok' if ok else 'FAIL'}: {name} readdressed "
                  f"{row['readdressed']} == batch size {row['mutations']} "
                  f"(leaf adds touch only the new concepts)")
            failed |= not ok
            ok = row["retained_fraction"] == 1.0
            print(f"{'ok' if ok else 'FAIL'}: {name} retained_fraction "
                  f"{row['retained_fraction']:.4f} (distance-preserving "
                  f"adds must keep every pair-cache key)")
            failed |= not ok

        floor = 0.0
        if name.startswith("noop"):
            floor = MIN_NOOP_SPEEDUP
        elif row["affected_fraction"] < SMALL_FRACTION:
            floor = MIN_SMALL_SPEEDUP
        base = committed_rows.get(name)
        if base is not None:
            floor = max(floor, base["speedup"] * (1 - TOLERANCE))
        ok = row["speedup"] >= floor
        print(f"{'ok' if ok else 'FAIL'}: {name} speedup "
              f"{row['speedup']:.1f}x (floor {floor:.1f})")
        failed |= not ok

        # Exact count agreement with the committed file at equal scale.
        if base is not None and same_scale:
            for key in ("readdressed", "readdressed_existing", "reused",
                        "invalidated"):
                ok = row[key] == base[key]
                print(f"{'ok' if ok else 'FAIL'}: {name} {key} "
                      f"{row[key]} == committed {base[key]}")
                failed |= not ok

    if failed:
        print("REGRESSION: ontology evolution gate failed", file=sys.stderr)
        return 1
    print("ontology evolution gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
