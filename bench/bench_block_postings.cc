// Compressed block-max postings vs the dense precomputed table: the
// space-side headline (bytes/doc and compression ratio), offline build
// cost (serial and thread-pool parallel), whole-block skipping at
// k << |D|, and TA query latency (p50/p95) on both backends — with
// in-run bit-identity CHECKs, so a run that produces numbers has also
// proven the backends agree. Results go to BENCH_block_postings.json;
// bench/check_block_postings_regression.py gates the committed file
// against fresh CI runs.
//
// The dense row is measured in the same process on the same queries,
// so the latency comparison (and the CI gate built on it) is
// machine-independent: block-mode TA must stay within 15% of the dense
// referee it just matched bit-for-bit.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "core/ta_ranker.h"
#include "corpus/query_gen.h"
#include "index/block_postings.h"
#include "index/precomputed_postings.h"
#include "util/table_printer.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace {

struct Row {
  std::uint32_t nq = 0;
  std::uint32_t k = 0;
  double dense_p50_ms = 0.0;
  double dense_p95_ms = 0.0;
  double block_p50_ms = 0.0;
  double block_p95_ms = 0.0;
  double skipped_block_fraction = 0.0;
  std::uint64_t decoded_blocks = 0;
  std::uint64_t skipped_blocks = 0;
  double docs_scored_dense = 0.0;
  double docs_scored_block = 0.0;
};

double Quantile(std::vector<double> samples, double q) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const std::size_t index = static_cast<std::size_t>(
      q * static_cast<double>(samples.size() - 1) + 0.5);
  return samples[std::min(index, samples.size() - 1)];
}

struct BuildStats {
  double dense_serial_s = 0.0;
  double dense_parallel_s = 0.0;
  double block_serial_s = 0.0;
  double block_parallel_s = 0.0;
};

void WriteJson(const std::vector<Row>& rows, double scale, bool smoke,
               const ecdr::index::PrecomputedPostings& dense,
               const ecdr::index::BlockPostings& block,
               const BuildStats& build, std::uint32_t num_documents,
               std::uint32_t num_concepts, const char* path) {
  std::FILE* file = std::fopen(path, "w");
  ECDR_CHECK(file != nullptr);
  const double dense_bpd =
      static_cast<double>(dense.memory_bytes()) / num_documents;
  std::fprintf(file, "{\n  \"benchmark\": \"block_postings\",\n");
  std::fprintf(file, "  \"scale\": %.4f,\n  \"smoke\": %s,\n", scale,
               smoke ? "true" : "false");
  std::fprintf(file, "  \"num_documents\": %u,\n  \"num_concepts\": %u,\n",
               num_documents, num_concepts);
  std::fprintf(file, "  \"block_size\": %u,\n", block.block_size());
  std::fprintf(file, "  \"dense_memory_bytes\": %llu,\n",
               static_cast<unsigned long long>(dense.memory_bytes()));
  std::fprintf(file, "  \"dense_bytes_per_doc\": %.1f,\n", dense_bpd);
  std::fprintf(file, "  \"block_memory_bytes\": %llu,\n",
               static_cast<unsigned long long>(block.memory_bytes()));
  std::fprintf(file, "  \"block_arena_bytes\": %llu,\n",
               static_cast<unsigned long long>(block.arena_bytes()));
  std::fprintf(file, "  \"block_metadata_bytes\": %llu,\n",
               static_cast<unsigned long long>(block.metadata_bytes()));
  std::fprintf(file, "  \"block_bytes_per_doc\": %.1f,\n",
               block.bytes_per_doc());
  std::fprintf(file, "  \"compression_ratio\": %.2f,\n",
               dense_bpd / block.bytes_per_doc());
  std::fprintf(file,
               "  \"dense_build_seconds\": %.4f,\n"
               "  \"dense_build_seconds_parallel\": %.4f,\n"
               "  \"block_build_seconds\": %.4f,\n"
               "  \"block_build_seconds_parallel\": %.4f,\n",
               build.dense_serial_s, build.dense_parallel_s,
               build.block_serial_s, build.block_parallel_s);
  std::fprintf(file, "  \"rows\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    std::fprintf(
        file,
        "    {\"nq\": %u, \"k\": %u, \"dense_p50_ms\": %.4f, "
        "\"dense_p95_ms\": %.4f, \"block_p50_ms\": %.4f, "
        "\"block_p95_ms\": %.4f, \"skipped_block_fraction\": %.4f, "
        "\"decoded_blocks\": %llu, \"skipped_blocks\": %llu, "
        "\"docs_scored_dense\": %.1f, \"docs_scored_block\": %.1f}%s\n",
        row.nq, row.k, row.dense_p50_ms, row.dense_p95_ms, row.block_p50_ms,
        row.block_p95_ms, row.skipped_block_fraction,
        static_cast<unsigned long long>(row.decoded_blocks),
        static_cast<unsigned long long>(row.skipped_blocks),
        row.docs_scored_dense, row.docs_scored_block,
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(file, "  ]\n}\n");
  std::fclose(file);
  std::printf("\nwrote %s\n", path);
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  // Like bench_ablation_ta: the dense referee is O(|D| x |C|) space,
  // so the ontology stays small no matter what ECDR_BENCH_SCALE says.
  // The document axis is boosted instead (4x the RADIO default): the
  // point of block-max skipping is k << |D|, which four block ranges
  // of documents cannot exhibit.
  const double scale = std::min(0.02, ecdr::bench::ScaleFromEnv());
  const std::uint32_t queries =
      smoke ? 2 : std::max(8u, ecdr::bench::QueriesFromEnv());
  ecdr::bench::Testbed testbed = ecdr::bench::BuildTestbed(
      scale, /*include_patient=*/false, /*include_radio=*/false);
  ecdr::bench::Collection radio;
  {
    ecdr::corpus::CorpusGeneratorConfig config =
        ecdr::corpus::RadioLikeConfig(scale, /*seed=*/18);
    config.num_documents *= 4;
    auto generated = ecdr::corpus::GenerateCorpus(*testbed.ontology, config);
    ECDR_CHECK(generated.ok());
    ecdr::corpus::ConceptFilterOptions filter_options;
    ecdr::corpus::ConceptFilterReport report;
    auto filtered = ecdr::corpus::ApplyConceptFilters(*generated,
                                                      filter_options, &report);
    ECDR_CHECK(filtered.ok());
    radio.name = "RADIO x4 docs";
    radio.corpus = std::make_unique<ecdr::corpus::Corpus>(
        std::move(filtered).value());
  }
  const std::uint32_t num_documents = radio.corpus->num_documents();
  const std::uint32_t num_concepts = testbed.ontology->num_concepts();
  std::printf(
      "== Compressed block-max postings vs dense precomputed table "
      "(RDS TA) ==\nsubstrate: %u concepts, %u documents "
      "(scale=%.3f, 4x docs, queries/config=%u)\n\n",
      num_concepts, num_documents, scale, queries);

  // Offline builds, serial and parallel (the parallel build must be
  // byte-identical — CHECKed for the block arena here, proven for both
  // structures in tests/block_postings_test.cc).
  BuildStats build;
  ecdr::util::ThreadPool pool(ecdr::util::ThreadPool::DefaultThreads());
  const ecdr::index::PrecomputedPostings dense(*radio.corpus);
  build.dense_serial_s = dense.build_seconds();
  {
    const ecdr::index::PrecomputedPostings dense_parallel(*radio.corpus,
                                                          &pool);
    build.dense_parallel_s = dense_parallel.build_seconds();
    ECDR_CHECK_EQ(dense.memory_bytes(), dense_parallel.memory_bytes());
  }
  ecdr::index::BlockPostingsOptions block_options;
  block_options.block_size = 16;
  const ecdr::index::BlockPostings block(*radio.corpus, block_options);
  build.block_serial_s = block.build_seconds();
  {
    ecdr::index::BlockPostingsOptions parallel_options = block_options;
    parallel_options.pool = &pool;
    const ecdr::index::BlockPostings block_parallel(*radio.corpus,
                                                    parallel_options);
    build.block_parallel_s = block_parallel.build_seconds();
    ECDR_CHECK_EQ(block.arena().size(), block_parallel.arena().size());
    ECDR_CHECK(std::equal(block.arena().begin(), block.arena().end(),
                          block_parallel.arena().begin()));
  }
  const double dense_bpd =
      static_cast<double>(dense.memory_bytes()) / num_documents;
  std::printf(
      "dense:  %7.1f KiB (%6.1f B/doc), build %.2fs serial / %.2fs parallel\n"
      "block:  %7.1f KiB (%6.1f B/doc), build %.2fs serial / %.2fs parallel\n"
      "compression: %.1fx (block_size=%u, %llu blocks, arena %llu B + "
      "metadata %llu B)\n\n",
      dense.memory_bytes() / 1024.0, dense_bpd, build.dense_serial_s,
      build.dense_parallel_s, block.memory_bytes() / 1024.0,
      block.bytes_per_doc(), build.block_serial_s, build.block_parallel_s,
      dense_bpd / block.bytes_per_doc(), block.block_size(),
      static_cast<unsigned long long>(block.num_blocks()),
      static_cast<unsigned long long>(block.arena_bytes()),
      static_cast<unsigned long long>(block.metadata_bytes()));

  ecdr::core::TaRankerOptions ta_options;
  ta_options.num_threads = 1;  // serial hot path: cleanest latency signal
  ecdr::core::TaRanker dense_ta(*radio.corpus, dense, ta_options);
  ecdr::core::TaRanker block_ta(*radio.corpus, block, ta_options);

  std::vector<Row> rows;
  ecdr::util::TablePrinter table({"nq", "k", "dense p50 ms", "block p50 ms",
                                  "block/dense", "skipped blocks %",
                                  "docs scored d/b"});
  const auto ks = smoke ? std::vector<std::uint32_t>{10u}
                        : std::vector<std::uint32_t>{10u, 100u};
  const auto nqs = smoke ? std::vector<std::uint32_t>{3u}
                         : std::vector<std::uint32_t>{3u, 5u, 10u};
  for (const std::uint32_t nq : nqs) {
    for (const std::uint32_t k : ks) {
      const auto rds_queries = ecdr::corpus::GenerateRdsQueries(
          *radio.corpus, queries, nq, 900 + nq);
      Row row;
      row.nq = nq;
      row.k = k;
      std::vector<double> dense_ms;
      std::vector<double> block_ms;
      std::uint64_t total_blocks = 0;
      for (const auto& query : rds_queries) {
        // Warm pass per backend, then the measured pass, interleaved to
        // spread frequency/cache drift evenly across backends.
        ECDR_CHECK(dense_ta.TopKRelevant(query, k).ok());
        const auto dense_result = dense_ta.TopKRelevant(query, k);
        ECDR_CHECK(dense_result.ok());
        dense_ms.push_back(dense_ta.last_stats().seconds * 1e3);
        row.docs_scored_dense +=
            static_cast<double>(dense_ta.last_stats().documents_scored);

        ECDR_CHECK(block_ta.TopKRelevant(query, k).ok());
        const auto block_result = block_ta.TopKRelevant(query, k);
        ECDR_CHECK(block_result.ok());
        block_ms.push_back(block_ta.last_stats().seconds * 1e3);
        row.docs_scored_block +=
            static_cast<double>(block_ta.last_stats().documents_scored);
        row.decoded_blocks += block_ta.last_stats().decoded_blocks;
        row.skipped_blocks += block_ta.last_stats().skipped_blocks;
        total_blocks += block_ta.last_stats().decoded_blocks +
                        block_ta.last_stats().skipped_blocks;

        // Bit-identity, every query: ids, distances, tie order.
        ECDR_CHECK_EQ(dense_result->size(), block_result->size());
        for (std::size_t i = 0; i < dense_result->size(); ++i) {
          ECDR_CHECK_EQ((*dense_result)[i].id, (*block_result)[i].id);
          ECDR_CHECK((*dense_result)[i].distance ==
                     (*block_result)[i].distance);
        }
      }
      row.dense_p50_ms = Quantile(dense_ms, 0.50);
      row.dense_p95_ms = Quantile(dense_ms, 0.95);
      row.block_p50_ms = Quantile(block_ms, 0.50);
      row.block_p95_ms = Quantile(block_ms, 0.95);
      row.skipped_block_fraction =
          total_blocks == 0
              ? 0.0
              : static_cast<double>(row.skipped_blocks) / total_blocks;
      row.docs_scored_dense /= rds_queries.size();
      row.docs_scored_block /= rds_queries.size();
      rows.push_back(row);
      table.AddRow(
          {std::to_string(nq), std::to_string(k),
           ecdr::util::TablePrinter::FormatDouble(row.dense_p50_ms, 3),
           ecdr::util::TablePrinter::FormatDouble(row.block_p50_ms, 3),
           ecdr::util::TablePrinter::FormatDouble(
               row.dense_p50_ms > 0.0 ? row.block_p50_ms / row.dense_p50_ms
                                      : 0.0,
               2),
           ecdr::util::TablePrinter::FormatDouble(
               row.skipped_block_fraction * 100.0, 1),
           ecdr::util::TablePrinter::FormatDouble(row.docs_scored_dense, 0) +
               "/" +
               ecdr::util::TablePrinter::FormatDouble(row.docs_scored_block,
                                                      0)});
    }
  }
  table.Print(std::cout);
  WriteJson(rows, scale, smoke, dense, block, build, num_documents,
            num_concepts, "BENCH_block_postings.json");
  return 0;
}
