// DRC hot-path microbenchmark: ns/distance, allocations/distance, and
// the build/tune/eval split for exact Ddq/Ddd calls on the generated
// SNOMED-like testbed (PATIENT corpus, Section 6.1 filters). This is
// the referee for the allocation-free DRC data path: steady-state calls
// on a warm engine must report 0 allocations/distance, and the ns/
// distance trend across PRs is tracked via BENCH_drc_hotpath.json.
//
// The workload is document-at-a-time, mirroring how the rankers drive
// the engine: each query sweeps a run of candidate documents on one
// engine, so both reuse paths are exercised the way serving exercises
// them — ddq calls hit the per-document DAG cache (copy the prebuilt
// doc DAG, insert the query on top), ddd sweeps keep the persistent
// query skeleton and merge/detach each candidate under the rollback
// log. The `*_noreuse` rows measure the same sweeps on an engine with
// DrcOptions::skeleton_reuse = false — the paper's full per-call
// rebuild — and serve as the in-run "before" baseline (the CI
// regression gate also uses them to normalize out machine speed).
//
// The allocation numbers come from the counting operator-new hook in
// util/alloc_counter.h, compiled into this binary only (see
// ECDR_ALLOC_COUNTER_DEFINE_NEW below). `--smoke` runs a bounded
// workload so CI can keep the binary from rotting; even the smoke
// sweeps keep >= 2 documents per query so the reuse path runs.

#define ECDR_ALLOC_COUNTER_DEFINE_NEW
#include "util/alloc_counter.h"

#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "core/drc.h"
#include "corpus/query_gen.h"
#include "util/table_printer.h"
#include "util/timer.h"

namespace {

using ecdr::util::TablePrinter;

constexpr std::uint32_t kDefaultNq = 5;

struct Row {
  std::string workload;
  std::uint64_t calls = 0;
  double ns_per_distance = 0.0;
  double allocs_per_distance = 0.0;
  double bytes_per_distance = 0.0;
  double build_fraction = 0.0;  // Skeleton/merge insertion, of call time.
  double tune_fraction = 0.0;   // The two sweeps, of total call time.
  double eval_fraction = 0.0;   // Directly timed lookups + summing.
  double skeleton_reuse_rate = 0.0;  // reuses / (builds + reuses).
  double doc_dag_hit_rate = 0.0;     // hits / (builds + hits).
  // Fraction of calls that reused cached structure instead of building
  // it: a skeleton reuse or a doc-DAG cache hit. Shown as the table's
  // "reuse" column.
  double structure_reuse_rate = 0.0;
  std::uint64_t doc_paths_detached = 0;
  double checksum = 0.0;  // Anti-DCE; also a cross-PR invariant.
};

struct Workload {
  std::string name;
  // Each pair is (doc concepts, query concepts), ordered query-major:
  // consecutive pairs share the query side so the skeleton persists
  // across each sweep. For ddd the "query" slot is the varying second
  // document; the fixed anchor document sits in the doc slot, which
  // DocDocDistance keeps as the skeleton side.
  std::vector<std::pair<std::span<const ecdr::ontology::ConceptId>,
                        std::span<const ecdr::ontology::ConceptId>>>
      pairs;
  bool doc_doc = false;
};

Row MeasureWorkload(ecdr::core::Drc* drc, const Workload& workload,
                    std::uint32_t repetitions) {
  // Warm-up: two full passes grow every scratch buffer to its high-water
  // mark, after which the steady state must not allocate.
  double checksum = 0.0;
  for (int warm = 0; warm < 2; ++warm) {
    for (const auto& [doc, query] : workload.pairs) {
      if (workload.doc_doc) {
        const auto d = drc->DocDocDistance(doc, query);
        ECDR_CHECK(d.ok());
        checksum += *d;
      } else {
        const auto d = drc->DocQueryDistance(doc, query);
        ECDR_CHECK(d.ok());
        checksum += static_cast<double>(*d);
      }
    }
  }

  drc->ResetStats();
  checksum = 0.0;
  const ecdr::util::AllocationTally tally;
  ecdr::util::WallTimer timer;
  for (std::uint32_t rep = 0; rep < repetitions; ++rep) {
    for (const auto& [doc, query] : workload.pairs) {
      if (workload.doc_doc) {
        const auto d = drc->DocDocDistance(doc, query);
        ECDR_CHECK(d.ok());
        checksum += *d;
      } else {
        const auto d = drc->DocQueryDistance(doc, query);
        ECDR_CHECK(d.ok());
        checksum += static_cast<double>(*d);
      }
    }
  }
  const double elapsed = timer.ElapsedSeconds();
  const std::uint64_t allocations = tally.allocations();
  const std::uint64_t bytes = tally.bytes();

  Row row;
  row.workload = workload.name;
  row.calls = static_cast<std::uint64_t>(repetitions) * workload.pairs.size();
  ECDR_CHECK_GT(row.calls, 0u);
  const double calls = static_cast<double>(row.calls);
  row.ns_per_distance = elapsed * 1e9 / calls;
  row.allocs_per_distance = static_cast<double>(allocations) / calls;
  row.bytes_per_distance = static_cast<double>(bytes) / calls;
  const ecdr::core::Drc::Stats& stats = drc->stats();
  if (elapsed > 0.0) {
    row.build_fraction = stats.build_seconds / elapsed;
    row.tune_fraction = stats.tune_seconds / elapsed;
    row.eval_fraction = stats.eval_seconds / elapsed;
  }
  const std::uint64_t skeleton_events =
      stats.skeleton_builds + stats.skeleton_reuses;
  if (skeleton_events > 0) {
    row.skeleton_reuse_rate =
        static_cast<double>(stats.skeleton_reuses) /
        static_cast<double>(skeleton_events);
  }
  const std::uint64_t dag_events = stats.doc_dag_builds + stats.doc_dag_hits;
  if (dag_events > 0) {
    row.doc_dag_hit_rate = static_cast<double>(stats.doc_dag_hits) /
                           static_cast<double>(dag_events);
  }
  if (skeleton_events + dag_events > 0) {
    row.structure_reuse_rate =
        static_cast<double>(stats.skeleton_reuses + stats.doc_dag_hits) /
        static_cast<double>(skeleton_events + dag_events);
  }
  row.doc_paths_detached = stats.doc_paths_detached;
  row.checksum = checksum;
  return row;
}

void WriteJson(const std::vector<Row>& rows, double scale,
               std::uint32_t num_concepts, bool smoke, const char* path) {
  std::FILE* file = std::fopen(path, "w");
  ECDR_CHECK(file != nullptr);
  std::fprintf(file, "{\n  \"benchmark\": \"drc_hotpath\",\n");
  std::fprintf(file, "  \"scale\": %.4f,\n  \"num_concepts\": %u,\n", scale,
               num_concepts);
  std::fprintf(file, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(file, "  \"rows\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    std::fprintf(
        file,
        "    {\"workload\": \"%s\", \"calls\": %llu, "
        "\"ns_per_distance\": %.1f, \"allocs_per_distance\": %.3f, "
        "\"bytes_per_distance\": %.1f, \"build_fraction\": %.3f, "
        "\"tune_fraction\": %.3f, \"eval_fraction\": %.3f, "
        "\"skeleton_reuse_rate\": %.3f, \"doc_dag_hit_rate\": %.3f, "
        "\"structure_reuse_rate\": %.3f, \"doc_paths_detached\": %llu, "
        "\"checksum\": %.4f}%s\n",
        row.workload.c_str(), static_cast<unsigned long long>(row.calls),
        row.ns_per_distance, row.allocs_per_distance, row.bytes_per_distance,
        row.build_fraction, row.tune_fraction, row.eval_fraction,
        row.skeleton_reuse_rate, row.doc_dag_hit_rate,
        row.structure_reuse_rate,
        static_cast<unsigned long long>(row.doc_paths_detached), row.checksum,
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(file, "  ]\n}\n");
  std::fclose(file);
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const double scale = ecdr::bench::ScaleFromEnv();
  const std::uint32_t num_queries = smoke ? 4 : 16;
  const std::uint32_t docs_per_query = smoke ? 2 : 8;
  const std::uint32_t repetitions = smoke ? 2 : 20;

  ecdr::bench::Testbed testbed =
      ecdr::bench::BuildTestbed(scale, /*include_patient=*/true,
                                /*include_radio=*/false);
  ecdr::bench::PrintTestbedBanner(
      "DRC hot path: ns/distance, allocations/distance, build/tune/eval "
      "split (exact Ddq/Ddd, warm engine, document-at-a-time sweeps)",
      testbed, scale, num_queries * docs_per_query);

  // Serving mode: frozen address cache, one engine reused across calls.
  ecdr::ontology::AddressEnumerator enumerator(*testbed.ontology);
  enumerator.PrecomputeAll();
  ecdr::core::Drc drc(*testbed.ontology, &enumerator);
  // The "before" engine: every call rebuilds the DAG from scratch, the
  // paper's original per-pair cost model.
  ecdr::core::DrcOptions noreuse_options;
  noreuse_options.skeleton_reuse = false;
  ecdr::core::Drc::Scratch noreuse_scratch;
  ecdr::core::Drc noreuse_drc(*testbed.ontology, &enumerator,
                              &noreuse_scratch, noreuse_options);

  const ecdr::corpus::Corpus& corpus = *testbed.patient.corpus;
  ECDR_CHECK_GT(corpus.num_documents(), 1u);
  const auto rds_queries =
      ecdr::corpus::GenerateRdsQueries(corpus, num_queries, kDefaultNq, 900);

  // ddq: each RDS query scores a run of candidate documents, the
  // document-at-a-time order a ranker produces.
  Workload ddq;
  ddq.name = "ddq";
  for (std::uint32_t q = 0; q < num_queries; ++q) {
    for (std::uint32_t d = 0; d < docs_per_query; ++d) {
      const ecdr::corpus::DocId doc =
          (q * docs_per_query + d) % corpus.num_documents();
      ddq.pairs.emplace_back(corpus.document(doc).concepts(),
                             std::span<const ecdr::ontology::ConceptId>(
                                 rds_queries[q]));
    }
  }
  // ddd: each anchor document (the SDS "query document") sweeps a run
  // of candidate documents. DocDocDistance keeps the first argument as
  // the persistent skeleton side.
  Workload ddd;
  ddd.name = "ddd";
  ddd.doc_doc = true;
  for (std::uint32_t q = 0; q < num_queries; ++q) {
    const ecdr::corpus::DocId a =
        (q * 3 + 1) % corpus.num_documents();
    for (std::uint32_t d = 0; d < docs_per_query; ++d) {
      ecdr::corpus::DocId b =
          (q * docs_per_query + d) * 7 % corpus.num_documents();
      if (b == a) b = (b + 1) % corpus.num_documents();
      ddd.pairs.emplace_back(corpus.document(a).concepts(),
                             corpus.document(b).concepts());
    }
  }

  std::vector<Row> rows;
  rows.push_back(MeasureWorkload(&drc, ddq, repetitions));
  rows.push_back(MeasureWorkload(&drc, ddd, repetitions));
  rows.push_back(MeasureWorkload(&noreuse_drc, ddq, repetitions));
  rows.back().workload = "ddq_noreuse";
  rows.push_back(MeasureWorkload(&noreuse_drc, ddd, repetitions));
  rows.back().workload = "ddd_noreuse";

  TablePrinter table({"workload", "calls", "ns/dist", "allocs/dist",
                      "bytes/dist", "build", "tune", "eval", "reuse",
                      "detached"});
  for (const Row& row : rows) {
    table.AddRow({row.workload, std::to_string(row.calls),
                  TablePrinter::FormatDouble(row.ns_per_distance, 1),
                  TablePrinter::FormatDouble(row.allocs_per_distance, 3),
                  TablePrinter::FormatDouble(row.bytes_per_distance, 1),
                  TablePrinter::FormatDouble(row.build_fraction * 100.0, 1) +
                      "%",
                  TablePrinter::FormatDouble(row.tune_fraction * 100.0, 1) +
                      "%",
                  TablePrinter::FormatDouble(row.eval_fraction * 100.0, 1) +
                      "%",
                  TablePrinter::FormatDouble(row.structure_reuse_rate * 100.0,
                                             1) +
                      "%",
                  std::to_string(row.doc_paths_detached)});
  }
  table.Print(std::cout);

  WriteJson(rows, scale, testbed.ontology->num_concepts(), smoke,
            "BENCH_drc_hotpath.json");
  std::printf("\nwrote BENCH_drc_hotpath.json\n");
  return 0;
}
