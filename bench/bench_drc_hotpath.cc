// DRC hot-path microbenchmark: ns/distance, allocations/distance, and
// the build-vs-sweep split for exact Ddq/Ddd calls on the generated
// SNOMED-like testbed (PATIENT corpus, Section 6.1 filters). This is
// the referee for the allocation-free DRC data path: steady-state calls
// on a warm engine must report 0 allocations/distance, and the ns/
// distance trend across PRs is tracked via BENCH_drc_hotpath.json.
//
// The allocation numbers come from the counting operator-new hook in
// util/alloc_counter.h, compiled into this binary only (see
// ECDR_ALLOC_COUNTER_DEFINE_NEW below). `--smoke` runs a bounded
// workload so CI can keep the binary from rotting.

#define ECDR_ALLOC_COUNTER_DEFINE_NEW
#include "util/alloc_counter.h"

#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "core/drc.h"
#include "corpus/query_gen.h"
#include "util/table_printer.h"
#include "util/timer.h"

namespace {

using ecdr::util::TablePrinter;

constexpr std::uint32_t kDefaultNq = 5;

struct Row {
  std::string workload;
  std::uint64_t calls = 0;
  double ns_per_distance = 0.0;
  double allocs_per_distance = 0.0;
  double bytes_per_distance = 0.0;
  double build_fraction = 0.0;  // Gather + insert, of total call time.
  double tune_fraction = 0.0;   // The two sweeps, of total call time.
  double eval_fraction = 0.0;   // Remainder: lookups + summing.
  double checksum = 0.0;        // Anti-DCE; also a cross-PR invariant.
};

struct Workload {
  std::string name;
  // Each pair is (doc concepts, query concepts); ddq sums, ddd averages.
  std::vector<std::pair<std::span<const ecdr::ontology::ConceptId>,
                        std::span<const ecdr::ontology::ConceptId>>>
      pairs;
  bool doc_doc = false;
};

Row MeasureWorkload(ecdr::core::Drc* drc, const Workload& workload,
                    std::uint32_t repetitions) {
  // Warm-up: two full passes grow every scratch buffer to its high-water
  // mark, after which the steady state must not allocate.
  double checksum = 0.0;
  for (int warm = 0; warm < 2; ++warm) {
    for (const auto& [doc, query] : workload.pairs) {
      if (workload.doc_doc) {
        const auto d = drc->DocDocDistance(doc, query);
        ECDR_CHECK(d.ok());
        checksum += *d;
      } else {
        const auto d = drc->DocQueryDistance(doc, query);
        ECDR_CHECK(d.ok());
        checksum += static_cast<double>(*d);
      }
    }
  }

  drc->ResetStats();
  checksum = 0.0;
  const ecdr::util::AllocationTally tally;
  ecdr::util::WallTimer timer;
  for (std::uint32_t rep = 0; rep < repetitions; ++rep) {
    for (const auto& [doc, query] : workload.pairs) {
      if (workload.doc_doc) {
        const auto d = drc->DocDocDistance(doc, query);
        ECDR_CHECK(d.ok());
        checksum += *d;
      } else {
        const auto d = drc->DocQueryDistance(doc, query);
        ECDR_CHECK(d.ok());
        checksum += static_cast<double>(*d);
      }
    }
  }
  const double elapsed = timer.ElapsedSeconds();
  const std::uint64_t allocations = tally.allocations();
  const std::uint64_t bytes = tally.bytes();

  Row row;
  row.workload = workload.name;
  row.calls = static_cast<std::uint64_t>(repetitions) * workload.pairs.size();
  ECDR_CHECK_GT(row.calls, 0u);
  const double calls = static_cast<double>(row.calls);
  row.ns_per_distance = elapsed * 1e9 / calls;
  row.allocs_per_distance = static_cast<double>(allocations) / calls;
  row.bytes_per_distance = static_cast<double>(bytes) / calls;
  const ecdr::core::Drc::Stats& stats = drc->stats();
  if (elapsed > 0.0) {
    row.build_fraction = stats.build_seconds / elapsed;
    row.tune_fraction = stats.tune_seconds / elapsed;
    row.eval_fraction =
        std::max(0.0, 1.0 - row.build_fraction - row.tune_fraction);
  }
  row.checksum = checksum;
  return row;
}

void WriteJson(const std::vector<Row>& rows, double scale,
               std::uint32_t num_concepts, bool smoke, const char* path) {
  std::FILE* file = std::fopen(path, "w");
  ECDR_CHECK(file != nullptr);
  std::fprintf(file, "{\n  \"benchmark\": \"drc_hotpath\",\n");
  std::fprintf(file, "  \"scale\": %.4f,\n  \"num_concepts\": %u,\n", scale,
               num_concepts);
  std::fprintf(file, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(file, "  \"rows\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    std::fprintf(
        file,
        "    {\"workload\": \"%s\", \"calls\": %llu, "
        "\"ns_per_distance\": %.1f, \"allocs_per_distance\": %.3f, "
        "\"bytes_per_distance\": %.1f, \"build_fraction\": %.3f, "
        "\"tune_fraction\": %.3f, \"eval_fraction\": %.3f, "
        "\"checksum\": %.4f}%s\n",
        row.workload.c_str(), static_cast<unsigned long long>(row.calls),
        row.ns_per_distance, row.allocs_per_distance, row.bytes_per_distance,
        row.build_fraction, row.tune_fraction, row.eval_fraction, row.checksum,
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(file, "  ]\n}\n");
  std::fclose(file);
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const double scale = ecdr::bench::ScaleFromEnv();
  const std::uint32_t pairs = smoke ? 8 : 64;
  const std::uint32_t repetitions = smoke ? 2 : 20;

  ecdr::bench::Testbed testbed =
      ecdr::bench::BuildTestbed(scale, /*include_patient=*/true,
                                /*include_radio=*/false);
  ecdr::bench::PrintTestbedBanner(
      "DRC hot path: ns/distance, allocations/distance, build-vs-sweep "
      "split (exact Ddq/Ddd, warm engine)",
      testbed, scale, pairs);

  // Serving mode: frozen address cache, one engine reused across calls.
  ecdr::ontology::AddressEnumerator enumerator(*testbed.ontology);
  enumerator.PrecomputeAll();
  ecdr::core::Drc drc(*testbed.ontology, &enumerator);

  const ecdr::corpus::Corpus& corpus = *testbed.patient.corpus;
  ECDR_CHECK_GT(corpus.num_documents(), 1u);
  const auto rds_queries =
      ecdr::corpus::GenerateRdsQueries(corpus, pairs, kDefaultNq, 900);

  Workload ddq;
  ddq.name = "ddq";
  for (std::uint32_t i = 0; i < pairs; ++i) {
    const ecdr::corpus::DocId doc = i % corpus.num_documents();
    ddq.pairs.emplace_back(corpus.document(doc).concepts(),
                           std::span<const ecdr::ontology::ConceptId>(
                               rds_queries[i]));
  }
  Workload ddd;
  ddd.name = "ddd";
  ddd.doc_doc = true;
  for (std::uint32_t i = 0; i < pairs; ++i) {
    const ecdr::corpus::DocId a = i % corpus.num_documents();
    const ecdr::corpus::DocId b =
        (i * 7 + 1) % corpus.num_documents() == a
            ? (a + 1) % corpus.num_documents()
            : (i * 7 + 1) % corpus.num_documents();
    ddd.pairs.emplace_back(corpus.document(a).concepts(),
                           corpus.document(b).concepts());
  }

  std::vector<Row> rows;
  rows.push_back(MeasureWorkload(&drc, ddq, repetitions));
  rows.push_back(MeasureWorkload(&drc, ddd, repetitions));

  TablePrinter table({"workload", "calls", "ns/dist", "allocs/dist",
                      "bytes/dist", "build", "tune", "eval"});
  for (const Row& row : rows) {
    table.AddRow({row.workload, std::to_string(row.calls),
                  TablePrinter::FormatDouble(row.ns_per_distance, 1),
                  TablePrinter::FormatDouble(row.allocs_per_distance, 3),
                  TablePrinter::FormatDouble(row.bytes_per_distance, 1),
                  TablePrinter::FormatDouble(row.build_fraction * 100.0, 1) +
                      "%",
                  TablePrinter::FormatDouble(row.tune_fraction * 100.0, 1) +
                      "%",
                  TablePrinter::FormatDouble(row.eval_fraction * 100.0, 1) +
                      "%"});
  }
  table.Print(std::cout);

  WriteJson(rows, scale, testbed.ontology->num_concepts(), smoke,
            "BENCH_drc_hotpath.json");
  std::printf("\nwrote BENCH_drc_hotpath.json\n");
  return 0;
}
