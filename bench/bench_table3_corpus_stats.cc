// Reproduces Table 3 ("Document Corpus Statistics") plus the ontology
// shape statistics of Section 6.1, on the synthetic substrate.
//
// Paper reference values (MIMIC-II + SNOMED-CT, scale 1.0):
//              PATIENT   RADIO
//   documents      983   12,373
//   concepts    16,811    8,629   (distinct, after filtering)
//   avg concepts/doc 706.6 125.3
// Ontology: 296,433 concepts, 9.78 addresses/concept, length 14.1.

#include <cstdio>
#include <iostream>

#include "bench/bench_common.h"
#include "corpus/filters.h"
#include "ontology/generator.h"
#include "util/table_printer.h"

int main() {
  const double scale = ecdr::bench::ScaleFromEnv();
  ecdr::bench::Testbed testbed = ecdr::bench::BuildTestbed(scale);
  ecdr::bench::PrintTestbedBanner("Table 3: corpus statistics", testbed,
                                  scale, 0);

  using ecdr::util::TablePrinter;
  {
    const auto stats = ecdr::ontology::ComputeShapeStats(*testbed.ontology);
    TablePrinter table({"ontology metric", "measured", "paper (SNOMED-CT)"});
    table.AddRow({"concepts", std::to_string(stats.num_concepts),
                  "296,433 (x scale)"});
    table.AddRow({"avg Dewey addresses/concept",
                  TablePrinter::FormatDouble(stats.avg_path_count, 2),
                  "9.78"});
    table.AddRow({"avg depth (address length)",
                  TablePrinter::FormatDouble(stats.avg_depth, 2), "14.1"});
    table.AddRow({"avg children (internal nodes)",
                  TablePrinter::FormatDouble(stats.avg_children_internal, 2),
                  "4.53"});
    table.AddRow({"max depth", std::to_string(stats.max_depth), "-"});
    table.Print(std::cout);
    std::printf("\n");
  }

  TablePrinter table(
      {"metric", "PATIENT", "RADIO", "paper PATIENT", "paper RADIO"});
  const auto patient = ecdr::corpus::ComputeCorpusStats(*testbed.patient.corpus);
  const auto radio = ecdr::corpus::ComputeCorpusStats(*testbed.radio.corpus);
  table.AddRow({"total documents", std::to_string(patient.num_documents),
                std::to_string(radio.num_documents), "983 (x scale)",
                "12,373 (x scale)"});
  table.AddRow({"total distinct concepts",
                std::to_string(patient.num_distinct_concepts),
                std::to_string(radio.num_distinct_concepts), "16,811",
                "8,629"});
  table.AddRow({"avg concepts/document",
                TablePrinter::FormatDouble(patient.avg_concepts_per_document, 1),
                TablePrinter::FormatDouble(radio.avg_concepts_per_document, 1),
                "706.6", "125.3"});
  table.AddRow({"concept cf mean",
                TablePrinter::FormatDouble(patient.cf_mean, 2),
                TablePrinter::FormatDouble(radio.cf_mean, 2), "-", "-"});
  table.AddRow({"concept cf stddev",
                TablePrinter::FormatDouble(patient.cf_stddev, 2),
                TablePrinter::FormatDouble(radio.cf_stddev, 2), "-", "-"});
  table.Print(std::cout);
  std::printf("\n");

  // Filter accounting (Section 6.1: depth threshold keeps >99% of
  // concepts, mu+sigma keeps ~92%).
  TablePrinter filters({"collection", "kept", "removed by depth<4",
                        "removed by cf>mu+sigma", "docs dropped"});
  for (const bool patient_side : {true, false}) {
    const auto& name = patient_side ? "PATIENT" : "RADIO";
    // Rebuild the unfiltered corpus to report what filtering removed.
    const auto config = patient_side
                            ? ecdr::corpus::PatientLikeConfig(scale, 17)
                            : ecdr::corpus::RadioLikeConfig(scale, 18);
    auto raw = ecdr::corpus::GenerateCorpus(*testbed.ontology, config);
    ECDR_CHECK(raw.ok());
    ecdr::corpus::ConceptFilterReport report;
    const auto filtered = ecdr::corpus::ApplyConceptFilters(
        *raw, ecdr::corpus::ConceptFilterOptions{}, &report);
    ECDR_CHECK(filtered.ok());
    filters.AddRow({name, std::to_string(report.concepts_kept),
                    std::to_string(report.concepts_removed_by_depth),
                    std::to_string(report.concepts_removed_by_cf),
                    std::to_string(report.documents_dropped_empty)});
  }
  filters.Print(std::cout);
  return 0;
}
