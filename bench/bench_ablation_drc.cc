// Ablation: DRC micro-benchmarks (google-benchmark).
//
// Validates the Section 4.3 complexity claim — DRC is
// O((|Pq|+|Pd|) log(|Pq|+|Pd|)) — by sweeping the query-document size
// and reporting per-call D-Radix sizes, and measures the quadratic
// baseline on the same inputs for reference. Complements
// bench_fig6_distance_calc, which reports the paper's figure.

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "bench/bench_common.h"
#include "core/baseline_distance.h"
#include "core/drc.h"
#include "corpus/query_gen.h"
#include "util/random.h"

namespace {

// Built once; google-benchmark re-enters each benchmark many times.
struct World {
  ecdr::bench::Testbed testbed;
  std::unique_ptr<ecdr::ontology::AddressEnumerator> enumerator;
  std::unique_ptr<ecdr::core::Drc> drc;
  std::unique_ptr<ecdr::core::BaselineDistance> baseline;

  World()
      : testbed(ecdr::bench::BuildTestbed(
            /*scale=*/std::min(0.05, ecdr::bench::ScaleFromEnv()),
            /*include_patient=*/false)) {
    enumerator = std::make_unique<ecdr::ontology::AddressEnumerator>(
        *testbed.ontology);
    drc = std::make_unique<ecdr::core::Drc>(*testbed.ontology,
                                            enumerator.get());
    baseline =
        std::make_unique<ecdr::core::BaselineDistance>(*testbed.ontology);
  }
};

World& GetWorld() {
  static World* world = new World();
  return *world;
}

std::vector<ecdr::ontology::ConceptId> RandomConcepts(std::uint32_t n,
                                                      std::uint64_t seed) {
  ecdr::util::Rng rng(seed);
  return rng.SampleWithoutReplacement(
      GetWorld().testbed.ontology->num_concepts(), n);
}

void BM_DrcDocDoc(benchmark::State& state) {
  World& world = GetWorld();
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const auto d1 = RandomConcepts(n, 1000 + n);
  const auto d2 = RandomConcepts(n, 2000 + n);
  world.drc->ResetStats();
  for (auto _ : state) {
    const auto distance = world.drc->DocDocDistance(d1, d2);
    ECDR_CHECK(distance.ok());
    benchmark::DoNotOptimize(*distance);
  }
  const auto& stats = world.drc->stats();
  state.counters["radix_nodes"] = benchmark::Counter(
      static_cast<double>(stats.nodes_built) / stats.calls);
  state.counters["addresses"] = benchmark::Counter(
      static_cast<double>(stats.addresses_inserted) / stats.calls);
  state.SetComplexityN(n);
}
BENCHMARK(BM_DrcDocDoc)->RangeMultiplier(2)->Range(4, 512)->Complexity();

void BM_BaselineDocDoc(benchmark::State& state) {
  World& world = GetWorld();
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const auto d1 = RandomConcepts(n, 1000 + n);
  const auto d2 = RandomConcepts(n, 2000 + n);
  for (auto _ : state) {
    const auto distance = world.baseline->DocDocDistance(d1, d2);
    ECDR_CHECK(distance.ok());
    benchmark::DoNotOptimize(*distance);
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_BaselineDocDoc)->RangeMultiplier(4)->Range(4, 128)->Complexity();

// D-Radix construction alone (no tuning sweeps / evaluation).
void BM_DrcBuildIndex(benchmark::State& state) {
  World& world = GetWorld();
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const auto d1 = RandomConcepts(n, 3000 + n);
  const auto d2 = RandomConcepts(n, 4000 + n);
  for (auto _ : state) {
    auto dag = world.drc->BuildIndex(d1, d2);
    ECDR_CHECK(dag.ok());
    benchmark::DoNotOptimize(dag->num_nodes());
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_DrcBuildIndex)->RangeMultiplier(2)->Range(4, 512)->Complexity();

// Dewey address enumeration with a cold cache, the per-concept setup
// cost the shared cache amortizes away.
void BM_AddressEnumerationColdCache(benchmark::State& state) {
  World& world = GetWorld();
  const auto concepts = RandomConcepts(64, 5000);
  for (auto _ : state) {
    ecdr::ontology::AddressEnumerator fresh(*world.testbed.ontology);
    std::size_t total = 0;
    for (const auto c : concepts) total += fresh.Addresses(c).size();
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_AddressEnumerationColdCache);

}  // namespace

BENCHMARK_MAIN();
