// Reproduces Figure 9: query time vs number of results k for RDS and
// SDS, kNDS vs the exhaustive baseline, on PATIENT (9a,b) and RADIO
// (9c,d). eps at each collection's default; nq = 5 for RDS (the paper's
// default query size).
//
// Shape to reproduce: the baseline is flat in k (it always scores every
// document); kNDS is far faster and only mildly sensitive to k (paper:
// <1 s vs 104 s at k=10 on PATIENT; "for k=100 and a SDS query, kNDS is
// 89% faster").

#include <cstdio>
#include <iostream>
#include <vector>

#include "bench/bench_common.h"
#include "core/exhaustive_ranker.h"
#include "core/knds.h"
#include "corpus/query_gen.h"
#include "util/table_printer.h"

namespace {

using ecdr::bench::Collection;
using ecdr::util::TablePrinter;

constexpr std::uint32_t kDefaultNq = 5;

void RunCollection(const ecdr::ontology::Ontology& ontology,
                   const Collection& collection, bool sds,
                   std::uint32_t queries, TablePrinter* table) {
  ecdr::ontology::AddressEnumerator enumerator(ontology);
  ecdr::core::Drc drc(ontology, &enumerator);
  ecdr::core::ExhaustiveRanker baseline(*collection.corpus, &drc);
  ecdr::core::KndsOptions options;
  options.error_threshold =
      sds ? collection.sds_error_threshold : collection.rds_error_threshold;
  ecdr::core::Knds knds(*collection.corpus, *collection.inverted, &drc,
                        options);

  const auto rds_queries = ecdr::corpus::GenerateRdsQueries(
      *collection.corpus, queries, kDefaultNq, 700);
  const auto sds_queries =
      ecdr::corpus::SampleQueryDocuments(*collection.corpus, queries, 701);

  // The baseline scores every document regardless of k: measure it once
  // per query (at the largest k) and report it on every row, as the
  // paper's flat baseline curves do.
  double baseline_ms = 0.0;
  for (std::uint32_t q = 0; q < queries; ++q) {
    const auto result =
        sds ? baseline.TopKSimilar(
                  collection.corpus->document(sds_queries[q]), 100)
            : baseline.TopKRelevant(rds_queries[q], 100);
    ECDR_CHECK(result.ok());
    baseline_ms += baseline.last_stats().seconds * 1e3;
  }
  baseline_ms /= queries;

  for (const std::uint32_t k : {3u, 5u, 10u, 50u, 100u}) {
    double knds_ms = 0.0;
    double examined = 0.0;
    for (std::uint32_t q = 0; q < queries; ++q) {
      const auto result =
          sds ? knds.SearchSds(collection.corpus->document(sds_queries[q]), k)
              : knds.SearchRds(rds_queries[q], k);
      ECDR_CHECK(result.ok());
      knds_ms += knds.last_stats().total_seconds * 1e3;
      examined += static_cast<double>(knds.last_stats().documents_examined);
    }
    knds_ms /= queries;
    examined /= queries;
    const double faster = 100.0 * (1.0 - knds_ms / std::max(1e-9, baseline_ms));
    // When k >= |D| every document is a result: no pruning is possible
    // and branch-and-bound is pure overhead (the paper's k stays far
    // below its corpus sizes; this only occurs at reduced scale).
    const std::string k_label = std::to_string(k) +
                                (k >= collection.corpus->num_documents()
                                     ? " (k>=|D|)"
                                     : "");
    table->AddRow({collection.name, sds ? "SDS" : "RDS", k_label,
                   TablePrinter::FormatDouble(knds_ms, 2),
                   TablePrinter::FormatDouble(baseline_ms, 2),
                   TablePrinter::FormatDouble(examined, 1),
                   TablePrinter::FormatDouble(faster, 1) + "%"});
  }
}

}  // namespace

int main() {
  const double scale = ecdr::bench::ScaleFromEnv();
  const std::uint32_t queries = ecdr::bench::QueriesFromEnv();
  ecdr::bench::Testbed testbed = ecdr::bench::BuildTestbed(scale);
  ecdr::bench::PrintTestbedBanner(
      "Figure 9: query time vs k (kNDS vs exhaustive baseline, RDS nq=5)",
      testbed, scale, queries);

  TablePrinter table({"collection", "mode", "k", "kNDS ms", "baseline ms",
                      "docs examined", "kNDS faster by"});
  RunCollection(*testbed.ontology, testbed.patient, /*sds=*/false, queries,
                &table);
  RunCollection(*testbed.ontology, testbed.patient, /*sds=*/true, queries,
                &table);
  RunCollection(*testbed.ontology, testbed.radio, /*sds=*/false, queries,
                &table);
  RunCollection(*testbed.ontology, testbed.radio, /*sds=*/true, queries,
                &table);
  table.Print(std::cout);
  std::printf(
      "\nexpected shape (paper Fig. 9): the baseline is flat in k; kNDS\n"
      "outperforms it broadly (paper: 99%% faster at k=10, 89%% at k=100\n"
      "for SDS) and degrades only mildly as k grows.\n");
  return 0;
}
