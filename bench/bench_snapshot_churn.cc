// Snapshot-churn benchmark: reader latency (p50/p95) and throughput
// while a writer publishes copy-on-write generations at a controlled
// rate. This is the referee for the lock-free read path: searches
// acquire the engine snapshot with one atomic load and never take an
// engine mutex, so reader latency must stay flat as the publish rate
// grows — the pre-snapshot engine's reader/writer lock would collapse
// here instead.
//
// Steady-state assertions (the bench fails hard, not just regresses):
// every search succeeds under churn, the retire list drains to zero
// once readers stop (no generation leak), the write buffer is empty
// after the final flush, and the generation counter accounts for every
// publish. Trends across PRs are tracked via BENCH_snapshot_churn.json;
// `--smoke` runs a bounded workload so CI can keep the binary from
// rotting.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "core/ranking_engine.h"
#include "corpus/query_gen.h"
#include "util/table_printer.h"
#include "util/timer.h"

namespace {

using ecdr::util::TablePrinter;

struct Row {
  std::string mode;        // "idle", "<N>qps", "max"
  double writer_qps = 0.0; // requested; <0 = unthrottled
  std::uint64_t searches = 0;
  std::uint64_t published = 0;  // generations published during the run
  double reader_qps = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  std::size_t retired_live_end = 0;  // after drain; asserted == 0
};

double Percentile(std::vector<double>* latencies, double fraction) {
  ECDR_CHECK(!latencies->empty());
  std::sort(latencies->begin(), latencies->end());
  const std::size_t index = std::min(
      latencies->size() - 1,
      static_cast<std::size_t>(fraction * static_cast<double>(latencies->size())));
  return (*latencies)[index];
}

void WriteJson(const std::vector<Row>& rows, double scale, bool smoke,
               const char* path) {
  std::FILE* file = std::fopen(path, "w");
  ECDR_CHECK(file != nullptr);
  std::fprintf(file, "{\n  \"benchmark\": \"snapshot_churn\",\n");
  std::fprintf(file, "  \"scale\": %.4f,\n", scale);
  std::fprintf(file, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(file, "  \"rows\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    std::fprintf(
        file,
        "    {\"mode\": \"%s\", \"writer_qps\": %.1f, \"searches\": %llu, "
        "\"generations_published\": %llu, \"reader_qps\": %.1f, "
        "\"p50_ms\": %.3f, \"p95_ms\": %.3f, \"retired_live_end\": %zu}%s\n",
        row.mode.c_str(), row.writer_qps,
        static_cast<unsigned long long>(row.searches),
        static_cast<unsigned long long>(row.published), row.reader_qps,
        row.p50_ms, row.p95_ms, row.retired_live_end,
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(file, "  ]\n}\n");
  std::fclose(file);
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const double scale = ecdr::bench::ScaleFromEnv();
  const std::uint64_t searches_per_mode = smoke ? 40 : 400;

  ecdr::bench::Testbed testbed =
      ecdr::bench::BuildTestbed(scale, /*include_patient=*/true,
                                /*include_radio=*/false);
  ecdr::bench::PrintTestbedBanner(
      "Snapshot churn: reader p50/p95 and throughput vs writer publish "
      "rate (lock-free reads, copy-on-write publishes)",
      testbed, scale, static_cast<std::uint32_t>(searches_per_mode));

  const ecdr::corpus::Corpus& base = *testbed.patient.corpus;
  ECDR_CHECK_GT(base.num_documents(), 1u);
  const auto queries = ecdr::corpus::GenerateRdsQueries(
      base, /*num_queries=*/16, /*concepts_per_query=*/5, /*seed=*/901);

  ecdr::core::RankingEngineOptions options;
  options.knds.num_threads = 1;
  options.knds.error_threshold = ecdr::bench::kPatientRdsErrorThreshold;
  // Roll appends over into bounded shards so a publish clones one tail
  // shard, not the whole index.
  options.snapshot.target_docs_per_shard =
      std::max<std::uint32_t>(64, base.num_documents() / 8);
  auto engine = ecdr::core::RankingEngine::Create(
      std::move(*testbed.ontology), options);
  ECDR_CHECK(engine->AddCorpus(base).ok());

  struct Mode {
    std::string name;
    double qps;  // 0 = no writer, < 0 = unthrottled
  };
  const std::vector<Mode> modes = {
      {"idle", 0.0}, {"100qps", 100.0}, {"1000qps", 1000.0}, {"max", -1.0}};

  std::vector<Row> rows;
  for (const Mode& mode : modes) {
    const std::uint64_t published_before =
        engine->snapshot_stats().published;

    std::atomic<bool> stop{false};
    std::thread writer;
    if (mode.qps != 0.0) {
      writer = std::thread([&] {
        std::uint32_t next = 0;
        const auto pinned = engine->snapshot();
        while (!stop.load(std::memory_order_acquire)) {
          const auto concepts =
              pinned->corpus.document(next % base.num_documents()).concepts();
          ECDR_CHECK(
              engine->AddDocument({concepts.begin(), concepts.end()}).ok());
          ++next;
          if (mode.qps > 0.0) {
            std::this_thread::sleep_for(
                std::chrono::duration<double>(1.0 / mode.qps));
          }
        }
      });
    }

    std::vector<double> latencies;
    latencies.reserve(searches_per_mode);
    ecdr::util::WallTimer mode_timer;
    for (std::uint64_t s = 0; s < searches_per_mode; ++s) {
      const auto& query = queries[s % queries.size()];
      ecdr::util::WallTimer timer;
      const auto results = engine->FindRelevant(query, /*k=*/10);
      latencies.push_back(timer.ElapsedSeconds() * 1e3);
      // Under churn every search still succeeds — reads never block on
      // or fail because of the writer.
      ECDR_CHECK(results.ok());
    }
    const double mode_seconds = mode_timer.ElapsedSeconds();

    if (writer.joinable()) {
      stop.store(true, std::memory_order_release);
      writer.join();
    }
    engine->Flush();

    // Steady state: with no reader in flight and no pin held, every
    // superseded generation has died — the retire list is empty.
    const ecdr::core::SnapshotStats stats = engine->snapshot_stats();
    ECDR_CHECK_EQ(stats.retired_live, 0u);
    ECDR_CHECK_EQ(stats.pending_documents, 0u);
    // Generation accounting: the publish counter and the current
    // generation agree (generation is 0-based).
    ECDR_CHECK_EQ(stats.generation + 1, stats.published);

    Row row;
    row.mode = mode.name;
    row.writer_qps = mode.qps;
    row.searches = searches_per_mode;
    row.published = stats.published - published_before;
    row.reader_qps =
        mode_seconds > 0.0
            ? static_cast<double>(searches_per_mode) / mode_seconds
            : 0.0;
    row.p50_ms = Percentile(&latencies, 0.50);
    row.p95_ms = Percentile(&latencies, 0.95);
    row.retired_live_end = stats.retired_live;
    rows.push_back(row);
  }

  TablePrinter table({"writer", "searches", "published", "reader qps",
                      "p50 ms", "p95 ms", "retired@end"});
  for (const Row& row : rows) {
    table.AddRow({row.mode, std::to_string(row.searches),
                  std::to_string(row.published),
                  TablePrinter::FormatDouble(row.reader_qps, 1),
                  TablePrinter::FormatDouble(row.p50_ms, 3),
                  TablePrinter::FormatDouble(row.p95_ms, 3),
                  std::to_string(row.retired_live_end)});
  }
  table.Print(std::cout);

  WriteJson(rows, scale, smoke, "BENCH_snapshot_churn.json");
  std::printf("\nwrote BENCH_snapshot_churn.json\n");
  return 0;
}
