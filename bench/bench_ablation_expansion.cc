// Ablation: cost of ontology-based query expansion (the Section 2 /
// footnote-3 extension) on top of kNDS.
//
// Sweeps the expansion radius and reports expanded-query size, query
// time, and how much the result set moves versus the literal query
// (Jaccard overlap of result ids) — the classic recall-vs-cost dial of
// query expansion.

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <set>
#include <vector>

#include "bench/bench_common.h"
#include "core/knds.h"
#include "core/query_expansion.h"
#include "corpus/query_gen.h"
#include "util/table_printer.h"

namespace {

using ecdr::bench::Collection;
using ecdr::util::TablePrinter;

constexpr std::uint32_t kDefaultK = 10;
constexpr std::uint32_t kDefaultNq = 3;

double Jaccard(const std::vector<ecdr::core::ScoredDocument>& a,
               const std::vector<ecdr::core::ScoredDocument>& b) {
  std::set<ecdr::corpus::DocId> sa;
  std::set<ecdr::corpus::DocId> sb;
  for (const auto& r : a) sa.insert(r.id);
  for (const auto& r : b) sb.insert(r.id);
  std::vector<ecdr::corpus::DocId> inter;
  std::set_intersection(sa.begin(), sa.end(), sb.begin(), sb.end(),
                        std::back_inserter(inter));
  const std::size_t uni = sa.size() + sb.size() - inter.size();
  return uni == 0 ? 1.0 : static_cast<double>(inter.size()) / uni;
}

}  // namespace

int main() {
  const double scale = ecdr::bench::ScaleFromEnv();
  const std::uint32_t queries = ecdr::bench::QueriesFromEnv();
  ecdr::bench::Testbed testbed =
      ecdr::bench::BuildTestbed(scale, /*include_patient=*/false);
  ecdr::bench::PrintTestbedBanner(
      "Ablation: query expansion radius (RADIO, RDS nq=3, k=10)", testbed,
      scale, queries);
  const Collection& radio = testbed.radio;

  ecdr::ontology::AddressEnumerator enumerator(*testbed.ontology);
  ecdr::core::Drc drc(*testbed.ontology, &enumerator);
  ecdr::core::KndsOptions options;
  options.error_threshold = radio.rds_error_threshold;
  ecdr::core::Knds knds(*radio.corpus, *radio.inverted, &drc, options);

  const auto rds_queries = ecdr::corpus::GenerateRdsQueries(
      *radio.corpus, queries, kDefaultNq, 1101);

  TablePrinter table({"radius", "avg expanded concepts", "avg ms",
                      "result overlap vs radius 0"});
  // Baseline: literal queries.
  std::vector<std::vector<ecdr::core::ScoredDocument>> literal_results;
  {
    double total_ms = 0.0;
    for (const auto& query : rds_queries) {
      const auto results = knds.SearchRds(query, kDefaultK);
      ECDR_CHECK(results.ok());
      total_ms += knds.last_stats().total_seconds * 1e3;
      literal_results.push_back(*results);
    }
    table.AddRow({"0 (literal)", std::to_string(kDefaultNq),
                  TablePrinter::FormatDouble(total_ms / queries, 2), "1.00"});
  }

  for (const std::uint32_t radius : {1u, 2u, 3u}) {
    ecdr::core::QueryExpansionOptions expansion;
    expansion.radius = radius;
    expansion.decay = 0.5;
    expansion.max_expansions_per_concept = 8;
    double total_ms = 0.0;
    double total_concepts = 0.0;
    double total_overlap = 0.0;
    for (std::size_t q = 0; q < rds_queries.size(); ++q) {
      const auto expanded =
          ecdr::core::ExpandQuery(*testbed.ontology, rds_queries[q],
                                  expansion);
      ECDR_CHECK(expanded.ok());
      total_concepts += static_cast<double>(expanded->size());
      const auto results = knds.SearchRdsWeighted(*expanded, kDefaultK);
      ECDR_CHECK(results.ok());
      total_ms += knds.last_stats().total_seconds * 1e3;
      total_overlap += Jaccard(*results, literal_results[q]);
    }
    const double n = queries;
    table.AddRow({std::to_string(radius),
                  TablePrinter::FormatDouble(total_concepts / n, 1),
                  TablePrinter::FormatDouble(total_ms / n, 2),
                  TablePrinter::FormatDouble(total_overlap / n, 2)});
  }
  table.Print(std::cout);
  std::printf(
      "\nexpected: expansion multiplies the BFS origin count, so time rises\n"
      "with radius while the result set drifts from the literal ranking —\n"
      "the recall-vs-cost dial ontology-based expansion always exposes.\n");
  return 0;
}
