// Cross-query cache warm-up: kNDS latency on the Fig. 9 top-k workload
// (k=10, nq=5) with a cold vs warm Ddq memo, on PATIENT and RADIO, RDS
// and SDS. Each configuration runs the same query set twice against one
// shared DdqMemo: the first pass fills it (cold), the second is served
// from it (warm). Reports p50/p95 per-query latency for both passes,
// the warm/cold speedup, and the memo hit/miss counters, and writes the
// rows to BENCH_cache_warmup.json.
//
// The covered-distance shortcut is disabled so every exact distance
// flows through DRC and therefore through the memo — the regime the
// cache exists for. Warm results are verified bit-identical to cold
// (the memo stores the exact DRC doubles).
//
// Expected shape: warm p50 >= 1.5x faster than cold — DRC calls, the
// dominant per-query cost, collapse to hash lookups; the residual warm
// cost is the BFS traversal.

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "core/distance_cache.h"
#include "core/drc.h"
#include "core/knds.h"
#include "corpus/query_gen.h"
#include "util/table_printer.h"

namespace {

using ecdr::bench::Collection;
using ecdr::util::TablePrinter;

constexpr std::uint32_t kDefaultNq = 5;
constexpr std::uint32_t kTopK = 10;

struct Row {
  std::string collection;
  std::string mode;
  double cold_p50_ms = 0.0;
  double cold_p95_ms = 0.0;
  double warm_p50_ms = 0.0;
  double warm_p95_ms = 0.0;
  double p50_speedup = 0.0;
  std::uint64_t warm_hits = 0;
  std::uint64_t warm_misses = 0;
  double warm_hit_rate = 0.0;
  std::uint64_t warm_drc_calls = 0;
  bool matches_cold = true;
};

double Percentile(std::vector<double> sorted, double p) {
  if (sorted.empty()) return 0.0;
  std::sort(sorted.begin(), sorted.end());
  const std::size_t index = std::min(
      sorted.size() - 1,
      static_cast<std::size_t>(p * static_cast<double>(sorted.size())));
  return sorted[index];
}

bool SameResults(const std::vector<ecdr::core::ScoredDocument>& a,
                 const std::vector<ecdr::core::ScoredDocument>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].id != b[i].id || a[i].distance != b[i].distance) return false;
  }
  return true;
}

void RunCollection(const ecdr::ontology::Ontology& ontology,
                   ecdr::ontology::AddressEnumerator* enumerator,
                   const Collection& collection, bool sds,
                   std::uint32_t queries, std::vector<Row>* rows) {
  const auto rds_queries = ecdr::corpus::GenerateRdsQueries(
      *collection.corpus, queries, kDefaultNq, 800);
  const auto sds_queries =
      ecdr::corpus::SampleQueryDocuments(*collection.corpus, queries, 801);

  ecdr::core::KndsOptions options;
  options.error_threshold =
      sds ? collection.sds_error_threshold : collection.rds_error_threshold;
  options.covered_distance_shortcut = false;

  ecdr::core::DdqMemo memo(options.cache);
  ecdr::core::Drc drc(ontology, enumerator);
  ecdr::core::Knds knds(*collection.corpus, *collection.inverted, &drc,
                        options, nullptr, &memo);

  Row row;
  row.collection = collection.name;
  row.mode = sds ? "SDS" : "RDS";

  std::vector<std::vector<ecdr::core::ScoredDocument>> cold_results;
  cold_results.reserve(queries);
  std::vector<double> cold_ms, warm_ms;
  cold_ms.reserve(queries);
  warm_ms.reserve(queries);
  const auto counters_before_warm = [&]() { return memo.counters(); };
  ecdr::util::CacheCounters warm_base;

  for (const bool warm : {false, true}) {
    if (warm) warm_base = counters_before_warm();
    for (std::uint32_t q = 0; q < queries; ++q) {
      const auto result =
          sds ? knds.SearchSds(collection.corpus->document(sds_queries[q]),
                               kTopK)
              : knds.SearchRds(rds_queries[q], kTopK);
      ECDR_CHECK(result.ok());
      const double ms = knds.last_stats().total_seconds * 1e3;
      if (warm) {
        warm_ms.push_back(ms);
        row.warm_drc_calls += knds.last_stats().drc_calls;
        row.matches_cold =
            row.matches_cold && SameResults(cold_results[q], *result);
      } else {
        cold_ms.push_back(ms);
        cold_results.push_back(*result);
      }
    }
  }

  const auto warm_counters = memo.counters();
  row.warm_hits = warm_counters.hits - warm_base.hits;
  row.warm_misses = warm_counters.misses - warm_base.misses;
  const std::uint64_t lookups = row.warm_hits + row.warm_misses;
  row.warm_hit_rate =
      lookups == 0 ? 0.0
                   : static_cast<double>(row.warm_hits) /
                         static_cast<double>(lookups);
  row.cold_p50_ms = Percentile(cold_ms, 0.50);
  row.cold_p95_ms = Percentile(cold_ms, 0.95);
  row.warm_p50_ms = Percentile(warm_ms, 0.50);
  row.warm_p95_ms = Percentile(warm_ms, 0.95);
  row.p50_speedup = row.cold_p50_ms / std::max(1e-9, row.warm_p50_ms);
  rows->push_back(row);
}

void WriteJson(const std::vector<Row>& rows, const char* path) {
  std::FILE* file = std::fopen(path, "w");
  ECDR_CHECK(file != nullptr);
  std::fprintf(file, "{\n  \"benchmark\": \"cache_warmup\",\n");
  std::fprintf(file, "  \"workload\": \"fig9_topk\",\n  \"k\": %u,\n",
               kTopK);
  std::fprintf(file, "  \"rows\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    std::fprintf(file,
                 "    {\"collection\": \"%s\", \"mode\": \"%s\", "
                 "\"cold_p50_ms\": %.4f, \"cold_p95_ms\": %.4f, "
                 "\"warm_p50_ms\": %.4f, \"warm_p95_ms\": %.4f, "
                 "\"p50_speedup\": %.3f, \"warm_hits\": %llu, "
                 "\"warm_misses\": %llu, \"warm_hit_rate\": %.4f, "
                 "\"warm_drc_calls\": %llu, \"matches_cold\": %s}%s\n",
                 row.collection.c_str(), row.mode.c_str(), row.cold_p50_ms,
                 row.cold_p95_ms, row.warm_p50_ms, row.warm_p95_ms,
                 row.p50_speedup,
                 static_cast<unsigned long long>(row.warm_hits),
                 static_cast<unsigned long long>(row.warm_misses),
                 row.warm_hit_rate,
                 static_cast<unsigned long long>(row.warm_drc_calls),
                 row.matches_cold ? "true" : "false",
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(file, "  ]\n}\n");
  std::fclose(file);
}

}  // namespace

int main() {
  const double scale = ecdr::bench::ScaleFromEnv();
  const std::uint32_t queries = ecdr::bench::QueriesFromEnv();
  ecdr::bench::Testbed testbed = ecdr::bench::BuildTestbed(scale);
  ecdr::bench::PrintTestbedBanner(
      "Cache warm-up: kNDS latency cold vs warm Ddq memo (Fig. 9 "
      "workload, k=10)",
      testbed, scale, queries);

  // Frozen shared address cache, as RankingEngine configures it.
  ecdr::ontology::AddressEnumerator enumerator(*testbed.ontology);
  enumerator.PrecomputeAll();

  std::vector<Row> rows;
  for (const bool sds : {false, true}) {
    RunCollection(*testbed.ontology, &enumerator, testbed.patient, sds,
                  queries, &rows);
    RunCollection(*testbed.ontology, &enumerator, testbed.radio, sds,
                  queries, &rows);
  }

  TablePrinter table({"collection", "mode", "cold p50 ms", "cold p95 ms",
                      "warm p50 ms", "warm p95 ms", "p50 speedup",
                      "hit rate", "warm DRC", "matches cold"});
  bool all_match = true;
  bool all_fast = true;
  for (const Row& row : rows) {
    all_match = all_match && row.matches_cold;
    all_fast = all_fast && row.p50_speedup >= 1.5;
    table.AddRow({row.collection, row.mode,
                  TablePrinter::FormatDouble(row.cold_p50_ms, 3),
                  TablePrinter::FormatDouble(row.cold_p95_ms, 3),
                  TablePrinter::FormatDouble(row.warm_p50_ms, 3),
                  TablePrinter::FormatDouble(row.warm_p95_ms, 3),
                  TablePrinter::FormatDouble(row.p50_speedup, 2) + "x",
                  TablePrinter::FormatDouble(row.warm_hit_rate * 100.0, 1) +
                      "%",
                  std::to_string(row.warm_drc_calls),
                  row.matches_cold ? "yes" : "NO"});
  }
  table.Print(std::cout);

  WriteJson(rows, "BENCH_cache_warmup.json");
  std::printf("\nwrote BENCH_cache_warmup.json\n");
  std::printf("warm results match cold bit-for-bit: %s\n",
              all_match ? "yes" : "NO");
  std::printf("warm p50 >= 1.5x faster in every configuration: %s\n",
              all_fast ? "yes" : "NO");
  ECDR_CHECK(all_match);
  return 0;
}
