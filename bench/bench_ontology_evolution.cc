// Ontology evolution microbenchmark: incremental EvolveSnapshot vs a
// cold re-enumeration of the evolved DAG, across mutation shapes that
// touch subtrees of very different sizes. The structural outputs
// (readdressed / reused / invalidated counts, affected fraction) are
// deterministic at a given scale and double as the proportionality
// referee for the incremental re-enumerator: a no-op (retire-only)
// batch must re-address nothing, a leaf add must re-address exactly
// the batch's new concepts, and an add_edge must re-address exactly
// the child's descendant closure. Results go to
// BENCH_ontology_evolution.json; bench/
// check_ontology_evolution_regression.py gates the committed file
// against fresh CI runs.
//
// The cold side is measured in the same process on the same DAG, so
// the speedup column (cold_ms / incremental_ms) is machine-
// independent and carries the headline: evolution cost must track the
// touched subtree, not the ontology size.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "ontology/ontology_snapshot.h"
#include "util/table_printer.h"
#include "util/timer.h"

namespace {

using ecdr::ontology::ConceptId;
using ecdr::ontology::EvolutionStats;
using ecdr::ontology::Ontology;
using ecdr::ontology::OntologyMutation;
using ecdr::ontology::OntologySnapshot;
using ecdr::util::TablePrinter;

struct Row {
  std::string workload;
  std::uint32_t mutations = 0;
  std::uint64_t readdressed = 0;
  std::uint64_t readdressed_existing = 0;
  std::uint64_t reused = 0;
  std::uint64_t invalidated = 0;
  double affected_fraction = 0.0;  // readdressed / num_concepts (evolved)
  double retained_fraction = 0.0;  // existing pair-cache keys kept
  double incremental_ms = 0.0;
  double cold_ms = 0.0;
  double speedup = 0.0;  // cold / incremental, same process + DAG
};

/// Minimum over `reps` runs of `fn` (milliseconds). The result object
/// is destroyed inside the timed region on every iteration but the
/// last; both sides pay the same teardown so the ratio stays fair.
template <typename Fn>
double TimedMinMs(int reps, const Fn& fn) {
  double best = 0.0;
  for (int i = 0; i < reps; ++i) {
    ecdr::util::WallTimer timer;
    fn();
    const double ms = timer.ElapsedMillis();
    if (i == 0 || ms < best) best = ms;
  }
  return best;
}

std::uint64_t SubtreeSize(const Ontology& dag, ConceptId root) {
  std::vector<std::uint8_t> seen(dag.num_concepts(), 0);
  std::vector<ConceptId> frontier{root};
  seen[root] = 1;
  std::uint64_t count = 0;
  while (!frontier.empty()) {
    const ConceptId c = frontier.back();
    frontier.pop_back();
    ++count;
    for (const ConceptId child : dag.children(c)) {
      if (!seen[child]) {
        seen[child] = 1;
        frontier.push_back(child);
      }
    }
  }
  return count;
}

Row RunCase(const std::string& workload,
            const std::shared_ptr<const OntologySnapshot>& base,
            const std::vector<OntologyMutation>& mutations, int reps) {
  Row row;
  row.workload = workload;
  row.mutations = static_cast<std::uint32_t>(mutations.size());

  EvolutionStats stats;
  auto evolved = ecdr::ontology::EvolveSnapshot(base, mutations, &stats);
  ECDR_CHECK(evolved.ok());
  ECDR_CHECK(!stats.full_rebuild);
  row.readdressed = stats.readdressed_concepts;
  row.readdressed_existing = stats.readdressed_existing;
  row.reused = stats.reused_concepts;
  row.invalidated = stats.invalidated_existing.size();
  const std::uint32_t evolved_n = (*evolved)->dag().num_concepts();
  row.affected_fraction =
      static_cast<double>(row.readdressed) / evolved_n;
  const std::uint32_t existing_n = base->dag().num_concepts();
  row.retained_fraction =
      1.0 - static_cast<double>(row.invalidated) / existing_n;

  row.incremental_ms = TimedMinMs(reps, [&] {
    EvolutionStats scratch;
    auto snap = ecdr::ontology::EvolveSnapshot(base, mutations, &scratch);
    ECDR_CHECK(snap.ok());
  });
  // Cold side: full precompute over the exact evolved DAG (shared, so
  // neither side pays a DAG rebuild inside the timed region).
  const auto evolved_dag = (*evolved)->dag_ptr();
  row.cold_ms = TimedMinMs(std::max(1, reps / 4), [&] {
    auto snap = OntologySnapshot::Baseline(evolved_dag, base->options(),
                                           /*precompute=*/true);
    ECDR_CHECK(snap != nullptr);
  });
  row.speedup = row.incremental_ms > 0.0 ? row.cold_ms / row.incremental_ms
                                         : 0.0;
  return row;
}

void WriteJson(const std::vector<Row>& rows, double scale,
               std::uint32_t num_concepts, bool smoke, const char* path) {
  std::FILE* file = std::fopen(path, "w");
  ECDR_CHECK(file != nullptr);
  std::fprintf(file, "{\n  \"benchmark\": \"ontology_evolution\",\n");
  std::fprintf(file, "  \"scale\": %.4f,\n  \"num_concepts\": %u,\n", scale,
               num_concepts);
  std::fprintf(file, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(file, "  \"rows\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    std::fprintf(
        file,
        "    {\"workload\": \"%s\", \"mutations\": %u, "
        "\"readdressed\": %llu, \"readdressed_existing\": %llu, "
        "\"reused\": %llu, \"invalidated\": %llu, "
        "\"affected_fraction\": %.6f, \"retained_fraction\": %.6f, "
        "\"incremental_ms\": %.4f, \"cold_ms\": %.4f, "
        "\"speedup\": %.2f}%s\n",
        row.workload.c_str(), row.mutations,
        static_cast<unsigned long long>(row.readdressed),
        static_cast<unsigned long long>(row.readdressed_existing),
        static_cast<unsigned long long>(row.reused),
        static_cast<unsigned long long>(row.invalidated),
        row.affected_fraction, row.retained_fraction, row.incremental_ms,
        row.cold_ms, row.speedup, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(file, "  ]\n}\n");
  std::fclose(file);
  std::printf("wrote %s\n", path);
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const double scale = ecdr::bench::ScaleFromEnv();
  const int reps = smoke ? 3 : 12;

  // Ontology only — evolution cost is independent of any corpus.
  ecdr::bench::Testbed testbed = ecdr::bench::BuildTestbed(
      scale, /*include_patient=*/false, /*include_radio=*/false);
  const auto dag_shared =
      std::make_shared<const Ontology>(std::move(*testbed.ontology));
  const Ontology& dag = *dag_shared;
  const std::uint32_t n = dag.num_concepts();
  std::printf(
      "== Ontology evolution: incremental re-enumeration vs cold rebuild "
      "==\nsubstrate: synthetic SNOMED-like ontology, %u concepts, %llu "
      "edges (scale=%.3f, reps=%d)\n\n",
      n, static_cast<unsigned long long>(dag.num_edges()), scale, reps);

  auto base = OntologySnapshot::Baseline(dag_shared);
  ECDR_CHECK(base != nullptr);

  std::vector<Row> rows;

  // No-op control: retire-only, zero re-enumeration by construction.
  {
    std::vector<OntologyMutation> batch;
    for (ConceptId c = n / 2; c < n / 2 + 8; ++c) {
      OntologyMutation m;
      m.kind = OntologyMutation::Kind::kRetireConcept;
      m.target = c;
      batch.push_back(std::move(m));
    }
    rows.push_back(RunCase("noop_retire_8", base, batch, reps));
  }

  // Single leaf under a deep parent: the smallest structural change.
  {
    OntologyMutation m;
    m.kind = OntologyMutation::Kind::kAddConcept;
    m.name = "bench_leaf_single";
    m.parents = {static_cast<ConceptId>(n - 1)};
    rows.push_back(RunCase("leaf_add_1", base, {m}, reps));
  }

  // A batch of leaves spread over the deep half of the DAG.
  {
    const std::uint32_t batch_size = smoke ? 8 : 64;
    std::vector<OntologyMutation> batch;
    for (std::uint32_t i = 0; i < batch_size; ++i) {
      OntologyMutation m;
      m.kind = OntologyMutation::Kind::kAddConcept;
      m.name = "bench_leaf_" + std::to_string(i);
      m.parents = {
          static_cast<ConceptId>(n / 2 + (i * 97) % (n / 2))};
      batch.push_back(std::move(m));
    }
    rows.push_back(RunCase("leaf_add_" + std::to_string(batch_size), base,
                           batch, reps));
  }

  // add_edge onto a childless existing concept: re-addresses exactly
  // one existing concept (subtree of size 1).
  {
    ConceptId leaf = ecdr::ontology::kInvalidConcept;
    for (ConceptId c = n; c-- > 1;) {
      if (dag.children(c).empty()) {
        leaf = c;
        break;
      }
    }
    ECDR_CHECK(leaf != ecdr::ontology::kInvalidConcept);
    // A parent that is not already one: the root's id-0 slot never
    // collides with generated extra parents of a deep leaf unless the
    // leaf is a root child; skip forward until the edge is new.
    ConceptId parent = 0;
    const auto has_parent = [&](ConceptId candidate) {
      const auto parents = dag.parents(leaf);
      return std::find(parents.begin(), parents.end(), candidate) !=
             parents.end();
    };
    while (has_parent(parent) && parent + 1 < leaf) ++parent;
    ECDR_CHECK(!has_parent(parent));
    OntologyMutation m;
    m.kind = OntologyMutation::Kind::kAddEdge;
    m.parent = parent;
    m.child = leaf;
    rows.push_back(RunCase("edge_leaf_subtree", base, {m}, reps));
  }

  // add_edge onto a mid-tree concept with a real descendant closure:
  // cost must track the subtree, not the ontology.
  {
    // Pick the concept whose subtree is closest to 10% of the DAG.
    ConceptId child = 1;
    std::uint64_t best_delta = ~std::uint64_t{0};
    const std::uint64_t target = n / 10;
    for (ConceptId c = 1; c < std::min<ConceptId>(n, 512); ++c) {
      const std::uint64_t size = SubtreeSize(dag, c);
      const std::uint64_t delta =
          size > target ? size - target : target - size;
      if (delta < best_delta) {
        best_delta = delta;
        child = c;
      }
    }
    const auto parents = dag.parents(child);
    ECDR_CHECK(std::find(parents.begin(), parents.end(), 0u) ==
               parents.end());
    OntologyMutation m;
    m.kind = OntologyMutation::Kind::kAddEdge;
    m.parent = 0;  // the root is an ancestor of everything: never a cycle
    m.child = child;
    rows.push_back(RunCase("edge_mid_subtree", base, {m}, reps));
  }

  TablePrinter table({"workload", "muts", "readdr", "existing", "reused",
                      "inval", "affected%", "retained%", "incr ms",
                      "cold ms", "speedup"});
  for (const Row& row : rows) {
    table.AddRow(
        {row.workload, std::to_string(row.mutations),
         std::to_string(row.readdressed),
         std::to_string(row.readdressed_existing),
         std::to_string(row.reused), std::to_string(row.invalidated),
         TablePrinter::FormatDouble(row.affected_fraction * 100.0, 2),
         TablePrinter::FormatDouble(row.retained_fraction * 100.0, 2),
         TablePrinter::FormatDouble(row.incremental_ms, 3),
         TablePrinter::FormatDouble(row.cold_ms, 3),
         TablePrinter::FormatDouble(row.speedup, 1)});
  }
  table.Print(std::cout);

  WriteJson(rows, scale, n, smoke, "BENCH_ontology_evolution.json");
  return 0;
}
