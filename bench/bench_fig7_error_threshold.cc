// Reproduces Figure 7: kNDS query time vs the error threshold eps_theta,
// split into graph-traversal and distance-calculation (DRC) components.
//
//   7(a,b)  RDS on PATIENT, nq in {3, 5}      — optimum at eps = 0
//   7(c-e)  RDS on RADIO, nq in {3, 5, 10}    — lower times at high eps
//   7(f)    optimal eps vs nq on RADIO (RDS)  — grows with nq
//   7(g,h)  SDS on PATIENT / RADIO
//
// Also reports the fraction of examined documents that ended up in the
// top-k, the paper's justification for the 0.5 / 0.9 defaults
// (Section 6.2: 99% for RDS on PATIENT, >60% for SDS).

#include <cstdio>
#include <iostream>
#include <map>
#include <vector>

#include "bench/bench_common.h"
#include "core/knds.h"
#include "corpus/query_gen.h"
#include "util/stats.h"
#include "util/table_printer.h"

namespace {

using ecdr::bench::Collection;
using ecdr::util::TablePrinter;

constexpr double kEpsilons[] = {0.0, 0.25, 0.5, 0.75, 0.9, 1.0};
constexpr std::uint32_t kDefaultK = 10;

struct SweepPoint {
  double total_ms = 0.0;
  double traversal_ms = 0.0;
  double distance_ms = 0.0;
  double drc_calls = 0.0;
  double examined = 0.0;
  double in_topk_fraction = 0.0;
};

// Runs one (collection, mode) sweep over all epsilon values and appends
// table rows. Returns total_ms per epsilon for the Fig. 7(f) argmin.
std::map<double, double> RunSweep(const ecdr::ontology::Ontology& ontology,
                                  const Collection& collection, bool sds,
                                  std::uint32_t nq, std::uint32_t queries,
                                  TablePrinter* table,
                                  double io_seconds = 0.0) {
  ecdr::ontology::AddressEnumerator enumerator(ontology);
  ecdr::core::Drc drc(ontology, &enumerator);

  std::vector<std::vector<ecdr::ontology::ConceptId>> rds_queries;
  std::vector<ecdr::corpus::DocId> sds_queries;
  if (sds) {
    sds_queries =
        ecdr::corpus::SampleQueryDocuments(*collection.corpus, queries, 301);
  } else {
    rds_queries =
        ecdr::corpus::GenerateRdsQueries(*collection.corpus, queries, nq, 302);
  }

  const std::string mode =
      sds ? "SDS" : "RDS nq=" + std::to_string(nq);
  std::map<double, double> total_by_eps;
  for (const double eps : kEpsilons) {
    ecdr::core::KndsOptions options;
    options.error_threshold = eps;
    options.simulated_postings_access_seconds = io_seconds;
    ecdr::core::Knds knds(*collection.corpus, *collection.inverted, &drc,
                          options);
    SweepPoint point;
    for (std::uint32_t q = 0; q < queries; ++q) {
      const auto results =
          sds ? knds.SearchSds(collection.corpus->document(sds_queries[q]),
                               kDefaultK)
              : knds.SearchRds(rds_queries[q], kDefaultK);
      ECDR_CHECK(results.ok());
      const auto& stats = knds.last_stats();
      point.total_ms += stats.total_seconds * 1e3;
      point.traversal_ms += stats.traversal_seconds * 1e3;
      point.distance_ms += stats.distance_seconds * 1e3;
      point.drc_calls += static_cast<double>(stats.drc_calls);
      point.examined += static_cast<double>(stats.documents_examined);
      if (stats.documents_examined > 0) {
        point.in_topk_fraction += static_cast<double>(results->size()) /
                                  static_cast<double>(stats.documents_examined);
      }
    }
    const double n = queries;
    table->AddRow({collection.name, mode,
                   TablePrinter::FormatDouble(eps, 2),
                   TablePrinter::FormatDouble(point.total_ms / n, 2),
                   TablePrinter::FormatDouble(point.traversal_ms / n, 2),
                   TablePrinter::FormatDouble(point.distance_ms / n, 2),
                   TablePrinter::FormatDouble(point.drc_calls / n, 1),
                   TablePrinter::FormatDouble(point.examined / n, 1),
                   TablePrinter::FormatDouble(
                       100.0 * point.in_topk_fraction / n, 1)});
    total_by_eps[eps] = point.total_ms / n;
  }
  return total_by_eps;
}

}  // namespace

int main() {
  const double scale = ecdr::bench::ScaleFromEnv();
  const std::uint32_t queries = ecdr::bench::QueriesFromEnv();
  ecdr::bench::Testbed testbed = ecdr::bench::BuildTestbed(scale);
  ecdr::bench::PrintTestbedBanner(
      "Figure 7: kNDS query time vs error threshold eps_theta (k=10)",
      testbed, scale, queries);

  TablePrinter table({"collection", "mode", "eps", "total ms",
                      "traversal ms", "DRC ms", "DRC calls", "examined",
                      "% examined in top-k"});

  // 7(a,b): RDS on PATIENT.
  for (const std::uint32_t nq : {3u, 5u}) {
    RunSweep(*testbed.ontology, testbed.patient, /*sds=*/false, nq, queries,
             &table);
  }
  // 7(c-e): RDS on RADIO (plus data for 7(f)).
  std::map<std::uint32_t, std::map<double, double>> radio_rds;
  for (const std::uint32_t nq : {1u, 3u, 5u, 10u}) {
    radio_rds[nq] = RunSweep(*testbed.ontology, testbed.radio, /*sds=*/false,
                             nq, queries, &table, /*io_seconds=*/0.0);
  }
  // 7(g,h): SDS on both.
  RunSweep(*testbed.ontology, testbed.patient, /*sds=*/true, 0, queries,
           &table);
  RunSweep(*testbed.ontology, testbed.radio, /*sds=*/true, 0, queries,
           &table);
  table.Print(std::cout);

  // 7(f): optimal eps vs nq for RDS on RADIO.
  std::printf("\nFigure 7(f): optimal error threshold vs nq (RADIO, RDS)\n");
  TablePrinter optimal({"nq", "optimal eps", "time at optimum (ms)"});
  for (const auto& [nq, totals] : radio_rds) {
    double best_eps = 0.0;
    double best_ms = totals.begin()->second;
    for (const auto& [eps, ms] : totals) {
      if (ms < best_ms) {
        best_ms = ms;
        best_eps = eps;
      }
    }
    optimal.AddRow({std::to_string(nq),
                    TablePrinter::FormatDouble(best_eps, 2),
                    TablePrinter::FormatDouble(best_ms, 2)});
  }
  optimal.Print(std::cout);

  // The paper's RADIO regime: its inverted/forward indexes lived in
  // MySQL, so every level of traversal paid I/O while DRC ran on the
  // CPU. An all-in-memory build inverts that ratio, so we additionally
  // measure RADIO with a simulated per-postings-fetch latency
  // (ECDR_BENCH_IO_US, default 20 us — a conservative figure for a warm
  // local DBMS round trip). Under it, eager probing (large eps) wins,
  // matching Fig. 7(c-e).
  const char* io_env = std::getenv("ECDR_BENCH_IO_US");
  const double io_us = io_env == nullptr ? 20.0 : std::atof(io_env);
  std::printf(
      "\nFigure 7(c-e) under the paper's DBMS-backed cost model "
      "(simulated %.0f us per postings fetch), RADIO RDS:\n",
      io_us);
  TablePrinter io_table({"collection", "mode", "eps", "total ms",
                         "traversal ms", "DRC ms", "DRC calls", "examined",
                         "% examined in top-k"});
  std::map<std::uint32_t, std::map<double, double>> io_radio_rds;
  for (const std::uint32_t nq : {1u, 3u, 5u, 10u}) {
    io_radio_rds[nq] =
        RunSweep(*testbed.ontology, testbed.radio, /*sds=*/false, nq,
                 queries, &io_table, io_us * 1e-6);
  }
  io_table.Print(std::cout);

  std::printf(
      "\nFigure 7(f) under the DBMS-backed cost model: optimal eps vs nq\n");
  TablePrinter io_optimal({"nq", "optimal eps", "time at optimum (ms)"});
  for (const auto& [nq, totals] : io_radio_rds) {
    double best_eps = 0.0;
    double best_ms = totals.begin()->second;
    for (const auto& [eps, ms] : totals) {
      if (ms < best_ms) {
        best_ms = ms;
        best_eps = eps;
      }
    }
    io_optimal.AddRow({std::to_string(nq),
                       TablePrinter::FormatDouble(best_eps, 2),
                       TablePrinter::FormatDouble(best_ms, 2)});
  }
  io_optimal.Print(std::cout);

  std::printf(
      "\nexpected shape (paper Fig. 7): PATIENT favors eps=0 (dense,\n"
      "cohesive documents make DRC calls expensive and waiting cheap);\n"
      "under traversal I/O costs, sparse RADIO favors large eps and the\n"
      "optimal eps grows with query size.\n");
  return 0;
}
