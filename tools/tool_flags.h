// Minimal --flag=value / --flag value parsing for the CLI tools.

#ifndef ECDR_TOOLS_TOOL_FLAGS_H_
#define ECDR_TOOLS_TOOL_FLAGS_H_

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "util/string_util.h"

namespace ecdr::tools {

/// Parsed command line: --key=value / --key value pairs plus positional
/// arguments. Unknown flags are the caller's problem (checked via
/// Consumed()).
class Flags {
 public:
  Flags(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        positional_.push_back(std::move(arg));
        continue;
      }
      arg.erase(0, 2);
      const auto eq = arg.find('=');
      if (eq != std::string::npos) {
        values_[arg.substr(0, eq)] = arg.substr(eq + 1);
      } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        values_[arg] = argv[++i];
      } else {
        values_[arg] = "true";
      }
    }
  }

  std::string GetString(const std::string& key,
                        const std::string& default_value) {
    const auto it = values_.find(key);
    if (it == values_.end()) return default_value;
    consumed_.push_back(key);
    return it->second;
  }

  std::uint32_t GetUint32(const std::string& key,
                          std::uint32_t default_value) {
    const auto it = values_.find(key);
    if (it == values_.end()) return default_value;
    consumed_.push_back(key);
    std::uint32_t value = 0;
    if (!util::ParseUint32(it->second, &value)) {
      std::fprintf(stderr, "bad value for --%s: '%s'\n", key.c_str(),
                   it->second.c_str());
      std::exit(2);
    }
    return value;
  }

  double GetDouble(const std::string& key, double default_value) {
    const auto it = values_.find(key);
    if (it == values_.end()) return default_value;
    consumed_.push_back(key);
    double value = 0;
    if (!util::ParseDouble(it->second, &value)) {
      std::fprintf(stderr, "bad value for --%s: '%s'\n", key.c_str(),
                   it->second.c_str());
      std::exit(2);
    }
    return value;
  }

  bool GetBool(const std::string& key, bool default_value) {
    const auto it = values_.find(key);
    if (it == values_.end()) return default_value;
    consumed_.push_back(key);
    return it->second != "false" && it->second != "0";
  }

  const std::vector<std::string>& positional() const { return positional_; }

  /// Exits with an error if any --flag was not consumed by a Get*.
  void CheckAllConsumed() const {
    for (const auto& [key, value] : values_) {
      bool used = false;
      for (const auto& name : consumed_) used |= name == key;
      if (!used) {
        std::fprintf(stderr, "unknown flag --%s\n", key.c_str());
        std::exit(2);
      }
    }
  }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> consumed_;
  std::vector<std::string> positional_;
};

}  // namespace ecdr::tools

#endif  // ECDR_TOOLS_TOOL_FLAGS_H_
