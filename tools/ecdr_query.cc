// CLI: run RDS / SDS queries against an ontology + corpus on disk.
//
//   # RDS by a concept name (names may contain spaces; synonyms work)
//   # and/or a comma-separated id list:
//   ecdr_query --ontology onto.txt --corpus corpus.txt --k 10 ...
//              --concept "heart disease" --concept-ids 17,42
//
//   # SDS by document id:
//   ecdr_query --ontology onto.txt --corpus corpus.txt --doc 12 --k 5
//
// Optional: --eps 0.5 (error threshold), --baseline (cross-check against
// the exhaustive ranker), --stats (print search statistics),
// --deadline_ms 50 (anytime mode: stop at the budget and report partial
// results with per-result error bounds; see DESIGN.md "Deadlines,
// degradation, and overload").

#include <cstdio>
#include <string>
#include <vector>

#include "core/drc.h"
#include "core/exhaustive_ranker.h"
#include "core/knds.h"
#include "corpus/corpus_io.h"
#include "index/inverted_index.h"
#include "ontology/ontology_io.h"
#include "tools/tool_flags.h"
#include "util/string_util.h"

int main(int argc, char** argv) {
  ecdr::tools::Flags flags(argc, argv);
  const std::string ontology_path = flags.GetString("ontology", "");
  const std::string corpus_path = flags.GetString("corpus", "");
  const std::string concept_name = flags.GetString("concept", "");
  const std::string concept_ids = flags.GetString("concept-ids", "");
  const std::uint32_t doc_id = flags.GetUint32("doc", 0xFFFFFFFFu);
  const std::uint32_t k = flags.GetUint32("k", 10);
  const double eps = flags.GetDouble("eps", 0.5);
  const double deadline_ms = flags.GetDouble("deadline_ms", 0.0);
  const bool run_baseline = flags.GetBool("baseline", false);
  const bool print_stats = flags.GetBool("stats", false);
  flags.CheckAllConsumed();

  if (ontology_path.empty() || corpus_path.empty()) {
    std::fprintf(stderr, "--ontology and --corpus are required\n");
    return 2;
  }
  auto ontology = ecdr::ontology::LoadOntologyAuto(ontology_path);
  if (!ontology.ok()) {
    std::fprintf(stderr, "%s\n", ontology.status().ToString().c_str());
    return 1;
  }
  auto corpus = ecdr::corpus::LoadCorpusAuto(*ontology, corpus_path);
  if (!corpus.ok()) {
    std::fprintf(stderr, "%s\n", corpus.status().ToString().c_str());
    return 1;
  }

  // Assemble the query: SDS if --doc, otherwise RDS from names/ids.
  std::vector<ecdr::ontology::ConceptId> query;
  if (!concept_name.empty()) {
    const auto id = ontology->FindByName(concept_name);
    if (id == ecdr::ontology::kInvalidConcept) {
      std::fprintf(stderr, "unknown concept '%s'\n", concept_name.c_str());
      return 1;
    }
    query.push_back(id);
  }
  if (!concept_ids.empty()) {
    for (const auto piece : ecdr::util::Split(concept_ids, ',')) {
      std::uint32_t id = 0;
      if (!ecdr::util::ParseUint32(piece, &id) || !ontology->Contains(id)) {
        std::fprintf(stderr, "bad concept id '%s'\n",
                     std::string(piece).c_str());
        return 1;
      }
      query.push_back(id);
    }
  }
  const bool sds = doc_id != 0xFFFFFFFFu;
  if (sds == !query.empty()) {
    std::fprintf(stderr,
                 "pass either --doc (SDS) or --concept/--concept-ids (RDS)\n");
    return 2;
  }
  if (sds && doc_id >= corpus->num_documents()) {
    std::fprintf(stderr, "--doc %u out of range (%u documents)\n", doc_id,
                 corpus->num_documents());
    return 1;
  }

  ecdr::index::InvertedIndex inverted(*corpus);
  ecdr::ontology::AddressEnumerator addresses(*ontology);
  ecdr::core::Drc drc(*ontology, &addresses);
  ecdr::core::KndsOptions options;
  options.error_threshold = eps;
  if (deadline_ms > 0.0) {
    options.deadline = ecdr::util::Deadline::After(deadline_ms / 1e3);
  }
  ecdr::core::Knds knds(*corpus, inverted, &drc, options);

  const auto results = sds
                           ? knds.SearchSds(corpus->document(doc_id), k)
                           : knds.SearchRds(query, k);
  if (!results.ok()) {
    std::fprintf(stderr, "%s\n", results.status().ToString().c_str());
    return 1;
  }
  const bool truncated = knds.last_stats().truncated;
  std::printf("%s top-%u%s:\n", sds ? "SDS" : "RDS", k,
              truncated ? " (TRUNCATED at deadline; distances are lower "
                          "bounds where error_bound > 0)"
                        : "");
  for (const auto& result : *results) {
    if (truncated) {
      std::printf("  doc %-8u distance %.4f  error_bound %.4f\n", result.id,
                  result.distance, result.error_bound);
    } else {
      std::printf("  doc %-8u distance %.4f\n", result.id, result.distance);
    }
  }
  if (print_stats) {
    const auto& stats = knds.last_stats();
    std::printf(
        "levels=%llu visits=%llu touched=%llu examined=%llu drc=%llu "
        "pruned=%llu time=%.2fms (traversal %.2fms, distance %.2fms)\n",
        static_cast<unsigned long long>(stats.levels),
        static_cast<unsigned long long>(stats.concept_visits),
        static_cast<unsigned long long>(stats.documents_touched),
        static_cast<unsigned long long>(stats.documents_examined),
        static_cast<unsigned long long>(stats.drc_calls),
        static_cast<unsigned long long>(stats.documents_pruned),
        stats.total_seconds * 1e3, stats.traversal_seconds * 1e3,
        stats.distance_seconds * 1e3);
  }
  if (run_baseline && truncated) {
    // A truncated run is allowed to disagree with the exhaustive ranker;
    // its contract is the error bounds, not exactness.
    std::printf("exhaustive cross-check: skipped (truncated result)\n");
  } else if (run_baseline) {
    ecdr::core::ExhaustiveRanker baseline(*corpus, &drc);
    const auto check = sds
                           ? baseline.TopKSimilar(corpus->document(doc_id), k)
                           : baseline.TopKRelevant(query, k);
    ECDR_CHECK(check.ok());
    bool match = check->size() == results->size();
    for (std::size_t i = 0; match && i < check->size(); ++i) {
      match = (*check)[i].distance == (*results)[i].distance;
    }
    std::printf("exhaustive cross-check: %s (%.2f ms)\n",
                match ? "MATCH" : "MISMATCH",
                baseline.last_stats().seconds * 1e3);
    if (!match) return 1;
  }
  return 0;
}
