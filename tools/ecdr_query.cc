// CLI: run RDS / SDS queries against an ontology + corpus on disk,
// through the full RankingEngine (snapshot isolation, admission,
// caches) rather than a bare Knds.
//
//   # RDS by a concept name (names may contain spaces; synonyms work)
//   # and/or a comma-separated id list:
//   ecdr_query --ontology onto.txt --corpus corpus.txt --k 10 ...
//              --concept "heart disease" --concept-ids 17,42
//
//   # SDS by document id:
//   ecdr_query --ontology onto.txt --corpus corpus.txt --doc 12 --k 5
//
// Engine knobs: --threads 4 (intra-query lanes; 0 = hardware),
// --shards 4 (bulk-load shard count), --repeat 20 (run the query N
// times), --writer_qps 100 (run a background writer appending document
// copies at that rate while the queries execute — searches never block
// on it; see DESIGN.md "Snapshot lifecycle").
//
// Optional: --eps 0.5 (error threshold), --baseline (cross-check against
// the exhaustive ranker), --stats (print per-query search, snapshot and
// admission statistics), --deadline_ms 50 (anytime mode: stop at the
// budget and report partial results with per-result error bounds; see
// DESIGN.md "Deadlines, degradation, and overload").
//
// Ontology evolution: --mutate_script evolve.txt applies a mutation
// script (one `add_concept <name> <parent>...` / `retire_concept
// <name>` / `add_edge <parent> <child>` per line, '#' comments) to the
// live engine before the queries run and prints the incremental
// re-enumeration stats — so queries can reference concepts the script
// just added.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/drc.h"
#include "core/exhaustive_ranker.h"
#include "core/knds.h"
#include "core/ranking_engine.h"
#include "corpus/corpus_io.h"
#include "ontology/ontology_io.h"
#include "tools/tool_flags.h"
#include "util/string_util.h"

int main(int argc, char** argv) {
  ecdr::tools::Flags flags(argc, argv);
  const std::string ontology_path = flags.GetString("ontology", "");
  const std::string corpus_path = flags.GetString("corpus", "");
  const std::string concept_name = flags.GetString("concept", "");
  const std::string concept_ids = flags.GetString("concept-ids", "");
  const std::uint32_t doc_id = flags.GetUint32("doc", 0xFFFFFFFFu);
  const std::uint32_t k = flags.GetUint32("k", 10);
  const double eps = flags.GetDouble("eps", 0.5);
  const double deadline_ms = flags.GetDouble("deadline_ms", 0.0);
  const std::uint32_t threads = flags.GetUint32("threads", 1);
  const std::uint32_t shards = flags.GetUint32("shards", 1);
  const std::uint32_t repeat = flags.GetUint32("repeat", 1);
  const double writer_qps = flags.GetDouble("writer_qps", 0.0);
  const bool run_baseline = flags.GetBool("baseline", false);
  const bool print_stats = flags.GetBool("stats", false);
  const std::string mutate_script = flags.GetString("mutate_script", "");
  flags.CheckAllConsumed();

  if (ontology_path.empty() || corpus_path.empty()) {
    std::fprintf(stderr, "--ontology and --corpus are required\n");
    return 2;
  }
  ecdr::core::RankingEngineOptions engine_options;
  engine_options.knds.num_threads = threads;
  engine_options.knds.error_threshold = eps;
  engine_options.snapshot.num_shards = shards;
  auto engine = ecdr::core::RankingEngine::CreateFromFiles(
      ontology_path, corpus_path, engine_options);
  if (!engine.ok()) {
    std::fprintf(stderr, "%s\n", engine.status().ToString().c_str());
    return 1;
  }
  if (!mutate_script.empty()) {
    std::ifstream in(mutate_script);
    if (!in) {
      std::fprintf(stderr, "cannot read --mutate_script '%s'\n",
                   mutate_script.c_str());
      return 1;
    }
    std::ostringstream text;
    text << in.rdbuf();
    const auto base = (*engine)->ontology_snapshot();
    const auto mutations =
        ecdr::ontology::ParseMutationScript(text.str(), base->dag());
    if (!mutations.ok()) {
      std::fprintf(stderr, "%s\n", mutations.status().ToString().c_str());
      return 1;
    }
    const auto evolved = (*engine)->ApplyOntologyMutations(*mutations);
    if (!evolved.ok()) {
      std::fprintf(stderr, "%s\n", evolved.status().ToString().c_str());
      return 1;
    }
    const auto onto_stats = (*engine)->ontology_stats();
    std::printf(
        "mutate: %zu mutations -> version %llu (+%llu concepts, "
        "%llu retired, +%llu edges); readdressed %llu (existing %llu), "
        "reused %llu, identity 0x%016llx\n",
        mutations->size(),
        static_cast<unsigned long long>(onto_stats.version),
        static_cast<unsigned long long>(evolved->added_concepts),
        static_cast<unsigned long long>(evolved->retired_concepts),
        static_cast<unsigned long long>(evolved->added_edges),
        static_cast<unsigned long long>(evolved->readdressed_concepts),
        static_cast<unsigned long long>(evolved->readdressed_existing),
        static_cast<unsigned long long>(evolved->reused_concepts),
        static_cast<unsigned long long>(onto_stats.identity_hash));
  }
  // Pin the (possibly just-evolved) ontology for the whole run: the
  // shared_ptr keeps the DAG alive across any later evolution.
  const auto onto_snap = (*engine)->ontology_snapshot();
  const ecdr::ontology::Ontology& ontology = onto_snap->dag();

  // Assemble the query: SDS if --doc, otherwise RDS from names/ids.
  std::vector<ecdr::ontology::ConceptId> query;
  if (!concept_name.empty()) {
    const auto id = ontology.FindByName(concept_name);
    if (id == ecdr::ontology::kInvalidConcept) {
      std::fprintf(stderr, "unknown concept '%s'\n", concept_name.c_str());
      return 1;
    }
    query.push_back(id);
  }
  if (!concept_ids.empty()) {
    for (const auto piece : ecdr::util::Split(concept_ids, ',')) {
      std::uint32_t id = 0;
      if (!ecdr::util::ParseUint32(piece, &id) || !ontology.Contains(id)) {
        std::fprintf(stderr, "bad concept id '%s'\n",
                     std::string(piece).c_str());
        return 1;
      }
      query.push_back(id);
    }
  }
  const bool sds = doc_id != 0xFFFFFFFFu;
  if (sds == !query.empty()) {
    std::fprintf(stderr,
                 "pass either --doc (SDS) or --concept/--concept-ids (RDS)\n");
    return 2;
  }
  const std::uint32_t loaded_docs =
      (*engine)->snapshot()->corpus.num_documents();
  if (sds && doc_id >= loaded_docs) {
    std::fprintf(stderr, "--doc %u out of range (%u documents)\n", doc_id,
                 loaded_docs);
    return 1;
  }

  // Optional background writer: appends copies of the loaded documents
  // at --writer_qps while the queries below run. Reads are snapshot-
  // isolated, so this changes throughput, never correctness.
  std::atomic<bool> writer_stop{false};
  std::uint64_t writer_appended = 0;
  std::thread writer;
  if (writer_qps > 0.0) {
    writer = std::thread([&] {
      const auto period = std::chrono::duration<double>(1.0 / writer_qps);
      std::uint32_t next = 0;
      const auto base = (*engine)->snapshot();
      while (!writer_stop.load(std::memory_order_acquire)) {
        const auto concepts =
            base->corpus.document(next % loaded_docs).concepts();
        if ((*engine)
                ->AddDocument({concepts.begin(), concepts.end()})
                .ok()) {
          ++writer_appended;
        }
        ++next;
        std::this_thread::sleep_for(period);
      }
    });
  }

  ecdr::util::StatusOr<std::vector<ecdr::core::ScoredDocument>> results =
      std::vector<ecdr::core::ScoredDocument>{};
  for (std::uint32_t run = 0; run < repeat; ++run) {
    ecdr::core::SearchControl control;
    if (deadline_ms > 0.0) {
      control.deadline = ecdr::util::Deadline::After(deadline_ms / 1e3);
    }
    results = sds ? (*engine)->FindSimilar(doc_id, k, control)
                  : (*engine)->FindRelevant(query, k, control);
    if (!results.ok()) break;
    if (print_stats) {
      const auto stats = (*engine)->last_search_stats();
      const auto snapshot = (*engine)->snapshot_stats();
      const auto admission = (*engine)->admission_stats();
      std::printf(
          "query %u: levels=%llu visits=%llu touched=%llu examined=%llu "
          "drc=%llu pruned=%llu%s time=%.2fms | snapshot gen=%llu "
          "shards=%zu retired=%zu pending=%zu | admission admitted=%llu "
          "rejected=%llu in_flight=%zu\n",
          run, static_cast<unsigned long long>(stats.levels),
          static_cast<unsigned long long>(stats.concept_visits),
          static_cast<unsigned long long>(stats.documents_touched),
          static_cast<unsigned long long>(stats.documents_examined),
          static_cast<unsigned long long>(stats.drc_calls),
          static_cast<unsigned long long>(stats.documents_pruned),
          stats.truncated ? " TRUNCATED" : "", stats.total_seconds * 1e3,
          static_cast<unsigned long long>(snapshot.generation),
          snapshot.index_shards, snapshot.retired_live,
          snapshot.pending_documents,
          static_cast<unsigned long long>(admission.admitted),
          static_cast<unsigned long long>(admission.rejected),
          admission.in_flight);
    }
  }
  if (writer.joinable()) {
    writer_stop.store(true, std::memory_order_release);
    writer.join();
    std::printf("writer: appended %llu documents (corpus now %u)\n",
                static_cast<unsigned long long>(writer_appended),
                (*engine)->snapshot()->corpus.num_documents());
  }
  if (!results.ok()) {
    std::fprintf(stderr, "%s\n", results.status().ToString().c_str());
    return 1;
  }

  const bool truncated = (*engine)->last_search_stats().truncated;
  std::printf("%s top-%u%s:\n", sds ? "SDS" : "RDS", k,
              truncated ? " (TRUNCATED at deadline; distances are lower "
                          "bounds where error_bound > 0)"
                        : "");
  for (const auto& result : *results) {
    if (truncated) {
      std::printf("  doc %-8u distance %.4f  error_bound %.4f\n", result.id,
                  result.distance, result.error_bound);
    } else {
      std::printf("  doc %-8u distance %.4f\n", result.id, result.distance);
    }
  }

  if (run_baseline && truncated) {
    // A truncated run is allowed to disagree with the exhaustive ranker;
    // its contract is the error bounds, not exactness.
    std::printf("exhaustive cross-check: skipped (truncated result)\n");
  } else if (run_baseline) {
    // Pin one generation and compare Knds vs the exhaustive ranker over
    // that exact corpus — coherent even if a writer was running.
    const auto snap = (*engine)->snapshot();
    ecdr::ontology::AddressEnumerator addresses(ontology);
    ecdr::core::Drc drc(ontology, &addresses);
    ecdr::core::KndsOptions knds_options;
    knds_options.error_threshold = eps;
    ecdr::core::Knds knds(snap->corpus, snap->index, &drc, knds_options);
    const auto pinned = sds ? knds.SearchSds(snap->corpus.document(doc_id), k)
                            : knds.SearchRds(query, k);
    ECDR_CHECK(pinned.ok());
    ecdr::core::ExhaustiveRanker baseline(snap->corpus, &drc);
    const auto check =
        sds ? baseline.TopKSimilar(snap->corpus.document(doc_id), k)
            : baseline.TopKRelevant(query, k);
    ECDR_CHECK(check.ok());
    bool match = check->size() == pinned->size();
    for (std::size_t i = 0; match && i < check->size(); ++i) {
      match = (*check)[i].distance == (*pinned)[i].distance &&
              (*check)[i].id == (*pinned)[i].id;
    }
    std::printf("exhaustive cross-check: %s (%.2f ms, generation %llu)\n",
                match ? "MATCH" : "MISMATCH",
                baseline.last_stats().seconds * 1e3,
                static_cast<unsigned long long>(snap->generation));
    if (!match) return 1;
  }
  return 0;
}
