// CLI: print statistics for an ontology and/or corpus file.
//
//   ecdr_stats --ontology onto.txt [--corpus corpus.txt]

#include <cstdio>
#include <string>

#include "corpus/corpus_io.h"
#include "ontology/generator.h"
#include "ontology/ontology_io.h"
#include "tools/tool_flags.h"

int main(int argc, char** argv) {
  ecdr::tools::Flags flags(argc, argv);
  const std::string ontology_path = flags.GetString("ontology", "");
  const std::string corpus_path = flags.GetString("corpus", "");
  flags.CheckAllConsumed();
  if (ontology_path.empty()) {
    std::fprintf(stderr, "--ontology is required\n");
    return 2;
  }
  auto ontology = ecdr::ontology::LoadOntologyAuto(ontology_path);
  if (!ontology.ok()) {
    std::fprintf(stderr, "%s\n", ontology.status().ToString().c_str());
    return 1;
  }
  const auto shape = ecdr::ontology::ComputeShapeStats(*ontology);
  std::printf("ontology %s\n", ontology_path.c_str());
  std::printf("  concepts:               %u\n", shape.num_concepts);
  std::printf("  is-a edges:             %llu\n",
              static_cast<unsigned long long>(shape.num_edges));
  std::printf("  avg depth:              %.2f\n", shape.avg_depth);
  std::printf("  max depth:              %u\n", shape.max_depth);
  std::printf("  avg addresses/concept:  %.2f\n", shape.avg_path_count);
  std::printf("  max addresses/concept:  %.0f\n", shape.max_path_count);
  std::printf("  leaf fraction:          %.2f\n", shape.leaf_fraction);
  std::printf("  avg children (internal):%.2f\n",
              shape.avg_children_internal);

  if (!corpus_path.empty()) {
    auto corpus = ecdr::corpus::LoadCorpusAuto(*ontology, corpus_path);
    if (!corpus.ok()) {
      std::fprintf(stderr, "%s\n", corpus.status().ToString().c_str());
      return 1;
    }
    const auto stats = ecdr::corpus::ComputeCorpusStats(*corpus);
    std::printf("corpus %s\n", corpus_path.c_str());
    std::printf("  documents:              %u\n", stats.num_documents);
    std::printf("  distinct concepts:      %u\n",
                stats.num_distinct_concepts);
    std::printf("  avg concepts/document:  %.2f\n",
                stats.avg_concepts_per_document);
    std::printf("  min/max concepts/doc:   %zu / %zu\n",
                stats.min_concepts_per_document,
                stats.max_concepts_per_document);
    std::printf("  cf mean / stddev:       %.2f / %.2f\n", stats.cf_mean,
                stats.cf_stddev);
  }
  return 0;
}
