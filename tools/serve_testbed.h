// Shared engine bootstrap for the serving tools (ecdr_serve,
// ecdr_loadgen): either load an ontology + corpus from disk or generate
// a synthetic SNOMED-like testbed, so both tools run self-contained
// (CI smoke needs no data files).

#ifndef ECDR_TOOLS_SERVE_TESTBED_H_
#define ECDR_TOOLS_SERVE_TESTBED_H_

#include <cstdio>
#include <memory>
#include <string>
#include <utility>

#include "core/ranking_engine.h"
#include "corpus/generator.h"
#include "ontology/generator.h"

namespace ecdr::tools {

/// Loads `ontology_path` + `corpus_path` when both are given, otherwise
/// generates a synthetic testbed of `gen_concepts` concepts and
/// `gen_docs` documents (deterministic in `gen_seed`). Returns null
/// after printing the error.
inline std::unique_ptr<core::RankingEngine> MakeServeEngine(
    const std::string& ontology_path, const std::string& corpus_path,
    std::uint32_t gen_concepts, std::uint32_t gen_docs,
    std::uint64_t gen_seed, core::RankingEngineOptions options) {
  if (!ontology_path.empty() && !corpus_path.empty()) {
    auto engine = core::RankingEngine::CreateFromFiles(
        ontology_path, corpus_path, std::move(options));
    if (!engine.ok()) {
      std::fprintf(stderr, "%s\n", engine.status().ToString().c_str());
      return nullptr;
    }
    return std::move(engine).value();
  }
  ontology::OntologyGeneratorConfig onto_config;
  onto_config.num_concepts = gen_concepts;
  onto_config.seed = gen_seed;
  auto onto = ontology::GenerateOntology(onto_config);
  if (!onto.ok()) {
    std::fprintf(stderr, "%s\n", onto.status().ToString().c_str());
    return nullptr;
  }
  corpus::CorpusGeneratorConfig corpus_config;
  corpus_config.num_documents = gen_docs;
  corpus_config.avg_concepts_per_doc = 40.0;
  corpus_config.seed = gen_seed * 31 + 7;
  auto docs = corpus::GenerateCorpus(*onto, corpus_config);
  if (!docs.ok()) {
    std::fprintf(stderr, "%s\n", docs.status().ToString().c_str());
    return nullptr;
  }
  auto engine =
      core::RankingEngine::Create(std::move(*onto), std::move(options));
  const util::Status added = engine->AddCorpus(*docs);
  if (!added.ok()) {
    std::fprintf(stderr, "%s\n", added.ToString().c_str());
    return nullptr;
  }
  return engine;
}

}  // namespace ecdr::tools

#endif  // ECDR_TOOLS_SERVE_TESTBED_H_
