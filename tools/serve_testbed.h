// Shared engine bootstrap for the serving tools (ecdr_serve,
// ecdr_loadgen): either load an ontology + corpus from disk or generate
// a synthetic SNOMED-like testbed, so both tools run self-contained
// (CI smoke needs no data files).
//
// When options.storage.data_dir is set the engine opens durable
// (RankingEngine::Open): boot recovers snapshot image + WAL, and the
// seed corpus (file or generated) is only bulk-added when the store
// came back empty — on restart the recovered documents win, so a
// kill-recover cycle converges instead of double-loading.

#ifndef ECDR_TOOLS_SERVE_TESTBED_H_
#define ECDR_TOOLS_SERVE_TESTBED_H_

#include <cstdio>
#include <memory>
#include <string>
#include <utility>

#include "core/ranking_engine.h"
#include "corpus/corpus_io.h"
#include "corpus/generator.h"
#include "ontology/generator.h"
#include "ontology/ontology_io.h"

namespace ecdr::tools {

/// Loads `ontology_path` + `corpus_path` when both are given, otherwise
/// generates a synthetic testbed of `gen_concepts` concepts and
/// `gen_docs` documents (deterministic in `gen_seed`). Returns null
/// after printing the error.
inline std::unique_ptr<core::RankingEngine> MakeServeEngine(
    const std::string& ontology_path, const std::string& corpus_path,
    std::uint32_t gen_concepts, std::uint32_t gen_docs,
    std::uint64_t gen_seed, core::RankingEngineOptions options) {
  const bool from_files = !ontology_path.empty() && !corpus_path.empty();
  const bool durable = !options.storage.data_dir.empty();

  util::StatusOr<ontology::Ontology> onto = [&] {
    if (from_files) return ontology::LoadOntologyAuto(ontology_path);
    ontology::OntologyGeneratorConfig onto_config;
    onto_config.num_concepts = gen_concepts;
    onto_config.seed = gen_seed;
    return ontology::GenerateOntology(onto_config);
  }();
  if (!onto.ok()) {
    std::fprintf(stderr, "%s\n", onto.status().ToString().c_str());
    return nullptr;
  }

  std::unique_ptr<core::RankingEngine> engine;
  if (durable) {
    auto opened =
        core::RankingEngine::Open(std::move(*onto), std::move(options));
    if (!opened.ok()) {
      std::fprintf(stderr, "%s\n", opened.status().ToString().c_str());
      return nullptr;
    }
    engine = std::move(opened).value();
    // A recovered store already holds its documents (including any that
    // originally came from the seed corpus, via the WAL); only a fresh
    // data_dir gets seeded below.
    if (engine->corpus().num_documents() > 0) return engine;
  } else {
    engine = core::RankingEngine::Create(std::move(*onto), std::move(options));
  }

  util::StatusOr<corpus::Corpus> docs = [&] {
    if (from_files) {
      return corpus::LoadCorpusAuto(engine->ontology(), corpus_path);
    }
    corpus::CorpusGeneratorConfig corpus_config;
    corpus_config.num_documents = gen_docs;
    corpus_config.avg_concepts_per_doc = 40.0;
    corpus_config.seed = gen_seed * 31 + 7;
    return corpus::GenerateCorpus(engine->ontology(), corpus_config);
  }();
  if (!docs.ok()) {
    std::fprintf(stderr, "%s\n", docs.status().ToString().c_str());
    return nullptr;
  }
  const util::Status added = engine->AddCorpus(*docs);
  if (!added.ok()) {
    std::fprintf(stderr, "%s\n", added.ToString().c_str());
    return nullptr;
  }
  return engine;
}

}  // namespace ecdr::tools

#endif  // ECDR_TOOLS_SERVE_TESTBED_H_
