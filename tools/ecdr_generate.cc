// CLI: generate a synthetic ontology and/or corpus and write them to the
// library's text formats.
//
//   ecdr_generate --ontology-out onto.txt --concepts 20000 ...
//                 --corpus-out corpus.txt --docs 1000 --avg-concepts 120 ...
//                 --cohesion 0.3 --seed 7 [--filter]
//
// With --corpus-out but no --ontology-out, --ontology-in must name an
// existing ontology file.

#include <cstdio>
#include <memory>
#include <string>

#include "corpus/corpus_io.h"
#include "corpus/filters.h"
#include "corpus/generator.h"
#include "ontology/generator.h"
#include "ontology/ontology_io.h"
#include "tools/tool_flags.h"

int main(int argc, char** argv) {
  ecdr::tools::Flags flags(argc, argv);
  const std::string ontology_out = flags.GetString("ontology-out", "");
  const std::string ontology_in = flags.GetString("ontology-in", "");
  const std::string corpus_out = flags.GetString("corpus-out", "");
  const std::uint32_t concepts = flags.GetUint32("concepts", 20'000);
  const std::uint32_t docs = flags.GetUint32("docs", 1'000);
  const double avg_concepts = flags.GetDouble("avg-concepts", 120.0);
  const double cohesion = flags.GetDouble("cohesion", 0.3);
  const std::uint64_t seed = flags.GetUint32("seed", 42);
  const bool filter = flags.GetBool("filter", false);
  const bool binary = flags.GetBool("binary", false);
  flags.CheckAllConsumed();

  if (ontology_out.empty() && corpus_out.empty()) {
    std::fprintf(stderr,
                 "nothing to do: pass --ontology-out and/or --corpus-out\n");
    return 2;
  }

  std::unique_ptr<ecdr::ontology::Ontology> ontology;
  if (!ontology_in.empty()) {
    auto loaded = ecdr::ontology::LoadOntologyAuto(ontology_in);
    if (!loaded.ok()) {
      std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
      return 1;
    }
    ontology = std::make_unique<ecdr::ontology::Ontology>(
        std::move(loaded).value());
  } else {
    ecdr::ontology::OntologyGeneratorConfig config;
    config.num_concepts = concepts;
    config.seed = seed;
    auto generated = ecdr::ontology::GenerateOntology(config);
    if (!generated.ok()) {
      std::fprintf(stderr, "%s\n", generated.status().ToString().c_str());
      return 1;
    }
    ontology = std::make_unique<ecdr::ontology::Ontology>(
        std::move(generated).value());
  }

  if (!ontology_out.empty()) {
    const auto status = binary
        ? ecdr::ontology::SaveOntologyBinary(*ontology, ontology_out)
        : ecdr::ontology::SaveOntology(*ontology, ontology_out);
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
    const auto stats = ecdr::ontology::ComputeShapeStats(*ontology);
    std::printf(
        "wrote %s: %u concepts, %llu edges, avg depth %.1f, "
        "%.1f addresses/concept\n",
        ontology_out.c_str(), stats.num_concepts,
        static_cast<unsigned long long>(stats.num_edges), stats.avg_depth,
        stats.avg_path_count);
  }

  if (!corpus_out.empty()) {
    ecdr::corpus::CorpusGeneratorConfig config;
    config.num_documents = docs;
    config.avg_concepts_per_doc = avg_concepts;
    config.cohesion = cohesion;
    config.seed = seed + 1;
    auto corpus = ecdr::corpus::GenerateCorpus(*ontology, config);
    if (!corpus.ok()) {
      std::fprintf(stderr, "%s\n", corpus.status().ToString().c_str());
      return 1;
    }
    if (filter) {
      ecdr::corpus::ConceptFilterReport report;
      auto filtered = ecdr::corpus::ApplyConceptFilters(
          *corpus, ecdr::corpus::ConceptFilterOptions{}, &report);
      if (!filtered.ok()) {
        std::fprintf(stderr, "%s\n", filtered.status().ToString().c_str());
        return 1;
      }
      corpus = std::move(filtered);
      std::printf("filters removed %u concepts by depth, %u by cf\n",
                  report.concepts_removed_by_depth,
                  report.concepts_removed_by_cf);
    }
    const auto status = binary
        ? ecdr::corpus::SaveCorpusBinary(*corpus, corpus_out)
        : ecdr::corpus::SaveCorpus(*corpus, corpus_out);
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
    const auto stats = ecdr::corpus::ComputeCorpusStats(*corpus);
    std::printf("wrote %s: %u docs, %.1f avg concepts/doc\n",
                corpus_out.c_str(), stats.num_documents,
                stats.avg_concepts_per_document);
  }
  return 0;
}
