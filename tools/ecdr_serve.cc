// ecdr_serve — the serving daemon: an epoll HTTP/1.1 + JSON front-end
// over one RankingEngine (see src/serve/server.h for the protocol and
// DESIGN.md, "Serving path" for the architecture).
//
//   # Serve an ontology + corpus from disk on port 8080:
//   ecdr_serve --ontology onto.txt --corpus corpus.txt --port 8080
//
//   # Self-contained synthetic testbed (no data files needed):
//   ecdr_serve --gen_concepts 20000 --gen_docs 2000 --port 8080
//
//   curl -d '{"concepts":[17,42],"k":5}' localhost:8080/v1/search
//   curl localhost:8080/status
//   curl localhost:8080/metrics
//
// Engine knobs mirror ecdr_query: --threads (intra-query lanes), --eps
// (engine-wide error threshold; requests can override per call),
// --shards. Serving knobs: --workers, --max_queue (shed beyond it with
// 429), --max_in_flight/--max_queued (engine admission control),
// --default_deadline_ms. Runs until SIGINT/SIGTERM.
//
// --ta_postings builds compressed block-max distance postings over the
// boot generation (--ta_block_size, default 128): /status and /metrics
// then report the postings footprint and decoded/skipped block
// counters, and /v1/search accepts {"ranker":"ta"} for exact RDS
// answers off the sidecar.
//
// Durability: --data_dir opens a crash-safe store (WAL + checkpoint
// images; see DESIGN.md, "Durability & recovery") and enables the
// document-lifecycle endpoints to survive kill -9. --fsync_mode
// always|never (never = tests only), --checkpoint_every N (write a
// snapshot image every N WAL records; 0 = manual /v1/admin/checkpoint),
// --compact_max_segments / --compact_min_docs (background segment
// compaction; 0 = manual). On SIGTERM/SIGINT the server drains cleanly:
// stop accepting, finish in-flight requests, then a final WAL fsync so
// every acknowledged write is on disk before exit.

#include <csignal>
#include <cstdio>
#include <string>
#include <thread>

#include "core/engine_snapshot.h"
#include "core/ranking_engine.h"
#include "index/block_postings.h"
#include "serve/server.h"
#include "tools/serve_testbed.h"
#include "tools/tool_flags.h"

namespace {
volatile std::sig_atomic_t g_stop = 0;
void HandleSignal(int) { g_stop = 1; }
}  // namespace

int main(int argc, char** argv) {
  ecdr::tools::Flags flags(argc, argv);
  const std::string ontology_path = flags.GetString("ontology", "");
  const std::string corpus_path = flags.GetString("corpus", "");
  const std::uint32_t gen_concepts = flags.GetUint32("gen_concepts", 20'000);
  const std::uint32_t gen_docs = flags.GetUint32("gen_docs", 2'000);
  const std::uint32_t gen_seed = flags.GetUint32("gen_seed", 1);

  ecdr::serve::ServerOptions server_options;
  server_options.bind_address = flags.GetString("bind", "127.0.0.1");
  server_options.port =
      static_cast<std::uint16_t>(flags.GetUint32("port", 8080));
  server_options.num_workers = flags.GetUint32("workers", 4);
  server_options.max_queue = flags.GetUint32("max_queue", 256);
  server_options.default_deadline_seconds =
      flags.GetDouble("default_deadline_ms", 0.0) / 1e3;

  ecdr::core::RankingEngineOptions engine_options;
  engine_options.knds.num_threads = flags.GetUint32("threads", 1);
  engine_options.knds.error_threshold = flags.GetDouble("eps", 0.25);
  engine_options.snapshot.num_shards = flags.GetUint32("shards", 1);
  engine_options.admission.max_in_flight = flags.GetUint32("max_in_flight", 0);
  engine_options.admission.max_queued = flags.GetUint32("max_queued", 0);
  engine_options.storage.data_dir = flags.GetString("data_dir", "");
  const std::string fsync_mode = flags.GetString("fsync_mode", "always");
  using FsyncMode = ecdr::storage::StoreOptions::FsyncMode;
  if (fsync_mode == "always") {
    engine_options.storage.fsync_mode = FsyncMode::kAlways;
  } else if (fsync_mode == "never") {
    engine_options.storage.fsync_mode = FsyncMode::kNever;
  } else {
    std::fprintf(stderr, "--fsync_mode must be 'always' or 'never'\n");
    return 1;
  }
  engine_options.checkpoint_every_records =
      flags.GetUint32("checkpoint_every", 0);
  engine_options.compaction.max_segments =
      flags.GetUint32("compact_max_segments", 0);
  engine_options.compaction.min_docs_per_segment =
      flags.GetUint32("compact_min_docs", 0);
  const bool ta_postings_flag = flags.GetBool("ta_postings", false);
  const std::uint32_t ta_block_size = flags.GetUint32("ta_block_size", 128);
  flags.CheckAllConsumed();

  auto engine = ecdr::tools::MakeServeEngine(
      ontology_path, corpus_path, gen_concepts, gen_docs, gen_seed,
      engine_options);
  if (engine == nullptr) return 1;
  std::printf("engine ready: %u concepts, %zu documents\n",
              engine->ontology().num_concepts(),
              static_cast<std::size_t>(engine->corpus().num_documents()));
  if (engine->durable()) {
    const ecdr::core::DurabilityStats durability = engine->durability_stats();
    std::printf(
        "durable store: lsn %llu, image generation %llu, %llu records "
        "replayed%s\n",
        static_cast<unsigned long long>(durability.store.last_lsn),
        static_cast<unsigned long long>(durability.store.image_generation),
        static_cast<unsigned long long>(durability.store.records_replayed),
        durability.store.wal_tail_dropped > 0 ? " (torn WAL tail dropped)"
                                              : "");
  }

  // Optional block-max postings sidecar: pin the boot generation, build
  // the compressed postings over it, and hand both to the server so
  // /status and /metrics report the index footprint and {"ranker":"ta"}
  // searches work. The pinned snapshot keeps that generation's corpus
  // alive for the server's lifetime.
  std::shared_ptr<const ecdr::core::EngineSnapshot> ta_pin;
  std::unique_ptr<ecdr::index::BlockPostings> ta_postings;
  if (ta_postings_flag) {
    ta_pin = engine->snapshot();
    ecdr::index::BlockPostingsOptions postings_options;
    postings_options.block_size = ta_block_size;
    ta_postings = std::make_unique<ecdr::index::BlockPostings>(
        ta_pin->corpus, postings_options);
    server_options.ta_postings = ta_postings.get();
    server_options.ta_corpus = &ta_pin->corpus;
    server_options.ta_generation = ta_pin->generation;
    std::printf(
        "block postings sidecar: generation %llu, %.1f B/doc "
        "(%llu arena + %llu metadata), built in %.2fs\n",
        static_cast<unsigned long long>(ta_pin->generation),
        ta_postings->bytes_per_doc(),
        static_cast<unsigned long long>(ta_postings->arena_bytes()),
        static_cast<unsigned long long>(ta_postings->metadata_bytes()),
        ta_postings->build_seconds());
  }

  ecdr::serve::Server server(engine.get(), server_options);
  const ecdr::util::Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "%s\n", started.ToString().c_str());
    return 1;
  }
  std::printf("listening on %s:%u (%zu workers, queue bound %zu)\n",
              server_options.bind_address.c_str(), server.port(),
              server_options.num_workers, server_options.max_queue);
  std::fflush(stdout);

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }

  // Clean drain: Stop() joins the workers, so every request that was
  // already dispatched finishes and flushes its response first; then a
  // final fsync pins any write-buffered deltas and the WAL tail to disk
  // before the process exits.
  const ecdr::serve::ServerStats stats = server.stats();
  server.Stop();
  if (engine->durable()) {
    const ecdr::util::Status synced = engine->SyncDurability();
    if (!synced.ok()) {
      std::fprintf(stderr, "final WAL sync failed: %s\n",
                   synced.ToString().c_str());
      return 1;
    }
    std::printf("final WAL sync: durable lsn %llu\n",
                static_cast<unsigned long long>(
                    engine->durability_stats().store.durable_lsn));
  }
  std::printf(
      "served %llu requests (%llu ok, %llu shed, %llu deadline); bye\n",
      static_cast<unsigned long long>(stats.requests_received),
      static_cast<unsigned long long>(stats.responses_ok),
      static_cast<unsigned long long>(stats.shed_queue_full +
                                      stats.shed_engine),
      static_cast<unsigned long long>(stats.deadline_hits));
  return 0;
}
