// ecdr_loadgen — open-loop, closed-connection load generator for
// ecdr_serve, sweeping offered qps levels and reporting tail latency
// and shed rate per level (BENCH_serve.json).
//
//   # Self-contained: spin up an in-process server over a synthetic
//   # testbed and sweep it (what CI's smoke job runs):
//   ecdr_loadgen --qps 100,200,400 --duration_s 5 --out BENCH_serve.json
//
//   # Against an external daemon:
//   ecdr_loadgen --host 127.0.0.1 --port 8080 --qps 500 --duration_s 10
//
// Methodology: arrivals are scheduled on a fixed grid (arrival i at
// start + i/qps) regardless of how the server is doing — the offered
// load never slows down because responses are late (no closed-loop
// throttling), and each latency is measured from the *scheduled*
// arrival, so queueing delay that a coordinated-omission-style
// generator would hide is charged to the request. By default each
// sender keeps one persistent connection and pipelines nothing
// (HTTP/1.1 keep-alive, Content-Length framing), reconnecting on any
// transport error; --keep_alive=0 reverts to a fresh Connection: close
// socket per request, the worst case for the server's accept path.
// Senders are a thread pool pulling arrival indices from one atomic
// counter; a sender that falls behind fires immediately and the lag
// shows up as latency, as it should.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "core/ranking_engine.h"
#include "corpus/query_gen.h"
#include "serve/server.h"
#include "tools/serve_testbed.h"
#include "tools/tool_flags.h"
#include "util/string_util.h"

namespace {

using Clock = std::chrono::steady_clock;

struct Sample {
  double latency_s = 0.0;
  int http_status = 0;  // 0 = connect/transport failure
};

/// One request over a fresh connection; returns the HTTP status code,
/// or 0 on any transport failure.
int DoRequest(const sockaddr_in& addr, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return 0;
  int status = 0;
  do {
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) < 0) {
      break;
    }
    const int enable = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &enable, sizeof(enable));
    std::size_t sent = 0;
    while (sent < request.size()) {
      const ssize_t n = ::send(fd, request.data() + sent,
                               request.size() - sent, MSG_NOSIGNAL);
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        break;
      }
      sent += static_cast<std::size_t>(n);
    }
    if (sent < request.size()) break;
    // Connection: close framing — read to EOF, keep only the head.
    std::string head;
    char buffer[8192];
    while (true) {
      const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
      if (n > 0) {
        if (head.size() < 64) {
          head.append(buffer, static_cast<std::size_t>(n));
        }
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      break;
    }
    // "HTTP/1.1 200 OK" -> 200.
    if (head.size() >= 12 && head.rfind("HTTP/1.", 0) == 0) {
      status = std::atoi(head.c_str() + 9);
    }
  } while (false);
  ::close(fd);
  return status;
}

/// A persistent keep-alive connection owned by one sender thread.
/// DoRequest reuses the socket across requests (Content-Length
/// framing); any transport or framing error closes it, returns 0, and
/// the next request reconnects.
class KeepAliveConnection {
 public:
  explicit KeepAliveConnection(const sockaddr_in& addr) : addr_(addr) {}
  ~KeepAliveConnection() { Close(); }

  int DoRequest(const std::string& request) {
    if (fd_ < 0 && !Connect()) return 0;
    // A server-side idle close between requests surfaces as a send/recv
    // failure; retry once on a fresh connection before giving up.
    for (int attempt = 0; attempt < 2; ++attempt) {
      if (attempt > 0 && !Connect()) return 0;
      const int status = TryRequest(request);
      if (status != 0) return status;
    }
    return 0;
  }

 private:
  bool Connect() {
    Close();
    fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd_ < 0) return false;
    if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr_),
                  sizeof(addr_)) < 0) {
      Close();
      return false;
    }
    const int enable = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &enable, sizeof(enable));
    return true;
  }

  void Close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

  /// One request/response exchange; 0 closes the connection.
  int TryRequest(const std::string& request) {
    std::size_t sent = 0;
    while (sent < request.size()) {
      const ssize_t n = ::send(fd_, request.data() + sent,
                               request.size() - sent, MSG_NOSIGNAL);
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        Close();
        return 0;
      }
      sent += static_cast<std::size_t>(n);
    }
    // Read headers, then exactly Content-Length body bytes, leaving the
    // stream positioned at the next response.
    std::string head;
    std::size_t header_end = std::string::npos;
    char buffer[8192];
    while (header_end == std::string::npos) {
      if (head.size() > 64 * 1024) {
        Close();
        return 0;
      }
      const ssize_t n = ::recv(fd_, buffer, sizeof(buffer), 0);
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        Close();
        return 0;
      }
      const std::size_t scan_from = head.size() < 3 ? 0 : head.size() - 3;
      head.append(buffer, static_cast<std::size_t>(n));
      header_end = head.find("\r\n\r\n", scan_from);
    }
    std::size_t body_length = 0;
    {
      // Case-sensitive match is fine: this client only talks to
      // ecdr_serve, which emits exactly "Content-Length: N".
      const std::size_t pos = head.find("Content-Length: ");
      if (pos == std::string::npos || pos > header_end) {
        Close();
        return 0;
      }
      body_length = static_cast<std::size_t>(
          std::strtoull(head.c_str() + pos + 16, nullptr, 10));
    }
    std::size_t body_read = head.size() - (header_end + 4);
    while (body_read < body_length) {
      const ssize_t n = ::recv(fd_, buffer, sizeof(buffer), 0);
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        Close();
        return 0;
      }
      body_read += static_cast<std::size_t>(n);
    }
    int status = 0;
    if (head.size() >= 12 && head.rfind("HTTP/1.", 0) == 0) {
      status = std::atoi(head.c_str() + 9);
    }
    if (status == 0 || head.find("Connection: close") < header_end) {
      Close();
    }
    return status;
  }

  sockaddr_in addr_;
  int fd_ = -1;
};

double Quantile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const std::size_t rank = static_cast<std::size_t>(
      q * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(rank, sorted.size() - 1)];
}

struct LevelResult {
  double offered_qps = 0.0;
  double achieved_qps = 0.0;
  std::uint64_t sent = 0;
  std::uint64_t ok = 0;
  std::uint64_t shed = 0;      // 429
  std::uint64_t deadline = 0;  // 504
  std::uint64_t errors = 0;    // anything else (incl. transport)
  double p50_s = 0.0;
  double p95_s = 0.0;
  double p99_s = 0.0;
};

LevelResult RunLevel(const sockaddr_in& addr,
                     const std::vector<std::string>& requests, double qps,
                     double duration_s, std::uint32_t senders,
                     bool keep_alive) {
  const std::uint64_t total =
      static_cast<std::uint64_t>(qps * duration_s + 0.5);
  std::atomic<std::uint64_t> next{0};
  std::vector<std::vector<Sample>> per_thread(senders);
  const Clock::time_point start =
      Clock::now() + std::chrono::milliseconds(20);
  std::vector<std::thread> threads;
  threads.reserve(senders);
  for (std::uint32_t t = 0; t < senders; ++t) {
    threads.emplace_back([&, t] {
      std::vector<Sample>& samples = per_thread[t];
      KeepAliveConnection conn(addr);
      while (true) {
        const std::uint64_t i =
            next.fetch_add(1, std::memory_order_relaxed);
        if (i >= total) return;
        const Clock::time_point scheduled =
            start + std::chrono::duration_cast<Clock::duration>(
                        std::chrono::duration<double>(
                            static_cast<double>(i) / qps));
        std::this_thread::sleep_until(scheduled);
        const std::string& request = requests[i % requests.size()];
        const int status = keep_alive ? conn.DoRequest(request)
                                      : DoRequest(addr, request);
        samples.push_back(
            Sample{std::chrono::duration<double>(Clock::now() - scheduled)
                       .count(),
                   status});
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  const double elapsed =
      std::chrono::duration<double>(Clock::now() - start).count();

  LevelResult result;
  result.offered_qps = qps;
  result.sent = total;
  std::vector<double> ok_latencies;
  for (const std::vector<Sample>& samples : per_thread) {
    for (const Sample& sample : samples) {
      if (sample.http_status == 200) {
        ++result.ok;
        ok_latencies.push_back(sample.latency_s);
      } else if (sample.http_status == 429) {
        ++result.shed;
      } else if (sample.http_status == 504) {
        ++result.deadline;
      } else {
        ++result.errors;
      }
    }
  }
  result.achieved_qps =
      elapsed > 0.0 ? static_cast<double>(result.ok) / elapsed : 0.0;
  std::sort(ok_latencies.begin(), ok_latencies.end());
  result.p50_s = Quantile(ok_latencies, 0.50);
  result.p95_s = Quantile(ok_latencies, 0.95);
  result.p99_s = Quantile(ok_latencies, 0.99);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  ecdr::tools::Flags flags(argc, argv);
  const std::string host = flags.GetString("host", "127.0.0.1");
  std::uint32_t port = flags.GetUint32("port", 0);
  const std::string qps_list = flags.GetString("qps", "100,200,400");
  const double duration_s = flags.GetDouble("duration_s", 5.0);
  const std::uint32_t senders = flags.GetUint32("senders", 16);
  const std::uint32_t k = flags.GetUint32("k", 10);
  const double eps = flags.GetDouble("eps", -1.0);
  const double deadline_ms = flags.GetDouble("deadline_ms", 0.0);
  const std::uint32_t query_size = flags.GetUint32("query_size", 4);
  const std::uint32_t num_queries = flags.GetUint32("num_queries", 64);
  const std::string out_path = flags.GetString("out", "BENCH_serve.json");
  // Self-serve testbed knobs (used only when --port is absent).
  const std::string ontology_path = flags.GetString("ontology", "");
  const std::string corpus_path = flags.GetString("corpus", "");
  const std::uint32_t gen_concepts = flags.GetUint32("gen_concepts", 20'000);
  const std::uint32_t gen_docs = flags.GetUint32("gen_docs", 2'000);
  const std::uint32_t gen_seed = flags.GetUint32("gen_seed", 1);
  const std::uint32_t workers = flags.GetUint32("workers", 4);
  const std::uint32_t max_queue = flags.GetUint32("max_queue", 64);
  const bool keep_alive = flags.GetUint32("keep_alive", 1) != 0;
  flags.CheckAllConsumed();

  // Without --port, host an in-process server over a synthetic testbed
  // so the benchmark is self-contained.
  std::unique_ptr<ecdr::core::RankingEngine> engine;
  std::unique_ptr<ecdr::serve::Server> server;
  std::vector<std::vector<ecdr::ontology::ConceptId>> queries;
  if (port == 0) {
    engine = ecdr::tools::MakeServeEngine(ontology_path, corpus_path,
                                          gen_concepts, gen_docs, gen_seed,
                                          {});
    if (engine == nullptr) return 1;
    queries = ecdr::corpus::GenerateRdsQueries(engine->corpus(), num_queries,
                                               query_size, gen_seed * 97 + 3);
    ecdr::serve::ServerOptions server_options;
    server_options.num_workers = workers;
    server_options.max_queue = max_queue;
    server = std::make_unique<ecdr::serve::Server>(engine.get(),
                                                   server_options);
    const ecdr::util::Status started = server->Start();
    if (!started.ok()) {
      std::fprintf(stderr, "%s\n", started.ToString().c_str());
      return 1;
    }
    port = server->port();
    std::printf("self-serve testbed up on port %u\n", port);
  } else {
    // Against an external server the query pool is synthetic ids; the
    // server validates them, so generate from the same testbed config.
    auto shadow = ecdr::tools::MakeServeEngine(ontology_path, corpus_path,
                                               gen_concepts, gen_docs,
                                               gen_seed, {});
    if (shadow == nullptr) return 1;
    queries = ecdr::corpus::GenerateRdsQueries(shadow->corpus(), num_queries,
                                               query_size, gen_seed * 97 + 3);
  }

  // Pre-render every request: the send path does no formatting.
  std::vector<std::string> requests;
  requests.reserve(queries.size());
  for (const std::vector<ecdr::ontology::ConceptId>& query : queries) {
    std::string body = "{\"concepts\":[";
    for (std::size_t i = 0; i < query.size(); ++i) {
      if (i > 0) body += ',';
      body += std::to_string(query[i]);
    }
    body += "],\"k\":" + std::to_string(k);
    if (eps >= 0.0) body += ",\"eps_theta\":" + std::to_string(eps);
    if (deadline_ms > 0.0) {
      body += ",\"deadline_ms\":" + std::to_string(deadline_ms);
    }
    body += '}';
    std::string request = "POST /v1/search HTTP/1.1\r\nHost: " + host +
                          "\r\nContent-Type: application/json\r\n"
                          "Content-Length: " +
                          std::to_string(body.size()) + "\r\nConnection: " +
                          (keep_alive ? "keep-alive" : "close") + "\r\n\r\n" +
                          body;
    requests.push_back(std::move(request));
  }

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    std::fprintf(stderr, "bad --host '%s' (IPv4 only)\n", host.c_str());
    return 2;
  }

  std::vector<LevelResult> results;
  for (std::string_view level : ecdr::util::Split(qps_list, ',')) {
    double qps = 0.0;
    if (!ecdr::util::ParseDouble(std::string(level), &qps) || qps <= 0.0) {
      std::fprintf(stderr, "bad qps level '%s'\n",
                   std::string(level).c_str());
      return 2;
    }
    LevelResult result =
        RunLevel(addr, requests, qps, duration_s, senders, keep_alive);
    std::printf(
        "qps %7.1f offered | %7.1f ok-throughput | ok %llu shed %llu "
        "deadline %llu err %llu | p50 %.3fms p95 %.3fms p99 %.3fms\n",
        result.offered_qps, result.achieved_qps,
        static_cast<unsigned long long>(result.ok),
        static_cast<unsigned long long>(result.shed),
        static_cast<unsigned long long>(result.deadline),
        static_cast<unsigned long long>(result.errors),
        result.p50_s * 1e3, result.p95_s * 1e3, result.p99_s * 1e3);
    std::fflush(stdout);
    results.push_back(result);
  }

  if (server != nullptr) server->Stop();

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out,
               "{\n  \"bench\": \"serve\",\n  \"duration_s\": %g,\n"
               "  \"senders\": %u,\n  \"levels\": [\n",
               duration_s, senders);
  for (std::size_t i = 0; i < results.size(); ++i) {
    const LevelResult& r = results[i];
    const double shed_rate =
        r.sent > 0 ? static_cast<double>(r.shed) /
                         static_cast<double>(r.sent)
                   : 0.0;
    std::fprintf(out,
                 "    {\"offered_qps\": %g, \"achieved_qps\": %.2f, "
                 "\"sent\": %llu, \"ok\": %llu, \"shed\": %llu, "
                 "\"deadline\": %llu, \"errors\": %llu, "
                 "\"shed_rate\": %.4f, \"p50_ms\": %.3f, "
                 "\"p95_ms\": %.3f, \"p99_ms\": %.3f}%s\n",
                 r.offered_qps, r.achieved_qps,
                 static_cast<unsigned long long>(r.sent),
                 static_cast<unsigned long long>(r.ok),
                 static_cast<unsigned long long>(r.shed),
                 static_cast<unsigned long long>(r.deadline),
                 static_cast<unsigned long long>(r.errors), shed_rate,
                 r.p50_s * 1e3, r.p95_s * 1e3, r.p99_s * 1e3,
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
