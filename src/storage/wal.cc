#include "storage/wal.h"

#include "util/binary_stream.h"
#include "util/crc32c.h"

namespace ecdr::storage {

namespace {

// A corrupt length prefix must not parse as a plausible record; cap
// payloads at 256 MiB (a document is a few thousand u32s).
constexpr std::uint32_t kMaxPayload = 256u << 20;

}  // namespace

std::string EncodeWalRecord(const WalRecord& record) {
  std::string payload;
  payload.push_back(static_cast<char>(record.op));
  util::AppendU64(payload, record.lsn);
  util::AppendU32(payload, record.doc);
  util::AppendU32Array(payload, record.concepts.data(),
                       record.concepts.size());
  if (record.op == WalOp::kAddConcept) {
    // Name appended only for the one op that has one, so pre-evolution
    // records decode unchanged.
    util::AppendU32(payload, static_cast<std::uint32_t>(record.name.size()));
    payload += record.name;
  }
  std::string frame;
  frame.reserve(8 + payload.size());
  util::AppendU32(frame, util::MaskCrc32c(util::Crc32c(payload)));
  util::AppendU32(frame, static_cast<std::uint32_t>(payload.size()));
  frame += payload;
  return frame;
}

util::Status WalWriter::Append(const WalRecord& record) {
  const std::string frame = EncodeWalRecord(record);
  ECDR_RETURN_IF_ERROR(file_->Append(frame));
  size_ += frame.size();
  return util::Status::Ok();
}

util::Status WalWriter::Sync() { return file_->Sync(); }

WalReplayResult ReplayWal(std::string_view data, std::uint64_t min_lsn) {
  WalReplayResult result;
  std::uint64_t pos = 0;
  std::uint64_t last_lsn = min_lsn;
  while (data.size() - pos >= 8) {
    util::ByteParser header(data.substr(pos, 8));
    std::uint32_t masked_crc = 0;
    std::uint32_t payload_size = 0;
    (void)header.ReadU32(&masked_crc);
    (void)header.ReadU32(&payload_size);
    if (payload_size > kMaxPayload ||
        payload_size > data.size() - pos - 8) {
      break;  // Torn length or torn payload.
    }
    const std::string_view payload = data.substr(pos + 8, payload_size);
    if (util::UnmaskCrc32c(masked_crc) != util::Crc32c(payload)) {
      break;  // Bit rot or a torn write inside the payload.
    }
    util::ByteParser parser(payload);
    std::string_view op_byte;
    WalRecord record;
    if (!parser.ReadBytes(1, &op_byte).ok()) break;
    record.op = static_cast<WalOp>(static_cast<unsigned char>(op_byte[0]));
    if (record.op != WalOp::kAddDocument &&
        record.op != WalOp::kDeleteDocument &&
        record.op != WalOp::kUpdateDocument &&
        record.op != WalOp::kAddConcept &&
        record.op != WalOp::kRetireConcept &&
        record.op != WalOp::kAddEdge) {
      break;
    }
    if (!parser.ReadU64(&record.lsn).ok() ||
        !parser.ReadU32(&record.doc).ok() ||
        !parser.ReadU32Array(&record.concepts).ok()) {
      break;
    }
    if (record.op == WalOp::kAddConcept) {
      std::uint32_t name_size = 0;
      std::string_view name;
      if (!parser.ReadU32(&name_size).ok() ||
          name_size > parser.remaining() ||
          !parser.ReadBytes(name_size, &name).ok()) {
        break;
      }
      record.name.assign(name);
    }
    if (!parser.exhausted()) break;
    if (record.lsn <= min_lsn) {
      // Already captured by the snapshot image the caller recovered.
      pos += 8 + payload_size;
      continue;
    }
    if (record.lsn <= last_lsn) {
      // LSNs are strictly increasing; a regression means the frame is
      // valid bytes from some other life of the file.
      break;
    }
    last_lsn = record.lsn;
    result.records.push_back(std::move(record));
    pos += 8 + payload_size;
  }
  result.valid_bytes = pos;
  result.tail_dropped = pos != data.size();
  return result;
}

}  // namespace ecdr::storage
