// Write-ahead log for the document lifecycle (DESIGN.md, "Durability &
// recovery").
//
// Every mutation the SnapshotBuilder accepts — add, in-place update,
// tombstone delete — is encoded as one self-checking record and
// appended to the log *before* the in-memory state changes. A publish
// fsyncs the log, so an acknowledged batch survives a crash; replay on
// boot re-applies records in LSN order on top of the newest valid
// snapshot image and truncates the file at the first record that fails
// its checks (a torn tail is expected after a crash — everything after
// it was never acknowledged).
//
// Record framing, all little-endian:
//   [u32 masked crc32c of payload][u32 payload size][payload]
// Payload:
//   [u8 op][u64 lsn][u32 doc][u64 concept count][u32 concepts...]
// `doc` is the target for update/delete and kInvalidDoc for add (the
// id is assigned by replay order, which matches the original
// assignment because the log serializes the single writer). The CRC is
// masked like LevelDB's so a log embedded in a log stays detectable.

#ifndef ECDR_STORAGE_WAL_H_
#define ECDR_STORAGE_WAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "corpus/document.h"
#include "storage/env.h"
#include "util/status.h"

namespace ecdr::storage {

enum class WalOp : std::uint8_t {
  kAddDocument = 1,
  kDeleteDocument = 2,
  kUpdateDocument = 3,
  // Ontology evolution (DESIGN.md, "Ontology versioning & evolution").
  // These reuse the document record's fields: `concepts` carries the
  // parent list (add) or {parent, child} (edge), `doc` the retire
  // target, and kAddConcept appends the new concept's name after the
  // concept array. Replay applies them in LSN order, interleaved with
  // document ops, so reopen retraces the exact evolution history.
  kAddConcept = 4,
  kRetireConcept = 5,
  kAddEdge = 6,
};

struct WalRecord {
  WalOp op = WalOp::kAddDocument;
  /// Strictly increasing across the store's lifetime; replay rejects
  /// (stops at) the first non-increasing LSN.
  std::uint64_t lsn = 0;
  /// Update/delete target; the retired concept id for kRetireConcept;
  /// kInvalidDoc otherwise.
  corpus::DocId doc = corpus::kInvalidDoc;
  /// Add/update concept set (sorted); kAddConcept parents (in order);
  /// {parent, child} for kAddEdge; empty for delete/retire.
  std::vector<std::uint32_t> concepts;
  /// New concept name; encoded only for kAddConcept.
  std::string name;
};

/// One framed record, ready to append.
std::string EncodeWalRecord(const WalRecord& record);

/// Appends framed records to an Env file. Append() hands the bytes to
/// the OS; only Sync() makes them crash-safe. Not thread-safe — the
/// SnapshotBuilder's writer mutex serializes callers.
class WalWriter {
 public:
  WalWriter(std::unique_ptr<WritableFile> file, std::uint64_t start_size)
      : file_(std::move(file)), size_(start_size) {}

  util::Status Append(const WalRecord& record);
  util::Status Sync();

  /// Bytes appended so far (including a pre-existing tail the writer
  /// opened in append mode).
  std::uint64_t size() const { return size_; }

 private:
  std::unique_ptr<WritableFile> file_;
  std::uint64_t size_;
};

struct WalReplayResult {
  /// The valid prefix, in file (= LSN) order.
  std::vector<WalRecord> records;
  /// Byte offset of the first bad record — the length replay truncates
  /// the file to. Equals the input size for a fully-valid log.
  std::uint64_t valid_bytes = 0;
  /// True when anything followed valid_bytes (a torn or corrupt tail).
  bool tail_dropped = false;
};

/// Decodes the longest valid record prefix of `data`. Never fails:
/// corruption ends the replay rather than erroring — a torn tail is
/// the WAL's normal post-crash state. `min_lsn` is the LSN replay
/// starts trusting at (records at or below it are skipped as already
/// captured by the snapshot image the caller recovered).
WalReplayResult ReplayWal(std::string_view data, std::uint64_t min_lsn);

}  // namespace ecdr::storage

#endif  // ECDR_STORAGE_WAL_H_
