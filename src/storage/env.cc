#include "storage/env.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace ecdr::storage {

namespace {

util::Status ErrnoError(const std::string& what, const std::string& path) {
  return util::IoError(what + " '" + path + "': " + std::strerror(errno));
}

// ---------------------------------------------------------------------------
// PosixEnv

class PosixWritableFile final : public WritableFile {
 public:
  PosixWritableFile(int fd, std::string path)
      : fd_(fd), path_(std::move(path)) {}
  ~PosixWritableFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  util::Status Append(std::string_view data) override {
    const char* p = data.data();
    std::size_t left = data.size();
    while (left > 0) {
      const ssize_t n = ::write(fd_, p, left);
      if (n < 0) {
        if (errno == EINTR) continue;
        return ErrnoError("write", path_);
      }
      p += n;
      left -= static_cast<std::size_t>(n);
    }
    return util::Status::Ok();
  }

  util::Status Sync() override {
    if (::fsync(fd_) != 0) return ErrnoError("fsync", path_);
    return util::Status::Ok();
  }

  util::Status Close() override {
    if (fd_ >= 0 && ::close(fd_) != 0) {
      fd_ = -1;
      return ErrnoError("close", path_);
    }
    fd_ = -1;
    return util::Status::Ok();
  }

 private:
  int fd_;
  std::string path_;
};

// A read-only mmap of the whole file; empty files skip the map (mmap of
// zero bytes is an error).
class MmapFileContents final : public FileContents {
 public:
  MmapFileContents(void* map, std::size_t size) : map_(map), size_(size) {}
  ~MmapFileContents() override {
    if (map_ != nullptr) ::munmap(map_, size_);
  }
  std::string_view data() const override {
    return {static_cast<const char*>(map_), size_};
  }

 private:
  void* map_;
  std::size_t size_;
};

class PosixEnv final : public Env {
 public:
  util::StatusOr<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, bool truncate) override {
    const int flags = O_WRONLY | O_CREAT | (truncate ? O_TRUNC : O_APPEND);
    const int fd = ::open(path.c_str(), flags, 0644);
    if (fd < 0) return ErrnoError("open", path);
    return std::unique_ptr<WritableFile>(
        std::make_unique<PosixWritableFile>(fd, path));
  }

  util::StatusOr<std::unique_ptr<FileContents>> ReadFile(
      const std::string& path) override {
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
      if (errno == ENOENT) {
        return util::NotFoundError("no such file: " + path);
      }
      return ErrnoError("open", path);
    }
    struct stat st;
    if (::fstat(fd, &st) != 0) {
      const util::Status status = ErrnoError("stat", path);
      ::close(fd);
      return status;
    }
    const std::size_t size = static_cast<std::size_t>(st.st_size);
    if (size == 0) {
      ::close(fd);
      return std::unique_ptr<FileContents>(
          std::make_unique<MmapFileContents>(nullptr, 0));
    }
    void* map = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd);  // The mapping outlives the descriptor.
    if (map == MAP_FAILED) return ErrnoError("mmap", path);
    return std::unique_ptr<FileContents>(
        std::make_unique<MmapFileContents>(map, size));
  }

  util::StatusOr<bool> FileExists(const std::string& path) override {
    return ::access(path.c_str(), F_OK) == 0;
  }

  util::StatusOr<std::vector<std::string>> ListDir(
      const std::string& path) override {
    DIR* dir = ::opendir(path.c_str());
    if (dir == nullptr) return ErrnoError("opendir", path);
    std::vector<std::string> names;
    while (const dirent* entry = ::readdir(dir)) {
      const std::string name = entry->d_name;
      if (name != "." && name != "..") names.push_back(name);
    }
    ::closedir(dir);
    return names;
  }

  util::Status CreateDir(const std::string& path) override {
    if (::mkdir(path.c_str(), 0755) != 0 && errno != EEXIST) {
      return ErrnoError("mkdir", path);
    }
    return util::Status::Ok();
  }

  util::Status RenameFile(const std::string& from,
                          const std::string& to) override {
    if (::rename(from.c_str(), to.c_str()) != 0) {
      return ErrnoError("rename to " + to + " from", from);
    }
    return util::Status::Ok();
  }

  util::Status RemoveFile(const std::string& path) override {
    if (::unlink(path.c_str()) != 0) return ErrnoError("unlink", path);
    return util::Status::Ok();
  }

  util::Status TruncateFile(const std::string& path,
                            std::uint64_t size) override {
    if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
      return ErrnoError("truncate", path);
    }
    return util::Status::Ok();
  }

  util::Status SyncDir(const std::string& path) override {
    const int fd = ::open(path.c_str(), O_RDONLY | O_DIRECTORY);
    if (fd < 0) return ErrnoError("open dir", path);
    const int rc = ::fsync(fd);
    ::close(fd);
    if (rc != 0) return ErrnoError("fsync dir", path);
    return util::Status::Ok();
  }
};

// ---------------------------------------------------------------------------
// FaultyEnv

class StringFileContents final : public FileContents {
 public:
  explicit StringFileContents(std::string data) : data_(std::move(data)) {}
  std::string_view data() const override { return data_; }

 private:
  std::string data_;
};

}  // namespace

Env* Env::Posix() {
  static PosixEnv* env = new PosixEnv;
  return env;
}

class FaultyWritableFile final : public WritableFile {
 public:
  FaultyWritableFile(FaultyEnv* env, std::string path)
      : env_(env), path_(std::move(path)) {}

  util::Status Append(std::string_view data) override {
    std::lock_guard<std::mutex> lock(env_->mutex_);
    if (env_->wedged_) return util::IoError("env wedged by injected fault");
    auto it = env_->files_.find(path_);
    if (it == env_->files_.end()) {
      return util::IoError("file vanished under writer: " + path_);
    }
    using IoAction = util::FaultInjectorOptions::IoAction;
    switch (env_->NextIoActionLocked()) {
      case IoAction::kFail:
        env_->wedged_ = true;
        return util::IoError("injected write failure on " + path_);
      case IoAction::kShortWrite:
        // The process died mid-write: a prefix reached the file, the
        // call never returned.
        it->second.written.append(data.substr(0, data.size() / 2));
        env_->wedged_ = true;
        return util::IoError("injected short write on " + path_);
      case IoAction::kNone:
      case IoAction::kFsyncDrop:  // Only meaningful on Sync.
        break;
    }
    it->second.written.append(data);
    return util::Status::Ok();
  }

  util::Status Sync() override {
    std::lock_guard<std::mutex> lock(env_->mutex_);
    if (env_->wedged_) return util::IoError("env wedged by injected fault");
    auto it = env_->files_.find(path_);
    if (it == env_->files_.end()) {
      return util::IoError("file vanished under writer: " + path_);
    }
    using IoAction = util::FaultInjectorOptions::IoAction;
    switch (env_->NextIoActionLocked()) {
      case IoAction::kFail:
        env_->wedged_ = true;
        return util::IoError("injected fsync failure on " + path_);
      case IoAction::kFsyncDrop:
        // The lying-fsync case: the call reports success but nothing
        // became durable. Not wedged — the process runs on, convinced
        // its data is safe.
        return util::Status::Ok();
      case IoAction::kNone:
      case IoAction::kShortWrite:
        break;
    }
    it->second.durable = it->second.written;
    // Like ext4's fsync of a fresh file, the directory entry commits
    // with the data; SyncDir is still required for rename direction.
    it->second.entry_durable = true;
    return util::Status::Ok();
  }

  util::Status Close() override { return util::Status::Ok(); }

 private:
  FaultyEnv* env_;
  std::string path_;
};

util::FaultInjectorOptions::IoAction FaultyEnv::NextIoActionLocked() {
  if (injector_ == nullptr) return util::FaultInjectorOptions::IoAction::kNone;
  return injector_->OnIoOp();
}

util::StatusOr<std::unique_ptr<WritableFile>> FaultyEnv::NewWritableFile(
    const std::string& path, bool truncate) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (wedged_) return util::IoError("env wedged by injected fault");
  using IoAction = util::FaultInjectorOptions::IoAction;
  switch (NextIoActionLocked()) {
    case IoAction::kFail:
    case IoAction::kShortWrite:
      wedged_ = true;
      return util::IoError("injected open failure on " + path);
    case IoAction::kNone:
    case IoAction::kFsyncDrop:
      break;
  }
  FileState& state = files_[path];
  if (truncate) {
    state.written.clear();
    // Truncation is a journaled metadata op: model it as immediately
    // durable (conservative for the formats here — recovery must not
    // depend on a truncated tail resurrecting).
    state.durable.clear();
  }
  return std::unique_ptr<WritableFile>(
      std::make_unique<FaultyWritableFile>(this, path));
}

util::StatusOr<std::unique_ptr<FileContents>> FaultyEnv::ReadFile(
    const std::string& path) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = files_.find(path);
  if (it == files_.end()) return util::NotFoundError("no such file: " + path);
  return std::unique_ptr<FileContents>(
      std::make_unique<StringFileContents>(it->second.written));
}

util::StatusOr<bool> FaultyEnv::FileExists(const std::string& path) {
  std::lock_guard<std::mutex> lock(mutex_);
  return files_.count(path) > 0 || dirs_.count(path) > 0;
}

util::StatusOr<std::vector<std::string>> FaultyEnv::ListDir(
    const std::string& path) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (dirs_.count(path) == 0) return util::NotFoundError("no such dir: " + path);
  std::vector<std::string> names;
  const std::string prefix = path + "/";
  for (const auto& [file_path, state] : files_) {
    if (file_path.rfind(prefix, 0) != 0) continue;
    const std::string rest = file_path.substr(prefix.size());
    if (rest.find('/') == std::string::npos) names.push_back(rest);
  }
  return names;
}

util::Status FaultyEnv::CreateDir(const std::string& path) {
  std::lock_guard<std::mutex> lock(mutex_);
  dirs_.emplace(path, true);  // Directories survive crashes in this model.
  return util::Status::Ok();
}

util::Status FaultyEnv::RenameFile(const std::string& from,
                                   const std::string& to) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (wedged_) return util::IoError("env wedged by injected fault");
  using IoAction = util::FaultInjectorOptions::IoAction;
  switch (NextIoActionLocked()) {
    case IoAction::kFail:
    case IoAction::kShortWrite:
      wedged_ = true;
      return util::IoError("injected rename failure on " + from);
    case IoAction::kNone:
    case IoAction::kFsyncDrop:
      break;
  }
  const auto it = files_.find(from);
  if (it == files_.end()) return util::NotFoundError("no such file: " + from);
  FileState state = std::move(it->second);
  files_.erase(it);
  files_[to] = std::move(state);
  // Visible now, durable only after SyncDir: record so SimulateCrash
  // can put the file back under its old name.
  pending_renames_.push_back({from, to});
  return util::Status::Ok();
}

util::Status FaultyEnv::RemoveFile(const std::string& path) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (wedged_) return util::IoError("env wedged by injected fault");
  const auto it = files_.find(path);
  if (it == files_.end()) return util::NotFoundError("no such file: " + path);
  files_.erase(it);
  // Unlink is modeled durable immediately; recovery never depends on a
  // removed file resurrecting.
  return util::Status::Ok();
}

util::Status FaultyEnv::TruncateFile(const std::string& path,
                                     std::uint64_t size) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (wedged_) return util::IoError("env wedged by injected fault");
  const auto it = files_.find(path);
  if (it == files_.end()) return util::NotFoundError("no such file: " + path);
  if (size < it->second.written.size()) it->second.written.resize(size);
  if (size < it->second.durable.size()) it->second.durable.resize(size);
  return util::Status::Ok();
}

util::Status FaultyEnv::SyncDir(const std::string& path) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (wedged_) return util::IoError("env wedged by injected fault");
  using IoAction = util::FaultInjectorOptions::IoAction;
  switch (NextIoActionLocked()) {
    case IoAction::kFail:
      wedged_ = true;
      return util::IoError("injected dir fsync failure on " + path);
    case IoAction::kFsyncDrop:
      return util::Status::Ok();  // Lied; renames stay un-durable.
    case IoAction::kNone:
    case IoAction::kShortWrite:
      break;
  }
  const std::string prefix = path + "/";
  auto in_dir = [&prefix](const std::string& file_path) {
    return file_path.rfind(prefix, 0) == 0 &&
           file_path.find('/', prefix.size()) == std::string::npos;
  };
  for (auto& [file_path, state] : files_) {
    if (in_dir(file_path)) state.entry_durable = true;
  }
  // Commit the direction of renames inside this directory.
  for (auto it = pending_renames_.begin(); it != pending_renames_.end();) {
    if (in_dir(it->to)) {
      it = pending_renames_.erase(it);
    } else {
      ++it;
    }
  }
  return util::Status::Ok();
}

void FaultyEnv::SimulateCrash() {
  std::lock_guard<std::mutex> lock(mutex_);
  wedged_ = false;
  injector_ = nullptr;
  // Un-committed renames revert, newest first.
  for (auto it = pending_renames_.rbegin(); it != pending_renames_.rend();
       ++it) {
    const auto found = files_.find(it->to);
    if (found == files_.end()) continue;  // Removed after the rename.
    FileState state = std::move(found->second);
    files_.erase(found);
    files_[it->from] = std::move(state);
  }
  pending_renames_.clear();
  // Files whose directory entry never became durable vanish; the rest
  // keep only their fsync'd bytes.
  for (auto it = files_.begin(); it != files_.end();) {
    if (!it->second.entry_durable) {
      it = files_.erase(it);
      continue;
    }
    it->second.written = it->second.durable;
    ++it;
  }
}

}  // namespace ecdr::storage
