// The storage layer's narrow filesystem seam.
//
// Everything the durability subsystem does to disk goes through Env —
// append, fsync, rename-into-place, directory sync — so the crash
// tests can substitute FaultyEnv, an in-memory filesystem that tracks
// exactly which bytes an fsync has made durable and can "crash" by
// discarding everything after the last synced watermark. PosixEnv is
// the real thing: O_APPEND writes, fsync/fdatasync, mmap'd reads (a
// loaded image costs page-table entries, not a copy).
//
// Durability contract (what PosixEnv provides and FaultyEnv models):
//   - Append() buffers in the OS; only Sync() makes the bytes crash-safe.
//   - RenameFile() is atomic with respect to crashes (both names never
//     point at garbage) but the *direction* is only durable after
//     SyncDir() on the containing directory.
//   - A crash may truncate any un-synced suffix at any byte boundary.

#ifndef ECDR_STORAGE_ENV_H_
#define ECDR_STORAGE_ENV_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "util/fault_injector.h"
#include "util/status.h"

namespace ecdr::storage {

/// An append-only output file. Close() without Sync() leaves the data
/// at the OS's mercy across a crash.
class WritableFile {
 public:
  virtual ~WritableFile() = default;
  virtual util::Status Append(std::string_view data) = 0;
  virtual util::Status Sync() = 0;
  virtual util::Status Close() = 0;
};

/// An immutable view of a whole file. PosixEnv backs it with a
/// read-only mmap; FaultyEnv with a string. Keep it alive as long as
/// anything points into data().
class FileContents {
 public:
  virtual ~FileContents() = default;
  virtual std::string_view data() const = 0;
};

class Env {
 public:
  virtual ~Env() = default;

  /// Opens `path` for appending; truncates first when `truncate`.
  virtual util::StatusOr<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, bool truncate) = 0;

  virtual util::StatusOr<std::unique_ptr<FileContents>> ReadFile(
      const std::string& path) = 0;

  virtual util::StatusOr<bool> FileExists(const std::string& path) = 0;

  /// Names (not paths) of the entries of directory `path`.
  virtual util::StatusOr<std::vector<std::string>> ListDir(
      const std::string& path) = 0;

  /// Creates `path` (one level); ok if it already exists.
  virtual util::Status CreateDir(const std::string& path) = 0;

  virtual util::Status RenameFile(const std::string& from,
                                  const std::string& to) = 0;

  virtual util::Status RemoveFile(const std::string& path) = 0;

  virtual util::Status TruncateFile(const std::string& path,
                                    std::uint64_t size) = 0;

  /// Makes preceding creates/renames/removes in `path` durable.
  virtual util::Status SyncDir(const std::string& path) = 0;

  /// The process-wide real filesystem.
  static Env* Posix();
};

/// In-memory Env with byte-accurate crash semantics for the recovery
/// tests. Every file tracks two states: `written` (what reads observe
/// now) and `durable` (what survives SimulateCrash — advanced to
/// `written` by a successful Sync). An attached util::FaultInjector's
/// io hook can make the env fail, short-write, or silently drop fsyncs
/// at a chosen operation index; after any injected fault the env is
/// wedged (every later write-side op fails), mimicking a process that
/// died mid-call.
///
/// Thread-safe; the crash tests drive it from one thread.
class FaultyEnv : public Env {
 public:
  explicit FaultyEnv(util::FaultInjector* injector = nullptr)
      : injector_(injector) {}

  util::StatusOr<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, bool truncate) override;
  util::StatusOr<std::unique_ptr<FileContents>> ReadFile(
      const std::string& path) override;
  util::StatusOr<bool> FileExists(const std::string& path) override;
  util::StatusOr<std::vector<std::string>> ListDir(
      const std::string& path) override;
  util::Status CreateDir(const std::string& path) override;
  util::Status RenameFile(const std::string& from,
                          const std::string& to) override;
  util::Status RemoveFile(const std::string& path) override;
  util::Status TruncateFile(const std::string& path,
                            std::uint64_t size) override;
  util::Status SyncDir(const std::string& path) override;

  /// "Kills the process": every file reverts to its durable bytes, the
  /// wedged flag clears, and the injector detaches (recovery runs
  /// fault-free unless a new injector is attached).
  void SimulateCrash();

  void set_injector(util::FaultInjector* injector) {
    std::lock_guard<std::mutex> lock(mutex_);
    injector_ = injector;
  }

  /// True once an injected fault has fired (the writer is wedged).
  bool wedged() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return wedged_;
  }

 private:
  friend class FaultyWritableFile;

  struct FileState {
    std::string written;
    std::string durable;
    /// Directory-entry durability: a file created (or renamed in) but
    /// whose directory was never synced vanishes at SimulateCrash.
    bool entry_durable = false;
  };

  /// Claims the next io op and applies sticky-wedge semantics. Returns
  /// the action the calling op must take. mutex_ must be held.
  util::FaultInjectorOptions::IoAction NextIoActionLocked();

  /// A rename whose direction is not yet durable (no SyncDir since);
  /// SimulateCrash undoes these newest-first.
  struct PendingRename {
    std::string from;
    std::string to;
  };

  mutable std::mutex mutex_;
  util::FaultInjector* injector_;
  bool wedged_ = false;
  std::map<std::string, FileState> files_;
  std::map<std::string, bool> dirs_;  // path -> entry_durable
  std::vector<PendingRename> pending_renames_;
};

}  // namespace ecdr::storage

#endif  // ECDR_STORAGE_ENV_H_
