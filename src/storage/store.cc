#include "storage/store.h"

#include <algorithm>
#include <utility>

namespace ecdr::storage {

namespace {

std::optional<std::uint64_t> ParseWalFileName(const std::string& name) {
  constexpr std::string_view kPrefix = "wal-";
  constexpr std::string_view kSuffix = ".log";
  if (name.size() <= kPrefix.size() + kSuffix.size()) return std::nullopt;
  if (name.compare(0, kPrefix.size(), kPrefix) != 0) return std::nullopt;
  if (name.compare(name.size() - kSuffix.size(), kSuffix.size(), kSuffix) !=
      0) {
    return std::nullopt;
  }
  std::uint64_t generation = 0;
  for (std::size_t i = kPrefix.size(); i < name.size() - kSuffix.size(); ++i) {
    if (name[i] < '0' || name[i] > '9') return std::nullopt;
    generation = generation * 10 + static_cast<std::uint64_t>(name[i] - '0');
  }
  return generation;
}

/// Ontology lineage state threaded through replay: the DAG the corpus
/// is currently bound to (evolving as mutation records apply) plus the
/// retirement flags and version counter.
struct ReplayOntology {
  const ontology::Ontology* baseline = nullptr;
  std::shared_ptr<const ontology::Ontology> evolved;  // null = baseline
  std::vector<std::uint8_t> retired;
  std::uint64_t version = 0;
  bool structural_mutation = false;  // invalidates a recovered DEWY pool

  const ontology::Ontology& current() const {
    return evolved != nullptr ? *evolved : *baseline;
  }
};

/// Applies one replayed ontology mutation record. Structural records
/// (add-concept / add-edge) rebuild the DAG — append-only, so existing
/// ids and ordinals are stable — and re-bind the recovering corpus.
bool ApplyOntologyRecord(const WalRecord& record, ReplayOntology* onto,
                         corpus::Corpus* corpus) {
  ontology::OntologyMutation m;
  switch (record.op) {
    case WalOp::kAddConcept:
      m.kind = ontology::OntologyMutation::Kind::kAddConcept;
      m.name = record.name;
      m.parents.assign(record.concepts.begin(), record.concepts.end());
      break;
    case WalOp::kRetireConcept:
      m.kind = ontology::OntologyMutation::Kind::kRetireConcept;
      m.target = record.doc;
      break;
    case WalOp::kAddEdge:
      if (record.concepts.size() != 2) return false;
      m.kind = ontology::OntologyMutation::Kind::kAddEdge;
      m.parent = record.concepts[0];
      m.child = record.concepts[1];
      break;
    default:
      return false;
  }
  std::vector<std::uint8_t> retired = onto->retired;
  util::StatusOr<ontology::Ontology> next = ontology::ApplyMutations(
      onto->current(), std::span<const ontology::OntologyMutation>(&m, 1),
      &retired);
  if (!next.ok()) return false;
  onto->retired = std::move(retired);
  ++onto->version;
  if (record.op != WalOp::kRetireConcept) {
    // The rebuilt DAG is structurally different; re-bind. Retire-only
    // records change no edge and no address: keep the current object
    // (and a recovered DEWY pool stays adoptable).
    onto->evolved =
        std::make_shared<const ontology::Ontology>(std::move(*next));
    corpus->RebindOntology(*onto->evolved);
    onto->structural_mutation = true;
  }
  return true;
}

/// Applies one replayed record to the recovering corpus. A false return
/// means the record — though checksummed — cannot apply (e.g. a delete
/// of a document that does not exist): the log is lying about history,
/// so replay stops there and truncates, exactly like a torn record.
bool ApplyRecord(const WalRecord& record, ReplayOntology* onto,
                 corpus::Corpus* corpus) {
  switch (record.op) {
    case WalOp::kAddDocument:
      return corpus
          ->AddDocument(corpus::Document(std::vector<std::uint32_t>(
              record.concepts.begin(), record.concepts.end())))
          .ok();
    case WalOp::kDeleteDocument:
      return corpus->DeleteDocument(record.doc).ok();
    case WalOp::kUpdateDocument:
      return corpus
          ->UpdateDocument(record.doc,
                           corpus::Document(std::vector<std::uint32_t>(
                               record.concepts.begin(),
                               record.concepts.end())))
          .ok();
    case WalOp::kAddConcept:
    case WalOp::kRetireConcept:
    case WalOp::kAddEdge:
      return ApplyOntologyRecord(record, onto, corpus);
  }
  return false;
}

}  // namespace

std::string DocumentStore::WalPath(std::uint64_t generation) const {
  return options_.data_dir + "/wal-" + std::to_string(generation) + ".log";
}

util::StatusOr<std::unique_ptr<DocumentStore>> DocumentStore::Open(
    StoreOptions options, const ontology::Ontology& ontology) {
  if (options.env == nullptr) options.env = Env::Posix();
  std::unique_ptr<DocumentStore> store(
      new DocumentStore(std::move(options), ontology));
  store->env_ = store->options_.env;
  std::lock_guard<std::mutex> lock(store->mutex_);
  ECDR_RETURN_IF_ERROR(store->RecoverLocked(ontology));
  return store;
}

util::Status DocumentStore::RecoverLocked(const ontology::Ontology& ontology) {
  ECDR_RETURN_IF_ERROR(env_->CreateDir(options_.data_dir));
  auto listed = env_->ListDir(options_.data_dir);
  ECDR_RETURN_IF_ERROR(listed.status());

  // Newest image whose checksums verify wins; anything torn or corrupt
  // is skipped (never deleted — leave the evidence for a human).
  std::vector<std::uint64_t> image_generations;
  std::vector<std::uint64_t> wal_generations;
  for (const std::string& name : *listed) {
    if (const auto generation = ParseImageFileName(name)) {
      image_generations.push_back(*generation);
    } else if (const auto wal_generation = ParseWalFileName(name)) {
      wal_generations.push_back(*wal_generation);
    }
  }
  std::sort(image_generations.rbegin(), image_generations.rend());
  bool have_image = false;
  for (const std::uint64_t generation : image_generations) {
    auto loaded = LoadImage(
        *env_, options_.data_dir + "/" + ImageFileName(generation), ontology);
    if (loaded.ok()) {
      recovered_ = std::move(*loaded);
      have_image = true;
      break;
    }
    ++stats_.images_skipped;
  }
  if (have_image) {
    stats_.image_generation = recovered_.meta.generation;
  }
  std::uint64_t last_lsn = recovered_.meta.last_lsn;

  // Seed the replay's ontology lineage from the image's ONTO stamp (or
  // the boot baseline for legacy/fresh stores); WAL mutation records
  // evolve it further, in LSN order with the document ops.
  ReplayOntology replay_onto;
  replay_onto.baseline = &ontology;
  replay_onto.evolved = recovered_.evolved;
  replay_onto.retired = recovered_.retired;
  replay_onto.version = recovered_.ontology_version;

  // Replay every WAL in generation order. Normally there is one; a
  // crash between image commit and WAL rotation legitimately leaves
  // two, and the LSN filter makes replay of both exact.
  std::sort(wal_generations.begin(), wal_generations.end());
  const bool exact_before_replay = have_image;
  bool replayed_any = false;
  for (const std::uint64_t generation : wal_generations) {
    const std::string path = WalPath(generation);
    auto contents = env_->ReadFile(path);
    if (!contents.ok()) continue;  // Raced away or unreadable; skip.
    const WalReplayResult replay =
        ReplayWal((*contents)->data(), recovered_.meta.last_lsn);
    std::uint64_t applied_bytes = replay.valid_bytes;
    for (std::size_t i = 0; i < replay.records.size(); ++i) {
      const WalRecord& record = replay.records[i];
      if (record.lsn <= last_lsn) continue;  // Cross-file duplicate.
      if (!ApplyRecord(record, &replay_onto, &recovered_.corpus)) {
        // Stop trusting the log at the first inapplicable record.
        applied_bytes = 0;  // Recomputed below: conservative full stop.
        break;
      }
      last_lsn = record.lsn;
      ++stats_.records_replayed;
      replayed_any = true;
    }
    if (applied_bytes != replay.valid_bytes || replay.tail_dropped) {
      stats_.wal_tail_dropped = true;
    }
    // Chop whatever replay refused so the next boot and this one agree.
    if (replay.tail_dropped && generation == wal_generations.back()) {
      ECDR_RETURN_IF_ERROR(env_->TruncateFile(path, replay.valid_bytes));
    }
  }
  recovered_index_exact_ = exact_before_replay && !replayed_any;
  recovered_dag_ = std::move(replay_onto.evolved);
  recovered_retired_ = std::move(replay_onto.retired);
  recovered_ontology_version_ = replay_onto.version;
  // A structural mutation after the image changes address sets; the
  // image's DEWY pool no longer matches and must not be adopted.
  if (replay_onto.structural_mutation) recovered_.has_dewey = false;

  // The WAL the writer continues into: the one named for the recovered
  // image generation (created empty when absent).
  wal_generation_ = stats_.image_generation;
  const std::string wal_path = WalPath(wal_generation_);
  auto exists = env_->FileExists(wal_path);
  ECDR_RETURN_IF_ERROR(exists.status());
  std::uint64_t wal_size = 0;
  if (*exists) {
    auto contents = env_->ReadFile(wal_path);
    ECDR_RETURN_IF_ERROR(contents.status());
    wal_size = (*contents)->data().size();
  }
  auto file = env_->NewWritableFile(wal_path, /*truncate=*/false);
  ECDR_RETURN_IF_ERROR(file.status());
  wal_ = std::make_unique<WalWriter>(std::move(*file), wal_size);
  ECDR_RETURN_IF_ERROR(env_->SyncDir(options_.data_dir));

  next_lsn_ = last_lsn + 1;
  stats_.last_lsn = last_lsn;
  stats_.durable_lsn = last_lsn;
  stats_.wal_bytes = wal_->size();
  return util::Status::Ok();
}

corpus::Corpus DocumentStore::TakeRecoveredCorpus() {
  std::lock_guard<std::mutex> lock(mutex_);
  return std::move(recovered_.corpus);
}

index::ShardedIndex DocumentStore::TakeRecoveredIndex() {
  std::lock_guard<std::mutex> lock(mutex_);
  return std::move(recovered_.index);
}

std::vector<std::uint32_t> DocumentStore::TakeDeweyComponents() {
  std::lock_guard<std::mutex> lock(mutex_);
  return std::move(recovered_.dewey_components);
}

std::vector<ontology::AddressSpan> DocumentStore::TakeDeweySpans() {
  std::lock_guard<std::mutex> lock(mutex_);
  return std::move(recovered_.dewey_spans);
}

std::vector<std::uint32_t> DocumentStore::TakeDeweyConceptFirst() {
  std::lock_guard<std::mutex> lock(mutex_);
  return std::move(recovered_.dewey_concept_first);
}

std::shared_ptr<const ontology::Ontology>
DocumentStore::TakeRecoveredOntology() {
  std::lock_guard<std::mutex> lock(mutex_);
  return std::move(recovered_dag_);
}

std::vector<std::uint8_t> DocumentStore::TakeRecoveredRetired() {
  std::lock_guard<std::mutex> lock(mutex_);
  return std::move(recovered_retired_);
}

std::uint64_t DocumentStore::recovered_ontology_version() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return recovered_ontology_version_;
}

util::StatusOr<std::uint64_t> DocumentStore::LogRecordLocked(
    WalRecord record) {
  record.lsn = next_lsn_;
  ECDR_RETURN_IF_ERROR(wal_->Append(record));
  ++next_lsn_;
  stats_.last_lsn = record.lsn;
  stats_.wal_bytes = wal_->size();
  return record.lsn;
}

util::StatusOr<std::uint64_t> DocumentStore::LogAdd(
    const corpus::Document& doc) {
  std::lock_guard<std::mutex> lock(mutex_);
  WalRecord record;
  record.op = WalOp::kAddDocument;
  record.concepts.assign(doc.concepts().begin(), doc.concepts().end());
  return LogRecordLocked(std::move(record));
}

util::StatusOr<std::uint64_t> DocumentStore::LogDelete(corpus::DocId doc) {
  std::lock_guard<std::mutex> lock(mutex_);
  WalRecord record;
  record.op = WalOp::kDeleteDocument;
  record.doc = doc;
  return LogRecordLocked(std::move(record));
}

util::StatusOr<std::uint64_t> DocumentStore::LogUpdate(
    corpus::DocId doc, const corpus::Document& new_doc) {
  std::lock_guard<std::mutex> lock(mutex_);
  WalRecord record;
  record.op = WalOp::kUpdateDocument;
  record.doc = doc;
  record.concepts.assign(new_doc.concepts().begin(),
                         new_doc.concepts().end());
  return LogRecordLocked(std::move(record));
}

util::StatusOr<std::uint64_t> DocumentStore::LogOntologyMutation(
    const ontology::OntologyMutation& mutation) {
  std::lock_guard<std::mutex> lock(mutex_);
  WalRecord record;
  switch (mutation.kind) {
    case ontology::OntologyMutation::Kind::kAddConcept:
      record.op = WalOp::kAddConcept;
      record.name = mutation.name;
      record.concepts.assign(mutation.parents.begin(), mutation.parents.end());
      break;
    case ontology::OntologyMutation::Kind::kRetireConcept:
      record.op = WalOp::kRetireConcept;
      record.doc = mutation.target;
      break;
    case ontology::OntologyMutation::Kind::kAddEdge:
      record.op = WalOp::kAddEdge;
      record.concepts = {mutation.parent, mutation.child};
      break;
  }
  return LogRecordLocked(std::move(record));
}

util::Status DocumentStore::SyncWal() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (options_.fsync_mode == StoreOptions::FsyncMode::kNever) {
    return util::Status::Ok();
  }
  ECDR_RETURN_IF_ERROR(wal_->Sync());
  stats_.durable_lsn = stats_.last_lsn;
  ++stats_.wal_syncs;
  return util::Status::Ok();
}

util::Status DocumentStore::WriteCheckpoint(const corpus::Corpus& corpus,
                                            const index::ShardedIndex& index,
                                            const ontology::FlatDeweyPool* dewey,
                                            const ontology::OntologySnapshot* onto,
                                            std::uint64_t generation,
                                            std::uint64_t last_lsn) {
  std::lock_guard<std::mutex> lock(mutex_);
  // The log first: the image claims to cover last_lsn, so those records
  // must already be durable in case the image write dies halfway.
  if (options_.fsync_mode != StoreOptions::FsyncMode::kNever) {
    ECDR_RETURN_IF_ERROR(wal_->Sync());
    stats_.durable_lsn = stats_.last_lsn;
  }
  ImageMeta meta;
  meta.generation = generation;
  meta.last_lsn = last_lsn;
  auto written = WriteImage(*env_, options_.data_dir, meta, corpus, index,
                            dewey, onto);
  ECDR_RETURN_IF_ERROR(written.status());

  // Rotate: new epoch's WAL, then retire everything older. Records
  // logged after last_lsn live in the old WAL, which survives until
  // the *next* checkpoint precisely because replay reads every WAL
  // above the image's LSN — nothing is lost if we crash right here.
  auto file = env_->NewWritableFile(WalPath(generation), /*truncate=*/true);
  ECDR_RETURN_IF_ERROR(file.status());
  auto new_wal = std::make_unique<WalWriter>(std::move(*file), 0);
  // Records logged after last_lsn are only in the old WAL; carry them
  // into the new one (re-framed, same LSNs) so the sweep below can
  // drop the old file without losing acknowledged history.
  if (stats_.last_lsn > last_lsn) {
    auto old_contents = env_->ReadFile(WalPath(wal_generation_));
    ECDR_RETURN_IF_ERROR(old_contents.status());
    const WalReplayResult replay =
        ReplayWal((*old_contents)->data(), last_lsn);
    for (const WalRecord& record : replay.records) {
      ECDR_RETURN_IF_ERROR(new_wal->Append(record));
    }
    if (options_.fsync_mode != StoreOptions::FsyncMode::kNever) {
      ECDR_RETURN_IF_ERROR(new_wal->Sync());
    }
  }
  wal_ = std::move(new_wal);
  wal_generation_ = generation;
  ECDR_RETURN_IF_ERROR(env_->SyncDir(options_.data_dir));

  // Sweep: images and WALs strictly older than this checkpoint, plus
  // any abandoned tmp. Failures here are cosmetic; recovery tolerates
  // leftovers by construction.
  auto listed = env_->ListDir(options_.data_dir);
  if (listed.ok()) {
    for (const std::string& name : *listed) {
      const std::string path = options_.data_dir + "/" + name;
      if (const auto image_generation = ParseImageFileName(name)) {
        if (*image_generation < generation) (void)env_->RemoveFile(path);
      } else if (const auto wal_generation = ParseWalFileName(name)) {
        if (*wal_generation < generation) (void)env_->RemoveFile(path);
      } else if (name.size() > 4 &&
                 name.compare(name.size() - 4, 4, ".tmp") == 0) {
        (void)env_->RemoveFile(path);
      }
    }
  }
  stats_.image_generation = generation;
  stats_.wal_bytes = wal_->size();
  ++stats_.checkpoints_written;
  return util::Status::Ok();
}

StoreStats DocumentStore::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace ecdr::storage
