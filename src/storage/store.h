// DocumentStore — the crash-safe document lifecycle behind
// core::RankingEngine (DESIGN.md, "Durability & recovery").
//
// One directory holds everything:
//   image-<generation>.ecdr   committed snapshot images (storage/image.h)
//   wal-<generation>.log      the write-ahead log opened at that image
//   *.tmp                     in-flight image writes, ignored and swept
//
// Open() recovers: newest image whose checksums verify (torn or corrupt
// newer images are skipped and counted), then every WAL record above
// the image's last LSN re-applied in order, truncating the log at the
// first bad record. The write path is log-ahead: LogAdd/LogUpdate/
// LogDelete append a record *before* the caller mutates in-memory
// state, and SyncWal() on publish makes the acknowledged batch
// durable. WriteCheckpoint() writes a fresh image, rotates the WAL,
// and sweeps artifacts older than the new generation.
//
// Thread safety: all methods serialize on one internal mutex. A
// checkpoint holds it for the image write, so writers stall rather
// than race the rotation — the single-writer build path makes that the
// honest tradeoff.

#ifndef ECDR_STORAGE_STORE_H_
#define ECDR_STORAGE_STORE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "corpus/corpus.h"
#include "index/sharded_index.h"
#include "ontology/flat_dewey_pool.h"
#include "ontology/ontology.h"
#include "ontology/ontology_snapshot.h"
#include "storage/env.h"
#include "storage/image.h"
#include "storage/wal.h"
#include "util/status.h"

namespace ecdr::storage {

struct StoreOptions {
  std::string data_dir;

  /// kAlways (default): SyncWal() fsyncs — an acknowledged publish
  /// survives kill -9. kNever: SyncWal() is a no-op; the OS flushes
  /// when it pleases (benchmarks, bulk loads).
  enum class FsyncMode { kAlways, kNever };
  FsyncMode fsync_mode = FsyncMode::kAlways;

  /// Filesystem seam; null = the real one (Env::Posix()).
  Env* env = nullptr;
};

struct StoreStats {
  std::uint64_t last_lsn = 0;       ///< Highest LSN handed out.
  std::uint64_t durable_lsn = 0;    ///< Highest LSN a sync has covered.
  std::uint64_t image_generation = 0;  ///< Generation of the newest image.
  std::uint64_t wal_bytes = 0;      ///< Current WAL size.
  std::uint64_t wal_syncs = 0;      ///< SyncWal calls that hit the disk.
  std::uint64_t checkpoints_written = 0;
  std::uint64_t records_replayed = 0;   ///< WAL records re-applied at Open.
  bool wal_tail_dropped = false;    ///< Open truncated a torn WAL tail.
  std::uint64_t images_skipped = 0; ///< Corrupt/torn images bypassed at Open.
};

class DocumentStore {
 public:
  /// Opens (creating the directory if needed) and recovers. Fails only
  /// on real I/O errors — corruption is recovered *around* (skip the
  /// bad image, truncate the bad tail) and reported in stats(), because
  /// a store that refuses to open after a crash defeats its purpose.
  static util::StatusOr<std::unique_ptr<DocumentStore>> Open(
      StoreOptions options, const ontology::Ontology& ontology);

  // ---- Recovery results (consumed once by the engine at boot) -------

  /// The recovered corpus: image segments plus replayed WAL ops.
  corpus::Corpus TakeRecoveredCorpus();

  /// The image's index when the WAL replay applied nothing on top of
  /// it (then the restored shards are exact); otherwise empty, and the
  /// engine rebuilds incrementally from the corpus.
  index::ShardedIndex TakeRecoveredIndex();
  bool recovered_index_exact() const { return recovered_index_exact_; }

  /// True when the image carried a frozen Dewey pool AND no structural
  /// ontology mutation was replayed on top of it (a structural replay
  /// changes address sets, making the persisted pool stale — the engine
  /// then re-enumerates instead of adopting).
  bool has_recovered_dewey() const { return recovered_.has_dewey; }
  std::vector<std::uint32_t> TakeDeweyComponents();
  std::vector<ontology::AddressSpan> TakeDeweySpans();
  std::vector<std::uint32_t> TakeDeweyConceptFirst();

  /// The recovered ontology lineage state: the evolved DAG (null when
  /// the recovered structure equals the boot baseline — the engine then
  /// keeps its own), the retirement flags, and the version the replayed
  /// history ends at. The recovered corpus is bound to the evolved DAG
  /// when one exists; the engine re-binds it to its final snapshot.
  std::shared_ptr<const ontology::Ontology> TakeRecoveredOntology();
  std::vector<std::uint8_t> TakeRecoveredRetired();
  std::uint64_t recovered_ontology_version() const;

  // ---- Write path (log-ahead) ---------------------------------------

  /// Appends the op and returns its LSN. The caller applies the op to
  /// in-memory state only after this succeeds; on failure nothing was
  /// acknowledged and nothing may change.
  util::StatusOr<std::uint64_t> LogAdd(const corpus::Document& doc);
  util::StatusOr<std::uint64_t> LogDelete(corpus::DocId doc);
  util::StatusOr<std::uint64_t> LogUpdate(corpus::DocId doc,
                                          const corpus::Document& new_doc);

  /// Logs one ontology evolution step (add-concept / retire-concept /
  /// add-edge). The engine logs the whole validated batch and syncs the
  /// WAL BEFORE publishing the evolved snapshot — durability precedes
  /// visibility, same as the document path.
  util::StatusOr<std::uint64_t> LogOntologyMutation(
      const ontology::OntologyMutation& mutation);

  /// Makes every logged record durable (fsync_mode permitting). Called
  /// on publish; also the "final WAL fsync" of a clean shutdown.
  util::Status SyncWal();

  /// Writes a committed image of (`corpus`, `index`, `dewey`) stamped
  /// `generation`/`last_lsn`, rotates the WAL, and sweeps older images
  /// and logs. `corpus` must reflect exactly the ops up to `last_lsn`.
  /// `onto` (may be null) stamps the image with the ontology version the
  /// corpus is bound to, so reopen replays evolution deterministically.
  util::Status WriteCheckpoint(const corpus::Corpus& corpus,
                               const index::ShardedIndex& index,
                               const ontology::FlatDeweyPool* dewey,
                               const ontology::OntologySnapshot* onto,
                               std::uint64_t generation,
                               std::uint64_t last_lsn);

  StoreStats stats() const;

  const std::string& data_dir() const { return options_.data_dir; }

 private:
  DocumentStore(StoreOptions options, const ontology::Ontology& ontology)
      : options_(std::move(options)), recovered_(ontology) {}

  util::Status RecoverLocked(const ontology::Ontology& ontology);

  util::StatusOr<std::uint64_t> LogRecordLocked(WalRecord record);

  std::string WalPath(std::uint64_t generation) const;

  StoreOptions options_;
  Env* env_ = nullptr;

  mutable std::mutex mutex_;
  LoadedImage recovered_;
  bool recovered_index_exact_ = false;
  /// Ontology state at the end of replay. `recovered_dag_` is null
  /// until a structural evolution (image ONTO or WAL mutation) moves
  /// the structure off the boot baseline.
  std::shared_ptr<const ontology::Ontology> recovered_dag_;
  std::vector<std::uint8_t> recovered_retired_;
  std::uint64_t recovered_ontology_version_ = 0;
  std::unique_ptr<WalWriter> wal_;
  std::uint64_t wal_generation_ = 0;
  std::uint64_t next_lsn_ = 1;
  StoreStats stats_;
};

}  // namespace ecdr::storage

#endif  // ECDR_STORAGE_STORE_H_
