// Checksummed snapshot images — the checkpoint half of the durability
// story (DESIGN.md, "Durability & recovery").
//
// An image is one self-validating file capturing a published engine
// generation: the corpus segments (tombstone slots included), the
// sharded inverted index (so boot skips the index rebuild), and
// optionally the flattened Dewey pool (so boot skips the address
// enumeration DFS). Layout:
//
//   [header: 8-byte magic, u32 version, u32 reserved]
//   [section]*                 each: fourcc, flags, u64 size, payload,
//                              masked crc32c of the payload
//   [footer: 44 bytes, written last — u64 magic, u32 version,
//    u32 section count, u64 generation, u64 last LSN, u64 body end,
//    masked crc32c of the preceding footer bytes]
//
// Commit protocol: payloads are appended and fsync'd, then the footer
// is appended and fsync'd, then the file is renamed from its .tmp name
// and the directory fsync'd. A crash at any point leaves either no
// image (a .tmp the loader never looks at) or a fully-committed one;
// the loader additionally refuses any file whose footer or section
// checksums do not verify, with a kDataLoss status naming the spot.
// Loading is mmap-based (Env::ReadFile) — the file is mapped read-only
// and verified in place; only the decoded structures are materialized.

#ifndef ECDR_STORAGE_IMAGE_H_
#define ECDR_STORAGE_IMAGE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "corpus/corpus.h"
#include "index/sharded_index.h"
#include "ontology/flat_dewey_pool.h"
#include "ontology/ontology.h"
#include "ontology/ontology_snapshot.h"
#include "storage/env.h"
#include "util/status.h"

namespace ecdr::storage {

inline constexpr std::uint32_t kImageFormatVersion = 1;

struct ImageMeta {
  /// Engine generation the image captures.
  std::uint64_t generation = 0;
  /// Highest WAL LSN the image includes; replay resumes above it.
  std::uint64_t last_lsn = 0;
};

/// "image-<generation, zero-padded>.ecdr" — zero-padding makes the
/// lexicographic directory order the numeric generation order.
std::string ImageFileName(std::uint64_t generation);

/// Generation encoded in an image file name, or nullopt for any other
/// directory entry (tmp files, WALs, strangers).
std::optional<std::uint64_t> ParseImageFileName(const std::string& name);

/// Writes a committed image into `dir` using the protocol above and
/// returns its final path. On any failure the .tmp is abandoned (best
/// effort removed) and no image-named file is created. When `onto` is
/// set, an ONTO section stamps the image with the ontology version it
/// was built under — the full evolved DAG, retirement flags, and the
/// lineage hashes — so reopen rebinds the corpus to the exact ontology
/// state instead of assuming the boot-time baseline.
util::StatusOr<std::string> WriteImage(
    Env& env, const std::string& dir, const ImageMeta& meta,
    const corpus::Corpus& corpus, const index::ShardedIndex& index,
    const ontology::FlatDeweyPool* dewey,
    const ontology::OntologySnapshot* onto = nullptr);

struct LoadedImage {
  explicit LoadedImage(const ontology::Ontology& ontology)
      : corpus(ontology) {}

  ImageMeta meta;
  corpus::Corpus corpus;
  index::ShardedIndex index;

  /// The DEWY section, when present, as the raw arrays
  /// AddressEnumerator::AdoptPrecomputed consumes.
  bool has_dewey = false;
  std::vector<std::uint32_t> dewey_components;
  std::vector<ontology::AddressSpan> dewey_spans;
  std::vector<std::uint32_t> dewey_concept_first;

  /// The ONTO section, when present. `evolved` owns the image's DAG
  /// when it differs structurally from the boot baseline (the corpus is
  /// then bound to it — keep it alive as long as the corpus); null when
  /// the image was written at the baseline structure.
  bool has_ontology = false;
  std::shared_ptr<const ontology::Ontology> evolved;
  std::vector<std::uint8_t> retired;
  std::uint64_t ontology_version = 0;
  std::uint64_t ontology_identity_hash = 0;
  std::uint64_t ontology_baseline_hash = 0;
  std::uint64_t ontology_max_addresses = 0;
};

/// Verifies and decodes `path` against the boot-time BASELINE
/// `ontology`. kDataLoss on a torn or corrupt file (missing footer, bad
/// section checksum, impossible structure, an ONTO section failing its
/// identity self-check); kFailedPrecondition when the image is valid
/// but belongs to a foreign ontology — for ONTO-stamped images a
/// baseline-lineage hash mismatch, for legacy images a corpus/index
/// that does not fit `ontology`.
util::StatusOr<LoadedImage> LoadImage(Env& env, const std::string& path,
                                      const ontology::Ontology& ontology);

}  // namespace ecdr::storage

#endif  // ECDR_STORAGE_IMAGE_H_
