#include "storage/image.h"

#include <algorithm>
#include <cstring>
#include <memory>
#include <utility>

#include "ontology/ontology_builder.h"
#include "util/binary_stream.h"
#include "util/crc32c.h"

namespace ecdr::storage {

namespace {

constexpr char kHeaderMagic[8] = {'E', 'C', 'D', 'R', 'I', 'M', 'G', '1'};
constexpr std::uint64_t kFooterMagic = 0x31525446'52444345ull;  // "ECDRFTR1"
constexpr std::size_t kHeaderSize = 16;
constexpr std::size_t kFooterSize = 44;

// Section fourccs. FWDX (forward index) and TAPX (TA's precomputed
// distance postings) are reserved: the forward index is a pure view
// over the corpus (nothing to persist) and TA postings are a
// benchmark-only artifact; both keep their code points so adding them
// later is a new section, not a format break.
constexpr std::uint32_t kSectionCorpus = 0x50524F43;  // "CORP"
constexpr std::uint32_t kSectionIndex = 0x58564E49;   // "INVX"
constexpr std::uint32_t kSectionDewey = 0x59574544;   // "DEWY"
// Ontology version stamp + full evolved DAG. Pre-evolution readers
// skip it (unknown fourccs are tolerated), so no format version bump.
constexpr std::uint32_t kSectionOntology = 0x4F544E4F;  // "ONTO"

struct RawSection {
  std::uint32_t fourcc = 0;
  std::string_view payload;
};

std::string FourccName(std::uint32_t fourcc) {
  std::string name(4, '?');
  for (int i = 0; i < 4; ++i) {
    const char c = static_cast<char>((fourcc >> (8 * i)) & 0xFF);
    name[i] = (c >= 32 && c < 127) ? c : '?';
  }
  return name;
}

util::Status AppendSection(WritableFile& file, std::uint32_t fourcc,
                           const std::string& payload, std::uint64_t* body) {
  std::string header;
  util::AppendU32(header, fourcc);
  util::AppendU32(header, 0);  // flags, reserved
  util::AppendU64(header, payload.size());
  ECDR_RETURN_IF_ERROR(file.Append(header));
  ECDR_RETURN_IF_ERROR(file.Append(payload));
  std::string crc;
  util::AppendU32(crc, util::MaskCrc32c(util::Crc32c(payload)));
  ECDR_RETURN_IF_ERROR(file.Append(crc));
  *body += header.size() + payload.size() + crc.size();
  return util::Status::Ok();
}

std::string EncodeCorpusSection(const corpus::Corpus& corpus) {
  std::string payload;
  util::AppendU64(payload, corpus.num_segments());
  for (std::size_t s = 0; s < corpus.num_segments(); ++s) {
    const auto docs = corpus.segment_documents(s);
    util::AppendU32(payload, corpus.segment_base(s));
    util::AppendU64(payload, docs.size());
    for (const corpus::Document& doc : docs) {
      // A zero concept count is a tombstone slot, restored as one.
      const auto concepts = doc.concepts();
      util::AppendU32(payload, static_cast<std::uint32_t>(concepts.size()));
      for (const std::uint32_t c : concepts) util::AppendU32(payload, c);
    }
  }
  return payload;
}

std::string EncodeIndexSection(const index::ShardedIndex& index,
                               std::uint32_t num_concepts) {
  std::string payload;
  util::AppendU64(payload, index.num_shards());
  for (std::size_t s = 0; s < index.num_shards(); ++s) {
    const index::InvertedIndex& shard = index.shard(s);
    util::AppendU32(payload, shard.first_doc());
    util::AppendU32(payload, shard.num_indexed_documents());
    util::AppendU64(payload, num_concepts);
    for (std::uint32_t c = 0; c < num_concepts; ++c) {
      const auto postings = shard.Postings(c);
      util::AppendU32(payload, static_cast<std::uint32_t>(postings.size()));
      for (const corpus::DocId d : postings) util::AppendU32(payload, d);
    }
  }
  return payload;
}

std::string EncodeDeweySection(const ontology::FlatDeweyPool& pool) {
  std::string payload;
  // The component arena, the spans, and the per-concept prefix array.
  // Ranks and rank LCPs are deterministic functions of the spans and
  // are rebuilt at load (AdoptPrecomputed), halving the section.
  util::AppendU64(payload, pool.num_components());
  const std::uint32_t* components = pool.component_data();
  for (std::uint64_t i = 0; i < pool.num_components(); ++i) {
    util::AppendU32(payload, components[i]);
  }
  util::AppendU64(payload, pool.num_addresses());
  const std::uint32_t num_concepts = pool.num_concepts();
  for (std::uint32_t c = 0; c < num_concepts; ++c) {
    for (const ontology::AddressSpan& span : pool.spans(c)) {
      util::AppendU32(payload, span.offset);
      util::AppendU32(payload, span.length);
    }
  }
  util::AppendU64(payload, static_cast<std::uint64_t>(num_concepts) + 1);
  std::uint32_t first = 0;
  util::AppendU32(payload, 0);
  for (std::uint32_t c = 0; c < num_concepts; ++c) {
    first += static_cast<std::uint32_t>(pool.spans(c).size());
    util::AppendU32(payload, first);
  }
  return payload;
}

std::string EncodeOntologySection(const ontology::OntologySnapshot& onto) {
  std::string payload;
  util::AppendU64(payload, onto.version());
  util::AppendU64(payload, onto.identity_hash());
  util::AppendU64(payload, onto.baseline_hash());
  util::AppendU64(payload, onto.max_addresses());
  const ontology::Ontology& dag = onto.dag();
  util::AppendU32(payload, dag.num_concepts());
  util::AppendU32(payload, dag.root());
  for (ontology::ConceptId c = 0; c < dag.num_concepts(); ++c) {
    const std::string_view name = dag.name(c);
    util::AppendU32(payload, static_cast<std::uint32_t>(name.size()));
    payload += name;
    const auto synonyms = dag.synonyms(c);
    util::AppendU64(payload, synonyms.size());
    for (const std::string& synonym : synonyms) {
      util::AppendU32(payload, static_cast<std::uint32_t>(synonym.size()));
      payload += synonym;
    }
  }
  // Edges parent-major, children in insertion order — the order IS the
  // Dewey ordinal assignment, so the decode rebuild is ordinal-exact.
  for (ontology::ConceptId p = 0; p < dag.num_concepts(); ++p) {
    const auto children = dag.children(p);
    util::AppendU64(payload, children.size());
    for (const ontology::ConceptId child : children) {
      util::AppendU32(payload, child);
    }
  }
  std::uint64_t num_retired = 0;
  const auto retired = onto.retired_flags();
  for (std::size_t c = 0; c < retired.size(); ++c) {
    if (retired[c] != 0) ++num_retired;
  }
  util::AppendU64(payload, num_retired);
  for (std::size_t c = 0; c < retired.size(); ++c) {
    if (retired[c] != 0) {
      util::AppendU32(payload, static_cast<std::uint32_t>(c));
    }
  }
  return payload;
}

/// Decodes ONTO against the boot BASELINE: a lineage check (the stored
/// baseline hash must equal the baseline's identity under the stored
/// address cap — kFailedPrecondition otherwise), then a full DAG
/// rebuild and an identity self-check (kDataLoss on mismatch; the
/// section checksum verified, so a mismatch is a writer/decoder bug,
/// not bit rot). When the decoded DAG differs structurally from the
/// baseline, the image's corpus is re-bound to the evolved DAG.
util::Status DecodeOntologySection(std::string_view payload,
                                   const ontology::Ontology& baseline,
                                   LoadedImage* out) {
  util::ByteParser parser(payload);
  ECDR_RETURN_IF_ERROR(parser.ReadU64(&out->ontology_version));
  ECDR_RETURN_IF_ERROR(parser.ReadU64(&out->ontology_identity_hash));
  ECDR_RETURN_IF_ERROR(parser.ReadU64(&out->ontology_baseline_hash));
  ECDR_RETURN_IF_ERROR(parser.ReadU64(&out->ontology_max_addresses));
  const std::size_t max_addresses =
      static_cast<std::size_t>(out->ontology_max_addresses);
  const std::uint64_t boot_baseline_hash =
      ontology::OntologyIdentityHash(baseline, {}, max_addresses);
  if (boot_baseline_hash != out->ontology_baseline_hash) {
    return util::FailedPreconditionError(
        "image belongs to a foreign ontology lineage (image baseline hash " +
        std::to_string(out->ontology_baseline_hash) +
        ", boot ontology hashes to " + std::to_string(boot_baseline_hash) +
        ")");
  }

  std::uint32_t num_concepts = 0;
  std::uint32_t root = 0;
  ECDR_RETURN_IF_ERROR(parser.ReadU32(&num_concepts));
  ECDR_RETURN_IF_ERROR(parser.ReadU32(&root));
  if (num_concepts < baseline.num_concepts() ||
      num_concepts > parser.remaining()) {
    return util::DataLossError("ontology section concept count " +
                               std::to_string(num_concepts) +
                               " is impossible");
  }
  ontology::OntologyBuilder builder;
  for (std::uint32_t c = 0; c < num_concepts; ++c) {
    std::uint32_t name_size = 0;
    std::string_view name;
    ECDR_RETURN_IF_ERROR(parser.ReadU32(&name_size));
    if (name_size > parser.remaining()) {
      return util::DataLossError("ontology concept name overruns the section");
    }
    ECDR_RETURN_IF_ERROR(parser.ReadBytes(name_size, &name));
    const ontology::ConceptId id = builder.AddConcept(std::string(name));
    std::uint64_t num_synonyms = 0;
    ECDR_RETURN_IF_ERROR(parser.ReadU64(&num_synonyms));
    if (num_synonyms > parser.remaining()) {
      return util::DataLossError("ontology synonym count overruns the section");
    }
    for (std::uint64_t s = 0; s < num_synonyms; ++s) {
      std::uint32_t synonym_size = 0;
      std::string_view synonym;
      ECDR_RETURN_IF_ERROR(parser.ReadU32(&synonym_size));
      if (synonym_size > parser.remaining()) {
        return util::DataLossError("ontology synonym overruns the section");
      }
      ECDR_RETURN_IF_ERROR(parser.ReadBytes(synonym_size, &synonym));
      const util::Status added =
          builder.AddSynonym(id, std::string(synonym));
      if (!added.ok()) {
        return util::DataLossError("ontology synonym rejected: " +
                                   added.message());
      }
    }
  }
  for (std::uint32_t p = 0; p < num_concepts; ++p) {
    std::uint64_t num_children = 0;
    ECDR_RETURN_IF_ERROR(parser.ReadU64(&num_children));
    if (num_children > parser.remaining() / 4) {
      return util::DataLossError("ontology child list overruns the section");
    }
    for (std::uint64_t i = 0; i < num_children; ++i) {
      std::uint32_t child = 0;
      ECDR_RETURN_IF_ERROR(parser.ReadU32(&child));
      const util::Status added = builder.AddEdge(p, child);
      if (!added.ok()) {
        return util::DataLossError("ontology edge rejected: " +
                                   added.message());
      }
    }
  }
  util::StatusOr<ontology::Ontology> built = std::move(builder).Build();
  if (!built.ok()) {
    return util::DataLossError("ontology section does not build: " +
                               built.status().message());
  }
  if (built->root() != root) {
    return util::DataLossError("ontology section root mismatch");
  }

  out->retired.assign(num_concepts, 0);
  std::uint64_t num_retired = 0;
  ECDR_RETURN_IF_ERROR(parser.ReadU64(&num_retired));
  if (num_retired > parser.remaining() / 4) {
    return util::DataLossError("ontology retired list overruns the section");
  }
  for (std::uint64_t i = 0; i < num_retired; ++i) {
    std::uint32_t c = 0;
    ECDR_RETURN_IF_ERROR(parser.ReadU32(&c));
    if (c >= num_concepts) {
      return util::DataLossError("retired concept id out of range");
    }
    out->retired[c] = 1;
  }
  if (!parser.exhausted()) {
    return util::DataLossError("ontology section has trailing bytes");
  }

  const std::uint64_t identity =
      ontology::OntologyIdentityHash(*built, out->retired, max_addresses);
  if (identity != out->ontology_identity_hash) {
    return util::DataLossError(
        "ontology section identity self-check failed (stored " +
        std::to_string(out->ontology_identity_hash) + ", decoded " +
        std::to_string(identity) + ")");
  }
  out->has_ontology = true;
  // Re-bind the image's corpus only when the structure actually moved;
  // at baseline structure (retire-only or no evolution) the caller's
  // ontology reference serves, and `evolved` stays null.
  const std::uint64_t structural =
      ontology::OntologyIdentityHash(*built, {}, max_addresses);
  if (structural != boot_baseline_hash) {
    out->evolved =
        std::make_shared<const ontology::Ontology>(std::move(*built));
    out->corpus = corpus::Corpus(*out->evolved);
  }
  return util::Status::Ok();
}

util::Status DecodeCorpusSection(std::string_view payload,
                                 corpus::Corpus* corpus) {
  util::ByteParser parser(payload);
  std::uint64_t num_segments = 0;
  ECDR_RETURN_IF_ERROR(parser.ReadU64(&num_segments));
  for (std::uint64_t s = 0; s < num_segments; ++s) {
    std::uint32_t base = 0;
    std::uint64_t num_docs = 0;
    ECDR_RETURN_IF_ERROR(parser.ReadU32(&base));
    ECDR_RETURN_IF_ERROR(parser.ReadU64(&num_docs));
    if (num_docs > parser.remaining()) {
      return util::DataLossError("corpus segment claims " +
                                 std::to_string(num_docs) +
                                 " documents beyond the section");
    }
    std::vector<corpus::Document> docs;
    docs.reserve(num_docs);
    for (std::uint64_t d = 0; d < num_docs; ++d) {
      std::uint32_t count = 0;
      ECDR_RETURN_IF_ERROR(parser.ReadU32(&count));
      if (count > parser.remaining() / 4) {
        return util::DataLossError("document concept count " +
                                   std::to_string(count) +
                                   " exceeds the section");
      }
      std::vector<std::uint32_t> concepts(count);
      for (std::uint32_t& c : concepts) {
        ECDR_RETURN_IF_ERROR(parser.ReadU32(&c));
      }
      docs.emplace_back(std::move(concepts));
    }
    const util::Status restored =
        corpus->AppendRestoredSegment(base, std::move(docs));
    if (!restored.ok()) {
      // The section's checksum verified, so these bytes are what the
      // writer produced — a rejection here means the image belongs to
      // a different ontology (or a format bug), not disk corruption.
      // Surface the documented kFailedPrecondition for that case.
      const util::StatusCode code =
          restored.code() == util::StatusCode::kInvalidArgument
              ? util::StatusCode::kFailedPrecondition
              : restored.code();
      return util::Status(code, "corpus section: " + restored.message());
    }
  }
  if (!parser.exhausted()) {
    return util::DataLossError("corpus section has trailing bytes");
  }
  return util::Status::Ok();
}

util::Status DecodeIndexSection(std::string_view payload,
                                const corpus::Corpus& corpus,
                                index::ShardedIndex* index) {
  util::ByteParser parser(payload);
  std::uint64_t num_shards = 0;
  ECDR_RETURN_IF_ERROR(parser.ReadU64(&num_shards));
  if (num_shards != corpus.num_segments()) {
    return util::DataLossError(
        "index section has " + std::to_string(num_shards) +
        " shards for " + std::to_string(corpus.num_segments()) +
        " corpus segments");
  }
  std::vector<std::shared_ptr<const index::InvertedIndex>> shards;
  shards.reserve(num_shards);
  for (std::uint64_t s = 0; s < num_shards; ++s) {
    std::uint32_t first = 0;
    std::uint32_t count = 0;
    std::uint64_t num_concepts = 0;
    ECDR_RETURN_IF_ERROR(parser.ReadU32(&first));
    ECDR_RETURN_IF_ERROR(parser.ReadU32(&count));
    ECDR_RETURN_IF_ERROR(parser.ReadU64(&num_concepts));
    if (first != corpus.segment_base(s) ||
        count != corpus.segment_documents(s).size()) {
      return util::DataLossError("index shard " + std::to_string(s) +
                                 " does not align with its corpus segment");
    }
    if (num_concepts != corpus.ontology().num_concepts()) {
      return util::FailedPreconditionError(
          "index shard covers " + std::to_string(num_concepts) +
          " concepts but the ontology has " +
          std::to_string(corpus.ontology().num_concepts()));
    }
    std::vector<std::vector<corpus::DocId>> postings(num_concepts);
    for (std::uint64_t c = 0; c < num_concepts; ++c) {
      std::uint32_t size = 0;
      ECDR_RETURN_IF_ERROR(parser.ReadU32(&size));
      if (size > parser.remaining() / 4) {
        return util::DataLossError("posting list size " +
                                   std::to_string(size) +
                                   " exceeds the section");
      }
      std::vector<corpus::DocId>& list = postings[c];
      list.resize(size);
      for (corpus::DocId& d : list) {
        ECDR_RETURN_IF_ERROR(parser.ReadU32(&d));
        if (d < first || d >= first + count) {
          return util::DataLossError("posting doc " + std::to_string(d) +
                                     " outside shard range");
        }
      }
    }
    shards.push_back(std::make_shared<index::InvertedIndex>(
        first, count, std::move(postings)));
  }
  if (!parser.exhausted()) {
    return util::DataLossError("index section has trailing bytes");
  }
  *index = index::ShardedIndex(corpus, std::move(shards));
  return util::Status::Ok();
}

util::Status DecodeDeweySection(std::string_view payload, LoadedImage* out) {
  util::ByteParser parser(payload);
  ECDR_RETURN_IF_ERROR(parser.ReadU32Array(&out->dewey_components,
                                           parser.remaining() / 4));
  std::uint64_t num_spans = 0;
  ECDR_RETURN_IF_ERROR(parser.ReadU64(&num_spans));
  if (num_spans > parser.remaining() / 8) {
    return util::DataLossError("dewey span count exceeds the section");
  }
  out->dewey_spans.resize(num_spans);
  for (ontology::AddressSpan& span : out->dewey_spans) {
    ECDR_RETURN_IF_ERROR(parser.ReadU32(&span.offset));
    ECDR_RETURN_IF_ERROR(parser.ReadU32(&span.length));
  }
  ECDR_RETURN_IF_ERROR(parser.ReadU32Array(&out->dewey_concept_first,
                                           parser.remaining() / 4 + 1));
  if (!parser.exhausted()) {
    return util::DataLossError("dewey section has trailing bytes");
  }
  out->has_dewey = true;
  return util::Status::Ok();
}

}  // namespace

std::string ImageFileName(std::uint64_t generation) {
  std::string digits = std::to_string(generation);
  return "image-" + std::string(20 - digits.size(), '0') + digits + ".ecdr";
}

std::optional<std::uint64_t> ParseImageFileName(const std::string& name) {
  constexpr std::string_view kPrefix = "image-";
  constexpr std::string_view kSuffix = ".ecdr";
  if (name.size() != kPrefix.size() + 20 + kSuffix.size()) return std::nullopt;
  if (name.compare(0, kPrefix.size(), kPrefix) != 0) return std::nullopt;
  if (name.compare(name.size() - kSuffix.size(), kSuffix.size(), kSuffix) !=
      0) {
    return std::nullopt;
  }
  std::uint64_t generation = 0;
  for (std::size_t i = kPrefix.size(); i < kPrefix.size() + 20; ++i) {
    if (name[i] < '0' || name[i] > '9') return std::nullopt;
    generation = generation * 10 + static_cast<std::uint64_t>(name[i] - '0');
  }
  return generation;
}

util::StatusOr<std::string> WriteImage(Env& env, const std::string& dir,
                                       const ImageMeta& meta,
                                       const corpus::Corpus& corpus,
                                       const index::ShardedIndex& index,
                                       const ontology::FlatDeweyPool* dewey,
                                       const ontology::OntologySnapshot* onto) {
  const std::string final_name = ImageFileName(meta.generation);
  const std::string tmp_path = dir + "/" + final_name + ".tmp";
  const std::string final_path = dir + "/" + final_name;

  auto opened = env.NewWritableFile(tmp_path, /*truncate=*/true);
  ECDR_RETURN_IF_ERROR(opened.status());
  WritableFile& file = **opened;

  auto abandon = [&env, &tmp_path](util::Status status) -> util::Status {
    (void)env.RemoveFile(tmp_path);  // Best effort; tmps are also swept
    return status;                   // on the next successful publish.
  };

  std::string header(kHeaderMagic, sizeof(kHeaderMagic));
  util::AppendU32(header, kImageFormatVersion);
  util::AppendU32(header, 0);  // reserved
  util::Status appended = file.Append(header);
  if (!appended.ok()) return abandon(appended);

  std::uint64_t body = 0;
  std::uint32_t section_count = 2;
  if (onto != nullptr) {
    appended = AppendSection(file, kSectionOntology,
                             EncodeOntologySection(*onto), &body);
    if (!appended.ok()) return abandon(appended);
    ++section_count;
  }
  appended = AppendSection(file, kSectionCorpus, EncodeCorpusSection(corpus),
                           &body);
  if (!appended.ok()) return abandon(appended);
  appended = AppendSection(
      file, kSectionIndex,
      EncodeIndexSection(index, corpus.ontology().num_concepts()), &body);
  if (!appended.ok()) return abandon(appended);
  if (dewey != nullptr && dewey->built()) {
    appended =
        AppendSection(file, kSectionDewey, EncodeDeweySection(*dewey), &body);
    if (!appended.ok()) return abandon(appended);
    ++section_count;
  }

  // Two-phase commit, phase one: every payload byte durable...
  util::Status synced = file.Sync();
  if (!synced.ok()) return abandon(synced);

  // ...phase two: the footer — the only thing that makes the file an
  // image — lands strictly after.
  std::string footer;
  util::AppendU64(footer, kFooterMagic);
  util::AppendU32(footer, kImageFormatVersion);
  util::AppendU32(footer, section_count);
  util::AppendU64(footer, meta.generation);
  util::AppendU64(footer, meta.last_lsn);
  util::AppendU64(footer, kHeaderSize + body);
  util::AppendU32(footer, util::MaskCrc32c(util::Crc32c(footer)));
  appended = file.Append(footer);
  if (!appended.ok()) return abandon(appended);
  synced = file.Sync();
  if (!synced.ok()) return abandon(synced);
  const util::Status closed = (*opened)->Close();
  if (!closed.ok()) return abandon(closed);

  const util::Status renamed = env.RenameFile(tmp_path, final_path);
  if (!renamed.ok()) return abandon(renamed);
  ECDR_RETURN_IF_ERROR(env.SyncDir(dir));
  return final_path;
}

util::StatusOr<LoadedImage> LoadImage(Env& env, const std::string& path,
                                      const ontology::Ontology& ontology) {
  auto read = env.ReadFile(path);
  ECDR_RETURN_IF_ERROR(read.status());
  const std::string_view data = (*read)->data();

  if (data.size() < kHeaderSize + kFooterSize) {
    return util::DataLossError(path + ": too small to hold a commit footer (" +
                               std::to_string(data.size()) + " bytes)");
  }
  if (std::memcmp(data.data(), kHeaderMagic, sizeof(kHeaderMagic)) != 0) {
    return util::DataLossError(path + ": bad header magic");
  }

  // The footer first: it was written last, so its validity certifies
  // the whole two-phase commit completed.
  util::ByteParser footer(data.substr(data.size() - kFooterSize));
  std::uint64_t footer_magic = 0;
  std::uint32_t version = 0;
  std::uint32_t section_count = 0;
  ImageMeta meta;
  std::uint64_t body_end = 0;
  std::uint32_t footer_crc = 0;
  (void)footer.ReadU64(&footer_magic);
  (void)footer.ReadU32(&version);
  (void)footer.ReadU32(&section_count);
  (void)footer.ReadU64(&meta.generation);
  (void)footer.ReadU64(&meta.last_lsn);
  (void)footer.ReadU64(&body_end);
  (void)footer.ReadU32(&footer_crc);
  if (footer_magic != kFooterMagic) {
    return util::DataLossError(
        path + ": commit footer missing (torn image write)");
  }
  if (util::UnmaskCrc32c(footer_crc) !=
      util::Crc32c(data.substr(data.size() - kFooterSize,
                               kFooterSize - 4))) {
    return util::DataLossError(path + ": commit footer checksum mismatch");
  }
  if (version != kImageFormatVersion) {
    return util::DataLossError(path + ": unsupported image format version " +
                               std::to_string(version));
  }
  if (body_end != data.size() - kFooterSize) {
    return util::DataLossError(path + ": footer body size disagrees with "
                               "the file (torn or spliced image)");
  }

  // Walk and checksum the sections.
  std::vector<RawSection> sections;
  std::size_t pos = kHeaderSize;
  while (pos < body_end) {
    if (body_end - pos < 16) {
      return util::DataLossError(path + ": truncated section header");
    }
    util::ByteParser section_header(data.substr(pos, 16));
    RawSection section;
    std::uint32_t flags = 0;
    std::uint64_t size = 0;
    (void)section_header.ReadU32(&section.fourcc);
    (void)section_header.ReadU32(&flags);
    (void)section_header.ReadU64(&size);
    if (size > body_end - pos - 16 - 4) {
      return util::DataLossError(path + ": section " +
                                 FourccName(section.fourcc) +
                                 " overruns the image body");
    }
    section.payload = data.substr(pos + 16, size);
    util::ByteParser crc_parser(data.substr(pos + 16 + size, 4));
    std::uint32_t masked_crc = 0;
    (void)crc_parser.ReadU32(&masked_crc);
    if (util::UnmaskCrc32c(masked_crc) != util::Crc32c(section.payload)) {
      return util::DataLossError(path + ": section " +
                                 FourccName(section.fourcc) +
                                 " checksum mismatch");
    }
    sections.push_back(section);
    pos += 16 + size + 4;
  }
  if (sections.size() != section_count) {
    return util::DataLossError(
        path + ": footer promises " + std::to_string(section_count) +
        " sections, body holds " + std::to_string(sections.size()));
  }

  // Decode in dependency order: corpus, then the index over it, then
  // the (optional) dewey pool. Unknown fourccs are skipped — their
  // checksums verified, their meaning reserved for newer writers.
  auto find = [&sections](std::uint32_t fourcc) -> const RawSection* {
    for (const RawSection& s : sections) {
      if (s.fourcc == fourcc) return &s;
    }
    return nullptr;
  };
  const RawSection* corpus_section = find(kSectionCorpus);
  if (corpus_section == nullptr) {
    return util::DataLossError(path + ": no corpus section");
  }
  LoadedImage image(ontology);
  image.meta = meta;
  // ONTO first (regardless of file position): it may re-bind the corpus
  // to the image's evolved DAG before any document decodes against it.
  if (const RawSection* onto_section = find(kSectionOntology)) {
    const util::Status decoded =
        DecodeOntologySection(onto_section->payload, ontology, &image);
    if (!decoded.ok()) {
      return util::Status(decoded.code(), path + ": " + decoded.message());
    }
  }
  ECDR_RETURN_IF_ERROR(
      DecodeCorpusSection(corpus_section->payload, &image.corpus));
  const RawSection* index_section = find(kSectionIndex);
  if (index_section == nullptr) {
    return util::DataLossError(path + ": no index section");
  }
  ECDR_RETURN_IF_ERROR(
      DecodeIndexSection(index_section->payload, image.corpus, &image.index));
  if (const RawSection* dewey_section = find(kSectionDewey)) {
    ECDR_RETURN_IF_ERROR(DecodeDeweySection(dewey_section->payload, &image));
  }
  return image;
}

}  // namespace ecdr::storage
