// Offline distance postings for the Threshold Algorithm baseline.
//
// The baseline the paper discusses (Sections 4.1, 5.1) precomputes
// Ddc(d, c) for every document and every concept — O(|D| * |C|) space —
// and keeps a per-concept postings list sorted by distance so TA can
// consume it by sorted access. The paper argues this is impractical at
// UMLS scale and useless for SDS; we build it anyway (at benchmark
// scale) so the TA-vs-kNDS tradeoff in bench_ablation_ta is measured,
// not asserted — and so it can referee the compressed BlockPostings
// (index/block_postings.h), which is the structure that actually
// scales.
//
// Storage is two flat arenas, not per-concept vectors:
//
//  * by_doc_flat_: |D| x |C| doc-major distances (4 bytes each). The
//    postings are dense — EVERY document has a distance to every
//    concept (tombstoned docs get kInfiniteDistance) — so random
//    access is pure index arithmetic, flat[doc * |C| + c], O(1) with
//    no binary search; and a TA aggregate's accesses for one doc
//    across query concepts land in one row.
//  * by_distance_: |C| x |D| concept-major (doc, distance) entries
//    sorted ascending by (distance, doc) — TA's sorted access — with
//    implicit CSR offsets (every list has exactly |D| entries).

#ifndef ECDR_INDEX_PRECOMPUTED_POSTINGS_H_
#define ECDR_INDEX_PRECOMPUTED_POSTINGS_H_

#include <cstdint>
#include <span>
#include <vector>

#include "corpus/corpus.h"
#include "ontology/distance_oracle.h"
#include "util/thread_pool.h"

namespace ecdr::index {

class PrecomputedPostings {
 public:
  struct Entry {
    corpus::DocId doc;
    std::uint32_t distance;
  };

  /// Builds the full |D| x |C| distance table: one multi-source
  /// valid-path BFS per document. This is the expensive offline step the
  /// paper's approach avoids; build_seconds() reports its cost. A
  /// non-null `pool` parallelizes the build across documents (the BFS
  /// rows are independent) and then across concepts (the sorts); the
  /// result is byte-identical to the serial build at any lane count.
  explicit PrecomputedPostings(const corpus::Corpus& corpus,
                               util::ThreadPool* pool = nullptr);

  /// Postings of `c` sorted by ascending distance (ties by doc id) —
  /// TA's sorted access.
  std::span<const Entry> SortedPostings(ontology::ConceptId c) const {
    ECDR_DCHECK_LT(c, num_concepts_);
    return std::span<const Entry>(
        by_distance_.data() + static_cast<std::size_t>(c) * num_documents_,
        num_documents_);
  }

  /// Ddc(doc, c) — TA's random access. O(1) arithmetic into the flat
  /// doc-major arena.
  std::uint32_t Distance(ontology::ConceptId c, corpus::DocId doc) const {
    ECDR_DCHECK_LT(c, num_concepts_);
    ECDR_DCHECK_LT(doc, num_documents_);
    return by_doc_flat_[static_cast<std::size_t>(doc) * num_concepts_ + c];
  }

  double build_seconds() const { return build_seconds_; }

  /// Footprint split by structure.
  std::uint64_t by_distance_bytes() const {
    return by_distance_.size() * sizeof(Entry);
  }
  std::uint64_t by_doc_bytes() const {
    return by_doc_flat_.size() * sizeof(std::uint32_t);
  }
  std::uint64_t memory_bytes() const {
    return by_distance_bytes() + by_doc_bytes();
  }

 private:
  std::uint32_t num_concepts_ = 0;
  std::uint32_t num_documents_ = 0;
  std::vector<Entry> by_distance_;          // concept-major, CSR stride |D|
  std::vector<std::uint32_t> by_doc_flat_;  // doc-major, stride |C|
  double build_seconds_ = 0.0;
};

}  // namespace ecdr::index

#endif  // ECDR_INDEX_PRECOMPUTED_POSTINGS_H_
