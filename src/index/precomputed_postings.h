// Offline distance postings for the Threshold Algorithm baseline.
//
// The baseline the paper discusses (Sections 4.1, 5.1) precomputes
// Ddc(d, c) for every document and every concept — O(|D| * |C|) space —
// and keeps a per-concept postings list sorted by distance so TA can
// consume it by sorted access. The paper argues this is impractical at
// UMLS scale and useless for SDS; we build it anyway (at benchmark
// scale) so the TA-vs-kNDS tradeoff in bench_ablation_ta is measured,
// not asserted.

#ifndef ECDR_INDEX_PRECOMPUTED_POSTINGS_H_
#define ECDR_INDEX_PRECOMPUTED_POSTINGS_H_

#include <cstdint>
#include <span>
#include <vector>

#include "corpus/corpus.h"
#include "ontology/distance_oracle.h"

namespace ecdr::index {

class PrecomputedPostings {
 public:
  struct Entry {
    corpus::DocId doc;
    std::uint32_t distance;
  };

  /// Builds the full |D| x |C| distance table: one multi-source
  /// valid-path BFS per document. This is the expensive offline step the
  /// paper's approach avoids; build_seconds() reports its cost.
  explicit PrecomputedPostings(const corpus::Corpus& corpus);

  /// Postings of `c` sorted by ascending distance (ties by doc id) —
  /// TA's sorted access.
  std::span<const Entry> SortedPostings(ontology::ConceptId c) const {
    ECDR_DCHECK_LT(c, by_distance_.size());
    return by_distance_[c];
  }

  /// Ddc(doc, c) — TA's random access. O(log |D|).
  std::uint32_t Distance(ontology::ConceptId c, corpus::DocId doc) const;

  double build_seconds() const { return build_seconds_; }
  std::uint64_t memory_bytes() const { return memory_bytes_; }

 private:
  // by_distance_: TA sorted access; by_doc_: random access (sorted by
  // doc id, binary-searched).
  std::vector<std::vector<Entry>> by_distance_;
  std::vector<std::vector<Entry>> by_doc_;
  double build_seconds_ = 0.0;
  std::uint64_t memory_bytes_ = 0;
};

}  // namespace ecdr::index

#endif  // ECDR_INDEX_PRECOMPUTED_POSTINGS_H_
