#include "index/inverted_index.h"

namespace ecdr::index {

InvertedIndex::InvertedIndex(const corpus::Corpus& corpus)
    : postings_(corpus.ontology().num_concepts()) {
  for (corpus::DocId d = 0; d < corpus.num_documents(); ++d) {
    AddDocument(d, corpus.document(d));
  }
}

void InvertedIndex::AddDocument(corpus::DocId id,
                                const corpus::Document& doc) {
  ECDR_CHECK_EQ(id, num_documents_);
  for (ontology::ConceptId c : doc.concepts()) {
    ECDR_CHECK_LT(c, postings_.size());
    postings_[c].push_back(id);
  }
  ++num_documents_;
}

}  // namespace ecdr::index
