#include "index/inverted_index.h"

namespace ecdr::index {

InvertedIndex::InvertedIndex(const corpus::Corpus& corpus,
                             corpus::DocId first, std::uint32_t count)
    : postings_(corpus.ontology().num_concepts()), first_doc_(first) {
  ECDR_CHECK_LE(static_cast<std::uint64_t>(first) + count,
                corpus.num_documents());
  for (corpus::DocId d = first; d < first + count; ++d) {
    AddDocument(d, corpus.document(d));
  }
}

void InvertedIndex::AddDocument(corpus::DocId id,
                                const corpus::Document& doc) {
  ECDR_CHECK_EQ(id, first_doc_ + num_documents_);
  for (ontology::ConceptId c : doc.concepts()) {
    ECDR_CHECK_LT(c, postings_.size());
    postings_[c].push_back(id);
  }
  ++num_documents_;
}

}  // namespace ecdr::index
