// ShardedIndex — a copy-on-write inverted index over corpus segments —
// and IndexView, the uniform per-shard postings interface the rankers
// consume.
//
// The index is split into one shard per corpus segment (contiguous
// document id ranges; see corpus/corpus.h). Shards are immutable and
// reference-counted: rebuilding the index after a write batch shares
// every shard whose id range did not change and constructs fresh shards
// only for segments that grew or are new. With appends landing in the
// corpus tail segment, a publish therefore clones exactly one shard
// (plus any fresh rollover shard) no matter how large the collection is
// — the copy-on-write half of the snapshot publish path (DESIGN.md,
// "Snapshot lifecycle").
//
// Because shard s covers ids [base_s, base_s + size_s) and shards are
// ordered by base, iterating Postings(0, c), Postings(1, c), ... yields
// exactly the increasing-id posting order of a single whole-corpus
// InvertedIndex. Candidate generation that fans out per-shard and
// merges with the id-aware (distance, id) tie-break is therefore
// bit-identical to the unsharded engine at any shard count.
//
// IndexView adapts both forms — a plain InvertedIndex (one shard) and a
// ShardedIndex — behind the same two calls, so core::Knds and friends
// take either without caring which. It is a non-owning view: the caller
// keeps the underlying index alive (core::EngineSnapshot does, by
// bundling index and view into one refcounted generation).

#ifndef ECDR_INDEX_SHARDED_INDEX_H_
#define ECDR_INDEX_SHARDED_INDEX_H_

#include <memory>
#include <span>
#include <vector>

#include "corpus/corpus.h"
#include "index/inverted_index.h"
#include "ontology/types.h"

namespace ecdr::index {

class ShardedIndex {
 public:
  /// An empty index (no shards, no documents).
  ShardedIndex() = default;

  /// Builds one shard per segment of `corpus`. When `previous` is an
  /// index built over an earlier copy-on-write generation of the same
  /// corpus, shards whose backing segment is untouched — same
  /// [base, size) range AND same Corpus::segment_identity — are shared
  /// with it instead of rebuilt. The identity check is what makes
  /// deletes and updates safe: an in-place edit clones the shared
  /// segment (new identity) without changing its range, so a
  /// range-keyed reuse would resurrect the pre-edit postings.
  explicit ShardedIndex(const corpus::Corpus& corpus,
                        const ShardedIndex* previous = nullptr);

  /// Adopts shards recovered from a snapshot image. Shards must align
  /// one-to-one with `corpus`'s segments (checked); identities are
  /// recorded from `corpus` so the next incremental build reuses them.
  ShardedIndex(const corpus::Corpus& corpus,
               std::vector<std::shared_ptr<const InvertedIndex>> shards);

  // Copies share all shards (cheap); the type is immutable after
  // construction, so shared shards are safe from any thread.
  ShardedIndex(const ShardedIndex&) = default;
  ShardedIndex& operator=(const ShardedIndex&) = default;
  ShardedIndex(ShardedIndex&&) = default;
  ShardedIndex& operator=(ShardedIndex&&) = default;

  std::size_t num_shards() const { return shards_.size(); }

  /// Documents of shard `s` containing `c`, in increasing (global) id
  /// order. Concatenating over s = 0..num_shards()-1 gives the full
  /// posting list in increasing id order.
  std::span<const corpus::DocId> Postings(std::size_t s,
                                          ontology::ConceptId c) const {
    ECDR_DCHECK_LT(s, shards_.size());
    return shards_[s]->Postings(c);
  }

  /// Total number of documents containing `c`, across shards.
  std::size_t PostingsSize(ontology::ConceptId c) const {
    std::size_t size = 0;
    for (const auto& shard : shards_) size += shard->PostingsSize(c);
    return size;
  }

  const InvertedIndex& shard(std::size_t s) const {
    ECDR_DCHECK_LT(s, shards_.size());
    return *shards_[s];
  }

  std::uint32_t num_indexed_documents() const { return num_documents_; }

  /// Shards shared with `previous` at construction — the copy-on-write
  /// savings of the last rebuild (observability; the snapshot tests
  /// assert a tail-append publish reuses all but the tail shard).
  std::size_t shards_reused() const { return shards_reused_; }

 private:
  std::vector<std::shared_ptr<const InvertedIndex>> shards_;
  /// segment_identity of the segment each shard was built over,
  /// parallel to shards_ — the reuse key for the next publish.
  std::vector<const void*> identities_;
  std::uint32_t num_documents_ = 0;
  std::size_t shards_reused_ = 0;
};

/// Uniform per-shard view over either index form. Non-owning.
class IndexView {
 public:
  /// A whole-corpus InvertedIndex, seen as a single shard.
  IndexView(const InvertedIndex& index) : single_(&index) {}

  IndexView(const ShardedIndex& index) : sharded_(&index) {}

  std::size_t num_shards() const {
    return single_ != nullptr ? 1 : sharded_->num_shards();
  }

  std::span<const corpus::DocId> Postings(std::size_t s,
                                          ontology::ConceptId c) const {
    if (single_ != nullptr) {
      ECDR_DCHECK_EQ(s, 0u);
      return single_->Postings(c);
    }
    return sharded_->Postings(s, c);
  }

  std::size_t PostingsSize(ontology::ConceptId c) const {
    return single_ != nullptr ? single_->PostingsSize(c)
                              : sharded_->PostingsSize(c);
  }

  std::uint32_t num_indexed_documents() const {
    return single_ != nullptr ? single_->num_indexed_documents()
                              : sharded_->num_indexed_documents();
  }

 private:
  const InvertedIndex* single_ = nullptr;
  const ShardedIndex* sharded_ = nullptr;
};

}  // namespace ecdr::index

#endif  // ECDR_INDEX_SHARDED_INDEX_H_
