// Forward index: document -> concepts.
//
// The paper's architecture keeps both an inverted and a forward index
// (Section 5.3, "Data Structures"); kNDS uses the forward side when it
// hands a candidate document to DRC and when it needs |Cd| for the
// SDS lower bound. Documents are stored in the corpus; this view adds
// the index-shaped interface and membership tests.

#ifndef ECDR_INDEX_FORWARD_INDEX_H_
#define ECDR_INDEX_FORWARD_INDEX_H_

#include <span>

#include "corpus/corpus.h"

namespace ecdr::index {

class ForwardIndex {
 public:
  explicit ForwardIndex(const corpus::Corpus& corpus) : corpus_(&corpus) {}

  std::span<const ontology::ConceptId> Concepts(corpus::DocId d) const {
    return corpus_->document(d).concepts();
  }

  std::size_t NumConcepts(corpus::DocId d) const {
    return corpus_->document(d).size();
  }

  bool Contains(corpus::DocId d, ontology::ConceptId c) const {
    return corpus_->document(d).ContainsConcept(c);
  }

  std::uint32_t num_documents() const { return corpus_->num_documents(); }

 private:
  const corpus::Corpus* corpus_;
};

}  // namespace ecdr::index

#endif  // ECDR_INDEX_FORWARD_INDEX_H_
