// Inverted index: concept -> documents containing it.
//
// kNDS consults this index for every concept the breadth-first expansion
// visits (paper Section 5.3). It supports incremental document insertion
// so a corpus can grow without any offline rebuild — the paper's
// advantage over TA-style precomputed distance postings.
//
// An index can also cover just a contiguous id range of the corpus (the
// ranged constructor) — that is the shard form index::ShardedIndex
// composes into a copy-on-write index over the whole collection.
// Posting lists always store global document ids.

#ifndef ECDR_INDEX_INVERTED_INDEX_H_
#define ECDR_INDEX_INVERTED_INDEX_H_

#include <span>
#include <vector>

#include "corpus/corpus.h"
#include "corpus/document.h"
#include "ontology/types.h"

namespace ecdr::index {

class InvertedIndex {
 public:
  /// Builds over all documents currently in `corpus`.
  explicit InvertedIndex(const corpus::Corpus& corpus)
      : InvertedIndex(corpus, 0, corpus.num_documents()) {}

  /// Builds over the id range [first, first + count) only — the shard
  /// constructor. `first + count` must not exceed the corpus size.
  InvertedIndex(const corpus::Corpus& corpus, corpus::DocId first,
                std::uint32_t count);

  /// Adopts posting lists recovered from a snapshot image instead of
  /// rebuilding them from the corpus. `postings[c]` lists the documents
  /// of [first, first + count) containing concept `c`, in increasing id
  /// order; the vector spans every ontology concept.
  InvertedIndex(corpus::DocId first, std::uint32_t count,
                std::vector<std::vector<corpus::DocId>> postings)
      : postings_(std::move(postings)),
        first_doc_(first),
        num_documents_(count) {}

  /// Document ids containing `c`, in increasing id order. Concepts
  /// beyond the ontology size at construction have an empty list: after
  /// an ontology evolution publishes new concepts, indexes built over
  /// the old ontology stay exact without a rebuild — no stored document
  /// can reference a concept younger than the index.
  std::span<const corpus::DocId> Postings(ontology::ConceptId c) const {
    if (c >= postings_.size()) return {};
    return postings_[c];
  }

  /// Number of documents containing `c` (the collection frequency).
  std::size_t PostingsSize(ontology::ConceptId c) const {
    return Postings(c).size();
  }

  /// Registers a document appended to the corpus after construction.
  /// `id` must be the value Corpus::AddDocument returned and ids must be
  /// registered in increasing order (for a ranged index, consecutively
  /// from first_doc()).
  void AddDocument(corpus::DocId id, const corpus::Document& doc);

  /// First document id this index covers (0 for a whole-corpus index).
  corpus::DocId first_doc() const { return first_doc_; }

  std::uint32_t num_indexed_documents() const { return num_documents_; }

  /// Concepts this index has posting slots for (the ontology size at
  /// construction) — the bound image serialization iterates to.
  std::size_t num_concepts() const { return postings_.size(); }

 private:
  std::vector<std::vector<corpus::DocId>> postings_;
  corpus::DocId first_doc_ = 0;
  std::uint32_t num_documents_ = 0;
};

}  // namespace ecdr::index

#endif  // ECDR_INDEX_INVERTED_INDEX_H_
