// Compressed block-max distance postings for the TA baseline at scale.
//
// PrecomputedPostings materializes the full |D| x |C| distance table
// twice (distance-sorted and doc-sorted), which is exactly what rules
// the precomputed-Ddc baseline out at UMLS x millions-of-docs scale
// (paper Sections 4.1 / 5.1; ROADMAP "Compressed, block-max distance
// postings"). BlockPostings stores ONE doc-ordered copy per concept,
// cut into fixed-size blocks of delta-encoded doc ids with bit-packed
// distance payloads, plus per-block metadata {min_distance, max_doc,
// offset} — the distance-side analog of PISA's block-max posting
// cursors (SNIPPETS.md), with min-distance taking the role score upper
// bounds play in text ranking (smaller distance == better).
//
// Both TA access patterns come off this single copy:
//   * sorted access: blocks are walked in ascending min_distance order
//     (a per-concept block permutation, built once), decoding one block
//     at a time into reusable scratch;
//   * random access: Seek(doc) binary-searches the block metadata by
//     max_doc; a dense block (a gap-free doc run — the common case for
//     distance postings, where EVERY doc has a distance to every
//     concept) answers with one O(1) bit-field unpack and no decode at
//     all, a sparse block decodes once into scratch and binary-searches
//     the decoded entries.
//
// Quantization / tie-break contract (what makes block-max TA
// bit-identical to the dense referee): the payload stores each
// distance as an exact residual `distance - block_min_distance`,
// bit-packed at the block's minimal width. The bucket mapping is the
// identity — monotone by construction — and the residual reconstructs
// the distance exactly, so every aggregate the block-mode TaRanker
// computes is the same integer the dense table yields, and the shared
// (distance, doc id) total order breaks ties identically. No payload
// information is lost; compression comes from layout, not rounding.
//
// Block payload layout (per block; count / first_doc / min_distance
// live in the metadata, not the payload):
//
//   flags:u8         bit0: dense doc run (docs are first_doc..max_doc)
//   width:u8         residual bit width, 0..32
//   residuals        ceil(count * width / 8) bytes, little-endian
//                    bit-packed (distance[i] - min_distance)
//   deltas           only when !dense: count-1 varints of
//                    doc[i] - doc[i-1] - 1
//
// Skipping invariant: blocks are consumed per concept in ascending
// (min_distance, block index) order, each decoded block is emitted in
// ascending (distance, doc) order, and every emitted document is
// aggregated, so a document not yet seen by any list has, in every
// list i, distance >= frontier_min_distance(i) — the min of the next
// un-emitted entry's distance and the next block's min. The sum of the
// frontiers is therefore a lower bound on any unseen document's
// aggregate — once it strictly exceeds the current k-th best, every
// remaining (un-decoded) block is skipped wholesale. TaRanker::Stats
// reports the decoded/skipped split.

#ifndef ECDR_INDEX_BLOCK_POSTINGS_H_
#define ECDR_INDEX_BLOCK_POSTINGS_H_

#include <cstdint>
#include <span>
#include <vector>

#include "corpus/corpus.h"
#include "ontology/distance_oracle.h"
#include "util/thread_pool.h"

namespace ecdr::index {

/// One decoded posting: Ddc(doc, concept), exact.
struct BlockPostingEntry {
  corpus::DocId doc;
  std::uint32_t distance;

  friend bool operator==(const BlockPostingEntry&,
                         const BlockPostingEntry&) = default;
};

/// Per-block metadata, kept uncompressed so Seek() and the skip test
/// never touch the payload bytes of blocks they rule out.
struct BlockMeta {
  std::uint32_t offset = 0;        // payload start in the byte arena
  std::uint32_t length = 0;        // payload bytes
  corpus::DocId first_doc = 0;
  corpus::DocId max_doc = 0;       // last (largest) doc in the block
  std::uint32_t min_distance = 0;  // the block-max bound (min is better)
  std::uint32_t count = 0;         // entries in the block

  bool dense_run() const {
    return max_doc - first_doc + 1 == count;
  }
};

// The block codec, exposed for the round-trip and corrupt-input tests.
// Encode/Decode are exact inverses for any strictly doc-ascending
// entry list of 1..2^16 entries.
namespace blockcodec {

/// Appends the payload for `entries` (non-empty, strictly ascending by
/// doc) to `arena` and fills `meta` (offset from the pre-append arena
/// size).
void EncodeBlock(std::span<const BlockPostingEntry> entries,
                 std::vector<std::uint8_t>* arena, BlockMeta* meta);

/// Decodes a payload described by `meta` from `payload`
/// (= arena.subspan(meta.offset, meta.length)) into `out` (resized to
/// meta.count). Returns false — never crashes, never over-allocates —
/// when the bytes are not a well-formed block: truncated or trailing
/// payload, width > 32, varint overrun, or doc overflow past
/// kInvalidDoc. A decode that returns true always yields exactly
/// meta.count entries with strictly ascending doc ids.
[[nodiscard]] bool DecodeBlock(std::span<const std::uint8_t> payload,
                               const BlockMeta& meta,
                               std::vector<BlockPostingEntry>* out);

/// Random access into a dense-run block: the packed residual of entry
/// `index` (bounds are the caller's problem — DCHECKed).
std::uint32_t UnpackResidual(std::span<const std::uint8_t> payload,
                             std::uint32_t width, std::uint32_t index);

}  // namespace blockcodec

struct BlockPostingsOptions {
  /// Entries per block (the last block of a concept may be shorter).
  /// Smaller blocks skip at finer granularity but pay more metadata;
  /// 128 matches the classic text-ranking block size.
  std::uint32_t block_size = 128;

  /// Offline-build parallelism across documents (one multi-source BFS
  /// per doc). Null builds serially; the result is byte-identical
  /// either way (asserted by tests/block_postings_test.cc).
  util::ThreadPool* pool = nullptr;
};

class BlockPostings {
 public:
  using Entry = BlockPostingEntry;
  using Options = BlockPostingsOptions;

  /// Builds per-concept compressed postings with one valid-path BFS per
  /// document — the same offline sweep PrecomputedPostings runs, minus
  /// the second (distance-sorted) copy. Tombstoned documents (empty
  /// concept sets) get kInfiniteDistance everywhere, exactly like the
  /// dense table, so block-mode TA ranks them identically.
  explicit BlockPostings(const corpus::Corpus& corpus, Options options = {});

  /// Incremental rebuild after a distance-preserving ontology evolution
  /// (every add_edge child batch-new — the engine gates on
  /// EvolutionStats::readdressed_existing == 0). Pre-existing concepts'
  /// distance lists are provably unchanged, so their payload bytes are
  /// spliced from `base` verbatim; each batch-new concept's list is
  /// derived block by block from the parent recurrence
  ///   Ddc(d, c_new) = 1 + min over parents p of Ddc(d, p)
  /// (a valid up-then-down path can only enter a batch-new concept by
  /// descending a parent edge: new concepts have no pre-existing
  /// descendants, so no ascending entry exists), processed in
  /// topological order over new->new parent edges. Byte-identical to a
  /// cold build over the same documents under `ontology` — asserted by
  /// tests/block_postings_test.cc — at O(new-concepts x docs) cost with
  /// no corpus access and no BFS.
  static BlockPostings BuildEvolved(const BlockPostings& base,
                                    const ontology::Ontology& ontology);

  std::uint32_t num_concepts() const {
    return static_cast<std::uint32_t>(meta_offsets_.size() - 1);
  }
  std::uint32_t num_documents() const { return num_documents_; }
  std::uint32_t block_size() const { return options_.block_size; }

  /// Doc-ordered block metadata of concept `c`.
  std::span<const BlockMeta> blocks(ontology::ConceptId c) const {
    ECDR_DCHECK_LT(c + 1, meta_offsets_.size());
    return std::span<const BlockMeta>(meta_.data() + meta_offsets_[c],
                                      meta_offsets_[c + 1] - meta_offsets_[c]);
  }

  /// Block indices of concept `c` (local, into blocks(c)) sorted by
  /// ascending (min_distance, block index) — the sorted-access order.
  std::span<const std::uint32_t> distance_order(ontology::ConceptId c) const {
    ECDR_DCHECK_LT(c + 1, meta_offsets_.size());
    return std::span<const std::uint32_t>(
        order_.data() + meta_offsets_[c],
        meta_offsets_[c + 1] - meta_offsets_[c]);
  }

  std::span<const std::uint8_t> arena() const { return arena_; }

  std::span<const std::uint8_t> payload(const BlockMeta& meta) const {
    return std::span<const std::uint8_t>(arena_).subspan(meta.offset,
                                                         meta.length);
  }

  /// Random access half of the cursor pair: Seek() only, with one block
  /// of decode scratch. Stateless across Reset() apart from reusable
  /// capacity, so TaRanker hands one Reader per (lane, list) to its
  /// parallel aggregation without locking.
  class Reader {
   public:
    void Reset(const BlockPostings* owner, ontology::ConceptId c) {
      owner_ = owner;
      metas_ = owner->blocks(c);
      cached_block_ = kNoBlock;
    }

    /// Ddc(doc, concept) — TA's random access. O(log blocks) metadata
    /// search plus an O(1) residual unpack (dense-run block, the
    /// steady state) or a one-block decode (sparse block, cached until
    /// the next Seek leaves it). Requires `doc` present (dense corpus
    /// postings always contain every doc).
    std::uint32_t Seek(corpus::DocId doc);

    std::uint64_t decoded_blocks() const { return decoded_blocks_; }

   private:
    static constexpr std::uint32_t kNoBlock = 0xFFFFFFFFu;

    const BlockPostings* owner_ = nullptr;
    std::span<const BlockMeta> metas_;
    std::uint32_t cached_block_ = kNoBlock;
    std::vector<Entry> decoded_;
    std::uint64_t decoded_blocks_ = 0;
  };

  /// Sorted-access cursor: walks the concept's blocks in ascending
  /// min_distance order, decoding one block at a time into reusable
  /// scratch (zero steady-state allocations once the scratch reached
  /// block_size capacity), plus an embedded Reader for random access
  /// on the serial path.
  class Cursor {
   public:
    void Reset(const BlockPostings* owner, ontology::ConceptId c);

    /// Decodes the next block in distance order, re-sorted to
    /// ascending (distance, doc) for emission; `*out` stays valid
    /// until the next NextBlock/Reset. False once every block was
    /// consumed.
    bool NextBlock(std::span<const Entry>* out);

    /// Entry-at-a-time sorted access over the same walk (decodes lazily
    /// block by block, emitting each block's entries in ascending
    /// (distance, doc) order). False at the end of the last block.
    bool Next(Entry* out);

    /// The frontier bound b_i of the skipping invariant: every entry
    /// this walk has not yet surfaced has distance >= the bound. While
    /// Next() is mid-block that is min(next un-emitted entry's
    /// distance, next block's min_distance) — a later block may dip
    /// below the current block's tail; otherwise the next un-consumed
    /// block's min_distance; and kInfiniteDistance once the walk is
    /// exhausted (every doc of this list has been surfaced).
    std::uint32_t frontier_min_distance() const;

    std::uint32_t Seek(corpus::DocId doc) { return reader_.Seek(doc); }

    std::uint64_t decoded_blocks() const {
      return decoded_blocks_ + reader_.decoded_blocks();
    }
    /// Blocks the sorted walk never decoded (skipped wholesale by the
    /// threshold test, or never reached before termination).
    std::uint64_t skipped_blocks() const {
      return order_.size() - next_order_pos_;
    }
    std::uint64_t total_blocks() const { return order_.size(); }

   private:
    const BlockPostings* owner_ = nullptr;
    std::span<const BlockMeta> metas_;
    std::span<const std::uint32_t> order_;
    std::size_t next_order_pos_ = 0;  // next block in distance order
    std::vector<Entry> decoded_;      // current block, distance-sorted
    std::size_t entry_pos_ = 0;       // Next() position within decoded_
    std::uint64_t decoded_blocks_ = 0;
    Reader reader_;
  };

  double build_seconds() const { return build_seconds_; }

  /// Total footprint: payload arena + block metadata + distance-order
  /// permutation (+ CSR offsets).
  std::uint64_t memory_bytes() const {
    return arena_bytes() + metadata_bytes();
  }
  std::uint64_t arena_bytes() const { return arena_.size(); }
  std::uint64_t metadata_bytes() const {
    return meta_.size() * sizeof(BlockMeta) +
           order_.size() * sizeof(std::uint32_t) +
           meta_offsets_.size() * sizeof(std::uint64_t);
  }
  std::uint64_t num_blocks() const { return meta_.size(); }

  /// Postings bytes per document across all concepts — the space-side
  /// headline (compare PrecomputedPostings::memory_bytes() / |D|).
  double bytes_per_doc() const {
    return num_documents_ == 0
               ? 0.0
               : static_cast<double>(memory_bytes()) / num_documents_;
  }

 private:
  BlockPostings() = default;  // BuildEvolved assembles the members itself

  Options options_;
  std::uint32_t num_documents_ = 0;
  std::vector<std::uint8_t> arena_;         // all payloads, concept-major
  std::vector<BlockMeta> meta_;             // CSR by concept
  std::vector<std::uint32_t> order_;        // CSR by concept, same offsets
  std::vector<std::uint64_t> meta_offsets_; // |C|+1 block-index offsets
  double build_seconds_ = 0.0;
};

}  // namespace ecdr::index

#endif  // ECDR_INDEX_BLOCK_POSTINGS_H_
