#include "index/forward_index.h"

// ForwardIndex is header-only today; this TU anchors the target and
// reserves the file for future disk-backed variants.
