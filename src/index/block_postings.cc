#include "index/block_postings.h"

#include <algorithm>
#include <memory>

#include "ontology/types.h"
#include "util/timer.h"

namespace ecdr::index {

namespace blockcodec {

namespace {

// Bounds the decoder's allocation on corrupt metadata; the builder
// never cuts blocks anywhere near this (block_size is ~128).
constexpr std::uint32_t kMaxBlockCount = 1u << 16;

void AppendVarint(std::uint32_t value, std::vector<std::uint8_t>* out) {
  while (value >= 0x80) {
    out->push_back(static_cast<std::uint8_t>(value) | 0x80);
    value >>= 7;
  }
  out->push_back(static_cast<std::uint8_t>(value));
}

/// LEB128 decode bounded to 32 bits. Returns false on overrun or
/// overflow; advances *pos past the consumed bytes on success.
bool ReadVarint(std::span<const std::uint8_t> bytes, std::size_t* pos,
                std::uint32_t* value) {
  std::uint32_t result = 0;
  for (std::uint32_t shift = 0; shift < 35; shift += 7) {
    if (*pos >= bytes.size()) return false;
    const std::uint8_t byte = bytes[(*pos)++];
    const std::uint32_t payload = byte & 0x7F;
    if (shift == 28 && payload > 0x0F) return false;  // > 32 bits
    result |= payload << shift;
    if ((byte & 0x80) == 0) {
      *value = result;
      return true;
    }
  }
  return false;
}

std::uint32_t BitWidth(std::uint32_t value) {
  std::uint32_t width = 0;
  while (value != 0) {
    ++width;
    value >>= 1;
  }
  return width;
}

constexpr std::uint8_t kFlagDenseRun = 0x01;

}  // namespace

void EncodeBlock(std::span<const BlockPostingEntry> entries,
                 std::vector<std::uint8_t>* arena, BlockMeta* meta) {
  ECDR_CHECK(!entries.empty());
  ECDR_CHECK_LE(entries.size(), kMaxBlockCount);
  meta->offset = static_cast<std::uint32_t>(arena->size());
  meta->first_doc = entries.front().doc;
  meta->max_doc = entries.back().doc;
  meta->count = static_cast<std::uint32_t>(entries.size());

  std::uint32_t min_distance = entries.front().distance;
  std::uint32_t max_distance = entries.front().distance;
  for (std::size_t i = 1; i < entries.size(); ++i) {
    ECDR_DCHECK_LT(entries[i - 1].doc, entries[i].doc);
    min_distance = std::min(min_distance, entries[i].distance);
    max_distance = std::max(max_distance, entries[i].distance);
  }
  meta->min_distance = min_distance;

  const bool dense = meta->dense_run();
  const std::uint32_t width = BitWidth(max_distance - min_distance);
  arena->push_back(dense ? kFlagDenseRun : 0);
  arena->push_back(static_cast<std::uint8_t>(width));

  // Residuals, little-endian bit-packed. width <= 32 and < 8 carry
  // bits keep the accumulator under 40 bits.
  std::uint64_t acc = 0;
  std::uint32_t acc_bits = 0;
  for (const BlockPostingEntry& entry : entries) {
    acc |= static_cast<std::uint64_t>(entry.distance - min_distance)
           << acc_bits;
    acc_bits += width;
    while (acc_bits >= 8) {
      arena->push_back(static_cast<std::uint8_t>(acc));
      acc >>= 8;
      acc_bits -= 8;
    }
  }
  if (acc_bits > 0) arena->push_back(static_cast<std::uint8_t>(acc));

  if (!dense) {
    for (std::size_t i = 1; i < entries.size(); ++i) {
      AppendVarint(entries[i].doc - entries[i - 1].doc - 1, arena);
    }
  }
  meta->length = static_cast<std::uint32_t>(arena->size()) - meta->offset;
}

bool DecodeBlock(std::span<const std::uint8_t> payload, const BlockMeta& meta,
                 std::vector<BlockPostingEntry>* out) {
  if (meta.count == 0 || meta.count > kMaxBlockCount) return false;
  if (meta.first_doc > meta.max_doc) return false;
  if (meta.max_doc - meta.first_doc < meta.count - 1) return false;
  if (payload.size() < 2) return false;
  const std::uint8_t flags = payload[0];
  const std::uint32_t width = payload[1];
  if ((flags & ~kFlagDenseRun) != 0 || width > 32) return false;
  const bool dense = (flags & kFlagDenseRun) != 0;
  if (dense != meta.dense_run()) return false;
  const std::uint64_t residual_bits =
      static_cast<std::uint64_t>(meta.count) * width;
  const std::size_t residual_bytes =
      static_cast<std::size_t>((residual_bits + 7) / 8);
  if (payload.size() < 2 + residual_bytes) return false;

  out->resize(meta.count);
  std::uint64_t acc = 0;
  std::uint32_t acc_bits = 0;
  std::size_t pos = 2;
  const std::uint64_t mask =
      width == 32 ? 0xFFFFFFFFull : ((1ull << width) - 1);
  for (std::uint32_t i = 0; i < meta.count; ++i) {
    while (acc_bits < width) {
      acc |= static_cast<std::uint64_t>(payload[pos++]) << acc_bits;
      acc_bits += 8;
    }
    const std::uint64_t residual = acc & mask;
    acc >>= width;
    acc_bits -= width;
    if (residual > 0xFFFFFFFFull - meta.min_distance) return false;
    (*out)[i].distance =
        meta.min_distance + static_cast<std::uint32_t>(residual);
  }
  // The pad bits of the last residual byte must be zero, so a bit flip
  // there never decodes "successfully".
  if (acc != 0) return false;

  if (dense) {
    if (payload.size() != 2 + residual_bytes) return false;  // trailing junk
    for (std::uint32_t i = 0; i < meta.count; ++i) {
      (*out)[i].doc = meta.first_doc + i;
    }
    return true;
  }

  pos = 2 + residual_bytes;
  corpus::DocId doc = meta.first_doc;
  if (doc >= corpus::kInvalidDoc) return false;
  (*out)[0].doc = doc;
  for (std::uint32_t i = 1; i < meta.count; ++i) {
    std::uint32_t delta = 0;
    if (!ReadVarint(payload, &pos, &delta)) return false;
    const std::uint64_t next =
        static_cast<std::uint64_t>(doc) + static_cast<std::uint64_t>(delta) + 1;
    if (next >= corpus::kInvalidDoc) return false;
    doc = static_cast<corpus::DocId>(next);
    (*out)[i].doc = doc;
  }
  if (pos != payload.size()) return false;  // trailing junk
  if (doc != meta.max_doc) return false;    // metadata disagrees
  return true;
}

std::uint32_t UnpackResidual(std::span<const std::uint8_t> payload,
                             std::uint32_t width, std::uint32_t index) {
  if (width == 0) return 0;
  ECDR_DCHECK_LE(width, 32u);
  const std::uint64_t bit_pos = static_cast<std::uint64_t>(index) * width;
  std::size_t byte_pos = 2 + static_cast<std::size_t>(bit_pos >> 3);
  const std::uint32_t shift = static_cast<std::uint32_t>(bit_pos & 7);
  std::uint64_t acc = 0;
  std::uint32_t have = 0;
  while (have < shift + width) {
    ECDR_DCHECK_LT(byte_pos, payload.size());
    acc |= static_cast<std::uint64_t>(payload[byte_pos++]) << have;
    have += 8;
  }
  const std::uint64_t mask =
      width == 32 ? 0xFFFFFFFFull : ((1ull << width) - 1);
  return static_cast<std::uint32_t>((acc >> shift) & mask);
}

}  // namespace blockcodec

// ---------------------------------------------------------------------------
// Reader / Cursor

std::uint32_t BlockPostings::Reader::Seek(corpus::DocId doc) {
  ECDR_DCHECK(owner_ != nullptr);
  const auto it = std::lower_bound(
      metas_.begin(), metas_.end(), doc,
      [](const BlockMeta& meta, corpus::DocId target) {
        return meta.max_doc < target;
      });
  ECDR_CHECK(it != metas_.end() && it->first_doc <= doc);
  if (it->dense_run()) {
    // O(1): no decode, one bit-field read straight off the payload.
    const std::span<const std::uint8_t> payload = owner_->payload(*it);
    return it->min_distance +
           blockcodec::UnpackResidual(payload, payload[1],
                                      doc - it->first_doc);
  }
  const std::uint32_t block =
      static_cast<std::uint32_t>(it - metas_.begin());
  if (cached_block_ != block) {
    ECDR_CHECK(blockcodec::DecodeBlock(owner_->payload(*it), *it, &decoded_));
    cached_block_ = block;
    ++decoded_blocks_;
  }
  const auto entry = std::lower_bound(
      decoded_.begin(), decoded_.end(), doc,
      [](const Entry& e, corpus::DocId target) { return e.doc < target; });
  ECDR_CHECK(entry != decoded_.end() && entry->doc == doc);
  return entry->distance;
}

void BlockPostings::Cursor::Reset(const BlockPostings* owner,
                                  ontology::ConceptId c) {
  owner_ = owner;
  metas_ = owner->blocks(c);
  order_ = owner->distance_order(c);
  next_order_pos_ = 0;
  decoded_.clear();
  entry_pos_ = 0;
  decoded_blocks_ = 0;
  reader_.Reset(owner, c);
}

bool BlockPostings::Cursor::NextBlock(std::span<const Entry>* out) {
  if (next_order_pos_ >= order_.size()) return false;
  const BlockMeta& meta = metas_[order_[next_order_pos_]];
  ECDR_CHECK(blockcodec::DecodeBlock(owner_->payload(meta), meta, &decoded_));
  // Distance-ordered emission: the block's best entries surface first,
  // and frontier_min_distance() can bound the un-emitted remainder by
  // the NEXT entry's distance instead of the whole block's min — a
  // threshold at least as tight as the dense referee's last-seen sum.
  std::sort(decoded_.begin(), decoded_.end(),
            [](const Entry& a, const Entry& b) {
              if (a.distance != b.distance) return a.distance < b.distance;
              return a.doc < b.doc;
            });
  ++decoded_blocks_;
  ++next_order_pos_;
  entry_pos_ = decoded_.size();  // Next() restarts only on a fresh walk
  *out = decoded_;
  return true;
}

bool BlockPostings::Cursor::Next(Entry* out) {
  if (entry_pos_ >= decoded_.size()) {
    std::span<const Entry> block;
    if (!NextBlock(&block)) return false;
    entry_pos_ = 0;
  }
  *out = decoded_[entry_pos_++];
  return true;
}

std::uint32_t BlockPostings::Cursor::frontier_min_distance() const {
  const std::uint32_t next_block_min =
      next_order_pos_ < order_.size()
          ? metas_[order_[next_order_pos_]].min_distance
          : ontology::kInfiniteDistance;
  // Mid-block (Next() walk): decoded_ is distance-sorted, so the
  // un-emitted remainder is bounded by the next entry; entries in
  // later blocks are bounded by the next block's min. A later block
  // may contain distances below the current block's tail, hence the
  // min of the two.
  if (entry_pos_ < decoded_.size()) {
    return std::min(decoded_[entry_pos_].distance, next_block_min);
  }
  return next_block_min;
}

// ---------------------------------------------------------------------------
// Build

BlockPostings::BlockPostings(const corpus::Corpus& corpus, Options options)
    : options_(options) {
  ECDR_CHECK_GE(options_.block_size, 1u);
  ECDR_CHECK_LE(options_.block_size, 1u << 16);
  util::WallTimer timer;
  const ontology::Ontology& ontology = corpus.ontology();
  const std::uint32_t num_concepts = ontology.num_concepts();
  const std::uint32_t num_docs = corpus.num_documents();
  num_documents_ = num_docs;
  const std::uint32_t block = options_.block_size;
  const std::uint32_t num_blocks =
      num_docs == 0 ? 0 : (num_docs + block - 1) / block;

  meta_offsets_.resize(num_concepts + 1);
  for (std::uint32_t c = 0; c <= num_concepts; ++c) {
    meta_offsets_[c] = static_cast<std::uint64_t>(c) * num_blocks;
  }
  meta_.resize(static_cast<std::size_t>(num_concepts) * num_blocks);
  order_.resize(meta_.size());
  if (num_docs == 0) {
    build_seconds_ = timer.ElapsedSeconds();
    return;
  }

  // Chunked build: one chunk of block_size documents at a time. The
  // chunk's BFS rows (block_size x |C| distances) are the only dense
  // temporary — the full |D| x |C| table is never materialized, which
  // is the point of this structure. Each chunk contributes exactly one
  // block to every concept, so block boundaries fall on doc-id
  // multiples of block_size and every block of a (tombstone-free)
  // corpus is a dense run.
  util::ThreadPool* pool = options_.pool;
  const std::size_t lanes = pool != nullptr ? pool->num_threads() + 1 : 1;
  std::vector<std::unique_ptr<ontology::DistanceOracle>> oracles;
  oracles.reserve(lanes);
  for (std::size_t i = 0; i < lanes; ++i) {
    oracles.push_back(std::make_unique<ontology::DistanceOracle>(ontology));
  }
  std::vector<std::vector<std::uint32_t>> rows(block);
  std::vector<std::vector<std::uint8_t>> payloads(num_concepts);
  std::vector<BlockMeta> chunk_meta(num_concepts);
  std::vector<Entry> entries_scratch;  // serial encode path
  for (std::uint32_t chunk = 0; chunk < num_blocks; ++chunk) {
    const std::uint32_t begin = chunk * block;
    const std::uint32_t end = std::min(begin + block, num_docs);
    const std::uint32_t chunk_docs = end - begin;

    const auto bfs_one = [&](std::size_t j, std::size_t lane) {
      oracles[lane]->DistancesFromSet(
          corpus.document(begin + static_cast<std::uint32_t>(j)).concepts(),
          &rows[j]);
    };
    const auto encode_one = [&](std::size_t c, std::vector<Entry>* scratch) {
      scratch->resize(chunk_docs);
      for (std::uint32_t j = 0; j < chunk_docs; ++j) {
        (*scratch)[j] = Entry{begin + j, rows[j][c]};
      }
      payloads[c].clear();
      blockcodec::EncodeBlock(*scratch, &payloads[c], &chunk_meta[c]);
    };
    if (pool != nullptr) {
      pool->ParallelFor(chunk_docs, bfs_one);
      // Per-lane entry scratch keyed off the encode lane.
      std::vector<std::vector<Entry>> lane_entries(lanes);
      pool->ParallelFor(num_concepts, [&](std::size_t c, std::size_t lane) {
        encode_one(c, &lane_entries[lane]);
      });
    } else {
      for (std::uint32_t j = 0; j < chunk_docs; ++j) bfs_one(j, 0);
      for (std::uint32_t c = 0; c < num_concepts; ++c) {
        encode_one(c, &entries_scratch);
      }
    }
    // Serial concatenation keeps the arena byte-identical at any lane
    // count: payload bytes only depend on (chunk, concept).
    for (std::uint32_t c = 0; c < num_concepts; ++c) {
      BlockMeta meta = chunk_meta[c];
      const std::uint64_t offset = arena_.size();
      ECDR_CHECK_LE(offset + payloads[c].size(), 0xFFFFFFFFull);
      meta.offset = static_cast<std::uint32_t>(offset);
      arena_.insert(arena_.end(), payloads[c].begin(), payloads[c].end());
      meta_[meta_offsets_[c] + chunk] = meta;
    }
  }
  arena_.shrink_to_fit();

  // Distance-order permutation: the sorted-access walk order, ascending
  // (min_distance, block index).
  const auto order_one = [&](std::size_t c) {
    std::uint32_t* begin = order_.data() + meta_offsets_[c];
    const BlockMeta* metas = meta_.data() + meta_offsets_[c];
    for (std::uint32_t b = 0; b < num_blocks; ++b) begin[b] = b;
    std::sort(begin, begin + num_blocks,
              [metas](std::uint32_t a, std::uint32_t b) {
                if (metas[a].min_distance != metas[b].min_distance) {
                  return metas[a].min_distance < metas[b].min_distance;
                }
                return a < b;
              });
  };
  if (pool != nullptr) {
    pool->ParallelFor(num_concepts,
                      [&](std::size_t c, std::size_t) { order_one(c); });
  } else {
    for (std::uint32_t c = 0; c < num_concepts; ++c) order_one(c);
  }
  build_seconds_ = timer.ElapsedSeconds();
}

BlockPostings BlockPostings::BuildEvolved(const BlockPostings& base,
                                          const ontology::Ontology& ontology) {
  util::WallTimer timer;
  const std::uint32_t base_n = base.num_concepts();
  const std::uint32_t new_n = ontology.num_concepts();
  ECDR_CHECK_GE(new_n, base_n);

  BlockPostings out;
  out.options_ = base.options_;
  out.num_documents_ = base.num_documents_;
  const std::uint32_t num_docs = out.num_documents_;
  const std::uint32_t block = out.options_.block_size;
  const std::uint32_t num_blocks =
      num_docs == 0 ? 0 : (num_docs + block - 1) / block;

  out.meta_offsets_.resize(new_n + 1);
  for (std::uint32_t c = 0; c <= new_n; ++c) {
    out.meta_offsets_[c] = static_cast<std::uint64_t>(c) * num_blocks;
  }
  out.meta_.resize(static_cast<std::size_t>(new_n) * num_blocks);
  out.order_.resize(out.meta_.size());
  if (num_docs == 0) {
    out.build_seconds_ = timer.ElapsedSeconds();
    return out;
  }

  // Topological order of the batch-new concepts over new->new parent
  // edges (add_concept parents and within-batch add_edge both allow a
  // new concept's parent to be new itself, in either id direction).
  const std::uint32_t new_count = new_n - base_n;
  std::vector<std::uint32_t> indegree(new_count, 0);
  for (std::uint32_t c = base_n; c < new_n; ++c) {
    for (const ontology::ConceptId p : ontology.parents(c)) {
      if (p >= base_n) ++indegree[c - base_n];
    }
  }
  std::vector<ontology::ConceptId> topo;
  topo.reserve(new_count);
  for (std::uint32_t c = base_n; c < new_n; ++c) {
    if (indegree[c - base_n] == 0) topo.push_back(c);
  }
  for (std::size_t head = 0; head < topo.size(); ++head) {
    for (const ontology::ConceptId child : ontology.children(topo[head])) {
      if (child >= base_n && --indegree[child - base_n] == 0) {
        topo.push_back(child);
      }
    }
  }
  ECDR_CHECK_EQ(topo.size(), static_cast<std::size_t>(new_count));

  // Pre-existing parents referenced by any new concept: their base
  // blocks are decoded once per chunk into dense rows.
  std::vector<std::int32_t> old_parent_slot(base_n, -1);
  std::vector<ontology::ConceptId> old_parents;
  for (std::uint32_t c = base_n; c < new_n; ++c) {
    for (const ontology::ConceptId p : ontology.parents(c)) {
      if (p < base_n && old_parent_slot[p] < 0) {
        old_parent_slot[p] = static_cast<std::int32_t>(old_parents.size());
        old_parents.push_back(p);
      }
    }
  }

  std::vector<std::vector<Entry>> parent_rows(old_parents.size());
  std::vector<std::vector<std::uint32_t>> new_rows(new_count);
  std::vector<Entry> entries_scratch;
  for (std::uint32_t chunk = 0; chunk < num_blocks; ++chunk) {
    const std::uint32_t begin = chunk * block;
    const std::uint32_t end = std::min(begin + block, num_docs);
    const std::uint32_t chunk_docs = end - begin;

    for (std::size_t s = 0; s < old_parents.size(); ++s) {
      const BlockMeta& meta =
          base.meta_[base.meta_offsets_[old_parents[s]] + chunk];
      ECDR_CHECK(
          blockcodec::DecodeBlock(base.payload(meta), meta, &parent_rows[s]));
      ECDR_CHECK_EQ(parent_rows[s].size(),
                    static_cast<std::size_t>(chunk_docs));
    }
    for (const ontology::ConceptId c : topo) {
      std::vector<std::uint32_t>& row = new_rows[c - base_n];
      row.assign(chunk_docs, ontology::kInfiniteDistance);
      for (const ontology::ConceptId p : ontology.parents(c)) {
        if (p < base_n) {
          const std::vector<Entry>& prow = parent_rows[old_parent_slot[p]];
          for (std::uint32_t j = 0; j < chunk_docs; ++j) {
            row[j] = std::min(row[j], prow[j].distance);
          }
        } else {
          const std::vector<std::uint32_t>& prow = new_rows[p - base_n];
          for (std::uint32_t j = 0; j < chunk_docs; ++j) {
            row[j] = std::min(row[j], prow[j]);
          }
        }
      }
      for (std::uint32_t j = 0; j < chunk_docs; ++j) {
        if (row[j] != ontology::kInfiniteDistance) ++row[j];
      }
    }

    // Same serial concatenation order as the cold build (concepts
    // ascending within the chunk): splice pre-existing payload bytes
    // verbatim, encode the derived new lists in place.
    for (std::uint32_t c = 0; c < new_n; ++c) {
      if (c < base_n) {
        const BlockMeta& src = base.meta_[base.meta_offsets_[c] + chunk];
        BlockMeta meta = src;
        const std::uint64_t offset = out.arena_.size();
        ECDR_CHECK_LE(offset + src.length, 0xFFFFFFFFull);
        meta.offset = static_cast<std::uint32_t>(offset);
        const std::span<const std::uint8_t> bytes = base.payload(src);
        out.arena_.insert(out.arena_.end(), bytes.begin(), bytes.end());
        out.meta_[out.meta_offsets_[c] + chunk] = meta;
      } else {
        const std::vector<std::uint32_t>& row = new_rows[c - base_n];
        entries_scratch.resize(chunk_docs);
        for (std::uint32_t j = 0; j < chunk_docs; ++j) {
          entries_scratch[j] = Entry{begin + j, row[j]};
        }
        BlockMeta meta;
        ECDR_CHECK_LE(out.arena_.size(), 0xFFFFFFFFull);
        blockcodec::EncodeBlock(entries_scratch, &out.arena_, &meta);
        out.meta_[out.meta_offsets_[c] + chunk] = meta;
      }
    }
  }
  out.arena_.shrink_to_fit();

  for (std::uint32_t c = 0; c < new_n; ++c) {
    std::uint32_t* order_begin = out.order_.data() + out.meta_offsets_[c];
    const BlockMeta* metas = out.meta_.data() + out.meta_offsets_[c];
    for (std::uint32_t b = 0; b < num_blocks; ++b) order_begin[b] = b;
    std::sort(order_begin, order_begin + num_blocks,
              [metas](std::uint32_t a, std::uint32_t b) {
                if (metas[a].min_distance != metas[b].min_distance) {
                  return metas[a].min_distance < metas[b].min_distance;
                }
                return a < b;
              });
  }
  out.build_seconds_ = timer.ElapsedSeconds();
  return out;
}

}  // namespace ecdr::index
