#include "index/sharded_index.h"

namespace ecdr::index {

ShardedIndex::ShardedIndex(const corpus::Corpus& corpus,
                           const ShardedIndex* previous)
    : num_documents_(corpus.num_documents()) {
  const std::size_t segments = corpus.num_segments();
  shards_.reserve(segments);
  for (std::size_t s = 0; s < segments; ++s) {
    const corpus::DocId base = corpus.segment_base(s);
    const std::uint32_t count =
        static_cast<std::uint32_t>(corpus.segment_documents(s).size());
    if (previous != nullptr && s < previous->shards_.size()) {
      const std::shared_ptr<const InvertedIndex>& old = previous->shards_[s];
      if (old->first_doc() == base && old->num_indexed_documents() == count) {
        shards_.push_back(old);
        ++shards_reused_;
        continue;
      }
    }
    shards_.push_back(std::make_shared<InvertedIndex>(corpus, base, count));
  }
}

}  // namespace ecdr::index
