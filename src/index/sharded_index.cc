#include "index/sharded_index.h"

namespace ecdr::index {

ShardedIndex::ShardedIndex(const corpus::Corpus& corpus,
                           const ShardedIndex* previous)
    : num_documents_(corpus.num_documents()) {
  const std::size_t segments = corpus.num_segments();
  shards_.reserve(segments);
  identities_.reserve(segments);
  for (std::size_t s = 0; s < segments; ++s) {
    const corpus::DocId base = corpus.segment_base(s);
    const std::uint32_t count =
        static_cast<std::uint32_t>(corpus.segment_documents(s).size());
    const void* identity = corpus.segment_identity(s);
    if (previous != nullptr && s < previous->shards_.size()) {
      const std::shared_ptr<const InvertedIndex>& old = previous->shards_[s];
      if (old->first_doc() == base && old->num_indexed_documents() == count &&
          previous->identities_[s] == identity) {
        shards_.push_back(old);
        identities_.push_back(identity);
        ++shards_reused_;
        continue;
      }
    }
    shards_.push_back(std::make_shared<InvertedIndex>(corpus, base, count));
    identities_.push_back(identity);
  }
}

ShardedIndex::ShardedIndex(
    const corpus::Corpus& corpus,
    std::vector<std::shared_ptr<const InvertedIndex>> shards)
    : shards_(std::move(shards)), num_documents_(corpus.num_documents()) {
  ECDR_CHECK_EQ(shards_.size(), corpus.num_segments());
  identities_.reserve(shards_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    ECDR_CHECK_EQ(shards_[s]->first_doc(), corpus.segment_base(s));
    ECDR_CHECK_EQ(shards_[s]->num_indexed_documents(),
                  corpus.segment_documents(s).size());
    identities_.push_back(corpus.segment_identity(s));
  }
}

}  // namespace ecdr::index
