#include "index/precomputed_postings.h"

#include <algorithm>

#include "util/timer.h"

namespace ecdr::index {

PrecomputedPostings::PrecomputedPostings(const corpus::Corpus& corpus) {
  util::WallTimer timer;
  const ontology::Ontology& ontology = corpus.ontology();
  const std::uint32_t num_concepts = ontology.num_concepts();
  by_distance_.resize(num_concepts);
  by_doc_.resize(num_concepts);
  for (auto& list : by_doc_) list.reserve(corpus.num_documents());

  ontology::DistanceOracle oracle(ontology);
  std::vector<std::uint32_t> dist;
  for (corpus::DocId d = 0; d < corpus.num_documents(); ++d) {
    oracle.DistancesFromSet(corpus.document(d).concepts(), &dist);
    for (ontology::ConceptId c = 0; c < num_concepts; ++c) {
      // Documents are appended in id order, so by_doc_ stays sorted.
      by_doc_[c].push_back(Entry{d, dist[c]});
    }
  }
  for (ontology::ConceptId c = 0; c < num_concepts; ++c) {
    by_distance_[c] = by_doc_[c];
    std::sort(by_distance_[c].begin(), by_distance_[c].end(),
              [](const Entry& a, const Entry& b) {
                if (a.distance != b.distance) return a.distance < b.distance;
                return a.doc < b.doc;
              });
    memory_bytes_ +=
        (by_distance_[c].size() + by_doc_[c].size()) * sizeof(Entry);
  }
  build_seconds_ = timer.ElapsedSeconds();
}

std::uint32_t PrecomputedPostings::Distance(ontology::ConceptId c,
                                            corpus::DocId doc) const {
  ECDR_DCHECK_LT(c, by_doc_.size());
  const auto& list = by_doc_[c];
  const auto it = std::lower_bound(
      list.begin(), list.end(), doc,
      [](const Entry& entry, corpus::DocId target) {
        return entry.doc < target;
      });
  ECDR_CHECK(it != list.end() && it->doc == doc);
  return it->distance;
}

}  // namespace ecdr::index
