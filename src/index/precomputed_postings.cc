#include "index/precomputed_postings.h"

#include <algorithm>
#include <memory>

#include "util/timer.h"

namespace ecdr::index {

PrecomputedPostings::PrecomputedPostings(const corpus::Corpus& corpus,
                                         util::ThreadPool* pool) {
  util::WallTimer timer;
  const ontology::Ontology& ontology = corpus.ontology();
  num_concepts_ = ontology.num_concepts();
  num_documents_ = corpus.num_documents();
  const std::size_t table =
      static_cast<std::size_t>(num_concepts_) * num_documents_;
  by_doc_flat_.resize(table);
  by_distance_.resize(table);

  // One BFS per document, each writing its own row of the doc-major
  // arena — disjoint writes, so the parallel build is byte-identical
  // to the serial one.
  const std::size_t lanes = pool != nullptr ? pool->num_threads() + 1 : 1;
  std::vector<std::unique_ptr<ontology::DistanceOracle>> oracles;
  std::vector<std::vector<std::uint32_t>> dists(lanes);
  oracles.reserve(lanes);
  for (std::size_t i = 0; i < lanes; ++i) {
    oracles.push_back(std::make_unique<ontology::DistanceOracle>(ontology));
  }
  const auto bfs_one = [&](std::size_t d, std::size_t lane) {
    std::vector<std::uint32_t>& dist = dists[lane];
    oracles[lane]->DistancesFromSet(
        corpus.document(static_cast<corpus::DocId>(d)).concepts(), &dist);
    std::copy(dist.begin(), dist.end(),
              by_doc_flat_.begin() + d * num_concepts_);
  };
  if (pool != nullptr) {
    pool->ParallelFor(num_documents_, bfs_one);
  } else {
    for (std::size_t d = 0; d < num_documents_; ++d) bfs_one(d, 0);
  }

  // Distance-sorted copy, one independent sort per concept (the
  // comparator is a total order, so the sorted lists are deterministic
  // regardless of lane count).
  const auto sort_one = [&](std::size_t c) {
    Entry* list = by_distance_.data() + c * num_documents_;
    for (std::uint32_t d = 0; d < num_documents_; ++d) {
      list[d] = Entry{d, by_doc_flat_[static_cast<std::size_t>(d) *
                                          num_concepts_ +
                                      c]};
    }
    std::sort(list, list + num_documents_, [](const Entry& a, const Entry& b) {
      if (a.distance != b.distance) return a.distance < b.distance;
      return a.doc < b.doc;
    });
  };
  if (pool != nullptr) {
    pool->ParallelFor(num_concepts_,
                      [&](std::size_t c, std::size_t) { sort_one(c); });
  } else {
    for (std::size_t c = 0; c < num_concepts_; ++c) sort_one(c);
  }
  build_seconds_ = timer.ElapsedSeconds();
}

}  // namespace ecdr::index
