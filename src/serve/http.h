// Incremental HTTP/1.1 request parsing and response serialization for
// ecdr_serve — self-contained, no external dependencies.
//
// HttpParser is a byte-at-a-time-safe state machine: Feed() accepts
// whatever fragment the socket produced (down to single bytes — the
// torture test splices inputs at random offsets) and consumes input
// until one request is complete, the input is proven malformed, or
// more bytes are needed. Hard limits bound every dimension an attacker
// controls: request-line length, total header bytes, header count and
// body size (Content-Length or chunked-decoded). A parse failure
// carries the HTTP status the server should answer with (400/413/431/
// 501/505) and never leaves the parser in a state that could misread
// subsequent bytes — the connection is closed after an error response.
//
// Supported subset: methods as tokens, origin-form targets, HTTP/1.0
// and 1.1, Content-Length and chunked transfer encodings. Multiple
// Content-Length headers, Content-Length combined with
// Transfer-Encoding, and non-chunked transfer codings are rejected
// outright (request-smuggling hygiene).

#ifndef ECDR_SERVE_HTTP_H_
#define ECDR_SERVE_HTTP_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/status.h"

namespace ecdr::serve {

/// One parsed request. Header names are lower-cased at parse time so
/// lookups are case-insensitive per RFC 9110.
struct HttpRequest {
  std::string method;
  std::string target;
  int version_minor = 1;  // HTTP/1.<minor>
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  /// nullptr when absent; `name` must already be lower-case.
  const std::string* FindHeader(std::string_view name) const;
  /// Keep-alive per HTTP/1.1 defaults + Connection header.
  bool KeepAlive() const;
};

struct HttpParserLimits {
  std::size_t max_request_line_bytes = 8 * 1024;
  std::size_t max_header_bytes = 16 * 1024;  // all header lines combined
  std::size_t max_headers = 64;
  std::size_t max_body_bytes = 1 * 1024 * 1024;
};

class HttpParser {
 public:
  explicit HttpParser(HttpParserLimits limits = {});

  /// Consumes bytes from `input` and returns how many were used.
  /// Unconsumed bytes (anything after a completed request) belong to
  /// the next request — call Reset() and feed them again. After an
  /// error, no further bytes are consumed.
  std::size_t Feed(std::string_view input);

  bool done() const { return state_ == State::kComplete; }
  bool failed() const { return state_ == State::kError; }

  /// Valid when failed(): the response status this malformed input has
  /// earned, plus a one-line reason for logs and the error body.
  int error_status() const { return error_status_; }
  const std::string& error_detail() const { return error_detail_; }

  /// Valid when done().
  const HttpRequest& request() const { return request_; }
  HttpRequest& request() { return request_; }

  /// Ready for the next request on the same connection.
  void Reset();

 private:
  enum class State {
    kRequestLine,
    kHeaders,
    kBody,
    kChunkSize,
    kChunkData,
    kChunkDataEnd,  // CRLF after one chunk's payload
    kTrailers,
    kComplete,
    kError,
  };

  /// Moves to kError with the given HTTP status; Feed returns early.
  void Fail(int status, std::string detail);
  void ParseRequestLine(std::string_view line);
  void ParseHeaderLine(std::string_view line);
  /// Validates accumulated headers and picks the body framing; runs on
  /// the blank line ending the header block.
  void FinishHeaders();

  HttpParserLimits limits_;
  State state_ = State::kRequestLine;
  HttpRequest request_;
  std::string line_;            // current partial line
  std::size_t header_bytes_ = 0;
  std::uint64_t body_remaining_ = 0;  // Content-Length / current chunk
  bool chunked_ = false;
  int error_status_ = 0;
  std::string error_detail_;
};

/// Maps an engine StatusCode onto the HTTP response status the serving
/// layer answers with. Total over the enum (tests enumerate every code
/// against this): kOk=200, the caller-error codes map to 4xx
/// (kResourceExhausted=429 so load balancers back off, kCancelled=499
/// in nginx's convention), kDeadlineExceeded=504, and the server-side
/// failures map to 500.
int HttpStatusForCode(util::StatusCode code);

/// Standard reason phrase; "Unknown" for statuses we never emit.
const char* HttpReasonPhrase(int status);

/// Serializes a complete response with Content-Length framing.
/// `content_type` may be empty for bodyless responses.
std::string SerializeResponse(int status, std::string_view content_type,
                              std::string_view body, bool keep_alive);

}  // namespace ecdr::serve

#endif  // ECDR_SERVE_HTTP_H_
