#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>

#include "serve/json.h"
#include "util/stats.h"

namespace ecdr::serve {
namespace {

using Clock = std::chrono::steady_clock;

constexpr std::uint64_t kListenerId = 0;
constexpr std::uint64_t kWakeId = ~std::uint64_t{0};

double Seconds(Clock::duration d) {
  return std::chrono::duration<double>(d).count();
}

/// "0x0123456789abcdef" — zero-padded lowercase hex of a 64-bit hash.
std::string HexHash(std::uint64_t value) {
  char buf[19];
  std::snprintf(buf, sizeof(buf), "0x%016llx",
                static_cast<unsigned long long>(value));
  return buf;
}

/// True for a JSON number that is exactly a non-negative integer that
/// fits `max` (request ids/counts; 3.5 or -1 concepts are nonsense).
bool AsIndex(const json::Value& value, std::uint64_t max,
             std::uint64_t* out) {
  if (!value.is_number()) return false;
  const double number = value.number;
  if (!(number >= 0) || number != std::floor(number) ||
      number > static_cast<double>(max)) {
    return false;
  }
  *out = static_cast<std::uint64_t>(number);
  return true;
}

void AppendCounter(std::string* out, std::string_view name,
                   std::uint64_t value) {
  json::AppendQuoted(out, name);
  *out += ':';
  *out += std::to_string(value);
}

/// "name":"0x0123456789abcdef" — 64-bit hashes serialize as hex strings
/// because a JSON number is a double and silently rounds past 2^53.
void AppendHexHash(std::string* out, std::string_view name,
                   std::uint64_t value) {
  json::AppendQuoted(out, name);
  *out += ":\"";
  *out += HexHash(value);
  *out += '"';
}

}  // namespace

struct Server::Connection {
  int fd = -1;
  std::uint64_t id = 0;
  HttpParser parser;
  std::string pending_in;   // bytes read but not yet consumed
  std::string out;          // response bytes not yet written
  std::size_t out_offset = 0;
  std::uint32_t events = 0;  // current epoll interest
  bool in_flight = false;    // one dispatched request awaits its response
  bool want_close = false;   // close once `out` is flushed
  bool peer_eof = false;     // client half-closed; never read again
  bool dead = false;         // queued for close at end of the iteration

  explicit Connection(HttpParserLimits limits) : parser(limits) {}
};

struct Server::Job {
  std::uint64_t conn_id = 0;
  HttpRequest request;
  Clock::time_point arrival;
  bool keep_alive = true;
};

struct Server::Completion {
  std::uint64_t conn_id = 0;
  std::string bytes;
  bool keep_alive = true;
};

Server::Server(core::RankingEngine* engine, ServerOptions options)
    : engine_(engine), options_(std::move(options)) {
  if (options_.ta_postings != nullptr && options_.ta_corpus != nullptr) {
    core::TaRankerOptions ta_options;
    ta_options.num_threads = 1;  // serialized sidecar; no lanes needed
    ta_ranker_ = std::make_unique<core::TaRanker>(
        *options_.ta_corpus, *options_.ta_postings, ta_options);
    ta_postings_current_.store(options_.ta_postings,
                               std::memory_order_release);
    ta_ontology_version_.store(engine_->ontology_stats().version,
                               std::memory_order_relaxed);
  }
}

Server::~Server() { Stop(); }

util::Status Server::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return util::FailedPreconditionError("server already started");
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                        0);
  if (listen_fd_ < 0) {
    return util::IoError(std::string("socket: ") + std::strerror(errno));
  }
  const int enable = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &enable,
               sizeof(enable));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return util::InvalidArgumentError("bad bind address '" +
                                      options_.bind_address + "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
          0 ||
      ::listen(listen_fd_, 512) < 0) {
    const std::string detail = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return util::IoError("bind/listen " + options_.bind_address + ":" +
                         std::to_string(options_.port) + ": " + detail);
  }
  socklen_t addr_len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &addr_len);
  port_ = ntohs(addr.sin_port);

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (epoll_fd_ < 0 || wake_fd_ < 0) {
    Stop();
    return util::IoError("epoll_create1/eventfd failed");
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = kListenerId;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  ev.data.u64 = kWakeId;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);

  stopping_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  event_thread_ = std::thread([this] { EventLoop(); });
  const std::size_t workers = std::max<std::size_t>(1, options_.num_workers);
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  return util::Status::Ok();
}

void Server::Stop() {
  const bool was_running = running_.exchange(false, std::memory_order_acq_rel);
  stopping_.store(true, std::memory_order_release);
  if (was_running) {
    queue_cv_.notify_all();
    const std::uint64_t one = 1;
    [[maybe_unused]] const auto ignored =
        ::write(wake_fd_, &one, sizeof(one));
    if (event_thread_.joinable()) event_thread_.join();
    for (std::thread& worker : workers_) {
      if (worker.joinable()) worker.join();
    }
    workers_.clear();
  }
  // The event thread is gone: tear down its state from here.
  for (auto& [id, conn] : conns_) {
    if (conn->fd >= 0) ::close(conn->fd);
  }
  conns_.clear();
  dead_conns_.clear();
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    queue_.clear();
  }
  {
    std::lock_guard<std::mutex> lock(completion_mutex_);
    completions_.clear();
  }
  for (int* fd : {&listen_fd_, &epoll_fd_, &wake_fd_}) {
    if (*fd >= 0) {
      ::close(*fd);
      *fd = -1;
    }
  }
}

ServerStats Server::stats() const {
  ServerStats stats;
  stats.connections_accepted =
      connections_accepted_.load(std::memory_order_relaxed);
  stats.connections_closed =
      connections_closed_.load(std::memory_order_relaxed);
  stats.connections_rejected =
      connections_rejected_.load(std::memory_order_relaxed);
  stats.requests_received = requests_received_.load(std::memory_order_relaxed);
  stats.responses_ok = responses_ok_.load(std::memory_order_relaxed);
  stats.shed_queue_full = shed_queue_full_.load(std::memory_order_relaxed);
  stats.shed_engine = shed_engine_.load(std::memory_order_relaxed);
  stats.deadline_hits = deadline_hits_.load(std::memory_order_relaxed);
  stats.parse_errors = parse_errors_.load(std::memory_order_relaxed);
  stats.bad_requests = bad_requests_.load(std::memory_order_relaxed);
  stats.internal_errors = internal_errors_.load(std::memory_order_relaxed);
  stats.active_connections =
      active_connections_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    stats.queue_depth = queue_.size();
  }
  return stats;
}

// ---------------------------------------------------------------------------
// Event loop

void Server::EventLoop() {
  epoll_event events[64];
  while (!stopping_.load(std::memory_order_acquire)) {
    const int n = ::epoll_wait(epoll_fd_, events, 64, /*timeout_ms=*/500);
    if (n < 0 && errno != EINTR) break;
    for (int i = 0; i < n; ++i) {
      const std::uint64_t id = events[i].data.u64;
      if (id == kListenerId) {
        HandleAccept();
        continue;
      }
      if (id == kWakeId) {
        std::uint64_t drained;
        while (::read(wake_fd_, &drained, sizeof(drained)) > 0) {
        }
        DrainCompletions();
        continue;
      }
      const auto it = conns_.find(id);
      if (it == conns_.end()) continue;
      Connection* conn = it->second.get();
      if (events[i].events & (EPOLLHUP | EPOLLERR)) {
        // EPOLLHUP still allows reading buffered bytes, but the
        // connection is done for our purposes — close it.
        MarkDead(conn);
      } else {
        if (events[i].events & EPOLLIN) HandleReadable(conn);
        if (!conn->dead && (events[i].events & EPOLLOUT)) {
          HandleWritable(conn);
        }
      }
    }
    // Close in a sweep after the batch: handlers only MarkDead(), so a
    // Connection pointer stays valid for the whole iteration even if an
    // earlier event killed it.
    for (const std::uint64_t id : dead_conns_) CloseConnection(id);
    dead_conns_.clear();
  }
}

void Server::HandleAccept() {
  while (true) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN or transient accept error: wait for epoll
    }
    if (conns_.size() >= options_.max_connections) {
      connections_rejected_.fetch_add(1, std::memory_order_relaxed);
      ::close(fd);
      continue;
    }
    const int enable = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &enable, sizeof(enable));
    auto conn = std::make_unique<Connection>(options_.http_limits);
    conn->fd = fd;
    conn->id = next_conn_id_++;
    Connection* raw = conn.get();
    conns_.emplace(raw->id, std::move(conn));
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    active_connections_.store(conns_.size(), std::memory_order_relaxed);
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = raw->id;
    raw->events = EPOLLIN;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
  }
}

void Server::HandleReadable(Connection* conn) {
  char buffer[64 * 1024];
  while (!conn->dead && !conn->peer_eof) {
    const ssize_t n = ::recv(conn->fd, buffer, sizeof(buffer), 0);
    if (n > 0) {
      conn->pending_in.append(buffer, static_cast<std::size_t>(n));
      DrainInput(conn);
      // Backpressure: once a request is in flight (or a response is
      // buffered) we stop pulling bytes out of the kernel.
      if (conn->in_flight || !conn->out.empty()) break;
      continue;
    }
    if (n == 0) {
      conn->peer_eof = true;
      if (!conn->in_flight && conn->out.empty()) MarkDead(conn);
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    MarkDead(conn);
    break;
  }
  if (!conn->dead) UpdateInterest(conn);
}

void Server::HandleWritable(Connection* conn) {
  while (!conn->dead && conn->out_offset < conn->out.size()) {
    const ssize_t n =
        ::send(conn->fd, conn->out.data() + conn->out_offset,
               conn->out.size() - conn->out_offset, MSG_NOSIGNAL);
    if (n > 0) {
      conn->out_offset += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    MarkDead(conn);  // EPIPE / ECONNRESET / anything else
    return;
  }
  if (conn->out_offset == conn->out.size()) {
    conn->out.clear();
    conn->out_offset = 0;
    if (conn->want_close || (conn->peer_eof && !conn->in_flight)) {
      MarkDead(conn);
      return;
    }
    // Flushed: resume the connection — pipelined bytes may already be
    // buffered.
    DrainInput(conn);
  }
  if (!conn->dead) UpdateInterest(conn);
}

void Server::DrainInput(Connection* conn) {
  while (!conn->dead && !conn->want_close && !conn->in_flight &&
         conn->out.empty() && !conn->pending_in.empty()) {
    const std::size_t consumed = conn->parser.Feed(conn->pending_in);
    conn->pending_in.erase(0, consumed);
    if (conn->parser.failed()) {
      parse_errors_.fetch_add(1, std::memory_order_relaxed);
      const int status = conn->parser.error_status();
      SendInline(conn, status,
                 ErrorBody(status, "INVALID_ARGUMENT",
                           conn->parser.error_detail()),
                 /*keep_alive=*/false);
      return;
    }
    if (conn->parser.done()) {
      requests_received_.fetch_add(1, std::memory_order_relaxed);
      DispatchRequest(conn);
      conn->parser.Reset();
      continue;
    }
    return;  // needs more bytes
  }
}

namespace {

/// Targets served by the worker pool (searches and writes — anything
/// that can block on the engine or the WAL).
bool IsWorkerTarget(const std::string& target) {
  return target == "/v1/search" || target == "/v1/documents" ||
         target == "/v1/documents/delete" ||
         target == "/v1/documents/update" ||
         target == "/v1/admin/checkpoint" || target == "/v1/admin/compact" ||
         target == "/v1/admin/ontology/add_concept" ||
         target == "/v1/admin/ontology/retire_concept" ||
         target == "/v1/admin/ontology/add_edge";
}

}  // namespace

void Server::DispatchRequest(Connection* conn) {
  HttpRequest& request = conn->parser.request();
  const bool keep_alive = request.KeepAlive();
  if (IsWorkerTarget(request.target)) {
    if (request.method != "POST") {
      bad_requests_.fetch_add(1, std::memory_order_relaxed);
      SendInline(conn, 405,
                 ErrorBody(405, "INVALID_ARGUMENT",
                           "use POST for '" + request.target + "'"),
                 keep_alive);
      return;
    }
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      if (queue_.size() >= options_.max_queue) {
        lock.unlock();
        shed_queue_full_.fetch_add(1, std::memory_order_relaxed);
        SendInline(conn, 429,
                   ErrorBody(429, "RESOURCE_EXHAUSTED",
                             "request queue full"),
                   keep_alive);
        return;
      }
      Job job;
      job.conn_id = conn->id;
      job.request = std::move(request);
      job.arrival = Clock::now();
      job.keep_alive = keep_alive;
      queue_.push_back(std::move(job));
    }
    queue_cv_.notify_one();
    conn->in_flight = true;
    return;
  }
  if (request.method != "GET") {
    bad_requests_.fetch_add(1, std::memory_order_relaxed);
    SendInline(conn, 405,
               ErrorBody(405, "INVALID_ARGUMENT", "method not allowed"),
               keep_alive);
    return;
  }
  if (request.target == "/status") {
    SendInline(conn, 200, StatusJson(), keep_alive);
    return;
  }
  if (request.target == "/metrics") {
    conn->out += SerializeResponse(200, "text/plain; version=0.0.4",
                                   MetricsText(), keep_alive);
    if (!keep_alive) conn->want_close = true;
    HandleWritable(conn);
    return;
  }
  if (request.target == "/healthz") {
    SendInline(conn, 200, "{\"ok\":true}", keep_alive);
    return;
  }
  bad_requests_.fetch_add(1, std::memory_order_relaxed);
  SendInline(conn, 404,
             ErrorBody(404, "NOT_FOUND",
                       "unknown endpoint '" + request.target + "'"),
             keep_alive);
}

void Server::SendInline(Connection* conn, int status, std::string body,
                        bool keep_alive) {
  conn->out += SerializeResponse(status, "application/json", body,
                                 keep_alive);
  if (!keep_alive) conn->want_close = true;
  // Optimistic flush; small responses almost always fit the socket
  // buffer, skipping an epoll round-trip.
  HandleWritable(conn);
}

void Server::MarkDead(Connection* conn) {
  if (conn->dead) return;
  conn->dead = true;
  dead_conns_.push_back(conn->id);
}

void Server::UpdateInterest(Connection* conn) {
  std::uint32_t events = 0;
  if (!conn->in_flight && !conn->want_close && !conn->peer_eof &&
      conn->out.empty()) {
    events |= EPOLLIN;
  }
  if (!conn->out.empty()) events |= EPOLLOUT;
  if (events == conn->events) return;
  epoll_event ev{};
  ev.events = events;
  ev.data.u64 = conn->id;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev);
  conn->events = events;
}

void Server::CloseConnection(std::uint64_t id) {
  const auto it = conns_.find(id);
  if (it == conns_.end()) return;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, it->second->fd, nullptr);
  ::close(it->second->fd);
  conns_.erase(it);
  connections_closed_.fetch_add(1, std::memory_order_relaxed);
  active_connections_.store(conns_.size(), std::memory_order_relaxed);
}

void Server::DrainCompletions() {
  std::vector<Completion> batch;
  {
    std::lock_guard<std::mutex> lock(completion_mutex_);
    batch.swap(completions_);
  }
  for (Completion& completion : batch) {
    const auto it = conns_.find(completion.conn_id);
    if (it == conns_.end()) continue;  // connection died while computing
    Connection* conn = it->second.get();
    conn->in_flight = false;
    conn->out += completion.bytes;
    if (!completion.keep_alive) conn->want_close = true;
    HandleWritable(conn);
    if (!conn->dead) UpdateInterest(conn);
  }
}

// ---------------------------------------------------------------------------
// Workers

void Server::WorkerLoop() {
  while (true) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [this] {
        return stopping_.load(std::memory_order_acquire) || !queue_.empty();
      });
      if (stopping_.load(std::memory_order_acquire)) return;
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    bool keep_alive = job.keep_alive;
    std::string response = HandleRequest(job, &keep_alive);
    {
      std::lock_guard<std::mutex> lock(completion_mutex_);
      completions_.push_back(
          Completion{job.conn_id, std::move(response), keep_alive});
    }
    const std::uint64_t one = 1;
    [[maybe_unused]] const auto ignored =
        ::write(wake_fd_, &one, sizeof(one));
  }
}

std::string Server::ErrorBody(int http_status, std::string_view code_name,
                              std::string_view message) {
  std::string body = "{\"error\":{\"status\":";
  body += std::to_string(http_status);
  body += ",\"code\":";
  json::AppendQuoted(&body, code_name);
  body += ",\"message\":";
  json::AppendQuoted(&body, message);
  body += "}}";
  return body;
}

std::string Server::HandleRequest(const Job& job, bool* keep_alive) {
  if (job.request.target == "/v1/search") return HandleSearch(job, keep_alive);
  return HandleWrite(job, keep_alive);
}

std::string Server::HandleWrite(const Job& job, bool* keep_alive) {
  const auto fail = [&](int status, std::string_view code,
                        std::string_view message) {
    if (status == 429) {
      shed_engine_.fetch_add(1, std::memory_order_relaxed);
    } else if (status >= 500) {
      internal_errors_.fetch_add(1, std::memory_order_relaxed);
    } else {
      bad_requests_.fetch_add(1, std::memory_order_relaxed);
    }
    return SerializeResponse(status, "application/json",
                             ErrorBody(status, code, message), *keep_alive);
  };
  const auto engine_fail = [&](const util::Status& status) {
    const util::StatusCode code = status.code();
    return fail(HttpStatusForCode(code), util::StatusCodeName(code),
                status.message());
  };
  const auto ok_body = [&](std::string body) {
    responses_ok_.fetch_add(1, std::memory_order_relaxed);
    return SerializeResponse(200, "application/json", std::move(body),
                             *keep_alive);
  };
  const std::string& target = job.request.target;

  if (target == "/v1/admin/checkpoint") {
    const util::Status status = engine_->Checkpoint();
    if (!status.ok()) return engine_fail(status);
    const core::DurabilityStats durability = engine_->durability_stats();
    std::string body = "{\"checkpointed\":true,";
    AppendCounter(&body, "image_generation", durability.store.image_generation);
    body += ',';
    AppendCounter(&body, "durable_lsn", durability.store.durable_lsn);
    body += '}';
    return ok_body(std::move(body));
  }
  if (target == "/v1/admin/compact") {
    const util::Status status = engine_->Compact();
    if (!status.ok()) return engine_fail(status);
    std::string body = "{\"compacted\":true,";
    AppendCounter(&body, "index_shards",
                  engine_->snapshot_stats().index_shards);
    body += '}';
    return ok_body(std::move(body));
  }

  json::ParseLimits parse_limits;
  auto parsed = json::Parse(job.request.body, parse_limits);
  if (!parsed.ok()) {
    return fail(400, "INVALID_ARGUMENT", parsed.status().message());
  }
  if (!parsed->is_object()) {
    return fail(400, "INVALID_ARGUMENT", "request body must be an object");
  }

  if (target == "/v1/admin/ontology/add_concept" ||
      target == "/v1/admin/ontology/retire_concept" ||
      target == "/v1/admin/ontology/add_edge") {
    ontology::OntologyMutation mutation;
    if (target == "/v1/admin/ontology/add_concept") {
      const json::Value* name_field = parsed->Find("name");
      if (name_field == nullptr || !name_field->is_string() ||
          name_field->string.empty()) {
        return fail(400, "INVALID_ARGUMENT",
                    "add_concept needs a non-empty string 'name'");
      }
      const json::Value* parents_field = parsed->Find("parents");
      if (parents_field == nullptr || !parents_field->is_array() ||
          parents_field->array.empty()) {
        return fail(400, "INVALID_ARGUMENT",
                    "add_concept needs a non-empty 'parents' array");
      }
      mutation.kind = ontology::OntologyMutation::Kind::kAddConcept;
      mutation.name = name_field->string;
      mutation.parents.reserve(parents_field->array.size());
      for (const json::Value& element : parents_field->array) {
        std::uint64_t id = 0;
        if (!AsIndex(element, 0xFFFFFFFFull, &id)) {
          return fail(400, "INVALID_ARGUMENT",
                      "'parents' must be an array of concept ids");
        }
        // Existence/retirement of the parents is validated atomically
        // by the engine under its mutation lock, not against a
        // possibly-stale snapshot here.
        mutation.parents.push_back(static_cast<ontology::ConceptId>(id));
      }
    } else if (target == "/v1/admin/ontology/retire_concept") {
      const json::Value* concept_field = parsed->Find("concept");
      std::uint64_t id = 0;
      if (concept_field == nullptr ||
          !AsIndex(*concept_field, 0xFFFFFFFFull, &id)) {
        return fail(400, "INVALID_ARGUMENT",
                    "retire_concept needs a 'concept' id");
      }
      mutation.kind = ontology::OntologyMutation::Kind::kRetireConcept;
      mutation.target = static_cast<ontology::ConceptId>(id);
    } else {
      const json::Value* parent_field = parsed->Find("parent");
      const json::Value* child_field = parsed->Find("child");
      std::uint64_t parent_id = 0;
      std::uint64_t child_id = 0;
      if (parent_field == nullptr || child_field == nullptr ||
          !AsIndex(*parent_field, 0xFFFFFFFFull, &parent_id) ||
          !AsIndex(*child_field, 0xFFFFFFFFull, &child_id)) {
        return fail(400, "INVALID_ARGUMENT",
                    "add_edge needs 'parent' and 'child' ids");
      }
      mutation.kind = ontology::OntologyMutation::Kind::kAddEdge;
      mutation.parent = static_cast<ontology::ConceptId>(parent_id);
      mutation.child = static_cast<ontology::ConceptId>(child_id);
    }

    // ta_mutex_ spans apply + sidecar refresh so concurrent admin
    // requests rebuild the sidecar in mutation order (the engine
    // serializes the mutations themselves either way).
    util::StatusOr<ontology::EvolutionStats> evolved =
        ontology::EvolutionStats{};
    {
      std::lock_guard<std::mutex> lock(ta_mutex_);
      evolved = engine_->ApplyOntologyMutations({&mutation, 1});
      if (evolved.ok()) RefreshTaSidecarLocked(*evolved);
    }
    if (!evolved.ok()) return engine_fail(evolved.status());
    const core::OntologyStats onto = engine_->ontology_stats();

    std::string body = "{";
    if (mutation.kind == ontology::OntologyMutation::Kind::kAddConcept) {
      // Names are unique, so the id survives concurrent evolutions.
      AppendCounter(&body, "concept",
                    engine_->ontology().FindByName(mutation.name));
    } else if (mutation.kind ==
               ontology::OntologyMutation::Kind::kRetireConcept) {
      AppendCounter(&body, "retired", mutation.target);
    } else {
      AppendCounter(&body, "parent", mutation.parent);
      body += ',';
      AppendCounter(&body, "child", mutation.child);
    }
    body += ',';
    AppendCounter(&body, "version", onto.version);
    body += ',';
    AppendCounter(&body, "readdressed", evolved->readdressed_concepts);
    body += ',';
    AppendCounter(&body, "readdressed_existing",
                  evolved->readdressed_existing);
    body += ',';
    AppendCounter(&body, "reused", evolved->reused_concepts);
    body += ',';
    AppendCounter(&body, "invalidated", evolved->invalidated_existing.size());
    body += ',';
    AppendHexHash(&body, "identity_hash", onto.identity_hash);
    body += ",\"generation\":";
    body += std::to_string(engine_->snapshot_stats().generation);
    body += '}';
    return ok_body(std::move(body));
  }

  std::vector<ontology::ConceptId> concepts;
  if (const json::Value* concepts_field = parsed->Find("concepts")) {
    if (!concepts_field->is_array() || concepts_field->array.empty()) {
      return fail(400, "INVALID_ARGUMENT",
                  "'concepts' must be a non-empty array of concept ids");
    }
    concepts.reserve(concepts_field->array.size());
    for (const json::Value& element : concepts_field->array) {
      std::uint64_t id = 0;
      if (!AsIndex(element, 0xFFFFFFFFull, &id) ||
          !engine_->ontology().Contains(
              static_cast<ontology::ConceptId>(id))) {
        return fail(400, "INVALID_ARGUMENT", "unknown concept id");
      }
      concepts.push_back(static_cast<ontology::ConceptId>(id));
    }
  }
  const json::Value* doc_field = parsed->Find("doc");
  std::uint64_t doc_id = 0;
  if (doc_field != nullptr && !AsIndex(*doc_field, 0xFFFFFFFFull, &doc_id)) {
    return fail(400, "INVALID_ARGUMENT", "'doc' must be a document id");
  }

  // The response reports the generation the write landed in (the one
  // published by this operation with the default batch size of 1).
  const auto generation_suffix = [&]() {
    std::string suffix = ",\"generation\":";
    suffix += std::to_string(engine_->snapshot_stats().generation);
    suffix += '}';
    return suffix;
  };

  if (target == "/v1/documents") {
    if (concepts.empty()) {
      return fail(400, "INVALID_ARGUMENT",
                  "add needs a non-empty 'concepts' array");
    }
    const util::StatusOr<corpus::DocId> added =
        engine_->AddDocument(std::move(concepts));
    if (!added.ok()) return engine_fail(added.status());
    std::string body = "{\"id\":";
    body += std::to_string(*added);
    body += generation_suffix();
    return ok_body(std::move(body));
  }
  if (target == "/v1/documents/delete") {
    if (doc_field == nullptr) {
      return fail(400, "INVALID_ARGUMENT", "delete needs 'doc'");
    }
    const util::Status status =
        engine_->DeleteDocument(static_cast<corpus::DocId>(doc_id));
    if (!status.ok()) return engine_fail(status);
    std::string body = "{\"deleted\":";
    body += std::to_string(doc_id);
    body += generation_suffix();
    return ok_body(std::move(body));
  }
  // /v1/documents/update
  if (doc_field == nullptr || concepts.empty()) {
    return fail(400, "INVALID_ARGUMENT",
                "update needs 'doc' and a non-empty 'concepts' array");
  }
  const util::Status status = engine_->UpdateDocument(
      static_cast<corpus::DocId>(doc_id), std::move(concepts));
  if (!status.ok()) return engine_fail(status);
  std::string body = "{\"updated\":";
  body += std::to_string(doc_id);
  body += generation_suffix();
  return ok_body(std::move(body));
}

void Server::RefreshTaSidecarLocked(const ontology::EvolutionStats& stats) {
  const index::BlockPostings* base =
      ta_postings_current_.load(std::memory_order_relaxed);
  if (base == nullptr) return;  // no sidecar configured
  const std::shared_ptr<const ontology::OntologySnapshot> onto =
      engine_->ontology_snapshot();
  if (stats.added_concepts == 0 && stats.added_edges == 0) {
    // Retire-only: the DAG — and so every Ddc — is unchanged; the
    // sidecar keeps serving as-is under the bumped version.
    ta_ontology_version_.store(onto->version(), std::memory_order_relaxed);
    return;
  }
  TaSidecar next;
  next.ontology = onto;
  next.corpus = std::make_unique<corpus::Corpus>(*options_.ta_corpus);
  next.corpus->RebindOntology(onto->dag());
  if (stats.readdressed_existing == 0 &&
      onto->dag().num_concepts() >= base->num_concepts()) {
    // Distance-preserving step: every pre-existing list is provably
    // unchanged, so splice it and derive only the new concepts' blocks
    // from the parent recurrence. No corpus sweep, no BFS.
    next.postings = std::make_unique<index::BlockPostings>(
        index::BlockPostings::BuildEvolved(*base, onto->dag()));
    ta_rebuilds_incremental_.fetch_add(1, std::memory_order_relaxed);
  } else {
    index::BlockPostingsOptions build_options;
    build_options.block_size = base->block_size();
    next.postings = std::make_unique<index::BlockPostings>(*next.corpus,
                                                           build_options);
    ta_rebuilds_full_.fetch_add(1, std::memory_order_relaxed);
  }
  core::TaRankerOptions ta_options;
  ta_options.num_threads = 1;
  ta_ranker_ = std::make_unique<core::TaRanker>(*next.corpus, *next.postings,
                                                ta_options);
  ta_postings_current_.store(next.postings.get(), std::memory_order_release);
  ta_ontology_version_.store(onto->version(), std::memory_order_relaxed);
  ta_evolved_.push_back(std::move(next));
}

std::string Server::HandleSearch(const Job& job, bool* keep_alive) {
  const auto start = Clock::now();
  queue_wait_.Record(Seconds(start - job.arrival));

  const auto fail = [&](int status, std::string_view code,
                        std::string_view message) {
    if (status == 429) {
      shed_engine_.fetch_add(1, std::memory_order_relaxed);
    } else if (status == 504) {
      deadline_hits_.fetch_add(1, std::memory_order_relaxed);
    } else if (status >= 500) {
      internal_errors_.fetch_add(1, std::memory_order_relaxed);
    } else {
      bad_requests_.fetch_add(1, std::memory_order_relaxed);
    }
    return SerializeResponse(status, "application/json",
                             ErrorBody(status, code, message), *keep_alive);
  };

  json::ParseLimits parse_limits;
  auto parsed = json::Parse(job.request.body, parse_limits);
  if (!parsed.ok()) {
    return fail(400, "INVALID_ARGUMENT", parsed.status().message());
  }
  if (!parsed->is_object()) {
    return fail(400, "INVALID_ARGUMENT", "request body must be an object");
  }

  // Field extraction + validation.
  std::vector<ontology::ConceptId> concepts;
  const json::Value* concepts_field = parsed->Find("concepts");
  if (concepts_field != nullptr) {
    if (!concepts_field->is_array() || concepts_field->array.empty()) {
      return fail(400, "INVALID_ARGUMENT",
                  "'concepts' must be a non-empty array of concept ids");
    }
    concepts.reserve(concepts_field->array.size());
    for (const json::Value& element : concepts_field->array) {
      std::uint64_t id = 0;
      if (!AsIndex(element, 0xFFFFFFFFull, &id) ||
          !engine_->ontology().Contains(
              static_cast<ontology::ConceptId>(id))) {
        return fail(400, "INVALID_ARGUMENT", "unknown concept id");
      }
      concepts.push_back(static_cast<ontology::ConceptId>(id));
    }
  }
  const json::Value* doc_field = parsed->Find("doc");
  std::uint64_t doc_id = 0;
  if (doc_field != nullptr &&
      !AsIndex(*doc_field, 0xFFFFFFFFull, &doc_id)) {
    return fail(400, "INVALID_ARGUMENT", "'doc' must be a document id");
  }
  if ((doc_field != nullptr) == !concepts.empty()) {
    return fail(400, "INVALID_ARGUMENT",
                "pass exactly one of 'concepts' (RDS / SDS by concepts) "
                "or 'doc' (SDS by document id)");
  }

  std::uint64_t k = 10;
  if (const json::Value* k_field = parsed->Find("k")) {
    if (!AsIndex(*k_field, options_.max_k, &k) || k == 0) {
      return fail(400, "INVALID_ARGUMENT",
                  "'k' must be an integer in [1, " +
                      std::to_string(options_.max_k) + "]");
    }
  }

  core::SearchControl control;
  if (const json::Value* eps_field = parsed->Find("eps_theta")) {
    if (!eps_field->is_number() || !(eps_field->number >= 0.0) ||
        eps_field->number > 1.0) {
      return fail(400, "INVALID_ARGUMENT", "'eps_theta' must be in [0, 1]");
    }
    control.error_threshold = eps_field->number;
  }

  bool sds_by_concepts = false;
  if (const json::Value* mode_field = parsed->Find("mode")) {
    if (!mode_field->is_string() ||
        (mode_field->string != "rds" && mode_field->string != "sds")) {
      return fail(400, "INVALID_ARGUMENT", "'mode' must be 'rds' or 'sds'");
    }
    if (mode_field->string == "sds") sds_by_concepts = !concepts.empty();
    if (mode_field->string == "rds" && concepts.empty()) {
      return fail(400, "INVALID_ARGUMENT", "'rds' mode needs 'concepts'");
    }
  }

  bool use_ta = false;
  if (const json::Value* ranker_field = parsed->Find("ranker")) {
    if (!ranker_field->is_string() || (ranker_field->string != "engine" &&
                                       ranker_field->string != "ta")) {
      return fail(400, "INVALID_ARGUMENT", "'ranker' must be 'engine' or 'ta'");
    }
    use_ta = ranker_field->string == "ta";
    // The atomic, not ta_ranker_: the ranker is replaced under
    // ta_mutex_ on ontology evolution and must not be read bare here.
    if (use_ta &&
        ta_postings_current_.load(std::memory_order_acquire) == nullptr) {
      return fail(400, "FAILED_PRECONDITION",
                  "no block-postings sidecar configured (--ta_postings)");
    }
    if (use_ta && (concepts.empty() || sds_by_concepts)) {
      return fail(400, "INVALID_ARGUMENT",
                  "'ta' serves RDS only: pass 'concepts' without mode 'sds'");
    }
  }

  double budget_seconds = options_.default_deadline_seconds;
  if (const json::Value* deadline_field = parsed->Find("deadline_ms")) {
    if (!deadline_field->is_number() || !(deadline_field->number > 0.0)) {
      return fail(400, "INVALID_ARGUMENT",
                  "'deadline_ms' must be a positive number");
    }
    budget_seconds = deadline_field->number / 1e3;
  }
  if (budget_seconds > 0.0) {
    budget_seconds = std::min(budget_seconds, options_.max_deadline_seconds);
    // Budgets count from dispatch, so queue wait already burned part of
    // this one; an over-deadline request is shed without a search.
    control.deadline = util::Deadline::At(
        job.arrival + std::chrono::duration_cast<Clock::duration>(
                          std::chrono::duration<double>(budget_seconds)));
    if (control.deadline.Expired()) {
      return fail(504, "DEADLINE_EXCEEDED",
                  "deadline expired before the search started");
    }
  }

  core::KndsStats search_stats;
  control.stats_out = &search_stats;
  const std::uint32_t want_k = static_cast<std::uint32_t>(k);
  std::uint64_t generation = 0;
  util::StatusOr<std::vector<core::ScoredDocument>> result =
      std::vector<core::ScoredDocument>{};
  if (use_ta) {
    // Exact top-k off the compressed sidecar; eps_theta does not apply
    // (there is no error to trade away) and the deadline was enforced
    // at dispatch above — TaRanker's cooperative cancellation is not
    // re-wired per request here.
    {
      std::lock_guard<std::mutex> lock(ta_mutex_);
      result = ta_ranker_->TopKRelevant(concepts, want_k);
      if (result.ok()) {
        const core::TaRanker::Stats& ta = ta_ranker_->last_stats();
        search_stats.truncated = ta.truncated;
        ta_searches_.fetch_add(1, std::memory_order_relaxed);
        ta_decoded_blocks_.fetch_add(ta.decoded_blocks,
                                     std::memory_order_relaxed);
        ta_skipped_blocks_.fetch_add(ta.skipped_blocks,
                                     std::memory_order_relaxed);
      }
    }
    generation = options_.ta_generation;
  } else {
    result = doc_field != nullptr
                 ? engine_->FindSimilar(static_cast<corpus::DocId>(doc_id),
                                        want_k, control)
                 : sds_by_concepts
                       ? engine_->FindSimilarToConcepts(concepts, want_k,
                                                        control)
                       : engine_->FindRelevant(concepts, want_k, control);
    generation = engine_->snapshot_stats().generation;
  }
  if (!result.ok()) {
    const util::StatusCode code = result.status().code();
    return fail(HttpStatusForCode(code), util::StatusCodeName(code),
                result.status().message());
  }

  std::string body = "{\"results\":[";
  bool first = true;
  for (const core::ScoredDocument& scored : *result) {
    if (!first) body += ',';
    first = false;
    body += "{\"id\":";
    body += std::to_string(scored.id);
    body += ",\"distance\":";
    json::AppendDouble(&body, scored.distance);
    body += ",\"error_bound\":";
    json::AppendDouble(&body, scored.error_bound);
    body += '}';
  }
  body += "],\"truncated\":";
  body += search_stats.truncated ? "true" : "false";
  body += ",\"generation\":";
  body += std::to_string(generation);
  body += '}';

  responses_ok_.fetch_add(1, std::memory_order_relaxed);
  latency_.Record(Seconds(Clock::now() - job.arrival));
  return SerializeResponse(200, "application/json", body, *keep_alive);
}

// ---------------------------------------------------------------------------
// Observability endpoints

std::string Server::StatusJson() const {
  const ServerStats server = stats();
  const core::SnapshotStats snapshot = engine_->snapshot_stats();
  const core::AdmissionStats admission = engine_->admission_stats();
  const util::CacheCounters ddq = engine_->ddq_memo_counters();
  const util::CacheCounters pair = engine_->concept_pair_counters();
  const core::DurabilityStats durability = engine_->durability_stats();

  std::string out = "{\"server\":{";
  AppendCounter(&out, "connections_accepted", server.connections_accepted);
  out += ',';
  AppendCounter(&out, "connections_closed", server.connections_closed);
  out += ',';
  AppendCounter(&out, "connections_rejected", server.connections_rejected);
  out += ',';
  AppendCounter(&out, "active_connections", server.active_connections);
  out += ',';
  AppendCounter(&out, "requests_received", server.requests_received);
  out += ',';
  AppendCounter(&out, "responses_ok", server.responses_ok);
  out += ',';
  AppendCounter(&out, "shed_queue_full", server.shed_queue_full);
  out += ',';
  AppendCounter(&out, "shed_engine", server.shed_engine);
  out += ',';
  AppendCounter(&out, "deadline_hits", server.deadline_hits);
  out += ',';
  AppendCounter(&out, "parse_errors", server.parse_errors);
  out += ',';
  AppendCounter(&out, "bad_requests", server.bad_requests);
  out += ',';
  AppendCounter(&out, "internal_errors", server.internal_errors);
  out += ',';
  AppendCounter(&out, "queue_depth", server.queue_depth);
  out += "},\"admission\":{";
  AppendCounter(&out, "admitted", admission.admitted);
  out += ',';
  AppendCounter(&out, "rejected", admission.rejected);
  out += ',';
  AppendCounter(&out, "abandoned", admission.abandoned);
  out += ',';
  AppendCounter(&out, "in_flight", admission.in_flight);
  out += ',';
  AppendCounter(&out, "queued", admission.queued);
  out += "},\"snapshot\":{";
  AppendCounter(&out, "generation", snapshot.generation);
  out += ',';
  AppendCounter(&out, "published", snapshot.published);
  out += ',';
  AppendCounter(&out, "acquires", snapshot.acquires);
  out += ',';
  AppendCounter(&out, "retired_live", snapshot.retired_live);
  out += ',';
  AppendCounter(&out, "index_shards", snapshot.index_shards);
  out += ',';
  AppendCounter(&out, "pending_documents", snapshot.pending_documents);
  out += ',';
  AppendCounter(&out, "tombstones", snapshot.tombstones);
  out += "},\"durability\":{\"enabled\":";
  out += durability.enabled ? "true" : "false";
  if (durability.enabled) {
    out += ',';
    AppendCounter(&out, "last_lsn", durability.store.last_lsn);
    out += ',';
    AppendCounter(&out, "durable_lsn", durability.store.durable_lsn);
    out += ',';
    AppendCounter(&out, "image_generation", durability.store.image_generation);
    out += ',';
    AppendCounter(&out, "wal_bytes", durability.store.wal_bytes);
    out += ',';
    AppendCounter(&out, "wal_syncs", durability.store.wal_syncs);
    out += ',';
    AppendCounter(&out, "checkpoints_written",
                  durability.store.checkpoints_written);
    out += ',';
    AppendCounter(&out, "records_replayed", durability.store.records_replayed);
    out += ',';
    AppendCounter(&out, "wal_tail_dropped", durability.store.wal_tail_dropped);
  }
  const core::OntologyStats onto = engine_->ontology_stats();
  out += "},\"ontology\":{";
  AppendCounter(&out, "version", onto.version);
  out += ',';
  AppendCounter(&out, "num_concepts", onto.num_concepts);
  out += ',';
  AppendCounter(&out, "num_retired", onto.num_retired);
  out += ',';
  AppendCounter(&out, "evolutions", onto.evolutions);
  out += ',';
  AppendCounter(&out, "mutations_applied", onto.mutations_applied);
  out += ',';
  AppendCounter(&out, "readdressed_total", onto.readdressed_total);
  out += ',';
  AppendCounter(&out, "reused_total", onto.reused_total);
  out += ',';
  AppendCounter(&out, "pair_entries_invalidated",
                onto.pair_entries_invalidated);
  out += ',';
  AppendHexHash(&out, "identity_hash", onto.identity_hash);
  out += ',';
  AppendHexHash(&out, "structural_hash", onto.structural_hash);
  out += ',';
  AppendHexHash(&out, "baseline_hash", onto.baseline_hash);
  // The current sidecar pointer, loaded once: the pointee is never
  // freed before Stop(), so this lock-free read on the event loop is
  // safe across concurrent evolutions.
  const index::BlockPostings* ta =
      ta_postings_current_.load(std::memory_order_acquire);
  out += "},\"postings\":{\"enabled\":";
  out += ta != nullptr ? "true" : "false";
  if (ta != nullptr) {
    const index::BlockPostings& postings = *ta;
    out += ',';
    AppendCounter(&out, "memory_bytes", postings.memory_bytes());
    out += ',';
    AppendCounter(&out, "arena_bytes", postings.arena_bytes());
    out += ',';
    AppendCounter(&out, "metadata_bytes", postings.metadata_bytes());
    out += ",\"bytes_per_doc\":";
    json::AppendDouble(&out, postings.bytes_per_doc());
    out += ',';
    AppendCounter(&out, "block_size", postings.block_size());
    out += ',';
    AppendCounter(&out, "num_blocks", postings.num_blocks());
    out += ',';
    AppendCounter(&out, "num_documents", postings.num_documents());
    out += ',';
    AppendCounter(&out, "generation", options_.ta_generation);
    out += ',';
    AppendCounter(&out, "ontology_version",
                  ta_ontology_version_.load(std::memory_order_relaxed));
    out += ',';
    AppendCounter(&out, "rebuilds_incremental",
                  ta_rebuilds_incremental_.load(std::memory_order_relaxed));
    out += ',';
    AppendCounter(&out, "rebuilds_full",
                  ta_rebuilds_full_.load(std::memory_order_relaxed));
    out += ',';
    AppendCounter(&out, "ta_searches",
                  ta_searches_.load(std::memory_order_relaxed));
    out += ',';
    AppendCounter(&out, "decoded_blocks",
                  ta_decoded_blocks_.load(std::memory_order_relaxed));
    out += ',';
    AppendCounter(&out, "skipped_blocks",
                  ta_skipped_blocks_.load(std::memory_order_relaxed));
  }
  out += "},\"caches\":{\"ddq_memo\":{";
  AppendCounter(&out, "hits", ddq.hits);
  out += ',';
  AppendCounter(&out, "misses", ddq.misses);
  out += ",\"hit_rate\":";
  json::AppendDouble(&out, ddq.hit_rate());
  out += "},\"concept_pair\":{";
  AppendCounter(&out, "hits", pair.hits);
  out += ',';
  AppendCounter(&out, "misses", pair.misses);
  out += ",\"hit_rate\":";
  json::AppendDouble(&out, pair.hit_rate());
  out += "}},\"latency\":{";
  AppendCounter(&out, "count", latency_.TotalCount());
  out += ",\"p50_s\":";
  json::AppendDouble(&out, latency_.Quantile(0.50));
  out += ",\"p95_s\":";
  json::AppendDouble(&out, latency_.Quantile(0.95));
  out += ",\"p99_s\":";
  json::AppendDouble(&out, latency_.Quantile(0.99));
  out += "}}";
  return out;
}

std::string Server::MetricsText() const {
  const ServerStats server = stats();
  const core::SnapshotStats snapshot = engine_->snapshot_stats();
  const core::AdmissionStats admission = engine_->admission_stats();
  const util::CacheCounters ddq = engine_->ddq_memo_counters();
  const util::CacheCounters pair = engine_->concept_pair_counters();
  const core::DurabilityStats durability = engine_->durability_stats();

  std::string out;
  out.reserve(4096);
  const auto counter = [&out](std::string_view name, std::string_view labels,
                              double value) {
    out += name;
    if (!labels.empty()) {
      out += '{';
      out += labels;
      out += '}';
    }
    out += ' ';
    json::AppendDouble(&out, value);
    out += '\n';
  };

  out += "# TYPE ecdr_request_latency_seconds histogram\n";
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < latency_.num_buckets(); ++i) {
    cumulative += latency_.bucket_count(i);
    out += "ecdr_request_latency_seconds_bucket{le=\"";
    if (i + 1 == latency_.num_buckets()) {
      out += "+Inf";
    } else {
      json::AppendDouble(&out, latency_.bucket_upper(i));
    }
    out += "\"} ";
    out += std::to_string(cumulative);
    out += '\n';
  }
  out += "ecdr_request_latency_seconds_sum ";
  json::AppendDouble(&out, latency_.Sum());
  out += "\necdr_request_latency_seconds_count ";
  out += std::to_string(latency_.TotalCount());
  out += '\n';

  out += "# TYPE ecdr_requests_total counter\n";
  counter("ecdr_requests_total", "outcome=\"ok\"",
          static_cast<double>(server.responses_ok));
  counter("ecdr_requests_total", "outcome=\"shed_queue_full\"",
          static_cast<double>(server.shed_queue_full));
  counter("ecdr_requests_total", "outcome=\"shed_engine\"",
          static_cast<double>(server.shed_engine));
  counter("ecdr_requests_total", "outcome=\"deadline\"",
          static_cast<double>(server.deadline_hits));
  counter("ecdr_requests_total", "outcome=\"parse_error\"",
          static_cast<double>(server.parse_errors));
  counter("ecdr_requests_total", "outcome=\"bad_request\"",
          static_cast<double>(server.bad_requests));
  counter("ecdr_requests_total", "outcome=\"internal_error\"",
          static_cast<double>(server.internal_errors));

  out += "# TYPE ecdr_admission_total counter\n";
  counter("ecdr_admission_total", "event=\"admitted\"",
          static_cast<double>(admission.admitted));
  counter("ecdr_admission_total", "event=\"rejected\"",
          static_cast<double>(admission.rejected));
  counter("ecdr_admission_total", "event=\"abandoned\"",
          static_cast<double>(admission.abandoned));
  out += "# TYPE ecdr_admission_in_flight gauge\n";
  counter("ecdr_admission_in_flight", "",
          static_cast<double>(admission.in_flight));
  out += "# TYPE ecdr_admission_queued gauge\n";
  counter("ecdr_admission_queued", "",
          static_cast<double>(admission.queued));

  out += "# TYPE ecdr_snapshot_generation gauge\n";
  counter("ecdr_snapshot_generation", "",
          static_cast<double>(snapshot.generation));
  out += "# TYPE ecdr_snapshot_pending_documents gauge\n";
  counter("ecdr_snapshot_pending_documents", "",
          static_cast<double>(snapshot.pending_documents));
  out += "# TYPE ecdr_snapshot_tombstones gauge\n";
  counter("ecdr_snapshot_tombstones", "",
          static_cast<double>(snapshot.tombstones));

  const core::OntologyStats onto = engine_->ontology_stats();
  out += "# TYPE ecdr_ontology_version gauge\n";
  counter("ecdr_ontology_version", "", static_cast<double>(onto.version));
  out += "# TYPE ecdr_ontology_concepts gauge\n";
  counter("ecdr_ontology_concepts", "state=\"total\"",
          static_cast<double>(onto.num_concepts));
  counter("ecdr_ontology_concepts", "state=\"retired\"",
          static_cast<double>(onto.num_retired));
  out += "# TYPE ecdr_ontology_evolutions_total counter\n";
  counter("ecdr_ontology_evolutions_total", "",
          static_cast<double>(onto.evolutions));
  out += "# TYPE ecdr_ontology_mutations_total counter\n";
  counter("ecdr_ontology_mutations_total", "",
          static_cast<double>(onto.mutations_applied));
  out += "# TYPE ecdr_ontology_concepts_enumerated_total counter\n";
  counter("ecdr_ontology_concepts_enumerated_total", "event=\"readdressed\"",
          static_cast<double>(onto.readdressed_total));
  counter("ecdr_ontology_concepts_enumerated_total", "event=\"reused\"",
          static_cast<double>(onto.reused_total));
  out += "# TYPE ecdr_ontology_pair_entries_invalidated_total counter\n";
  counter("ecdr_ontology_pair_entries_invalidated_total", "",
          static_cast<double>(onto.pair_entries_invalidated));
  // Info-style gauge: the hashes ride as labels (they do not fit a
  // float sample), the value is a constant 1.
  out += "# TYPE ecdr_ontology_info gauge\n";
  out += "ecdr_ontology_info{identity_hash=\"";
  out += HexHash(onto.identity_hash);
  out += "\",structural_hash=\"";
  out += HexHash(onto.structural_hash);
  out += "\",baseline_hash=\"";
  out += HexHash(onto.baseline_hash);
  out += "\"} 1\n";

  const index::BlockPostings* ta =
      ta_postings_current_.load(std::memory_order_acquire);
  if (ta != nullptr) {
    const index::BlockPostings& postings = *ta;
    out += "# TYPE ecdr_postings_memory_bytes gauge\n";
    counter("ecdr_postings_memory_bytes", "part=\"arena\"",
            static_cast<double>(postings.arena_bytes()));
    counter("ecdr_postings_memory_bytes", "part=\"metadata\"",
            static_cast<double>(postings.metadata_bytes()));
    out += "# TYPE ecdr_postings_bytes_per_doc gauge\n";
    counter("ecdr_postings_bytes_per_doc", "", postings.bytes_per_doc());
    out += "# TYPE ecdr_postings_ontology_version gauge\n";
    counter("ecdr_postings_ontology_version", "",
            static_cast<double>(
                ta_ontology_version_.load(std::memory_order_relaxed)));
    out += "# TYPE ecdr_postings_rebuilds_total counter\n";
    counter("ecdr_postings_rebuilds_total", "mode=\"incremental\"",
            static_cast<double>(
                ta_rebuilds_incremental_.load(std::memory_order_relaxed)));
    counter("ecdr_postings_rebuilds_total", "mode=\"full\"",
            static_cast<double>(
                ta_rebuilds_full_.load(std::memory_order_relaxed)));
    out += "# TYPE ecdr_ta_searches_total counter\n";
    counter("ecdr_ta_searches_total", "",
            static_cast<double>(ta_searches_.load(std::memory_order_relaxed)));
    out += "# TYPE ecdr_postings_blocks_total counter\n";
    counter("ecdr_postings_blocks_total", "event=\"decoded\"",
            static_cast<double>(
                ta_decoded_blocks_.load(std::memory_order_relaxed)));
    counter("ecdr_postings_blocks_total", "event=\"skipped\"",
            static_cast<double>(
                ta_skipped_blocks_.load(std::memory_order_relaxed)));
  }
  out += "# TYPE ecdr_cache_events_total counter\n";
  counter("ecdr_cache_events_total", "cache=\"ddq_memo\",event=\"hit\"",
          static_cast<double>(ddq.hits));
  counter("ecdr_cache_events_total", "cache=\"ddq_memo\",event=\"miss\"",
          static_cast<double>(ddq.misses));
  counter("ecdr_cache_events_total", "cache=\"concept_pair\",event=\"hit\"",
          static_cast<double>(pair.hits));
  counter("ecdr_cache_events_total", "cache=\"concept_pair\",event=\"miss\"",
          static_cast<double>(pair.misses));
  out += "# TYPE ecdr_cache_hit_rate gauge\n";
  counter("ecdr_cache_hit_rate", "cache=\"ddq_memo\"", ddq.hit_rate());
  counter("ecdr_cache_hit_rate", "cache=\"concept_pair\"", pair.hit_rate());
  if (durability.enabled) {
    out += "# TYPE ecdr_wal_durable_lsn gauge\n";
    counter("ecdr_wal_durable_lsn", "",
            static_cast<double>(durability.store.durable_lsn));
    out += "# TYPE ecdr_wal_bytes gauge\n";
    counter("ecdr_wal_bytes", "",
            static_cast<double>(durability.store.wal_bytes));
    out += "# TYPE ecdr_wal_syncs_total counter\n";
    counter("ecdr_wal_syncs_total", "",
            static_cast<double>(durability.store.wal_syncs));
    out += "# TYPE ecdr_checkpoints_written_total counter\n";
    counter("ecdr_checkpoints_written_total", "",
            static_cast<double>(durability.store.checkpoints_written));
  }
  out += "# TYPE ecdr_connections_active gauge\n";
  counter("ecdr_connections_active", "",
          static_cast<double>(server.active_connections));
  out += "# TYPE ecdr_queue_depth gauge\n";
  counter("ecdr_queue_depth", "",
          static_cast<double>(server.queue_depth));
  return out;
}

}  // namespace ecdr::serve
