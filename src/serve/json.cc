#include "serve/json.h"

#include <charconv>
#include <cctype>
#include <cstdio>
#include <limits>

namespace ecdr::serve::json {
namespace {

using util::InvalidArgumentError;
using util::StatusOr;

class Parser {
 public:
  Parser(std::string_view text, ParseLimits limits)
      : pos_(text.data()), end_(text.data() + text.size()), limits_(limits) {}

  StatusOr<Value> ParseDocument() {
    StatusOr<Value> value = ParseValue(0);
    if (!value.ok()) return value;
    SkipWhitespace();
    if (pos_ != end_) {
      return InvalidArgumentError("trailing bytes after JSON document");
    }
    return value;
  }

 private:
  void SkipWhitespace() {
    while (pos_ != end_ && (*pos_ == ' ' || *pos_ == '\t' || *pos_ == '\n' ||
                            *pos_ == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ != end_ && *pos_ == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  StatusOr<Value> ParseValue(std::size_t depth) {
    if (depth > limits_.max_depth) {
      return InvalidArgumentError("JSON nested deeper than " +
                                  std::to_string(limits_.max_depth));
    }
    if (++elements_ > limits_.max_elements) {
      return InvalidArgumentError("JSON document exceeds " +
                                  std::to_string(limits_.max_elements) +
                                  " values");
    }
    SkipWhitespace();
    if (pos_ == end_) return InvalidArgumentError("unexpected end of JSON");
    switch (*pos_) {
      case '{':
        return ParseObject(depth);
      case '[':
        return ParseArray(depth);
      case '"':
        return ParseString();
      case 't':
        return ParseLiteral("true", [] {
          Value v;
          v.type = Value::Type::kBool;
          v.boolean = true;
          return v;
        }());
      case 'f':
        return ParseLiteral("false", [] {
          Value v;
          v.type = Value::Type::kBool;
          v.boolean = false;
          return v;
        }());
      case 'n':
        return ParseLiteral("null", Value{});
      default:
        return ParseNumber();
    }
  }

  StatusOr<Value> ParseLiteral(std::string_view word, Value value) {
    if (static_cast<std::size_t>(end_ - pos_) < word.size() ||
        std::string_view(pos_, word.size()) != word) {
      return InvalidArgumentError("malformed JSON literal");
    }
    pos_ += word.size();
    return value;
  }

  StatusOr<Value> ParseObject(std::size_t depth) {
    ++pos_;  // '{'
    Value value;
    value.type = Value::Type::kObject;
    SkipWhitespace();
    if (Consume('}')) return value;
    while (true) {
      SkipWhitespace();
      if (pos_ == end_ || *pos_ != '"') {
        return InvalidArgumentError("object member name must be a string");
      }
      StatusOr<Value> key = ParseString();
      if (!key.ok()) return key;
      SkipWhitespace();
      if (!Consume(':')) {
        return InvalidArgumentError("expected ':' after object member name");
      }
      StatusOr<Value> member = ParseValue(depth + 1);
      if (!member.ok()) return member;
      value.object.emplace_back(std::move(key->string),
                                *std::move(member));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) return value;
      return InvalidArgumentError("expected ',' or '}' in object");
    }
  }

  StatusOr<Value> ParseArray(std::size_t depth) {
    ++pos_;  // '['
    Value value;
    value.type = Value::Type::kArray;
    SkipWhitespace();
    if (Consume(']')) return value;
    while (true) {
      StatusOr<Value> element = ParseValue(depth + 1);
      if (!element.ok()) return element;
      value.array.push_back(*std::move(element));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) return value;
      return InvalidArgumentError("expected ',' or ']' in array");
    }
  }

  /// One 4-digit hex escape payload; -1 on error.
  int ParseHex4() {
    if (end_ - pos_ < 4) return -1;
    int value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = *pos_++;
      int digit;
      if (c >= '0' && c <= '9') {
        digit = c - '0';
      } else if (c >= 'a' && c <= 'f') {
        digit = c - 'a' + 10;
      } else if (c >= 'A' && c <= 'F') {
        digit = c - 'A' + 10;
      } else {
        return -1;
      }
      value = value * 16 + digit;
    }
    return value;
  }

  static void AppendUtf8(std::string* out, std::uint32_t cp) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xc0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3f)));
    } else if (cp < 0x10000) {
      out->push_back(static_cast<char>(0xe0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3f)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3f)));
    } else {
      out->push_back(static_cast<char>(0xf0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3f)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3f)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3f)));
    }
  }

  StatusOr<Value> ParseString() {
    ++pos_;  // '"'
    Value value;
    value.type = Value::Type::kString;
    while (true) {
      if (pos_ == end_) return InvalidArgumentError("unterminated string");
      const unsigned char c = static_cast<unsigned char>(*pos_);
      if (c == '"') {
        ++pos_;
        return value;
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ == end_) return InvalidArgumentError("unterminated escape");
        const char escape = *pos_++;
        switch (escape) {
          case '"': value.string.push_back('"'); break;
          case '\\': value.string.push_back('\\'); break;
          case '/': value.string.push_back('/'); break;
          case 'b': value.string.push_back('\b'); break;
          case 'f': value.string.push_back('\f'); break;
          case 'n': value.string.push_back('\n'); break;
          case 'r': value.string.push_back('\r'); break;
          case 't': value.string.push_back('\t'); break;
          case 'u': {
            const int unit = ParseHex4();
            if (unit < 0) return InvalidArgumentError("malformed \\u escape");
            std::uint32_t cp = static_cast<std::uint32_t>(unit);
            if (cp >= 0xd800 && cp <= 0xdbff) {
              // High surrogate: a low surrogate escape must follow.
              if (end_ - pos_ < 2 || pos_[0] != '\\' || pos_[1] != 'u') {
                return InvalidArgumentError("lone high surrogate");
              }
              pos_ += 2;
              const int low = ParseHex4();
              if (low < 0xdc00 || low > 0xdfff) {
                return InvalidArgumentError("invalid low surrogate");
              }
              cp = 0x10000 + ((cp - 0xd800) << 10) +
                   (static_cast<std::uint32_t>(low) - 0xdc00);
            } else if (cp >= 0xdc00 && cp <= 0xdfff) {
              return InvalidArgumentError("lone low surrogate");
            }
            AppendUtf8(&value.string, cp);
            break;
          }
          default:
            return InvalidArgumentError("unknown string escape");
        }
        continue;
      }
      if (c < 0x20) {
        return InvalidArgumentError("unescaped control byte in string");
      }
      if (c < 0x80) {
        value.string.push_back(static_cast<char>(c));
        ++pos_;
        continue;
      }
      // Raw multi-byte sequence: decode strictly so overlongs,
      // surrogates and five-byte forms are caught here, not downstream.
      int extra;
      std::uint32_t cp;
      if ((c & 0xe0) == 0xc0) {
        extra = 1;
        cp = c & 0x1f;
      } else if ((c & 0xf0) == 0xe0) {
        extra = 2;
        cp = c & 0x0f;
      } else if ((c & 0xf8) == 0xf0) {
        extra = 3;
        cp = c & 0x07;
      } else {
        return InvalidArgumentError("invalid UTF-8 lead byte in string");
      }
      if (end_ - pos_ < extra + 1) {
        return InvalidArgumentError("truncated UTF-8 sequence in string");
      }
      for (int i = 1; i <= extra; ++i) {
        const unsigned char follow = static_cast<unsigned char>(pos_[i]);
        if ((follow & 0xc0) != 0x80) {
          return InvalidArgumentError("invalid UTF-8 continuation byte");
        }
        cp = (cp << 6) | (follow & 0x3f);
      }
      const std::uint32_t min_cp[4] = {0, 0x80, 0x800, 0x10000};
      if (cp < min_cp[extra] || cp > 0x10ffff ||
          (cp >= 0xd800 && cp <= 0xdfff)) {
        return InvalidArgumentError("invalid UTF-8 code point in string");
      }
      value.string.append(pos_, static_cast<std::size_t>(extra) + 1);
      pos_ += extra + 1;
    }
  }

  StatusOr<Value> ParseNumber() {
    const char* start = pos_;
    // Validate the RFC 8259 grammar first — from_chars is laxer (it
    // accepts "007", leading '+', hex-float forms the JSON ABNF bans).
    if (pos_ != end_ && *pos_ == '-') ++pos_;
    if (pos_ == end_ ||
        !std::isdigit(static_cast<unsigned char>(*pos_))) {
      return InvalidArgumentError("malformed JSON number");
    }
    if (*pos_ == '0') {
      ++pos_;
    } else {
      while (pos_ != end_ && std::isdigit(static_cast<unsigned char>(*pos_)))
        ++pos_;
    }
    if (pos_ != end_ && *pos_ == '.') {
      ++pos_;
      if (pos_ == end_ || !std::isdigit(static_cast<unsigned char>(*pos_))) {
        return InvalidArgumentError("digits required after decimal point");
      }
      while (pos_ != end_ && std::isdigit(static_cast<unsigned char>(*pos_)))
        ++pos_;
    }
    if (pos_ != end_ && (*pos_ == 'e' || *pos_ == 'E')) {
      ++pos_;
      if (pos_ != end_ && (*pos_ == '+' || *pos_ == '-')) ++pos_;
      if (pos_ == end_ || !std::isdigit(static_cast<unsigned char>(*pos_))) {
        return InvalidArgumentError("digits required in exponent");
      }
      while (pos_ != end_ && std::isdigit(static_cast<unsigned char>(*pos_)))
        ++pos_;
    }
    Value value;
    value.type = Value::Type::kNumber;
    const auto [ptr, ec] =
        std::from_chars(start, pos_, value.number);
    if (ec == std::errc::result_out_of_range) {
      return InvalidArgumentError("JSON number outside double range: " +
                                  std::string(start, pos_));
    }
    if (ec != std::errc() || ptr != pos_) {
      return InvalidArgumentError("unparseable JSON number");
    }
    return value;
  }

  const char* pos_;
  const char* end_;
  ParseLimits limits_;
  std::size_t elements_ = 0;
};

}  // namespace

const Value* Value::Find(std::string_view key) const {
  for (const auto& [name, value] : object) {
    if (name == key) return &value;
  }
  return nullptr;
}

util::StatusOr<Value> Parse(std::string_view text, ParseLimits limits) {
  return Parser(text, limits).ParseDocument();
}

void AppendDouble(std::string* out, double value) {
  if (!(value == value) || value == std::numeric_limits<double>::infinity() ||
      value == -std::numeric_limits<double>::infinity()) {
    out->append("null");
    return;
  }
  char buffer[32];
  // Shortest round-trip form: strtod/from_chars of this text yields the
  // identical bits, which the serve differential test depends on.
  const auto result = std::to_chars(buffer, buffer + sizeof(buffer), value);
  out->append(buffer, result.ptr);
}

void AppendQuoted(std::string* out, std::string_view text) {
  out->push_back('"');
  for (const char c : text) {
    switch (c) {
      case '"': out->append("\\\""); break;
      case '\\': out->append("\\\\"); break;
      case '\b': out->append("\\b"); break;
      case '\f': out->append("\\f"); break;
      case '\n': out->append("\\n"); break;
      case '\r': out->append("\\r"); break;
      case '\t': out->append("\\t"); break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char escape[8];
          std::snprintf(escape, sizeof(escape), "\\u%04x",
                        static_cast<unsigned>(c));
          out->append(escape);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

bool IsValidUtf8(std::string_view text) {
  std::size_t i = 0;
  while (i < text.size()) {
    const unsigned char c = static_cast<unsigned char>(text[i]);
    if (c < 0x80) {
      ++i;
      continue;
    }
    int extra;
    std::uint32_t cp;
    if ((c & 0xe0) == 0xc0) {
      extra = 1;
      cp = c & 0x1f;
    } else if ((c & 0xf0) == 0xe0) {
      extra = 2;
      cp = c & 0x0f;
    } else if ((c & 0xf8) == 0xf0) {
      extra = 3;
      cp = c & 0x07;
    } else {
      return false;
    }
    if (i + extra >= text.size()) return false;
    for (int k = 1; k <= extra; ++k) {
      const unsigned char follow = static_cast<unsigned char>(text[i + k]);
      if ((follow & 0xc0) != 0x80) return false;
      cp = (cp << 6) | (follow & 0x3f);
    }
    static constexpr std::uint32_t kMin[4] = {0, 0x80, 0x800, 0x10000};
    if (cp < kMin[extra] || cp > 0x10ffff ||
        (cp >= 0xd800 && cp <= 0xdfff)) {
      return false;
    }
    i += static_cast<std::size_t>(extra) + 1;
  }
  return true;
}

}  // namespace ecdr::serve::json
