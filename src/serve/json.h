// Minimal JSON for the serving path — strict RFC 8259 parsing plus a
// writer whose doubles round-trip bit-for-bit.
//
// The parser is the defensive half: depth-limited recursion, UTF-8
// validation of every string (including \uXXXX escapes and surrogate
// pairs), and numbers parsed with std::from_chars so anything outside
// double's finite range (1e999, -1e999) is rejected rather than
// silently becoming inf. Trailing garbage after the top-level value is
// an error. The writer is the exactness half: AppendDouble emits the
// shortest decimal form that parses back to the identical bits
// (std::to_chars), which is what lets the serve differential test
// demand byte-for-byte equal distances across the HTTP boundary.

#ifndef ECDR_SERVE_JSON_H_
#define ECDR_SERVE_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/status.h"

namespace ecdr::serve::json {

/// One parsed JSON value. A small open struct rather than a class —
/// request decoding reads a handful of members and the serving layer
/// never mutates a parsed tree.
struct Value {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<Value> array;
  std::vector<std::pair<std::string, Value>> object;

  bool is_null() const { return type == Type::kNull; }
  bool is_bool() const { return type == Type::kBool; }
  bool is_number() const { return type == Type::kNumber; }
  bool is_string() const { return type == Type::kString; }
  bool is_array() const { return type == Type::kArray; }
  bool is_object() const { return type == Type::kObject; }

  /// First member with `key`, or nullptr. Linear — request objects are
  /// a handful of fields.
  const Value* Find(std::string_view key) const;
};

struct ParseLimits {
  std::size_t max_depth = 64;
  /// Containers larger than this are rejected (a 1 MiB body can still
  /// declare millions of elements; this bounds the parsed tree).
  std::size_t max_elements = 1 << 20;
};

/// Parses exactly one JSON document spanning all of `text`.
util::StatusOr<Value> Parse(std::string_view text, ParseLimits limits = {});

// Writer helpers: responses are assembled directly into a string (no
// intermediate tree) on the hot path.

/// Appends `value` as the shortest decimal that round-trips exactly;
/// integral values within uint64/int64 print without an exponent.
/// Non-finite values (never produced by the engine) serialize as null.
void AppendDouble(std::string* out, double value);

/// Appends `text` as a quoted JSON string, escaping per RFC 8259.
void AppendQuoted(std::string* out, std::string_view text);

/// True when `text` is well-formed UTF-8 (no overlongs, no surrogates,
/// max U+10FFFF). Exposed for the parser torture tests.
bool IsValidUtf8(std::string_view text);

}  // namespace ecdr::serve::json

#endif  // ECDR_SERVE_JSON_H_
