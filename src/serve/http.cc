#include "serve/http.h"

#include <algorithm>
#include <cctype>
#include <cstdio>

#include "util/string_util.h"

namespace ecdr::serve {
namespace {

bool IsTokenChar(char c) {
  if (std::isalnum(static_cast<unsigned char>(c))) return true;
  switch (c) {
    case '!': case '#': case '$': case '%': case '&': case '\'': case '*':
    case '+': case '-': case '.': case '^': case '_': case '`': case '|':
    case '~':
      return true;
    default:
      return false;
  }
}

bool IsToken(std::string_view text) {
  if (text.empty()) return false;
  return std::all_of(text.begin(), text.end(), IsTokenChar);
}

// Visible ASCII — what a request-target may contain.
bool IsVisible(std::string_view text) {
  return std::all_of(text.begin(), text.end(),
                     [](char c) { return c >= 0x21 && c <= 0x7e; });
}

std::string ToLower(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::tolower(
      static_cast<unsigned char>(c)));
  return out;
}

// Client bytes echoed into an error detail: keep printable ASCII,
// hex-escape everything else so the JSON error body stays valid UTF-8
// (AppendQuoted escapes control bytes but passes >= 0x80 through).
std::string SanitizeForError(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    const unsigned char u = static_cast<unsigned char>(c);
    if (u >= 0x20 && u < 0x7f) {
      out.push_back(c);
    } else {
      char escape[8];
      std::snprintf(escape, sizeof(escape), "\\x%02x", u);
      out.append(escape);
    }
  }
  return out;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

}  // namespace

const std::string* HttpRequest::FindHeader(std::string_view name) const {
  for (const auto& [key, value] : headers) {
    if (key == name) return &value;
  }
  return nullptr;
}

bool HttpRequest::KeepAlive() const {
  if (const std::string* connection = FindHeader("connection")) {
    for (const auto piece : util::Split(*connection, ',')) {
      const std::string_view token = util::StripWhitespace(piece);
      if (EqualsIgnoreCase(token, "close")) return false;
      if (EqualsIgnoreCase(token, "keep-alive")) return true;
    }
  }
  return version_minor >= 1;
}

HttpParser::HttpParser(HttpParserLimits limits) : limits_(limits) {}

void HttpParser::Reset() {
  state_ = State::kRequestLine;
  request_ = HttpRequest{};
  line_.clear();
  header_bytes_ = 0;
  body_remaining_ = 0;
  chunked_ = false;
  error_status_ = 0;
  error_detail_.clear();
}

void HttpParser::Fail(int status, std::string detail) {
  state_ = State::kError;
  error_status_ = status;
  error_detail_ = std::move(detail);
}

std::size_t HttpParser::Feed(std::string_view input) {
  std::size_t consumed = 0;
  while (consumed < input.size() && state_ != State::kComplete &&
         state_ != State::kError) {
    // Payload states consume in bulk; everything else is line-framed.
    if (state_ == State::kBody || state_ == State::kChunkData) {
      const std::size_t take =
          std::min<std::uint64_t>(input.size() - consumed, body_remaining_);
      request_.body.append(input.data() + consumed, take);
      consumed += take;
      body_remaining_ -= take;
      if (body_remaining_ == 0) {
        state_ = state_ == State::kBody ? State::kComplete
                                        : State::kChunkDataEnd;
      }
      continue;
    }

    const char c = input[consumed++];
    if (c == '\n') {
      if (line_.empty() || line_.back() != '\r') {
        Fail(400, "bare LF line ending");
        break;
      }
      line_.pop_back();
      const std::string_view line = line_;
      switch (state_) {
        case State::kRequestLine:
          if (line.empty()) break;  // tolerate one leading blank line
          ParseRequestLine(line);
          break;
        case State::kHeaders:
          if (line.empty()) {
            FinishHeaders();
          } else {
            header_bytes_ += line.size() + 2;
            if (header_bytes_ > limits_.max_header_bytes) {
              Fail(431, "header block exceeds " +
                            std::to_string(limits_.max_header_bytes) +
                            " bytes");
            } else {
              ParseHeaderLine(line);
            }
          }
          break;
        case State::kChunkSize: {
          // "SIZE[;extension]" in hex; the last chunk has size 0.
          std::string_view size_text = line.substr(0, line.find(';'));
          size_text = util::StripWhitespace(size_text);
          if (size_text.empty() || size_text.size() > 16 ||
              !std::all_of(size_text.begin(), size_text.end(), [](char h) {
                return std::isxdigit(static_cast<unsigned char>(h));
              })) {
            Fail(400, "malformed chunk size '" + SanitizeForError(size_text) +
                          "'");
            break;
          }
          std::uint64_t size = 0;
          for (const char h : size_text) {
            size = size * 16 +
                   static_cast<std::uint64_t>(
                       std::isdigit(static_cast<unsigned char>(h))
                           ? h - '0'
                           : std::tolower(static_cast<unsigned char>(h)) -
                                 'a' + 10);
          }
          // Two-clause check: 16 hex digits can declare a size near
          // 2^64, so `body.size() + size` alone could wrap past the
          // limit after a prior non-empty chunk.
          if (size > limits_.max_body_bytes ||
              request_.body.size() + size > limits_.max_body_bytes) {
            Fail(413, "chunked body exceeds " +
                          std::to_string(limits_.max_body_bytes) + " bytes");
            break;
          }
          if (size == 0) {
            state_ = State::kTrailers;
          } else {
            body_remaining_ = size;
            state_ = State::kChunkData;
          }
          break;
        }
        case State::kChunkDataEnd:
          if (!line.empty()) {
            Fail(400, "chunk payload not followed by CRLF");
          } else {
            state_ = State::kChunkSize;
          }
          break;
        case State::kTrailers:
          header_bytes_ += line.size() + 2;
          if (header_bytes_ > limits_.max_header_bytes) {
            Fail(431, "trailer block exceeds header limit");
          } else if (line.empty()) {
            state_ = State::kComplete;
          }
          break;
        case State::kBody:
        case State::kChunkData:
        case State::kComplete:
        case State::kError:
          break;  // unreachable
      }
      line_.clear();
      continue;
    }
    if (c == '\0') {
      Fail(400, "NUL byte in protocol element");
      break;
    }
    line_.push_back(c);
    if (state_ == State::kRequestLine &&
        line_.size() > limits_.max_request_line_bytes) {
      Fail(431, "request line exceeds " +
                    std::to_string(limits_.max_request_line_bytes) +
                    " bytes");
      break;
    }
    if (line_.size() > limits_.max_header_bytes) {
      Fail(431, "line exceeds header limit");
      break;
    }
  }
  return consumed;
}

void HttpParser::ParseRequestLine(std::string_view line) {
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 =
      sp1 == std::string_view::npos ? sp1 : line.find(' ', sp1 + 1);
  if (sp2 == std::string_view::npos ||
      line.find(' ', sp2 + 1) != std::string_view::npos) {
    Fail(400, "request line is not 'METHOD TARGET VERSION'");
    return;
  }
  const std::string_view method = line.substr(0, sp1);
  const std::string_view target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::string_view version = line.substr(sp2 + 1);
  if (!IsToken(method)) {
    Fail(400, "malformed method");
    return;
  }
  if (target.empty() || target[0] != '/' || !IsVisible(target)) {
    Fail(400, "malformed request target");
    return;
  }
  if (version == "HTTP/1.1") {
    request_.version_minor = 1;
  } else if (version == "HTTP/1.0") {
    request_.version_minor = 0;
  } else {
    Fail(505, "unsupported protocol version '" + SanitizeForError(version) +
                  "'");
    return;
  }
  request_.method = std::string(method);
  request_.target = std::string(target);
  state_ = State::kHeaders;
}

void HttpParser::ParseHeaderLine(std::string_view line) {
  if (line[0] == ' ' || line[0] == '\t') {
    Fail(400, "obsolete header folding");
    return;
  }
  if (request_.headers.size() >= limits_.max_headers) {
    Fail(431, "more than " + std::to_string(limits_.max_headers) +
                  " headers");
    return;
  }
  const std::size_t colon = line.find(':');
  if (colon == std::string_view::npos || colon == 0) {
    Fail(400, "header line without name");
    return;
  }
  const std::string_view name = line.substr(0, colon);
  if (!IsToken(name)) {
    Fail(400, "malformed header name");
    return;
  }
  const std::string_view value =
      util::StripWhitespace(line.substr(colon + 1));
  // Field values are visible ASCII plus SP/HT; anything else (stray CR,
  // control bytes) is an attack surface, not data.
  for (const char c : value) {
    if ((c < 0x20 && c != '\t') || c == 0x7f) {
      Fail(400, "control byte in header value");
      return;
    }
  }
  request_.headers.emplace_back(ToLower(name), std::string(value));
}

void HttpParser::FinishHeaders() {
  const std::string* content_length = nullptr;
  const std::string* transfer_encoding = nullptr;
  for (const auto& [name, value] : request_.headers) {
    if (name == "content-length") {
      if (content_length != nullptr && *content_length != value) {
        Fail(400, "conflicting Content-Length headers");
        return;
      }
      content_length = &value;
    } else if (name == "transfer-encoding") {
      if (transfer_encoding != nullptr) {
        Fail(400, "repeated Transfer-Encoding headers");
        return;
      }
      transfer_encoding = &value;
    }
  }
  if (transfer_encoding != nullptr) {
    if (content_length != nullptr) {
      Fail(400, "both Content-Length and Transfer-Encoding present");
      return;
    }
    if (!EqualsIgnoreCase(*transfer_encoding, "chunked")) {
      Fail(501, "unsupported transfer encoding '" +
                    SanitizeForError(*transfer_encoding) + "'");
      return;
    }
    chunked_ = true;
    state_ = State::kChunkSize;
    return;
  }
  if (content_length != nullptr) {
    // Strict digits first: ParseUint64 is for trusted text and accepts
    // forms ("+1") that the RFC's 1*DIGIT grammar forbids.
    if (content_length->empty() ||
        !std::all_of(content_length->begin(), content_length->end(),
                     [](char c) {
                       return std::isdigit(static_cast<unsigned char>(c));
                     })) {
      Fail(400, "malformed Content-Length '" +
                    SanitizeForError(*content_length) + "'");
      return;
    }
    std::uint64_t length = 0;
    if (!util::ParseUint64(*content_length, &length)) {
      Fail(400, "unparseable Content-Length '" +
                    SanitizeForError(*content_length) + "'");
      return;
    }
    if (length > limits_.max_body_bytes) {
      Fail(413, "body of " + *content_length + " bytes exceeds limit of " +
                    std::to_string(limits_.max_body_bytes));
      return;
    }
    if (length == 0) {
      state_ = State::kComplete;
      return;
    }
    body_remaining_ = length;
    state_ = State::kBody;
    return;
  }
  state_ = State::kComplete;  // no body
}

int HttpStatusForCode(util::StatusCode code) {
  switch (code) {
    case util::StatusCode::kOk:
      return 200;
    case util::StatusCode::kInvalidArgument:
      return 400;
    case util::StatusCode::kNotFound:
      return 404;
    case util::StatusCode::kFailedPrecondition:
      return 409;
    case util::StatusCode::kOutOfRange:
      return 400;
    case util::StatusCode::kInternal:
      return 500;
    case util::StatusCode::kIoError:
      return 500;
    case util::StatusCode::kCancelled:
      return 499;
    case util::StatusCode::kDeadlineExceeded:
      return 504;
    case util::StatusCode::kResourceExhausted:
      return 429;
    case util::StatusCode::kDataLoss:
      return 500;
    case util::StatusCode::kNumStatusCodes:
      break;
  }
  return 500;
}

const char* HttpReasonPhrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 204: return "No Content";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 409: return "Conflict";
    case 413: return "Content Too Large";
    case 429: return "Too Many Requests";
    case 431: return "Request Header Fields Too Large";
    case 499: return "Client Closed Request";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 504: return "Gateway Timeout";
    case 505: return "HTTP Version Not Supported";
    default: return "Unknown";
  }
}

std::string SerializeResponse(int status, std::string_view content_type,
                              std::string_view body, bool keep_alive) {
  std::string out;
  out.reserve(body.size() + 128);
  out += "HTTP/1.1 ";
  out += std::to_string(status);
  out += ' ';
  out += HttpReasonPhrase(status);
  out += "\r\n";
  if (!content_type.empty()) {
    out += "Content-Type: ";
    out += content_type;
    out += "\r\n";
  }
  out += "Content-Length: ";
  out += std::to_string(body.size());
  out += "\r\n";
  out += keep_alive ? "Connection: keep-alive\r\n" : "Connection: close\r\n";
  out += "\r\n";
  out += body;
  return out;
}

}  // namespace ecdr::serve
