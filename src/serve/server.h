// ecdr_serve — a single-process epoll HTTP/1.1 + JSON front-end over
// core::RankingEngine (DESIGN.md, "Serving path").
//
// Architecture: one non-blocking event-loop thread owns every socket
// (accept, read, parse, write — level-triggered epoll), and a fixed
// pool of worker threads drains a bounded request queue and runs the
// actual searches. The two halves meet at two queues: completed
// requests flow event loop -> workers through the bounded job queue
// (arrivals beyond the bound are shed immediately with HTTP 429), and
// finished responses flow back through a completion list plus an
// eventfd wakeup. Workers never touch a socket, so a slow client can
// not hold a worker hostage, and the event loop never runs a search,
// so parsing stays responsive under load.
//
// Backpressure is per connection: at most one request per connection
// is in flight, and the event loop stops reading a connection (drops
// EPOLLIN) from the moment a request is dispatched until its response
// has been fully flushed. A client that pipelines requests faster than
// it reads responses is throttled by its own TCP window, not by server
// memory. Deadlines start at dispatch time, so queue wait burns
// request budget; a request whose deadline expires while queued is
// answered 504 without ever reaching the engine, and engine-side
// shedding (kResourceExhausted) and deadline expiry map to 429/504 via
// HttpStatusForCode.
//
// Endpoints:
//   POST /v1/search   {"concepts":[..], "k":10, "eps_theta":0.25,
//                      "deadline_ms":50}            RDS
//                     {"doc":7, "k":10}             SDS by document id
//                     {"concepts":[..], "mode":"sds"} SDS by concepts
//                     {"concepts":[..], "ranker":"ta"} RDS off the
//                     compressed block-max postings sidecar (exact
//                     top-k; needs ServerOptions::ta_postings). The
//                     sidecar serves the generation it was built over
//                     and is serialized through one mutex — a referee
//                     and observability path, not the scaled one.
//     -> {"results":[{"id":..,"distance":..,"error_bound":..},..],
//         "truncated":bool, "generation":N}
//     Distances serialize in shortest-round-trip form: parsing them
//     back yields bit-identical doubles (the serve differential test
//     holds the served path to byte-for-byte engine equality).
//   POST /v1/documents          {"concepts":[..]}  add; -> {"id":N}
//   POST /v1/documents/delete   {"doc":N}  tombstone-delete
//   POST /v1/documents/update   {"doc":N, "concepts":[..]}  in-place
//   POST /v1/admin/checkpoint   write a snapshot image, rotate the WAL
//     Writes run on the worker pool like searches (they can block on
//     the WAL fsync); on a durable engine a 200 means the operation is
//     on disk (fsync_mode permitting). Engine errors map via
//     HttpStatusForCode — kNotFound 404, kResourceExhausted 429,
//     kDataLoss/kIoError 500.
//   POST /v1/admin/ontology/add_concept    {"name":"..","parents":[..]}
//   POST /v1/admin/ontology/retire_concept {"concept":N}
//   POST /v1/admin/ontology/add_edge       {"parent":N,"child":N}
//     Live ontology evolution: one validated mutation through the
//     engine (WAL-logged before publication on a durable engine). The
//     response carries the new ontology version, the incremental
//     re-enumeration split (readdressed vs reused concepts), the
//     concept-pair entries invalidated, and the identity hash. When a
//     block-postings sidecar is configured the mutation also rebuilds
//     it before returning — incrementally (payload splice + derived
//     new lists, no BFS) when the step was distance-preserving, a full
//     cold build otherwise — so sidecar searches keep serving their
//     pinned document generation under the evolved ontology.
//   GET /status       JSON counters: server, admission, snapshot
//                     generation, durability, cache hit rates, postings
//                     footprint (memory split, bytes/doc, decoded vs
//                     skipped block counters), latency quantiles.
//                     Served inline on the event loop — never queued,
//                     never shed, so overload can still be observed.
//   GET /metrics      The same data in Prometheus text exposition
//                     format (latency histogram as cumulative buckets).
//   GET /healthz      200 once Start() returned.

#ifndef ECDR_SERVE_SERVER_H_
#define ECDR_SERVE_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/ranking_engine.h"
#include "core/ta_ranker.h"
#include "index/block_postings.h"
#include "serve/http.h"
#include "util/deadline.h"
#include "util/histogram.h"
#include "util/status.h"

namespace ecdr::serve {

struct ServerOptions {
  /// IPv4 dotted-quad to bind; tests and the loadgen use loopback.
  std::string bind_address = "127.0.0.1";
  /// 0 picks an ephemeral port; read the choice back via port().
  std::uint16_t port = 0;
  std::size_t num_workers = 4;
  /// Bound on requests waiting for a worker. Arrivals beyond it are
  /// answered 429 by the event loop without queueing anything.
  std::size_t max_queue = 256;
  /// Connections beyond this are accepted and immediately closed.
  std::size_t max_connections = 4096;
  HttpParserLimits http_limits;
  /// Per-search deadline applied when the request body carries no
  /// deadline_ms. 0 = none. Either way the effective deadline is
  /// clamped to max_deadline_seconds.
  double default_deadline_seconds = 0.0;
  double max_deadline_seconds = 30.0;
  /// Requests asking for more results than this are rejected 400.
  std::uint32_t max_k = 10'000;

  /// Optional compressed block-max postings sidecar (both unowned, must
  /// outlive the server; `ta_postings` must have been built over
  /// `ta_corpus`, a pinned engine generation — see
  /// core/ta_ranker.h's sharding note). When both are set, /status and
  /// /metrics report the postings footprint and decoded/skipped block
  /// counters, and /v1/search accepts {"ranker":"ta"}.
  const index::BlockPostings* ta_postings = nullptr;
  const corpus::Corpus* ta_corpus = nullptr;
  /// Engine generation `ta_corpus` was pinned at; reported in sidecar
  /// search responses instead of the live generation (the sidecar does
  /// not follow later publishes).
  std::uint64_t ta_generation = 0;
};

/// Counter snapshot; cumulative except the gauges at the bottom.
struct ServerStats {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_closed = 0;
  std::uint64_t connections_rejected = 0;  // over max_connections
  std::uint64_t requests_received = 0;     // complete requests parsed
  std::uint64_t responses_ok = 0;          // 2xx
  std::uint64_t shed_queue_full = 0;       // 429, server queue bound
  std::uint64_t shed_engine = 0;           // 429, engine admission
  std::uint64_t deadline_hits = 0;         // 504 (queued past deadline
                                           // or engine kDeadlineExceeded)
  std::uint64_t parse_errors = 0;          // malformed HTTP (4xx/5xx)
  std::uint64_t bad_requests = 0;          // well-formed HTTP, bad JSON
                                           // or unknown route (4xx)
  std::uint64_t internal_errors = 0;       // 5xx
  std::size_t active_connections = 0;      // gauge
  std::size_t queue_depth = 0;             // gauge
};

class Server {
 public:
  /// `engine` is unowned and must outlive the server.
  Server(core::RankingEngine* engine, ServerOptions options = {});
  ~Server();  // Stop()s if still running.

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens and spawns the event loop + workers. Fails (rather
  /// than aborts) on bind/listen errors so callers can retry on
  /// another port.
  util::Status Start();

  /// Drains nothing: closes the listener, wakes everyone, joins all
  /// threads, closes every connection. Idempotent.
  void Stop();

  /// The bound port (after Start()); useful with options.port == 0.
  std::uint16_t port() const { return port_; }

  ServerStats stats() const;

  /// End-to-end /v1/search latency (dispatch -> response ready) and
  /// the queue-wait component, in seconds.
  const util::Histogram& latency_histogram() const { return latency_; }
  const util::Histogram& queue_wait_histogram() const { return queue_wait_; }

 private:
  struct Connection;
  struct Job;
  struct Completion;

  void EventLoop();
  void WorkerLoop();

  // -- Event-loop-only helpers (no locking needed on Connection) --
  void HandleAccept();
  void HandleReadable(Connection* conn);
  void HandleWritable(Connection* conn);
  /// Parses buffered input and dispatches completed requests until the
  /// connection blocks (needs bytes, has a request in flight, or dies).
  void DrainInput(Connection* conn);
  void DispatchRequest(Connection* conn);
  void SendInline(Connection* conn, int status, std::string body,
                  bool keep_alive);
  void UpdateInterest(Connection* conn);
  /// Marks the connection for close and records its id in dead_conns_;
  /// the actual close happens in a sweep after the epoll batch, so a
  /// Connection pointer stays valid for the whole iteration.
  void MarkDead(Connection* conn);
  void CloseConnection(std::uint64_t id);
  void DrainCompletions();

  // -- Worker-side request handling --
  /// Routes one dispatched request by target; returns the response
  /// bytes.
  std::string HandleRequest(const Job& job, bool* keep_alive);
  /// Runs one search request end to end; returns the response bytes.
  std::string HandleSearch(const Job& job, bool* keep_alive);
  /// Document lifecycle writes (/v1/documents[...]) and admin actions.
  std::string HandleWrite(const Job& job, bool* keep_alive);
  /// Rebuilds the block-postings sidecar after a successful ontology
  /// evolution step; no-op when none is configured or the step was
  /// retire-only (the DAG, and so every distance, is unchanged).
  /// Distance-preserving steps (readdressed_existing == 0) take the
  /// incremental BuildEvolved splice; anything else pays a full cold
  /// build over a corpus copy rebound to the evolved DAG. Caller holds
  /// ta_mutex_ across the preceding ApplyOntologyMutations AND this
  /// call, so sidecar rebuilds happen in mutation order.
  void RefreshTaSidecarLocked(const ontology::EvolutionStats& stats);
  std::string StatusJson() const;
  std::string MetricsText() const;
  /// JSON error body {"error":{"code":..,"message":..}}.
  static std::string ErrorBody(int http_status, std::string_view code_name,
                               std::string_view message);

  core::RankingEngine* engine_;
  ServerOptions options_;

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;  // eventfd: completions ready / stop requested
  std::uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};

  std::thread event_thread_;
  std::vector<std::thread> workers_;

  // Connections, owned by the event loop thread exclusively.
  std::unordered_map<std::uint64_t, std::unique_ptr<Connection>> conns_;
  std::uint64_t next_conn_id_ = 1;
  /// Ids marked dead during the current epoll batch, closed in a sweep
  /// at the end of it (avoids rescanning conns_ every iteration).
  std::vector<std::uint64_t> dead_conns_;

  // Bounded job queue: event loop pushes, workers pop.
  mutable std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<Job> queue_;

  // Completions: workers push, event loop drains on wake_fd_.
  std::mutex completion_mutex_;
  std::vector<Completion> completions_;

  // Counters (relaxed atomics; consistency across fields is not needed
  // for monitoring).
  std::atomic<std::uint64_t> connections_accepted_{0};
  std::atomic<std::uint64_t> connections_closed_{0};
  std::atomic<std::uint64_t> connections_rejected_{0};
  std::atomic<std::uint64_t> requests_received_{0};
  std::atomic<std::uint64_t> responses_ok_{0};
  std::atomic<std::uint64_t> shed_queue_full_{0};
  std::atomic<std::uint64_t> shed_engine_{0};
  std::atomic<std::uint64_t> deadline_hits_{0};
  std::atomic<std::uint64_t> parse_errors_{0};
  std::atomic<std::uint64_t> bad_requests_{0};
  std::atomic<std::uint64_t> internal_errors_{0};
  std::atomic<std::size_t> active_connections_{0};

  util::Histogram latency_;
  util::Histogram queue_wait_;

  // Block-max postings sidecar (when options_.ta_postings is set).
  // TaRanker reuses per-call scratch and is not thread-safe, so the
  // workers serialize on ta_mutex_; the cumulative counters are read
  // lock-free by the observability endpoints.
  std::unique_ptr<core::TaRanker> ta_ranker_;  // guarded by ta_mutex_
  std::mutex ta_mutex_;
  std::atomic<std::uint64_t> ta_searches_{0};
  std::atomic<std::uint64_t> ta_decoded_blocks_{0};
  std::atomic<std::uint64_t> ta_skipped_blocks_{0};

  /// Evolved sidecar generations (mutated under ta_mutex_). The current
  /// postings pointer is published through an atomic so the event-loop
  /// observability endpoints (and the search-path "is a sidecar
  /// configured" check) read it without the mutex; superseded entries
  /// are retained until destruction — bounded by the evolution count —
  /// so a concurrently loaded pointer can never dangle. Each entry pins
  /// its ontology snapshot (the corpus and postings reference the DAG).
  struct TaSidecar {
    std::shared_ptr<const ontology::OntologySnapshot> ontology;
    std::unique_ptr<corpus::Corpus> corpus;
    std::unique_ptr<index::BlockPostings> postings;
  };
  std::vector<TaSidecar> ta_evolved_;  // guarded by ta_mutex_
  std::atomic<const index::BlockPostings*> ta_postings_current_{nullptr};
  std::atomic<std::uint64_t> ta_ontology_version_{0};
  std::atomic<std::uint64_t> ta_rebuilds_incremental_{0};
  std::atomic<std::uint64_t> ta_rebuilds_full_{0};
};

}  // namespace ecdr::serve

#endif  // ECDR_SERVE_SERVER_H_
