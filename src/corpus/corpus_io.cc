#include "corpus/corpus_io.h"

#include <algorithm>
#include <fstream>

#include "util/binary_stream.h"
#include "util/string_util.h"

namespace ecdr::corpus {

namespace {

constexpr char kMagic[] = "ecdr-corpus-v1";
constexpr std::uint64_t kBinaryMagic = 0x3176435244434531ULL;  // "1ECDRC v1"

bool NextLine(std::istream& in, std::string* line) {
  while (std::getline(in, *line)) {
    const std::string_view stripped = util::StripWhitespace(*line);
    if (stripped.empty() || stripped.front() == '#') continue;
    *line = std::string(stripped);
    return true;
  }
  return false;
}

}  // namespace

util::Status SaveCorpus(const Corpus& corpus, const std::string& path) {
  std::ofstream out(path);
  if (!out) return util::IoError("cannot open '" + path + "' for writing");
  out << kMagic << '\n';
  out << "documents " << corpus.num_documents() << '\n';
  for (DocId d = 0; d < corpus.num_documents(); ++d) {
    const Document& doc = corpus.document(d);
    out << doc.size();
    for (ontology::ConceptId c : doc.concepts()) out << ' ' << c;
    out << '\n';
  }
  out.flush();
  if (!out) return util::IoError("write to '" + path + "' failed");
  return util::Status::Ok();
}

util::StatusOr<Corpus> LoadCorpus(const ontology::Ontology& ontology,
                                  const std::string& path) {
  std::ifstream in(path);
  if (!in) return util::IoError("cannot open '" + path + "' for reading");
  std::string line;
  if (!NextLine(in, &line) || line != kMagic) {
    return util::InvalidArgumentError("'" + path +
                                      "': missing ecdr-corpus-v1 header");
  }
  if (!NextLine(in, &line)) {
    return util::InvalidArgumentError("'" + path + "': missing document count");
  }
  std::uint32_t num_documents = 0;
  {
    const auto pieces = util::Split(line, ' ');
    if (pieces.size() != 2 || pieces[0] != "documents" ||
        !util::ParseUint32(pieces[1], &num_documents)) {
      return util::InvalidArgumentError("'" + path + "': bad documents line '" +
                                        line + "'");
    }
  }
  Corpus corpus(ontology);
  for (std::uint32_t d = 0; d < num_documents; ++d) {
    if (!NextLine(in, &line)) {
      return util::InvalidArgumentError(
          "'" + path + "': expected " + std::to_string(num_documents) +
          " documents, got " + std::to_string(d));
    }
    const auto pieces = util::Split(line, ' ');
    std::uint32_t count = 0;
    if (pieces.empty() || !util::ParseUint32(pieces[0], &count) ||
        pieces.size() != count + 1) {
      return util::InvalidArgumentError("'" + path + "': bad document line '" +
                                        line + "'");
    }
    std::vector<ontology::ConceptId> concepts;
    concepts.reserve(count);
    for (std::uint32_t i = 1; i <= count; ++i) {
      std::uint32_t concept_id = 0;
      if (!util::ParseUint32(pieces[i], &concept_id)) {
        return util::InvalidArgumentError("'" + path +
                                          "': bad concept id '" +
                                          std::string(pieces[i]) + "'");
      }
      concepts.push_back(concept_id);
    }
    util::StatusOr<DocId> added =
        corpus.AddDocument(Document(std::move(concepts)));
    ECDR_RETURN_IF_ERROR(added.status());
  }
  return corpus;
}


util::Status SaveCorpusBinary(const Corpus& corpus, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return util::IoError("cannot open '" + path + "' for writing");
  util::BinaryWriter writer(out);
  writer.WriteU64(kBinaryMagic);
  writer.WriteU32(corpus.num_documents());
  for (DocId d = 0; d < corpus.num_documents(); ++d) {
    const auto concepts = corpus.document(d).concepts();
    writer.WriteU32Vector({concepts.begin(), concepts.end()});
  }
  out.flush();
  if (!writer.ok() || !out) {
    return util::IoError("write to '" + path + "' failed");
  }
  return util::Status::Ok();
}

util::StatusOr<Corpus> LoadCorpusBinary(const ontology::Ontology& ontology,
                                        const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return util::IoError("cannot open '" + path + "' for reading");
  // Same guard-clamping rationale as LoadOntologyBinary: a corrupt
  // length prefix cannot out-allocate the file that carries it.
  util::BinaryReader reader(
      in, std::max<std::uint64_t>(64, util::StreamByteSize(in)));
  std::uint64_t magic = 0;
  ECDR_RETURN_IF_ERROR(reader.ReadU64(&magic));
  if (magic != kBinaryMagic) {
    return util::InvalidArgumentError("'" + path +
                                      "': not an ecdr binary corpus");
  }
  std::uint32_t num_documents = 0;
  ECDR_RETURN_IF_ERROR(reader.ReadU32(&num_documents));
  Corpus corpus(ontology);
  for (std::uint32_t d = 0; d < num_documents; ++d) {
    std::vector<std::uint32_t> concepts;
    ECDR_RETURN_IF_ERROR(reader.ReadU32Vector(&concepts));
    util::StatusOr<DocId> added =
        corpus.AddDocument(Document(std::move(concepts)));
    ECDR_RETURN_IF_ERROR(added.status());
  }
  return corpus;
}


util::StatusOr<Corpus> LoadCorpusAuto(const ontology::Ontology& ontology,
                                      const std::string& path) {
  std::ifstream probe(path, std::ios::binary);
  if (!probe) return util::IoError("cannot open '" + path + "' for reading");
  util::BinaryReader reader(probe);
  std::uint64_t magic = 0;
  const bool is_binary =
      reader.ReadU64(&magic).ok() && magic == kBinaryMagic;
  probe.close();
  return is_binary ? LoadCorpusBinary(ontology, path)
                   : LoadCorpus(ontology, path);
}

}  // namespace ecdr::corpus
