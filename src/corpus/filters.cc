#include "corpus/filters.h"

#include <cmath>
#include <unordered_map>
#include <unordered_set>

namespace ecdr::corpus {

util::StatusOr<Corpus> ApplyConceptFilters(const Corpus& corpus,
                                           const ConceptFilterOptions& options,
                                           ConceptFilterReport* report) {
  const ontology::Ontology& ontology = corpus.ontology();
  ConceptFilterReport local_report;

  // Collection frequencies over the unfiltered corpus.
  std::unordered_map<ontology::ConceptId, std::uint32_t> cf;
  for (DocId d = 0; d < corpus.num_documents(); ++d) {
    for (ontology::ConceptId c : corpus.document(d).concepts()) ++cf[c];
  }
  double cf_threshold = 0.0;
  if (options.apply_cf_threshold && !cf.empty()) {
    double mean = 0.0;
    for (const auto& [concept_id, count] : cf) mean += count;
    mean /= static_cast<double>(cf.size());
    double variance = 0.0;
    for (const auto& [concept_id, count] : cf) {
      const double delta = count - mean;
      variance += delta * delta;
    }
    variance /= static_cast<double>(cf.size());
    cf_threshold = mean + options.cf_sigma_multiplier * std::sqrt(variance);
  }
  local_report.cf_threshold = cf_threshold;

  std::unordered_set<ontology::ConceptId> removed;
  for (const auto& [concept_id, count] : cf) {
    if (ontology.depth(concept_id) < options.min_depth) {
      ++local_report.concepts_removed_by_depth;
      removed.insert(concept_id);
    } else if (options.apply_cf_threshold && count > cf_threshold) {
      ++local_report.concepts_removed_by_cf;
      removed.insert(concept_id);
    } else {
      ++local_report.concepts_kept;
    }
  }

  Corpus filtered(ontology);
  for (DocId d = 0; d < corpus.num_documents(); ++d) {
    std::vector<ontology::ConceptId> kept;
    for (ontology::ConceptId c : corpus.document(d).concepts()) {
      if (!removed.contains(c)) kept.push_back(c);
    }
    if (kept.empty()) {
      ++local_report.documents_dropped_empty;
      continue;
    }
    util::StatusOr<DocId> added = filtered.AddDocument(Document(std::move(kept)));
    ECDR_RETURN_IF_ERROR(added.status());
  }
  if (report != nullptr) *report = local_report;
  return filtered;
}

}  // namespace ecdr::corpus
