// Synthetic MIMIC-II-like corpus generation.
//
// The paper's two corpora come from the MIMIC-II clinical database
// (Table 3), which requires a data-use agreement, so the benchmark
// harness substitutes synthetic corpora that match its shape:
//
//             docs     avg concepts/doc   character
//   PATIENT    983           706.6        concepts dense & cohesive
//   RADIO   12,373           125.3        concepts sparse
//
// Cohesion is what drives the paper's epsilon-threshold asymmetry
// (Fig. 7): PATIENT documents contain many concepts that are close to
// each other in the ontology, so kNDS is better off waiting (eps=0),
// while RADIO's sparse documents favor eager probing (eps=0.9). We model
// cohesion by sampling a fraction of each document's concepts from short
// random walks around a few cluster seeds, and the rest uniformly.

#ifndef ECDR_CORPUS_GENERATOR_H_
#define ECDR_CORPUS_GENERATOR_H_

#include <cstdint>

#include "corpus/corpus.h"
#include "ontology/ontology.h"
#include "util/status.h"

namespace ecdr::corpus {

struct CorpusGeneratorConfig {
  std::uint32_t num_documents = 1000;
  double avg_concepts_per_doc = 100.0;
  /// Document sizes are uniform in [avg/2, 3*avg/2] (>= 1).
  /// Fraction of a document's concepts drawn from cluster walks; the
  /// remainder is uniform over the ontology.
  double cohesion = 0.5;
  /// Number of cluster seeds per document (used when cohesion > 0).
  std::uint32_t clusters_per_doc = 4;
  /// Maximum random-walk steps from a seed when growing a cluster.
  std::uint32_t cluster_walk_length = 3;
  /// Concepts shallower than this are never sampled (they would be
  /// removed by the depth filter anyway).
  std::uint32_t min_concept_depth = 2;
  std::uint64_t seed = 1;
};

/// Generates a corpus over `ontology`. Deterministic in the seed.
util::StatusOr<Corpus> GenerateCorpus(const ontology::Ontology& ontology,
                                      const CorpusGeneratorConfig& config);

/// Presets matching the paper's Table 3 shape. `scale` in (0, 1] scales
/// the document count (1.0 reproduces the paper's sizes).
CorpusGeneratorConfig PatientLikeConfig(double scale, std::uint64_t seed);
CorpusGeneratorConfig RadioLikeConfig(double scale, std::uint64_t seed);

}  // namespace ecdr::corpus

#endif  // ECDR_CORPUS_GENERATOR_H_
