#include "corpus/query_gen.h"

#include <algorithm>
#include <unordered_set>

#include "util/random.h"

namespace ecdr::corpus {

std::vector<std::vector<ontology::ConceptId>> GenerateRdsQueries(
    const Corpus& corpus, std::uint32_t num_queries, std::uint32_t query_size,
    std::uint64_t seed) {
  util::Rng rng(seed);
  // Pool of concepts that occur in at least one document.
  std::unordered_set<ontology::ConceptId> pool_set;
  for (DocId d = 0; d < corpus.num_documents(); ++d) {
    for (ontology::ConceptId c : corpus.document(d).concepts()) {
      pool_set.insert(c);
    }
  }
  std::vector<ontology::ConceptId> pool(pool_set.begin(), pool_set.end());
  std::sort(pool.begin(), pool.end());  // Determinism across hash orders.

  std::vector<std::vector<ontology::ConceptId>> queries;
  queries.reserve(num_queries);
  const auto effective_size = static_cast<std::uint32_t>(
      std::min<std::size_t>(query_size, pool.size()));
  for (std::uint32_t i = 0; i < num_queries; ++i) {
    std::vector<ontology::ConceptId> query;
    query.reserve(effective_size);
    for (std::uint32_t index : rng.SampleWithoutReplacement(
             static_cast<std::uint32_t>(pool.size()), effective_size)) {
      query.push_back(pool[index]);
    }
    std::sort(query.begin(), query.end());
    queries.push_back(std::move(query));
  }
  return queries;
}

std::vector<DocId> SampleQueryDocuments(const Corpus& corpus,
                                        std::uint32_t num_queries,
                                        std::uint64_t seed) {
  ECDR_CHECK_GT(corpus.num_documents(), 0u);
  util::Rng rng(seed);
  std::vector<DocId> docs;
  docs.reserve(num_queries);
  for (std::uint32_t i = 0; i < num_queries; ++i) {
    docs.push_back(
        static_cast<DocId>(rng.UniformInt(0, corpus.num_documents() - 1)));
  }
  return docs;
}

std::vector<Document> GenerateQueryDocuments(
    const ontology::Ontology& ontology, std::uint32_t num_queries,
    std::uint32_t num_concepts, std::uint64_t seed) {
  util::Rng rng(seed);
  const auto effective_size = static_cast<std::uint32_t>(
      std::min<std::uint64_t>(num_concepts, ontology.num_concepts()));
  std::vector<Document> docs;
  docs.reserve(num_queries);
  for (std::uint32_t i = 0; i < num_queries; ++i) {
    std::vector<ontology::ConceptId> concepts = rng.SampleWithoutReplacement(
        ontology.num_concepts(), effective_size);
    docs.emplace_back(std::move(concepts));
  }
  return docs;
}

}  // namespace ecdr::corpus
