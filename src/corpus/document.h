// A document viewed as a set of ontology concepts (paper Section 3.1).
//
// The paper (and the biomedical literature it follows) models an EMR as
// the set of ontological concepts extracted from its text; free text is
// out of scope. Concepts are stored sorted and deduplicated.

#ifndef ECDR_CORPUS_DOCUMENT_H_
#define ECDR_CORPUS_DOCUMENT_H_

#include <cstdint>
#include <span>
#include <vector>

#include "ontology/types.h"

namespace ecdr::corpus {

/// Dense identifier of a document within one Corpus (0-based).
using DocId = std::uint32_t;
inline constexpr DocId kInvalidDoc = 0xFFFFFFFFu;

class Document {
 public:
  Document() = default;

  /// Takes ownership of `concepts`; sorts and deduplicates them.
  explicit Document(std::vector<ontology::ConceptId> concepts);

  std::span<const ontology::ConceptId> concepts() const { return concepts_; }
  std::size_t size() const { return concepts_.size(); }
  bool empty() const { return concepts_.empty(); }

  /// Binary search over the sorted concept set.
  bool ContainsConcept(ontology::ConceptId c) const;

  friend bool operator==(const Document& a, const Document& b) {
    return a.concepts_ == b.concepts_;
  }

 private:
  std::vector<ontology::ConceptId> concepts_;
};

}  // namespace ecdr::corpus

#endif  // ECDR_CORPUS_DOCUMENT_H_
