#include "corpus/generator.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "util/random.h"

namespace ecdr::corpus {

namespace {

using ontology::ConceptId;
using ontology::Ontology;

/// Uniformly picks a concept with depth >= min_depth (rejection
/// sampling; falls back to any concept if the ontology is too shallow).
ConceptId PickConcept(const Ontology& ontology, std::uint32_t min_depth,
                      util::Rng& rng) {
  for (int attempt = 0; attempt < 64; ++attempt) {
    const auto c = static_cast<ConceptId>(
        rng.UniformInt(0, ontology.num_concepts() - 1));
    if (ontology.depth(c) >= min_depth) return c;
  }
  return static_cast<ConceptId>(rng.UniformInt(0, ontology.num_concepts() - 1));
}

/// One step of a neighborhood random walk: move to a uniformly chosen
/// parent or child (children twice as likely, to keep walks from racing
/// to the root).
ConceptId WalkStep(const Ontology& ontology, ConceptId from, util::Rng& rng) {
  const auto parents = ontology.parents(from);
  const auto children = ontology.children(from);
  const std::size_t weight = parents.size() + 2 * children.size();
  if (weight == 0) return from;
  std::size_t pick = static_cast<std::size_t>(rng.UniformInt(0, weight - 1));
  if (pick < parents.size()) return parents[pick];
  pick -= parents.size();
  return children[pick / 2];
}

}  // namespace

util::StatusOr<Corpus> GenerateCorpus(const ontology::Ontology& ontology,
                                      const CorpusGeneratorConfig& config) {
  if (config.num_documents == 0) {
    return util::InvalidArgumentError("num_documents must be positive");
  }
  if (config.avg_concepts_per_doc < 1.0) {
    return util::InvalidArgumentError("avg_concepts_per_doc must be >= 1");
  }
  if (config.cohesion < 0.0 || config.cohesion > 1.0) {
    return util::InvalidArgumentError("cohesion must be in [0, 1]");
  }
  util::Rng rng(config.seed);
  Corpus corpus(ontology);
  std::unordered_set<ConceptId> picked;
  for (std::uint32_t d = 0; d < config.num_documents; ++d) {
    const auto lo = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(config.avg_concepts_per_doc / 2.0));
    const auto hi = std::max<std::uint64_t>(
        lo, static_cast<std::uint64_t>(config.avg_concepts_per_doc * 1.5));
    const std::uint64_t target = rng.UniformInt(lo, hi);

    picked.clear();
    const auto cluster_quota =
        static_cast<std::uint64_t>(config.cohesion * target);
    if (cluster_quota > 0 && config.clusters_per_doc > 0) {
      const std::uint64_t per_cluster =
          std::max<std::uint64_t>(1, cluster_quota / config.clusters_per_doc);
      for (std::uint32_t s = 0;
           s < config.clusters_per_doc && picked.size() < cluster_quota; ++s) {
        const ConceptId seed_concept =
            PickConcept(ontology, config.min_concept_depth, rng);
        ConceptId current = seed_concept;
        // Grow the cluster with restarts: short walks stay local.
        std::uint64_t grown = 0;
        std::uint64_t attempts = 0;
        while (grown < per_cluster && attempts < per_cluster * 8) {
          ++attempts;
          if (ontology.depth(current) >= config.min_concept_depth &&
              picked.insert(current).second) {
            ++grown;
          }
          const auto walked = static_cast<std::uint32_t>(
              rng.UniformInt(1, std::max<std::uint32_t>(
                                    1, config.cluster_walk_length)));
          current = seed_concept;
          for (std::uint32_t w = 0; w < walked; ++w) {
            current = WalkStep(ontology, current, rng);
          }
        }
      }
    }
    while (picked.size() < target) {
      picked.insert(PickConcept(ontology, config.min_concept_depth, rng));
    }
    std::vector<ConceptId> concepts(picked.begin(), picked.end());
    util::StatusOr<DocId> added =
        corpus.AddDocument(Document(std::move(concepts)));
    ECDR_RETURN_IF_ERROR(added.status());
  }
  return corpus;
}

CorpusGeneratorConfig PatientLikeConfig(double scale, std::uint64_t seed) {
  CorpusGeneratorConfig config;
  config.num_documents = std::max<std::uint32_t>(
      1, static_cast<std::uint32_t>(std::lround(983 * scale)));
  config.avg_concepts_per_doc = 706.6;
  config.cohesion = 0.85;
  config.clusters_per_doc = 8;
  config.cluster_walk_length = 3;
  config.seed = seed;
  return config;
}

CorpusGeneratorConfig RadioLikeConfig(double scale, std::uint64_t seed) {
  CorpusGeneratorConfig config;
  config.num_documents = std::max<std::uint32_t>(
      1, static_cast<std::uint32_t>(std::lround(12373 * scale)));
  config.avg_concepts_per_doc = 125.3;
  config.cohesion = 0.15;
  config.clusters_per_doc = 4;
  config.cluster_walk_length = 3;
  config.seed = seed;
  return config;
}

}  // namespace ecdr::corpus
