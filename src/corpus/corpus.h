// A collection of concept-annotated documents bound to an ontology.
//
// Documents can be appended after construction — one of the paper's
// selling points over the TA baseline is that no distance precomputation
// is needed, so "when a new patient arrives at the point-of-care, we can
// instantly add his or her EMR to our database" (Section 1). The inverted
// index (index/inverted_index.h) supports the matching incremental
// update.
//
// Storage is segmented: documents live in contiguous id-range segments
// ([base, base + size)), and copying a Corpus is cheap — the copy shares
// every segment. A subsequent append to either side clones only the
// (shared) tail segment before writing: copy-on-write. This is what
// lets core::SnapshotBuilder publish a new immutable corpus generation
// per write batch while searches keep reading the old one
// (DESIGN.md, "Snapshot lifecycle"). With the default segment target of
// 0 a corpus is one growing segment — exactly the historical layout.
// Iterating segments in order visits documents in increasing id order,
// so per-segment consumers (index::ShardedIndex, the rankers) see the
// same global document order as an unsegmented scan — the basis of the
// bit-identical-at-any-shard-count guarantee.
//
// Thread safety: const access is safe from any number of threads.
// AddDocument requires external serialization against both writes and
// reads of *this* corpus value (snapshot copies are unaffected — they
// own their segments by refcount).

#ifndef ECDR_CORPUS_CORPUS_H_
#define ECDR_CORPUS_CORPUS_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "corpus/document.h"
#include "ontology/ontology.h"
#include "util/status.h"

namespace ecdr::corpus {

class Corpus {
 public:
  explicit Corpus(const ontology::Ontology& ontology) : ontology_(&ontology) {}

  // Copies share segments (cheap, copy-on-write on the next append);
  // moves transfer them.
  Corpus(const Corpus&) = default;
  Corpus& operator=(const Corpus&) = default;
  Corpus(Corpus&&) = default;
  Corpus& operator=(Corpus&&) = default;

  /// Appends `doc` and returns its id. Fails if the document is empty or
  /// references a concept outside the ontology. Starts a new segment
  /// when the tail reached segment_target(); clones the tail first when
  /// it is shared with a copy of this corpus.
  util::StatusOr<DocId> AddDocument(Document doc);

  /// Tombstone-deletes document `id`: its slot stays (ids are stable,
  /// handed out to callers and stored in posting lists) but its content
  /// becomes the empty Document, so it produces no postings and can
  /// never appear in a result again. Clones the containing segment
  /// first when it is shared with a snapshot copy. Fails with kNotFound
  /// when `id` is out of range or already deleted.
  util::Status DeleteDocument(DocId id);

  /// Replaces document `id` in place (same id, new concept set), with
  /// AddDocument's validation. Fails with kNotFound when `id` is out of
  /// range or tombstoned — an update cannot resurrect a delete.
  util::Status UpdateDocument(DocId id, Document doc);

  std::uint32_t num_documents() const { return num_documents_; }

  /// Slots tombstoned by DeleteDocument. num_documents() counts them;
  /// live documents = num_documents() - num_tombstones().
  std::uint32_t num_tombstones() const { return num_tombstones_; }

  /// True when `id`'s slot is a tombstone (or, equivalently for every
  /// observable purpose, was restored as one).
  bool IsDeleted(DocId id) const { return document(id).empty(); }

  const Document& document(DocId id) const {
    ECDR_DCHECK_LT(id, num_documents_);
    // Appends land in the tail and most corpora hold few segments, so
    // scan backwards from the tail; one segment = zero iterations.
    std::size_t s = segments_.size() - 1;
    while (segments_[s]->base > id) --s;
    return segments_[s]->docs[id - segments_[s]->base];
  }

  const ontology::Ontology& ontology() const { return *ontology_; }

  /// Points the corpus at an evolved ontology (ontology evolution is
  /// append-only, so every stored document stays valid — new ontologies
  /// only ever widen the valid concept range). Used by the snapshot
  /// builder when it publishes an ontology swap and by storage replay;
  /// requires the same external serialization as AddDocument.
  void RebindOntology(const ontology::Ontology& ontology) {
    ECDR_DCHECK_GE(ontology.num_concepts(), ontology_->num_concepts());
    ontology_ = &ontology;
  }

  // ---- Segment (shard) layout ----------------------------------------

  /// Documents per segment before the tail rolls over into a fresh one.
  /// 0 (the default) = never roll over: one growing segment. Affects
  /// future appends only; existing segments keep their size.
  void set_segment_target(std::uint32_t target) { segment_target_ = target; }
  std::uint32_t segment_target() const { return segment_target_; }

  std::size_t num_segments() const { return segments_.size(); }

  /// First document id of segment `s`.
  DocId segment_base(std::size_t s) const {
    ECDR_DCHECK_LT(s, segments_.size());
    return segments_[s]->base;
  }

  /// The documents of segment `s`, ids [segment_base(s),
  /// segment_base(s) + size). Valid until the segment is appended to.
  std::span<const Document> segment_documents(std::size_t s) const {
    ECDR_DCHECK_LT(s, segments_.size());
    return segments_[s]->docs;
  }

  /// Opaque identity of segment `s`'s backing storage. Two corpus
  /// values that report the same identity for a [base, size) range hold
  /// the *same* documents there — any in-place edit (delete/update)
  /// clones a shared segment first, so a mutated segment always gets a
  /// new identity as long as the old value (e.g. a published snapshot)
  /// is still alive. index::ShardedIndex keys shard reuse on this, not
  /// on the range, which deletes and updates leave unchanged.
  const void* segment_identity(std::size_t s) const {
    ECDR_DCHECK_LT(s, segments_.size());
    return segments_[s].get();
  }

  /// Installs a segment recovered from a snapshot image. `base` must
  /// equal num_documents() (segments arrive in id order) and `docs` may
  /// contain empty tombstone slots. Non-empty documents are validated
  /// against the ontology like AddDocument.
  util::Status AppendRestoredSegment(DocId base, std::vector<Document> docs);

  /// A compacted copy: runs of adjacent segments smaller than
  /// `min_docs_per_segment` are merged into one, larger segments are
  /// shared untouched. Ids (including tombstone slots) are unchanged,
  /// so every index or snapshot built over `this` stays valid; only the
  /// segment layout — and hence the shard layout of the next index
  /// build — changes.
  Corpus Compacted(std::uint32_t min_docs_per_segment) const;

 private:
  struct Segment {
    DocId base = 0;
    std::vector<Document> docs;
  };

  /// Segment index containing `id`, cloned first if shared — the
  /// copy-on-write step every in-place edit goes through.
  Segment* MutableSegmentFor(DocId id);

  util::Status ValidateDocument(const Document& doc) const;

  const ontology::Ontology* ontology_;
  std::uint32_t segment_target_ = 0;
  std::uint32_t num_documents_ = 0;
  std::uint32_t num_tombstones_ = 0;
  std::vector<std::shared_ptr<Segment>> segments_;
};

/// The same documents re-laid-out into `num_segments` contiguous
/// segments of (near-)equal size — how tests and tools stand up a
/// sharded engine over an existing collection. The result's
/// segment_target() is left at the computed per-segment size, so
/// further appends keep rolling over at that size.
Corpus Resharded(const Corpus& source, std::size_t num_segments);

/// The quantities the paper reports in Table 3 (plus concept collection
/// frequencies, which drive the mu+sigma filter of Section 6.1).
struct CorpusStats {
  std::uint32_t num_documents = 0;
  std::uint32_t num_distinct_concepts = 0;
  double avg_concepts_per_document = 0.0;
  std::size_t min_concepts_per_document = 0;
  std::size_t max_concepts_per_document = 0;
  /// Mean and standard deviation of per-concept collection frequency
  /// (number of documents containing the concept), over concepts that
  /// appear at least once.
  double cf_mean = 0.0;
  double cf_stddev = 0.0;
};

CorpusStats ComputeCorpusStats(const Corpus& corpus);

}  // namespace ecdr::corpus

#endif  // ECDR_CORPUS_CORPUS_H_
