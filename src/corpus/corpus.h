// A collection of concept-annotated documents bound to an ontology.
//
// Documents can be appended after construction — one of the paper's
// selling points over the TA baseline is that no distance precomputation
// is needed, so "when a new patient arrives at the point-of-care, we can
// instantly add his or her EMR to our database" (Section 1). The inverted
// index (index/inverted_index.h) supports the matching incremental
// update.
//
// Storage is segmented: documents live in contiguous id-range segments
// ([base, base + size)), and copying a Corpus is cheap — the copy shares
// every segment. A subsequent append to either side clones only the
// (shared) tail segment before writing: copy-on-write. This is what
// lets core::SnapshotBuilder publish a new immutable corpus generation
// per write batch while searches keep reading the old one
// (DESIGN.md, "Snapshot lifecycle"). With the default segment target of
// 0 a corpus is one growing segment — exactly the historical layout.
// Iterating segments in order visits documents in increasing id order,
// so per-segment consumers (index::ShardedIndex, the rankers) see the
// same global document order as an unsegmented scan — the basis of the
// bit-identical-at-any-shard-count guarantee.
//
// Thread safety: const access is safe from any number of threads.
// AddDocument requires external serialization against both writes and
// reads of *this* corpus value (snapshot copies are unaffected — they
// own their segments by refcount).

#ifndef ECDR_CORPUS_CORPUS_H_
#define ECDR_CORPUS_CORPUS_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "corpus/document.h"
#include "ontology/ontology.h"
#include "util/status.h"

namespace ecdr::corpus {

class Corpus {
 public:
  explicit Corpus(const ontology::Ontology& ontology) : ontology_(&ontology) {}

  // Copies share segments (cheap, copy-on-write on the next append);
  // moves transfer them.
  Corpus(const Corpus&) = default;
  Corpus& operator=(const Corpus&) = default;
  Corpus(Corpus&&) = default;
  Corpus& operator=(Corpus&&) = default;

  /// Appends `doc` and returns its id. Fails if the document is empty or
  /// references a concept outside the ontology. Starts a new segment
  /// when the tail reached segment_target(); clones the tail first when
  /// it is shared with a copy of this corpus.
  util::StatusOr<DocId> AddDocument(Document doc);

  std::uint32_t num_documents() const { return num_documents_; }

  const Document& document(DocId id) const {
    ECDR_DCHECK_LT(id, num_documents_);
    // Appends land in the tail and most corpora hold few segments, so
    // scan backwards from the tail; one segment = zero iterations.
    std::size_t s = segments_.size() - 1;
    while (segments_[s]->base > id) --s;
    return segments_[s]->docs[id - segments_[s]->base];
  }

  const ontology::Ontology& ontology() const { return *ontology_; }

  // ---- Segment (shard) layout ----------------------------------------

  /// Documents per segment before the tail rolls over into a fresh one.
  /// 0 (the default) = never roll over: one growing segment. Affects
  /// future appends only; existing segments keep their size.
  void set_segment_target(std::uint32_t target) { segment_target_ = target; }
  std::uint32_t segment_target() const { return segment_target_; }

  std::size_t num_segments() const { return segments_.size(); }

  /// First document id of segment `s`.
  DocId segment_base(std::size_t s) const {
    ECDR_DCHECK_LT(s, segments_.size());
    return segments_[s]->base;
  }

  /// The documents of segment `s`, ids [segment_base(s),
  /// segment_base(s) + size). Valid until the segment is appended to.
  std::span<const Document> segment_documents(std::size_t s) const {
    ECDR_DCHECK_LT(s, segments_.size());
    return segments_[s]->docs;
  }

 private:
  struct Segment {
    DocId base = 0;
    std::vector<Document> docs;
  };

  const ontology::Ontology* ontology_;
  std::uint32_t segment_target_ = 0;
  std::uint32_t num_documents_ = 0;
  std::vector<std::shared_ptr<Segment>> segments_;
};

/// The same documents re-laid-out into `num_segments` contiguous
/// segments of (near-)equal size — how tests and tools stand up a
/// sharded engine over an existing collection. The result's
/// segment_target() is left at the computed per-segment size, so
/// further appends keep rolling over at that size.
Corpus Resharded(const Corpus& source, std::size_t num_segments);

/// The quantities the paper reports in Table 3 (plus concept collection
/// frequencies, which drive the mu+sigma filter of Section 6.1).
struct CorpusStats {
  std::uint32_t num_documents = 0;
  std::uint32_t num_distinct_concepts = 0;
  double avg_concepts_per_document = 0.0;
  std::size_t min_concepts_per_document = 0;
  std::size_t max_concepts_per_document = 0;
  /// Mean and standard deviation of per-concept collection frequency
  /// (number of documents containing the concept), over concepts that
  /// appear at least once.
  double cf_mean = 0.0;
  double cf_stddev = 0.0;
};

CorpusStats ComputeCorpusStats(const Corpus& corpus);

}  // namespace ecdr::corpus

#endif  // ECDR_CORPUS_CORPUS_H_
