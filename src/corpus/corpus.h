// A collection of concept-annotated documents bound to an ontology.
//
// Documents can be appended after construction — one of the paper's
// selling points over the TA baseline is that no distance precomputation
// is needed, so "when a new patient arrives at the point-of-care, we can
// instantly add his or her EMR to our database" (Section 1). The inverted
// index (index/inverted_index.h) supports the matching incremental
// update.

#ifndef ECDR_CORPUS_CORPUS_H_
#define ECDR_CORPUS_CORPUS_H_

#include <cstdint>
#include <vector>

#include "corpus/document.h"
#include "ontology/ontology.h"
#include "util/status.h"

namespace ecdr::corpus {

class Corpus {
 public:
  explicit Corpus(const ontology::Ontology& ontology) : ontology_(&ontology) {}

  Corpus(const Corpus&) = delete;
  Corpus& operator=(const Corpus&) = delete;
  Corpus(Corpus&&) = default;
  Corpus& operator=(Corpus&&) = default;

  /// Appends `doc` and returns its id. Fails if the document is empty or
  /// references a concept outside the ontology.
  util::StatusOr<DocId> AddDocument(Document doc);

  std::uint32_t num_documents() const {
    return static_cast<std::uint32_t>(documents_.size());
  }

  const Document& document(DocId id) const {
    ECDR_DCHECK_LT(id, documents_.size());
    return documents_[id];
  }

  const ontology::Ontology& ontology() const { return *ontology_; }

 private:
  const ontology::Ontology* ontology_;
  std::vector<Document> documents_;
};

/// The quantities the paper reports in Table 3 (plus concept collection
/// frequencies, which drive the mu+sigma filter of Section 6.1).
struct CorpusStats {
  std::uint32_t num_documents = 0;
  std::uint32_t num_distinct_concepts = 0;
  double avg_concepts_per_document = 0.0;
  std::size_t min_concepts_per_document = 0;
  std::size_t max_concepts_per_document = 0;
  /// Mean and standard deviation of per-concept collection frequency
  /// (number of documents containing the concept), over concepts that
  /// appear at least once.
  double cf_mean = 0.0;
  double cf_stddev = 0.0;
};

CorpusStats ComputeCorpusStats(const Corpus& corpus);

}  // namespace ecdr::corpus

#endif  // ECDR_CORPUS_CORPUS_H_
