// Concept filtering per the paper's experimental setup (Section 6.1):
//
//   "we set a depth and a collection frequency (cf) threshold such that
//    we exclude generic or very common concepts (such as 'disease' or
//    'blood' respectively). For depth threshold we used a default value
//    of 4 [...]. we used mu+sigma as the default cf threshold for each
//    dataset."
//
// Filtering removes the offending concepts from every document; documents
// left empty are dropped (and reported).

#ifndef ECDR_CORPUS_FILTERS_H_
#define ECDR_CORPUS_FILTERS_H_

#include <cstdint>

#include "corpus/corpus.h"
#include "util/status.h"

namespace ecdr::corpus {

struct ConceptFilterOptions {
  /// Concepts at ontology depth < min_depth are removed (paper default 4).
  std::uint32_t min_depth = 4;

  /// When true, concepts whose collection frequency exceeds
  /// mean + cf_sigma_multiplier * stddev are removed.
  bool apply_cf_threshold = true;
  double cf_sigma_multiplier = 1.0;
};

struct ConceptFilterReport {
  std::uint32_t concepts_removed_by_depth = 0;
  std::uint32_t concepts_removed_by_cf = 0;
  std::uint32_t concepts_kept = 0;
  std::uint32_t documents_dropped_empty = 0;
  double cf_threshold = 0.0;
};

/// Returns a new corpus (over the same ontology) with filtered documents.
/// `report`, if non-null, receives what was removed.
util::StatusOr<Corpus> ApplyConceptFilters(const Corpus& corpus,
                                           const ConceptFilterOptions& options,
                                           ConceptFilterReport* report);

}  // namespace ecdr::corpus

#endif  // ECDR_CORPUS_FILTERS_H_
