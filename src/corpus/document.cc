#include "corpus/document.h"

#include <algorithm>

namespace ecdr::corpus {

Document::Document(std::vector<ontology::ConceptId> concepts)
    : concepts_(std::move(concepts)) {
  std::sort(concepts_.begin(), concepts_.end());
  concepts_.erase(std::unique(concepts_.begin(), concepts_.end()),
                  concepts_.end());
}

bool Document::ContainsConcept(ontology::ConceptId c) const {
  return std::binary_search(concepts_.begin(), concepts_.end(), c);
}

}  // namespace ecdr::corpus
