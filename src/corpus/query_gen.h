// Query workload generation for benchmarks and examples.
//
// The paper's experiments use randomly generated queries: sets of nq
// concepts for RDS, documents randomly picked from the corpus for SDS,
// and randomly generated query documents for the distance-calculation
// experiment (Fig. 6).

#ifndef ECDR_CORPUS_QUERY_GEN_H_
#define ECDR_CORPUS_QUERY_GEN_H_

#include <cstdint>
#include <vector>

#include "corpus/corpus.h"
#include "ontology/types.h"

namespace ecdr::corpus {

/// Generates `num_queries` RDS queries of `query_size` distinct concepts
/// each, drawn uniformly from the set of concepts that occur in the
/// corpus (so queries are answerable and realistic). If the corpus has
/// fewer distinct concepts than `query_size`, queries are smaller.
std::vector<std::vector<ontology::ConceptId>> GenerateRdsQueries(
    const Corpus& corpus, std::uint32_t num_queries, std::uint32_t query_size,
    std::uint64_t seed);

/// Picks `num_queries` document ids uniformly (with replacement) to serve
/// as SDS query documents.
std::vector<DocId> SampleQueryDocuments(const Corpus& corpus,
                                        std::uint32_t num_queries,
                                        std::uint64_t seed);

/// Generates standalone query documents of `num_concepts` concepts drawn
/// uniformly from the ontology (Fig. 6 workload: the query document need
/// not be in the corpus).
std::vector<Document> GenerateQueryDocuments(
    const ontology::Ontology& ontology, std::uint32_t num_queries,
    std::uint32_t num_concepts, std::uint64_t seed);

}  // namespace ecdr::corpus

#endif  // ECDR_CORPUS_QUERY_GEN_H_
