// Text serialization for corpora.
//
// Format (line-oriented, '#' comments and blank lines ignored):
//   ecdr-corpus-v1
//   documents <N>
//   <k> <c1> <c2> ... <ck>   # N lines, one document each
//
// Loading validates every document against the supplied ontology.

#ifndef ECDR_CORPUS_CORPUS_IO_H_
#define ECDR_CORPUS_CORPUS_IO_H_

#include <string>

#include "corpus/corpus.h"
#include "util/status.h"

namespace ecdr::corpus {

util::Status SaveCorpus(const Corpus& corpus, const std::string& path);

util::StatusOr<Corpus> LoadCorpus(const ontology::Ontology& ontology,
                                  const std::string& path);

/// Binary counterparts for large corpora (little-endian; see
/// util/binary_stream.h). Loading revalidates every document against
/// the ontology.
util::Status SaveCorpusBinary(const Corpus& corpus, const std::string& path);

util::StatusOr<Corpus> LoadCorpusBinary(const ontology::Ontology& ontology,
                                        const std::string& path);

/// Sniffs the format (binary magic vs text header) and dispatches.
util::StatusOr<Corpus> LoadCorpusAuto(const ontology::Ontology& ontology,
                                      const std::string& path);

}  // namespace ecdr::corpus

#endif  // ECDR_CORPUS_CORPUS_IO_H_
