#include "corpus/corpus.h"

#include <algorithm>
#include <unordered_map>

#include "util/stats.h"

namespace ecdr::corpus {

util::Status Corpus::ValidateDocument(const Document& doc) const {
  if (doc.empty()) {
    return util::InvalidArgumentError("document has no concepts");
  }
  // Concepts are sorted, so the largest is at the back.
  const ontology::ConceptId largest = doc.concepts().back();
  if (!ontology_->Contains(largest)) {
    return util::InvalidArgumentError(
        "document references concept id " + std::to_string(largest) +
        " outside the ontology (" + std::to_string(ontology_->num_concepts()) +
        " concepts)");
  }
  return util::Status::Ok();
}

util::StatusOr<DocId> Corpus::AddDocument(Document doc) {
  ECDR_RETURN_IF_ERROR(ValidateDocument(doc));
  const bool tail_full =
      !segments_.empty() && segment_target_ > 0 &&
      segments_.back()->docs.size() >= segment_target_;
  if (segments_.empty() || tail_full) {
    auto segment = std::make_shared<Segment>();
    segment->base = num_documents_;
    segments_.push_back(std::move(segment));
  } else if (segments_.back().use_count() > 1) {
    // The tail is shared with a copy (a published snapshot): clone it
    // before writing so that copy keeps its frozen view — copy-on-write.
    segments_.back() = std::make_shared<Segment>(*segments_.back());
  }
  segments_.back()->docs.push_back(std::move(doc));
  return num_documents_++;
}

Corpus::Segment* Corpus::MutableSegmentFor(DocId id) {
  std::size_t s = segments_.size() - 1;
  while (segments_[s]->base > id) --s;
  if (segments_[s].use_count() > 1) {
    segments_[s] = std::make_shared<Segment>(*segments_[s]);
  }
  return segments_[s].get();
}

util::Status Corpus::DeleteDocument(DocId id) {
  if (id >= num_documents_) {
    return util::NotFoundError("document " + std::to_string(id) +
                               " does not exist");
  }
  if (document(id).empty()) {
    return util::NotFoundError("document " + std::to_string(id) +
                               " is already deleted");
  }
  Segment* segment = MutableSegmentFor(id);
  segment->docs[id - segment->base] = Document();
  ++num_tombstones_;
  return util::Status::Ok();
}

util::Status Corpus::UpdateDocument(DocId id, Document doc) {
  ECDR_RETURN_IF_ERROR(ValidateDocument(doc));
  if (id >= num_documents_) {
    return util::NotFoundError("document " + std::to_string(id) +
                               " does not exist");
  }
  if (document(id).empty()) {
    return util::NotFoundError("document " + std::to_string(id) +
                               " is deleted; updates cannot resurrect it");
  }
  Segment* segment = MutableSegmentFor(id);
  segment->docs[id - segment->base] = std::move(doc);
  return util::Status::Ok();
}

util::Status Corpus::AppendRestoredSegment(DocId base,
                                           std::vector<Document> docs) {
  if (base != num_documents_) {
    return util::InvalidArgumentError(
        "restored segment base " + std::to_string(base) +
        " does not continue the corpus at " + std::to_string(num_documents_));
  }
  std::uint32_t tombstones = 0;
  for (const Document& doc : docs) {
    if (doc.empty()) {
      ++tombstones;  // A tombstone slot, legitimate in a restore.
      continue;
    }
    ECDR_RETURN_IF_ERROR(ValidateDocument(doc));
  }
  auto segment = std::make_shared<Segment>();
  segment->base = base;
  segment->docs = std::move(docs);
  num_documents_ += static_cast<std::uint32_t>(segment->docs.size());
  num_tombstones_ += tombstones;
  segments_.push_back(std::move(segment));
  return util::Status::Ok();
}

Corpus Corpus::Compacted(std::uint32_t min_docs_per_segment) const {
  Corpus result(*ontology_);
  result.segment_target_ = segment_target_;
  result.num_documents_ = num_documents_;
  result.num_tombstones_ = num_tombstones_;
  std::shared_ptr<Segment> merged;
  for (const std::shared_ptr<Segment>& segment : segments_) {
    if (merged != nullptr) {
      // A merge run is open: keep absorbing until it reaches the target
      // (regardless of the absorbed segment's own size — a hole in the
      // middle would break the contiguous-id invariant).
      merged->docs.insert(merged->docs.end(), segment->docs.begin(),
                          segment->docs.end());
      if (merged->docs.size() >= min_docs_per_segment) merged = nullptr;
      continue;
    }
    if (segment->docs.size() >= min_docs_per_segment) {
      result.segments_.push_back(segment);  // Shared untouched.
      continue;
    }
    merged = std::make_shared<Segment>();
    merged->base = segment->base;
    merged->docs = segment->docs;
    result.segments_.push_back(merged);
  }
  return result;
}

Corpus Resharded(const Corpus& source, std::size_t num_segments) {
  ECDR_CHECK_GT(num_segments, 0u);
  Corpus result(source.ontology());
  const std::uint32_t n = source.num_documents();
  result.set_segment_target(static_cast<std::uint32_t>(
      (n + num_segments - 1) / num_segments));
  for (DocId d = 0; d < n; ++d) {
    const util::StatusOr<DocId> added = result.AddDocument(source.document(d));
    ECDR_CHECK(added.ok());
  }
  return result;
}

CorpusStats ComputeCorpusStats(const Corpus& corpus) {
  CorpusStats stats;
  stats.num_documents = corpus.num_documents();
  util::RunningStat sizes;
  std::unordered_map<ontology::ConceptId, std::uint32_t> cf;
  for (DocId d = 0; d < corpus.num_documents(); ++d) {
    const Document& doc = corpus.document(d);
    sizes.Add(static_cast<double>(doc.size()));
    for (ontology::ConceptId c : doc.concepts()) ++cf[c];
  }
  stats.num_distinct_concepts = static_cast<std::uint32_t>(cf.size());
  stats.avg_concepts_per_document = sizes.mean();
  stats.min_concepts_per_document = static_cast<std::size_t>(sizes.min());
  stats.max_concepts_per_document = static_cast<std::size_t>(sizes.max());
  util::RunningStat cf_stat;
  for (const auto& [concept_id, count] : cf) {
    cf_stat.Add(static_cast<double>(count));
  }
  stats.cf_mean = cf_stat.mean();
  stats.cf_stddev = cf_stat.stddev();
  return stats;
}

}  // namespace ecdr::corpus
