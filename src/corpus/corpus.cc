#include "corpus/corpus.h"

#include <algorithm>
#include <unordered_map>

#include "util/stats.h"

namespace ecdr::corpus {

util::StatusOr<DocId> Corpus::AddDocument(Document doc) {
  if (doc.empty()) {
    return util::InvalidArgumentError("document has no concepts");
  }
  // Concepts are sorted, so the largest is at the back.
  const ontology::ConceptId largest = doc.concepts().back();
  if (!ontology_->Contains(largest)) {
    return util::InvalidArgumentError(
        "document references concept id " + std::to_string(largest) +
        " outside the ontology (" + std::to_string(ontology_->num_concepts()) +
        " concepts)");
  }
  const bool tail_full =
      !segments_.empty() && segment_target_ > 0 &&
      segments_.back()->docs.size() >= segment_target_;
  if (segments_.empty() || tail_full) {
    auto segment = std::make_shared<Segment>();
    segment->base = num_documents_;
    segments_.push_back(std::move(segment));
  } else if (segments_.back().use_count() > 1) {
    // The tail is shared with a copy (a published snapshot): clone it
    // before writing so that copy keeps its frozen view — copy-on-write.
    segments_.back() = std::make_shared<Segment>(*segments_.back());
  }
  segments_.back()->docs.push_back(std::move(doc));
  return num_documents_++;
}

Corpus Resharded(const Corpus& source, std::size_t num_segments) {
  ECDR_CHECK_GT(num_segments, 0u);
  Corpus result(source.ontology());
  const std::uint32_t n = source.num_documents();
  result.set_segment_target(static_cast<std::uint32_t>(
      (n + num_segments - 1) / num_segments));
  for (DocId d = 0; d < n; ++d) {
    const util::StatusOr<DocId> added = result.AddDocument(source.document(d));
    ECDR_CHECK(added.ok());
  }
  return result;
}

CorpusStats ComputeCorpusStats(const Corpus& corpus) {
  CorpusStats stats;
  stats.num_documents = corpus.num_documents();
  util::RunningStat sizes;
  std::unordered_map<ontology::ConceptId, std::uint32_t> cf;
  for (DocId d = 0; d < corpus.num_documents(); ++d) {
    const Document& doc = corpus.document(d);
    sizes.Add(static_cast<double>(doc.size()));
    for (ontology::ConceptId c : doc.concepts()) ++cf[c];
  }
  stats.num_distinct_concepts = static_cast<std::uint32_t>(cf.size());
  stats.avg_concepts_per_document = sizes.mean();
  stats.min_concepts_per_document = static_cast<std::size_t>(sizes.min());
  stats.max_concepts_per_document = static_cast<std::size_t>(sizes.max());
  util::RunningStat cf_stat;
  for (const auto& [concept_id, count] : cf) {
    cf_stat.Add(static_cast<double>(count));
  }
  stats.cf_mean = cf_stat.mean();
  stats.cf_stddev = cf_stat.stddev();
  return stats;
}

}  // namespace ecdr::corpus
