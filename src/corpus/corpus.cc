#include "corpus/corpus.h"

#include <algorithm>
#include <unordered_map>

#include "util/stats.h"

namespace ecdr::corpus {

util::StatusOr<DocId> Corpus::AddDocument(Document doc) {
  if (doc.empty()) {
    return util::InvalidArgumentError("document has no concepts");
  }
  // Concepts are sorted, so the largest is at the back.
  const ontology::ConceptId largest = doc.concepts().back();
  if (!ontology_->Contains(largest)) {
    return util::InvalidArgumentError(
        "document references concept id " + std::to_string(largest) +
        " outside the ontology (" + std::to_string(ontology_->num_concepts()) +
        " concepts)");
  }
  documents_.push_back(std::move(doc));
  return static_cast<DocId>(documents_.size() - 1);
}

CorpusStats ComputeCorpusStats(const Corpus& corpus) {
  CorpusStats stats;
  stats.num_documents = corpus.num_documents();
  util::RunningStat sizes;
  std::unordered_map<ontology::ConceptId, std::uint32_t> cf;
  for (DocId d = 0; d < corpus.num_documents(); ++d) {
    const Document& doc = corpus.document(d);
    sizes.Add(static_cast<double>(doc.size()));
    for (ontology::ConceptId c : doc.concepts()) ++cf[c];
  }
  stats.num_distinct_concepts = static_cast<std::uint32_t>(cf.size());
  stats.avg_concepts_per_document = sizes.mean();
  stats.min_concepts_per_document = static_cast<std::size_t>(sizes.min());
  stats.max_concepts_per_document = static_cast<std::size_t>(sizes.max());
  util::RunningStat cf_stat;
  for (const auto& [concept_id, count] : cf) {
    cf_stat.Add(static_cast<double>(count));
  }
  stats.cf_mean = cf_stat.mean();
  stats.cf_stddev = cf_stat.stddev();
  return stats;
}

}  // namespace ecdr::corpus
