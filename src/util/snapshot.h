// Atomic snapshot publication: the root-pointer swap behind the
// engine's copy-on-write generations (DESIGN.md, "Snapshot lifecycle").
//
// A SnapshotHandle<T> holds the current immutable generation of some
// state as a shared_ptr<const T>. Readers call Acquire() — one atomic
// load — and then work against that generation for as long as they
// like; the refcount keeps it alive even after a writer publishes a
// successor. Writers build the next generation off to the side and
// Publish() it, which atomically swaps the root and moves the
// superseded generation onto a retire list.
//
// The retire list holds weak references only: a retired generation dies
// the moment its last reader drops it. It exists for observability —
// retired_live() says how many superseded generations in-flight readers
// still pin, which is the quantity the snapshot-churn bench asserts
// drains to zero at steady state (no generation leak).
//
// Concurrency contract: Acquire() may be called from any thread at any
// time and never blocks on a writer (std::atomic<std::shared_ptr>
// load). Publish() is called by one writer at a time — callers
// serialize publishes themselves (core::SnapshotBuilder does, under its
// writer mutex); the retire-list mutex below guards only writer-side
// bookkeeping and is never touched by readers.

#ifndef ECDR_UTIL_SNAPSHOT_H_
#define ECDR_UTIL_SNAPSHOT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

namespace ecdr::util {

template <typename T>
class SnapshotHandle {
 public:
  struct Stats {
    std::uint64_t published = 0;     // total Publish() calls
    std::uint64_t acquires = 0;      // total Acquire() calls
    std::size_t retired_live = 0;    // superseded generations still pinned
  };

  SnapshotHandle() = default;
  SnapshotHandle(const SnapshotHandle&) = delete;
  SnapshotHandle& operator=(const SnapshotHandle&) = delete;

  /// The current generation; never null once the owner has published
  /// the initial one. Wait-free with respect to publishers.
  std::shared_ptr<const T> Acquire() const {
    acquires_.fetch_add(1, std::memory_order_relaxed);
    return root_.load(std::memory_order_acquire);
  }

  /// Swaps `next` in as the current generation and retires the previous
  /// one. Callers serialize publishes (single writer at a time).
  void Publish(std::shared_ptr<const T> next) {
    std::shared_ptr<const T> old =
        root_.exchange(std::move(next), std::memory_order_acq_rel);
    // Drop our strong reference first: a generation nobody reads anymore
    // dies here and never enters the retire list.
    std::weak_ptr<const T> retired = old;
    old.reset();
    std::lock_guard<std::mutex> lock(retired_mutex_);
    ++published_;
    if (!retired.expired()) retired_.push_back(std::move(retired));
    PruneLocked();
  }

  Stats stats() const {
    Stats stats;
    stats.acquires = acquires_.load(std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(retired_mutex_);
    stats.published = published_;
    for (const std::weak_ptr<const T>& gen : retired_) {
      if (!gen.expired()) ++stats.retired_live;
    }
    return stats;
  }

  /// Superseded generations still held by in-flight readers.
  std::size_t retired_live() const { return stats().retired_live; }

 private:
  void PruneLocked() {
    std::erase_if(retired_,
                  [](const std::weak_ptr<const T>& gen) { return gen.expired(); });
  }

  std::atomic<std::shared_ptr<const T>> root_;
  mutable std::atomic<std::uint64_t> acquires_{0};

  // Writer-side bookkeeping only; never taken by Acquire().
  mutable std::mutex retired_mutex_;
  std::vector<std::weak_ptr<const T>> retired_;
  std::uint64_t published_ = 0;
};

}  // namespace ecdr::util

#endif  // ECDR_UTIL_SNAPSHOT_H_
