#include "util/string_util.h"

#include <cerrno>
#include <cstdlib>
#include <limits>

namespace ecdr::util {

std::vector<std::string_view> Split(std::string_view text, char delimiter) {
  std::vector<std::string_view> pieces;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(delimiter, start);
    if (pos == std::string_view::npos) {
      pieces.push_back(text.substr(start));
      return pieces;
    }
    pieces.push_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string Join(const std::vector<std::string>& pieces,
                 std::string_view delimiter) {
  std::string result;
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) result.append(delimiter);
    result.append(pieces[i]);
  }
  return result;
}

std::string_view StripWhitespace(std::string_view text) {
  const auto is_space = [](char c) {
    return c == ' ' || c == '\t' || c == '\r' || c == '\n';
  };
  while (!text.empty() && is_space(text.front())) text.remove_prefix(1);
  while (!text.empty() && is_space(text.back())) text.remove_suffix(1);
  return text;
}

bool ParseUint64(std::string_view text, std::uint64_t* out) {
  if (text.empty() || text.front() == '-' || text.front() == '+') return false;
  // strtoull requires NUL termination; string_views here are short.
  const std::string buffer(text);
  errno = 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(buffer.c_str(), &end, 10);
  if (errno != 0 || end != buffer.c_str() + buffer.size()) return false;
  *out = value;
  return true;
}

bool ParseUint32(std::string_view text, std::uint32_t* out) {
  std::uint64_t wide = 0;
  if (!ParseUint64(text, &wide)) return false;
  if (wide > std::numeric_limits<std::uint32_t>::max()) return false;
  *out = static_cast<std::uint32_t>(wide);
  return true;
}

bool ParseDouble(std::string_view text, double* out) {
  if (text.empty()) return false;
  const std::string buffer(text);
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(buffer.c_str(), &end);
  if (errno != 0 || end != buffer.c_str() + buffer.size()) return false;
  *out = value;
  return true;
}

}  // namespace ecdr::util
