#include "util/random.h"

#include <cmath>
#include <unordered_set>

namespace ecdr::util {

namespace {

std::uint64_t SplitMix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t RotL(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : state_) word = SplitMix64(sm);
}

std::uint64_t Rng::Next() {
  const std::uint64_t result = RotL(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = RotL(state_[3], 45);
  return result;
}

std::uint64_t Rng::UniformInt(std::uint64_t lo, std::uint64_t hi) {
  ECDR_CHECK_LE(lo, hi);
  const std::uint64_t span = hi - lo + 1;  // Wraps to 0 for the full range.
  if (span == 0) return Next();
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = (~std::uint64_t{0}) - (~std::uint64_t{0}) % span;
  std::uint64_t draw = Next();
  while (ECDR_PREDICT_FALSE(draw >= limit)) draw = Next();
  return lo + draw % span;
}

double Rng::UniformDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

double Rng::Exponential(double mean) {
  ECDR_CHECK_GT(mean, 0.0);
  // 1 - UniformDouble() lies in (0, 1], so the logarithm is finite.
  return -mean * std::log(1.0 - UniformDouble());
}

std::vector<std::uint32_t> Rng::SampleWithoutReplacement(
    std::uint32_t universe, std::uint32_t count) {
  ECDR_CHECK_LE(count, universe);
  std::vector<std::uint32_t> result;
  result.reserve(count);
  if (count * 3ULL >= universe) {
    // Dense case: partial Fisher-Yates over the full universe.
    std::vector<std::uint32_t> pool(universe);
    for (std::uint32_t i = 0; i < universe; ++i) pool[i] = i;
    for (std::uint32_t i = 0; i < count; ++i) {
      std::uint32_t j =
          static_cast<std::uint32_t>(UniformInt(i, universe - 1));
      std::swap(pool[i], pool[j]);
      result.push_back(pool[i]);
    }
    return result;
  }
  // Sparse case: rejection sampling with a hash set.
  std::unordered_set<std::uint32_t> seen;
  seen.reserve(count * 2);
  while (result.size() < count) {
    auto candidate = static_cast<std::uint32_t>(UniformInt(0, universe - 1));
    if (seen.insert(candidate).second) result.push_back(candidate);
  }
  return result;
}

}  // namespace ecdr::util
