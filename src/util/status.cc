#include "util/status.h"

namespace ecdr::util {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kIoError:
      return "IO_ERROR";
    case StatusCode::kCancelled:
      return "CANCELLED";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kDataLoss:
      return "DATA_LOSS";
    case StatusCode::kNumStatusCodes:
      break;  // Enumeration sentinel, not a real code.
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string result = StatusCodeName(code_);
  result += ": ";
  result += message_;
  return result;
}

}  // namespace ecdr::util
