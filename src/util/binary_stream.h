// Little-endian binary (de)serialization primitives for the *.bin
// formats. The text formats (ontology_io/corpus_io) stay the durable
// interchange representation; the binary formats exist because a
// SNOMED-scale ontology (296K concepts, ~3M Dewey components) takes
// noticeable time to re-parse from text on every process start.
//
// Readers validate as they go and report failures via Status instead of
// crashing on truncated or corrupt files.

#ifndef ECDR_UTIL_BINARY_STREAM_H_
#define ECDR_UTIL_BINARY_STREAM_H_

#include <cstdint>
#include <istream>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace ecdr::util {

/// Sequential little-endian writer over a std::ostream.
class BinaryWriter {
 public:
  explicit BinaryWriter(std::ostream& out) : out_(&out) {}

  void WriteU32(std::uint32_t value);
  void WriteU64(std::uint64_t value);
  /// Length-prefixed (u32) bytes.
  void WriteString(const std::string& value);
  void WriteU32Vector(const std::vector<std::uint32_t>& values);

  /// True if every write so far succeeded.
  bool ok() const { return out_->good(); }

 private:
  std::ostream* out_;
};

/// Sequential little-endian reader; all methods fail cleanly at EOF.
class BinaryReader {
 public:
  /// `max_allocation` guards length prefixes so corrupt files cannot
  /// trigger absurd allocations.
  explicit BinaryReader(std::istream& in,
                        std::uint64_t max_allocation = 1ULL << 32)
      : in_(&in), max_allocation_(max_allocation) {}

  Status ReadU32(std::uint32_t* out);
  Status ReadU64(std::uint64_t* out);
  Status ReadString(std::string* out);
  Status ReadU32Vector(std::vector<std::uint32_t>* out);

 private:
  Status ReadBytes(void* buffer, std::size_t count);

  std::istream* in_;
  std::uint64_t max_allocation_;
};

// Buffer-based primitives for formats that need to frame and checksum a
// record before it touches a file descriptor (the storage WAL and
// snapshot images). Unlike BinaryWriter these build the record in
// memory, so the caller can CRC the finished bytes and hand the whole
// record to a single write.

/// Appends `value` to `out` little-endian.
void AppendU32(std::string& out, std::uint32_t value);
void AppendU64(std::string& out, std::uint64_t value);
/// Appends the raw array little-endian with a u64 element-count prefix.
void AppendU32Array(std::string& out, const std::uint32_t* values,
                    std::size_t count);

/// Bounds-checked sequential reader over an in-memory byte range. All
/// methods fail with kDataLoss on truncation — by the time bytes are in
/// memory, running out of them means the record was torn, not that an
/// I/O operation failed.
class ByteParser {
 public:
  explicit ByteParser(std::string_view data) : data_(data) {}

  Status ReadU32(std::uint32_t* out);
  Status ReadU64(std::uint64_t* out);
  /// Reads a u64 element-count prefix, then that many u32s.
  /// `max_elements` guards corrupt counts against absurd allocations.
  Status ReadU32Array(std::vector<std::uint32_t>* out,
                      std::uint64_t max_elements = 1ULL << 32);
  /// Hands back a view of the next `count` raw bytes without copying.
  Status ReadBytes(std::size_t count, std::string_view* out);

  /// Bytes not yet consumed.
  std::size_t remaining() const { return data_.size() - pos_; }
  bool exhausted() const { return pos_ == data_.size(); }

 private:
  std::string_view data_;
  std::size_t pos_ = 0;
};

/// Bytes remaining between the stream's current position and its end
/// (position restored before returning). Loaders use this to clamp
/// BinaryReader's allocation guard to the file's actual size, so a
/// corrupt length prefix can never allocate more than the file could
/// possibly hold. Returns UINT64_MAX when the stream is not seekable.
std::uint64_t StreamByteSize(std::istream& in);

}  // namespace ecdr::util

#endif  // ECDR_UTIL_BINARY_STREAM_H_
