// Fixed-size worker pool with a shared FIFO task queue.
//
// The pool exists for intra-query parallelism on the serving path: kNDS
// verifies DRC exact distances in concurrent waves, and the baseline
// rankers shard their document scans. Tasks receive the executing *lane*
// index so a call site can hand each lane its own scratch state (for
// example a per-lane Drc engine) without locking:
//
//   [0, num_threads())  — pool worker threads;
//   num_threads()       — the calling thread, which helps drain its own
//                         batch inside ParallelFor.
//
// Scratch arrays therefore need num_threads() + 1 slots. Within one
// ParallelFor call no two in-flight items ever share a lane, which is
// the invariant per-call scratch relies on; distinct concurrent
// ParallelFor calls (e.g. two RankingEngine readers) may reuse the same
// lane numbers but index into their own per-call scratch.

#ifndef ECDR_UTIL_THREAD_POOL_H_
#define ECDR_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "util/deadline.h"

namespace ecdr::util {

class ThreadPool {
 public:
  /// Hardware concurrency, at least 1 (the standard permits 0 for
  /// "unknown").
  static std::size_t DefaultThreads();

  /// Spawns `num_threads` workers. 0 is allowed: every ParallelFor then
  /// degenerates to a serial loop on the caller.
  explicit ThreadPool(std::size_t num_threads);

  /// Drains already-queued tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t num_threads() const { return threads_.size(); }

  /// Enqueues fn; some worker eventually invokes fn(worker_lane).
  /// Requires a non-empty pool. Safe from multiple threads.
  void Submit(std::function<void(std::size_t)> fn);

  /// Runs fn(item, lane) for every item in [0, n) and blocks until all
  /// invocations complete. The calling thread participates with lane ==
  /// num_threads(). Safe from multiple threads concurrently; must not be
  /// called from inside a pool task (a worker waiting on its own pool
  /// can deadlock).
  ///
  /// When `cancel` is non-null and becomes cancelled mid-batch, the
  /// remaining unclaimed items are drained without invoking fn, so the
  /// batch unblocks promptly; items already running finish normally.
  /// The caller cannot tell from ParallelFor alone which items ran —
  /// fn must record its own completions when that matters.
  void ParallelFor(std::size_t n,
                   const std::function<void(std::size_t, std::size_t)>& fn,
                   const CancelToken* cancel = nullptr);

 private:
  void WorkerLoop(std::size_t lane);

  std::mutex mutex_;
  std::condition_variable wake_;
  std::deque<std::function<void(std::size_t)>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace ecdr::util

#endif  // ECDR_UTIL_THREAD_POOL_H_
