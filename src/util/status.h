// Lightweight error propagation without exceptions.
//
// Status carries an error code plus a human-readable message; StatusOr<T>
// carries either a value or a non-OK Status. The design mirrors
// absl::Status / absl::StatusOr but is self-contained.

#ifndef ECDR_UTIL_STATUS_H_
#define ECDR_UTIL_STATUS_H_

#include <string>
#include <utility>
#include <variant>

#include "util/macros.h"

namespace ecdr::util {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kFailedPrecondition,
  kOutOfRange,
  kInternal,
  kIoError,
  kCancelled,
  kDeadlineExceeded,
  kResourceExhausted,
  // Unrecoverable corruption: a checksum mismatch, a torn write, or a
  // file whose commit footer never landed. Distinct from kIoError (the
  // operation itself failed) — kDataLoss means the bytes came back fine
  // but are not the bytes that were written.
  kDataLoss,
  // Not a real code: one past the last valid value, so tests can
  // enumerate every code and assert it has a stable name. Keep last.
  kNumStatusCodes,
};

/// Returns a stable human-readable name for `code` (e.g. "INVALID_ARGUMENT").
const char* StatusCodeName(StatusCode code);

/// An OK-or-error result. Cheap to copy when OK (empty message).
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CODE_NAME>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

inline Status InvalidArgumentError(std::string message) {
  return Status(StatusCode::kInvalidArgument, std::move(message));
}
inline Status NotFoundError(std::string message) {
  return Status(StatusCode::kNotFound, std::move(message));
}
inline Status FailedPreconditionError(std::string message) {
  return Status(StatusCode::kFailedPrecondition, std::move(message));
}
inline Status OutOfRangeError(std::string message) {
  return Status(StatusCode::kOutOfRange, std::move(message));
}
inline Status InternalError(std::string message) {
  return Status(StatusCode::kInternal, std::move(message));
}
inline Status IoError(std::string message) {
  return Status(StatusCode::kIoError, std::move(message));
}
inline Status CancelledError(std::string message) {
  return Status(StatusCode::kCancelled, std::move(message));
}
inline Status DeadlineExceededError(std::string message) {
  return Status(StatusCode::kDeadlineExceeded, std::move(message));
}
inline Status ResourceExhaustedError(std::string message) {
  return Status(StatusCode::kResourceExhausted, std::move(message));
}
inline Status DataLossError(std::string message) {
  return Status(StatusCode::kDataLoss, std::move(message));
}

/// Either a T or a non-OK Status. Accessing value() on an error aborts.
template <typename T>
class StatusOr {
 public:
  // Implicit conversions from T and Status intentionally mirror
  // absl::StatusOr ergonomics: `return value;` / `return SomeError(...);`.
  StatusOr(T value) : rep_(std::move(value)) {}  // NOLINT(runtime/explicit)
  StatusOr(Status status) : rep_(std::move(status)) {  // NOLINT
    ECDR_CHECK(!std::get<Status>(rep_).ok());
  }

  bool ok() const { return std::holds_alternative<T>(rep_); }

  Status status() const {
    return ok() ? Status::Ok() : std::get<Status>(rep_);
  }

  const T& value() const& {
    ECDR_CHECK(ok());
    return std::get<T>(rep_);
  }
  T& value() & {
    ECDR_CHECK(ok());
    return std::get<T>(rep_);
  }
  T&& value() && {
    ECDR_CHECK(ok());
    return std::get<T>(std::move(rep_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<Status, T> rep_;
};

// Propagates a non-OK status out of the enclosing function.
#define ECDR_RETURN_IF_ERROR(expr)                \
  do {                                            \
    ::ecdr::util::Status ecdr_status__ = (expr);  \
    if (!ecdr_status__.ok()) return ecdr_status__; \
  } while (0)

}  // namespace ecdr::util

#endif  // ECDR_UTIL_STATUS_H_
