// Wall-clock timing for benchmarks and per-phase cost accounting.

#ifndef ECDR_UTIL_TIMER_H_
#define ECDR_UTIL_TIMER_H_

#include <chrono>

namespace ecdr::util {

/// Measures elapsed wall-clock time with a steady (monotonic) clock.
class WallTimer {
 public:
  WallTimer() { Restart(); }

  void Restart() { start_ = std::chrono::steady_clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const {
    const auto now = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(now - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Adds the scope's elapsed time to an accumulator on destruction.
/// Used by kNDS to split query time into traversal vs. distance phases.
class ScopedAccumulator {
 public:
  explicit ScopedAccumulator(double* total_seconds)
      : total_seconds_(total_seconds) {}
  ~ScopedAccumulator() { *total_seconds_ += timer_.ElapsedSeconds(); }

  ScopedAccumulator(const ScopedAccumulator&) = delete;
  ScopedAccumulator& operator=(const ScopedAccumulator&) = delete;

 private:
  double* total_seconds_;
  WallTimer timer_;
};

}  // namespace ecdr::util

#endif  // ECDR_UTIL_TIMER_H_
