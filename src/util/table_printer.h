// Aligned-table and CSV output for the benchmark harness. Every bench
// binary prints the rows/series of the corresponding paper table or
// figure through this class so output stays uniform and parseable.

#ifndef ECDR_UTIL_TABLE_PRINTER_H_
#define ECDR_UTIL_TABLE_PRINTER_H_

#include <ostream>
#include <string>
#include <vector>

namespace ecdr::util {

/// Collects rows of string cells and renders them aligned or as CSV.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// Appends a row; short rows are padded with empty cells.
  void AddRow(std::vector<std::string> cells);

  /// Formatting helpers for numeric cells.
  static std::string FormatDouble(double value, int precision = 3);
  static std::string FormatSeconds(double seconds);

  /// Renders with space-padded columns and a separator under the header.
  void Print(std::ostream& os) const;

  /// Renders as RFC-4180-ish CSV (cells containing commas get quoted).
  void PrintCsv(std::ostream& os) const;

  std::size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ecdr::util

#endif  // ECDR_UTIL_TABLE_PRINTER_H_
