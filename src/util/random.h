// Deterministic pseudo-random number generation.
//
// All randomized components of the library (synthetic ontology/corpus
// generators, query workloads, property tests) take an explicit Rng so
// runs are reproducible from a single seed. The generator is
// xoshiro256**, seeded through SplitMix64, which is both fast and of far
// higher quality than std::minstd/rand.

#ifndef ECDR_UTIL_RANDOM_H_
#define ECDR_UTIL_RANDOM_H_

#include <cstdint>
#include <vector>

#include "util/macros.h"

namespace ecdr::util {

/// xoshiro256** pseudo-random generator with convenience sampling helpers.
class Rng {
 public:
  /// Seeds the full 256-bit state from `seed` via SplitMix64.
  explicit Rng(std::uint64_t seed);

  /// Returns a uniformly distributed 64-bit value.
  std::uint64_t Next();

  /// Returns a uniform integer in [lo, hi]; requires lo <= hi.
  std::uint64_t UniformInt(std::uint64_t lo, std::uint64_t hi);

  /// Returns a uniform double in [0, 1).
  double UniformDouble();

  /// Returns true with probability p (clamped to [0, 1]).
  bool Bernoulli(double p);

  /// Returns a sample from Exponential(1/mean), i.e. with the given mean.
  double Exponential(double mean);

  /// Fisher-Yates shuffles `items` in place.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(UniformInt(0, i - 1));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// Returns `count` distinct indices drawn uniformly from [0, universe).
  /// Requires count <= universe.
  std::vector<std::uint32_t> SampleWithoutReplacement(std::uint32_t universe,
                                                      std::uint32_t count);

 private:
  std::uint64_t state_[4];
};

}  // namespace ecdr::util

#endif  // ECDR_UTIL_RANDOM_H_
