// Thread-local heap-allocation counting, used by the allocation
// regression test (tests/drc_alloc_test.cc) and the DRC hot-path bench
// (bench/bench_drc_hotpath.cc) to prove that steady-state distance
// calls stay off the allocator.
//
// Two layers:
//   1. The always-available counters + AllocationTally snapshot helper
//      (this header, no macro needed). They only move when layer 2 is
//      compiled in somewhere in the binary.
//   2. Replacement global operator new/delete that bump the counters.
//      The replacement operators must be non-inline namespace-scope
//      definitions and must appear exactly once per binary, so they are
//      gated: define ECDR_ALLOC_COUNTER_DEFINE_NEW before including
//      this header in exactly ONE translation unit of the test or bench
//      executable. Never define it in a library TU.
//
// The hook counts every allocation on the calling thread, including
// ones from the standard library and the test framework — callers
// bracket exactly the region under measurement with AllocationTally.

#ifndef ECDR_UTIL_ALLOC_COUNTER_H_
#define ECDR_UTIL_ALLOC_COUNTER_H_

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>

namespace ecdr::util {

struct AllocCounts {
  std::uint64_t allocations = 0;
  std::uint64_t frees = 0;
  std::uint64_t bytes = 0;
};

namespace alloc_internal {
inline thread_local AllocCounts t_counts;
}  // namespace alloc_internal

/// This thread's cumulative counters since thread start. Zero forever
/// unless the defining TU (ECDR_ALLOC_COUNTER_DEFINE_NEW) is linked in.
inline const AllocCounts& ThisThreadAllocCounts() {
  return alloc_internal::t_counts;
}

inline void NoteAllocation(std::size_t bytes) {
  alloc_internal::t_counts.allocations += 1;
  alloc_internal::t_counts.bytes += bytes;
}

inline void NoteFree() { alloc_internal::t_counts.frees += 1; }

/// Snapshot-diff helper: constructed before the region under test,
/// queried after. Counts only this thread's activity.
class AllocationTally {
 public:
  AllocationTally() : start_(alloc_internal::t_counts) {}

  std::uint64_t allocations() const {
    return alloc_internal::t_counts.allocations - start_.allocations;
  }
  std::uint64_t frees() const {
    return alloc_internal::t_counts.frees - start_.frees;
  }
  std::uint64_t bytes() const {
    return alloc_internal::t_counts.bytes - start_.bytes;
  }

 private:
  AllocCounts start_;
};

}  // namespace ecdr::util

#ifdef ECDR_ALLOC_COUNTER_DEFINE_NEW

namespace ecdr::util::alloc_internal {

inline void* CountedAlloc(std::size_t size) {
  NoteAllocation(size);
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) std::abort();
  return p;
}

inline void* CountedAllocAligned(std::size_t size, std::size_t alignment) {
  NoteAllocation(size);
  if (alignment < sizeof(void*)) alignment = sizeof(void*);
  void* p = nullptr;
  if (posix_memalign(&p, alignment, size == 0 ? alignment : size) != 0) {
    std::abort();
  }
  return p;
}

inline void CountedFree(void* p) {
  if (p == nullptr) return;
  NoteFree();
  std::free(p);
}

}  // namespace ecdr::util::alloc_internal

// Replacement allocation functions ([new.delete.single]/[new.delete.array]).
// Everything funnels through malloc/free, so the aligned and unaligned
// deletes are interchangeable with posix_memalign-produced pointers.
void* operator new(std::size_t size) {
  return ecdr::util::alloc_internal::CountedAlloc(size);
}
void* operator new[](std::size_t size) {
  return ecdr::util::alloc_internal::CountedAlloc(size);
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return ecdr::util::alloc_internal::CountedAlloc(size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return ecdr::util::alloc_internal::CountedAlloc(size);
}
void* operator new(std::size_t size, std::align_val_t alignment) {
  return ecdr::util::alloc_internal::CountedAllocAligned(
      size, static_cast<std::size_t>(alignment));
}
void* operator new[](std::size_t size, std::align_val_t alignment) {
  return ecdr::util::alloc_internal::CountedAllocAligned(
      size, static_cast<std::size_t>(alignment));
}
void* operator new(std::size_t size, std::align_val_t alignment,
                   const std::nothrow_t&) noexcept {
  return ecdr::util::alloc_internal::CountedAllocAligned(
      size, static_cast<std::size_t>(alignment));
}
void* operator new[](std::size_t size, std::align_val_t alignment,
                     const std::nothrow_t&) noexcept {
  return ecdr::util::alloc_internal::CountedAllocAligned(
      size, static_cast<std::size_t>(alignment));
}

void operator delete(void* p) noexcept {
  ecdr::util::alloc_internal::CountedFree(p);
}
void operator delete[](void* p) noexcept {
  ecdr::util::alloc_internal::CountedFree(p);
}
void operator delete(void* p, std::size_t) noexcept {
  ecdr::util::alloc_internal::CountedFree(p);
}
void operator delete[](void* p, std::size_t) noexcept {
  ecdr::util::alloc_internal::CountedFree(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept {
  ecdr::util::alloc_internal::CountedFree(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  ecdr::util::alloc_internal::CountedFree(p);
}
void operator delete(void* p, std::align_val_t) noexcept {
  ecdr::util::alloc_internal::CountedFree(p);
}
void operator delete[](void* p, std::align_val_t) noexcept {
  ecdr::util::alloc_internal::CountedFree(p);
}
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  ecdr::util::alloc_internal::CountedFree(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  ecdr::util::alloc_internal::CountedFree(p);
}

#endif  // ECDR_ALLOC_COUNTER_DEFINE_NEW

#endif  // ECDR_UTIL_ALLOC_COUNTER_H_
