#include "util/histogram.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/macros.h"

namespace ecdr::util {

Histogram::Histogram(double min_bound, double growth,
                     std::size_t num_buckets)
    : min_bound_(min_bound), growth_(growth), counts_(num_buckets) {
  ECDR_CHECK(min_bound > 0.0);
  ECDR_CHECK(growth > 1.0);
  ECDR_CHECK(num_buckets >= 2);
  // bounds_[i] is the exclusive upper bound of bucket i; the last
  // bucket needs none. Iterative multiplication keeps adjacent bounds
  // in the exact ratio `growth`, which the merge-shape check relies on.
  bounds_.reserve(num_buckets - 1);
  double bound = min_bound;
  for (std::size_t i = 0; i + 1 < num_buckets; ++i) {
    bounds_.push_back(bound);
    bound *= growth;
  }
}

std::size_t Histogram::BucketFor(double value) const {
  if (std::isnan(value)) return counts_.size() - 1;
  if (value < min_bound_) return 0;
  // First bound strictly greater than value -> that bucket holds it.
  const auto it = std::upper_bound(bounds_.begin(), bounds_.end(), value);
  return static_cast<std::size_t>(it - bounds_.begin());
}

void Histogram::Record(double value) {
  counts_[BucketFor(value)].fetch_add(1, std::memory_order_relaxed);
  total_.fetch_add(1, std::memory_order_relaxed);
  double sum = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(sum, sum + value,
                                     std::memory_order_relaxed)) {
  }
}

std::uint64_t Histogram::TotalCount() const {
  return total_.load(std::memory_order_relaxed);
}

double Histogram::Sum() const { return sum_.load(std::memory_order_relaxed); }

double Histogram::bucket_upper(std::size_t i) const {
  if (i + 1 < counts_.size()) return bounds_[i];
  return std::numeric_limits<double>::infinity();
}

double Histogram::Quantile(double q) const {
  const std::uint64_t total = TotalCount();
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const std::uint64_t rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(q * static_cast<double>(total))));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    seen += counts_[i].load(std::memory_order_relaxed);
    if (seen >= rank) {
      // The last bucket has no finite upper bound; report one growth
      // step past its lower bound so overflow never returns +inf.
      if (i + 1 == counts_.size()) return bucket_lower(i) * growth_;
      return bounds_[i];
    }
  }
  // Concurrent writers can make the per-bucket sum lag total_; fall
  // back to the largest finite answer.
  return bucket_lower(counts_.size() - 1) * growth_;
}

void Histogram::MergeFrom(const Histogram& other) {
  ECDR_CHECK(SameShape(other));
  std::uint64_t merged = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const std::uint64_t n = other.counts_[i].load(std::memory_order_relaxed);
    counts_[i].fetch_add(n, std::memory_order_relaxed);
    merged += n;
  }
  total_.fetch_add(merged, std::memory_order_relaxed);
  const double add = other.Sum();
  double sum = sum_.load(std::memory_order_relaxed);
  while (
      !sum_.compare_exchange_weak(sum, sum + add, std::memory_order_relaxed)) {
  }
}

void Histogram::Reset() {
  for (auto& count : counts_) count.store(0, std::memory_order_relaxed);
  total_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

}  // namespace ecdr::util
