#include "util/thread_pool.h"

#include <atomic>
#include <memory>

#include "util/macros.h"

namespace ecdr::util {

std::size_t ThreadPool::DefaultThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

ThreadPool::ThreadPool(std::size_t num_threads) {
  threads_.reserve(num_threads);
  for (std::size_t lane = 0; lane < num_threads; ++lane) {
    threads_.emplace_back([this, lane] { WorkerLoop(lane); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (std::thread& thread : threads_) thread.join();
}

void ThreadPool::Submit(std::function<void(std::size_t)> fn) {
  ECDR_CHECK(!threads_.empty());
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ECDR_CHECK(!stopping_);
    queue_.push_back(std::move(fn));
  }
  wake_.notify_one();
}

void ThreadPool::WorkerLoop(std::size_t lane) {
  while (true) {
    std::function<void(std::size_t)> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and fully drained.
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task(lane);
  }
}

void ThreadPool::ParallelFor(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn,
    const CancelToken* cancel) {
  if (n == 0) return;
  if (threads_.empty() || n == 1) {
    for (std::size_t i = 0; i < n; ++i) {
      if (cancel != nullptr && cancel->cancelled()) return;
      fn(i, num_threads());
    }
    return;
  }

  // Work-stealing over a shared item counter: each participant loops
  // claiming the next unclaimed item. Helpers that arrive after the
  // batch drained exit immediately, so stale pool tasks are harmless —
  // the shared_ptr keeps the state alive past ParallelFor's return, and
  // `fn` is only dereferenced for successfully claimed items, all of
  // which finish before the caller unblocks.
  struct BatchState {
    const std::function<void(std::size_t, std::size_t)>* fn;
    std::size_t n;
    const CancelToken* cancel;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::mutex mutex;
    std::condition_variable all_done;
  };
  auto state = std::make_shared<BatchState>();
  state->fn = &fn;
  state->n = n;
  state->cancel = cancel;

  const auto drain = [](const std::shared_ptr<BatchState>& batch,
                        std::size_t lane) {
    while (true) {
      const std::size_t i =
          batch->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= batch->n) return;
      // A cancelled batch still claims every item (and counts it done,
      // below) so the waiter's done == n condition holds; it just stops
      // invoking fn, which is what makes the drain prompt.
      if (batch->cancel == nullptr || !batch->cancel->cancelled()) {
        (*batch->fn)(i, lane);
      }
      if (batch->done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
          batch->n) {
        // The waiter checks `done` under the mutex; locking here closes
        // the window between its check and its wait.
        std::lock_guard<std::mutex> lock(batch->mutex);
        batch->all_done.notify_all();
      }
    }
  };

  const std::size_t helpers = std::min(n - 1, num_threads());
  for (std::size_t h = 0; h < helpers; ++h) {
    Submit([state, drain](std::size_t lane) { drain(state, lane); });
  }
  drain(state, num_threads());

  std::unique_lock<std::mutex> lock(state->mutex);
  state->all_done.wait(lock, [&] {
    return state->done.load(std::memory_order_acquire) == state->n;
  });
}

}  // namespace ecdr::util
