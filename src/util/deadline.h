// Wall-clock deadlines and cooperative cancellation for the serving path.
//
// A Deadline is an absolute steady_clock instant; the default-constructed
// value is infinite, so plumbing one through options structs costs nothing
// for callers that never set it. A CancelToken is a shared atomic flag the
// owner (or a FaultInjector) flips to request that in-flight work stop at
// its next check point. Both are designed for very frequent polling:
// Expired() on an infinite deadline is one comparison, and cancelled() is
// one relaxed-ish atomic load, so call sites can afford a check per
// traversal step, per DRC sweep iteration, and per thread-pool task.
//
// Cancellation is cooperative everywhere: nothing is torn down forcibly.
// Components that observe a stop either return kCancelled /
// kDeadlineExceeded (loaders, Drc, QueryExpansion) or switch to their
// anytime finalization path (Knds — see DESIGN.md "Deadlines, degradation,
// and overload").

#ifndef ECDR_UTIL_DEADLINE_H_
#define ECDR_UTIL_DEADLINE_H_

#include <atomic>
#include <chrono>
#include <limits>
#include <string>

#include "util/status.h"

namespace ecdr::util {

/// An absolute point in time after which work should stop. Copyable and
/// cheap; the default value never expires.
class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  /// Never expires.
  Deadline() : time_(Clock::time_point::max()) {}

  static Deadline Infinite() { return Deadline(); }

  /// Expires `seconds` from now. Non-positive budgets are already expired.
  static Deadline After(double seconds) {
    Deadline d;
    d.time_ = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                 std::chrono::duration<double>(seconds));
    return d;
  }

  static Deadline At(Clock::time_point time) {
    Deadline d;
    d.time_ = time;
    return d;
  }

  bool IsInfinite() const { return time_ == Clock::time_point::max(); }

  /// One comparison when infinite; one clock read otherwise.
  bool Expired() const { return !IsInfinite() && Clock::now() >= time_; }

  /// Seconds until expiry (negative once expired); +inf when infinite.
  double RemainingSeconds() const {
    if (IsInfinite()) return std::numeric_limits<double>::infinity();
    return std::chrono::duration<double>(time_ - Clock::now()).count();
  }

  /// For condition-variable wait_until on admission queues.
  Clock::time_point time_point() const { return time_; }

 private:
  Clock::time_point time_;
};

/// A cooperative cancellation flag. The owner keeps the token alive for
/// the duration of the calls it is passed to; workers only ever read it.
class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  void Cancel() { cancelled_.store(true, std::memory_order_release); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_acquire);
  }

  /// Re-arms the token; only safe between runs (tests reuse one token
  /// across many injected-cancellation searches).
  void Reset() { cancelled_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> cancelled_{false};
};

/// Status-producing poll used by components that propagate cancellation
/// as an error (loaders, Drc, QueryExpansion). `token` may be null.
inline Status CheckCancellation(const CancelToken* token,
                                const Deadline& deadline, const char* what) {
  if (token != nullptr && token->cancelled()) {
    return CancelledError(std::string(what) + ": cancelled");
  }
  if (deadline.Expired()) {
    return DeadlineExceededError(std::string(what) + ": deadline exceeded");
  }
  return Status::Ok();
}

}  // namespace ecdr::util

#endif  // ECDR_UTIL_DEADLINE_H_
