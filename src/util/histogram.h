// Fixed log-spaced latency histogram for the serving path.
//
// A Histogram owns a fixed set of buckets whose upper bounds grow
// geometrically from `min_bound` by `growth` per bucket: bucket 0 is
// [0, min_bound), bucket i (1 <= i <= n) is [min*g^{i-1}, min*g^i),
// and the final bucket absorbs everything at or above the last bound
// (including +inf and, defensively, NaN — nothing recorded is ever
// dropped, so TotalCount() equals the number of Record calls). The
// bucket layout is fixed at construction, which is what makes two
// histograms with the same shape mergeable and makes /metrics output
// stable across scrapes.
//
// Record() is thread-safe and lock-free (one relaxed fetch_add per
// call plus a CAS loop for the running sum); readers take a consistent
// -enough view for monitoring without stopping writers. Quantile() is
// the conservative nearest-rank estimate: it returns the UPPER bound
// of the bucket containing the requested rank, so reported p99s never
// understate the true p99 by more than one bucket's width (a factor of
// `growth`).

#ifndef ECDR_UTIL_HISTOGRAM_H_
#define ECDR_UTIL_HISTOGRAM_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

namespace ecdr::util {

class Histogram {
 public:
  /// `min_bound` > 0, `growth` > 1, `num_buckets` >= 2 (one underflow
  /// bucket below min_bound, at least one finite range). The defaults
  /// cover 10us .. ~90s of latency at <= 1.6x resolution.
  explicit Histogram(double min_bound = 1e-5, double growth = 1.6,
                     std::size_t num_buckets = 36);

  // Copying would tear concurrent Record()s; merge explicitly instead.
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  /// Thread-safe; every call lands in exactly one bucket.
  void Record(double value);

  std::uint64_t TotalCount() const;
  double Sum() const;

  /// Conservative nearest-rank quantile, `q` clamped to [0, 1]: the
  /// upper bound of the bucket holding the ceil(q * count)-th sample
  /// (the last bucket reports its lower bound times `growth`). 0 when
  /// empty.
  double Quantile(double q) const;

  /// Adds `other`'s counts and sum into this histogram. Both must have
  /// been constructed with identical (min_bound, growth, num_buckets).
  /// Safe against concurrent Record()s on either side.
  void MergeFrom(const Histogram& other);

  /// Resets every counter to zero (not linearizable against concurrent
  /// writers; meant for tests and between bench sweeps).
  void Reset();

  std::size_t num_buckets() const { return counts_.size(); }
  std::uint64_t bucket_count(std::size_t i) const {
    return counts_[i].load(std::memory_order_relaxed);
  }
  /// Inclusive lower bound of bucket i (0 for the underflow bucket).
  double bucket_lower(std::size_t i) const {
    return i == 0 ? 0.0 : bounds_[i - 1];
  }
  /// Exclusive upper bound of bucket i (+inf for the last bucket).
  double bucket_upper(std::size_t i) const;

  bool SameShape(const Histogram& other) const {
    return min_bound_ == other.min_bound_ && growth_ == other.growth_ &&
           counts_.size() == other.counts_.size();
  }

 private:
  std::size_t BucketFor(double value) const;

  double min_bound_;
  double growth_;
  std::vector<double> bounds_;  // bounds_[i] = min * growth^i; size n-1.
  // Sized once at construction and never resized (atomics can't move).
  std::vector<std::atomic<std::uint64_t>> counts_;
  std::atomic<std::uint64_t> total_{0};
  std::atomic<double> sum_{0.0};
};

}  // namespace ecdr::util

#endif  // ECDR_UTIL_HISTOGRAM_H_
