// Deterministic fault injection for robustness tests and soak runs.
//
// A FaultInjector sits on the serving path's two hot hooks — postings
// fetches and DRC distance computations — and, driven purely by
// hash(seed, op_index), injects latency spikes and/or fires an attached
// CancelToken when the global operation counter reaches a configured
// value. Determinism: the decision for operation N depends only on the
// seed and N, never on wall-clock time or thread interleaving, so a
// serial run with a given seed always injects the same faults at the
// same points. (Under multi-threaded waves the *assignment* of op
// indices to operations can vary with scheduling; tests that need an
// exact replay run serially.)
//
// Delays spin rather than sleep, matching the simulated-postings-access
// cost model in KndsOptions, so sub-millisecond spikes are honored and
// show up in wall-clock measurements.

#ifndef ECDR_UTIL_FAULT_INJECTOR_H_
#define ECDR_UTIL_FAULT_INJECTOR_H_

#include <atomic>
#include <cstdint>
#include <functional>

#include "util/deadline.h"

namespace ecdr::util {

struct FaultInjectorOptions {
  /// Seed for the per-operation hash; two injectors with the same seed
  /// make identical decisions.
  std::uint64_t seed = 0;

  /// Probability ([0,1]) that a postings fetch is hit by a latency
  /// spike of `postings_delay_seconds`.
  double postings_delay_probability = 0.0;
  double postings_delay_seconds = 0.0;

  /// Probability ([0,1]) that a DRC distance task is hit by a latency
  /// spike of `drc_delay_seconds`.
  double drc_delay_probability = 0.0;
  double drc_delay_seconds = 0.0;

  /// Fires the attached CancelToken when the global operation counter
  /// (postings fetches + DRC tasks, 1-based) reaches this value.
  /// 0 disables injected cancellation.
  std::uint64_t cancel_at_op = 0;

  /// Test-only synchronization point: invoked on every postings fetch
  /// (before any injected delay). Lets a test park a query at a known
  /// point — e.g. to hold an admission-control slot deterministically —
  /// by blocking inside the hook. Null = no hook.
  std::function<void()> postings_hook;

  /// Storage-path fault: when the io-op counter (separate from the
  /// query-path counter above, so search traffic cannot perturb crash
  /// points) reaches `io_fail_at_op`, OnIoOp returns `io_action` for
  /// that operation and every later one. 0 disables. The storage Env
  /// interprets the action: kFail errors the call, kShortWrite persists
  /// only a prefix, kFsyncDrop acknowledges a sync without making prior
  /// writes durable.
  std::uint64_t io_fail_at_op = 0;
  enum class IoAction { kNone, kFail, kShortWrite, kFsyncDrop };
  IoAction io_action = IoAction::kNone;
};

/// Thread-safe: the op counter is atomic and decisions are pure
/// functions of (seed, op), so concurrent DRC waves may share one
/// injector.
class FaultInjector {
 public:
  explicit FaultInjector(FaultInjectorOptions options,
                         CancelToken* token = nullptr)
      : options_(std::move(options)), token_(token) {}

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Hook for Knds postings fetches (one per concept visit).
  void OnPostingsFetch() {
    if (options_.postings_hook) options_.postings_hook();
    const std::uint64_t op = NextOp();
    if (Decide(op, options_.postings_delay_probability)) {
      SpinFor(options_.postings_delay_seconds);
    }
  }

  /// Hook for DRC exact-distance tasks (serial or wave lanes).
  void OnDrcCall() {
    const std::uint64_t op = NextOp();
    if (Decide(op, options_.drc_delay_probability)) {
      SpinFor(options_.drc_delay_seconds);
    }
  }

  /// Hook for storage Env operations (writes and syncs). Claims the
  /// next io-op index and reports which fault, if any, fires on it.
  FaultInjectorOptions::IoAction OnIoOp() {
    const std::uint64_t op =
        io_ops_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (options_.io_fail_at_op != 0 && op >= options_.io_fail_at_op) {
      return options_.io_action;
    }
    return FaultInjectorOptions::IoAction::kNone;
  }

  /// Operations observed so far (for calibrating cancel_at_op in tests).
  std::uint64_t ops() const { return ops_.load(std::memory_order_relaxed); }

  /// Storage operations observed so far (for sizing io_fail_at_op
  /// sweeps: run once fault-free, read io_ops(), sweep 1..io_ops()).
  std::uint64_t io_ops() const {
    return io_ops_.load(std::memory_order_relaxed);
  }

  const FaultInjectorOptions& options() const { return options_; }

 private:
  /// Claims the next 1-based op index and fires injected cancellation.
  std::uint64_t NextOp() {
    const std::uint64_t op = ops_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (options_.cancel_at_op != 0 && op >= options_.cancel_at_op &&
        token_ != nullptr) {
      token_->Cancel();
    }
    return op;
  }

  /// SplitMix64-style mix of (seed, op) mapped to [0, 1).
  bool Decide(std::uint64_t op, double probability) const {
    if (probability <= 0.0) return false;
    std::uint64_t z = options_.seed + op * 0x9E3779B97F4A7C15ULL;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    z ^= z >> 31;
    return static_cast<double>(z >> 11) * 0x1.0p-53 < probability;
  }

  static void SpinFor(double seconds);

  FaultInjectorOptions options_;
  CancelToken* token_;
  std::atomic<std::uint64_t> ops_{0};
  std::atomic<std::uint64_t> io_ops_{0};
};

}  // namespace ecdr::util

#endif  // ECDR_UTIL_FAULT_INJECTOR_H_
