// Small string helpers shared by the text serialization formats and the
// CLI tools. Parsing helpers report failure via return value rather than
// exceptions.

#ifndef ECDR_UTIL_STRING_UTIL_H_
#define ECDR_UTIL_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace ecdr::util {

/// Splits `text` on `delimiter`; consecutive delimiters yield empty pieces.
std::vector<std::string_view> Split(std::string_view text, char delimiter);

/// Joins `pieces` with `delimiter`.
std::string Join(const std::vector<std::string>& pieces,
                 std::string_view delimiter);

/// Removes leading/trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view text);

/// Parses the whole of `text` as the target type. Returns false (leaving
/// `out` untouched) on any syntax error, overflow, or trailing garbage.
bool ParseUint32(std::string_view text, std::uint32_t* out);
bool ParseUint64(std::string_view text, std::uint64_t* out);
bool ParseDouble(std::string_view text, double* out);

}  // namespace ecdr::util

#endif  // ECDR_UTIL_STRING_UTIL_H_
