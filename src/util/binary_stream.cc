#include "util/binary_stream.h"

namespace ecdr::util {

namespace {

// The formats are defined little-endian; serialize byte by byte so the
// code is endianness-independent.
void PutUint(std::ostream& out, std::uint64_t value, int bytes) {
  char buffer[8];
  for (int i = 0; i < bytes; ++i) {
    buffer[i] = static_cast<char>((value >> (8 * i)) & 0xFF);
  }
  out.write(buffer, bytes);
}

}  // namespace

void BinaryWriter::WriteU32(std::uint32_t value) { PutUint(*out_, value, 4); }

void BinaryWriter::WriteU64(std::uint64_t value) { PutUint(*out_, value, 8); }

void BinaryWriter::WriteString(const std::string& value) {
  WriteU32(static_cast<std::uint32_t>(value.size()));
  out_->write(value.data(), static_cast<std::streamsize>(value.size()));
}

void BinaryWriter::WriteU32Vector(const std::vector<std::uint32_t>& values) {
  WriteU32(static_cast<std::uint32_t>(values.size()));
  for (std::uint32_t v : values) WriteU32(v);
}

Status BinaryReader::ReadBytes(void* buffer, std::size_t count) {
  in_->read(static_cast<char*>(buffer),
            static_cast<std::streamsize>(count));
  if (static_cast<std::size_t>(in_->gcount()) != count) {
    return IoError("unexpected end of binary stream");
  }
  return Status::Ok();
}

Status BinaryReader::ReadU32(std::uint32_t* out) {
  unsigned char buffer[4];
  ECDR_RETURN_IF_ERROR(ReadBytes(buffer, 4));
  *out = 0;
  for (int i = 3; i >= 0; --i) *out = (*out << 8) | buffer[i];
  return Status::Ok();
}

Status BinaryReader::ReadU64(std::uint64_t* out) {
  unsigned char buffer[8];
  ECDR_RETURN_IF_ERROR(ReadBytes(buffer, 8));
  *out = 0;
  for (int i = 7; i >= 0; --i) *out = (*out << 8) | buffer[i];
  return Status::Ok();
}

Status BinaryReader::ReadString(std::string* out) {
  std::uint32_t size = 0;
  ECDR_RETURN_IF_ERROR(ReadU32(&size));
  if (size > max_allocation_) {
    return IoError("string length " + std::to_string(size) +
                   " exceeds allocation guard");
  }
  out->resize(size);
  if (size == 0) return Status::Ok();
  return ReadBytes(out->data(), size);
}

void AppendU32(std::string& out, std::uint32_t value) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((value >> (8 * i)) & 0xFF));
  }
}

void AppendU64(std::string& out, std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((value >> (8 * i)) & 0xFF));
  }
}

void AppendU32Array(std::string& out, const std::uint32_t* values,
                    std::size_t count) {
  AppendU64(out, count);
  for (std::size_t i = 0; i < count; ++i) AppendU32(out, values[i]);
}

Status ByteParser::ReadBytes(std::size_t count, std::string_view* out) {
  if (count > remaining()) {
    return DataLossError("record truncated: need " + std::to_string(count) +
                         " bytes, have " + std::to_string(remaining()));
  }
  *out = data_.substr(pos_, count);
  pos_ += count;
  return Status::Ok();
}

Status ByteParser::ReadU32(std::uint32_t* out) {
  std::string_view bytes;
  ECDR_RETURN_IF_ERROR(ReadBytes(4, &bytes));
  *out = 0;
  for (int i = 3; i >= 0; --i) {
    *out = (*out << 8) | static_cast<unsigned char>(bytes[i]);
  }
  return Status::Ok();
}

Status ByteParser::ReadU64(std::uint64_t* out) {
  std::string_view bytes;
  ECDR_RETURN_IF_ERROR(ReadBytes(8, &bytes));
  *out = 0;
  for (int i = 7; i >= 0; --i) {
    *out = (*out << 8) | static_cast<unsigned char>(bytes[i]);
  }
  return Status::Ok();
}

Status ByteParser::ReadU32Array(std::vector<std::uint32_t>* out,
                                std::uint64_t max_elements) {
  std::uint64_t count = 0;
  ECDR_RETURN_IF_ERROR(ReadU64(&count));
  if (count > max_elements || count * 4 > remaining()) {
    return DataLossError("array length " + std::to_string(count) +
                         " exceeds record bounds");
  }
  out->resize(count);
  for (std::uint32_t& v : *out) {
    ECDR_RETURN_IF_ERROR(ReadU32(&v));
  }
  return Status::Ok();
}

std::uint64_t StreamByteSize(std::istream& in) {
  const std::istream::pos_type here = in.tellg();
  if (here == std::istream::pos_type(-1)) return UINT64_MAX;
  in.seekg(0, std::ios::end);
  const std::istream::pos_type end = in.tellg();
  in.seekg(here);
  if (end == std::istream::pos_type(-1) || end < here) return UINT64_MAX;
  return static_cast<std::uint64_t>(end - here);
}

Status BinaryReader::ReadU32Vector(std::vector<std::uint32_t>* out) {
  std::uint32_t size = 0;
  ECDR_RETURN_IF_ERROR(ReadU32(&size));
  if (static_cast<std::uint64_t>(size) * 4 > max_allocation_) {
    return IoError("vector length " + std::to_string(size) +
                   " exceeds allocation guard");
  }
  out->resize(size);
  for (std::uint32_t& v : *out) {
    ECDR_RETURN_IF_ERROR(ReadU32(&v));
  }
  return Status::Ok();
}

}  // namespace ecdr::util
