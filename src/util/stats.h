// Streaming summary statistics (Welford) used for corpus statistics,
// the paper's mu+sigma collection-frequency threshold, and benchmark
// reporting.

#ifndef ECDR_UTIL_STATS_H_
#define ECDR_UTIL_STATS_H_

#include <cstdint>
#include <limits>
#include <vector>

namespace ecdr::util {

/// Single-pass mean / variance / min / max accumulator.
class RunningStat {
 public:
  void Add(double x);

  std::uint64_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  /// Population variance; 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  double sum() const { return sum_; }

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Returns the q-quantile (q in [0,1]) of `values` by nearest-rank; the
/// input is copied and partially sorted. Returns 0 for empty input.
double Quantile(std::vector<double> values, double q);

/// Snapshot of one cache's counters (see util/lru_cache.h); the cache
/// layer surfaces these through KndsStats and the bench JSON output.
struct CacheCounters {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t entries = 0;

  std::uint64_t lookups() const { return hits + misses; }
  /// Hits per lookup in [0, 1]; 0 when nothing was looked up.
  double hit_rate() const;

  CacheCounters& operator+=(const CacheCounters& other) {
    hits += other.hits;
    misses += other.misses;
    evictions += other.evictions;
    entries += other.entries;
    return *this;
  }
};

}  // namespace ecdr::util

#endif  // ECDR_UTIL_STATS_H_
