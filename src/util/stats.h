// Streaming summary statistics (Welford) used for corpus statistics,
// the paper's mu+sigma collection-frequency threshold, and benchmark
// reporting.

#ifndef ECDR_UTIL_STATS_H_
#define ECDR_UTIL_STATS_H_

#include <cstdint>
#include <limits>
#include <vector>

namespace ecdr::util {

/// Single-pass mean / variance / min / max accumulator.
class RunningStat {
 public:
  void Add(double x);

  std::uint64_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  /// Population variance; 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  double sum() const { return sum_; }

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Returns the q-quantile (q in [0,1]) of `values` by nearest-rank; the
/// input is copied and partially sorted. Returns 0 for empty input.
double Quantile(std::vector<double> values, double q);

}  // namespace ecdr::util

#endif  // ECDR_UTIL_STATS_H_
