#include "util/table_printer.h"

#include <algorithm>
#include <cstdio>
#include <utility>

namespace ecdr::util {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::FormatDouble(double value, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
  return buffer;
}

std::string TablePrinter::FormatSeconds(double seconds) {
  char buffer[64];
  if (seconds < 1e-3) {
    std::snprintf(buffer, sizeof(buffer), "%.1f us", seconds * 1e6);
  } else if (seconds < 1.0) {
    std::snprintf(buffer, sizeof(buffer), "%.2f ms", seconds * 1e3);
  } else {
    std::snprintf(buffer, sizeof(buffer), "%.2f s", seconds);
  }
  return buffer;
}

void TablePrinter::Print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  const auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c];
      if (c + 1 < row.size()) {
        os << std::string(widths[c] - row[c].size() + 2, ' ');
      }
    }
    os << '\n';
  };
  print_row(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

void TablePrinter::PrintCsv(std::ostream& os) const {
  const auto print_cell = [&](const std::string& cell) {
    if (cell.find_first_of(",\"\n") == std::string::npos) {
      os << cell;
      return;
    }
    os << '"';
    for (char c : cell) {
      if (c == '"') os << '"';
      os << c;
    }
    os << '"';
  };
  const auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << ',';
      print_cell(row[c]);
    }
    os << '\n';
  };
  print_row(header_);
  for (const auto& row : rows_) print_row(row);
}

}  // namespace ecdr::util
