// CRC32C (Castagnoli, reflected polynomial 0x82F63B78) — the checksum
// guarding every storage artifact: snapshot-image sections, the image
// commit footer, and each write-ahead-log record (src/storage/). The
// Castagnoli polynomial is the one modern storage systems standardize
// on (iSCSI, ext4, LevelDB/RocksDB), chosen over CRC32 (IEEE) for its
// better burst-error detection at the record sizes logs use.
//
// Implementation is portable slice-by-8 table lookup: byte-order
// independent, no SSE4.2 requirement, ~1 B/cycle — checksum cost is
// noise next to the fsync it protects. Values are pure functions of the
// input bytes, so checksums written on one host verify on any other.

#ifndef ECDR_UTIL_CRC32C_H_
#define ECDR_UTIL_CRC32C_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace ecdr::util {

/// Extends `crc` (a running value from a previous Crc32c/ExtendCrc32c
/// call) with `size` bytes at `data`.
std::uint32_t ExtendCrc32c(std::uint32_t crc, const void* data,
                           std::size_t size);

/// CRC32C of one contiguous buffer.
inline std::uint32_t Crc32c(const void* data, std::size_t size) {
  return ExtendCrc32c(0, data, size);
}

inline std::uint32_t Crc32c(std::string_view bytes) {
  return Crc32c(bytes.data(), bytes.size());
}

/// Masked form for checksums stored next to the data they cover (the
/// LevelDB trick): a file that embeds raw CRCs of its own contents can
/// produce runs whose CRC is itself, making some corruptions
/// self-consistent. Storing the masked value breaks that fixed point.
inline std::uint32_t MaskCrc32c(std::uint32_t crc) {
  return ((crc >> 15) | (crc << 17)) + 0xA282EAD8u;
}

inline std::uint32_t UnmaskCrc32c(std::uint32_t masked) {
  const std::uint32_t rot = masked - 0xA282EAD8u;
  return (rot >> 17) | (rot << 15);
}

}  // namespace ecdr::util

#endif  // ECDR_UTIL_CRC32C_H_
