#include "util/fault_injector.h"

#include "util/timer.h"

namespace ecdr::util {

void FaultInjector::SpinFor(double seconds) {
  if (seconds <= 0.0) return;
  WallTimer timer;
  while (timer.ElapsedSeconds() < seconds) {
  }
}

}  // namespace ecdr::util
