#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <cstddef>

namespace ecdr::util {

void RunningStat::Add(double x) {
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStat::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

double CacheCounters::hit_rate() const {
  const std::uint64_t total = lookups();
  if (total == 0) return 0.0;
  return static_cast<double>(hits) / static_cast<double>(total);
}

double Quantile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto rank = static_cast<std::size_t>(
      q * static_cast<double>(values.size() - 1) + 0.5);
  std::nth_element(values.begin(), values.begin() + static_cast<long>(rank),
                   values.end());
  return values[rank];
}

}  // namespace ecdr::util
