// Thread-safe sharded LRU cache.
//
// The cache is split into independently locked shards selected by key
// hash, so concurrent query lanes touching different keys rarely
// serialize: a Get/Put takes exactly one shard mutex for the duration of
// one hash-map operation plus a list splice. Within a shard entries
// evict in strict least-recently-used order; Get refreshes recency.
//
// Capacity semantics: `capacity` bounds the TOTAL entry count across
// shards (each shard holds ~capacity/num_shards entries). A capacity of
// 0 turns the cache into a pure bypass — Get always misses, Put stores
// nothing — so call sites can keep one unconditional code path and let
// CacheOptions decide (tested by CacheTest.CapacityZeroBypasses).
//
// Counters (hits / misses / evictions / entries) are maintained under
// the shard locks and snapshotted by counters(); see util/stats.h.

#ifndef ECDR_UTIL_LRU_CACHE_H_
#define ECDR_UTIL_LRU_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/macros.h"
#include "util/stats.h"

namespace ecdr::util {

struct ShardedLruCacheOptions {
  /// Total entry bound across all shards. 0 disables the cache entirely
  /// (every Get misses, every Put is dropped).
  std::size_t capacity = 0;

  /// Lock granularity; rounded up to a power of two, clamped to
  /// [1, capacity] so small caches don't degenerate into per-entry
  /// shards.
  std::size_t num_shards = 16;
};

template <typename Key, typename Value, typename Hash = std::hash<Key>>
class ShardedLruCache {
 public:
  using Options = ShardedLruCacheOptions;

  explicit ShardedLruCache(Options options) : options_(options) {
    std::size_t shards = 1;
    while (shards < options.num_shards) shards <<= 1;
    if (options_.capacity > 0 && shards > options_.capacity) {
      shards = 1;
      while (shards * 2 <= options_.capacity) shards <<= 1;
    }
    shard_mask_ = shards - 1;
    shards_.reserve(shards);
    for (std::size_t i = 0; i < shards; ++i) {
      shards_.push_back(std::make_unique<Shard>());
    }
    // Distribute the total bound; the ceiling keeps sum >= capacity so a
    // perfectly balanced load never evicts below the requested size.
    per_shard_capacity_ = (options_.capacity + shards - 1) / shards;
  }

  /// Copies the cached value into *out and refreshes its recency.
  /// Returns false (counting a miss) when absent or when the cache is
  /// disabled.
  bool Get(const Key& key, Value* out) {
    if (options_.capacity == 0) return false;
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.map.find(key);
    if (it == shard.map.end()) {
      ++shard.misses;
      return false;
    }
    ++shard.hits;
    // Move-to-front == most recently used.
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    *out = it->second->second;
    return true;
  }

  /// Inserts or overwrites; evicts the shard's least-recently-used entry
  /// when the shard is full. No-op when the cache is disabled.
  void Put(const Key& key, const Value& value) {
    if (options_.capacity == 0) return;
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      it->second->second = value;
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      return;
    }
    if (shard.map.size() >= per_shard_capacity_) {
      const auto& victim = shard.lru.back();
      shard.map.erase(victim.first);
      shard.lru.pop_back();
      ++shard.evictions;
    }
    shard.lru.emplace_front(key, value);
    shard.map.emplace(key, shard.lru.begin());
  }

  /// Erases every entry whose key satisfies `predicate`; returns the
  /// number erased. A full scan under each shard lock in turn — meant
  /// for rare invalidation events (e.g. an ontology evolution), not hot
  /// paths.
  template <typename Predicate>
  std::size_t EraseIf(Predicate predicate) {
    std::size_t erased = 0;
    for (const auto& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard->mutex);
      for (auto it = shard->lru.begin(); it != shard->lru.end();) {
        if (predicate(it->first)) {
          shard->map.erase(it->first);
          it = shard->lru.erase(it);
          ++erased;
        } else {
          ++it;
        }
      }
    }
    return erased;
  }

  /// Drops every entry (counters are retained).
  void Clear() {
    for (const auto& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard->mutex);
      shard->map.clear();
      shard->lru.clear();
    }
  }

  std::size_t size() const {
    std::size_t total = 0;
    for (const auto& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard->mutex);
      total += shard->map.size();
    }
    return total;
  }

  std::size_t num_shards() const { return shards_.size(); }
  std::size_t capacity() const { return options_.capacity; }

  CacheCounters counters() const {
    CacheCounters total;
    for (const auto& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard->mutex);
      total.hits += shard->hits;
      total.misses += shard->misses;
      total.evictions += shard->evictions;
      total.entries += shard->map.size();
    }
    return total;
  }

 private:
  struct Shard {
    mutable std::mutex mutex;
    std::list<std::pair<Key, Value>> lru;  // Front = most recently used.
    std::unordered_map<Key, typename std::list<std::pair<Key, Value>>::iterator,
                       Hash>
        map;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
  };

  Shard& ShardFor(const Key& key) {
    // Fibonacci spread of the hash picks the shard from the high bits,
    // keeping shard choice independent of the map's bucket choice.
    const std::uint64_t h = static_cast<std::uint64_t>(Hash{}(key));
    return *shards_[(h * 0x9E3779B97F4A7C15ull >> 32) & shard_mask_];
  }

  Options options_;
  std::size_t shard_mask_ = 0;
  std::size_t per_shard_capacity_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace ecdr::util

#endif  // ECDR_UTIL_LRU_CACHE_H_
