#include "util/crc32c.h"

#include <array>

namespace ecdr::util {

namespace {

// Slice-by-8 tables for the reflected Castagnoli polynomial. Table 0 is
// the classic byte-at-a-time table; table k extends a byte's effect
// through k more zero bytes, letting the hot loop fold 8 input bytes
// with 8 independent loads per iteration.
struct Tables {
  std::array<std::array<std::uint32_t, 256>, 8> t;

  Tables() {
    constexpr std::uint32_t kPoly = 0x82F63B78u;
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1u) ? kPoly : 0u);
      }
      t[0][i] = crc;
    }
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t crc = t[0][i];
      for (std::size_t k = 1; k < 8; ++k) {
        crc = t[0][crc & 0xFFu] ^ (crc >> 8);
        t[k][i] = crc;
      }
    }
  }
};

const Tables& GetTables() {
  static const Tables tables;
  return tables;
}

}  // namespace

std::uint32_t ExtendCrc32c(std::uint32_t crc, const void* data,
                           std::size_t size) {
  const Tables& tables = GetTables();
  const auto* p = static_cast<const unsigned char*>(data);
  crc = ~crc;
  // Head: align the 8-byte loop on the input, not on memory — the loads
  // below are byte loads, so alignment only matters for loop shape.
  while (size != 0 && (size & 7u) != 0) {
    crc = tables.t[0][(crc ^ *p++) & 0xFFu] ^ (crc >> 8);
    --size;
  }
  while (size >= 8) {
    const std::uint32_t low = crc ^ (static_cast<std::uint32_t>(p[0]) |
                                     static_cast<std::uint32_t>(p[1]) << 8 |
                                     static_cast<std::uint32_t>(p[2]) << 16 |
                                     static_cast<std::uint32_t>(p[3]) << 24);
    crc = tables.t[7][low & 0xFFu] ^ tables.t[6][(low >> 8) & 0xFFu] ^
          tables.t[5][(low >> 16) & 0xFFu] ^ tables.t[4][low >> 24] ^
          tables.t[3][p[4]] ^ tables.t[2][p[5]] ^ tables.t[1][p[6]] ^
          tables.t[0][p[7]];
    p += 8;
    size -= 8;
  }
  return ~crc;
}

}  // namespace ecdr::util
