// Assertion macros used throughout the library.
//
// The library does not use C++ exceptions. Unrecoverable internal errors
// (broken invariants, misuse of an API that documents a precondition)
// terminate the process through ECDR_CHECK*; recoverable errors are
// reported through util::Status (see util/status.h).

#ifndef ECDR_UTIL_MACROS_H_
#define ECDR_UTIL_MACROS_H_

#include <cstdio>
#include <cstdlib>

#define ECDR_PREDICT_FALSE(x) (__builtin_expect(false || (x), false))
#define ECDR_PREDICT_TRUE(x) (__builtin_expect(false || (x), true))

// Crashes the process with a file/line message when `condition` is false.
// Active in all build modes; use for cheap invariant checks.
#define ECDR_CHECK(condition)                                        \
  do {                                                               \
    if (ECDR_PREDICT_FALSE(!(condition))) {                          \
      std::fprintf(stderr, "ECDR_CHECK failed at %s:%d: %s\n",       \
                   __FILE__, __LINE__, #condition);                  \
      std::abort();                                                  \
    }                                                                \
  } while (0)

#define ECDR_CHECK_OP(op, a, b)                                      \
  do {                                                               \
    if (ECDR_PREDICT_FALSE(!((a)op(b)))) {                           \
      std::fprintf(stderr, "ECDR_CHECK failed at %s:%d: %s %s %s\n", \
                   __FILE__, __LINE__, #a, #op, #b);                 \
      std::abort();                                                  \
    }                                                                \
  } while (0)

#define ECDR_CHECK_EQ(a, b) ECDR_CHECK_OP(==, a, b)
#define ECDR_CHECK_NE(a, b) ECDR_CHECK_OP(!=, a, b)
#define ECDR_CHECK_LT(a, b) ECDR_CHECK_OP(<, a, b)
#define ECDR_CHECK_LE(a, b) ECDR_CHECK_OP(<=, a, b)
#define ECDR_CHECK_GT(a, b) ECDR_CHECK_OP(>, a, b)
#define ECDR_CHECK_GE(a, b) ECDR_CHECK_OP(>=, a, b)

// Debug-only variants: compiled out in NDEBUG builds. Use on hot paths.
#ifdef NDEBUG
#define ECDR_DCHECK(condition) \
  do {                         \
  } while (0)
#define ECDR_DCHECK_EQ(a, b) ECDR_DCHECK((a) == (b))
#define ECDR_DCHECK_NE(a, b) ECDR_DCHECK((a) != (b))
#define ECDR_DCHECK_LT(a, b) ECDR_DCHECK((a) < (b))
#define ECDR_DCHECK_LE(a, b) ECDR_DCHECK((a) <= (b))
#define ECDR_DCHECK_GT(a, b) ECDR_DCHECK((a) > (b))
#define ECDR_DCHECK_GE(a, b) ECDR_DCHECK((a) >= (b))
#else
#define ECDR_DCHECK(condition) ECDR_CHECK(condition)
#define ECDR_DCHECK_EQ(a, b) ECDR_CHECK_EQ(a, b)
#define ECDR_DCHECK_NE(a, b) ECDR_CHECK_NE(a, b)
#define ECDR_DCHECK_LT(a, b) ECDR_CHECK_LT(a, b)
#define ECDR_DCHECK_LE(a, b) ECDR_CHECK_LE(a, b)
#define ECDR_DCHECK_GT(a, b) ECDR_CHECK_GT(a, b)
#define ECDR_DCHECK_GE(a, b) ECDR_CHECK_GE(a, b)
#endif

#endif  // ECDR_UTIL_MACROS_H_
