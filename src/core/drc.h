// The DRC algorithm (paper Section 4.3): document-query and
// document-document distance calculation in
// O((|Pq| + |Pd|) log(|Pq| + |Pd|)) via the D-Radix DAG.
//
// For each call DRC (1) gathers the lexicographically sorted Dewey
// address lists Pd and Pq of the two concept sets, (2) builds a D-Radix
// DAG over them, (3) runs the bottom-up/top-down tuning sweeps, and
// (4) evaluates Eq. 2 (Ddq) or Eq. 3 (Ddd) from the distances attached
// to the query/document nodes. No precomputation over the corpus is
// required — documents can be scored the moment they arrive.
//
// Memory: all per-call state (the DAG arena, the pending-insert list,
// the dedup buffers) lives in a Drc::Scratch that is recycled across
// calls, so a warm engine on a frozen AddressEnumerator (whose
// FlatDeweyPool supplies addresses as raw spans) computes distances
// with zero heap allocations — see DESIGN.md "Memory layout" and
// tests/drc_alloc_test.cc.

#ifndef ECDR_CORE_DRC_H_
#define ECDR_CORE_DRC_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "core/concept_weights.h"
#include "core/d_radix.h"
#include "ontology/dewey.h"
#include "ontology/ontology.h"
#include "util/deadline.h"
#include "util/status.h"

namespace ecdr::core {

class Drc {
 public:
  /// Per-engine counters, cumulative across calls until ResetStats().
  struct Stats {
    std::uint64_t calls = 0;
    std::uint64_t addresses_inserted = 0;
    std::uint64_t nodes_built = 0;
    std::uint64_t edges_built = 0;
    double seconds = 0.0;
    /// Phase split of `seconds`: gathering + inserting the address lists
    /// (the D-Radix build) vs the two tuning sweeps. The remainder of a
    /// distance call (node lookups and summing) is not timed separately.
    double build_seconds = 0.0;
    double tune_seconds = 0.0;
  };

  /// One (address, concept, flags) entry of the merged Pd/Pq insert
  /// list. The address is a raw view into the AddressEnumerator's
  /// storage (FlatDeweyPool arena when frozen, per-concept vectors
  /// otherwise); both are pinned by the engine's ReaderLease.
  struct PendingInsert {
    const std::uint32_t* address = nullptr;  // Null only when length == 0.
    std::uint32_t length = 0;
    ontology::ConceptId concept_id = ontology::kInvalidConcept;
    bool in_doc = false;
    bool in_query = false;
  };

  /// Reusable per-call working memory: the D-Radix arena plus every
  /// buffer a distance call fills. One Scratch serves one engine at a
  /// time; recycling it across engines (via ScratchPool) is what keeps
  /// per-query Drc construction allocation-free after warm-up. Scratch
  /// contents are meaningless between calls — no state carries over.
  class Scratch {
   public:
    Scratch() = default;
    Scratch(Scratch&&) = default;
    Scratch& operator=(Scratch&&) = default;
    Scratch(const Scratch&) = delete;
    Scratch& operator=(const Scratch&) = delete;

   private:
    friend class Drc;
    DRadixDag dag;
    std::vector<PendingInsert> inserts;
    std::vector<ontology::ConceptId> doc_set;    // Dedup of the doc side.
    std::vector<ontology::ConceptId> query_set;  // Dedup of the query side.
    std::vector<ontology::ConceptId> concept_ids;
    std::vector<WeightedConcept> normalized;
  };

  /// Thread-safe free list of Scratch arenas. Owned by long-lived
  /// callers (RankingEngine) and handed to per-call engines and
  /// parallel lanes, so the warm capacity survives both query and
  /// thread boundaries. Leases are handed out most-recently-returned
  /// first (hot pages).
  class ScratchPool {
   public:
    /// RAII lease: acquires on construction, returns on destruction.
    /// A default-constructed or null-pool lease holds nothing.
    class Lease {
     public:
      Lease() = default;
      explicit Lease(ScratchPool* pool) : pool_(pool) {
        if (pool_ != nullptr) scratch_ = pool_->Acquire();
      }
      ~Lease() { Release(); }
      Lease(Lease&& other) noexcept
          : pool_(other.pool_), scratch_(std::move(other.scratch_)) {
        other.pool_ = nullptr;
      }
      Lease& operator=(Lease&& other) noexcept {
        if (this != &other) {
          Release();
          pool_ = other.pool_;
          scratch_ = std::move(other.scratch_);
          other.pool_ = nullptr;
        }
        return *this;
      }
      Lease(const Lease&) = delete;
      Lease& operator=(const Lease&) = delete;

      Scratch* get() const { return scratch_.get(); }

     private:
      void Release() {
        if (pool_ != nullptr && scratch_ != nullptr) {
          pool_->Return(std::move(scratch_));
        }
        pool_ = nullptr;
        scratch_ = nullptr;
      }

      ScratchPool* pool_ = nullptr;
      std::unique_ptr<Scratch> scratch_;
    };

    ScratchPool() = default;
    ScratchPool(const ScratchPool&) = delete;
    ScratchPool& operator=(const ScratchPool&) = delete;

    std::size_t idle() const {
      std::lock_guard<std::mutex> lock(mutex_);
      return free_.size();
    }

   private:
    std::unique_ptr<Scratch> Acquire() {
      {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!free_.empty()) {
          std::unique_ptr<Scratch> scratch = std::move(free_.back());
          free_.pop_back();
          return scratch;
        }
      }
      return std::make_unique<Scratch>();
    }
    void Return(std::unique_ptr<Scratch> scratch) {
      std::lock_guard<std::mutex> lock(mutex_);
      free_.push_back(std::move(scratch));
    }

    mutable std::mutex mutex_;
    std::vector<std::unique_ptr<Scratch>> free_;
  };

  /// `addresses` caches Dewey address sets across calls and documents;
  /// it is shared, unowned, and must outlive the engine. `scratch`
  /// (optional) supplies the working memory; when null the engine owns
  /// a private one. A leased, already-warm scratch makes even a freshly
  /// constructed engine allocation-free.
  ///
  /// A Drc instance is cheap to construct but holds mutable
  /// per-instance state (stats + scratch), so concurrent callers use
  /// one instance per thread, sharing the (thread-safe)
  /// AddressEnumerator.
  Drc(const ontology::Ontology& ontology,
      ontology::AddressEnumerator* addresses, Scratch* scratch = nullptr);

  /// The shared dependencies, exposed so parallel call sites can spin up
  /// per-lane engines over the same ontology and address cache.
  const ontology::Ontology& ontology() const { return *ontology_; }
  ontology::AddressEnumerator* addresses() const { return addresses_; }

  /// Ddq(d, q) — Eq. 2: the (unnormalized) sum over query concepts of
  /// the distance to the nearest document concept. Duplicate concepts in
  /// `query` are ignored (queries are sets). Errors on empty inputs or
  /// unknown concepts.
  util::StatusOr<std::uint64_t> DocQueryDistance(
      std::span<const ontology::ConceptId> doc,
      std::span<const ontology::ConceptId> query);

  /// Ddd(d1, d2) — Eq. 3: symmetric, each side normalized by its concept
  /// count.
  util::StatusOr<double> DocDocDistance(
      std::span<const ontology::ConceptId> d1,
      std::span<const ontology::ConceptId> d2);

  /// Weighted Ddq: sum of weight * Ddc(d, qi) over the distinct weighted
  /// query concepts (duplicates keep the largest weight). Uniform
  /// weights reduce to DocQueryDistance. Weights accumulate in ascending
  /// concept-id order, so results are deterministic.
  util::StatusOr<double> DocQueryDistanceWeighted(
      std::span<const ontology::ConceptId> doc,
      std::span<const WeightedConcept> query);

  /// Weighted Ddd: each side's sum weights concepts by `weights` and
  /// normalizes by the side's total weight; uniform weights reduce to
  /// DocDocDistance.
  util::StatusOr<double> DocDocDistanceWeighted(
      std::span<const ontology::ConceptId> d1,
      std::span<const ontology::ConceptId> d2,
      const ConceptWeights& weights);

  /// Builds (and tunes) a standalone D-Radix DAG for d and q without
  /// evaluating a distance — exposed for tests, examples and the
  /// ablation bench. Unlike the distance calls this allocates a fresh
  /// arena per call. The returned DAG is self-contained (it owns its
  /// label components) and may outlive this engine.
  util::StatusOr<DRadixDag> BuildIndex(
      std::span<const ontology::ConceptId> doc,
      std::span<const ontology::ConceptId> query);

  const Stats& stats() const { return stats_; }
  void ResetStats() { stats_ = Stats(); }

  /// Cooperative cancellation for direct callers with a budget (e.g.
  /// RankingEngine::DocumentDistance): the build polls between address
  /// insert batches and every distance entry point then returns
  /// kCancelled / kDeadlineExceeded. Both may be unset (`token` null,
  /// `deadline` infinite — the default, which costs nothing). Knds does
  /// NOT set this on its engines: it stops between DRC calls instead, so
  /// every distance it does compute is exact.
  void SetCancellation(const util::CancelToken* token,
                       util::Deadline deadline) {
    cancel_token_ = token;
    deadline_ = deadline;
  }

  /// Folds another engine's counters into this one — how per-lane
  /// engines report back after a parallel batch (call single-threaded,
  /// after the batch has been joined).
  void MergeStatsFrom(const Stats& other) {
    stats_.calls += other.calls;
    stats_.addresses_inserted += other.addresses_inserted;
    stats_.nodes_built += other.nodes_built;
    stats_.edges_built += other.edges_built;
    stats_.seconds += other.seconds;
    stats_.build_seconds += other.build_seconds;
    stats_.tune_seconds += other.tune_seconds;
  }

 private:
  util::Status ValidateConcepts(std::span<const ontology::ConceptId> concepts,
                                const char* label) const;

  /// Gathers the merged, lexicographically sorted insert list for
  /// doc + query (concepts present on both sides get both flags) into
  /// scratch_->inserts, leaving the deduped sides in scratch_->doc_set /
  /// query_set for the evaluation loops.
  void GatherInserts(std::span<const ontology::ConceptId> doc,
                     std::span<const ontology::ConceptId> query);

  /// Validates, gathers, builds and tunes into `dag` (the scratch DAG
  /// for distance calls, a fresh one for BuildIndex).
  util::Status BuildInto(DRadixDag* dag,
                         std::span<const ontology::ConceptId> doc,
                         std::span<const ontology::ConceptId> query);

  const ontology::Ontology* ontology_;
  ontology::AddressEnumerator* addresses_;
  // Blocks AddressEnumerator::ClearCache() for this engine's lifetime:
  // the gather phase holds {pointer,length} views into the address
  // cache / flat pool until the D-Radix build copies them.
  ontology::AddressEnumerator::ReaderLease address_lease_;
  const util::CancelToken* cancel_token_ = nullptr;
  util::Deadline deadline_;
  std::unique_ptr<Scratch> owned_scratch_;  // Used iff none was supplied.
  Scratch* scratch_;
  Stats stats_;
};

/// Sorts by concept id and collapses duplicates, keeping the largest
/// weight per concept. Shared by the weighted distance and ranking
/// entry points so they agree on query normalization.
std::vector<WeightedConcept> NormalizeWeightedConcepts(
    std::span<const WeightedConcept> concepts);

}  // namespace ecdr::core

#endif  // ECDR_CORE_DRC_H_
