// The DRC algorithm (paper Section 4.3): document-query and
// document-document distance calculation in
// O((|Pq| + |Pd|) log(|Pq| + |Pd|)) via the D-Radix DAG.
//
// For each call DRC (1) gathers the lexicographically sorted Dewey
// address lists Pd and Pq of the two concept sets, (2) builds a D-Radix
// DAG over them, (3) runs the bottom-up/top-down tuning sweeps, and
// (4) evaluates Eq. 2 (Ddq) or Eq. 3 (Ddd) from the distances attached
// to the query/document nodes. No precomputation over the corpus is
// required — documents can be scored the moment they arrive.

#ifndef ECDR_CORE_DRC_H_
#define ECDR_CORE_DRC_H_

#include <cstdint>
#include <span>
#include <vector>

#include "core/concept_weights.h"
#include "core/d_radix.h"
#include "ontology/dewey.h"
#include "ontology/ontology.h"
#include "util/deadline.h"
#include "util/status.h"

namespace ecdr::core {

class Drc {
 public:
  /// Per-engine counters, cumulative across calls until ResetStats().
  struct Stats {
    std::uint64_t calls = 0;
    std::uint64_t addresses_inserted = 0;
    std::uint64_t nodes_built = 0;
    std::uint64_t edges_built = 0;
    double seconds = 0.0;
  };

  /// `addresses` caches Dewey address sets across calls and documents;
  /// it is shared, unowned, and must outlive the engine.
  ///
  /// A Drc instance is cheap to construct (two pointers) but holds
  /// mutable per-instance stats, so concurrent callers use one instance
  /// per thread, sharing the (thread-safe) AddressEnumerator.
  Drc(const ontology::Ontology& ontology,
      ontology::AddressEnumerator* addresses);

  /// The shared dependencies, exposed so parallel call sites can spin up
  /// per-lane engines over the same ontology and address cache.
  const ontology::Ontology& ontology() const { return *ontology_; }
  ontology::AddressEnumerator* addresses() const { return addresses_; }

  /// Ddq(d, q) — Eq. 2: the (unnormalized) sum over query concepts of
  /// the distance to the nearest document concept. Duplicate concepts in
  /// `query` are ignored (queries are sets). Errors on empty inputs or
  /// unknown concepts.
  util::StatusOr<std::uint64_t> DocQueryDistance(
      std::span<const ontology::ConceptId> doc,
      std::span<const ontology::ConceptId> query);

  /// Ddd(d1, d2) — Eq. 3: symmetric, each side normalized by its concept
  /// count.
  util::StatusOr<double> DocDocDistance(
      std::span<const ontology::ConceptId> d1,
      std::span<const ontology::ConceptId> d2);

  /// Weighted Ddq: sum of weight * Ddc(d, qi) over the distinct weighted
  /// query concepts (duplicates keep the largest weight). Uniform
  /// weights reduce to DocQueryDistance. Weights accumulate in ascending
  /// concept-id order, so results are deterministic.
  util::StatusOr<double> DocQueryDistanceWeighted(
      std::span<const ontology::ConceptId> doc,
      std::span<const WeightedConcept> query);

  /// Weighted Ddd: each side's sum weights concepts by `weights` and
  /// normalizes by the side's total weight; uniform weights reduce to
  /// DocDocDistance.
  util::StatusOr<double> DocDocDistanceWeighted(
      std::span<const ontology::ConceptId> d1,
      std::span<const ontology::ConceptId> d2,
      const ConceptWeights& weights);

  /// Builds (and tunes) the D-Radix DAG for d and q without evaluating a
  /// distance — exposed for tests, examples and the ablation bench.
  util::StatusOr<DRadixDag> BuildIndex(
      std::span<const ontology::ConceptId> doc,
      std::span<const ontology::ConceptId> query);

  const Stats& stats() const { return stats_; }
  void ResetStats() { stats_ = Stats(); }

  /// Cooperative cancellation for direct callers with a budget (e.g.
  /// RankingEngine::DocumentDistance): BuildIndex polls between address
  /// insert batches and every distance entry point then returns
  /// kCancelled / kDeadlineExceeded. Both may be unset (`token` null,
  /// `deadline` infinite — the default, which costs nothing). Knds does
  /// NOT set this on its engines: it stops between DRC calls instead, so
  /// every distance it does compute is exact.
  void SetCancellation(const util::CancelToken* token,
                       util::Deadline deadline) {
    cancel_token_ = token;
    deadline_ = deadline;
  }

  /// Folds another engine's counters into this one — how per-lane
  /// engines report back after a parallel batch (call single-threaded,
  /// after the batch has been joined).
  void MergeStatsFrom(const Stats& other) {
    stats_.calls += other.calls;
    stats_.addresses_inserted += other.addresses_inserted;
    stats_.nodes_built += other.nodes_built;
    stats_.edges_built += other.edges_built;
    stats_.seconds += other.seconds;
  }

 private:
  /// One (address, concept, flags) entry of the merged Pd/Pq insert list.
  struct PendingInsert {
    const ontology::DeweyAddress* address;
    ontology::ConceptId concept_id;
    bool in_doc;
    bool in_query;
  };

  util::Status ValidateConcepts(std::span<const ontology::ConceptId> concepts,
                                const char* label) const;

  /// Gathers the merged, lexicographically sorted insert list for
  /// doc + query (concepts present on both sides get both flags).
  void GatherInserts(std::span<const ontology::ConceptId> doc,
                     std::span<const ontology::ConceptId> query,
                     std::vector<PendingInsert>* inserts);

  const ontology::Ontology* ontology_;
  ontology::AddressEnumerator* addresses_;
  // Blocks AddressEnumerator::ClearCache() for this engine's lifetime:
  // DRC keeps references into the address cache between calls.
  ontology::AddressEnumerator::ReaderLease address_lease_;
  const util::CancelToken* cancel_token_ = nullptr;
  util::Deadline deadline_;
  Stats stats_;
};

/// Sorts by concept id and collapses duplicates, keeping the largest
/// weight per concept. Shared by the weighted distance and ranking
/// entry points so they agree on query normalization.
std::vector<WeightedConcept> NormalizeWeightedConcepts(
    std::span<const WeightedConcept> concepts);

}  // namespace ecdr::core

#endif  // ECDR_CORE_DRC_H_
