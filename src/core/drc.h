// The DRC algorithm (paper Section 4.3): document-query and
// document-document distance calculation in
// O((|Pq| + |Pd|) log(|Pq| + |Pd|)) via the D-Radix DAG.
//
// For each call DRC (1) gathers the lexicographically sorted Dewey
// address lists Pd and Pq of the two concept sets, (2) builds a D-Radix
// DAG over them, (3) runs the bottom-up/top-down tuning sweeps, and
// (4) evaluates Eq. 2 (Ddq) or Eq. 3 (Ddd) from the distances attached
// to the query/document nodes. No precomputation over the corpus is
// required — documents can be scored the moment they arrive.
//
// Memory: all per-call state (the DAG arena, the pending-insert list,
// the dedup buffers) lives in a Drc::Scratch that is recycled across
// calls, so a warm engine on a frozen AddressEnumerator (whose
// FlatDeweyPool supplies addresses as raw spans) computes distances
// with zero heap allocations — see DESIGN.md "Memory layout" and
// tests/drc_alloc_test.cc.

#ifndef ECDR_CORE_DRC_H_
#define ECDR_CORE_DRC_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/concept_weights.h"
#include "core/d_radix.h"
#include "ontology/dewey.h"
#include "ontology/ontology.h"
#include "util/deadline.h"
#include "util/status.h"

namespace ecdr::core {

/// Engine policy knobs. Propagated to per-lane engines by Knds and the
/// rankers so a parallel sweep behaves like its parent engine.
struct DrcOptions {
  /// Keep the query-side D-Radix skeleton alive across consecutive
  /// calls that share a query concept set: each candidate document is
  /// merged into the skeleton under a rollback log and detached again
  /// at the start of the next call (see DESIGN.md "Query-skeleton
  /// reuse"). Distances are bit-identical with the rebuild-per-call
  /// path; this only changes how much of the build is repeated.
  bool skeleton_reuse = true;
  /// Fallback valve: when one document's merge logged more undo records
  /// than this, the next call rebuilds from Reset() instead of rolling
  /// back (replaying a huge log would cost more than re-inserting the
  /// small query side). Generous default — typical documents log a few
  /// thousand records.
  std::size_t max_rollback_entries = std::size_t{1} << 16;
  /// The document-side counterpart of the skeleton: cache the fully
  /// built doc-only D-Radix DAG of up to this many distinct documents
  /// (per Scratch) and serve later calls by bulk-copying the cached DAG
  /// and inserting just the query side on top. Because the build is
  /// insertion-order invariant, copy-then-insert yields exactly the
  /// joint d+q DAG, so distances are bit-identical to every other
  /// path. 0 disables the cache. Requires a frozen enumerator (the
  /// FlatDeweyPool); unfrozen engines fall back to the skeleton path.
  std::size_t doc_dag_cache_capacity = 256;
  /// Only calls whose raw query side has at most this many concepts
  /// take the doc-DAG copy path: inserting a large query side per call
  /// would forfeit the win, and such calls (document-vs-document
  /// sweeps) are exactly the ones the persistent query skeleton
  /// already serves.
  std::size_t doc_dag_max_query_concepts = 64;
};

class Drc {
 public:
  /// Per-engine counters, cumulative across calls until ResetStats().
  struct Stats {
    std::uint64_t calls = 0;
    std::uint64_t addresses_inserted = 0;
    std::uint64_t nodes_built = 0;
    std::uint64_t edges_built = 0;
    double seconds = 0.0;
    /// Phase split of `seconds`: gathering + inserting the address lists
    /// (the D-Radix build) vs the two tuning sweeps.
    double build_seconds = 0.0;
    double tune_seconds = 0.0;
    /// Direct timing of the evaluation loop of each distance entry point
    /// (node lookups and summing). Not part of `seconds`, which covers
    /// the build+tune phases only.
    double eval_seconds = 0.0;
    /// Skeleton-reuse telemetry: calls that rebuilt the query skeleton
    /// vs calls that reused it, and document address paths merged into /
    /// detached (rolled back) from a live skeleton. reuses / (builds +
    /// reuses) is the bench's skeleton_reuse_rate.
    std::uint64_t skeleton_builds = 0;
    std::uint64_t skeleton_reuses = 0;
    std::uint64_t doc_paths_merged = 0;
    std::uint64_t doc_paths_detached = 0;
    /// Doc-DAG cache telemetry (the bulk-copy fast path of small-query
    /// calls): hits copied a prebuilt document DAG, builds populated a
    /// new cache entry first. Calls that bypassed the cache (query too
    /// large, cache full, capacity 0) appear in the skeleton counters
    /// instead.
    std::uint64_t doc_dag_hits = 0;
    std::uint64_t doc_dag_builds = 0;
  };

  /// One (address, concept, flags) entry of the merged Pd/Pq insert
  /// list. The address is a raw view into the AddressEnumerator's
  /// storage (FlatDeweyPool arena when frozen, per-concept vectors
  /// otherwise); both are pinned by the engine's ReaderLease.
  struct PendingInsert {
    const std::uint32_t* address = nullptr;  // Null only when length == 0.
    std::uint32_t length = 0;
    ontology::ConceptId concept_id = ontology::kInvalidConcept;
    bool in_doc = false;
    bool in_query = false;
  };

  /// Reusable per-call working memory: the D-Radix arena plus every
  /// buffer a distance call fills. One Scratch serves one engine at a
  /// time; recycling it across engines (via ScratchPool) is what keeps
  /// per-query Drc construction allocation-free after warm-up.
  ///
  /// Besides warm capacity, a Scratch carries the *query skeleton*: the
  /// D-Radix DAG with only the most recent query side inserted, plus
  /// the signature identifying what it was built from. A later call —
  /// from this engine or any engine that leases the Scratch next — that
  /// matches the signature skips the query-side build entirely and only
  /// merges its document. The signature makes stale reuse impossible,
  /// so carrying the skeleton across engines is safe by construction.
  class Scratch {
   public:
    Scratch() = default;
    Scratch(Scratch&&) = default;
    Scratch& operator=(Scratch&&) = default;
    Scratch(const Scratch&) = delete;
    Scratch& operator=(const Scratch&) = delete;

   private:
    friend class Drc;
    DRadixDag dag;
    std::vector<PendingInsert> inserts;
    std::vector<ontology::ConceptId> doc_set;    // Dedup of the doc side.
    std::vector<ontology::ConceptId> query_set;  // Dedup of the query side.
    std::vector<ontology::ConceptId> concept_ids;
    std::vector<WeightedConcept> normalized;

    // Query-skeleton signature: the skeleton in `dag` is reusable iff
    // skeleton_valid and the ontology, the address-cache generation
    // (unique process-wide, so enumerator pointer reuse cannot alias),
    // the DAG generation (someone may Reset a pooled scratch's DAG
    // between leases) and the deduped query set (in query_set) all
    // still match.
    bool skeleton_valid = false;
    const void* skeleton_ontology = nullptr;
    std::uint64_t skeleton_addresses_generation = 0;
    std::uint32_t skeleton_dag_generation = 0;
    /// Paths of the currently merged document (counted as detached when
    /// the next call rolls them back).
    std::uint64_t skeleton_merged_paths = 0;

    // Document-merge buffers: the incoming query dedup (compared
    // against query_set before adopting), the gathered doc-side spans
    // with their concepts, and the (rank << 32 | index) sort keys.
    std::vector<ontology::ConceptId> probe_set;
    std::vector<ontology::AddressSpan> merge_spans;
    std::vector<ontology::ConceptId> merge_concepts;
    std::vector<std::uint64_t> merge_keys;
    std::vector<std::uint64_t> merge_keys_tmp;

    // Per-document DAG cache (see Drc::BuildWithDocDag): hash of the
    // sorted deduped doc concept set -> its prebuilt doc-only DAG.
    // Entries are validated against the stored doc_set on lookup, so a
    // hash collision degrades to the skeleton path instead of a wrong
    // answer. Invalidated wholesale when the ontology or the address
    // cache generation changes.
    struct DocDagEntry {
      std::vector<ontology::ConceptId> doc_set;  // Sorted, deduped.
      DRadixDag dag;
    };
    std::unordered_map<std::uint64_t, std::unique_ptr<DocDagEntry>> doc_dags;
    const void* doc_dag_ontology = nullptr;
    std::uint64_t doc_dag_generation = 0;
  };

  /// Thread-safe free list of Scratch arenas. Owned by long-lived
  /// callers (RankingEngine) and handed to per-call engines and
  /// parallel lanes, so the warm capacity survives both query and
  /// thread boundaries. Leases are handed out most-recently-returned
  /// first (hot pages).
  class ScratchPool {
   public:
    /// RAII lease: acquires on construction, returns on destruction.
    /// A default-constructed or null-pool lease holds nothing.
    class Lease {
     public:
      Lease() = default;
      explicit Lease(ScratchPool* pool) : pool_(pool) {
        if (pool_ != nullptr) scratch_ = pool_->Acquire();
      }
      ~Lease() { Release(); }
      Lease(Lease&& other) noexcept
          : pool_(other.pool_), scratch_(std::move(other.scratch_)) {
        other.pool_ = nullptr;
      }
      Lease& operator=(Lease&& other) noexcept {
        if (this != &other) {
          Release();
          pool_ = other.pool_;
          scratch_ = std::move(other.scratch_);
          other.pool_ = nullptr;
        }
        return *this;
      }
      Lease(const Lease&) = delete;
      Lease& operator=(const Lease&) = delete;

      Scratch* get() const { return scratch_.get(); }

     private:
      void Release() {
        if (pool_ != nullptr && scratch_ != nullptr) {
          pool_->Return(std::move(scratch_));
        }
        pool_ = nullptr;
        scratch_ = nullptr;
      }

      ScratchPool* pool_ = nullptr;
      std::unique_ptr<Scratch> scratch_;
    };

    ScratchPool() = default;
    ScratchPool(const ScratchPool&) = delete;
    ScratchPool& operator=(const ScratchPool&) = delete;

    std::size_t idle() const {
      std::lock_guard<std::mutex> lock(mutex_);
      return free_.size();
    }

   private:
    std::unique_ptr<Scratch> Acquire() {
      {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!free_.empty()) {
          std::unique_ptr<Scratch> scratch = std::move(free_.back());
          free_.pop_back();
          return scratch;
        }
      }
      return std::make_unique<Scratch>();
    }
    void Return(std::unique_ptr<Scratch> scratch) {
      std::lock_guard<std::mutex> lock(mutex_);
      free_.push_back(std::move(scratch));
    }

    mutable std::mutex mutex_;
    std::vector<std::unique_ptr<Scratch>> free_;
  };

  /// `addresses` caches Dewey address sets across calls and documents;
  /// it is shared, unowned, and must outlive the engine. `scratch`
  /// (optional) supplies the working memory; when null the engine owns
  /// a private one. A leased, already-warm scratch makes even a freshly
  /// constructed engine allocation-free.
  ///
  /// A Drc instance is cheap to construct but holds mutable
  /// per-instance state (stats + scratch), so concurrent callers use
  /// one instance per thread, sharing the (thread-safe)
  /// AddressEnumerator.
  Drc(const ontology::Ontology& ontology,
      ontology::AddressEnumerator* addresses, Scratch* scratch = nullptr,
      DrcOptions options = {});

  /// The shared dependencies, exposed so parallel call sites can spin up
  /// per-lane engines over the same ontology and address cache.
  const ontology::Ontology& ontology() const { return *ontology_; }
  ontology::AddressEnumerator* addresses() const { return addresses_; }
  const DrcOptions& options() const { return options_; }

  /// Ddq(d, q) — Eq. 2: the (unnormalized) sum over query concepts of
  /// the distance to the nearest document concept. Duplicate concepts in
  /// `query` are ignored (queries are sets). Errors on empty inputs or
  /// unknown concepts.
  util::StatusOr<std::uint64_t> DocQueryDistance(
      std::span<const ontology::ConceptId> doc,
      std::span<const ontology::ConceptId> query);

  /// Ddd(d1, d2) — Eq. 3: symmetric, each side normalized by its concept
  /// count.
  util::StatusOr<double> DocDocDistance(
      std::span<const ontology::ConceptId> d1,
      std::span<const ontology::ConceptId> d2);

  /// Weighted Ddq: sum of weight * Ddc(d, qi) over the distinct weighted
  /// query concepts (duplicates keep the largest weight). Uniform
  /// weights reduce to DocQueryDistance. Weights accumulate in ascending
  /// concept-id order, so results are deterministic.
  util::StatusOr<double> DocQueryDistanceWeighted(
      std::span<const ontology::ConceptId> doc,
      std::span<const WeightedConcept> query);

  /// Weighted Ddd: each side's sum weights concepts by `weights` and
  /// normalizes by the side's total weight; uniform weights reduce to
  /// DocDocDistance.
  util::StatusOr<double> DocDocDistanceWeighted(
      std::span<const ontology::ConceptId> d1,
      std::span<const ontology::ConceptId> d2,
      const ConceptWeights& weights);

  /// Builds (and tunes) a standalone D-Radix DAG for d and q without
  /// evaluating a distance — exposed for tests, examples and the
  /// ablation bench. Unlike the distance calls this allocates a fresh
  /// arena per call. The returned DAG is self-contained (it owns its
  /// label components) and may outlive this engine.
  util::StatusOr<DRadixDag> BuildIndex(
      std::span<const ontology::ConceptId> doc,
      std::span<const ontology::ConceptId> query);

  const Stats& stats() const { return stats_; }
  void ResetStats() { stats_ = Stats(); }

  /// Cooperative cancellation for direct callers with a budget (e.g.
  /// RankingEngine::DocumentDistance): the build polls between address
  /// insert batches and every distance entry point then returns
  /// kCancelled / kDeadlineExceeded. Both may be unset (`token` null,
  /// `deadline` infinite — the default, which costs nothing). Knds does
  /// NOT set this on its engines: it stops between DRC calls instead, so
  /// every distance it does compute is exact.
  void SetCancellation(const util::CancelToken* token,
                       util::Deadline deadline) {
    cancel_token_ = token;
    deadline_ = deadline;
  }

  /// Folds another engine's counters into this one — how per-lane
  /// engines report back after a parallel batch (call single-threaded,
  /// after the batch has been joined).
  void MergeStatsFrom(const Stats& other) {
    stats_.calls += other.calls;
    stats_.addresses_inserted += other.addresses_inserted;
    stats_.nodes_built += other.nodes_built;
    stats_.edges_built += other.edges_built;
    stats_.seconds += other.seconds;
    stats_.build_seconds += other.build_seconds;
    stats_.tune_seconds += other.tune_seconds;
    stats_.eval_seconds += other.eval_seconds;
    stats_.skeleton_builds += other.skeleton_builds;
    stats_.skeleton_reuses += other.skeleton_reuses;
    stats_.doc_paths_merged += other.doc_paths_merged;
    stats_.doc_paths_detached += other.doc_paths_detached;
    stats_.doc_dag_hits += other.doc_dag_hits;
    stats_.doc_dag_builds += other.doc_dag_builds;
  }

 private:
  util::Status ValidateConcepts(std::span<const ontology::ConceptId> concepts,
                                const char* label) const;

  /// Gathers the merged, lexicographically sorted insert list for
  /// doc + query (concepts present on both sides get both flags) into
  /// scratch_->inserts, leaving the deduped sides in scratch_->doc_set /
  /// query_set for the evaluation loops.
  void GatherInserts(std::span<const ontology::ConceptId> doc,
                     std::span<const ontology::ConceptId> query);

  /// Validates, gathers, builds and tunes into `dag` (the scratch DAG
  /// for distance calls, a fresh one for BuildIndex). Distance calls on
  /// the scratch DAG take the skeleton-reuse path (unless disabled by
  /// options); BuildIndex always builds from scratch.
  util::Status BuildInto(DRadixDag* dag,
                         std::span<const ontology::ConceptId> doc,
                         std::span<const ontology::ConceptId> query);

  /// The skeleton path of BuildInto: detaches the previous document
  /// (rollback), revalidates or rebuilds the query skeleton, then
  /// merges `doc`'s address paths in global rank order.
  util::Status BuildWithSkeleton(DRadixDag* dag,
                                 std::span<const ontology::ConceptId> doc,
                                 std::span<const ontology::ConceptId> query);

  /// The doc-DAG fast path of BuildInto (small-query calls on a frozen
  /// enumerator): bulk-copies the cached doc-only DAG into `dag` —
  /// building and caching it first on a miss — then inserts the query
  /// side on top. Falls back to BuildWithSkeleton when the cache is
  /// full (and misses) or on a hash collision.
  util::Status BuildWithDocDag(DRadixDag* dag,
                               std::span<const ontology::ConceptId> doc,
                               std::span<const ontology::ConceptId> query);

  /// Builds the doc-only DAG of `doc_set` (sorted, deduped) into `out`
  /// using globally rank-sorted, LCP-hinted insertion.
  util::Status BuildDocDag(std::span<const ontology::ConceptId> doc_set,
                           DRadixDag* out);

  /// Sorts the gathered scratch insert list (merge_spans /
  /// merge_concepts / merge_keys) by global address rank and inserts it
  /// into `dag` with rank_lcp resume hints, polling cancellation.
  /// Shared tail of the skeleton merge and the doc-DAG build.
  util::Status InsertGatheredByRank(DRadixDag* dag, bool in_doc,
                                    bool in_query);

  const ontology::Ontology* ontology_;
  ontology::AddressEnumerator* addresses_;
  // Blocks AddressEnumerator::ClearCache() for this engine's lifetime:
  // the gather phase holds {pointer,length} views into the address
  // cache / flat pool until the D-Radix build copies them.
  ontology::AddressEnumerator::ReaderLease address_lease_;
  const util::CancelToken* cancel_token_ = nullptr;
  util::Deadline deadline_;
  std::unique_ptr<Scratch> owned_scratch_;  // Used iff none was supplied.
  Scratch* scratch_;
  DrcOptions options_;
  Stats stats_;
};

/// Sorts by concept id and collapses duplicates, keeping the largest
/// weight per concept. Shared by the weighted distance and ranking
/// entry points so they agree on query normalization.
std::vector<WeightedConcept> NormalizeWeightedConcepts(
    std::span<const WeightedConcept> concepts);

}  // namespace ecdr::core

#endif  // ECDR_CORE_DRC_H_
