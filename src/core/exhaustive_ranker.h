// The exhaustive ranking baseline of the paper's Figs. 8-9: score every
// document in the collection with DRC and keep the k closest. No pruning
// — this isolates exactly the benefit of kNDS's branch-and-bound (both
// use the same DRC distance component, as in the paper's setup).
//
// Segment/shard aware: the serial scan walks the corpus segment by
// segment (contiguous id ranges — see corpus/corpus.h), and the
// parallel scan fans documents out across lanes with private top-k
// heaps merged under the id-aware (distance, id) order; both are
// bit-identical to a flat scan at any segment count, so the ranker
// works unchanged over an EngineSnapshot's sharded corpus view.

#ifndef ECDR_CORE_EXHAUSTIVE_RANKER_H_
#define ECDR_CORE_EXHAUSTIVE_RANKER_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/distance_cache.h"
#include "core/drc.h"
#include "core/scored_document.h"
#include "corpus/corpus.h"
#include "util/deadline.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace ecdr::core {

struct ExhaustiveRankerOptions {
  /// Lanes for scoring document shards concurrently. 0 = hardware
  /// concurrency, 1 = serial. Results are identical at any lane count
  /// (every document is scored exactly; the merged top-k under the
  /// (distance, id) total order does not depend on scan order).
  std::size_t num_threads = 0;

  /// Optional shared worker pool; when null and the effective lane
  /// count exceeds 1, a private pool is created lazily.
  util::ThreadPool* pool = nullptr;

  /// Optional shared Ddq memo (unowned, thread-safe); consulted before
  /// each exact scoring and fed with every computed distance. The memo
  /// stores exact DRC outputs, so rankings are bit-identical with or
  /// without it, and entries are interchangeable with Knds / TaRanker
  /// over the same engine state.
  DdqMemo* ddq_memo = nullptr;

  /// Cooperative cancellation, polled before each document. A stop ends
  /// the scan: the ranker returns the top-k of the documents scored so
  /// far — every distance exact, but NOT a global top-k — and sets
  /// Stats::truncated. `cancel_token` may be null; the default deadline
  /// never expires.
  util::Deadline deadline;
  const util::CancelToken* cancel_token = nullptr;

  /// Optional shared free list of DRC scratch arenas (unowned,
  /// thread-safe); per-lane engines lease from it so repeated scans
  /// recycle warm buffers. Null = private per-lane scratches. Purely a
  /// memory optimization: results are bit-identical either way.
  Drc::ScratchPool* drc_scratch_pool = nullptr;
};

class ExhaustiveRanker {
 public:
  using Options = ExhaustiveRankerOptions;

  struct Stats {
    std::uint64_t documents_scored = 0;
    std::uint64_t ddq_memo_hits = 0;
    std::uint64_t ddq_memo_misses = 0;
    bool truncated = false;  // deadline/cancel stopped the scan early
    double seconds = 0.0;
  };

  /// `drc` is shared and unowned; it must outlive the ranker.
  ExhaustiveRanker(const corpus::Corpus& corpus, Drc* drc,
                   Options options = {});

  /// RDS (Definition 1): the k documents with smallest Ddq, ascending,
  /// ties by document id.
  util::StatusOr<std::vector<ScoredDocument>> TopKRelevant(
      std::span<const ontology::ConceptId> query, std::uint32_t k);

  /// SDS (Definition 2): the k documents with smallest Ddd.
  util::StatusOr<std::vector<ScoredDocument>> TopKSimilar(
      const corpus::Document& query_doc, std::uint32_t k);

  /// Weighted variants (see core/concept_weights.h); reference
  /// implementations for Knds::Search*Weighted.
  util::StatusOr<std::vector<ScoredDocument>> TopKRelevantWeighted(
      std::span<const WeightedConcept> query, std::uint32_t k);
  util::StatusOr<std::vector<ScoredDocument>> TopKSimilarWeighted(
      const corpus::Document& query_doc, const ConceptWeights& weights,
      std::uint32_t k);

  const Stats& last_stats() const { return last_stats_; }

 private:
  /// `score` is called as score(engine, id, doc) where `engine` is the
  /// lane's private Drc (drc_ itself on the serial path) and `doc` the
  /// already-resolved document. `sig` (invalid = no memoization) keys
  /// the Ddq memo consult wrapped around `score`.
  template <typename ScoreFn>
  util::StatusOr<std::vector<ScoredDocument>> Rank(std::uint32_t k,
                                                   const QuerySig& sig,
                                                   ScoreFn&& score);

  const corpus::Corpus* corpus_;
  Drc* drc_;
  Options options_;
  Stats last_stats_;
  std::unique_ptr<util::ThreadPool> owned_pool_;
};

}  // namespace ecdr::core

#endif  // ECDR_CORE_EXHAUSTIVE_RANKER_H_
