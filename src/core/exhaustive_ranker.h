// The exhaustive ranking baseline of the paper's Figs. 8-9: score every
// document in the collection with DRC and keep the k closest. No pruning
// — this isolates exactly the benefit of kNDS's branch-and-bound (both
// use the same DRC distance component, as in the paper's setup).

#ifndef ECDR_CORE_EXHAUSTIVE_RANKER_H_
#define ECDR_CORE_EXHAUSTIVE_RANKER_H_

#include <cstdint>
#include <span>
#include <vector>

#include "core/drc.h"
#include "core/scored_document.h"
#include "corpus/corpus.h"
#include "util/status.h"

namespace ecdr::core {

class ExhaustiveRanker {
 public:
  struct Stats {
    std::uint64_t documents_scored = 0;
    double seconds = 0.0;
  };

  /// `drc` is shared and unowned; it must outlive the ranker.
  ExhaustiveRanker(const corpus::Corpus& corpus, Drc* drc);

  /// RDS (Definition 1): the k documents with smallest Ddq, ascending,
  /// ties by document id.
  util::StatusOr<std::vector<ScoredDocument>> TopKRelevant(
      std::span<const ontology::ConceptId> query, std::uint32_t k);

  /// SDS (Definition 2): the k documents with smallest Ddd.
  util::StatusOr<std::vector<ScoredDocument>> TopKSimilar(
      const corpus::Document& query_doc, std::uint32_t k);

  /// Weighted variants (see core/concept_weights.h); reference
  /// implementations for Knds::Search*Weighted.
  util::StatusOr<std::vector<ScoredDocument>> TopKRelevantWeighted(
      std::span<const WeightedConcept> query, std::uint32_t k);
  util::StatusOr<std::vector<ScoredDocument>> TopKSimilarWeighted(
      const corpus::Document& query_doc, const ConceptWeights& weights,
      std::uint32_t k);

  const Stats& last_stats() const { return last_stats_; }

 private:
  template <typename ScoreFn>
  util::StatusOr<std::vector<ScoredDocument>> Rank(std::uint32_t k,
                                                   ScoreFn&& score);

  const corpus::Corpus* corpus_;
  Drc* drc_;
  Stats last_stats_;
};

}  // namespace ecdr::core

#endif  // ECDR_CORE_EXHAUSTIVE_RANKER_H_
