// kNDS — the k-Nearest Document Search algorithm (paper Section 5).
//
// kNDS answers both query types with one branch-and-bound machine:
//   RDS: top-k documents by Ddq(d, q) for a set of query concepts,
//   SDS: top-k documents by Ddd(d, dq) for a query document.
//
// It runs one valid-path breadth-first expansion per query concept, in
// lockstep levels (the paper's Ec queue with {null,null} level markers).
// When the BFS from query concept qi first reaches a concept contained
// in document d at level l, then Ddc(d, qi) = l exactly (BFS visits in
// increasing valid-path distance); uncovered query concepts are bounded
// below by l+1. From these it maintains, per touched document, the
// partial distance (Eqs. 5/7) and lower-bound distance (Eqs. 6/8), and
// an error estimate
//
//     eps_d = 1 - Dpartial / Dlower                          (Eq. 9)
//
// that gates the expensive exact-distance computation: a document is
// handed to DRC only once eps_d <= eps_theta (the error threshold, the
// paper's main tuning knob — see Fig. 7). Documents whose lower bound
// can no longer beat the current k-th best are pruned; the search
// terminates when no unexamined document can beat it.
//
// The four engineering optimizations at the end of Section 5.3 are
// implemented and individually switchable for ablation:
//   1. prune_candidates        — drop docs whose lower bound exceeds D+k;
//   2. partial_candidate_heap  — select candidates with a heap instead of
//                                fully sorting Ld each level;
//   3. covered_distance_shortcut — a fully covered document's partial
//                                distance *is* its exact distance: skip DRC;
//   4. progressive output      — results whose distance is at most every
//                                remaining lower bound are emitted early
//                                through a callback.

#ifndef ECDR_CORE_KNDS_H_
#define ECDR_CORE_KNDS_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/distance_cache.h"
#include "core/drc.h"
#include "core/scored_document.h"
#include "corpus/corpus.h"
#include "index/sharded_index.h"
#include "util/deadline.h"
#include "util/fault_injector.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace ecdr::core {

struct KndsOptions {
  /// eps_theta in [0, 1]. 0 = wait until a document is fully covered
  /// before computing its exact distance; 1 = probe DRC at first touch.
  /// The paper's defaults: 0.5 (PATIENT-like dense corpora), 0.9
  /// (RADIO-like sparse corpora).
  double error_threshold = 0.5;

  /// Cap on the total BFS frontier size across query concepts. When
  /// exceeded, kNDS is "forced to examine the collected set of
  /// documents" (Section 6.1) regardless of the error gate.
  std::size_t node_queue_limit = 50'000;

  // Section 5.3 optimizations (all on by default; switchable for the
  // ablation bench).
  bool prune_candidates = true;
  bool partial_candidate_heap = true;
  bool covered_distance_shortcut = true;

  /// Benchmarking aid: simulated latency added to every inverted-index
  /// postings fetch during traversal. The paper's inverted/forward
  /// indexes lived in MySQL ("memory or disk-based", Section 5.3), so
  /// its traversal cost includes I/O that an all-in-memory build does
  /// not pay; setting this reproduces the paper's cost regime, where
  /// waiting for coverage is expensive and eager DRC probing pays off
  /// on sparse collections (Fig. 7 c-e). 0 disables it.
  double simulated_postings_access_seconds = 0.0;

  /// Lanes for concurrent DRC verification (the dominant cost once the
  /// error gate fires — paper Figs. 6-7). 0 = hardware concurrency; 1 =
  /// today's fully serial execution. Any value returns bit-identical
  /// top-k sets and distances: waves of gate-passing candidates are
  /// verified speculatively in parallel, then consumed by an exact
  /// replay of the serial examination order (see DESIGN.md, "Threading
  /// model").
  std::size_t num_threads = 0;

  /// Capacities / enable flags for the cross-query caches. Knds does not
  /// own any cache — RankingEngine builds its DdqMemo and
  /// ConceptPairCache from this block and hands them down; standalone
  /// Knds users pass a DdqMemo to the constructor themselves.
  CacheOptions cache;

  /// Absolute wall-clock budget for one Search* call. On expiry the
  /// search stops expanding and finalizes the anytime result (verified
  /// exact distances plus lower bounds with per-result error bounds;
  /// KndsStats::truncated is set). The default never expires and leaves
  /// behavior bit-identical to a deadline-free build. Note the deadline
  /// is absolute: long-lived engines must refresh it per query
  /// (RankingEngine does, via SearchControl).
  util::Deadline deadline;

  /// Cooperative cancellation (unowned, may be null; the caller keeps
  /// the token alive for the duration of the search). Checked at
  /// traversal-loop, candidate-sweep, and thread-pool-task granularity;
  /// observing a cancel triggers the same anytime finalization as a
  /// deadline expiry.
  const util::CancelToken* cancel_token = nullptr;

  /// First rung of the degradation ladder: once this fraction of the
  /// deadline budget has elapsed, the error gate escalates to
  /// eps_theta = 1 (probe DRC at first touch), converting remaining
  /// traversal time into verified exact distances before a hard
  /// truncation can hit. Ignored without a deadline.
  double escalate_error_threshold_after = 0.5;

  /// Fault-injection hooks for robustness tests (unowned, may be null;
  /// see util/fault_injector.h). Observed on every postings fetch and
  /// DRC task; null costs nothing.
  util::FaultInjector* fault_injector = nullptr;

  /// Optional shared free list of DRC scratch arenas (unowned,
  /// thread-safe). When set, the per-lane verification engines lease
  /// their working memory from it instead of growing fresh buffers, so
  /// steady-state DRC calls stay allocation-free across queries and
  /// threads (RankingEngine owns one per engine). Null = each lane owns
  /// a private scratch for the duration of the search. Purely a memory
  /// optimization: results are bit-identical either way.
  Drc::ScratchPool* drc_scratch_pool = nullptr;

  /// Mixed into every Ddq memo signature (see SaltSignature). The engine
  /// sets it to the snapshot's ontology structural hash, so entries
  /// written under one ontology structure never match after a
  /// distance-relevant evolution — and in-flight searches on the old
  /// snapshot keep using (and validly re-populating) the old keyspace.
  /// 0 = no salt, the pre-evolution behavior.
  std::uint64_t memo_salt = 0;
};

struct KndsStats {
  std::uint64_t levels = 0;             // BFS iterations
  std::uint64_t concept_visits = 0;     // (concept, origin) first visits
  std::uint64_t documents_touched = 0;  // entered Ld at least once
  std::uint64_t documents_examined = 0; // exact distances computed
  std::uint64_t drc_calls = 0;          // examined minus shortcut hits
  std::uint64_t documents_pruned = 0;
  std::uint64_t queue_limit_hits = 0;
  std::uint64_t parallel_waves = 0;     // concurrent verification batches
  // DRC probes computed speculatively in a wave but never consumed by
  // the serial replay (wasted work; bounded by the wave size).
  std::uint64_t speculative_drc_calls = 0;
  // Cross-query Ddq memo outcomes (zero when no memo is attached or the
  // search mode is not memoizable). A hit counts as a drc_call — it
  // stands in for one — but costs no DRC run.
  std::uint64_t ddq_memo_hits = 0;
  std::uint64_t ddq_memo_misses = 0;
  // Anytime contract: true when the search stopped early (deadline or
  // cancel) and the results were finalized from verified distances plus
  // lower bounds. `cancelled` distinguishes an explicit cancel from a
  // deadline expiry; `error_threshold_escalated` records that the first
  // degradation rung (eps_theta -> 1) fired before any truncation.
  bool truncated = false;
  bool cancelled = false;
  bool error_threshold_escalated = false;
  double traversal_seconds = 0.0;       // BFS + bookkeeping
  double distance_seconds = 0.0;        // DRC probes
  double total_seconds = 0.0;
};

class Knds {
 public:
  /// All dependencies are shared and unowned. `index` is a view over
  /// either a whole-corpus InvertedIndex (implicit conversion — one
  /// shard) or a ShardedIndex; it must cover every document of the
  /// corpus (keep a standalone InvertedIndex updated through
  /// InvertedIndex::AddDocument when appending documents). The BFS
  /// consumes postings shard by shard in increasing id-range order,
  /// which visits documents in exactly the order a single index would —
  /// results are bit-identical at any shard count.
  ///
  /// `pool` (optional) supplies the worker threads for concurrent DRC
  /// verification so several engines can share one pool (RankingEngine
  /// does this). When null and the effective num_threads exceeds 1, the
  /// engine lazily creates a private pool of num_threads - 1 workers
  /// (the searching thread is the extra lane).
  ///
  /// `ddq_memo` (optional, unowned, thread-safe) is consulted before
  /// every exact DRC run and fed with every computed distance; see
  /// core/distance_cache.h. Hits return the exact stored double, so
  /// results are bit-identical with or without a memo.
  Knds(const corpus::Corpus& corpus, index::IndexView index, Drc* drc,
       KndsOptions options = {}, util::ThreadPool* pool = nullptr,
       DdqMemo* ddq_memo = nullptr);

  /// RDS (Definition 1). Duplicate query concepts are ignored. Returns
  /// up to k documents, ascending by (distance, id).
  util::StatusOr<std::vector<ScoredDocument>> SearchRds(
      std::span<const ontology::ConceptId> query, std::uint32_t k);

  /// SDS (Definition 2). The query document need not be in the corpus;
  /// if it is, it is returned like any other document (at distance 0).
  util::StatusOr<std::vector<ScoredDocument>> SearchSds(
      const corpus::Document& query_doc, std::uint32_t k);

  /// Weighted RDS: ranks by sum_i w(qi) * Ddc(d, qi). Queries typically
  /// come from ExpandQuery() (core/query_expansion.h); duplicate
  /// concepts keep their largest weight. All weights must be positive.
  /// The covered-distance shortcut is bypassed in weighted searches so
  /// exact distances always come from DRC with a deterministic
  /// accumulation order.
  util::StatusOr<std::vector<ScoredDocument>> SearchRdsWeighted(
      std::span<const WeightedConcept> query, std::uint32_t k);

  /// Weighted SDS under a global per-concept weight table (e.g.
  /// information-content weights): both directions of Eq. 3 weight each
  /// concept's nearest-neighbor distance and normalize by total weight.
  util::StatusOr<std::vector<ScoredDocument>> SearchSdsWeighted(
      const corpus::Document& query_doc, const ConceptWeights& weights,
      std::uint32_t k);

  /// Stats of the most recent Search* call.
  const KndsStats& last_stats() const { return stats_; }

  /// Progressive-output hook (Section 5.3, optimization 4): invoked for
  /// each result as soon as it is provably in the top-k, in ascending
  /// distance order within each level.
  using ProgressCallback = std::function<void(const ScoredDocument&)>;
  void set_progress_callback(ProgressCallback callback) {
    progress_callback_ = std::move(callback);
  }

 private:
  struct DocState {
    // Weighted sums/totals; with uniform weights every value below is an
    // exactly-represented integer, so the unweighted path loses nothing.
    double fwd_sum = 0;             // sum of w(qi) * Md(qi, d)
    double fwd_covered_weight = 0;  // total weight of covered origins
    std::uint32_t fwd_covered = 0;  // |Md| for this doc
    double rev_sum = 0;             // SDS: sum of w(c) * M'd(c)
    double rev_covered_weight = 0;  // SDS: total weight of covered concepts
    std::uint32_t rev_covered = 0;  // SDS: |M'd|
    std::vector<std::uint64_t> covered_bits;  // one bit per query concept
  };

  // Document phases; a document only ever moves forward through these.
  enum : std::uint8_t {
    kUntouched = 0,
    kActive = 1,
    kExamined = 2,
    kPruned = 3,
  };

  /// Common engine. `origins` must be sorted and unique;
  /// `origin_weights` is parallel to it (empty = uniform 1.0);
  /// `doc_weights` weights the SDS reverse direction (null = uniform);
  /// `weighted` selects the weighted exact-distance path.
  util::StatusOr<std::vector<ScoredDocument>> Search(
      std::span<const ontology::ConceptId> origins,
      std::span<const double> origin_weights, bool sds,
      const corpus::Document* query_doc, const ConceptWeights* doc_weights,
      bool weighted, std::uint32_t k);

  const corpus::Corpus* corpus_;
  index::IndexView index_;
  Drc* drc_;
  KndsOptions options_;
  KndsStats stats_;
  ProgressCallback progress_callback_;
  util::ThreadPool* pool_;                        // external, may be null
  std::unique_ptr<util::ThreadPool> owned_pool_;  // lazily created
  DdqMemo* ddq_memo_;                             // external, may be null
};

}  // namespace ecdr::core

#endif  // ECDR_CORE_KNDS_H_
