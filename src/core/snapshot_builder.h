// SnapshotBuilder — the single-writer path that turns document
// lifecycle calls (add / update / tombstone-delete) into published
// EngineSnapshot generations (DESIGN.md, "Snapshot lifecycle").
//
// Writes never touch a published snapshot. The builder batches incoming
// operations into a bounded pending delta, and on publish:
//   1. fsyncs the write-ahead log when a DocumentStore is attached —
//      the durability barrier: nothing becomes visible before it is
//      durable (log-ahead ordering; DESIGN.md, "Durability & recovery");
//   2. copies the current snapshot's corpus (cheap — segments are
//      shared) and replays the delta, which clones only the touched
//      segments (copy-on-write);
//   3. rebuilds the sharded inverted index against the new corpus,
//      sharing every shard whose backing segment is untouched;
//   4. version-invalidates the touched documents' DdqMemo entries and
//      stamps the new generation with the resulting cache epoch;
//   5. atomically swaps the engine's root pointer. In-flight searches
//      keep their generation; new searches see the new one.
//
// With publish_batch_size == 1 (the default) every write publishes
// immediately — the paper's point-of-care contract, a record is
// searchable the moment it is inserted. Larger batches amortize publish
// cost under write-heavy load; operations then become visible
// atomically when the batch fills or Flush() runs. The pending delta is
// bounded: once max_pending_docs operations await publish, writes fail
// fast with kResourceExhausted instead of buffering without limit
// (mirroring the admission controller's shedding on the read side).
//
// Deletes are tombstones: the slot keeps its DocId (so every other id,
// and every WAL record naming one, stays stable) but holds an empty
// document that produces no postings — the document vanishes from
// results at the very next publish. Compact() merges small segments and
// re-publishes; tombstone slots survive compaction so replay stays
// bit-identical.
//
// The builder also owns the engine side of ontology evolution:
// SwapOntology() publishes a generation whose corpus is rebound to the
// evolved DAG and whose EngineSnapshot carries the successor
// OntologySnapshot. The inverted index is SHARED, not rebuilt —
// evolution is append-only, so no stored document references a concept
// the old index lacks, and InvertedIndex::Postings returns empty lists
// for concepts beyond its build-time bound.
//
// Thread safety: all methods are safe to call concurrently; writers
// serialize on the builder's mutex. Readers of the published root are
// never blocked — they do not take this (or any) mutex.

#ifndef ECDR_CORE_SNAPSHOT_BUILDER_H_
#define ECDR_CORE_SNAPSHOT_BUILDER_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_set>
#include <vector>

#include "core/distance_cache.h"
#include "core/engine_snapshot.h"
#include "corpus/corpus.h"
#include "ontology/dewey.h"
#include "ontology/flat_dewey_pool.h"
#include "ontology/ontology.h"
#include "ontology/ontology_snapshot.h"
#include "storage/store.h"
#include "util/snapshot.h"
#include "util/status.h"

namespace ecdr::core {

/// Shard layout and write-buffering knobs (README, "Sharding knobs").
struct SnapshotOptions {
  /// Contiguous shards a bulk load (AddCorpus / CreateFromFiles) is
  /// partitioned into. 1 = unsharded. Ignored when
  /// target_docs_per_shard already fixes the layout.
  std::size_t num_shards = 1;

  /// Documents per shard before appends roll over into a fresh tail
  /// shard. Bounds the cost of a publish (the shared tail shard is
  /// cloned per batch). 0 = never roll over: one growing tail.
  std::uint32_t target_docs_per_shard = 0;

  /// Pending operations per publish. 1 (default) publishes on every
  /// write — immediately searchable; larger values batch, and the
  /// batch becomes visible atomically. 0 = manual: operations buffer
  /// until Flush() (the pending bound below still applies).
  std::size_t publish_batch_size = 1;

  /// Bound on the pending delta. Writes fail with kResourceExhausted
  /// once this many operations await publish.
  std::size_t max_pending_docs = 1024;
};

/// State recovered by storage::DocumentStore at boot, handed to the
/// builder so generation 0 is the pre-crash corpus instead of empty.
struct RecoveredState {
  corpus::Corpus corpus;
  /// The image's index; used only when `index_exact` (the WAL replay
  /// applied nothing on top of the image), otherwise rebuilt.
  index::ShardedIndex index;
  bool index_exact = false;
  /// Highest WAL LSN the recovered corpus reflects.
  std::uint64_t last_lsn = 0;
};

class SnapshotBuilder {
 public:
  /// Publishes generation 0 into `root`: the empty corpus, or
  /// `recovered` when given (consumed — fields are moved out).
  /// `ontology` is the version the corpus is bound to (shared; never
  /// null). The raw pointers are unowned and must outlive the builder;
  /// `ddq_memo`, `store` and `recovered` may be null. When `store` is
  /// set, every mutation is logged ahead to its WAL and publishes fsync
  /// it (log-ahead write path).
  SnapshotBuilder(std::shared_ptr<const ontology::OntologySnapshot> ontology,
                  DdqMemo* ddq_memo,
                  util::SnapshotHandle<EngineSnapshot>* root,
                  SnapshotOptions options,
                  storage::DocumentStore* store = nullptr,
                  RecoveredState* recovered = nullptr);

  SnapshotBuilder(const SnapshotBuilder&) = delete;
  SnapshotBuilder& operator=(const SnapshotBuilder&) = delete;

  /// Validates and enqueues `doc`, returning the id it will occupy;
  /// publishes when the batch is full. Fails with kInvalidArgument on a
  /// bad document, kFailedPrecondition when it references a retired
  /// concept, and kResourceExhausted when the pending delta is full
  /// (the caller may Flush() and retry).
  util::StatusOr<corpus::DocId> AddDocument(corpus::Document doc);

  /// Tombstones `doc`: it vanishes from results at the next publish
  /// (immediately, with the default batch size). kOutOfRange for an id
  /// never assigned, kNotFound when already deleted.
  util::Status DeleteDocument(corpus::DocId doc);

  /// Replaces `doc`'s concepts in place — same id, new content.
  /// kNotFound when the document was deleted (updates do not
  /// resurrect tombstones).
  util::Status UpdateDocument(corpus::DocId doc, corpus::Document new_doc);

  /// Bulk load: appends every document of `source` and publishes once.
  /// A fresh engine is partitioned into SnapshotOptions::num_shards
  /// contiguous shards.
  util::Status AddCorpus(const corpus::Corpus& source);

  /// Publishes any pending operations now. No-op when none are
  /// pending. With a store attached, a failure (the WAL fsync) leaves
  /// the operations pending — nothing was made visible — and the
  /// caller may retry.
  util::Status Flush();

  /// Re-lays the corpus out with every segment holding at least
  /// `min_docs_per_segment` documents (large segments are shared, not
  /// copied) and publishes the compacted generation. Results are
  /// bit-identical before and after — kNDS merges shards
  /// order-independently. Pending operations are flushed first.
  util::Status Compact(std::uint32_t min_docs_per_segment);

  /// Publishes a generation bound to `next` (an evolved successor of
  /// the current ontology snapshot): flushes the pending delta under
  /// the OLD version first, rebinds the corpus to the new DAG and
  /// re-shares the inverted index (no rebuild — see the header
  /// comment). Subsequent writes validate against `next`, including its
  /// retirement flags. The caller (RankingEngine) has already logged
  /// the mutations and synced the WAL — durability precedes visibility.
  util::Status SwapOntology(
      std::shared_ptr<const ontology::OntologySnapshot> next);

  /// Flushes, then writes a checkpoint image of the current generation
  /// into `store` (rotating its WAL), stamping it with the current
  /// ontology version/lineage. Holding the builder mutex across the
  /// image write keeps the (corpus, ontology, LSN) triple consistent;
  /// concurrent writers stall for the duration.
  util::Status Checkpoint(storage::DocumentStore* store);

  /// The ontology snapshot new writes validate against.
  std::shared_ptr<const ontology::OntologySnapshot> ontology() const;

  std::size_t pending_documents() const;

  /// Total snapshots published, including generation 0; the current
  /// snapshot's generation is this minus one.
  std::uint64_t generations_published() const;

  /// Highest WAL LSN covered by the published root (0 without a store).
  std::uint64_t published_lsn() const;

 private:
  enum class OpKind { kAdd, kDelete, kUpdate };

  struct PendingOp {
    OpKind kind;
    corpus::Document doc;  // kAdd / kUpdate payload; empty for kDelete
    corpus::DocId target = 0;  // kDelete / kUpdate target id
    std::uint64_t lsn = 0;     // WAL LSN, 0 without a store
  };

  /// Syncs the WAL (durability barrier), applies `pending_` to a copy
  /// of the current corpus and publishes the next generation. On sync
  /// failure nothing publishes and the delta stays pending. `mutex_`
  /// must be held.
  util::Status PublishLocked();

  /// `mutex_` must be held (reads the swappable ontology_).
  util::Status ValidateLocked(const corpus::Document& doc) const;

  /// Checks `doc` names a live document in the effective state (current
  /// corpus + pending adds − pending deletes). `mutex_` must be held.
  util::Status ValidateTargetLocked(const EngineSnapshot& current,
                                    corpus::DocId doc) const;

  util::Status MaybePublishBatchLocked();

  DdqMemo* ddq_memo_;
  util::SnapshotHandle<EngineSnapshot>* root_;
  SnapshotOptions options_;
  storage::DocumentStore* store_;

  mutable std::mutex mutex_;
  /// The ontology version writes validate against and publishes stamp;
  /// replaced by SwapOntology. Guarded by mutex_.
  std::shared_ptr<const ontology::OntologySnapshot> ontology_;
  std::vector<PendingOp> pending_;
  /// Adds among pending_ — their ids are corpus.num_documents() +
  /// [0, pending_adds_), which is how AddDocument assigns ids before
  /// the publish materializes them.
  std::size_t pending_adds_ = 0;
  /// Targets of pending deletes, so a second delete (or an update of a
  /// just-deleted id) fails now rather than CHECKing at publish.
  std::unordered_set<corpus::DocId> pending_deleted_;
  std::uint64_t next_generation_ = 0;
  std::uint64_t published_lsn_ = 0;
};

}  // namespace ecdr::core

#endif  // ECDR_CORE_SNAPSHOT_BUILDER_H_
