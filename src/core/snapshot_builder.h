// SnapshotBuilder — the single-writer path that turns AddDocument calls
// into published EngineSnapshot generations (DESIGN.md, "Snapshot
// lifecycle").
//
// Writes never touch a published snapshot. The builder batches incoming
// documents into a bounded pending delta, and on publish:
//   1. copies the current snapshot's corpus (cheap — segments are
//      shared) and appends the delta, which clones only the tail
//      segment (copy-on-write);
//   2. rebuilds the sharded inverted index against the new corpus,
//      sharing every shard whose id range is unchanged — only the
//      touched tail shard (plus any rollover shard) is built;
//   3. version-invalidates the new documents' DdqMemo entries and
//      stamps the new generation with the resulting cache epoch;
//   4. atomically swaps the engine's root pointer. In-flight searches
//      keep their generation; new searches see the new one.
//
// With publish_batch_size == 1 (the default) every AddDocument
// publishes immediately — the paper's point-of-care contract, a record
// is searchable the moment it is inserted. Larger batches amortize
// publish cost under write-heavy load; documents then become visible
// atomically when the batch fills or Flush() runs. The pending delta is
// bounded: once max_pending_docs documents await publish, AddDocument
// fails fast with kResourceExhausted instead of buffering without
// limit (mirroring the admission controller's shedding on the read
// side).
//
// Thread safety: all methods are safe to call concurrently; writers
// serialize on the builder's mutex. Readers of the published root are
// never blocked — they do not take this (or any) mutex.

#ifndef ECDR_CORE_SNAPSHOT_BUILDER_H_
#define ECDR_CORE_SNAPSHOT_BUILDER_H_

#include <cstdint>
#include <mutex>
#include <vector>

#include "core/distance_cache.h"
#include "core/engine_snapshot.h"
#include "corpus/corpus.h"
#include "ontology/dewey.h"
#include "ontology/ontology.h"
#include "util/snapshot.h"
#include "util/status.h"

namespace ecdr::core {

/// Shard layout and write-buffering knobs (README, "Sharding knobs").
struct SnapshotOptions {
  /// Contiguous shards a bulk load (AddCorpus / CreateFromFiles) is
  /// partitioned into. 1 = unsharded. Ignored when
  /// target_docs_per_shard already fixes the layout.
  std::size_t num_shards = 1;

  /// Documents per shard before appends roll over into a fresh tail
  /// shard. Bounds the cost of a publish (the shared tail shard is
  /// cloned per batch). 0 = never roll over: one growing tail.
  std::uint32_t target_docs_per_shard = 0;

  /// Pending documents per publish. 1 (default) publishes on every
  /// AddDocument — immediately searchable; larger values batch, and the
  /// batch becomes visible atomically. 0 = manual: documents buffer
  /// until Flush() (the pending bound below still applies).
  std::size_t publish_batch_size = 1;

  /// Bound on the pending delta. AddDocument fails with
  /// kResourceExhausted once this many documents await publish.
  std::size_t max_pending_docs = 1024;
};

class SnapshotBuilder {
 public:
  /// Publishes the empty generation-0 snapshot into `root`. All
  /// pointers are unowned and must outlive the builder; `addresses` and
  /// `ddq_memo` may be null.
  SnapshotBuilder(const ontology::Ontology& ontology,
                  ontology::AddressEnumerator* addresses, DdqMemo* ddq_memo,
                  util::SnapshotHandle<EngineSnapshot>* root,
                  SnapshotOptions options);

  SnapshotBuilder(const SnapshotBuilder&) = delete;
  SnapshotBuilder& operator=(const SnapshotBuilder&) = delete;

  /// Validates and enqueues `doc`, returning the id it will occupy;
  /// publishes when the batch is full. Fails with kInvalidArgument on a
  /// bad document and kResourceExhausted when the pending delta is full
  /// (the caller may Flush() and retry).
  util::StatusOr<corpus::DocId> AddDocument(corpus::Document doc);

  /// Bulk load: appends every document of `source` and publishes once.
  /// A fresh engine is partitioned into SnapshotOptions::num_shards
  /// contiguous shards.
  util::Status AddCorpus(const corpus::Corpus& source);

  /// Publishes any pending documents now. No-op when none are pending.
  void Flush();

  std::size_t pending_documents() const;

  /// Total snapshots published, including the empty generation 0; the
  /// current snapshot's generation is this minus one.
  std::uint64_t generations_published() const;

 private:
  /// Appends `pending_` to a copy of the current corpus and publishes
  /// the next generation. `mutex_` must be held.
  void PublishLocked();

  util::Status Validate(const corpus::Document& doc) const;

  const ontology::Ontology* ontology_;
  ontology::AddressEnumerator* addresses_;
  DdqMemo* ddq_memo_;
  util::SnapshotHandle<EngineSnapshot>* root_;
  SnapshotOptions options_;

  mutable std::mutex mutex_;
  std::vector<corpus::Document> pending_;
  std::uint64_t next_generation_ = 0;
};

}  // namespace ecdr::core

#endif  // ECDR_CORE_SNAPSHOT_BUILDER_H_
