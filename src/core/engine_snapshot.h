// EngineSnapshot — one immutable, reference-counted generation of the
// engine's searchable state (DESIGN.md, "Snapshot lifecycle").
//
// A snapshot bundles everything a search reads: the ontology version
// (DAG + frozen addresses + retirement flags), the corpus view, the
// forward and sharded inverted indexes, and the cache epoch the
// generation was published at, plus a ReaderLease pinning the frozen
// AddressEnumerator / FlatDeweyPool for as long as any reader holds the
// generation (so AddressEnumerator::ClearCache aborts rather than
// dangling an in-flight search — the lease count is the snapshot
// refcount's shadow in the address layer).
//
// Readers obtain the current snapshot from the engine with one atomic
// load (util::SnapshotHandle<EngineSnapshot>::Acquire) and run
// start-to-finish against it; writers never mutate a published
// snapshot, they publish a successor built copy-on-write by
// core::SnapshotBuilder. Corpus and ShardedIndex copies share segments
// and shards by refcount, so a snapshot costs O(changed tail shard),
// not O(collection). Ontology evolution publishes the same way: the
// successor generation carries the next OntologySnapshot while
// in-flight searches keep the version they started on.

#ifndef ECDR_CORE_ENGINE_SNAPSHOT_H_
#define ECDR_CORE_ENGINE_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <utility>

#include "corpus/corpus.h"
#include "index/forward_index.h"
#include "index/sharded_index.h"
#include "ontology/dewey.h"
#include "ontology/ontology_snapshot.h"

namespace ecdr::core {

struct EngineSnapshot {
  /// `ontology_in` may be null only in reduced test rigs; when set, the
  /// snapshot holds a ReaderLease on its enumerator for its whole
  /// lifetime.
  EngineSnapshot(std::uint64_t generation_in, corpus::Corpus corpus_in,
                 index::ShardedIndex index_in,
                 std::shared_ptr<const ontology::OntologySnapshot> ontology_in,
                 std::uint64_t ddq_epoch_in)
      : generation(generation_in),
        corpus(std::move(corpus_in)),
        index(std::move(index_in)),
        forward(corpus),
        ontology(std::move(ontology_in)),
        address_lease(ontology != nullptr ? ontology->addresses() : nullptr),
        ddq_epoch(ddq_epoch_in) {}

  // forward points into this object: pin it in place.
  EngineSnapshot(const EngineSnapshot&) = delete;
  EngineSnapshot& operator=(const EngineSnapshot&) = delete;

  /// Monotone publish counter; generation 0 is the empty corpus a fresh
  /// engine starts with.
  const std::uint64_t generation;

  const corpus::Corpus corpus;
  const index::ShardedIndex index;
  const index::ForwardIndex forward;  // document -> concepts view of `corpus`

  /// The ontology version this generation searches. Declared BEFORE the
  /// lease: members destroy in reverse order, so the lease releases
  /// while the enumerator (owned through this pointer) is still alive.
  const std::shared_ptr<const ontology::OntologySnapshot> ontology;

  /// Pins the frozen Dewey address cache while this generation lives.
  const ontology::AddressEnumerator::ReaderLease address_lease;

  /// The engine DdqMemo epoch this generation was published at: entries
  /// written at or before this epoch cover every document the snapshot
  /// can see. Snapshot-scoped where the pre-snapshot engine had one
  /// global mutable epoch.
  const std::uint64_t ddq_epoch;

  std::uint64_t ontology_version() const {
    return ontology != nullptr ? ontology->version() : 0;
  }
};

}  // namespace ecdr::core

#endif  // ECDR_CORE_ENGINE_SNAPSHOT_H_
