// The quadratic distance baseline ("BL" in the paper's Fig. 6).
//
// Computes document-query / document-document distances by evaluating
// all O(nq * nd) pairwise concept-concept shortest valid-path distances
// at query time (no index, no precomputation), exactly the strategy
// Section 4.1 describes and Section 6.2 measures against DRC. Each
// pairwise distance joins the two concepts' ancestor distance maps;
// maps are cached within a call so each concept's ancestors are walked
// once.

#ifndef ECDR_CORE_BASELINE_DISTANCE_H_
#define ECDR_CORE_BASELINE_DISTANCE_H_

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "ontology/distance_oracle.h"
#include "ontology/ontology.h"
#include "util/status.h"

namespace ecdr::core {

class BaselineDistance {
 public:
  explicit BaselineDistance(const ontology::Ontology& ontology);

  /// Ddq(d, q) — Eq. 2 via pairwise minima.
  util::StatusOr<std::uint64_t> DocQueryDistance(
      std::span<const ontology::ConceptId> doc,
      std::span<const ontology::ConceptId> query);

  /// Ddd(d1, d2) — Eq. 3 via the full pairwise distance matrix.
  util::StatusOr<double> DocDocDistance(
      std::span<const ontology::ConceptId> d1,
      std::span<const ontology::ConceptId> d2);

 private:
  using UpMap = std::unordered_map<ontology::ConceptId, std::uint32_t>;

  /// Row minima (for each a in `rows`: min over b in `cols` of D(a, b))
  /// and column minima of the pairwise distance matrix.
  void PairwiseMinima(std::span<const ontology::ConceptId> rows,
                      std::span<const ontology::ConceptId> cols,
                      std::vector<std::uint32_t>* row_min,
                      std::vector<std::uint32_t>* col_min);

  const ontology::Ontology* ontology_;
  ontology::DistanceOracle oracle_;
};

}  // namespace ecdr::core

#endif  // ECDR_CORE_BASELINE_DISTANCE_H_
