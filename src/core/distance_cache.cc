#include "core/distance_cache.h"

#include <bit>

namespace ecdr::core {

namespace {

// SplitMix64 finalizer — the mixing step of the PRNG in util/random.cc,
// reused here as a hash combiner. Two lanes seeded differently give the
// 128-bit signature; a collision must defeat both lanes at once.
std::uint64_t Mix(std::uint64_t h) {
  h ^= h >> 30;
  h *= 0xBF58476D1CE4E5B9ull;
  h ^= h >> 27;
  h *= 0x94D049BB133111EBull;
  h ^= h >> 31;
  return h;
}

struct SigBuilder {
  std::uint64_t lo;
  std::uint64_t hi;

  explicit SigBuilder(std::uint64_t tag)
      : lo(Mix(tag ^ 0x6A09E667F3BCC908ull)),
        hi(Mix(tag ^ 0xBB67AE8584CAA73Bull)) {}

  void Add(std::uint64_t word) {
    lo = Mix(lo ^ word);
    hi = Mix(hi + (word ^ 0x9E3779B97F4A7C15ull));
  }

  QuerySig Done() const { return QuerySig{lo, hi, /*valid=*/true}; }
};

}  // namespace

QuerySig SignatureOfConcepts(std::span<const ontology::ConceptId> concepts,
                             bool sds) {
  SigBuilder builder(sds ? 2 : 1);
  for (ontology::ConceptId c : concepts) builder.Add(c);
  return builder.Done();
}

QuerySig SignatureOfWeighted(std::span<const WeightedConcept> concepts) {
  SigBuilder builder(3);
  for (const WeightedConcept& wc : concepts) {
    builder.Add(wc.concept_id);
    builder.Add(std::bit_cast<std::uint64_t>(wc.weight));
  }
  return builder.Done();
}

DdqMemo::DdqMemo(const CacheOptions& options)
    : cache_(util::ShardedLruCacheOptions{options.effective_ddq_capacity(),
                                          options.num_shards}) {}

DdqMemo::Key DdqMemo::KeyOf(const QuerySig& sig, corpus::DocId doc) {
  std::uint32_t version = 0;
  {
    std::shared_lock<std::shared_mutex> lock(version_mutex_);
    const auto it = doc_versions_.find(doc);
    if (it != doc_versions_.end()) version = it->second;
  }
  return Key{sig.lo, sig.hi,
             (static_cast<std::uint64_t>(version) << 32) | doc};
}

bool DdqMemo::Get(const QuerySig& sig, corpus::DocId doc, double* value) {
  if (!sig.valid || !enabled()) return false;
  return cache_.Get(KeyOf(sig, doc), value);
}

void DdqMemo::Put(const QuerySig& sig, corpus::DocId doc, double value) {
  if (!sig.valid || !enabled()) return;
  cache_.Put(KeyOf(sig, doc), value);
}

void DdqMemo::InvalidateDocument(corpus::DocId doc) {
  {
    std::unique_lock<std::shared_mutex> lock(version_mutex_);
    ++doc_versions_[doc];
  }
  epoch_.fetch_add(1, std::memory_order_acq_rel);
}

}  // namespace ecdr::core
