// Ontology-based query expansion (paper Section 2; footnote 3 of
// Section 3.2 specifies the normalization when merging expanded
// queries).
//
// Expansion replaces each query concept with the set of concepts within
// a valid-path radius, weighted by a per-step decay:
//
//   weight(c) = decay ^ D(qi, c),  D over valid paths,
//
// so the original concept keeps weight 1 and e.g. "aortic valve
// stenosis" pulls in "heart valve finding" (one step up) at `decay` and
// sibling findings at `decay^2`. When several query concepts reach the
// same expansion, the largest weight wins. The result feeds directly
// into Knds::SearchRdsWeighted / Drc::DocQueryDistanceWeighted.

#ifndef ECDR_CORE_QUERY_EXPANSION_H_
#define ECDR_CORE_QUERY_EXPANSION_H_

#include <cstdint>
#include <span>
#include <vector>

#include "core/concept_weights.h"
#include "ontology/ontology.h"
#include "util/deadline.h"
#include "util/status.h"

namespace ecdr::core {

struct QueryExpansionOptions {
  /// Maximum valid-path distance of an expansion from its source.
  std::uint32_t radius = 2;

  /// Per-edge weight decay in (0, 1]; weight(c) = decay^distance.
  double decay = 0.5;

  /// Cap on expansions contributed per source concept (excluding the
  /// source itself); the nearest (then smallest-id) ones are kept.
  std::uint32_t max_expansions_per_concept = 16;

  /// When true, only expand upward (toward more general concepts) —
  /// "query generalization". Otherwise expansion follows all valid
  /// paths, reaching siblings and descendants too.
  bool ancestors_only = false;

  /// Cooperative cancellation, polled once per source concept (a full
  /// valid-path BFS each — the expensive unit). Expansion has no anytime
  /// form: a stop returns kCancelled / kDeadlineExceeded, never a
  /// partial query. `cancel_token` may be null; the default deadline
  /// never expires.
  const util::CancelToken* cancel_token = nullptr;
  util::Deadline deadline;
};

/// Expands `query` over the ontology. The original concepts are always
/// included with weight 1. Returns concepts sorted by id, deduplicated
/// with max-weight.
util::StatusOr<std::vector<WeightedConcept>> ExpandQuery(
    const ontology::Ontology& ontology,
    std::span<const ontology::ConceptId> query,
    const QueryExpansionOptions& options = {});

}  // namespace ecdr::core

#endif  // ECDR_CORE_QUERY_EXPANSION_H_
