#include "core/knds.h"

#include <algorithm>
#include <atomic>
#include <limits>
#include <unordered_set>

#include "util/timer.h"

namespace ecdr::core {

namespace {

using ontology::ConceptId;

constexpr std::uint32_t kReportFlag = 0x80000000u;
constexpr std::uint32_t kLevelUnseen = 0xFFFFFFFFu;
constexpr double kInf = std::numeric_limits<double>::infinity();

std::vector<ConceptId> Distinct(std::span<const ConceptId> concepts) {
  std::vector<ConceptId> result(concepts.begin(), concepts.end());
  std::sort(result.begin(), result.end());
  result.erase(std::unique(result.begin(), result.end()), result.end());
  return result;
}

/// A partially-visited document pulled from Ld for examination ordering.
struct Candidate {
  double lower_bound;
  double partial;
  corpus::DocId doc;
};

bool CandidateBefore(const Candidate& a, const Candidate& b) {
  if (a.lower_bound != b.lower_bound) return a.lower_bound < b.lower_bound;
  return a.doc < b.doc;
}

}  // namespace

Knds::Knds(const corpus::Corpus& corpus, index::IndexView index, Drc* drc,
           KndsOptions options, util::ThreadPool* pool, DdqMemo* ddq_memo)
    : corpus_(&corpus),
      index_(index),
      drc_(drc),
      options_(options),
      pool_(pool),
      ddq_memo_(ddq_memo) {
  ECDR_CHECK(drc != nullptr);
  // Concept ids share a word with the report flag in frontier entries.
  ECDR_CHECK_LT(corpus.ontology().num_concepts(), kReportFlag);
}

util::StatusOr<std::vector<ScoredDocument>> Knds::SearchRds(
    std::span<const ConceptId> query, std::uint32_t k) {
  const std::vector<ConceptId> origins = Distinct(query);
  return Search(origins, {}, /*sds=*/false, /*query_doc=*/nullptr,
                /*doc_weights=*/nullptr, /*weighted=*/false, k);
}

util::StatusOr<std::vector<ScoredDocument>> Knds::SearchSds(
    const corpus::Document& query_doc, std::uint32_t k) {
  // Document concepts are already sorted and unique.
  return Search(query_doc.concepts(), {}, /*sds=*/true, &query_doc,
                /*doc_weights=*/nullptr, /*weighted=*/false, k);
}

util::StatusOr<std::vector<ScoredDocument>> Knds::SearchRdsWeighted(
    std::span<const WeightedConcept> query, std::uint32_t k) {
  const std::vector<WeightedConcept> normalized =
      NormalizeWeightedConcepts(query);
  std::vector<ConceptId> origins;
  std::vector<double> weights;
  origins.reserve(normalized.size());
  weights.reserve(normalized.size());
  for (const WeightedConcept& wc : normalized) {
    if (wc.weight <= 0.0) {
      return util::InvalidArgumentError(
          "weighted query concepts must have positive weight");
    }
    origins.push_back(wc.concept_id);
    weights.push_back(wc.weight);
  }
  return Search(origins, weights, /*sds=*/false, /*query_doc=*/nullptr,
                /*doc_weights=*/nullptr, /*weighted=*/true, k);
}

util::StatusOr<std::vector<ScoredDocument>> Knds::SearchSdsWeighted(
    const corpus::Document& query_doc, const ConceptWeights& weights,
    std::uint32_t k) {
  if (weights.num_concepts() != corpus_->ontology().num_concepts()) {
    return util::InvalidArgumentError(
        "weight table does not cover the ontology");
  }
  std::vector<double> origin_weights;
  origin_weights.reserve(query_doc.size());
  for (ConceptId c : query_doc.concepts()) {
    if (!corpus_->ontology().Contains(c)) {
      return util::InvalidArgumentError(
          "query document references unknown concept id " +
          std::to_string(c));
    }
    const double w = weights.of(c);
    if (w <= 0.0) {
      return util::InvalidArgumentError(
          "weighted SDS requires positive weights on query concepts");
    }
    origin_weights.push_back(w);
  }
  return Search(query_doc.concepts(), origin_weights, /*sds=*/true,
                &query_doc, &weights, /*weighted=*/true, k);
}

util::StatusOr<std::vector<ScoredDocument>> Knds::Search(
    std::span<const ConceptId> origins, std::span<const double> origin_weights,
    bool sds, const corpus::Document* query_doc,
    const ConceptWeights* doc_weights, bool weighted, std::uint32_t k) {
  stats_ = KndsStats();
  util::WallTimer total_timer;

  if (options_.error_threshold < 0.0 || options_.error_threshold > 1.0) {
    return util::InvalidArgumentError("error_threshold must be in [0, 1]");
  }
  const ontology::Ontology& onto = corpus_->ontology();
  if (origins.empty()) {
    return util::InvalidArgumentError("query has no concepts");
  }
  for (ConceptId c : origins) {
    if (!onto.Contains(c)) {
      return util::InvalidArgumentError("query references unknown concept id " +
                                        std::to_string(c));
    }
  }
  ECDR_DCHECK(std::is_sorted(origins.begin(), origins.end()));
  if (k == 0) return std::vector<ScoredDocument>{};

  // ---- Deadline / cancellation machinery. With no deadline and no
  // token every check below is two predictable branches, so the default
  // configuration runs the historical, bit-identical search.
  enum class StopReason : std::uint8_t { kNone, kCancelled, kDeadline };
  StopReason stop = StopReason::kNone;
  const bool has_deadline = !options_.deadline.IsInfinite();
  util::FaultInjector* const injector = options_.fault_injector;
  // Serial-path poll: latches the first observed reason into `stop`.
  const auto check_stop = [&]() {
    if (stop != StopReason::kNone) return true;
    if (options_.cancel_token != nullptr &&
        options_.cancel_token->cancelled()) {
      stop = StopReason::kCancelled;
      return true;
    }
    if (has_deadline && options_.deadline.Expired()) {
      stop = StopReason::kDeadline;
      return true;
    }
    return false;
  };
  // Read-only poll for wave workers (no write to `stop`).
  const auto stop_requested = [&]() {
    return (options_.cancel_token != nullptr &&
            options_.cancel_token->cancelled()) ||
           (has_deadline && options_.deadline.Expired());
  };
  const double budget_seconds =
      has_deadline ? options_.deadline.RemainingSeconds() : 0.0;
  double effective_error_threshold = options_.error_threshold;

  const std::uint32_t num_concepts = onto.num_concepts();
  const auto n = static_cast<std::uint32_t>(origins.size());
  const std::size_t words = (n + 63) / 64;

  // Parallel lane setup; lanes == 1 keeps the fully serial path. Lane
  // engines share the (thread-safe) Dewey address cache but carry their
  // own stats, merged back into drc_ before returning.
  const std::size_t requested = options_.num_threads == 0
                                    ? util::ThreadPool::DefaultThreads()
                                    : options_.num_threads;
  util::ThreadPool* pool = pool_;
  if (requested > 1 && pool == nullptr) {
    if (owned_pool_ == nullptr) {
      owned_pool_ = std::make_unique<util::ThreadPool>(requested - 1);
    }
    pool = owned_pool_.get();
  }
  const std::size_t lanes =
      requested > 1 && pool != nullptr ? pool->num_threads() + 1 : 1;
  // Lane engines lease warm scratch arenas from the shared pool (when
  // provided) so their DRC calls skip the allocator; the leases must
  // outlive the engines, hence the declaration order.
  std::vector<Drc::ScratchPool::Lease> lane_scratches;
  std::vector<std::unique_ptr<Drc>> lane_drcs;
  if (lanes > 1) {
    lane_scratches.reserve(lanes);
    lane_drcs.reserve(lanes);
    for (std::size_t lane = 0; lane < lanes; ++lane) {
      lane_scratches.emplace_back(options_.drc_scratch_pool);
      // Lane engines inherit the parent's options, so skeleton reuse
      // (keyed on the leased scratch, not the engine) behaves the same
      // across the wave lanes as in the serial path.
      lane_drcs.push_back(std::make_unique<Drc>(
          drc_->ontology(), drc_->addresses(), lane_scratches.back().get(),
          drc_->options()));
    }
  }
  // Waves larger than the lane count amortize scheduling, but overshoot
  // (distances verified past the serial stopping point) grows with the
  // wave, so keep it a small multiple.
  const std::size_t max_wave = lanes > 1 ? lanes * 4 : 1;

  // Per-origin weights (uniform 1.0 when none were supplied) and the
  // weighted query reconstruction for exact weighted distances.
  std::vector<double> weight_of(n, 1.0);
  if (!origin_weights.empty()) {
    ECDR_CHECK_EQ(origin_weights.size(), origins.size());
    weight_of.assign(origin_weights.begin(), origin_weights.end());
  }
  double total_origin_weight = 0.0;
  for (double w : weight_of) total_origin_weight += w;
  std::vector<WeightedConcept> weighted_query;
  if (weighted && !sds) {
    weighted_query.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      weighted_query.push_back(WeightedConcept{origins[i], weight_of[i]});
    }
  }

  // Canonical query signature for the cross-query Ddq memo. Weighted SDS
  // stays invalid (its distance depends on the full weight table), which
  // turns every memo call into a bypass.
  QuerySig memo_sig;
  if (ddq_memo_ != nullptr && ddq_memo_->enabled()) {
    if (!weighted) {
      memo_sig = SignatureOfConcepts(origins, sds);
    } else if (!sds) {
      memo_sig = SignatureOfWeighted(weighted_query);
    }
    memo_sig = SaltSignature(memo_sig, options_.memo_salt);
  }
  // Wave workers call compute_exact concurrently; fold into stats_ after
  // the search.
  std::atomic<std::uint64_t> memo_hits{0};
  std::atomic<std::uint64_t> memo_misses{0};

  // Per-(concept, origin) visited bits for the two automaton states.
  std::vector<std::uint64_t> up_bits(
      static_cast<std::size_t>(num_concepts) * words, 0);
  std::vector<std::uint64_t> down_bits(up_bits.size(), 0);
  const auto test = [&](const std::vector<std::uint64_t>& bits, ConceptId c,
                        std::uint32_t i) {
    return (bits[static_cast<std::size_t>(c) * words + (i >> 6)] >>
            (i & 63)) &
           1u;
  };
  const auto set_bit = [&](std::vector<std::uint64_t>& bits, ConceptId c,
                           std::uint32_t i) {
    bits[static_cast<std::size_t>(c) * words + (i >> 6)] |= 1ULL << (i & 63);
  };

  // SDS reverse side: first level at which any origin reached a concept.
  std::vector<std::uint32_t> concept_level;
  if (sds) concept_level.assign(num_concepts, kLevelUnseen);

  std::vector<std::uint8_t> phase(corpus_->num_documents(), kUntouched);
  std::unordered_map<corpus::DocId, DocState> ld;
  // SDS: W(d) per touched document (== |Cd| when unweighted).
  std::unordered_map<corpus::DocId, double> doc_total_weight;

  // Frontiers per origin; ascending entries carry the report flag in the
  // top bit, descending entries always report.
  std::vector<std::vector<std::uint32_t>> asc(n), next_asc(n);
  std::vector<std::vector<ConceptId>> desc(n), next_desc(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    set_bit(up_bits, origins[i], i);
    asc[i].push_back(origins[i] | kReportFlag);
  }

  // Top-k max-heap: the worst kept result is at the front.
  std::vector<ScoredDocument> heap;
  const auto kth_distance = [&]() {
    return heap.size() == k ? heap.front().distance : kInf;
  };
  // Whether a document whose distance is at best `lower_bound` can still
  // displace the current k-th best under the (distance, id) total order.
  // The id matters: a candidate tied at the k-th distance with a smaller
  // id than the incumbent still belongs in the top-k, so distance-only
  // gating would drop it and break bit-for-bit agreement with the
  // exhaustive ranker.
  const auto can_beat_kth = [&](double lower_bound, corpus::DocId doc) {
    return heap.size() < k ||
           ScoredBefore(ScoredDocument{doc, lower_bound}, heap.front());
  };

  std::unordered_set<corpus::DocId> emitted;

  // Exact distances verified speculatively by parallel waves, consumed
  // by the serial replay — possibly at a later level, since an exact
  // distance does not depend on the level it was computed at.
  std::unordered_map<corpus::DocId, double> exact_memo;
  std::uint64_t wave_invocations = 0;
  std::uint64_t memo_consumed = 0;

  // Computes the exact distance of one document on the given engine;
  // shared by the serial path (drc_) and the wave workers (their lane's
  // engine).
  const auto compute_exact = [&](Drc* engine,
                                 corpus::DocId doc_id) -> double {
    if (memo_sig.valid) {
      double cached = 0.0;
      if (ddq_memo_->Get(memo_sig, doc_id, &cached)) {
        // The memo stores exactly the double a DRC run returned, so a
        // hit is bit-identical to recomputing.
        memo_hits.fetch_add(1, std::memory_order_relaxed);
        return cached;
      }
      memo_misses.fetch_add(1, std::memory_order_relaxed);
    }
    if (injector != nullptr) injector->OnDrcCall();
    const corpus::Document& doc = corpus_->document(doc_id);
    double exact = 0.0;
    if (sds) {
      util::StatusOr<double> distance =
          weighted ? engine->DocDocDistanceWeighted(query_doc->concepts(),
                                                    doc.concepts(),
                                                    *doc_weights)
                   : engine->DocDocDistance(query_doc->concepts(),
                                            doc.concepts());
      ECDR_CHECK(distance.ok());
      exact = *distance;
    } else if (weighted) {
      util::StatusOr<double> distance =
          engine->DocQueryDistanceWeighted(doc.concepts(), weighted_query);
      ECDR_CHECK(distance.ok());
      exact = *distance;
    } else {
      util::StatusOr<std::uint64_t> distance =
          engine->DocQueryDistance(doc.concepts(), origins);
      ECDR_CHECK(distance.ok());
      exact = static_cast<double>(*distance);
    }
    if (memo_sig.valid) ddq_memo_->Put(memo_sig, doc_id, exact);
    return exact;
  };

  std::uint32_t level = 0;
  std::vector<Candidate> candidates;
  std::vector<Candidate> wave;
  std::vector<corpus::DocId> to_verify;
  std::vector<double> wave_exact;
  std::vector<std::uint8_t> wave_verified;
  // The lower bound any uncovered (origin, doc) pair is finalized at if
  // the search truncates right now: `level` while the current level is
  // still expanding (BFS has reached distance `level`), `level + 1` once
  // its expansion completed.
  double finalize_next = 0.0;
  while (true) {
    if (check_stop()) break;
    finalize_next = static_cast<double>(level);

    // Degradation rung 1: with most of the budget gone, escalate the
    // error gate to eps_theta = 1 so the remaining time verifies exact
    // distances eagerly instead of waiting for tighter coverage that a
    // truncation would throw away.
    if (has_deadline && !stats_.error_threshold_escalated &&
        total_timer.ElapsedSeconds() >=
            options_.escalate_error_threshold_after * budget_seconds) {
      effective_error_threshold = 1.0;
      stats_.error_threshold_escalated = true;
    }

    // ---- Breadth-first expansion: visit all concepts at distance
    // `level`, update Md / M'd for their documents, grow the frontier.
    const std::size_t index_shards = index_.num_shards();
    const auto process_visit = [&](ConceptId c, std::uint32_t i) {
      if (check_stop()) return;
      if (injector != nullptr) injector->OnPostingsFetch();
      ++stats_.concept_visits;
      if (options_.simulated_postings_access_seconds > 0.0) {
        // Spin (rather than sleep) so sub-millisecond latencies are
        // honored and the cost lands in wall-clock measurements.
        util::WallTimer io;
        while (io.ElapsedSeconds() <
               options_.simulated_postings_access_seconds) {
        }
      }
      bool rev_new = false;
      if (sds && concept_level[c] == kLevelUnseen) {
        concept_level[c] = level;
        rev_new = true;
      }
      const double concept_weight =
          doc_weights == nullptr ? 1.0 : doc_weights->of(c);
      const auto visit_posting = [&](corpus::DocId doc) {
        if (phase[doc] >= kExamined) return;
        DocState* state;
        if (phase[doc] == kUntouched) {
          phase[doc] = kActive;
          ++stats_.documents_touched;
          DocState fresh;
          fresh.covered_bits.assign(words, 0);
          state = &ld.emplace(doc, std::move(fresh)).first->second;
          if (sds) {
            const auto concepts = corpus_->document(doc).concepts();
            doc_total_weight.emplace(
                doc, doc_weights == nullptr
                         ? static_cast<double>(concepts.size())
                         : doc_weights->TotalOf(concepts));
          }
        } else {
          state = &ld.find(doc)->second;
        }
        const std::size_t w = i >> 6;
        const std::uint64_t bit = 1ULL << (i & 63);
        if (!(state->covered_bits[w] & bit)) {
          // First concept of `doc` reached from origin i: Md(qi, doc) =
          // level, exactly (BFS order), and it is set only once.
          state->covered_bits[w] |= bit;
          ++state->fwd_covered;
          state->fwd_covered_weight += weight_of[i];
          state->fwd_sum += weight_of[i] * static_cast<double>(level);
        }
        if (rev_new) {
          // First time concept c (which `doc` contains) is reached from
          // any origin: M'd gains c at distance `level`.
          ++state->rev_covered;
          state->rev_covered_weight += concept_weight;
          state->rev_sum += concept_weight * static_cast<double>(level);
        }
      };
      // Shards cover contiguous, ascending id ranges, so walking them in
      // order yields the same increasing-id posting sequence as a single
      // whole-corpus index — the first-touch bookkeeping above is
      // shard-count invariant.
      for (std::size_t shard = 0; shard < index_shards; ++shard) {
        for (corpus::DocId doc : index_.Postings(shard, c)) {
          visit_posting(doc);
        }
      }
    };

    for (std::uint32_t i = 0; i < n; ++i) {
      if (stop != StopReason::kNone) break;
      for (std::uint32_t entry : asc[i]) {
        const ConceptId c = entry & ~kReportFlag;
        if (entry & kReportFlag) process_visit(c, i);
        for (ConceptId parent : onto.parents(c)) {
          if (!test(up_bits, parent, i)) {
            set_bit(up_bits, parent, i);
            const bool report = !test(down_bits, parent, i);
            next_asc[i].push_back(parent | (report ? kReportFlag : 0));
          }
        }
        for (ConceptId child : onto.children(c)) {
          if (!test(up_bits, child, i) && !test(down_bits, child, i)) {
            set_bit(down_bits, child, i);
            next_desc[i].push_back(child);
          }
        }
      }
      for (ConceptId c : desc[i]) {
        process_visit(c, i);
        for (ConceptId child : onto.children(c)) {
          if (!test(up_bits, child, i) && !test(down_bits, child, i)) {
            set_bit(down_bits, child, i);
            next_desc[i].push_back(child);
          }
        }
      }
    }
    ++stats_.levels;
    // Visits skipped by a mid-expansion stop keep their (origin, doc)
    // pairs uncovered, so the finalization bound must stay at `level`.
    if (check_stop()) break;
    finalize_next = static_cast<double>(level) + 1.0;

    std::size_t next_frontier = 0;
    for (std::uint32_t i = 0; i < n; ++i) {
      next_frontier += next_asc[i].size() + next_desc[i].size();
    }
    const bool frontier_exhausted = next_frontier == 0;
    // Force examination past the error gate when the queue limit trips
    // (the paper's setup) and when the traversal is exhausted — further
    // waiting cannot refine any bound then, and in weighted searches
    // floating-point residue can keep the error estimate a hair above
    // zero even at full coverage.
    const bool force_examine =
        next_frontier > options_.node_queue_limit || frontier_exhausted;
    if (next_frontier > options_.node_queue_limit) ++stats_.queue_limit_hits;

    // ---- Partial / lower-bound distances at the end of this level:
    // every uncovered (origin, doc) pair has true distance >= level + 1
    // (Eqs. 5-8, weighted).
    const auto bounds = [&](corpus::DocId doc, const DocState& state) {
      const double next = static_cast<double>(level) + 1.0;
      const double fwd_partial = state.fwd_sum;
      const double fwd_lower =
          fwd_partial +
          (total_origin_weight - state.fwd_covered_weight) * next;
      if (!sds) return Candidate{fwd_lower, fwd_partial, doc};
      const double doc_weight = doc_total_weight.at(doc);
      const double rev_partial = state.rev_sum;
      const double rev_lower =
          rev_partial + (doc_weight - state.rev_covered_weight) * next;
      return Candidate{
          fwd_lower / total_origin_weight + rev_lower / doc_weight,
          fwd_partial / total_origin_weight + rev_partial / doc_weight, doc};
    };

    // ---- Examination: pull documents from Ld in ascending lower-bound
    // order; compute exact distances while the error gate allows.
    candidates.clear();
    candidates.reserve(ld.size());
    for (auto it = ld.begin(); it != ld.end();) {
      const Candidate candidate = bounds(it->first, it->second);
      if (options_.prune_candidates &&
          !can_beat_kth(candidate.lower_bound, it->first)) {
        // Lower bounds only grow with the level (and the k-th best only
        // improves), so this document can never re-qualify (Section 5.3,
        // optimization 1).
        phase[it->first] = kPruned;
        ++stats_.documents_pruned;
        it = ld.erase(it);
        continue;
      }
      candidates.push_back(candidate);
      ++it;
    }
    if (options_.partial_candidate_heap) {
      // Optimization 2: heap-select instead of fully sorting Ld.
      std::make_heap(candidates.begin(), candidates.end(),
                     [](const Candidate& a, const Candidate& b) {
                       return CandidateBefore(b, a);  // Min-heap.
                     });
    } else {
      std::sort(candidates.begin(), candidates.end(), CandidateBefore);
    }

    // With multiple lanes, gate-passing candidates are pulled in waves,
    // their DRC distances verified concurrently, and each wave is then
    // consumed by an exact replay of the serial examination order — so
    // every lane count returns the serial results (see DESIGN.md,
    // "Threading model").
    double min_remaining_lower = kInf;
    std::size_t cursor = 0;
    std::size_t heap_end = candidates.size();
    const auto next_candidate = [&]() -> const Candidate* {
      if (options_.partial_candidate_heap) {
        if (heap_end == 0) return nullptr;
        std::pop_heap(candidates.begin(),
                      candidates.begin() + static_cast<long>(heap_end),
                      [](const Candidate& a, const Candidate& b) {
                        return CandidateBefore(b, a);
                      });
        --heap_end;
        return &candidates[heap_end];
      }
      if (cursor == candidates.size()) return nullptr;
      return &candidates[cursor++];
    };

    const auto shortcut_applies = [&](const Candidate& candidate,
                                      const DocState& state) {
      // Optimization 3: all query nodes (and for SDS all document
      // concepts) are covered, so the partial distance is exact. In
      // weighted mode exact distances always come from DRC so their
      // floating-point accumulation order is deterministic.
      const bool fully_covered =
          state.fwd_covered == n &&
          (!sds ||
           state.rev_covered == corpus_->document(candidate.doc).size());
      return options_.covered_distance_shortcut && !weighted &&
             fully_covered;
    };

    // Examine: move the document from Ld to Sd with an exact distance.
    const auto examine = [&](const Candidate& candidate) {
      const auto state_it = ld.find(candidate.doc);
      ECDR_DCHECK(state_it != ld.end());
      const DocState& state = state_it->second;
      double exact = 0.0;
      if (shortcut_applies(candidate, state)) {
        exact = candidate.partial;
      } else if (const auto memo = exact_memo.find(candidate.doc);
                 memo != exact_memo.end()) {
        // A wave already verified this document (possibly at an earlier
        // level); consuming the memoized value stands in for the serial
        // path's DRC call.
        ++stats_.drc_calls;
        ++memo_consumed;
        exact = memo->second;
      } else {
        util::ScopedAccumulator drc_time(&stats_.distance_seconds);
        ++stats_.drc_calls;
        exact = compute_exact(drc_, candidate.doc);
      }
      ++stats_.documents_examined;
      phase[candidate.doc] = kExamined;
      ld.erase(state_it);

      const ScoredDocument scored{candidate.doc, exact};
      if (heap.size() < k) {
        heap.push_back(scored);
        std::push_heap(heap.begin(), heap.end(), ScoredBefore);
      } else if (ScoredBefore(scored, heap.front())) {
        std::pop_heap(heap.begin(), heap.end(), ScoredBefore);
        heap.back() = scored;
        std::push_heap(heap.begin(), heap.end(), ScoredBefore);
      }
    };

    bool level_done = false;
    // Set when the k-th-best gate stopped the level: the stopping
    // candidate cannot beat the k-th best, and CandidateBefore orders
    // ties by id, so neither can any candidate after it — everything
    // left in Ld is provably out.
    bool tail_blocked = false;
    while (!level_done) {
      if (check_stop()) break;
      // ---- Wave selection under the current k-th best — the most
      // permissive bound the serial loop could apply to these
      // candidates, so the wave is a superset of what the serial loop
      // would examine before its next stop. Serial mode degenerates to
      // waves of one candidate, which IS the historical loop.
      wave.clear();
      while (wave.size() < max_wave) {
        const Candidate* candidate = next_candidate();
        if (candidate == nullptr) {
          level_done = true;
          break;
        }
        if (!can_beat_kth(candidate->lower_bound, candidate->doc)) {
          min_remaining_lower = candidate->lower_bound;
          tail_blocked = true;
          level_done = true;
          break;
        }
        const double error =
            candidate->lower_bound <= 0.0
                ? 0.0
                : 1.0 - candidate->partial / candidate->lower_bound;
        if (!force_examine && error > effective_error_threshold) {
          min_remaining_lower = candidate->lower_bound;
          level_done = true;
          break;
        }
        wave.push_back(*candidate);
      }
      if (wave.empty()) break;

      // ---- Concurrent verification of the wave's unknown distances.
      if (lanes > 1) {
        to_verify.clear();
        for (const Candidate& candidate : wave) {
          if (exact_memo.contains(candidate.doc)) continue;
          if (shortcut_applies(candidate, ld.find(candidate.doc)->second)) {
            continue;
          }
          to_verify.push_back(candidate.doc);
        }
        if (to_verify.size() > 1) {
          util::ScopedAccumulator drc_time(&stats_.distance_seconds);
          wave_exact.assign(to_verify.size(), 0.0);
          wave_verified.assign(to_verify.size(), 0);
          pool->ParallelFor(
              to_verify.size(),
              [&](std::size_t i, std::size_t lane) {
                // Workers bail on a stop so the wave drains promptly;
                // skipped entries simply stay unverified and fall back
                // to their lower bounds at finalization.
                if (stop_requested()) return;
                wave_exact[i] =
                    compute_exact(lane_drcs[lane].get(), to_verify[i]);
                wave_verified[i] = 1;
              },
              options_.cancel_token);
          std::size_t verified = 0;
          for (std::size_t i = 0; i < to_verify.size(); ++i) {
            if (!wave_verified[i]) continue;
            exact_memo.emplace(to_verify[i], wave_exact[i]);
            ++verified;
          }
          wave_invocations += verified;
          if (verified > 0) ++stats_.parallel_waves;
        }
      }

      // ---- Serial replay. The error gate cannot newly fail (it is
      // independent of the heap); only the k-th-best gate can, as
      // results accumulate mid-wave.
      for (const Candidate& candidate : wave) {
        if (check_stop()) {
          level_done = true;
          break;
        }
        if (!can_beat_kth(candidate.lower_bound, candidate.doc)) {
          min_remaining_lower = candidate.lower_bound;
          tail_blocked = true;
          level_done = true;
          // Unexamined wave members stay in Ld; their memoized exact
          // distances keep their value for later levels.
          break;
        }
        examine(candidate);
      }
    }
    // Exact distances examined so far stay in the heap; everything else
    // is finalized from bounds below. Skipping the termination test and
    // progressive emission keeps emitted results a prefix of the
    // uncancelled run's emission order.
    if (stop != StopReason::kNone) break;

    // ---- Termination: no remaining (partially visited or untouched)
    // document can beat the current k-th best under the (distance, id)
    // total order.
    double d_minus = min_remaining_lower;
    // Untouched documents have unknown ids, so a tie at the k-th
    // distance could still displace the incumbent — they are only ruled
    // out by a strictly larger bound (or an exhausted frontier).
    bool unseen_can_beat = false;
    if (!frontier_exhausted) {
      const double next = static_cast<double>(level) + 1.0;
      // An untouched document has every origin uncovered (and for SDS
      // every own concept uncovered); normalization cancels the weights
      // on the SDS side.
      const double unseen_lower =
          sds ? 2.0 * next : total_origin_weight * next;
      d_minus = std::min(d_minus, unseen_lower);
      unseen_can_beat = heap.size() < k || unseen_lower <= kth_distance();
    }

    // Progressive output (optimization 4): a result strictly below every
    // remaining lower bound is final (a tie could still be displaced by
    // a remaining document with a smaller id, so equality must wait).
    if (progress_callback_) {
      std::vector<ScoredDocument> ready;
      for (const ScoredDocument& scored : heap) {
        if (scored.distance < d_minus && !emitted.contains(scored.id)) {
          ready.push_back(scored);
        }
      }
      std::sort(ready.begin(), ready.end(), ScoredBefore);
      for (const ScoredDocument& scored : ready) {
        emitted.insert(scored.id);
        progress_callback_(scored);
      }
    }

    // Candidates still in Ld can only be ruled out by the id-aware gate
    // (tail_blocked); a distance-only bound is not enough under ties.
    if (heap.size() == k && !unseen_can_beat &&
        (ld.empty() || tail_blocked)) {
      break;
    }
    if (frontier_exhausted && ld.empty()) break;

    for (std::uint32_t i = 0; i < n; ++i) {
      asc[i].swap(next_asc[i]);
      next_asc[i].clear();
      desc[i].swap(next_desc[i]);
      next_desc[i].clear();
    }
    ++level;
  }

  std::vector<ScoredDocument> results;
  if (stop == StopReason::kNone) {
    std::sort(heap.begin(), heap.end(), ScoredBefore);
    if (progress_callback_) {
      for (const ScoredDocument& scored : heap) {
        if (emitted.insert(scored.id).second) progress_callback_(scored);
      }
    }
    results = std::move(heap);
  } else {
    // ---- Anytime finalization (deadline expiry or explicit cancel):
    // merge the verified heap, wave-verified-but-unconsumed exact
    // distances, and the remaining candidates at their lower bounds,
    // each annotated with a provable absolute error bound. Verified
    // entries carry error_bound 0; an unverified candidate is reported
    // at its lower bound L with error_bound U - L, where U sums, per
    // uncovered concept pair (a, b), the valid-path distance cap
    // depth(a) + depth(b) — a path up a's min-depth parent chain to the
    // root and down to b always exists with that length.
    stats_.truncated = true;
    stats_.cancelled = stop == StopReason::kCancelled;
    results = std::move(heap);
    const double max_depth = static_cast<double>(onto.max_depth());
    std::vector<double> origin_depth(n, 0.0);
    double min_origin_depth = kInf;
    for (std::uint32_t i = 0; i < n; ++i) {
      origin_depth[i] = static_cast<double>(onto.depth(origins[i]));
      min_origin_depth = std::min(min_origin_depth, origin_depth[i]);
    }
    for (const auto& [doc, state] : ld) {
      if (const auto memo = exact_memo.find(doc); memo != exact_memo.end()) {
        results.push_back(ScoredDocument{doc, memo->second, 0.0});
        continue;
      }
      double fwd_lower = state.fwd_sum;
      double fwd_upper = state.fwd_sum;
      for (std::uint32_t i = 0; i < n; ++i) {
        if ((state.covered_bits[i >> 6] >> (i & 63)) & 1u) continue;
        fwd_lower += weight_of[i] * finalize_next;
        fwd_upper += weight_of[i] * (origin_depth[i] + max_depth);
      }
      double lower = fwd_lower;
      double upper = fwd_upper;
      if (sds) {
        // A concept this document contains with no concept_level was
        // never reached by any origin, so its reverse-side distance is
        // at least finalize_next and at most the cheapest origin's
        // root-path cap.
        const double doc_weight = doc_total_weight.at(doc);
        double rev_lower = state.rev_sum;
        double rev_upper = state.rev_sum;
        for (ConceptId c : corpus_->document(doc).concepts()) {
          if (concept_level[c] != kLevelUnseen) continue;
          const double w = doc_weights == nullptr ? 1.0 : doc_weights->of(c);
          rev_lower += w * finalize_next;
          rev_upper +=
              w * (min_origin_depth + static_cast<double>(onto.depth(c)));
        }
        lower = fwd_lower / total_origin_weight + rev_lower / doc_weight;
        upper = fwd_upper / total_origin_weight + rev_upper / doc_weight;
      }
      results.push_back(
          ScoredDocument{doc, lower, std::max(0.0, upper - lower)});
    }
    // Untouched documents are not representable here (no per-document
    // state to bound them with); a truncated result may therefore hold
    // fewer than k entries.
    std::sort(results.begin(), results.end(), ScoredBefore);
    if (results.size() > k) results.resize(k);
  }
  for (const std::unique_ptr<Drc>& lane : lane_drcs) {
    drc_->MergeStatsFrom(lane->stats());
  }
  stats_.speculative_drc_calls = wave_invocations - memo_consumed;
  stats_.ddq_memo_hits = memo_hits.load(std::memory_order_relaxed);
  stats_.ddq_memo_misses = memo_misses.load(std::memory_order_relaxed);
  stats_.total_seconds = total_timer.ElapsedSeconds();
  stats_.traversal_seconds =
      std::max(0.0, stats_.total_seconds - stats_.distance_seconds);
  return results;
}

}  // namespace ecdr::core
