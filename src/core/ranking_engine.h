// RankingEngine — the one-stop facade a serving process embeds.
//
// Owns the whole stack (ontology, snapshot chain of corpus + sharded
// inverted index, Dewey address cache, kNDS machinery, worker pool)
// with consistent lifetimes, so callers don't wire five components by
// hand or keep the inverted index in sync themselves. Supports the
// paper's point-of-care story: AddDocument() makes a record searchable
// immediately (with the default publish_batch_size of 1).
//
//   auto engine = core::RankingEngine::Create(std::move(ontology));
//   auto id = engine->AddDocument({valve, hypertension});
//   auto top = engine->FindRelevant({cardiac}, 10);
//   auto similar = engine->FindSimilar(*id, 10);
//
// Thread safety — snapshot isolation (DESIGN.md, "Snapshot lifecycle"):
// engine state lives in immutable, reference-counted EngineSnapshot
// generations. Find*/DocumentDistance acquire the current generation
// with one atomic load and run start-to-finish against it — the read
// path takes no engine mutex and is never blocked by a writer.
// AddDocument goes through the engine's SnapshotBuilder, which appends
// the document copy-on-write (only the corpus tail segment and tail
// index shard are cloned) and atomically publishes the successor
// generation; superseded generations die when their last in-flight
// search drops them. Each search uses its own short-lived Drc/Knds over
// the shared frozen Dewey address cache, and all searches share the
// engine's worker pool for intra-query parallelism
// (Options::knds.num_threads; see DESIGN.md, "Threading model").

#ifndef ECDR_CORE_RANKING_ENGINE_H_
#define ECDR_CORE_RANKING_ENGINE_H_

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <span>
#include <string_view>
#include <vector>

#include "core/distance_cache.h"
#include "core/drc.h"
#include "core/engine_snapshot.h"
#include "core/knds.h"
#include "core/scored_document.h"
#include "core/snapshot_builder.h"
#include "corpus/corpus.h"
#include "index/sharded_index.h"
#include "ontology/concept_pair_cache.h"
#include "ontology/dewey.h"
#include "ontology/ontology.h"
#include "ontology/ontology_snapshot.h"
#include "storage/store.h"
#include "util/deadline.h"
#include "util/snapshot.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace ecdr::core {

/// Overload behavior of one engine (DESIGN.md "Deadlines, degradation,
/// and overload"). Admission control is off by default — every search
/// runs immediately, exactly the pre-admission behavior.
struct AdmissionOptions {
  /// Searches allowed to execute concurrently; 0 disables admission
  /// control entirely (no limits, no queue, no counters).
  std::size_t max_in_flight = 0;

  /// Searches allowed to wait for a slot when saturated. Arrivals beyond
  /// this are shed immediately with kResourceExhausted — the queue is
  /// bounded, never unbounded.
  std::size_t max_queued = 0;

  /// Deadline budget applied to any search whose SearchControl carries
  /// none, bounding both the queue wait and the search itself. 0 = no
  /// default budget.
  double default_deadline_seconds = 0.0;
};

/// Per-query execution controls, passed alongside any Find* call. The
/// default value (infinite deadline, no token) preserves historical
/// behavior bit-for-bit.
struct SearchControl {
  util::Deadline deadline;
  /// Unowned; must outlive the call. Cancelling finalizes the anytime
  /// result (KndsStats::truncated) or aborts a queued admission wait.
  const util::CancelToken* cancel_token = nullptr;
  /// Per-query eps_theta override. Negative (the default) keeps the
  /// engine-wide Options::knds.error_threshold.
  double error_threshold = -1.0;
  /// When set, receives this call's KndsStats on success — unlike
  /// last_search_stats(), which concurrent searches overwrite. Unowned;
  /// must outlive the call.
  KndsStats* stats_out = nullptr;
};

/// Admission counters; cumulative except the two gauges.
struct AdmissionStats {
  std::uint64_t admitted = 0;
  std::uint64_t rejected = 0;   // shed with kResourceExhausted (queue full)
  std::uint64_t abandoned = 0;  // left the queue on deadline/cancel
  std::size_t in_flight = 0;    // gauge
  std::size_t queued = 0;       // gauge
};

/// Snapshot-chain counters (see snapshot_stats()).
struct SnapshotStats {
  std::uint64_t generation = 0;      // current snapshot's generation
  std::uint64_t published = 0;       // generations published so far
  std::uint64_t acquires = 0;        // atomic root loads (≥ one per search)
  std::size_t retired_live = 0;      // superseded generations still pinned
  std::size_t index_shards = 0;      // shards in the current generation
  std::size_t pending_documents = 0; // writes buffered, not yet published
  std::uint32_t tombstones = 0;      // deleted slots the corpus still holds
};

/// Background maintenance of the segment layout (README, "Durability
/// flags"). Deletes and small write batches fragment the corpus into
/// many small segments; compaction merges adjacent small ones back
/// together (kNDS results are bit-identical at any shard count, so the
/// re-layout is invisible to readers).
struct CompactionOptions {
  /// When > 0, a write that leaves the corpus with more than this many
  /// segments schedules a background compaction (on the engine's worker
  /// pool; inline for serial engines). 0 = manual Compact() only.
  std::size_t max_segments = 0;

  /// Segments below this document count are merge candidates. 0 derives
  /// a default: snapshot.target_docs_per_shard, or 1024 when unset.
  std::uint32_t min_docs_per_segment = 0;
};

/// Durability counters (see durability_stats()); `store` is all-zero
/// while the engine runs ephemeral.
struct DurabilityStats {
  bool enabled = false;
  storage::StoreStats store;
};

/// Ontology lineage gauges plus cumulative evolution counters (see
/// ontology_stats()). The version/hash fields describe the snapshot
/// current writes validate against; the totals accumulate over every
/// successful ApplyOntologyMutations call.
struct OntologyStats {
  std::uint64_t version = 0;
  std::uint64_t identity_hash = 0;    // DAG + ordinals + names + retirement
  std::uint64_t structural_hash = 0;  // identity with retirement zeroed
  std::uint64_t baseline_hash = 0;    // version-0 identity of the lineage
  std::uint32_t num_concepts = 0;
  std::uint32_t num_retired = 0;
  std::uint64_t evolutions = 0;          // successful mutation batches
  std::uint64_t mutations_applied = 0;   // individual mutations
  std::uint64_t readdressed_total = 0;   // concepts re-enumerated, cumulative
  std::uint64_t reused_total = 0;        // concepts spliced from the base pool
  std::uint64_t pair_entries_invalidated = 0;  // ConceptPairCache drops
  /// Stats of the most recent evolution step (all-zero before the first).
  ontology::EvolutionStats last;
};

struct RankingEngineOptions {
  KndsOptions knds;
  ontology::AddressEnumeratorOptions addresses;
  AdmissionOptions admission;

  /// Shard layout and write buffering of the snapshot chain (README,
  /// "Sharding knobs"). The defaults — one shard, publish per add —
  /// reproduce the unsharded engine bit-for-bit.
  SnapshotOptions snapshot;

  /// Durability (DESIGN.md, "Durability & recovery"). Inert while
  /// storage.data_dir is empty — the default, an ephemeral engine.
  /// Open() requires a data_dir; it recovers the pre-crash corpus from
  /// the newest valid image plus WAL replay, and every subsequent write
  /// is logged ahead and fsync'd on publish (storage.fsync_mode
  /// permitting).
  storage::StoreOptions storage;

  /// When > 0, automatically checkpoint (write a fresh image, rotate
  /// the WAL) after this many logged operations. 0 = manual
  /// Checkpoint() only. Requires a data_dir.
  std::uint64_t checkpoint_every_records = 0;

  /// Background segment compaction; see CompactionOptions.
  CompactionOptions compaction;

  /// Enumerate every concept's Dewey addresses at construction and
  /// freeze the cache, making address lookups lock-free for concurrent
  /// searches (one up-front pass over the ontology). Disable for
  /// short-lived engines over large ontologies that only touch a few
  /// concepts; lookups then serialize on a mutex while the cache warms.
  bool precompute_addresses = true;
};

class RankingEngine {
 public:
  using Options = RankingEngineOptions;

  /// Takes ownership of the ontology; the corpus starts empty. Requires
  /// Options::storage.data_dir be empty — durable engines go through
  /// Open(), whose recovery can fail and therefore returns a status.
  static std::unique_ptr<RankingEngine> Create(ontology::Ontology ontology,
                                               Options options = {});

  /// Opens (creating if absent) the durable engine at
  /// Options::storage.data_dir: recovers the newest valid snapshot
  /// image, re-applies the WAL above it, restores the Dewey address
  /// pool from the image when present (skipping the enumeration DFS),
  /// and publishes the recovered corpus as generation 0. Fails on real
  /// I/O errors; corruption is recovered around (see
  /// storage::DocumentStore::Open) and reported in durability_stats().
  static util::StatusOr<std::unique_ptr<RankingEngine>> Open(
      ontology::Ontology ontology, Options options);

  /// Loads both files in either the text or binary format (sniffed).
  /// The corpus is bulk-loaded into Options::snapshot.num_shards
  /// contiguous shards.
  static util::StatusOr<std::unique_ptr<RankingEngine>> CreateFromFiles(
      const std::string& ontology_path, const std::string& corpus_path,
      Options options = {});

  RankingEngine(const RankingEngine&) = delete;
  RankingEngine& operator=(const RankingEngine&) = delete;

  /// Drains the worker pool first, so a background maintenance task
  /// (compaction / checkpoint) never outlives the builder it touches.
  ~RankingEngine();

  /// Adds a document through the snapshot builder. With the default
  /// publish_batch_size of 1 it is searchable on return; with batching
  /// it becomes visible when the batch publishes (or on Flush()). Never
  /// blocks searches. Fails with kResourceExhausted when the builder's
  /// bounded pending-delta queue is full.
  util::StatusOr<corpus::DocId> AddDocument(
      std::vector<ontology::ConceptId> concepts);

  /// Tombstone-deletes `doc`: it vanishes from every Find* result at
  /// the next publish (immediately with the default batch size). The id
  /// is never reused. kOutOfRange for an id never assigned, kNotFound
  /// when already deleted.
  util::Status DeleteDocument(corpus::DocId doc);

  /// Replaces `doc`'s concepts in place — same id, new content,
  /// searchable at the next publish. kNotFound when the document was
  /// deleted (updates do not resurrect tombstones).
  util::Status UpdateDocument(corpus::DocId doc,
                              std::vector<ontology::ConceptId> concepts);

  /// Bulk-appends every document of `source` and publishes one new
  /// generation (a fresh engine is partitioned into
  /// Options::snapshot.num_shards shards).
  util::Status AddCorpus(const corpus::Corpus& source);

  /// Publishes any write-buffered operations now. On a durable engine a
  /// failure means the WAL fsync failed: nothing became visible, the
  /// delta stays pending, and the call may be retried.
  util::Status Flush();

  /// Flushes, then writes a checkpoint image of the current generation
  /// and rotates the WAL — bounding recovery time and WAL growth.
  /// kFailedPrecondition on an ephemeral engine. Concurrent writers
  /// stall for the duration; searches are unaffected.
  util::Status Checkpoint();

  /// Flushes, then merges small corpus segments
  /// (CompactionOptions::min_docs_per_segment) and re-publishes.
  /// Results are bit-identical before and after. Works on ephemeral
  /// engines too.
  util::Status Compact();

  /// Final WAL fsync for a clean shutdown: flushes pending operations
  /// and syncs the log. No-op on an ephemeral engine.
  util::Status SyncDurability();

  // Every Find* accepts a SearchControl carrying the query's deadline
  // budget and cancel token; the default control changes nothing. All
  // Find* calls pass admission control first (when enabled): saturated
  // engines queue up to max_queued waiters — bounded by the control's
  // deadline — and shed everything beyond that with kResourceExhausted.

  /// RDS by concept ids.
  util::StatusOr<std::vector<ScoredDocument>> FindRelevant(
      std::span<const ontology::ConceptId> query, std::uint32_t k,
      const SearchControl& control = {});

  /// RDS by concept names (convenience; fails on unknown names).
  util::StatusOr<std::vector<ScoredDocument>> FindRelevantByName(
      std::span<const std::string_view> names, std::uint32_t k,
      const SearchControl& control = {});

  /// RDS with weighted / expanded queries.
  util::StatusOr<std::vector<ScoredDocument>> FindRelevantWeighted(
      std::span<const WeightedConcept> query, std::uint32_t k,
      const SearchControl& control = {});

  /// SDS for a document already in the corpus.
  util::StatusOr<std::vector<ScoredDocument>> FindSimilar(
      corpus::DocId doc, std::uint32_t k, const SearchControl& control = {});

  /// SDS for an external document (e.g. a patient not yet admitted).
  util::StatusOr<std::vector<ScoredDocument>> FindSimilarToConcepts(
      std::vector<ontology::ConceptId> concepts, std::uint32_t k,
      const SearchControl& control = {});

  /// Exact Ddd between two indexed documents. Bypasses admission (a
  /// single DRC probe, not a search) but honors the control through
  /// Drc's cooperative cancellation. Both ids are resolved against one
  /// snapshot.
  util::StatusOr<double> DocumentDistance(corpus::DocId a, corpus::DocId b,
                                          const SearchControl& control = {});

  // ---- Ontology evolution (DESIGN.md, "Ontology versioning &
  // evolution"). Mutations validate and re-enumerate OUTSIDE the write
  // path, are WAL-logged and fsync'd on a durable engine, then publish
  // a new generation carrying the successor OntologySnapshot. In-flight
  // searches keep the version they started on; concept-pair cache
  // entries touching re-addressed concepts are dropped, everything else
  // stays warm.

  /// Applies one validated mutation batch atomically (all-or-nothing)
  /// and returns what it did. kInvalidArgument / kNotFound /
  /// kFailedPrecondition on a bad batch — the engine is untouched.
  util::StatusOr<ontology::EvolutionStats> ApplyOntologyMutations(
      std::span<const ontology::OntologyMutation> mutations);

  /// Single-mutation conveniences over ApplyOntologyMutations.
  util::StatusOr<ontology::EvolutionStats> AddConcept(
      std::string name, std::vector<ontology::ConceptId> parents);
  util::StatusOr<ontology::EvolutionStats> RetireConcept(
      ontology::ConceptId target);
  util::StatusOr<ontology::EvolutionStats> AddOntologyEdge(
      ontology::ConceptId parent, ontology::ConceptId child);

  /// The ontology version current searches run against. Holding the
  /// pointer pins the DAG and the frozen address pool across concurrent
  /// evolutions.
  std::shared_ptr<const ontology::OntologySnapshot> ontology_snapshot() const {
    return root_.Acquire()->ontology;
  }

  /// Version/lineage gauges and cumulative evolution counters.
  OntologyStats ontology_stats() const;

  /// The current generation. Holding the returned pointer pins the
  /// generation (and, through its ReaderLease, the frozen address
  /// cache): corpus/index references inside stay valid for as long as
  /// the caller keeps it, regardless of concurrent publishes.
  std::shared_ptr<const EngineSnapshot> snapshot() const {
    return root_.Acquire();
  }

  /// Counters of the snapshot chain: current generation, publishes,
  /// root acquires, superseded-but-pinned generations, shard count,
  /// write-buffered documents.
  SnapshotStats snapshot_stats() const;

  /// Admission counters (zeroes while admission control is disabled).
  AdmissionStats admission_stats() const;

  /// Durability counters; enabled == false (and zero stats) on an
  /// ephemeral engine.
  DurabilityStats durability_stats() const;

  /// Whether the engine persists to a data_dir.
  bool durable() const { return store_ != nullptr; }

  /// The current ontology version's DAG. Like corpus(), the reference
  /// is valid until an evolution retires the generation — concurrent
  /// readers should hold ontology_snapshot() instead.
  const ontology::Ontology& ontology() const {
    return root_.Acquire()->ontology->dag();
  }

  /// The current generation's corpus. The reference is valid until the
  /// next publish retires that generation — concurrent readers should
  /// hold snapshot() instead.
  const corpus::Corpus& corpus() const { return root_.Acquire()->corpus; }

  /// Stats of the most recent completed search, by value (concurrent
  /// searches overwrite it in completion order; lock-free).
  KndsStats last_search_stats() const {
    const std::shared_ptr<const KndsStats> stats =
        last_stats_.load(std::memory_order_acquire);
    return stats != nullptr ? *stats : KndsStats{};
  }

  /// Cumulative hit/miss/eviction counters of the engine's cross-query
  /// Ddq memo (see core/distance_cache.h).
  util::CacheCounters ddq_memo_counters() const {
    return ddq_memo_.counters();
  }

  /// Counters of the engine's concept-pair distance cache (fed by
  /// DistanceOracle / ConceptSimilarity instances built over
  /// concept_pair_cache(); invalidated only for the concepts an
  /// evolution re-addresses — see ApplyOntologyMutations).
  util::CacheCounters concept_pair_counters() const {
    return pair_cache_.counters();
  }

  /// Monotone cache epoch; each published document bumps it once. A
  /// bumped epoch means Ddq entries of the touched document no longer
  /// match (version-keyed), while concept-pair distances survive.
  /// Snapshot-scoped form: snapshot()->ddq_epoch is the epoch the
  /// current generation was published at.
  std::uint64_t cache_epoch() const { return ddq_memo_.epoch(); }

  /// The engine's shared caches, for callers composing extra components
  /// (e.g. a ConceptSimilarity over the engine's ontology, or a
  /// standalone Knds / ExhaustiveRanker / TaRanker sharing warm state).
  /// Both are thread-safe and live as long as the engine.
  ontology::ConceptPairCache* concept_pair_cache() { return &pair_cache_; }
  DdqMemo* ddq_memo() { return &ddq_memo_; }

 private:
  RankingEngine(ontology::Ontology ontology, Options options);

  /// Opens the store (when configured), precomputes or adopts the Dewey
  /// address pool, publishes generation 0 (recovered or empty) and
  /// spins up the worker pool. Infallible without a data_dir.
  util::Status Init();

  /// After a successful write: schedule background compaction /
  /// checkpoint when their thresholds trip. At most one maintenance
  /// task runs at a time.
  void MaybeScheduleMaintenance();
  void RunMaintenance();

  /// Acquires the current snapshot (one atomic load — no engine mutex
  /// anywhere on this path) and runs `search` on a per-call Knds over
  /// it, after passing admission control with the control's effective
  /// deadline.
  template <typename SearchFn>
  util::StatusOr<std::vector<ScoredDocument>> RunSearch(
      const SearchControl& control, SearchFn&& search);

  /// The control's deadline, or a fresh default_deadline_seconds budget
  /// when the control carries none.
  util::Deadline EffectiveDeadline(const SearchControl& control) const;

  /// Blocks until an execution slot is free (bounded by `deadline` and
  /// `cancel`), or fails with kResourceExhausted / kDeadlineExceeded /
  /// kCancelled. No-op when admission control is disabled.
  util::Status AcquireSearchSlot(const util::Deadline& deadline,
                                 const util::CancelToken* cancel);
  void ReleaseSearchSlot();

  Options options_;

  /// The version-0 DAG the engine was constructed with. The live
  /// version lives in the snapshot chain (snapshot()->ontology); this
  /// stays pinned for the engine's lifetime as the lineage anchor the
  /// store recovers against.
  std::shared_ptr<const ontology::Ontology> baseline_dag_;

  std::unique_ptr<util::ThreadPool> pool_;  // Null when searches are serial.

  // Cross-query caches (Options::knds.cache), shared by every search.
  ontology::ConceptPairCache pair_cache_;
  DdqMemo ddq_memo_;

  // Warm DRC working memory, leased by every per-call engine and lane
  // (see core/drc.h): after a few queries the free list holds one
  // high-water-mark scratch per concurrent lane and steady-state
  // distance calls stop allocating.
  Drc::ScratchPool drc_scratches_;

  // Durability: null on an ephemeral engine. Declared before builder_,
  // which holds an unowned pointer into it for the log-ahead write path.
  std::unique_ptr<storage::DocumentStore> store_;

  // The snapshot chain. Readers: one atomic Acquire per search; writer:
  // builder_ publishes copy-on-write generations.
  util::SnapshotHandle<EngineSnapshot> root_;
  std::unique_ptr<SnapshotBuilder> builder_;

  // Background maintenance (compaction / auto-checkpoint) bookkeeping.
  std::atomic<bool> maintenance_running_{false};
  std::atomic<std::uint64_t> records_since_checkpoint_{0};

  // Ontology evolution: one mutation batch at a time (validation and
  // incremental re-enumeration run under this, outside the builder's
  // write mutex), plus the cumulative counters ontology_stats() reports.
  mutable std::mutex ontology_mutex_;
  std::uint64_t evolutions_ = 0;
  std::uint64_t mutations_applied_ = 0;
  std::uint64_t readdressed_total_ = 0;
  std::uint64_t reused_total_ = 0;
  std::uint64_t pair_invalidated_total_ = 0;

  // Most recent search's stats, published lock-free.
  std::atomic<std::shared_ptr<const KndsStats>> last_stats_;

  // Admission control (all guarded by admission_mutex_; untouched when
  // admission is disabled — the default).
  mutable std::mutex admission_mutex_;
  std::condition_variable admission_cv_;
  std::size_t in_flight_ = 0;
  std::size_t queued_ = 0;
  std::uint64_t admitted_ = 0;
  std::uint64_t rejected_ = 0;
  std::uint64_t abandoned_ = 0;
};

}  // namespace ecdr::core

#endif  // ECDR_CORE_RANKING_ENGINE_H_
