// RankingEngine — the one-stop facade a serving process embeds.
//
// Owns the whole stack (ontology, corpus, inverted index, Dewey address
// cache, kNDS machinery, worker pool) with consistent lifetimes, so
// callers don't wire five components by hand or keep the inverted index
// in sync themselves. Supports the paper's point-of-care story:
// AddDocument() makes a record searchable immediately.
//
//   auto engine = core::RankingEngine::Create(std::move(ontology));
//   auto id = engine->AddDocument({valve, hypertension});
//   auto top = engine->FindRelevant({cardiac}, 10);
//   auto similar = engine->FindSimilar(*id, 10);
//
// Thread safety: Find*/DocumentDistance may run from any number of
// threads concurrently; AddDocument takes the engine's writer lock and
// excludes searches for the duration of one index insert. Each search
// uses its own short-lived Drc/Knds over the shared frozen Dewey address
// cache, and all searches share the engine's worker pool for intra-query
// parallelism (Options::knds.num_threads; see DESIGN.md, "Threading
// model").

#ifndef ECDR_CORE_RANKING_ENGINE_H_
#define ECDR_CORE_RANKING_ENGINE_H_

#include <condition_variable>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <span>
#include <string_view>
#include <vector>

#include "core/distance_cache.h"
#include "core/drc.h"
#include "core/knds.h"
#include "core/scored_document.h"
#include "corpus/corpus.h"
#include "index/inverted_index.h"
#include "ontology/concept_pair_cache.h"
#include "ontology/dewey.h"
#include "ontology/ontology.h"
#include "util/deadline.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace ecdr::core {

/// Overload behavior of one engine (DESIGN.md "Deadlines, degradation,
/// and overload"). Admission control is off by default — every search
/// runs immediately, exactly the pre-admission behavior.
struct AdmissionOptions {
  /// Searches allowed to execute concurrently; 0 disables admission
  /// control entirely (no limits, no queue, no counters).
  std::size_t max_in_flight = 0;

  /// Searches allowed to wait for a slot when saturated. Arrivals beyond
  /// this are shed immediately with kResourceExhausted — the queue is
  /// bounded, never unbounded.
  std::size_t max_queued = 0;

  /// Deadline budget applied to any search whose SearchControl carries
  /// none, bounding both the queue wait and the search itself. 0 = no
  /// default budget.
  double default_deadline_seconds = 0.0;
};

/// Per-query execution controls, passed alongside any Find* call. The
/// default value (infinite deadline, no token) preserves historical
/// behavior bit-for-bit.
struct SearchControl {
  util::Deadline deadline;
  /// Unowned; must outlive the call. Cancelling finalizes the anytime
  /// result (KndsStats::truncated) or aborts a queued admission wait.
  const util::CancelToken* cancel_token = nullptr;
};

/// Admission counters; cumulative except the two gauges.
struct AdmissionStats {
  std::uint64_t admitted = 0;
  std::uint64_t rejected = 0;   // shed with kResourceExhausted (queue full)
  std::uint64_t abandoned = 0;  // left the queue on deadline/cancel
  std::size_t in_flight = 0;    // gauge
  std::size_t queued = 0;       // gauge
};

struct RankingEngineOptions {
  KndsOptions knds;
  ontology::AddressEnumeratorOptions addresses;
  AdmissionOptions admission;

  /// Enumerate every concept's Dewey addresses at construction and
  /// freeze the cache, making address lookups lock-free for concurrent
  /// searches (one up-front pass over the ontology). Disable for
  /// short-lived engines over large ontologies that only touch a few
  /// concepts; lookups then serialize on a mutex while the cache warms.
  bool precompute_addresses = true;
};

class RankingEngine {
 public:
  using Options = RankingEngineOptions;

  /// Takes ownership of the ontology; the corpus starts empty.
  static std::unique_ptr<RankingEngine> Create(ontology::Ontology ontology,
                                               Options options = {});

  /// Loads both files in either the text or binary format (sniffed).
  static util::StatusOr<std::unique_ptr<RankingEngine>> CreateFromFiles(
      const std::string& ontology_path, const std::string& corpus_path,
      Options options = {});

  RankingEngine(const RankingEngine&) = delete;
  RankingEngine& operator=(const RankingEngine&) = delete;

  /// Adds a document and indexes it; searchable immediately. Excludes
  /// concurrent searches while the corpus and inverted index mutate.
  util::StatusOr<corpus::DocId> AddDocument(
      std::vector<ontology::ConceptId> concepts);

  // Every Find* accepts a SearchControl carrying the query's deadline
  // budget and cancel token; the default control changes nothing. All
  // Find* calls pass admission control first (when enabled): saturated
  // engines queue up to max_queued waiters — bounded by the control's
  // deadline — and shed everything beyond that with kResourceExhausted.

  /// RDS by concept ids.
  util::StatusOr<std::vector<ScoredDocument>> FindRelevant(
      std::span<const ontology::ConceptId> query, std::uint32_t k,
      const SearchControl& control = {});

  /// RDS by concept names (convenience; fails on unknown names).
  util::StatusOr<std::vector<ScoredDocument>> FindRelevantByName(
      std::span<const std::string_view> names, std::uint32_t k,
      const SearchControl& control = {});

  /// RDS with weighted / expanded queries.
  util::StatusOr<std::vector<ScoredDocument>> FindRelevantWeighted(
      std::span<const WeightedConcept> query, std::uint32_t k,
      const SearchControl& control = {});

  /// SDS for a document already in the corpus.
  util::StatusOr<std::vector<ScoredDocument>> FindSimilar(
      corpus::DocId doc, std::uint32_t k, const SearchControl& control = {});

  /// SDS for an external document (e.g. a patient not yet admitted).
  util::StatusOr<std::vector<ScoredDocument>> FindSimilarToConcepts(
      std::vector<ontology::ConceptId> concepts, std::uint32_t k,
      const SearchControl& control = {});

  /// Exact Ddd between two indexed documents. Bypasses admission (a
  /// single DRC probe, not a search) but honors the control through
  /// Drc's cooperative cancellation.
  util::StatusOr<double> DocumentDistance(corpus::DocId a, corpus::DocId b,
                                          const SearchControl& control = {});

  /// Admission counters (zeroes while admission control is disabled).
  AdmissionStats admission_stats() const;

  const ontology::Ontology& ontology() const { return *ontology_; }
  const corpus::Corpus& corpus() const { return *corpus_; }

  /// Stats of the most recent completed search, by value (concurrent
  /// searches overwrite it in completion order).
  KndsStats last_search_stats() const {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    return last_knds_stats_;
  }

  /// Cumulative hit/miss/eviction counters of the engine's cross-query
  /// Ddq memo (see core/distance_cache.h).
  util::CacheCounters ddq_memo_counters() const {
    return ddq_memo_.counters();
  }

  /// Counters of the engine's concept-pair distance cache (fed by
  /// DistanceOracle / ConceptSimilarity instances built over
  /// concept_pair_cache(); never invalidated — the ontology is
  /// immutable).
  util::CacheCounters concept_pair_counters() const {
    return pair_cache_.counters();
  }

  /// Monotone cache epoch; AddDocument bumps it once per insert. A
  /// bumped epoch means Ddq entries of the touched document no longer
  /// match (version-keyed), while concept-pair distances survive.
  std::uint64_t cache_epoch() const { return ddq_memo_.epoch(); }

  /// The engine's shared caches, for callers composing extra components
  /// (e.g. a ConceptSimilarity over the engine's ontology, or a
  /// standalone Knds / ExhaustiveRanker / TaRanker sharing warm state).
  /// Both are thread-safe and live as long as the engine.
  ontology::ConceptPairCache* concept_pair_cache() { return &pair_cache_; }
  DdqMemo* ddq_memo() { return &ddq_memo_; }

 private:
  RankingEngine(ontology::Ontology ontology, Options options);

  /// Runs `search` on a per-call Knds under the reader lock, after
  /// passing admission control with the control's effective deadline.
  template <typename SearchFn>
  util::StatusOr<std::vector<ScoredDocument>> RunSearch(
      const SearchControl& control, SearchFn&& search);

  /// The control's deadline, or a fresh default_deadline_seconds budget
  /// when the control carries none.
  util::Deadline EffectiveDeadline(const SearchControl& control) const;

  /// Blocks until an execution slot is free (bounded by `deadline` and
  /// `cancel`), or fails with kResourceExhausted / kDeadlineExceeded /
  /// kCancelled. No-op when admission control is disabled.
  util::Status AcquireSearchSlot(const util::Deadline& deadline,
                                 const util::CancelToken* cancel);
  void ReleaseSearchSlot();

  Options options_;

  // unique_ptr members keep internal cross-pointers stable; the engine
  // itself is handed out by pointer.
  std::unique_ptr<ontology::Ontology> ontology_;
  std::unique_ptr<corpus::Corpus> corpus_;
  std::unique_ptr<index::InvertedIndex> inverted_;
  std::unique_ptr<ontology::AddressEnumerator> addresses_;
  std::unique_ptr<util::ThreadPool> pool_;  // Null when searches are serial.

  // Cross-query caches (Options::knds.cache), shared by every search.
  ontology::ConceptPairCache pair_cache_;
  DdqMemo ddq_memo_;

  // Warm DRC working memory, leased by every per-call engine and lane
  // (see core/drc.h): after a few queries the free list holds one
  // high-water-mark scratch per concurrent lane and steady-state
  // distance calls stop allocating.
  Drc::ScratchPool drc_scratches_;

  // Readers: searches / distance probes; writer: AddDocument.
  mutable std::shared_mutex mutex_;
  mutable std::mutex stats_mutex_;
  KndsStats last_knds_stats_;

  // Admission control (all guarded by admission_mutex_).
  mutable std::mutex admission_mutex_;
  std::condition_variable admission_cv_;
  std::size_t in_flight_ = 0;
  std::size_t queued_ = 0;
  std::uint64_t admitted_ = 0;
  std::uint64_t rejected_ = 0;
  std::uint64_t abandoned_ = 0;
};

}  // namespace ecdr::core

#endif  // ECDR_CORE_RANKING_ENGINE_H_
