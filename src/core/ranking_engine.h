// RankingEngine — the one-stop facade a serving process embeds.
//
// Owns the whole stack (ontology, corpus, inverted index, Dewey address
// cache, kNDS machinery, worker pool) with consistent lifetimes, so
// callers don't wire five components by hand or keep the inverted index
// in sync themselves. Supports the paper's point-of-care story:
// AddDocument() makes a record searchable immediately.
//
//   auto engine = core::RankingEngine::Create(std::move(ontology));
//   auto id = engine->AddDocument({valve, hypertension});
//   auto top = engine->FindRelevant({cardiac}, 10);
//   auto similar = engine->FindSimilar(*id, 10);
//
// Thread safety: Find*/DocumentDistance may run from any number of
// threads concurrently; AddDocument takes the engine's writer lock and
// excludes searches for the duration of one index insert. Each search
// uses its own short-lived Drc/Knds over the shared frozen Dewey address
// cache, and all searches share the engine's worker pool for intra-query
// parallelism (Options::knds.num_threads; see DESIGN.md, "Threading
// model").

#ifndef ECDR_CORE_RANKING_ENGINE_H_
#define ECDR_CORE_RANKING_ENGINE_H_

#include <memory>
#include <mutex>
#include <shared_mutex>
#include <span>
#include <string_view>
#include <vector>

#include "core/distance_cache.h"
#include "core/drc.h"
#include "core/knds.h"
#include "core/scored_document.h"
#include "corpus/corpus.h"
#include "index/inverted_index.h"
#include "ontology/concept_pair_cache.h"
#include "ontology/dewey.h"
#include "ontology/ontology.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace ecdr::core {

struct RankingEngineOptions {
  KndsOptions knds;
  ontology::AddressEnumeratorOptions addresses;

  /// Enumerate every concept's Dewey addresses at construction and
  /// freeze the cache, making address lookups lock-free for concurrent
  /// searches (one up-front pass over the ontology). Disable for
  /// short-lived engines over large ontologies that only touch a few
  /// concepts; lookups then serialize on a mutex while the cache warms.
  bool precompute_addresses = true;
};

class RankingEngine {
 public:
  using Options = RankingEngineOptions;

  /// Takes ownership of the ontology; the corpus starts empty.
  static std::unique_ptr<RankingEngine> Create(ontology::Ontology ontology,
                                               Options options = {});

  /// Loads both files in either the text or binary format (sniffed).
  static util::StatusOr<std::unique_ptr<RankingEngine>> CreateFromFiles(
      const std::string& ontology_path, const std::string& corpus_path,
      Options options = {});

  RankingEngine(const RankingEngine&) = delete;
  RankingEngine& operator=(const RankingEngine&) = delete;

  /// Adds a document and indexes it; searchable immediately. Excludes
  /// concurrent searches while the corpus and inverted index mutate.
  util::StatusOr<corpus::DocId> AddDocument(
      std::vector<ontology::ConceptId> concepts);

  /// RDS by concept ids.
  util::StatusOr<std::vector<ScoredDocument>> FindRelevant(
      std::span<const ontology::ConceptId> query, std::uint32_t k);

  /// RDS by concept names (convenience; fails on unknown names).
  util::StatusOr<std::vector<ScoredDocument>> FindRelevantByName(
      std::span<const std::string_view> names, std::uint32_t k);

  /// RDS with weighted / expanded queries.
  util::StatusOr<std::vector<ScoredDocument>> FindRelevantWeighted(
      std::span<const WeightedConcept> query, std::uint32_t k);

  /// SDS for a document already in the corpus.
  util::StatusOr<std::vector<ScoredDocument>> FindSimilar(corpus::DocId doc,
                                                          std::uint32_t k);

  /// SDS for an external document (e.g. a patient not yet admitted).
  util::StatusOr<std::vector<ScoredDocument>> FindSimilarToConcepts(
      std::vector<ontology::ConceptId> concepts, std::uint32_t k);

  /// Exact Ddd between two indexed documents.
  util::StatusOr<double> DocumentDistance(corpus::DocId a, corpus::DocId b);

  const ontology::Ontology& ontology() const { return *ontology_; }
  const corpus::Corpus& corpus() const { return *corpus_; }

  /// Stats of the most recent completed search, by value (concurrent
  /// searches overwrite it in completion order).
  KndsStats last_search_stats() const {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    return last_knds_stats_;
  }

  /// Cumulative hit/miss/eviction counters of the engine's cross-query
  /// Ddq memo (see core/distance_cache.h).
  util::CacheCounters ddq_memo_counters() const {
    return ddq_memo_.counters();
  }

  /// Counters of the engine's concept-pair distance cache (fed by
  /// DistanceOracle / ConceptSimilarity instances built over
  /// concept_pair_cache(); never invalidated — the ontology is
  /// immutable).
  util::CacheCounters concept_pair_counters() const {
    return pair_cache_.counters();
  }

  /// Monotone cache epoch; AddDocument bumps it once per insert. A
  /// bumped epoch means Ddq entries of the touched document no longer
  /// match (version-keyed), while concept-pair distances survive.
  std::uint64_t cache_epoch() const { return ddq_memo_.epoch(); }

  /// The engine's shared caches, for callers composing extra components
  /// (e.g. a ConceptSimilarity over the engine's ontology, or a
  /// standalone Knds / ExhaustiveRanker / TaRanker sharing warm state).
  /// Both are thread-safe and live as long as the engine.
  ontology::ConceptPairCache* concept_pair_cache() { return &pair_cache_; }
  DdqMemo* ddq_memo() { return &ddq_memo_; }

 private:
  RankingEngine(ontology::Ontology ontology, Options options);

  /// Runs `search` on a per-call Knds under the reader lock.
  template <typename SearchFn>
  util::StatusOr<std::vector<ScoredDocument>> RunSearch(SearchFn&& search);

  Options options_;

  // unique_ptr members keep internal cross-pointers stable; the engine
  // itself is handed out by pointer.
  std::unique_ptr<ontology::Ontology> ontology_;
  std::unique_ptr<corpus::Corpus> corpus_;
  std::unique_ptr<index::InvertedIndex> inverted_;
  std::unique_ptr<ontology::AddressEnumerator> addresses_;
  std::unique_ptr<util::ThreadPool> pool_;  // Null when searches are serial.

  // Cross-query caches (Options::knds.cache), shared by every search.
  ontology::ConceptPairCache pair_cache_;
  DdqMemo ddq_memo_;

  // Readers: searches / distance probes; writer: AddDocument.
  mutable std::shared_mutex mutex_;
  mutable std::mutex stats_mutex_;
  KndsStats last_knds_stats_;
};

}  // namespace ecdr::core

#endif  // ECDR_CORE_RANKING_ENGINE_H_
