#include "core/drc.h"

#include <algorithm>

#include "util/timer.h"

namespace ecdr::core {

Drc::Drc(const ontology::Ontology& ontology,
         ontology::AddressEnumerator* addresses, Scratch* scratch)
    : ontology_(&ontology), addresses_(addresses), address_lease_(addresses) {
  ECDR_CHECK(addresses != nullptr);
  if (scratch == nullptr) {
    owned_scratch_ = std::make_unique<Scratch>();
    scratch_ = owned_scratch_.get();
  } else {
    scratch_ = scratch;
  }
}

util::Status Drc::ValidateConcepts(
    std::span<const ontology::ConceptId> concepts, const char* label) const {
  if (concepts.empty()) {
    return util::InvalidArgumentError(std::string(label) +
                                      " has no concepts");
  }
  for (ontology::ConceptId c : concepts) {
    if (!ontology_->Contains(c)) {
      return util::InvalidArgumentError(std::string(label) +
                                        " references unknown concept id " +
                                        std::to_string(c));
    }
  }
  return util::Status::Ok();
}

void Drc::GatherInserts(std::span<const ontology::ConceptId> doc,
                        std::span<const ontology::ConceptId> query) {
  // Deduplicate each side and merge flags for concepts on both sides so
  // each concept's addresses are inserted exactly once. The deduped
  // sides stay behind in the scratch for the evaluation loops. All
  // buffers reuse their capacity; std::sort is in-place.
  std::vector<ontology::ConceptId>& doc_set = scratch_->doc_set;
  std::vector<ontology::ConceptId>& query_set = scratch_->query_set;
  doc_set.assign(doc.begin(), doc.end());
  std::sort(doc_set.begin(), doc_set.end());
  doc_set.erase(std::unique(doc_set.begin(), doc_set.end()), doc_set.end());
  query_set.assign(query.begin(), query.end());
  std::sort(query_set.begin(), query_set.end());
  query_set.erase(std::unique(query_set.begin(), query_set.end()),
                  query_set.end());

  std::vector<PendingInsert>& inserts = scratch_->inserts;
  inserts.clear();
  // Frozen enumerators serve the flat pool: addresses arrive as raw
  // spans into one arena, no per-concept vector indirection. The
  // growing (unfrozen) cache falls back to the legacy vectors. Both
  // paths emit the same addresses in the same per-concept order, so the
  // merged insert list — and every distance downstream — is identical.
  const ontology::FlatDeweyPool* pool = addresses_->flat_pool();
  const auto add_concept = [&](ontology::ConceptId c, bool in_doc,
                               bool in_query) {
    if (pool != nullptr) {
      const std::uint32_t* base = pool->component_data();
      for (const ontology::AddressSpan span : pool->spans(c)) {
        inserts.push_back(
            PendingInsert{base + span.offset, span.length, c, in_doc,
                          in_query});
      }
    } else {
      for (const ontology::DeweyAddress& address : addresses_->Addresses(c)) {
        inserts.push_back(PendingInsert{
            address.data(), static_cast<std::uint32_t>(address.size()), c,
            in_doc, in_query});
      }
    }
  };
  std::size_t di = 0;
  std::size_t qi = 0;
  while (di < doc_set.size() || qi < query_set.size()) {
    if (qi == query_set.size() ||
        (di < doc_set.size() && doc_set[di] < query_set[qi])) {
      add_concept(doc_set[di], /*in_doc=*/true, /*in_query=*/false);
      ++di;
    } else if (di == doc_set.size() || query_set[qi] < doc_set[di]) {
      add_concept(query_set[qi], /*in_doc=*/false, /*in_query=*/true);
      ++qi;
    } else {
      add_concept(doc_set[di], /*in_doc=*/true, /*in_query=*/true);
      ++di;
      ++qi;
    }
  }
  // The paper presents Pd and Pq as lexicographic lists, but the
  // D-Radix DAG is insertion-order invariant: the compressed trie of a
  // fixed (distinct) address set is unique, node flags OR together, and
  // the tuning sweeps relax minima over the same edges whatever order
  // they were added in. So no global sort — it was the single most
  // expensive step of the build (one DeweyLess per comparison, O(n log
  // n) of them per call). The merge above already yields a
  // deterministic order: concepts ascending, each concept's addresses
  // in the enumerator's lexicographic order.
}

util::Status Drc::BuildInto(DRadixDag* dag,
                            std::span<const ontology::ConceptId> doc,
                            std::span<const ontology::ConceptId> query) {
  ECDR_RETURN_IF_ERROR(ValidateConcepts(doc, "document"));
  ECDR_RETURN_IF_ERROR(ValidateConcepts(query, "query"));
  ECDR_RETURN_IF_ERROR(
      util::CheckCancellation(cancel_token_, deadline_, "DRC"));
  util::WallTimer timer;

  GatherInserts(doc, query);

  dag->Reset(*ontology_);
  // Poll coarsely during the insert sweep — large SDS pairs can carry
  // tens of thousands of addresses — but keep the unexpired cost at one
  // predictable branch per batch.
  constexpr std::size_t kCancelPollStride = 1024;
  std::size_t inserted = 0;
  for (const PendingInsert& pending : scratch_->inserts) {
    if (++inserted % kCancelPollStride == 0) {
      ECDR_RETURN_IF_ERROR(
          util::CheckCancellation(cancel_token_, deadline_, "DRC"));
    }
    dag->InsertAddress(pending.concept_id, {pending.address, pending.length},
                       pending.in_doc, pending.in_query);
  }
  const double built_at = timer.ElapsedSeconds();
  dag->TuneDistances();
  const double tuned_at = timer.ElapsedSeconds();

  ++stats_.calls;
  stats_.addresses_inserted += scratch_->inserts.size();
  stats_.nodes_built += dag->num_nodes();
  stats_.edges_built += dag->num_edges();
  stats_.seconds += tuned_at;
  stats_.build_seconds += built_at;
  stats_.tune_seconds += tuned_at - built_at;
  return util::Status::Ok();
}

util::StatusOr<DRadixDag> Drc::BuildIndex(
    std::span<const ontology::ConceptId> doc,
    std::span<const ontology::ConceptId> query) {
  DRadixDag dag(*ontology_);
  ECDR_RETURN_IF_ERROR(BuildInto(&dag, doc, query));
  return dag;
}

util::StatusOr<std::uint64_t> Drc::DocQueryDistance(
    std::span<const ontology::ConceptId> doc,
    std::span<const ontology::ConceptId> query) {
  DRadixDag& dag = scratch_->dag;
  ECDR_RETURN_IF_ERROR(BuildInto(&dag, doc, query));
  // Sum the nearest-document distances attached to the query nodes,
  // counting each distinct query concept once (GatherInserts left the
  // deduped query side in the scratch).
  std::uint64_t total = 0;
  for (ontology::ConceptId c : scratch_->query_set) {
    const DRadixDag::NodeIndex index = dag.FindNode(c);
    ECDR_CHECK_NE(index, DRadixDag::kInvalidNode);
    const std::uint32_t distance = dag.dist_to_doc(index);
    // A single-rooted ontology always connects the two sides.
    ECDR_CHECK_LT(distance, DRadixDag::kUnreachable);
    total += distance;
  }
  return total;
}

util::StatusOr<double> Drc::DocDocDistance(
    std::span<const ontology::ConceptId> d1,
    std::span<const ontology::ConceptId> d2) {
  // Build with d1 as the "document" side and d2 as the "query" side;
  // Eq. 3 then reads: each d2 concept's nearest-d1 distance comes from
  // dist_to_doc, each d1 concept's nearest-d2 distance from
  // dist_to_query.
  DRadixDag& dag = scratch_->dag;
  ECDR_RETURN_IF_ERROR(BuildInto(&dag, d1, d2));

  // Eq. 3 normalizes each side by its number of *distinct* concepts;
  // the deduped sides are already in the scratch.
  const auto side_sum = [&](std::span<const ontology::ConceptId> counted,
                            bool toward_doc) {
    std::uint64_t total = 0;
    for (ontology::ConceptId c : counted) {
      const DRadixDag::NodeIndex index = dag.FindNode(c);
      ECDR_CHECK_NE(index, DRadixDag::kInvalidNode);
      const std::uint32_t distance =
          toward_doc ? dag.dist_to_doc(index) : dag.dist_to_query(index);
      ECDR_CHECK_LT(distance, DRadixDag::kUnreachable);
      total += distance;
    }
    return total;
  };

  const std::size_t size1 = scratch_->doc_set.size();
  const std::size_t size2 = scratch_->query_set.size();
  const std::uint64_t d1_to_d2 =
      side_sum(scratch_->doc_set, /*toward_doc=*/false);
  const std::uint64_t d2_to_d1 =
      side_sum(scratch_->query_set, /*toward_doc=*/true);
  return static_cast<double>(d1_to_d2) / static_cast<double>(size1) +
         static_cast<double>(d2_to_d1) / static_cast<double>(size2);
}

util::StatusOr<double> Drc::DocQueryDistanceWeighted(
    std::span<const ontology::ConceptId> doc,
    std::span<const WeightedConcept> query) {
  // Normalize in scratch (same semantics as NormalizeWeightedConcepts,
  // minus its fresh vector).
  std::vector<WeightedConcept>& normalized = scratch_->normalized;
  normalized.assign(query.begin(), query.end());
  std::sort(normalized.begin(), normalized.end(),
            [](const WeightedConcept& a, const WeightedConcept& b) {
              if (a.concept_id != b.concept_id) {
                return a.concept_id < b.concept_id;
              }
              return a.weight > b.weight;
            });
  normalized.erase(
      std::unique(normalized.begin(), normalized.end(),
                  [](const WeightedConcept& a, const WeightedConcept& b) {
                    return a.concept_id == b.concept_id;
                  }),
      normalized.end());
  std::vector<ontology::ConceptId>& concepts = scratch_->concept_ids;
  concepts.clear();
  for (const WeightedConcept& wc : normalized) {
    concepts.push_back(wc.concept_id);
  }
  DRadixDag& dag = scratch_->dag;
  ECDR_RETURN_IF_ERROR(BuildInto(&dag, doc, concepts));
  double total = 0.0;
  for (const WeightedConcept& wc : normalized) {
    const DRadixDag::NodeIndex index = dag.FindNode(wc.concept_id);
    ECDR_CHECK_NE(index, DRadixDag::kInvalidNode);
    const std::uint32_t distance = dag.dist_to_doc(index);
    ECDR_CHECK_LT(distance, DRadixDag::kUnreachable);
    total += wc.weight * static_cast<double>(distance);
  }
  return total;
}

util::StatusOr<double> Drc::DocDocDistanceWeighted(
    std::span<const ontology::ConceptId> d1,
    std::span<const ontology::ConceptId> d2, const ConceptWeights& weights) {
  DRadixDag& dag = scratch_->dag;
  ECDR_RETURN_IF_ERROR(BuildInto(&dag, d1, d2));
  const auto side_sum = [&](std::span<const ontology::ConceptId> counted,
                            bool toward_doc, double* total_weight) {
    double sum = 0.0;
    *total_weight = 0.0;
    for (ontology::ConceptId c : counted) {
      const DRadixDag::NodeIndex index = dag.FindNode(c);
      ECDR_CHECK_NE(index, DRadixDag::kInvalidNode);
      const std::uint32_t distance =
          toward_doc ? dag.dist_to_doc(index) : dag.dist_to_query(index);
      ECDR_CHECK_LT(distance, DRadixDag::kUnreachable);
      const double w = weights.of(c);
      sum += w * static_cast<double>(distance);
      *total_weight += w;
    }
    return sum;
  };
  double weight1 = 0.0;
  double weight2 = 0.0;
  const double d1_to_d2 =
      side_sum(scratch_->doc_set, /*toward_doc=*/false, &weight1);
  const double d2_to_d1 =
      side_sum(scratch_->query_set, /*toward_doc=*/true, &weight2);
  if (weight1 <= 0.0 || weight2 <= 0.0) {
    return util::InvalidArgumentError(
        "documents must carry positive total weight");
  }
  return d1_to_d2 / weight1 + d2_to_d1 / weight2;
}

std::vector<WeightedConcept> NormalizeWeightedConcepts(
    std::span<const WeightedConcept> concepts) {
  std::vector<WeightedConcept> normalized(concepts.begin(), concepts.end());
  std::sort(normalized.begin(), normalized.end(),
            [](const WeightedConcept& a, const WeightedConcept& b) {
              if (a.concept_id != b.concept_id) {
                return a.concept_id < b.concept_id;
              }
              return a.weight > b.weight;
            });
  // Duplicates keep the largest weight (expansion may reach the same
  // concept from several query terms).
  normalized.erase(
      std::unique(normalized.begin(), normalized.end(),
                  [](const WeightedConcept& a, const WeightedConcept& b) {
                    return a.concept_id == b.concept_id;
                  }),
      normalized.end());
  return normalized;
}

}  // namespace ecdr::core
