#include "core/drc.h"

#include <algorithm>

#include "util/timer.h"

namespace ecdr::core {

Drc::Drc(const ontology::Ontology& ontology,
         ontology::AddressEnumerator* addresses)
    : ontology_(&ontology), addresses_(addresses), address_lease_(addresses) {
  ECDR_CHECK(addresses != nullptr);
}

util::Status Drc::ValidateConcepts(
    std::span<const ontology::ConceptId> concepts, const char* label) const {
  if (concepts.empty()) {
    return util::InvalidArgumentError(std::string(label) +
                                      " has no concepts");
  }
  for (ontology::ConceptId c : concepts) {
    if (!ontology_->Contains(c)) {
      return util::InvalidArgumentError(std::string(label) +
                                        " references unknown concept id " +
                                        std::to_string(c));
    }
  }
  return util::Status::Ok();
}

void Drc::GatherInserts(std::span<const ontology::ConceptId> doc,
                        std::span<const ontology::ConceptId> query,
                        std::vector<PendingInsert>* inserts) {
  // Deduplicate each side and merge flags for concepts on both sides so
  // each concept's addresses are inserted exactly once.
  std::vector<ontology::ConceptId> doc_set(doc.begin(), doc.end());
  std::sort(doc_set.begin(), doc_set.end());
  doc_set.erase(std::unique(doc_set.begin(), doc_set.end()), doc_set.end());
  std::vector<ontology::ConceptId> query_set(query.begin(), query.end());
  std::sort(query_set.begin(), query_set.end());
  query_set.erase(std::unique(query_set.begin(), query_set.end()),
                  query_set.end());

  inserts->clear();
  const auto add_concept = [&](ontology::ConceptId c, bool in_doc,
                               bool in_query) {
    for (const ontology::DeweyAddress& address : addresses_->Addresses(c)) {
      inserts->push_back(PendingInsert{&address, c, in_doc, in_query});
    }
  };
  std::size_t di = 0;
  std::size_t qi = 0;
  while (di < doc_set.size() || qi < query_set.size()) {
    if (qi == query_set.size() ||
        (di < doc_set.size() && doc_set[di] < query_set[qi])) {
      add_concept(doc_set[di], /*in_doc=*/true, /*in_query=*/false);
      ++di;
    } else if (di == doc_set.size() || query_set[qi] < doc_set[di]) {
      add_concept(query_set[qi], /*in_doc=*/false, /*in_query=*/true);
      ++qi;
    } else {
      add_concept(doc_set[di], /*in_doc=*/true, /*in_query=*/true);
      ++di;
      ++qi;
    }
  }
  // The paper consumes Pd and Pq in lexicographic merge order.
  std::sort(inserts->begin(), inserts->end(),
            [](const PendingInsert& a, const PendingInsert& b) {
              return ontology::DeweyLess(*a.address, *b.address);
            });
}

util::StatusOr<DRadixDag> Drc::BuildIndex(
    std::span<const ontology::ConceptId> doc,
    std::span<const ontology::ConceptId> query) {
  ECDR_RETURN_IF_ERROR(ValidateConcepts(doc, "document"));
  ECDR_RETURN_IF_ERROR(ValidateConcepts(query, "query"));
  ECDR_RETURN_IF_ERROR(
      util::CheckCancellation(cancel_token_, deadline_, "DRC"));
  util::WallTimer timer;

  std::vector<PendingInsert> inserts;
  GatherInserts(doc, query, &inserts);

  DRadixDag dag(*ontology_);
  // Poll coarsely during the insert sweep — large SDS pairs can carry
  // tens of thousands of addresses — but keep the unexpired cost at one
  // predictable branch per batch.
  constexpr std::size_t kCancelPollStride = 1024;
  std::size_t inserted = 0;
  for (const PendingInsert& pending : inserts) {
    if (++inserted % kCancelPollStride == 0) {
      ECDR_RETURN_IF_ERROR(
          util::CheckCancellation(cancel_token_, deadline_, "DRC"));
    }
    dag.InsertAddress(pending.concept_id, *pending.address, pending.in_doc,
                      pending.in_query);
  }
  dag.TuneDistances();

  ++stats_.calls;
  stats_.addresses_inserted += inserts.size();
  stats_.nodes_built += dag.num_nodes();
  stats_.edges_built += dag.num_edges();
  stats_.seconds += timer.ElapsedSeconds();
  return dag;
}

util::StatusOr<std::uint64_t> Drc::DocQueryDistance(
    std::span<const ontology::ConceptId> doc,
    std::span<const ontology::ConceptId> query) {
  util::StatusOr<DRadixDag> dag = BuildIndex(doc, query);
  ECDR_RETURN_IF_ERROR(dag.status());
  // Sum the nearest-document distances attached to the query nodes,
  // counting each distinct query concept once.
  std::uint64_t total = 0;
  std::vector<ontology::ConceptId> counted(query.begin(), query.end());
  std::sort(counted.begin(), counted.end());
  counted.erase(std::unique(counted.begin(), counted.end()), counted.end());
  for (ontology::ConceptId c : counted) {
    const DRadixDag::NodeIndex index = dag->FindNode(c);
    ECDR_CHECK_NE(index, DRadixDag::kInvalidNode);
    const std::uint32_t distance = dag->node(index).dist_to_doc;
    // A single-rooted ontology always connects the two sides.
    ECDR_CHECK_LT(distance, DRadixDag::kUnreachable);
    total += distance;
  }
  return total;
}

util::StatusOr<double> Drc::DocDocDistance(
    std::span<const ontology::ConceptId> d1,
    std::span<const ontology::ConceptId> d2) {
  // Build with d1 as the "document" side and d2 as the "query" side;
  // Eq. 3 then reads: each d2 concept's nearest-d1 distance comes from
  // dist_to_doc, each d1 concept's nearest-d2 distance from
  // dist_to_query.
  util::StatusOr<DRadixDag> dag = BuildIndex(d1, d2);
  ECDR_RETURN_IF_ERROR(dag.status());

  // Eq. 3 normalizes each side by its number of *distinct* concepts.
  const auto side_sum = [&](std::span<const ontology::ConceptId> side,
                            bool toward_doc, std::size_t* count) {
    std::vector<ontology::ConceptId> counted(side.begin(), side.end());
    std::sort(counted.begin(), counted.end());
    counted.erase(std::unique(counted.begin(), counted.end()), counted.end());
    *count = counted.size();
    std::uint64_t total = 0;
    for (ontology::ConceptId c : counted) {
      const DRadixDag::NodeIndex index = dag->FindNode(c);
      ECDR_CHECK_NE(index, DRadixDag::kInvalidNode);
      const DRadixDag::Node& node = dag->node(index);
      const std::uint32_t distance =
          toward_doc ? node.dist_to_doc : node.dist_to_query;
      ECDR_CHECK_LT(distance, DRadixDag::kUnreachable);
      total += distance;
    }
    return total;
  };

  std::size_t size1 = 0;
  std::size_t size2 = 0;
  const std::uint64_t d1_to_d2 = side_sum(d1, /*toward_doc=*/false, &size1);
  const std::uint64_t d2_to_d1 = side_sum(d2, /*toward_doc=*/true, &size2);
  return static_cast<double>(d1_to_d2) / static_cast<double>(size1) +
         static_cast<double>(d2_to_d1) / static_cast<double>(size2);
}

util::StatusOr<double> Drc::DocQueryDistanceWeighted(
    std::span<const ontology::ConceptId> doc,
    std::span<const WeightedConcept> query) {
  std::vector<WeightedConcept> normalized =
      NormalizeWeightedConcepts(query);
  std::vector<ontology::ConceptId> concepts;
  concepts.reserve(normalized.size());
  for (const WeightedConcept& wc : normalized) {
    concepts.push_back(wc.concept_id);
  }
  util::StatusOr<DRadixDag> dag = BuildIndex(doc, concepts);
  ECDR_RETURN_IF_ERROR(dag.status());
  double total = 0.0;
  for (const WeightedConcept& wc : normalized) {
    const DRadixDag::NodeIndex index = dag->FindNode(wc.concept_id);
    ECDR_CHECK_NE(index, DRadixDag::kInvalidNode);
    const std::uint32_t distance = dag->node(index).dist_to_doc;
    ECDR_CHECK_LT(distance, DRadixDag::kUnreachable);
    total += wc.weight * static_cast<double>(distance);
  }
  return total;
}

util::StatusOr<double> Drc::DocDocDistanceWeighted(
    std::span<const ontology::ConceptId> d1,
    std::span<const ontology::ConceptId> d2, const ConceptWeights& weights) {
  util::StatusOr<DRadixDag> dag = BuildIndex(d1, d2);
  ECDR_RETURN_IF_ERROR(dag.status());
  const auto side_sum = [&](std::span<const ontology::ConceptId> side,
                            bool toward_doc, double* total_weight) {
    std::vector<ontology::ConceptId> counted(side.begin(), side.end());
    std::sort(counted.begin(), counted.end());
    counted.erase(std::unique(counted.begin(), counted.end()), counted.end());
    double sum = 0.0;
    *total_weight = 0.0;
    for (ontology::ConceptId c : counted) {
      const DRadixDag::NodeIndex index = dag->FindNode(c);
      ECDR_CHECK_NE(index, DRadixDag::kInvalidNode);
      const DRadixDag::Node& node = dag->node(index);
      const std::uint32_t distance =
          toward_doc ? node.dist_to_doc : node.dist_to_query;
      ECDR_CHECK_LT(distance, DRadixDag::kUnreachable);
      const double w = weights.of(c);
      sum += w * static_cast<double>(distance);
      *total_weight += w;
    }
    return sum;
  };
  double weight1 = 0.0;
  double weight2 = 0.0;
  const double d1_to_d2 = side_sum(d1, /*toward_doc=*/false, &weight1);
  const double d2_to_d1 = side_sum(d2, /*toward_doc=*/true, &weight2);
  if (weight1 <= 0.0 || weight2 <= 0.0) {
    return util::InvalidArgumentError(
        "documents must carry positive total weight");
  }
  return d1_to_d2 / weight1 + d2_to_d1 / weight2;
}

std::vector<WeightedConcept> NormalizeWeightedConcepts(
    std::span<const WeightedConcept> concepts) {
  std::vector<WeightedConcept> normalized(concepts.begin(), concepts.end());
  std::sort(normalized.begin(), normalized.end(),
            [](const WeightedConcept& a, const WeightedConcept& b) {
              if (a.concept_id != b.concept_id) {
                return a.concept_id < b.concept_id;
              }
              return a.weight > b.weight;
            });
  // Duplicates keep the largest weight (expansion may reach the same
  // concept from several query terms).
  normalized.erase(
      std::unique(normalized.begin(), normalized.end(),
                  [](const WeightedConcept& a, const WeightedConcept& b) {
                    return a.concept_id == b.concept_id;
                  }),
      normalized.end());
  return normalized;
}

}  // namespace ecdr::core
