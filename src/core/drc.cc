#include "core/drc.h"

#include <algorithm>
#include <cstring>

#include "ontology/flat_dewey_pool.h"
#include "util/timer.h"

namespace ecdr::core {

namespace {

// LSD radix sort of (rank << 32 | index) keys by the rank half: four
// 8-bit passes, each skipped when its byte is constant across the key
// set (ranks span far fewer than 32 bits in practice, so typically two
// or three passes run). Rank ties cannot occur — ranks are a global
// permutation — so stability games are unnecessary. Ends with the
// sorted keys back in `keys`; `tmp` is warm scratch.
void SortKeysByRank(std::vector<std::uint64_t>& keys,
                    std::vector<std::uint64_t>& tmp) {
  const std::size_t n = keys.size();
  if (n < 2) return;
  tmp.resize(n);
  std::uint64_t* src = keys.data();
  std::uint64_t* dst = tmp.data();
  for (int shift = 32; shift < 64; shift += 8) {
    std::uint32_t hist[256] = {0};
    for (std::size_t i = 0; i < n; ++i) {
      ++hist[(src[i] >> shift) & 0xFF];
    }
    if (hist[(src[0] >> shift) & 0xFF] == n) continue;
    std::uint32_t sum = 0;
    for (std::uint32_t& h : hist) {
      const std::uint32_t count = h;
      h = sum;
      sum += count;
    }
    for (std::size_t i = 0; i < n; ++i) {
      dst[hist[(src[i] >> shift) & 0xFF]++] = src[i];
    }
    std::swap(src, dst);
  }
  if (src != keys.data()) {
    std::memcpy(keys.data(), src, n * sizeof(std::uint64_t));
  }
}

}  // namespace

Drc::Drc(const ontology::Ontology& ontology,
         ontology::AddressEnumerator* addresses, Scratch* scratch,
         DrcOptions options)
    : ontology_(&ontology),
      addresses_(addresses),
      address_lease_(addresses),
      options_(options) {
  ECDR_CHECK(addresses != nullptr);
  if (scratch == nullptr) {
    owned_scratch_ = std::make_unique<Scratch>();
    scratch_ = owned_scratch_.get();
  } else {
    scratch_ = scratch;
  }
}

util::Status Drc::ValidateConcepts(
    std::span<const ontology::ConceptId> concepts, const char* label) const {
  if (concepts.empty()) {
    return util::InvalidArgumentError(std::string(label) +
                                      " has no concepts");
  }
  for (ontology::ConceptId c : concepts) {
    if (!ontology_->Contains(c)) {
      return util::InvalidArgumentError(std::string(label) +
                                        " references unknown concept id " +
                                        std::to_string(c));
    }
  }
  return util::Status::Ok();
}

void Drc::GatherInserts(std::span<const ontology::ConceptId> doc,
                        std::span<const ontology::ConceptId> query) {
  // Deduplicate each side and merge flags for concepts on both sides so
  // each concept's addresses are inserted exactly once. The deduped
  // sides stay behind in the scratch for the evaluation loops. All
  // buffers reuse their capacity; std::sort is in-place.
  std::vector<ontology::ConceptId>& doc_set = scratch_->doc_set;
  std::vector<ontology::ConceptId>& query_set = scratch_->query_set;
  doc_set.assign(doc.begin(), doc.end());
  std::sort(doc_set.begin(), doc_set.end());
  doc_set.erase(std::unique(doc_set.begin(), doc_set.end()), doc_set.end());
  query_set.assign(query.begin(), query.end());
  std::sort(query_set.begin(), query_set.end());
  query_set.erase(std::unique(query_set.begin(), query_set.end()),
                  query_set.end());

  std::vector<PendingInsert>& inserts = scratch_->inserts;
  inserts.clear();
  // Frozen enumerators serve the flat pool: addresses arrive as raw
  // spans into one arena, no per-concept vector indirection. The
  // growing (unfrozen) cache falls back to the legacy vectors. Both
  // paths emit the same addresses in the same per-concept order, so the
  // merged insert list — and every distance downstream — is identical.
  const ontology::FlatDeweyPool* pool = addresses_->flat_pool();
  const auto add_concept = [&](ontology::ConceptId c, bool in_doc,
                               bool in_query) {
    if (pool != nullptr) {
      const std::uint32_t* base = pool->component_data();
      for (const ontology::AddressSpan span : pool->spans(c)) {
        inserts.push_back(
            PendingInsert{base + span.offset, span.length, c, in_doc,
                          in_query});
      }
    } else {
      for (const ontology::DeweyAddress& address : addresses_->Addresses(c)) {
        inserts.push_back(PendingInsert{
            address.data(), static_cast<std::uint32_t>(address.size()), c,
            in_doc, in_query});
      }
    }
  };
  std::size_t di = 0;
  std::size_t qi = 0;
  while (di < doc_set.size() || qi < query_set.size()) {
    if (qi == query_set.size() ||
        (di < doc_set.size() && doc_set[di] < query_set[qi])) {
      add_concept(doc_set[di], /*in_doc=*/true, /*in_query=*/false);
      ++di;
    } else if (di == doc_set.size() || query_set[qi] < doc_set[di]) {
      add_concept(query_set[qi], /*in_doc=*/false, /*in_query=*/true);
      ++qi;
    } else {
      add_concept(doc_set[di], /*in_doc=*/true, /*in_query=*/true);
      ++di;
      ++qi;
    }
  }
  // The paper presents Pd and Pq as lexicographic lists, but the
  // D-Radix DAG is insertion-order invariant: the compressed trie of a
  // fixed (distinct) address set is unique, node flags OR together, and
  // the tuning sweeps relax minima over the same edges whatever order
  // they were added in. So no global sort — it was the single most
  // expensive step of the build (one DeweyLess per comparison, O(n log
  // n) of them per call). The merge above already yields a
  // deterministic order: concepts ascending, each concept's addresses
  // in the enumerator's lexicographic order.
}

util::Status Drc::BuildInto(DRadixDag* dag,
                            std::span<const ontology::ConceptId> doc,
                            std::span<const ontology::ConceptId> query) {
  ECDR_RETURN_IF_ERROR(ValidateConcepts(doc, "document"));
  ECDR_RETURN_IF_ERROR(ValidateConcepts(query, "query"));
  ECDR_RETURN_IF_ERROR(
      util::CheckCancellation(cancel_token_, deadline_, "DRC"));
  util::WallTimer timer;

  if (options_.skeleton_reuse && dag == &scratch_->dag) {
    // Distance calls on the scratch DAG reuse work across the sweep.
    // Small-query calls (Ddq and its weighted variant) copy a cached
    // per-document DAG and insert just the query; document-vs-document
    // calls keep the persistent query skeleton and merge the candidate
    // under the rollback log.
    if (options_.doc_dag_cache_capacity > 0 &&
        addresses_->flat_pool() != nullptr &&
        query.size() <= options_.doc_dag_max_query_concepts) {
      ECDR_RETURN_IF_ERROR(BuildWithDocDag(dag, doc, query));
    } else {
      ECDR_RETURN_IF_ERROR(BuildWithSkeleton(dag, doc, query));
    }
  } else {
    // BuildIndex (standalone DAGs) and reuse-off engines: the paper's
    // full per-call build. GatherInserts overwrites query_set — the
    // skeleton's identity — so any skeleton standing in the scratch DAG
    // no longer matches its signature and must be dropped.
    scratch_->skeleton_valid = false;
    GatherInserts(doc, query);

    dag->Reset(*ontology_);
    // Poll coarsely during the insert sweep — large SDS pairs can carry
    // tens of thousands of addresses — but keep the unexpired cost at
    // one predictable branch per batch.
    constexpr std::size_t kCancelPollStride = 1024;
    std::size_t inserted = 0;
    for (const PendingInsert& pending : scratch_->inserts) {
      if (++inserted % kCancelPollStride == 0) {
        ECDR_RETURN_IF_ERROR(
            util::CheckCancellation(cancel_token_, deadline_, "DRC"));
      }
      dag->InsertAddress(pending.concept_id,
                         {pending.address, pending.length}, pending.in_doc,
                         pending.in_query);
    }
    stats_.addresses_inserted += scratch_->inserts.size();
  }
  const double built_at = timer.ElapsedSeconds();
  dag->TuneDistances();
  const double tuned_at = timer.ElapsedSeconds();

  ++stats_.calls;
  stats_.nodes_built += dag->num_nodes();
  stats_.edges_built += dag->num_edges();
  stats_.seconds += tuned_at;
  stats_.build_seconds += built_at;
  stats_.tune_seconds += tuned_at - built_at;
  return util::Status::Ok();
}

util::Status Drc::BuildWithSkeleton(DRadixDag* dag,
                                    std::span<const ontology::ConceptId> doc,
                                    std::span<const ontology::ConceptId>
                                        query) {
  Scratch& s = *scratch_;
  constexpr std::size_t kCancelPollStride = 1024;

  // Dedup the incoming query side into the probe buffer, then decide
  // whether the skeleton standing in the DAG is exactly it.
  std::vector<ontology::ConceptId>& probe = s.probe_set;
  probe.assign(query.begin(), query.end());
  std::sort(probe.begin(), probe.end());
  probe.erase(std::unique(probe.begin(), probe.end()), probe.end());

  const std::uint64_t addresses_generation = addresses_->cache_generation();
  bool reuse = s.skeleton_valid &&
               s.skeleton_ontology == static_cast<const void*>(ontology_) &&
               s.skeleton_addresses_generation == addresses_generation &&
               s.skeleton_dag_generation == dag->generation() &&
               probe == s.query_set;
  if (reuse && dag->merge_active() &&
      dag->merge_log_size() > options_.max_rollback_entries) {
    // The previous document perturbed so much pre-merge structure that
    // replaying the log would cost more than a fresh skeleton build.
    reuse = false;
  }
  if (reuse) {
    if (dag->merge_active()) {
      // Detach the previous call's document paths.
      dag->RollbackMerge();
      stats_.doc_paths_detached += s.skeleton_merged_paths;
      s.skeleton_merged_paths = 0;
    }
    ++stats_.skeleton_reuses;
  } else {
    // (Re)build the skeleton: query side only, flagged in_query.
    s.skeleton_valid = false;  // Stays false if cancelled mid-build.
    s.query_set.swap(probe);
    dag->Reset(*ontology_);
    const ontology::FlatDeweyPool* pool = addresses_->flat_pool();
    std::size_t inserted = 0;
    for (const ontology::ConceptId c : s.query_set) {
      if (pool != nullptr) {
        const std::uint32_t* base = pool->component_data();
        for (const ontology::AddressSpan span : pool->spans(c)) {
          dag->InsertAddress(c, {base + span.offset, span.length},
                             /*in_doc=*/false, /*in_query=*/true);
          ++inserted;
        }
      } else {
        for (const ontology::DeweyAddress& address :
             addresses_->Addresses(c)) {
          dag->InsertAddress(
              c, {address.data(), address.size()},
              /*in_doc=*/false, /*in_query=*/true);
          ++inserted;
        }
      }
      if (inserted >= kCancelPollStride) {
        ECDR_RETURN_IF_ERROR(
            util::CheckCancellation(cancel_token_, deadline_, "DRC"));
        stats_.addresses_inserted += inserted;
        inserted = 0;
      }
    }
    stats_.addresses_inserted += inserted;
    s.skeleton_ontology = ontology_;
    s.skeleton_addresses_generation = addresses_generation;
    s.skeleton_dag_generation = dag->generation();
    s.skeleton_merged_paths = 0;
    s.skeleton_valid = true;
    ++stats_.skeleton_builds;
  }

  // Merge the document side under the rollback log. A cancelled merge
  // simply stays open: the next matching call rolls it back first.
  dag->BeginMerge();

  std::vector<ontology::ConceptId>& doc_set = s.doc_set;
  doc_set.assign(doc.begin(), doc.end());
  std::sort(doc_set.begin(), doc_set.end());
  doc_set.erase(std::unique(doc_set.begin(), doc_set.end()), doc_set.end());

  // Gather the spans of doc-only concepts (concepts on both sides just
  // get the doc flag added — their addresses already stand), building
  // the (rank, index) sort keys as we go.
  const ontology::FlatDeweyPool* pool = addresses_->flat_pool();
  std::uint64_t merged = 0;
  s.merge_spans.clear();
  s.merge_concepts.clear();
  s.merge_keys.clear();
  std::size_t qi = 0;
  std::size_t inserted = 0;
  for (const ontology::ConceptId c : doc_set) {
    while (qi < s.query_set.size() && s.query_set[qi] < c) ++qi;
    if (qi < s.query_set.size() && s.query_set[qi] == c) {
      dag->MarkFlags(c, /*in_doc=*/true, /*in_query=*/false);
      continue;
    }
    if (pool != nullptr) {
      const std::span<const ontology::AddressSpan> spans = pool->spans(c);
      const std::span<const std::uint32_t> ranks = pool->ranks(c);
      const std::uint32_t first =
          static_cast<std::uint32_t>(s.merge_spans.size());
      s.merge_spans.insert(s.merge_spans.end(), spans.begin(), spans.end());
      s.merge_concepts.insert(s.merge_concepts.end(), spans.size(), c);
      s.merge_keys.resize(s.merge_keys.size() + spans.size());
      ontology::BuildSortKeys(ranks.data(), first, spans.size(),
                              s.merge_keys.data() + first);
    } else {
      // Unfrozen enumerator: no global ranks yet; insert in the gather
      // (concept-ascending) order, which is just as correct — sorting
      // only speeds up the walk.
      for (const ontology::DeweyAddress& address : addresses_->Addresses(c)) {
        dag->InsertAddress(c, {address.data(), address.size()},
                           /*in_doc=*/true, /*in_query=*/false);
        ++merged;
        if (++inserted % kCancelPollStride == 0) {
          ECDR_RETURN_IF_ERROR(
              util::CheckCancellation(cancel_token_, deadline_, "DRC"));
        }
      }
    }
  }
  if (pool != nullptr) {
    ECDR_RETURN_IF_ERROR(
        InsertGatheredByRank(dag, /*in_doc=*/true, /*in_query=*/false));
    merged += s.merge_keys.size();
  }
  s.skeleton_merged_paths = merged;
  stats_.doc_paths_merged += merged;
  stats_.addresses_inserted += merged;
  return util::Status::Ok();
}

util::Status Drc::InsertGatheredByRank(DRadixDag* dag, bool in_doc,
                                       bool in_query) {
  // Globally rank-sorted insertion: consecutive addresses share the
  // longest possible prefixes, so the D-Radix resume path (see
  // d_radix.h) skips nearly the entire root walk of each insert.
  Scratch& s = *scratch_;
  const ontology::FlatDeweyPool* pool = addresses_->flat_pool();
  SortKeysByRank(s.merge_keys, s.merge_keys_tmp);
  const std::uint32_t* base = pool->component_data();
  // Resume hints come precomputed: the LCP of two pool addresses is the
  // minimum of rank_lcp over the rank window between them, so after the
  // first (unhinted) insertion no address is ever compared component-
  // by-component again. The windows of consecutive inserts are
  // adjacent, so the whole sweep reads rank_lcp once, sequentially.
  const std::span<const std::uint32_t> rank_lcp = pool->rank_lcp();
  constexpr std::size_t kCancelPollStride = 1024;
  std::uint32_t prev_rank = 0;
  bool have_prev = false;
  std::size_t inserted = 0;
  for (const std::uint64_t key : s.merge_keys) {
    const std::uint32_t rank = static_cast<std::uint32_t>(key >> 32);
    const std::uint32_t index = static_cast<std::uint32_t>(key);
    const ontology::AddressSpan span = s.merge_spans[index];
    const std::span<const std::uint32_t> address{base + span.offset,
                                                 span.length};
    if (have_prev && dag->resume_valid()) {
      std::uint32_t lcp = rank_lcp[prev_rank + 1];
      for (std::uint32_t r = prev_rank + 2; r <= rank; ++r) {
        lcp = std::min(lcp, rank_lcp[r]);
      }
      dag->InsertAddressResumed(s.merge_concepts[index], address, lcp,
                                in_doc, in_query);
    } else {
      dag->InsertAddress(s.merge_concepts[index], address, in_doc, in_query);
    }
    prev_rank = rank;
    have_prev = true;
    if (++inserted % kCancelPollStride == 0) {
      ECDR_RETURN_IF_ERROR(
          util::CheckCancellation(cancel_token_, deadline_, "DRC"));
    }
  }
  return util::Status::Ok();
}

util::Status Drc::BuildDocDag(std::span<const ontology::ConceptId> doc_set,
                              DRadixDag* out) {
  Scratch& s = *scratch_;
  const ontology::FlatDeweyPool* pool = addresses_->flat_pool();
  ECDR_CHECK(pool != nullptr);
  out->Reset(*ontology_);
  s.merge_spans.clear();
  s.merge_concepts.clear();
  s.merge_keys.clear();
  for (const ontology::ConceptId c : doc_set) {
    const std::span<const ontology::AddressSpan> spans = pool->spans(c);
    const std::span<const std::uint32_t> ranks = pool->ranks(c);
    const std::uint32_t first =
        static_cast<std::uint32_t>(s.merge_spans.size());
    s.merge_spans.insert(s.merge_spans.end(), spans.begin(), spans.end());
    s.merge_concepts.insert(s.merge_concepts.end(), spans.size(), c);
    s.merge_keys.resize(s.merge_keys.size() + spans.size());
    ontology::BuildSortKeys(ranks.data(), first, spans.size(),
                            s.merge_keys.data() + first);
  }
  ECDR_RETURN_IF_ERROR(
      InsertGatheredByRank(out, /*in_doc=*/true, /*in_query=*/false));
  stats_.addresses_inserted += s.merge_keys.size();
  return util::Status::Ok();
}

util::Status Drc::BuildWithDocDag(DRadixDag* dag,
                                  std::span<const ontology::ConceptId> doc,
                                  std::span<const ontology::ConceptId>
                                      query) {
  Scratch& s = *scratch_;
  // Dedup the document side first: it is both the cache key and what
  // the evaluation loops read.
  std::vector<ontology::ConceptId>& doc_set = s.doc_set;
  doc_set.assign(doc.begin(), doc.end());
  std::sort(doc_set.begin(), doc_set.end());
  doc_set.erase(std::unique(doc_set.begin(), doc_set.end()), doc_set.end());

  // The cache keys address layouts, so it dies with the ontology /
  // address-cache generation it was built against.
  const std::uint64_t generation = addresses_->cache_generation();
  if (s.doc_dag_ontology != static_cast<const void*>(ontology_) ||
      s.doc_dag_generation != generation) {
    s.doc_dags.clear();
    s.doc_dag_ontology = ontology_;
    s.doc_dag_generation = generation;
  }

  std::uint64_t hash = 14695981039346656037ull;  // FNV-1a 64.
  for (const ontology::ConceptId c : doc_set) {
    hash ^= static_cast<std::uint64_t>(c);
    hash *= 1099511628211ull;
  }
  const auto it = s.doc_dags.find(hash);
  Scratch::DocDagEntry* entry = nullptr;
  if (it != s.doc_dags.end()) {
    if (it->second->doc_set != doc_set) {
      // Two distinct documents collided on the hash: serve the call
      // through the general path rather than evicting either.
      return BuildWithSkeleton(dag, doc, query);
    }
    entry = it->second.get();
    ++stats_.doc_dag_hits;
  } else if (s.doc_dags.size() < options_.doc_dag_cache_capacity) {
    auto fresh = std::make_unique<Scratch::DocDagEntry>();
    fresh->doc_set = doc_set;
    // A cancelled build dies with `fresh`; nothing partial is cached.
    ECDR_RETURN_IF_ERROR(BuildDocDag(fresh->doc_set, &fresh->dag));
    entry = s.doc_dags.emplace(hash, std::move(fresh)).first->second.get();
    ++stats_.doc_dag_builds;
  } else {
    return BuildWithSkeleton(dag, doc, query);
  }

  // The copy overwrites whatever skeleton stood in the scratch DAG.
  s.skeleton_valid = false;
  dag->CopyFrom(entry->dag);

  // Layer the query side on top. NodeFor's concept-identity merging
  // makes copy-then-insert produce exactly the joint d+q DAG — the
  // build is insertion-order invariant (see GatherInserts) — so
  // distances are bit-identical with the other build paths.
  std::vector<ontology::ConceptId>& query_set = s.query_set;
  query_set.assign(query.begin(), query.end());
  std::sort(query_set.begin(), query_set.end());
  query_set.erase(std::unique(query_set.begin(), query_set.end()),
                  query_set.end());
  const ontology::FlatDeweyPool* pool = addresses_->flat_pool();
  const std::uint32_t* base = pool->component_data();
  std::size_t inserted = 0;
  for (const ontology::ConceptId c : query_set) {
    for (const ontology::AddressSpan span : pool->spans(c)) {
      dag->InsertAddress(c, {base + span.offset, span.length},
                         /*in_doc=*/false, /*in_query=*/true);
      ++inserted;
    }
  }
  stats_.addresses_inserted += inserted;
  return util::Status::Ok();
}

util::StatusOr<DRadixDag> Drc::BuildIndex(
    std::span<const ontology::ConceptId> doc,
    std::span<const ontology::ConceptId> query) {
  DRadixDag dag(*ontology_);
  ECDR_RETURN_IF_ERROR(BuildInto(&dag, doc, query));
  return dag;
}

util::StatusOr<std::uint64_t> Drc::DocQueryDistance(
    std::span<const ontology::ConceptId> doc,
    std::span<const ontology::ConceptId> query) {
  DRadixDag& dag = scratch_->dag;
  ECDR_RETURN_IF_ERROR(BuildInto(&dag, doc, query));
  // Sum the nearest-document distances attached to the query nodes,
  // counting each distinct query concept once (the build left the
  // deduped query side in the scratch).
  util::WallTimer eval_timer;
  std::uint64_t total = 0;
  for (ontology::ConceptId c : scratch_->query_set) {
    const DRadixDag::NodeIndex index = dag.FindNode(c);
    ECDR_CHECK_NE(index, DRadixDag::kInvalidNode);
    const std::uint32_t distance = dag.dist_to_doc(index);
    // A single-rooted ontology always connects the two sides.
    ECDR_CHECK_LT(distance, DRadixDag::kUnreachable);
    total += distance;
  }
  stats_.eval_seconds += eval_timer.ElapsedSeconds();
  return total;
}

util::StatusOr<double> Drc::DocDocDistance(
    std::span<const ontology::ConceptId> d1,
    std::span<const ontology::ConceptId> d2) {
  // Build with d2 as the "document" side and d1 as the "query" side:
  // callers sweeping one fixed document against many candidates (kNDS
  // SDS, the rankers) pass the fixed one as d1, so putting d1 on the
  // query side makes it the reusable skeleton. Eq. 3 is symmetric in
  // the labels: each d1 concept's nearest-d2 distance now comes from
  // dist_to_doc, each d2 concept's from dist_to_query. Every distance
  // is the same exact integer either way and each side still sums in
  // ascending concept order, so the result is bit-identical to the
  // historical d1-as-doc orientation.
  DRadixDag& dag = scratch_->dag;
  ECDR_RETURN_IF_ERROR(BuildInto(&dag, d2, d1));

  // Eq. 3 normalizes each side by its number of *distinct* concepts;
  // the deduped sides are already in the scratch.
  util::WallTimer eval_timer;
  const auto side_sum = [&](std::span<const ontology::ConceptId> counted,
                            bool toward_doc) {
    std::uint64_t total = 0;
    for (ontology::ConceptId c : counted) {
      const DRadixDag::NodeIndex index = dag.FindNode(c);
      ECDR_CHECK_NE(index, DRadixDag::kInvalidNode);
      const std::uint32_t distance =
          toward_doc ? dag.dist_to_doc(index) : dag.dist_to_query(index);
      ECDR_CHECK_LT(distance, DRadixDag::kUnreachable);
      total += distance;
    }
    return total;
  };

  const std::size_t size1 = scratch_->query_set.size();  // d1, deduped.
  const std::size_t size2 = scratch_->doc_set.size();    // d2, deduped.
  const std::uint64_t d1_to_d2 =
      side_sum(scratch_->query_set, /*toward_doc=*/true);
  const std::uint64_t d2_to_d1 =
      side_sum(scratch_->doc_set, /*toward_doc=*/false);
  const double result =
      static_cast<double>(d1_to_d2) / static_cast<double>(size1) +
      static_cast<double>(d2_to_d1) / static_cast<double>(size2);
  stats_.eval_seconds += eval_timer.ElapsedSeconds();
  return result;
}

util::StatusOr<double> Drc::DocQueryDistanceWeighted(
    std::span<const ontology::ConceptId> doc,
    std::span<const WeightedConcept> query) {
  // Normalize in scratch (same semantics as NormalizeWeightedConcepts,
  // minus its fresh vector).
  std::vector<WeightedConcept>& normalized = scratch_->normalized;
  normalized.assign(query.begin(), query.end());
  std::sort(normalized.begin(), normalized.end(),
            [](const WeightedConcept& a, const WeightedConcept& b) {
              if (a.concept_id != b.concept_id) {
                return a.concept_id < b.concept_id;
              }
              return a.weight > b.weight;
            });
  normalized.erase(
      std::unique(normalized.begin(), normalized.end(),
                  [](const WeightedConcept& a, const WeightedConcept& b) {
                    return a.concept_id == b.concept_id;
                  }),
      normalized.end());
  std::vector<ontology::ConceptId>& concepts = scratch_->concept_ids;
  concepts.clear();
  for (const WeightedConcept& wc : normalized) {
    concepts.push_back(wc.concept_id);
  }
  DRadixDag& dag = scratch_->dag;
  ECDR_RETURN_IF_ERROR(BuildInto(&dag, doc, concepts));
  util::WallTimer eval_timer;
  double total = 0.0;
  for (const WeightedConcept& wc : normalized) {
    const DRadixDag::NodeIndex index = dag.FindNode(wc.concept_id);
    ECDR_CHECK_NE(index, DRadixDag::kInvalidNode);
    const std::uint32_t distance = dag.dist_to_doc(index);
    ECDR_CHECK_LT(distance, DRadixDag::kUnreachable);
    total += wc.weight * static_cast<double>(distance);
  }
  stats_.eval_seconds += eval_timer.ElapsedSeconds();
  return total;
}

util::StatusOr<double> Drc::DocDocDistanceWeighted(
    std::span<const ontology::ConceptId> d1,
    std::span<const ontology::ConceptId> d2, const ConceptWeights& weights) {
  // d1 hosts the query side so it becomes the reusable skeleton across
  // a fixed-d1 sweep — same swap (and same bit-identity argument) as
  // DocDocDistance.
  DRadixDag& dag = scratch_->dag;
  ECDR_RETURN_IF_ERROR(BuildInto(&dag, d2, d1));
  util::WallTimer eval_timer;
  const auto side_sum = [&](std::span<const ontology::ConceptId> counted,
                            bool toward_doc, double* total_weight) {
    double sum = 0.0;
    *total_weight = 0.0;
    for (ontology::ConceptId c : counted) {
      const DRadixDag::NodeIndex index = dag.FindNode(c);
      ECDR_CHECK_NE(index, DRadixDag::kInvalidNode);
      const std::uint32_t distance =
          toward_doc ? dag.dist_to_doc(index) : dag.dist_to_query(index);
      ECDR_CHECK_LT(distance, DRadixDag::kUnreachable);
      const double w = weights.of(c);
      sum += w * static_cast<double>(distance);
      *total_weight += w;
    }
    return sum;
  };
  double weight1 = 0.0;
  double weight2 = 0.0;
  const double d1_to_d2 =
      side_sum(scratch_->query_set, /*toward_doc=*/true, &weight1);
  const double d2_to_d1 =
      side_sum(scratch_->doc_set, /*toward_doc=*/false, &weight2);
  if (weight1 <= 0.0 || weight2 <= 0.0) {
    return util::InvalidArgumentError(
        "documents must carry positive total weight");
  }
  const double result = d1_to_d2 / weight1 + d2_to_d1 / weight2;
  stats_.eval_seconds += eval_timer.ElapsedSeconds();
  return result;
}

std::vector<WeightedConcept> NormalizeWeightedConcepts(
    std::span<const WeightedConcept> concepts) {
  std::vector<WeightedConcept> normalized(concepts.begin(), concepts.end());
  std::sort(normalized.begin(), normalized.end(),
            [](const WeightedConcept& a, const WeightedConcept& b) {
              if (a.concept_id != b.concept_id) {
                return a.concept_id < b.concept_id;
              }
              return a.weight > b.weight;
            });
  // Duplicates keep the largest weight (expansion may reach the same
  // concept from several query terms).
  normalized.erase(
      std::unique(normalized.begin(), normalized.end(),
                  [](const WeightedConcept& a, const WeightedConcept& b) {
                    return a.concept_id == b.concept_id;
                  }),
      normalized.end());
  return normalized;
}

}  // namespace ecdr::core
