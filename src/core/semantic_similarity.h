// Alternative concept-concept semantic measures (paper Section 2 survey;
// "explore other semantic distances" is called out as future work in
// Section 7).
//
// The paper adopts the structural shortest-path metric (Rada et al.) for
// its algorithms; this module adds the other families the paper reviews
// so downstream users can compare rankings:
//   - Wu-Palmer (structure + depth):  sim = 2*depth(lcs) /
//                                           (depth(a) + depth(b) + 2*depth(lcs) adjusted)
//     using the standard formulation sim = 2*d(lcs) / (d(a) + d(b)) with
//     node depths measured from the root, and the LCS chosen to maximize
//     the score;
//   - Resnik (information content):   sim = IC(most-informative common
//     ancestor);
//   - Lin:                            sim = 2*IC(mica) / (IC(a) + IC(b)).
//
// Information content follows the corpus-based definition: IC(c) =
// -ln p(c) where p(c) is the propagated occurrence probability of c —
// occurrences of a concept count toward all its ancestors. As is
// standard practice for DAG ontologies, propagation sums along parent
// links without deduplicating diamond-shaped descendant sets; ancestors
// reachable by multiple paths are therefore weighted slightly higher.
//
// All measures are exposed uniformly as *distances* (lower = more
// similar) so they can drive the same rankers.

#ifndef ECDR_CORE_SEMANTIC_SIMILARITY_H_
#define ECDR_CORE_SEMANTIC_SIMILARITY_H_

#include <cstdint>
#include <span>
#include <vector>

#include "corpus/corpus.h"
#include "ontology/distance_oracle.h"
#include "ontology/ontology.h"
#include "util/status.h"

namespace ecdr::core {

enum class SemanticMeasure {
  kShortestPath,  // The paper's metric (valid-path edge count).
  kWuPalmer,      // 1 - sim_wp, in [0, 1].
  kResnik,        // 1 / (1 + IC(mica)).
  kLin,           // 1 - sim_lin, in [0, 1].
};

const char* SemanticMeasureName(SemanticMeasure measure);

class ConceptSimilarity {
 public:
  /// `corpus` may be null for kShortestPath / kWuPalmer; kResnik / kLin
  /// require it for concept occurrence statistics (concepts that never
  /// occur get the minimum probability, i.e. maximal IC). `pair_cache`
  /// (optional, unowned, thread-safe) memoizes the kShortestPath
  /// concept distances across instances; see
  /// ontology/concept_pair_cache.h.
  ConceptSimilarity(const ontology::Ontology& ontology,
                    const corpus::Corpus* corpus, SemanticMeasure measure,
                    ontology::ConceptPairCache* pair_cache = nullptr);

  /// Distance under the configured measure; lower means more similar.
  double Distance(ontology::ConceptId a, ontology::ConceptId b);

  /// The paper's document-document function (Eq. 3) generalized to this
  /// measure: average best-match distance in both directions.
  double DocDocDistance(std::span<const ontology::ConceptId> d1,
                        std::span<const ontology::ConceptId> d2);

  /// Information content of a concept (kResnik / kLin only).
  double InformationContent(ontology::ConceptId c) const;

 private:
  /// Common ancestors of a and b (via ancestor-map join), with their
  /// up-distances from each side.
  struct CommonAncestor {
    ontology::ConceptId concept_id;
    std::uint32_t up_a;
    std::uint32_t up_b;
  };
  std::vector<CommonAncestor> CommonAncestors(ontology::ConceptId a,
                                              ontology::ConceptId b);

  const ontology::Ontology* ontology_;
  SemanticMeasure measure_;
  ontology::DistanceOracle oracle_;
  std::vector<double> information_content_;  // Empty unless IC-based.
};

}  // namespace ecdr::core

#endif  // ECDR_CORE_SEMANTIC_SIMILARITY_H_
