// Per-concept weights for the weighted variants of the paper's distance
// functions.
//
// The inter-patient metric the paper adopts (Melton et al., Eq. 3)
// supports per-concept weights; the paper "assumed that all concepts
// have equal weights" and leaves the rest open. This module supplies the
// weighting side:
//   Ddq_w(d, q)   = sum_i w(qi) * Ddc(d, qi)
//   Ddd_w(d1, d2) = sum_{ci in d1} w(ci) * Ddc(d2, ci) / W(d1)
//                 + sum_{cj in d2} w(cj) * Ddc(d1, cj) / W(d2)
// where W(d) is the total weight of d's concepts. Uniform weights reduce
// both to the paper's Eqs. 2-3.
//
// Weights also carry the scores produced by ontology-based query
// expansion (core/query_expansion.h) into RDS ranking.

#ifndef ECDR_CORE_CONCEPT_WEIGHTS_H_
#define ECDR_CORE_CONCEPT_WEIGHTS_H_

#include <span>
#include <vector>

#include "corpus/corpus.h"
#include "ontology/ontology.h"
#include "util/macros.h"

namespace ecdr::core {

/// A query concept paired with its weight (e.g. from query expansion).
struct WeightedConcept {
  ontology::ConceptId concept_id = ontology::kInvalidConcept;
  double weight = 1.0;
};

/// Immutable weight table over all concepts of one ontology.
class ConceptWeights {
 public:
  /// All-ones weights (the paper's setting).
  static ConceptWeights Uniform(const ontology::Ontology& ontology);

  /// Information-content weights: rare, specific concepts weigh more
  /// than generic ones. Uses the same propagated-occurrence IC as
  /// core/semantic_similarity.h, shifted by +1 so no concept weighs 0.
  static ConceptWeights FromInformationContent(
      const ontology::Ontology& ontology, const corpus::Corpus& corpus);

  /// Explicit weights; must supply one non-negative value per concept.
  explicit ConceptWeights(std::vector<double> weights);

  double of(ontology::ConceptId c) const {
    ECDR_DCHECK_LT(c, weights_.size());
    return weights_[c];
  }

  /// Sum of weights over a concept set.
  double TotalOf(std::span<const ontology::ConceptId> concepts) const;

  std::size_t num_concepts() const { return weights_.size(); }

 private:
  std::vector<double> weights_;
};

}  // namespace ecdr::core

#endif  // ECDR_CORE_CONCEPT_WEIGHTS_H_
