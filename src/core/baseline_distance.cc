#include "core/baseline_distance.h"

#include <algorithm>

namespace ecdr::core {

namespace {

std::vector<ontology::ConceptId> Distinct(
    std::span<const ontology::ConceptId> concepts) {
  std::vector<ontology::ConceptId> result(concepts.begin(), concepts.end());
  std::sort(result.begin(), result.end());
  result.erase(std::unique(result.begin(), result.end()), result.end());
  return result;
}

util::Status Validate(const ontology::Ontology& ontology,
                      std::span<const ontology::ConceptId> concepts,
                      const char* label) {
  if (concepts.empty()) {
    return util::InvalidArgumentError(std::string(label) + " has no concepts");
  }
  for (ontology::ConceptId c : concepts) {
    if (!ontology.Contains(c)) {
      return util::InvalidArgumentError(std::string(label) +
                                        " references unknown concept id " +
                                        std::to_string(c));
    }
  }
  return util::Status::Ok();
}

}  // namespace

BaselineDistance::BaselineDistance(const ontology::Ontology& ontology)
    : ontology_(&ontology), oracle_(ontology) {}

void BaselineDistance::PairwiseMinima(
    std::span<const ontology::ConceptId> rows,
    std::span<const ontology::ConceptId> cols,
    std::vector<std::uint32_t>* row_min, std::vector<std::uint32_t>* col_min) {
  row_min->assign(rows.size(), ontology::kInfiniteDistance);
  col_min->assign(cols.size(), ontology::kInfiniteDistance);
  // Ancestor maps for the column side, computed once each.
  std::vector<UpMap> col_maps(cols.size());
  for (std::size_t j = 0; j < cols.size(); ++j) {
    oracle_.UpDistances(cols[j], &col_maps[j]);
  }
  UpMap row_map;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    oracle_.UpDistances(rows[i], &row_map);
    for (std::size_t j = 0; j < cols.size(); ++j) {
      // D(rows[i], cols[j]) = min over common ancestors of the up-
      // distance sum.
      std::uint32_t best = ontology::kInfiniteDistance;
      const UpMap& small =
          row_map.size() <= col_maps[j].size() ? row_map : col_maps[j];
      const UpMap& large =
          row_map.size() <= col_maps[j].size() ? col_maps[j] : row_map;
      for (const auto& [ancestor, up_small] : small) {
        const auto it = large.find(ancestor);
        if (it != large.end()) best = std::min(best, up_small + it->second);
      }
      (*row_min)[i] = std::min((*row_min)[i], best);
      (*col_min)[j] = std::min((*col_min)[j], best);
    }
  }
}

util::StatusOr<std::uint64_t> BaselineDistance::DocQueryDistance(
    std::span<const ontology::ConceptId> doc,
    std::span<const ontology::ConceptId> query) {
  ECDR_RETURN_IF_ERROR(Validate(*ontology_, doc, "document"));
  ECDR_RETURN_IF_ERROR(Validate(*ontology_, query, "query"));
  const std::vector<ontology::ConceptId> doc_set = Distinct(doc);
  const std::vector<ontology::ConceptId> query_set = Distinct(query);
  std::vector<std::uint32_t> query_min;
  std::vector<std::uint32_t> doc_min;
  PairwiseMinima(query_set, doc_set, &query_min, &doc_min);
  std::uint64_t total = 0;
  for (std::uint32_t m : query_min) {
    ECDR_CHECK_NE(m, ontology::kInfiniteDistance);
    total += m;
  }
  return total;
}

util::StatusOr<double> BaselineDistance::DocDocDistance(
    std::span<const ontology::ConceptId> d1,
    std::span<const ontology::ConceptId> d2) {
  ECDR_RETURN_IF_ERROR(Validate(*ontology_, d1, "document d1"));
  ECDR_RETURN_IF_ERROR(Validate(*ontology_, d2, "document d2"));
  const std::vector<ontology::ConceptId> set1 = Distinct(d1);
  const std::vector<ontology::ConceptId> set2 = Distinct(d2);
  std::vector<std::uint32_t> min1;
  std::vector<std::uint32_t> min2;
  PairwiseMinima(set1, set2, &min1, &min2);
  std::uint64_t sum1 = 0;
  for (std::uint32_t m : min1) {
    ECDR_CHECK_NE(m, ontology::kInfiniteDistance);
    sum1 += m;
  }
  std::uint64_t sum2 = 0;
  for (std::uint32_t m : min2) {
    ECDR_CHECK_NE(m, ontology::kInfiniteDistance);
    sum2 += m;
  }
  return static_cast<double>(sum1) / static_cast<double>(set1.size()) +
         static_cast<double>(sum2) / static_cast<double>(set2.size());
}

}  // namespace ecdr::core
