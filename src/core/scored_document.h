// Result type shared by all rankers (kNDS, exhaustive baseline, TA).

#ifndef ECDR_CORE_SCORED_DOCUMENT_H_
#define ECDR_CORE_SCORED_DOCUMENT_H_

#include "corpus/document.h"

namespace ecdr::core {

/// A document with its semantic distance from the query. Rankers return
/// results sorted ascending (closest first).
struct ScoredDocument {
  corpus::DocId id = corpus::kInvalidDoc;
  double distance = 0.0;

  /// Anytime contract (DESIGN.md "Deadlines, degradation, and overload"):
  /// 0 for a verified exact distance. For unverified results returned
  /// from a truncated search, `distance` is a proven lower bound and the
  /// true distance lies in [distance, distance + error_bound].
  double error_bound = 0.0;
};

/// Total order used everywhere: smaller distance first, doc id breaking
/// ties, so every ranker is deterministic and directly comparable.
inline bool ScoredBefore(const ScoredDocument& a, const ScoredDocument& b) {
  if (a.distance != b.distance) return a.distance < b.distance;
  return a.id < b.id;
}

}  // namespace ecdr::core

#endif  // ECDR_CORE_SCORED_DOCUMENT_H_
