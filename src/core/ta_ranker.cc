#include "core/ta_ranker.h"

#include <algorithm>
#include <unordered_set>

#include "util/timer.h"

namespace ecdr::core {

TaRanker::TaRanker(const corpus::Corpus& corpus,
                   const index::PrecomputedPostings& postings)
    : corpus_(&corpus), postings_(&postings) {}

util::StatusOr<std::vector<ScoredDocument>> TaRanker::TopKRelevant(
    std::span<const ontology::ConceptId> query, std::uint32_t k) {
  last_stats_ = Stats();
  util::WallTimer timer;
  std::vector<ontology::ConceptId> concepts(query.begin(), query.end());
  std::sort(concepts.begin(), concepts.end());
  concepts.erase(std::unique(concepts.begin(), concepts.end()),
                 concepts.end());
  if (concepts.empty()) {
    return util::InvalidArgumentError("query has no concepts");
  }
  for (ontology::ConceptId c : concepts) {
    if (!corpus_->ontology().Contains(c)) {
      return util::InvalidArgumentError("query references unknown concept id " +
                                        std::to_string(c));
    }
  }
  if (k == 0) return std::vector<ScoredDocument>{};

  std::vector<std::span<const index::PrecomputedPostings::Entry>> lists;
  lists.reserve(concepts.size());
  for (ontology::ConceptId c : concepts) {
    lists.push_back(postings_->SortedPostings(c));
  }

  std::vector<ScoredDocument> heap;  // Max-heap: worst kept at front.
  std::unordered_set<corpus::DocId> seen;
  std::vector<std::uint32_t> last_seen(concepts.size(), 0);
  std::size_t depth = 0;
  bool exhausted = false;
  while (!exhausted) {
    exhausted = true;
    // One round of sorted access: advance one position in each list.
    for (std::size_t i = 0; i < lists.size(); ++i) {
      if (depth >= lists[i].size()) continue;
      exhausted = false;
      const auto& entry = lists[i][depth];
      ++last_stats_.sorted_accesses;
      last_seen[i] = entry.distance;
      if (!seen.insert(entry.doc).second) continue;
      // Random access on the remaining lists for the exact aggregate.
      std::uint64_t total = entry.distance;
      for (std::size_t j = 0; j < concepts.size(); ++j) {
        if (j == i) continue;
        ++last_stats_.random_accesses;
        total += postings_->Distance(concepts[j], entry.doc);
      }
      ++last_stats_.documents_scored;
      const ScoredDocument scored{entry.doc, static_cast<double>(total)};
      if (heap.size() < k) {
        heap.push_back(scored);
        std::push_heap(heap.begin(), heap.end(), ScoredBefore);
      } else if (ScoredBefore(scored, heap.front())) {
        std::pop_heap(heap.begin(), heap.end(), ScoredBefore);
        heap.back() = scored;
        std::push_heap(heap.begin(), heap.end(), ScoredBefore);
      }
    }
    ++depth;
    // Threshold test: no unseen document can aggregate below the sum of
    // the distances at the current sorted-access positions.
    std::uint64_t threshold = 0;
    for (std::uint32_t d : last_seen) threshold += d;
    if (heap.size() == k &&
        static_cast<double>(threshold) >= heap.front().distance) {
      break;
    }
  }
  std::sort(heap.begin(), heap.end(), ScoredBefore);
  last_stats_.seconds = timer.ElapsedSeconds();
  return heap;
}

}  // namespace ecdr::core
