#include "core/ta_ranker.h"

#include <algorithm>
#include <unordered_set>

#include "util/timer.h"

namespace ecdr::core {

TaRanker::TaRanker(const corpus::Corpus& corpus,
                   const index::PrecomputedPostings& postings,
                   Options options)
    : corpus_(&corpus), postings_(&postings), options_(options) {}

TaRanker::TaRanker(const corpus::Corpus& corpus,
                   const index::BlockPostings& postings, Options options)
    : corpus_(&corpus), block_postings_(&postings), options_(options) {}

util::StatusOr<std::vector<ScoredDocument>> TaRanker::TopKRelevant(
    std::span<const ontology::ConceptId> query, std::uint32_t k) {
  last_stats_ = Stats();
  util::WallTimer timer;
  std::vector<ontology::ConceptId>& concepts = scratch_.concepts;
  concepts.assign(query.begin(), query.end());
  std::sort(concepts.begin(), concepts.end());
  concepts.erase(std::unique(concepts.begin(), concepts.end()),
                 concepts.end());
  if (concepts.empty()) {
    return util::InvalidArgumentError("query has no concepts");
  }
  for (ontology::ConceptId c : concepts) {
    if (!corpus_->ontology().Contains(c)) {
      return util::InvalidArgumentError("query references unknown concept id " +
                                        std::to_string(c));
    }
  }
  if (k == 0) return std::vector<ScoredDocument>{};

  const std::size_t requested = options_.num_threads == 0
                                    ? util::ThreadPool::DefaultThreads()
                                    : options_.num_threads;
  util::ThreadPool* pool = options_.pool;
  if (requested > 1 && pool == nullptr && concepts.size() > 1) {
    if (owned_pool_ == nullptr) {
      owned_pool_ = std::make_unique<util::ThreadPool>(requested - 1);
    }
    pool = owned_pool_.get();
  }
  const bool parallel = requested > 1 && pool != nullptr;

  std::vector<ScoredDocument>& heap = scratch_.heap;  // worst at front
  heap.clear();
  const auto push_scored = [&](const ScoredDocument& scored) {
    if (heap.size() < k) {
      heap.push_back(scored);
      std::push_heap(heap.begin(), heap.end(), ScoredBefore);
    } else if (ScoredBefore(scored, heap.front())) {
      std::pop_heap(heap.begin(), heap.end(), ScoredBefore);
      heap.back() = scored;
      std::push_heap(heap.begin(), heap.end(), ScoredBefore);
    }
  };
  // Cross-query Ddq memo: TA's aggregate for `doc` IS DocQueryDistance
  // (doc, concepts) — exact integer sums below 2^53 — so it shares
  // entries with the other RDS rankers. A hit replaces the document's
  // random accesses.
  const QuerySig memo_sig = SignatureOfConcepts(concepts, /*sds=*/false);
  DdqMemo* memo =
      options_.ddq_memo != nullptr && options_.ddq_memo->enabled()
          ? options_.ddq_memo
          : nullptr;

  const auto cancelled = [&] {
    return (options_.cancel_token != nullptr &&
            options_.cancel_token->cancelled()) ||
           options_.deadline.Expired();
  };

  using Discovery = Scratch::Discovery;
  std::vector<Discovery>& round = scratch_.round;
  std::vector<std::uint64_t>& round_totals = scratch_.round_totals;
  std::vector<std::uint8_t>& round_hits = scratch_.round_hits;
  // Scores the round's discoveries with `aggregate(d, lane, &hit)`
  // (exact aggregates; order-independent, so sharding them across
  // lanes cannot change the result), then folds stats and pushes.
  const auto score_round = [&](const auto& aggregate) {
    round_totals.assign(round.size(), 0);
    round_hits.assign(round.size(), 0);
    if (parallel && round.size() > 1) {
      pool->ParallelFor(round.size(), [&](std::size_t i, std::size_t lane) {
        bool hit = false;
        round_totals[i] = aggregate(round[i], lane, &hit);
        round_hits[i] = hit ? 1 : 0;
      });
    } else {
      for (std::size_t i = 0; i < round.size(); ++i) {
        bool hit = false;
        round_totals[i] = aggregate(round[i], std::size_t{0}, &hit);
        round_hits[i] = hit ? 1 : 0;
      }
    }
    for (std::size_t i = 0; i < round.size(); ++i) {
      if (round_hits[i]) {
        ++last_stats_.ddq_memo_hits;
      } else {
        if (memo != nullptr) ++last_stats_.ddq_memo_misses;
        last_stats_.random_accesses += concepts.size() - 1;
      }
      ++last_stats_.documents_scored;
      push_scored(
          ScoredDocument{round[i].doc, static_cast<double>(round_totals[i])});
    }
  };

  if (block_postings_ != nullptr) {
    // ---- Compressed block-max sweep ----
    // The block partition is doc-aligned across concepts, so block b
    // covers the same doc range in every query list and
    // bounds[b] = sum_i min_distance_i(b) lower-bounds every document
    // of the range. Visiting ranges in ascending bound order is
    // sorted access at block granularity; the first range whose bound
    // strictly exceeds the k-th best aggregate retires all remaining
    // blocks un-decoded.
    const std::size_t m = concepts.size();
    last_stats_.bytes_per_doc = block_postings_->bytes_per_doc();
    std::vector<std::span<const index::BlockMeta>>& metas = scratch_.metas;
    metas.clear();
    for (ontology::ConceptId c : concepts) {
      metas.push_back(block_postings_->blocks(c));
    }
    const std::size_t nblocks = metas[0].size();
    std::vector<std::uint64_t>& bounds = scratch_.block_bounds;
    bounds.resize(nblocks);
    for (std::size_t b = 0; b < nblocks; ++b) {
      std::uint64_t sum = 0;
      for (std::size_t i = 0; i < m; ++i) sum += metas[i][b].min_distance;
      bounds[b] = sum;
    }
    std::vector<std::uint32_t>& order = scratch_.block_order;
    order.resize(nblocks);
    for (std::size_t b = 0; b < nblocks; ++b) {
      order[b] = static_cast<std::uint32_t>(b);
    }
    std::sort(order.begin(), order.end(),
              [&bounds](std::uint32_t a, std::uint32_t b) {
                if (bounds[a] != bounds[b]) return bounds[a] < bounds[b];
                return a < b;
              });
    std::vector<std::vector<index::BlockPostingEntry>>& rows =
        scratch_.block_rows;
    rows.resize(m);

    std::size_t visited = 0;
    for (std::size_t pos = 0; pos < nblocks; ++pos) {
      // One poll per range: a range is the smallest unit whose
      // omission keeps the already-pushed aggregates exact.
      if (cancelled()) {
        last_stats_.truncated = true;
        break;
      }
      const std::uint32_t b = order[pos];
      if (heap.size() == k &&
          static_cast<double>(bounds[b]) > heap.front().distance) {
        break;  // every later range has a bound at least this large
      }
      for (std::size_t i = 0; i < m; ++i) {
        const index::BlockMeta& meta = metas[i][b];
        ECDR_CHECK(index::blockcodec::DecodeBlock(
            block_postings_->payload(meta), meta, &rows[i]));
      }
      ++visited;
      last_stats_.decoded_blocks += m;
      const std::uint32_t count = metas[0][b].count;
      for (std::uint32_t j = 0; j < count; ++j) {
        const corpus::DocId doc = rows[0][j].doc;
        std::uint64_t total = 0;
        double cached = 0.0;
        if (memo != nullptr && memo->Get(memo_sig, doc, &cached)) {
          total = static_cast<std::uint64_t>(cached);
          ++last_stats_.ddq_memo_hits;
        } else {
          for (std::size_t i = 0; i < m; ++i) {
            ECDR_DCHECK_EQ(rows[i][j].doc, doc);
            total += rows[i][j].distance;
          }
          if (memo != nullptr) {
            memo->Put(memo_sig, doc, static_cast<double>(total));
            ++last_stats_.ddq_memo_misses;
          }
        }
        last_stats_.sorted_accesses += m;
        ++last_stats_.documents_scored;
        push_scored(ScoredDocument{doc, static_cast<double>(total)});
      }
    }
    last_stats_.skipped_blocks = (nblocks - visited) * m;
  } else {
    // ---- Dense-table traversal (the referee) ----
    if (corpus_->num_documents() > 0) {
      last_stats_.bytes_per_doc =
          static_cast<double>(postings_->memory_bytes()) /
          corpus_->num_documents();
    }
    std::vector<std::span<const index::PrecomputedPostings::Entry>>& lists =
        scratch_.lists;
    lists.clear();
    lists.reserve(concepts.size());
    for (ontology::ConceptId c : concepts) {
      lists.push_back(postings_->SortedPostings(c));
    }
    const auto aggregate = [&](const Discovery& d, std::size_t /*lane*/,
                               bool* memo_hit) {
      if (memo != nullptr) {
        double cached = 0.0;
        if (memo->Get(memo_sig, d.doc, &cached)) {
          *memo_hit = true;
          return static_cast<std::uint64_t>(cached);
        }
      }
      *memo_hit = false;
      std::uint64_t total = d.distance;
      for (std::size_t j = 0; j < concepts.size(); ++j) {
        if (j == d.list) continue;
        total += postings_->Distance(concepts[j], d.doc);
      }
      if (memo != nullptr) {
        memo->Put(memo_sig, d.doc, static_cast<double>(total));
      }
      return total;
    };

    std::unordered_set<corpus::DocId>& seen = scratch_.seen;
    seen.clear();
    std::vector<std::uint32_t>& last_seen = scratch_.last_seen;
    last_seen.assign(concepts.size(), 0);
    std::size_t depth = 0;
    bool exhausted = false;
    while (!exhausted) {
      // One poll per round: a round is the smallest unit whose omission
      // keeps the already-pushed aggregates exact.
      if (cancelled()) {
        last_stats_.truncated = true;
        break;
      }
      exhausted = true;
      // One round of sorted access: advance one position in each list.
      round.clear();
      for (std::size_t i = 0; i < lists.size(); ++i) {
        if (depth >= lists[i].size()) continue;
        exhausted = false;
        const auto& entry = lists[i][depth];
        ++last_stats_.sorted_accesses;
        last_seen[i] = entry.distance;
        if (!seen.insert(entry.doc).second) continue;
        round.push_back(Discovery{entry.doc, entry.distance, i});
      }
      score_round(aggregate);
      ++depth;
      // Threshold test: no unseen document can aggregate below the sum
      // of the distances at the current sorted-access positions, and
      // none can beat the k-th best under (distance, id) once that sum
      // strictly exceeds it.
      std::uint64_t threshold = 0;
      for (std::uint32_t d : last_seen) threshold += d;
      if (heap.size() == k &&
          static_cast<double>(threshold) > heap.front().distance) {
        break;
      }
    }
  }
  std::sort(heap.begin(), heap.end(), ScoredBefore);
  last_stats_.seconds = timer.ElapsedSeconds();
  return heap;
}

}  // namespace ecdr::core
