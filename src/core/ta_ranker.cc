#include "core/ta_ranker.h"

#include <algorithm>
#include <unordered_set>

#include "util/timer.h"

namespace ecdr::core {

TaRanker::TaRanker(const corpus::Corpus& corpus,
                   const index::PrecomputedPostings& postings,
                   Options options)
    : corpus_(&corpus), postings_(&postings), options_(options) {}

util::StatusOr<std::vector<ScoredDocument>> TaRanker::TopKRelevant(
    std::span<const ontology::ConceptId> query, std::uint32_t k) {
  last_stats_ = Stats();
  util::WallTimer timer;
  std::vector<ontology::ConceptId>& concepts = scratch_.concepts;
  concepts.assign(query.begin(), query.end());
  std::sort(concepts.begin(), concepts.end());
  concepts.erase(std::unique(concepts.begin(), concepts.end()),
                 concepts.end());
  if (concepts.empty()) {
    return util::InvalidArgumentError("query has no concepts");
  }
  for (ontology::ConceptId c : concepts) {
    if (!corpus_->ontology().Contains(c)) {
      return util::InvalidArgumentError("query references unknown concept id " +
                                        std::to_string(c));
    }
  }
  if (k == 0) return std::vector<ScoredDocument>{};

  std::vector<std::span<const index::PrecomputedPostings::Entry>>& lists =
      scratch_.lists;
  lists.clear();
  lists.reserve(concepts.size());
  for (ontology::ConceptId c : concepts) {
    lists.push_back(postings_->SortedPostings(c));
  }

  const std::size_t requested = options_.num_threads == 0
                                    ? util::ThreadPool::DefaultThreads()
                                    : options_.num_threads;
  util::ThreadPool* pool = options_.pool;
  if (requested > 1 && pool == nullptr && concepts.size() > 1) {
    if (owned_pool_ == nullptr) {
      owned_pool_ = std::make_unique<util::ThreadPool>(requested - 1);
    }
    pool = owned_pool_.get();
  }
  const bool parallel = requested > 1 && pool != nullptr;

  std::vector<ScoredDocument> heap;  // Max-heap: worst kept at front.
  const auto push_scored = [&](const ScoredDocument& scored) {
    if (heap.size() < k) {
      heap.push_back(scored);
      std::push_heap(heap.begin(), heap.end(), ScoredBefore);
    } else if (ScoredBefore(scored, heap.front())) {
      std::pop_heap(heap.begin(), heap.end(), ScoredBefore);
      heap.back() = scored;
      std::push_heap(heap.begin(), heap.end(), ScoredBefore);
    }
  };
  // Cross-query Ddq memo: TA's aggregate for `doc` IS DocQueryDistance
  // (doc, concepts) — exact integer sums below 2^53 — so it shares
  // entries with the other RDS rankers. A hit replaces the document's
  // random accesses.
  const QuerySig memo_sig = SignatureOfConcepts(concepts, /*sds=*/false);
  DdqMemo* memo =
      options_.ddq_memo != nullptr && options_.ddq_memo->enabled()
          ? options_.ddq_memo
          : nullptr;

  // Aggregates one discovery: the sorted-access distance from the list
  // that surfaced the document plus random accesses on the other lists.
  // Read-only against the postings, so discoveries of one round can be
  // scored concurrently; the round structure itself (sorted access,
  // threshold) stays serial. `*memo_hit` reports whether the memo
  // answered (stats are folded in serially after the round).
  using Discovery = Scratch::Discovery;
  const auto aggregate = [&](const Discovery& d, bool* memo_hit) {
    if (memo != nullptr) {
      double cached = 0.0;
      if (memo->Get(memo_sig, d.doc, &cached)) {
        *memo_hit = true;
        return static_cast<std::uint64_t>(cached);
      }
    }
    *memo_hit = false;
    std::uint64_t total = d.distance;
    for (std::size_t j = 0; j < concepts.size(); ++j) {
      if (j == d.list) continue;
      total += postings_->Distance(concepts[j], d.doc);
    }
    if (memo != nullptr) {
      memo->Put(memo_sig, d.doc, static_cast<double>(total));
    }
    return total;
  };

  std::unordered_set<corpus::DocId>& seen = scratch_.seen;
  seen.clear();
  std::vector<std::uint32_t>& last_seen = scratch_.last_seen;
  last_seen.assign(concepts.size(), 0);
  std::vector<Discovery>& round = scratch_.round;
  std::vector<std::uint64_t>& round_totals = scratch_.round_totals;
  std::vector<std::uint8_t>& round_hits = scratch_.round_hits;
  std::size_t depth = 0;
  bool exhausted = false;
  while (!exhausted) {
    // One poll per round: a round is the smallest unit whose omission
    // keeps the already-pushed aggregates exact.
    if ((options_.cancel_token != nullptr &&
         options_.cancel_token->cancelled()) ||
        options_.deadline.Expired()) {
      last_stats_.truncated = true;
      break;
    }
    exhausted = true;
    // One round of sorted access: advance one position in each list.
    round.clear();
    for (std::size_t i = 0; i < lists.size(); ++i) {
      if (depth >= lists[i].size()) continue;
      exhausted = false;
      const auto& entry = lists[i][depth];
      ++last_stats_.sorted_accesses;
      last_seen[i] = entry.distance;
      if (!seen.insert(entry.doc).second) continue;
      round.push_back(Discovery{entry.doc, entry.distance, i});
    }
    // Score the round's discoveries (exact aggregates; order-independent,
    // so sharding them across lanes cannot change the result).
    round_totals.assign(round.size(), 0);
    round_hits.assign(round.size(), 0);
    if (parallel && round.size() > 1) {
      pool->ParallelFor(round.size(), [&](std::size_t i, std::size_t) {
        bool hit = false;
        round_totals[i] = aggregate(round[i], &hit);
        round_hits[i] = hit ? 1 : 0;
      });
    } else {
      for (std::size_t i = 0; i < round.size(); ++i) {
        bool hit = false;
        round_totals[i] = aggregate(round[i], &hit);
        round_hits[i] = hit ? 1 : 0;
      }
    }
    for (std::size_t i = 0; i < round.size(); ++i) {
      if (round_hits[i]) {
        ++last_stats_.ddq_memo_hits;
      } else {
        if (memo != nullptr) ++last_stats_.ddq_memo_misses;
        last_stats_.random_accesses += concepts.size() - 1;
      }
      ++last_stats_.documents_scored;
      push_scored(
          ScoredDocument{round[i].doc, static_cast<double>(round_totals[i])});
    }
    ++depth;
    // Threshold test: no unseen document can aggregate below the sum of
    // the distances at the current sorted-access positions.
    std::uint64_t threshold = 0;
    for (std::uint32_t d : last_seen) threshold += d;
    if (heap.size() == k &&
        static_cast<double>(threshold) >= heap.front().distance) {
      break;
    }
  }
  std::sort(heap.begin(), heap.end(), ScoredBefore);
  last_stats_.seconds = timer.ElapsedSeconds();
  return heap;
}

}  // namespace ecdr::core
