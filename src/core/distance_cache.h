// Per-engine memo of exact document-query distances.
//
// kNDS's dominant cost once the error gate fires is the exact DRC run
// per examined document (paper Figs. 6-7). Real query logs re-issue the
// same queries against mostly the same corpus, so an engine that
// remembers Ddq(d, q) for the (canonical query, document) pairs it has
// already paid for can answer warm queries almost traversal-only. The
// memo stores exactly the double DRC returned, so a hit is bit-identical
// to a recomputation and cached searches return the same results as
// uncached ones (asserted by tests/differential_test.cc).
//
// Keys: a 128-bit canonical query signature (mode tag + sorted distinct
// concept ids, plus weights for weighted RDS) and the document id.
// Queries are sets, so permutations and duplicates of the same concepts
// share one signature. SDS signatures hash the query document's concept
// set; weighted SDS is not memoized (its value depends on the full
// per-concept weight table).
//
// Invalidation: the ontology is immutable, so signatures never go
// stale; documents can change (publishing a snapshot bumps the engine
// epoch and calls InvalidateDocument for each new id). Each document
// carries a version; keys embed the version at insertion, so
// invalidated entries simply stop matching and age out of the LRU —
// no scan, and the concept-pair cache is never flushed. Epochs are
// snapshot-scoped: EngineSnapshot::ddq_epoch records the epoch its
// generation was published at, so entries written at or before it
// cover every document that generation can see.
//
// Thread safety: fully thread-safe (sharded LRU + a reader/writer lock
// on the version table); one memo is shared by every concurrent search
// lane of an engine.

#ifndef ECDR_CORE_DISTANCE_CACHE_H_
#define ECDR_CORE_DISTANCE_CACHE_H_

#include <atomic>
#include <cstdint>
#include <shared_mutex>
#include <span>
#include <unordered_map>

#include "core/concept_weights.h"
#include "corpus/document.h"
#include "util/lru_cache.h"
#include "util/stats.h"

namespace ecdr::core {

/// Capacity / enable knobs for the engine-level caches, plumbed through
/// KndsOptions and RankingEngine construction.
struct CacheOptions {
  /// Ddq memo entries ((query signature, document) pairs). 0 disables.
  std::size_t ddq_capacity = 1 << 16;
  bool enable_ddq_memo = true;

  /// Concept-pair distance cache entries (see
  /// ontology/concept_pair_cache.h). 0 disables.
  std::size_t concept_pair_capacity = 1 << 20;
  bool enable_concept_pair_cache = true;

  /// Lock granularity of the Ddq memo.
  std::size_t num_shards = 16;

  std::size_t effective_ddq_capacity() const {
    return enable_ddq_memo ? ddq_capacity : 0;
  }
  std::size_t effective_concept_pair_capacity() const {
    return enable_concept_pair_cache ? concept_pair_capacity : 0;
  }
};

/// Canonical 128-bit query signature. Invalid signatures (default) make
/// every memo call a bypass, so non-memoizable search modes keep the
/// unconditional call shape.
struct QuerySig {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;
  bool valid = false;
};

/// Signature of an unweighted concept-set query. `concepts` must be
/// sorted and distinct (the canonical form every ranker already
/// computes). `sds` separates the RDS Ddq domain from the SDS Ddd
/// domain — the same concept set yields different distances there.
QuerySig SignatureOfConcepts(std::span<const ontology::ConceptId> concepts,
                             bool sds);

/// Signature of a weighted RDS query; `concepts` must be normalized
/// (sorted, distinct, via NormalizeWeightedConcepts).
QuerySig SignatureOfWeighted(std::span<const WeightedConcept> concepts);

/// Mixes `salt` into a signature, partitioning the memo keyspace — the
/// engine salts with the ontology structural hash so entries cached
/// under one ontology version never answer a query on another. Invalid
/// signatures stay invalid; salt 0 is the identity.
inline QuerySig SaltSignature(QuerySig sig, std::uint64_t salt) {
  if (sig.valid && salt != 0) {
    sig.lo ^= salt;
    sig.hi ^= salt * 0x9E3779B97F4A7C15ull;
  }
  return sig;
}

class DdqMemo {
 public:
  explicit DdqMemo(const CacheOptions& options = {});

  /// True (filling *value) on a fresh hit. Always false for invalid
  /// signatures, disabled memos, and entries invalidated since
  /// insertion.
  bool Get(const QuerySig& sig, corpus::DocId doc, double* value);

  /// Records the exact distance; dropped for invalid signatures.
  void Put(const QuerySig& sig, corpus::DocId doc, double value);

  /// Invalidates every entry of `doc` (version bump — stale keys stop
  /// matching and age out of the LRU) and advances the epoch.
  void InvalidateDocument(corpus::DocId doc);

  /// Count of InvalidateDocument calls; the snapshot builder bumps it
  /// once per published document and stamps the resulting value into
  /// the generation (EngineSnapshot::ddq_epoch).
  std::uint64_t epoch() const {
    return epoch_.load(std::memory_order_acquire);
  }

  util::CacheCounters counters() const { return cache_.counters(); }
  std::size_t size() const { return cache_.size(); }
  bool enabled() const { return cache_.capacity() > 0; }
  void Clear() { cache_.Clear(); }

 private:
  struct Key {
    std::uint64_t lo = 0;
    std::uint64_t hi = 0;
    std::uint64_t doc_and_version = 0;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& key) const {
      std::uint64_t h = key.lo;
      h = (h ^ (key.hi + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2)));
      h = (h ^ (key.doc_and_version + 0x9E3779B97F4A7C15ull + (h << 6) +
                (h >> 2)));
      return static_cast<std::size_t>(h);
    }
  };

  Key KeyOf(const QuerySig& sig, corpus::DocId doc);

  util::ShardedLruCache<Key, double, KeyHash> cache_;
  std::atomic<std::uint64_t> epoch_{0};
  // Read-mostly: every lookup reads a version, only invalidation writes.
  mutable std::shared_mutex version_mutex_;
  std::unordered_map<corpus::DocId, std::uint32_t> doc_versions_;
};

}  // namespace ecdr::core

#endif  // ECDR_CORE_DISTANCE_CACHE_H_
