// Threshold Algorithm baseline for RDS (Fagin et al., discussed in paper
// Sections 4.1 / 5.1).
//
// Uses the offline PrecomputedPostings: for each query concept, a
// postings list of (doc, Ddc) sorted ascending by distance supports
// sorted access; random access resolves a document's distance on the
// other lists. TA stops once the threshold — the sum of the last
// distances seen under sorted access — reaches the current k-th best
// aggregate. The paper rules TA out for SDS (the bidirectional Eq. 3
// breaks the model) and out of its experiments for space reasons; we
// implement it for RDS so bench_ablation_ta can measure the tradeoff.
//
// Sharding note: PrecomputedPostings is a whole-corpus offline build
// (distance-sorted lists cannot be merged shard-wise without
// re-sorting), so TaRanker runs against one corpus generation — pin an
// EngineSnapshot and build the postings over snapshot->corpus; the
// snapshot keeps that generation alive for the ranker's lifetime.

#ifndef ECDR_CORE_TA_RANKER_H_
#define ECDR_CORE_TA_RANKER_H_

#include <cstdint>
#include <memory>
#include <span>
#include <unordered_set>
#include <vector>

#include "core/distance_cache.h"
#include "core/scored_document.h"
#include "corpus/corpus.h"
#include "index/precomputed_postings.h"
#include "util/deadline.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace ecdr::core {

struct TaRankerOptions {
  /// Lanes for the per-round random accesses (aggregating each newly
  /// seen document across the other postings lists — TA's dominant
  /// cost for multi-concept queries). Sorted access stays serial: the
  /// round structure and threshold are inherently sequential. 0 =
  /// hardware concurrency, 1 = serial; results are identical at any
  /// lane count (aggregates are exact lookups).
  std::size_t num_threads = 0;

  /// Optional shared worker pool; when null and the effective lane
  /// count exceeds 1, a private pool is created lazily.
  util::ThreadPool* pool = nullptr;

  /// Optional shared Ddq memo (unowned, thread-safe). TA aggregates are
  /// exact integer Ddq sums (< 2^53), so entries are interchangeable
  /// with the double-valued RDS distances Knds / ExhaustiveRanker
  /// store; a hit skips the document's random accesses entirely.
  DdqMemo* ddq_memo = nullptr;

  /// Cooperative cancellation, polled once per sorted-access round. On a
  /// stop the ranker returns the best k of the documents aggregated so
  /// far (each aggregate exact, but the threshold guarantee has not been
  /// reached) and sets Stats::truncated. `cancel_token` may be null; the
  /// default deadline never expires.
  util::Deadline deadline;
  const util::CancelToken* cancel_token = nullptr;
};

class TaRanker {
 public:
  using Options = TaRankerOptions;

  struct Stats {
    std::uint64_t sorted_accesses = 0;
    std::uint64_t random_accesses = 0;
    std::uint64_t documents_scored = 0;
    std::uint64_t ddq_memo_hits = 0;
    std::uint64_t ddq_memo_misses = 0;
    bool truncated = false;  // deadline/cancel stopped the rounds early
    double seconds = 0.0;
  };

  TaRanker(const corpus::Corpus& corpus,
           const index::PrecomputedPostings& postings, Options options = {});

  /// RDS top-k, ascending by (distance, id) — same contract as the other
  /// rankers.
  util::StatusOr<std::vector<ScoredDocument>> TopKRelevant(
      std::span<const ontology::ConceptId> query, std::uint32_t k);

  const Stats& last_stats() const { return last_stats_; }

 private:
  const corpus::Corpus* corpus_;
  const index::PrecomputedPostings* postings_;
  Options options_;
  Stats last_stats_;
  std::unique_ptr<util::ThreadPool> owned_pool_;

  // Per-call working memory, hoisted so repeated queries on one ranker
  // reuse capacity instead of reallocating every round (TaRanker is
  // single-caller like Drc; it was never thread-safe). Contents are
  // rebuilt from scratch by each TopKRelevant call.
  struct Scratch {
    std::vector<ontology::ConceptId> concepts;
    std::vector<std::span<const index::PrecomputedPostings::Entry>> lists;
    std::unordered_set<corpus::DocId> seen;
    std::vector<std::uint32_t> last_seen;
    struct Discovery {
      corpus::DocId doc;
      std::uint32_t distance;  // From the discovering list.
      std::size_t list;
    };
    std::vector<Discovery> round;
    std::vector<std::uint64_t> round_totals;
    std::vector<std::uint8_t> round_hits;
  };
  Scratch scratch_;
};

}  // namespace ecdr::core

#endif  // ECDR_CORE_TA_RANKER_H_
