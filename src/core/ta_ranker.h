// Threshold Algorithm baseline for RDS (Fagin et al., discussed in paper
// Sections 4.1 / 5.1).
//
// Uses the offline PrecomputedPostings: for each query concept, a
// postings list of (doc, Ddc) sorted ascending by distance supports
// sorted access; random access resolves a document's distance on the
// other lists. TA stops once the threshold — the sum of the last
// distances seen under sorted access — reaches the current k-th best
// aggregate. The paper rules TA out for SDS (the bidirectional Eq. 3
// breaks the model) and out of its experiments for space reasons; we
// implement it for RDS so bench_ablation_ta can measure the tradeoff.

#ifndef ECDR_CORE_TA_RANKER_H_
#define ECDR_CORE_TA_RANKER_H_

#include <cstdint>
#include <span>
#include <vector>

#include "core/scored_document.h"
#include "corpus/corpus.h"
#include "index/precomputed_postings.h"
#include "util/status.h"

namespace ecdr::core {

class TaRanker {
 public:
  struct Stats {
    std::uint64_t sorted_accesses = 0;
    std::uint64_t random_accesses = 0;
    std::uint64_t documents_scored = 0;
    double seconds = 0.0;
  };

  TaRanker(const corpus::Corpus& corpus,
           const index::PrecomputedPostings& postings);

  /// RDS top-k, ascending by (distance, id) — same contract as the other
  /// rankers.
  util::StatusOr<std::vector<ScoredDocument>> TopKRelevant(
      std::span<const ontology::ConceptId> query, std::uint32_t k);

  const Stats& last_stats() const { return last_stats_; }

 private:
  const corpus::Corpus* corpus_;
  const index::PrecomputedPostings* postings_;
  Stats last_stats_;
};

}  // namespace ecdr::core

#endif  // ECDR_CORE_TA_RANKER_H_
