// Threshold Algorithm baseline for RDS (Fagin et al., discussed in paper
// Sections 4.1 / 5.1).
//
// Two interchangeable index backends:
//
//  * PrecomputedPostings (dense referee): for each query concept, a
//    postings list of (doc, Ddc) sorted ascending by distance supports
//    sorted access; random access resolves a document's distance on the
//    other lists in O(1) off the flat doc-major arena.
//  * BlockPostings (compressed, block-max): distance postings are
//    dense and the block partition is doc-aligned across concepts
//    (block b covers the same doc range in every list), so the sum of
//    the per-list block minima lower-bounds EVERY document of the
//    range. The traversal visits block ranges in ascending bound
//    order — sorted access at block granularity — aggregating each
//    visited range by aligned sequential unpacking (no per-document
//    random access), and stops at the first range whose bound
//    strictly exceeds the current k-th aggregate: every remaining
//    block is skipped without being decoded (WAND/MaxScore-style).
//    Per-list Fagin rounds would be useless here: doc-partitioned
//    blocks of a dense distance list have near-uniform minima, so a
//    per-list frontier threshold barely grows until the walk has
//    decoded nearly everything. Stats report the decoded/skipped
//    split and the index's bytes/doc.
//
// Both modes stop once the threshold — the sum of the per-list lower
// bounds on any unseen document — STRICTLY exceeds the current k-th
// best aggregate. The strict test makes the result canonical under the
// (distance, doc id) total order even on aggregate ties (an unseen
// document tying the k-th best with a smaller id must still be
// surfaced), which is what lets the differential suite demand
// bit-identical top-k across backends, thread counts, and caches. The
// paper rules TA out for SDS (the bidirectional Eq. 3 breaks the
// model) and out of its experiments for space reasons; we implement it
// for RDS so bench_ablation_ta / bench_block_postings can measure the
// tradeoff.
//
// Sharding note: both postings structures are whole-corpus offline
// builds (distance-sorted lists cannot be merged shard-wise without
// re-sorting), so TaRanker runs against one corpus generation — pin an
// EngineSnapshot and build the postings over snapshot->corpus; the
// snapshot keeps that generation alive for the ranker's lifetime.

#ifndef ECDR_CORE_TA_RANKER_H_
#define ECDR_CORE_TA_RANKER_H_

#include <cstdint>
#include <memory>
#include <span>
#include <unordered_set>
#include <vector>

#include "core/distance_cache.h"
#include "core/scored_document.h"
#include "corpus/corpus.h"
#include "index/block_postings.h"
#include "index/precomputed_postings.h"
#include "util/deadline.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace ecdr::core {

struct TaRankerOptions {
  /// Lanes for the per-round random accesses (aggregating each newly
  /// seen document across the other postings lists — TA's dominant
  /// cost for multi-concept queries). Sorted access stays serial: the
  /// round structure and threshold are inherently sequential. 0 =
  /// hardware concurrency, 1 = serial; results are identical at any
  /// lane count (aggregates are exact lookups).
  std::size_t num_threads = 0;

  /// Optional shared worker pool; when null and the effective lane
  /// count exceeds 1, a private pool is created lazily.
  util::ThreadPool* pool = nullptr;

  /// Optional shared Ddq memo (unowned, thread-safe). TA aggregates are
  /// exact integer Ddq sums (< 2^53), so entries are interchangeable
  /// with the double-valued RDS distances Knds / ExhaustiveRanker
  /// store; a hit skips the document's random accesses entirely.
  DdqMemo* ddq_memo = nullptr;

  /// Cooperative cancellation, polled once per sorted-access round. On a
  /// stop the ranker returns the best k of the documents aggregated so
  /// far (each aggregate exact, but the threshold guarantee has not been
  /// reached) and sets Stats::truncated. `cancel_token` may be null; the
  /// default deadline never expires.
  util::Deadline deadline;
  const util::CancelToken* cancel_token = nullptr;
};

class TaRanker {
 public:
  using Options = TaRankerOptions;

  struct Stats {
    std::uint64_t sorted_accesses = 0;
    std::uint64_t random_accesses = 0;
    std::uint64_t documents_scored = 0;
    std::uint64_t ddq_memo_hits = 0;
    std::uint64_t ddq_memo_misses = 0;
    /// Block mode only: posting blocks decoded (sorted walk + random
    /// access) vs blocks the threshold test retired without decoding.
    std::uint64_t decoded_blocks = 0;
    std::uint64_t skipped_blocks = 0;
    /// Index footprint per document of the backend that served the
    /// query (postings memory / |D|).
    double bytes_per_doc = 0.0;
    bool truncated = false;  // deadline/cancel stopped the rounds early
    double seconds = 0.0;
  };

  /// Dense-table mode (the referee).
  TaRanker(const corpus::Corpus& corpus,
           const index::PrecomputedPostings& postings, Options options = {});

  /// Compressed block-max mode; bit-identical results by construction
  /// (exact residual payloads + the shared strict-threshold stop).
  TaRanker(const corpus::Corpus& corpus,
           const index::BlockPostings& postings, Options options = {});

  /// RDS top-k, ascending by (distance, id) — same contract as the other
  /// rankers.
  util::StatusOr<std::vector<ScoredDocument>> TopKRelevant(
      std::span<const ontology::ConceptId> query, std::uint32_t k);

  const Stats& last_stats() const { return last_stats_; }

 private:
  const corpus::Corpus* corpus_;
  const index::PrecomputedPostings* postings_ = nullptr;  // dense mode
  const index::BlockPostings* block_postings_ = nullptr;  // block mode
  Options options_;
  Stats last_stats_;
  std::unique_ptr<util::ThreadPool> owned_pool_;

  // Per-call working memory, hoisted so repeated queries on one ranker
  // reuse capacity instead of reallocating every round (TaRanker is
  // single-caller like Drc; it was never thread-safe). Contents are
  // rebuilt from scratch by each TopKRelevant call.
  struct Scratch {
    std::vector<ontology::ConceptId> concepts;
    std::vector<std::span<const index::PrecomputedPostings::Entry>> lists;
    std::unordered_set<corpus::DocId> seen;
    std::vector<std::uint32_t> last_seen;
    struct Discovery {
      corpus::DocId doc;
      std::uint32_t distance;  // From the discovering list.
      std::size_t list;
    };
    std::vector<Discovery> round;
    std::vector<std::uint64_t> round_totals;
    std::vector<std::uint8_t> round_hits;
    // Block mode: per-list block metadata, the per-range bound and its
    // ascending visit order, and one decoded block row per list.
    std::vector<std::span<const index::BlockMeta>> metas;
    std::vector<std::uint64_t> block_bounds;
    std::vector<std::uint32_t> block_order;
    std::vector<std::vector<index::BlockPostingEntry>> block_rows;
    std::vector<ScoredDocument> heap;
  };
  Scratch scratch_;
};

}  // namespace ecdr::core

#endif  // ECDR_CORE_TA_RANKER_H_
