#include "core/d_radix.h"

#include <algorithm>

#include "ontology/dewey.h"

namespace ecdr::core {


void DRadixDag::Reset(const ontology::Ontology& ontology) {
  ontology_ = &ontology;
  concept_ids_.clear();
  flags_.clear();
  dist_to_doc_.clear();
  dist_to_query_.clear();
  in_degree_.clear();
  first_edge_.clear();
  edges_.clear();
  num_live_edges_ = 0;
  label_components_.clear();
  // An open merge (e.g. a cancelled call's) dies with the state it
  // guarded; the resume path points at discarded nodes.
  merge_active_ = false;
  undo_log_.clear();
  resume_valid_ = false;
  insert_path_.clear();

  if (concept_node_.size() != ontology.num_concepts()) {
    concept_node_.assign(ontology.num_concepts(), kInvalidNode);
    concept_epoch_.assign(ontology.num_concepts(), 0);
    epoch_ = 0;
  }
  if (++epoch_ == 0) {
    // Epoch wrapped: stale stamps could collide, so clear them once
    // every 2^32 resets.
    std::fill(concept_epoch_.begin(), concept_epoch_.end(), 0);
    epoch_ = 1;
  }

  (void)NodeFor(ontology.root());
}

void DRadixDag::CopyFrom(const DRadixDag& other) {
  ECDR_CHECK(other.ontology_ != nullptr);
  ECDR_CHECK(!other.merge_active_);
  ontology_ = other.ontology_;
  concept_ids_ = other.concept_ids_;
  flags_ = other.flags_;
  dist_to_doc_ = other.dist_to_doc_;
  dist_to_query_ = other.dist_to_query_;
  in_degree_ = other.in_degree_;
  first_edge_ = other.first_edge_;
  edges_ = other.edges_;
  num_live_edges_ = other.num_live_edges_;
  label_components_ = other.label_components_;
  merge_active_ = false;
  undo_log_.clear();
  resume_valid_ = false;
  insert_path_.clear();

  // Re-register the copied nodes in this DAG's own concept table under
  // a fresh epoch — same table sizing and wrap discipline as Reset().
  if (concept_node_.size() != ontology_->num_concepts()) {
    concept_node_.assign(ontology_->num_concepts(), kInvalidNode);
    concept_epoch_.assign(ontology_->num_concepts(), 0);
    epoch_ = 0;
  }
  if (++epoch_ == 0) {
    std::fill(concept_epoch_.begin(), concept_epoch_.end(), 0);
    epoch_ = 1;
  }
  for (std::size_t i = 0; i < concept_ids_.size(); ++i) {
    const ontology::ConceptId concept_id = concept_ids_[i];
    concept_epoch_[concept_id] = epoch_;
    concept_node_[concept_id] = static_cast<NodeIndex>(i);
  }
}

DRadixDag::NodeIndex DRadixDag::NodeFor(ontology::ConceptId concept_id) {
  ECDR_DCHECK_LT(concept_id, concept_node_.size());
  if (concept_epoch_[concept_id] == epoch_) {
    return concept_node_[concept_id];
  }
  const NodeIndex index = static_cast<NodeIndex>(concept_ids_.size());
  concept_epoch_[concept_id] = epoch_;
  concept_node_[concept_id] = index;
  concept_ids_.push_back(concept_id);
  flags_.push_back(0);
  dist_to_doc_.push_back(kUnreachable);
  dist_to_query_.push_back(kUnreachable);
  in_degree_.push_back(0);
  first_edge_.push_back(kNilEdge);
  return index;
}

ontology::ConceptId DRadixDag::ResolveRelative(
    ontology::ConceptId from,
    std::span<const std::uint32_t> components) const {
  ontology::ConceptId current = from;
  for (std::uint32_t component : components) {
    const auto children = ontology_->children(current);
    if (component == 0 || component > children.size()) {
      return ontology::kInvalidConcept;
    }
    current = children[component - 1];
  }
  return current;
}

void DRadixDag::AddEdgeRaw(NodeIndex parent, std::uint32_t label_offset,
                           std::uint32_t length, NodeIndex target) {
  ECDR_DCHECK_GT(length, 0u);
  ECDR_DCHECK_NE(parent, target);
  if (merge_active_) {
    // Post-mark slots are undone by truncation; only pre-merge state
    // needs old-value records.
    if (parent < mark_nodes_) {
      undo_log_.push_back(
          UndoRec{UndoRec::kFirstEdge, parent, first_edge_[parent]});
    }
    if (target < mark_nodes_) {
      undo_log_.push_back(
          UndoRec{UndoRec::kInDegree, target, in_degree_[target]});
    }
  }
  const std::uint32_t slot = static_cast<std::uint32_t>(edges_.size());
  edges_.push_back(EdgeRec{label_offset, length, target, first_edge_[parent],
                           label_components_[label_offset]});
  first_edge_[parent] = slot;
  ++in_degree_[target];
  ++num_live_edges_;
}

DRadixDag::EdgeRec DRadixDag::DetachEdge(NodeIndex parent, std::uint32_t prev,
                                         std::uint32_t e) {
  const EdgeRec detached = edges_[e];
  if (merge_active_) {
    if (prev == kNilEdge) {
      if (parent < mark_nodes_) {
        undo_log_.push_back(
            UndoRec{UndoRec::kFirstEdge, parent, first_edge_[parent]});
      }
    } else if (prev < mark_edges_) {
      undo_log_.push_back(
          UndoRec{UndoRec::kEdgeNext, prev, edges_[prev].next});
    }
    if (detached.target < mark_nodes_) {
      undo_log_.push_back(
          UndoRec{UndoRec::kInDegree, detached.target,
                  in_degree_[detached.target]});
    }
  }
  if (prev == kNilEdge) {
    first_edge_[parent] = detached.next;
  } else {
    edges_[prev].next = detached.next;
  }
  --in_degree_[detached.target];
  --num_live_edges_;
  return detached;
}

void DRadixDag::SetFlags(NodeIndex index, std::uint8_t new_flags) {
  const std::uint8_t old_flags = flags_[index];
  if ((old_flags | new_flags) == old_flags) return;
  if (merge_active_ && index < mark_nodes_) {
    undo_log_.push_back(UndoRec{UndoRec::kFlags, index, old_flags});
  }
  flags_[index] = old_flags | new_flags;
}

void DRadixDag::MarkFlags(ontology::ConceptId concept_id, bool in_doc,
                          bool in_query) {
  const NodeIndex index = FindNode(concept_id);
  ECDR_CHECK_NE(index, kInvalidNode);
  SetFlags(index, static_cast<std::uint8_t>((in_doc ? kInDocFlag : 0) |
                                            (in_query ? kInQueryFlag : 0)));
}

void DRadixDag::BeginMerge() {
  ECDR_CHECK(!merge_active_);
  mark_nodes_ = static_cast<std::uint32_t>(concept_ids_.size());
  mark_edges_ = static_cast<std::uint32_t>(edges_.size());
  mark_labels_ = static_cast<std::uint32_t>(label_components_.size());
  mark_live_edges_ = num_live_edges_;
  undo_log_.clear();
  merge_active_ = true;
  // The resume path (from the last pre-merge insertion) stays valid:
  // recorded nodes are pre-mark and a merge only ever adds below them.
}

void DRadixDag::RollbackMerge() {
  ECDR_CHECK(merge_active_);
  // Reverse replay: a slot logged more than once ends at its oldest —
  // i.e. pre-merge — value.
  for (auto it = undo_log_.rbegin(); it != undo_log_.rend(); ++it) {
    switch (it->kind) {
      case UndoRec::kFirstEdge:
        first_edge_[it->index] = it->value;
        break;
      case UndoRec::kEdgeNext:
        edges_[it->index].next = it->value;
        break;
      case UndoRec::kFlags:
        flags_[it->index] = static_cast<std::uint8_t>(it->value);
        break;
      case UndoRec::kInDegree:
        in_degree_[it->index] = it->value;
        break;
    }
  }
  // Un-register the appended nodes: stamp 0 is never a live epoch
  // (Reset() starts at 1), so FindNode reads "absent" without touching
  // the rest of the table.
  for (std::size_t i = mark_nodes_; i < concept_ids_.size(); ++i) {
    concept_epoch_[concept_ids_[i]] = 0;
  }
  concept_ids_.resize(mark_nodes_);
  flags_.resize(mark_nodes_);
  dist_to_doc_.resize(mark_nodes_);
  dist_to_query_.resize(mark_nodes_);
  in_degree_.resize(mark_nodes_);
  first_edge_.resize(mark_nodes_);
  edges_.resize(mark_edges_);
  label_components_.resize(mark_labels_);
  num_live_edges_ = mark_live_edges_;
  undo_log_.clear();
  merge_active_ = false;
  // The resume path may reference truncated nodes.
  resume_valid_ = false;
  insert_path_.clear();
}

void DRadixDag::AttachEdge(NodeIndex parent, std::uint32_t label_offset,
                           std::uint32_t length, NodeIndex target) {
  ECDR_DCHECK_GT(length, 0u);
  const std::uint32_t first_component = label_components_[label_offset];
  // At most one sibling edge can share the first component (radix
  // invariant, maintained inductively by the splits below).
  std::uint32_t prev = kNilEdge;
  std::uint32_t e = first_edge_[parent];
  while (e != kNilEdge && edges_[e].label_first != first_component) {
    prev = e;
    e = edges_[e].next;
  }
  if (e == kNilEdge) {
    AddEdgeRaw(parent, label_offset, length, target);
    return;
  }

  // Copy the record: AddEdgeRaw below may reallocate edges_.
  const EdgeRec shared = edges_[e];
  const std::uint32_t lcp = static_cast<std::uint32_t>(
      ontology::DeweyCommonPrefix(
          {label_components_.data() + label_offset, length},
          LabelOf(shared)));
  ECDR_DCHECK_GE(lcp, 1u);

  if (lcp == shared.label_length && lcp == length) {
    // The address is already fully represented; by determinism of Dewey
    // resolution the existing edge must lead to the same concept.
    ECDR_CHECK_EQ(shared.target, target);
    return;
  }

  if (lcp == shared.label_length) {
    // `label` extends the existing edge: descend with the remainder.
    AttachEdge(shared.target, label_offset + lcp, length - lcp, target);
    return;
  }

  if (lcp == length) {
    // `target` sits in the middle of the existing edge: splice it in.
    // The detached remainder is a suffix run of the same address.
    (void)DetachEdge(parent, prev, e);
    AddEdgeRaw(parent, label_offset, length, target);
    AttachEdge(target, shared.label_offset + lcp, shared.label_length - lcp,
               shared.target);
    return;
  }

  // Proper split: materialize the node at the longest common prefix.
  // That concept may already exist elsewhere in the DAG (an alternative
  // Dewey address of it) — NodeFor reuses it, which is exactly what
  // makes this a DAG rather than a tree.
  const ontology::ConceptId mid_concept = ResolveRelative(
      concept_ids_[parent], {label_components_.data() + label_offset, lcp});
  ECDR_CHECK_NE(mid_concept, ontology::kInvalidConcept);
  const NodeIndex mid = NodeFor(mid_concept);
  ECDR_DCHECK_NE(mid, parent);
  ECDR_DCHECK_NE(mid, target);

  (void)DetachEdge(parent, prev, e);
  AddEdgeRaw(parent, label_offset, lcp, mid);
  AttachEdge(mid, shared.label_offset + lcp, shared.label_length - lcp,
             shared.target);
  AttachEdge(mid, label_offset + lcp, length - lcp, target);
}

void DRadixDag::AttachEdgeWalk(NodeIndex parent, std::uint32_t label_offset,
                               std::uint32_t length, NodeIndex target,
                               std::uint32_t depth) {
  // The same case analysis as AttachEdge, but iterative along the
  // address's own path (descents and splits loop instead of recursing)
  // and recording every on-path node into insert_path_. Only the
  // displaced suffix of a split — which leaves the path — still goes
  // through the recursive AttachEdge.
  for (;;) {
    ECDR_DCHECK_GT(length, 0u);
    const std::uint32_t first_component = label_components_[label_offset];
    std::uint32_t prev = kNilEdge;
    std::uint32_t e = first_edge_[parent];
    while (e != kNilEdge && edges_[e].label_first != first_component) {
      prev = e;
      e = edges_[e].next;
    }
    if (e == kNilEdge) {
      AddEdgeRaw(parent, label_offset, length, target);
      insert_path_.push_back(PathEntry{target, depth + length});
      return;
    }

    const EdgeRec shared = edges_[e];
    const std::uint32_t lcp = static_cast<std::uint32_t>(
        ontology::DeweyCommonPrefix(
            {label_components_.data() + label_offset, length},
            LabelOf(shared)));
    ECDR_DCHECK_GE(lcp, 1u);

    if (lcp == shared.label_length && lcp == length) {
      ECDR_CHECK_EQ(shared.target, target);
      insert_path_.push_back(PathEntry{target, depth + length});
      return;
    }

    if (lcp == shared.label_length) {
      // `label` extends the existing edge: descend with the remainder.
      depth += lcp;
      insert_path_.push_back(PathEntry{shared.target, depth});
      parent = shared.target;
      label_offset += lcp;
      length -= lcp;
      continue;
    }

    if (lcp == length) {
      // `target` sits in the middle of the existing edge: splice it in.
      (void)DetachEdge(parent, prev, e);
      AddEdgeRaw(parent, label_offset, length, target);
      AttachEdge(target, shared.label_offset + lcp,
                 shared.label_length - lcp, shared.target);
      insert_path_.push_back(PathEntry{target, depth + length});
      return;
    }

    // Proper split: materialize the node at the longest common prefix
    // (NodeFor reuses an existing node of that concept — the DAG case),
    // re-attach the displaced suffix off-path, then keep walking from
    // the split node with the remainder.
    const ontology::ConceptId mid_concept = ResolveRelative(
        concept_ids_[parent],
        {label_components_.data() + label_offset, lcp});
    ECDR_CHECK_NE(mid_concept, ontology::kInvalidConcept);
    const NodeIndex mid = NodeFor(mid_concept);
    ECDR_DCHECK_NE(mid, parent);
    ECDR_DCHECK_NE(mid, target);

    (void)DetachEdge(parent, prev, e);
    AddEdgeRaw(parent, label_offset, lcp, mid);
    AttachEdge(mid, shared.label_offset + lcp, shared.label_length - lcp,
               shared.target);
    depth += lcp;
    insert_path_.push_back(PathEntry{mid, depth});
    parent = mid;
    label_offset += lcp;
    length -= lcp;
  }
}

void DRadixDag::InsertAddress(ontology::ConceptId concept_id,
                              std::span<const std::uint32_t> address,
                              bool in_doc, bool in_query) {
  ECDR_DCHECK(ontology_ != nullptr);
  ECDR_DCHECK_EQ(ResolveRelative(ontology_->root(), address), concept_id);
  const std::uint8_t new_flags = static_cast<std::uint8_t>(
      (in_doc ? kInDocFlag : 0) | (in_query ? kInQueryFlag : 0));
  if (address.empty()) {
    ECDR_CHECK_EQ(concept_id, ontology_->root());
    SetFlags(0, new_flags);
    return;
  }
  const std::uint32_t lcp =
      resume_valid_ ? static_cast<std::uint32_t>(
                          ontology::DeweyCommonPrefix(prev_view_, address))
                    : 0;
  // This entry point owns a copy of the address, so the caller's
  // storage may be transient.
  prev_address_.assign(address.begin(), address.end());
  prev_view_ = prev_address_;
  InsertResumed(concept_id, address, lcp, new_flags);
}

void DRadixDag::InsertAddressResumed(ontology::ConceptId concept_id,
                                     std::span<const std::uint32_t> address,
                                     std::uint32_t lcp_with_previous,
                                     bool in_doc, bool in_query) {
  ECDR_DCHECK(ontology_ != nullptr);
  ECDR_DCHECK(resume_valid_);
  ECDR_DCHECK(!address.empty());
  ECDR_DCHECK_EQ(ResolveRelative(ontology_->root(), address), concept_id);
  // The hint must equal the true common prefix with the previously
  // inserted address; DRC reads it off FlatDeweyPool::rank_lcp().
  ECDR_DCHECK_EQ(lcp_with_previous,
                 ontology::DeweyCommonPrefix(prev_view_, address));
  const std::uint8_t new_flags = static_cast<std::uint8_t>(
      (in_doc ? kInDocFlag : 0) | (in_query ? kInQueryFlag : 0));
  // Keep a view only: the caller guarantees stability (pool arena).
  prev_view_ = address;
  InsertResumed(concept_id, address, lcp_with_previous, new_flags);
}

void DRadixDag::InsertResumed(ontology::ConceptId concept_id,
                              std::span<const std::uint32_t> address,
                              std::uint32_t lcp, std::uint8_t new_flags) {
  const NodeIndex target = NodeFor(concept_id);

  // Resume: re-enter the radix walk at the deepest node recorded on the
  // previous address's path that is still on this address's path (its
  // depth does not exceed the common prefix). The walk below an entry
  // only ever mutates structure strictly deeper than it, so shallower
  // entries stay valid across insertions.
  std::uint32_t base = 0;
  NodeIndex start = root();
  if (resume_valid_) {
    while (insert_path_.back().depth > lcp) insert_path_.pop_back();
    start = insert_path_.back().node;
    base = insert_path_.back().depth;
  } else {
    insert_path_.clear();
    insert_path_.push_back(PathEntry{root(), 0});
  }
  resume_valid_ = true;

  const std::uint32_t length = static_cast<std::uint32_t>(address.size());
  if (base == length) {
    // The whole address was already materialized (a duplicate insert,
    // or a prefix of the previous address): determinism of Dewey
    // resolution pins the resume node to this concept's node.
    ECDR_CHECK_EQ(start, target);
    SetFlags(target, new_flags);
    return;
  }
  // Copy the unshared suffix into the arena once; every label this
  // insertion produces (including splits) is a subrange of this run.
  ECDR_DCHECK_LE(label_components_.size() + (length - base), 0xFFFFFFFFull);
  const std::uint32_t offset =
      static_cast<std::uint32_t>(label_components_.size());
  label_components_.insert(label_components_.end(), address.begin() + base,
                           address.end());
  AttachEdgeWalk(start, offset, length - base, target, base);
  SetFlags(target, new_flags);
}

void DRadixDag::BuildTopologicalOrder() const {
  topo_pending_.assign(in_degree_.begin(), in_degree_.end());
  topo_order_.clear();
  topo_order_.reserve(concept_ids_.size());
  ECDR_CHECK_EQ(topo_pending_[0], 0u);  // The root has no parents.
  topo_order_.push_back(0);
  for (std::size_t head = 0; head < topo_order_.size(); ++head) {
    for (std::uint32_t e = first_edge_[topo_order_[head]]; e != kNilEdge;
         e = edges_[e].next) {
      if (--topo_pending_[edges_[e].target] == 0) {
        topo_order_.push_back(edges_[e].target);
      }
    }
  }
  ECDR_CHECK_EQ(topo_order_.size(), concept_ids_.size());
}

void DRadixDag::TuneDistances() {
  const std::size_t n = concept_ids_.size();
  for (std::size_t i = 0; i < n; ++i) {
    dist_to_doc_[i] = (flags_[i] & kInDocFlag) != 0 ? 0 : kUnreachable;
    dist_to_query_[i] = (flags_[i] & kInQueryFlag) != 0 ? 0 : kUnreachable;
  }
  BuildTopologicalOrder();
  // Bottom-up sweep (reverse topological): pull distances from children.
  for (auto it = topo_order_.rbegin(); it != topo_order_.rend(); ++it) {
    const NodeIndex index = *it;
    std::uint32_t doc = dist_to_doc_[index];
    std::uint32_t query = dist_to_query_[index];
    for (std::uint32_t e = first_edge_[index]; e != kNilEdge;
         e = edges_[e].next) {
      const EdgeRec& edge = edges_[e];
      doc = std::min(doc, dist_to_doc_[edge.target] + edge.label_length);
      query =
          std::min(query, dist_to_query_[edge.target] + edge.label_length);
    }
    dist_to_doc_[index] = doc;
    dist_to_query_[index] = query;
  }
  // Top-down sweep: push distances to children. After both sweeps each
  // node holds the minimum over all valid (ascend-then-descend) paths to
  // a flagged node, because every such path crests at some materialized
  // common ancestor.
  for (const NodeIndex index : topo_order_) {
    const std::uint32_t doc = dist_to_doc_[index];
    const std::uint32_t query = dist_to_query_[index];
    for (std::uint32_t e = first_edge_[index]; e != kNilEdge;
         e = edges_[e].next) {
      const EdgeRec& edge = edges_[e];
      dist_to_doc_[edge.target] =
          std::min(dist_to_doc_[edge.target], doc + edge.label_length);
      dist_to_query_[edge.target] =
          std::min(dist_to_query_[edge.target], query + edge.label_length);
    }
  }
}

util::Status DRadixDag::CheckInvariants() const {
  if (concept_ids_.empty() || concept_ids_[0] != ontology_->root()) {
    return util::InternalError("node 0 is not the ontology root");
  }
  std::vector<std::uint32_t> in_degree(concept_ids_.size(), 0);
  std::size_t edge_count = 0;
  for (std::size_t i = 0; i < concept_ids_.size(); ++i) {
    const ontology::ConceptId concept_id = concept_ids_[i];
    if (concept_epoch_[concept_id] != epoch_ ||
        concept_node_[concept_id] != i) {
      return util::InternalError("node " + std::to_string(i) +
                                 " missing from or inconsistent with the "
                                 "concept index");
    }
    for (std::uint32_t a = first_edge_[i]; a != kNilEdge;
         a = edges_[a].next) {
      const EdgeRec& edge = edges_[a];
      if (edge.label_length == 0) {
        return util::InternalError("empty edge label");
      }
      if (edge.label_offset + edge.label_length > label_components_.size()) {
        return util::InternalError("edge label outside the component arena");
      }
      if (edge.target >= concept_ids_.size()) {
        return util::InternalError("edge target out of range");
      }
      ++in_degree[edge.target];
      ++edge_count;
      const std::span<const std::uint32_t> label = LabelOf(edge);
      const ontology::ConceptId resolved = ResolveRelative(concept_id, label);
      if (resolved != concept_ids_[edge.target]) {
        return util::InternalError(
            "edge label " + ontology::FormatDewey(label) + " from '" +
            ontology_->name(concept_id) + "' does not resolve to '" +
            ontology_->name(concept_ids_[edge.target]) + "'");
      }
      for (std::uint32_t b = edges_[a].next; b != kNilEdge;
           b = edges_[b].next) {
        if (label_components_[edges_[b].label_offset] ==
            label_components_[edge.label_offset]) {
          return util::InternalError(
              "sibling edges share first Dewey component under '" +
              ontology_->name(concept_id) + "'");
        }
      }
    }
  }
  if (edge_count != num_live_edges_) {
    return util::InternalError("edge count bookkeeping mismatch");
  }
  for (std::size_t i = 0; i < concept_ids_.size(); ++i) {
    if (in_degree[i] != in_degree_[i]) {
      return util::InternalError("in-degree bookkeeping mismatch at node " +
                                 std::to_string(i));
    }
  }
  if (in_degree_[0] != 0) {
    return util::InternalError("root has parents");
  }
  // BuildTopologicalOrder aborts on cycles; completing it means every
  // node was reached from the root.
  BuildTopologicalOrder();
  return util::Status::Ok();
}

}  // namespace ecdr::core
