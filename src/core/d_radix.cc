#include "core/d_radix.h"

#include <algorithm>

#include "ontology/dewey.h"

namespace ecdr::core {

DRadixDag::DRadixDag(const ontology::Ontology& ontology)
    : ontology_(&ontology) {
  Node root;
  root.concept_id = ontology.root();
  nodes_.push_back(std::move(root));
  node_index_.emplace(ontology.root(), 0);
}

DRadixDag::NodeIndex DRadixDag::FindNode(ontology::ConceptId concept_id) const {
  const auto it = node_index_.find(concept_id);
  return it == node_index_.end() ? kInvalidNode : it->second;
}

DRadixDag::NodeIndex DRadixDag::NodeFor(ontology::ConceptId concept_id) {
  const auto [it, inserted] =
      node_index_.emplace(concept_id, static_cast<NodeIndex>(nodes_.size()));
  if (inserted) {
    Node node;
    node.concept_id = concept_id;
    nodes_.push_back(std::move(node));
  }
  return it->second;
}

ontology::ConceptId DRadixDag::ResolveRelative(
    ontology::ConceptId from,
    std::span<const std::uint32_t> components) const {
  ontology::ConceptId current = from;
  for (std::uint32_t component : components) {
    const auto children = ontology_->children(current);
    if (component == 0 || component > children.size()) {
      return ontology::kInvalidConcept;
    }
    current = children[component - 1];
  }
  return current;
}

void DRadixDag::AddEdgeRaw(NodeIndex parent, std::vector<std::uint32_t> label,
                           NodeIndex target) {
  ECDR_DCHECK(!label.empty());
  ECDR_DCHECK_NE(parent, target);
  nodes_[parent].children.push_back(Edge{std::move(label), target});
  ++nodes_[target].in_degree;
  ++num_edges_;
}

DRadixDag::Edge DRadixDag::DetachEdge(NodeIndex parent,
                                      std::size_t edge_position) {
  auto& children = nodes_[parent].children;
  ECDR_DCHECK_LT(edge_position, children.size());
  Edge detached = std::move(children[edge_position]);
  children.erase(children.begin() + static_cast<long>(edge_position));
  --nodes_[detached.target].in_degree;
  --num_edges_;
  return detached;
}

void DRadixDag::AttachEdge(NodeIndex parent, std::vector<std::uint32_t> label,
                           NodeIndex target) {
  ECDR_DCHECK(!label.empty());
  // At most one sibling edge can share the first component (radix
  // invariant, maintained inductively by the splits below).
  std::size_t share_position = nodes_[parent].children.size();
  for (std::size_t i = 0; i < nodes_[parent].children.size(); ++i) {
    if (nodes_[parent].children[i].label.front() == label.front()) {
      share_position = i;
      break;
    }
  }
  if (share_position == nodes_[parent].children.size()) {
    AddEdgeRaw(parent, std::move(label), target);
    return;
  }

  const Edge& shared = nodes_[parent].children[share_position];
  const std::size_t lcp = ontology::DeweyCommonPrefix(label, shared.label);
  ECDR_DCHECK_GE(lcp, 1u);

  if (lcp == shared.label.size() && lcp == label.size()) {
    // The address is already fully represented; by determinism of Dewey
    // resolution the existing edge must lead to the same concept.
    ECDR_CHECK_EQ(shared.target, target);
    return;
  }

  if (lcp == shared.label.size()) {
    // `label` extends the existing edge: descend with the remainder.
    const NodeIndex next = shared.target;
    label.erase(label.begin(), label.begin() + static_cast<long>(lcp));
    AttachEdge(next, std::move(label), target);
    return;
  }

  if (lcp == label.size()) {
    // `target` sits in the middle of the existing edge: splice it in.
    Edge detached = DetachEdge(parent, share_position);
    std::vector<std::uint32_t> rest(
        detached.label.begin() + static_cast<long>(lcp),
        detached.label.end());
    AddEdgeRaw(parent, std::move(label), target);
    AttachEdge(target, std::move(rest), detached.target);
    return;
  }

  // Proper split: materialize the node at the longest common prefix.
  // That concept may already exist elsewhere in the DAG (an alternative
  // Dewey address of it) — NodeFor reuses it, which is exactly what
  // makes this a DAG rather than a tree.
  std::vector<std::uint32_t> prefix(label.begin(),
                                    label.begin() + static_cast<long>(lcp));
  const ontology::ConceptId mid_concept =
      ResolveRelative(nodes_[parent].concept_id, prefix);
  ECDR_CHECK_NE(mid_concept, ontology::kInvalidConcept);
  const NodeIndex mid = NodeFor(mid_concept);
  ECDR_DCHECK_NE(mid, parent);
  ECDR_DCHECK_NE(mid, target);

  Edge detached = DetachEdge(parent, share_position);
  std::vector<std::uint32_t> shared_rest(
      detached.label.begin() + static_cast<long>(lcp), detached.label.end());
  std::vector<std::uint32_t> label_rest(
      label.begin() + static_cast<long>(lcp), label.end());
  AddEdgeRaw(parent, std::move(prefix), mid);
  AttachEdge(mid, std::move(shared_rest), detached.target);
  AttachEdge(mid, std::move(label_rest), target);
}

void DRadixDag::InsertAddress(ontology::ConceptId concept_id,
                              std::span<const std::uint32_t> address,
                              bool in_doc, bool in_query) {
  ECDR_DCHECK_EQ(ResolveRelative(ontology_->root(), address), concept_id);
  if (address.empty()) {
    ECDR_CHECK_EQ(concept_id, ontology_->root());
    nodes_[0].in_doc |= in_doc;
    nodes_[0].in_query |= in_query;
    return;
  }
  const NodeIndex target = NodeFor(concept_id);
  AttachEdge(root(), {address.begin(), address.end()}, target);
  nodes_[target].in_doc |= in_doc;
  nodes_[target].in_query |= in_query;
}

std::vector<DRadixDag::NodeIndex> DRadixDag::TopologicalOrder() const {
  std::vector<std::uint32_t> pending(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    pending[i] = nodes_[i].in_degree;
  }
  std::vector<NodeIndex> order;
  order.reserve(nodes_.size());
  ECDR_CHECK_EQ(pending[0], 0u);  // The root has no parents.
  order.push_back(0);
  for (std::size_t head = 0; head < order.size(); ++head) {
    for (const Edge& edge : nodes_[order[head]].children) {
      if (--pending[edge.target] == 0) order.push_back(edge.target);
    }
  }
  ECDR_CHECK_EQ(order.size(), nodes_.size());
  return order;
}

void DRadixDag::TuneDistances() {
  for (Node& node : nodes_) {
    node.dist_to_doc = node.in_doc ? 0 : kUnreachable;
    node.dist_to_query = node.in_query ? 0 : kUnreachable;
  }
  const std::vector<NodeIndex> order = TopologicalOrder();
  // Bottom-up sweep (reverse topological): pull distances from children.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    Node& node = nodes_[*it];
    for (const Edge& edge : node.children) {
      const Node& child = nodes_[edge.target];
      node.dist_to_doc =
          std::min(node.dist_to_doc, child.dist_to_doc + edge.length());
      node.dist_to_query =
          std::min(node.dist_to_query, child.dist_to_query + edge.length());
    }
  }
  // Top-down sweep: push distances to children. After both sweeps each
  // node holds the minimum over all valid (ascend-then-descend) paths to
  // a flagged node, because every such path crests at some materialized
  // common ancestor.
  for (NodeIndex index : order) {
    const Node& node = nodes_[index];
    for (const Edge& edge : node.children) {
      Node& child = nodes_[edge.target];
      child.dist_to_doc =
          std::min(child.dist_to_doc, node.dist_to_doc + edge.length());
      child.dist_to_query =
          std::min(child.dist_to_query, node.dist_to_query + edge.length());
    }
  }
}

util::Status DRadixDag::CheckInvariants() const {
  if (nodes_.empty() || nodes_[0].concept_id != ontology_->root()) {
    return util::InternalError("node 0 is not the ontology root");
  }
  std::vector<std::uint32_t> in_degree(nodes_.size(), 0);
  std::size_t edge_count = 0;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const Node& node = nodes_[i];
    const auto it = node_index_.find(node.concept_id);
    if (it == node_index_.end() || it->second != i) {
      return util::InternalError("node " + std::to_string(i) +
                                 " missing from or inconsistent with the "
                                 "concept index");
    }
    for (std::size_t a = 0; a < node.children.size(); ++a) {
      const Edge& edge = node.children[a];
      if (edge.label.empty()) {
        return util::InternalError("empty edge label");
      }
      if (edge.target >= nodes_.size()) {
        return util::InternalError("edge target out of range");
      }
      ++in_degree[edge.target];
      ++edge_count;
      const ontology::ConceptId resolved =
          ResolveRelative(node.concept_id, edge.label);
      if (resolved != nodes_[edge.target].concept_id) {
        return util::InternalError(
            "edge label " + ontology::FormatDewey(edge.label) + " from '" +
            ontology_->name(node.concept_id) + "' does not resolve to '" +
            ontology_->name(nodes_[edge.target].concept_id) + "'");
      }
      for (std::size_t b = a + 1; b < node.children.size(); ++b) {
        if (node.children[b].label.front() == edge.label.front()) {
          return util::InternalError(
              "sibling edges share first Dewey component under '" +
              ontology_->name(node.concept_id) + "'");
        }
      }
    }
  }
  if (edge_count != num_edges_) {
    return util::InternalError("edge count bookkeeping mismatch");
  }
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (in_degree[i] != nodes_[i].in_degree) {
      return util::InternalError("in-degree bookkeeping mismatch at node " +
                                 std::to_string(i));
    }
  }
  if (nodes_[0].in_degree != 0) {
    return util::InternalError("root has parents");
  }
  // TopologicalOrder aborts on cycles; reaching it means sizes matched.
  (void)TopologicalOrder();
  return util::Status::Ok();
}

}  // namespace ecdr::core
