#include "core/concept_weights.h"

#include "core/semantic_similarity.h"

namespace ecdr::core {

ConceptWeights ConceptWeights::Uniform(const ontology::Ontology& ontology) {
  return ConceptWeights(std::vector<double>(ontology.num_concepts(), 1.0));
}

ConceptWeights ConceptWeights::FromInformationContent(
    const ontology::Ontology& ontology, const corpus::Corpus& corpus) {
  // Reuse the Resnik machinery for the propagated-occurrence IC.
  ConceptSimilarity similarity(ontology, &corpus, SemanticMeasure::kResnik);
  std::vector<double> weights(ontology.num_concepts());
  for (ontology::ConceptId c = 0; c < ontology.num_concepts(); ++c) {
    weights[c] = 1.0 + similarity.InformationContent(c);
  }
  return ConceptWeights(std::move(weights));
}

ConceptWeights::ConceptWeights(std::vector<double> weights)
    : weights_(std::move(weights)) {
  for (double w : weights_) ECDR_CHECK_GE(w, 0.0);
}

double ConceptWeights::TotalOf(
    std::span<const ontology::ConceptId> concepts) const {
  double total = 0.0;
  for (ontology::ConceptId c : concepts) total += of(c);
  return total;
}

}  // namespace ecdr::core
