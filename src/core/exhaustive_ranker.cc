#include "core/exhaustive_ranker.h"

#include <algorithm>
#include <atomic>
#include <memory>

#include "util/timer.h"

namespace ecdr::core {

namespace {

std::vector<ontology::ConceptId> Distinct(
    std::span<const ontology::ConceptId> concepts) {
  std::vector<ontology::ConceptId> result(concepts.begin(), concepts.end());
  std::sort(result.begin(), result.end());
  result.erase(std::unique(result.begin(), result.end()), result.end());
  return result;
}

}  // namespace

ExhaustiveRanker::ExhaustiveRanker(const corpus::Corpus& corpus, Drc* drc,
                                   Options options)
    : corpus_(&corpus), drc_(drc), options_(options) {
  ECDR_CHECK(drc != nullptr);
}

template <typename ScoreFn>
util::StatusOr<std::vector<ScoredDocument>> ExhaustiveRanker::Rank(
    std::uint32_t k, const QuerySig& sig, ScoreFn&& score) {
  last_stats_ = Stats();
  util::WallTimer timer;

  // Memo consult wrapped around the exact scoring; lanes call this
  // concurrently, so the counters are atomic (folded into last_stats_
  // after the scan).
  DdqMemo* memo =
      sig.valid && options_.ddq_memo != nullptr && options_.ddq_memo->enabled()
          ? options_.ddq_memo
          : nullptr;
  std::atomic<std::uint64_t> memo_hits{0};
  std::atomic<std::uint64_t> memo_misses{0};
  const auto memoized_score =
      [&](Drc* engine, corpus::DocId d,
          const corpus::Document& doc) -> util::StatusOr<double> {
    if (memo != nullptr) {
      double cached = 0.0;
      if (memo->Get(sig, d, &cached)) {
        memo_hits.fetch_add(1, std::memory_order_relaxed);
        return cached;
      }
      memo_misses.fetch_add(1, std::memory_order_relaxed);
    }
    util::StatusOr<double> distance = score(engine, d, doc);
    if (memo != nullptr && distance.ok()) memo->Put(sig, d, *distance);
    return distance;
  };

  const std::size_t requested = options_.num_threads == 0
                                    ? util::ThreadPool::DefaultThreads()
                                    : options_.num_threads;
  util::ThreadPool* pool = options_.pool;
  if (requested > 1 && pool == nullptr) {
    if (owned_pool_ == nullptr) {
      owned_pool_ = std::make_unique<util::ThreadPool>(requested - 1);
    }
    pool = owned_pool_.get();
  }
  const std::size_t num_docs = corpus_->num_documents();
  const std::size_t lanes =
      requested > 1 && pool != nullptr && num_docs > 1
          ? pool->num_threads() + 1
          : 1;

  // Max-heap of the k best: the worst kept document sits at the front.
  const auto push_scored = [](std::vector<ScoredDocument>* heap,
                              std::uint32_t limit,
                              const ScoredDocument& scored) {
    if (heap->size() < limit) {
      heap->push_back(scored);
      std::push_heap(heap->begin(), heap->end(), ScoredBefore);
    } else if (limit > 0 && ScoredBefore(scored, heap->front())) {
      std::pop_heap(heap->begin(), heap->end(), ScoredBefore);
      heap->back() = scored;
      std::push_heap(heap->begin(), heap->end(), ScoredBefore);
    }
  };

  // Stop polling for both paths; wave lanes read it concurrently.
  const auto stop_requested = [&]() {
    return (options_.cancel_token != nullptr &&
            options_.cancel_token->cancelled()) ||
           options_.deadline.Expired();
  };
  std::atomic<bool> truncated{false};

  std::vector<ScoredDocument> heap;
  if (lanes == 1) {
    // Walk segment by segment: segments cover contiguous ascending id
    // ranges, so this visits exactly 0..num_docs-1 in order while
    // resolving each document with one span index instead of a
    // per-document segment search.
    bool stopped = false;
    for (std::size_t s = 0; s < corpus_->num_segments() && !stopped; ++s) {
      const corpus::DocId base = corpus_->segment_base(s);
      const std::span<const corpus::Document> docs =
          corpus_->segment_documents(s);
      for (std::size_t i = 0; i < docs.size(); ++i) {
        if (stop_requested()) {
          truncated.store(true, std::memory_order_relaxed);
          stopped = true;
          break;
        }
        const corpus::DocId d = base + static_cast<corpus::DocId>(i);
        util::StatusOr<double> distance = memoized_score(drc_, d, docs[i]);
        ECDR_RETURN_IF_ERROR(distance.status());
        ++last_stats_.documents_scored;
        push_scored(&heap, k, ScoredDocument{d, *distance});
      }
    }
  } else {
    // Shard the scan: each lane keeps its own Drc engine, top-k heap and
    // counters; merge after the join. An errored lane stops scoring and
    // records its first error.
    struct LaneState {
      // The scratch lease must outlive the engine borrowing it.
      Drc::ScratchPool::Lease scratch;
      std::unique_ptr<Drc> drc;
      std::vector<ScoredDocument> heap;
      util::Status status = util::Status::Ok();
      std::uint64_t scored = 0;
    };
    std::vector<LaneState> lane_states(lanes);
    for (LaneState& state : lane_states) {
      state.scratch = Drc::ScratchPool::Lease(options_.drc_scratch_pool);
      // Inherit the parent engine's options so shard lanes reuse query
      // skeletons exactly like the serial scan.
      state.drc = std::make_unique<Drc>(drc_->ontology(), drc_->addresses(),
                                        state.scratch.get(), drc_->options());
    }
    pool->ParallelFor(
        num_docs,
        [&](std::size_t d, std::size_t lane) {
          LaneState& state = lane_states[lane];
          if (!state.status.ok()) return;
          if (stop_requested()) {
            truncated.store(true, std::memory_order_relaxed);
            return;
          }
          const corpus::DocId id = static_cast<corpus::DocId>(d);
          util::StatusOr<double> distance =
              memoized_score(state.drc.get(), id, corpus_->document(id));
          if (!distance.ok()) {
            state.status = distance.status();
            return;
          }
          ++state.scored;
          push_scored(&state.heap, k, ScoredDocument{id, *distance});
        },
        options_.cancel_token);
    for (LaneState& state : lane_states) {
      ECDR_RETURN_IF_ERROR(state.status);
      last_stats_.documents_scored += state.scored;
      drc_->MergeStatsFrom(state.drc->stats());
      for (const ScoredDocument& scored : state.heap) {
        push_scored(&heap, k, scored);
      }
    }
  }

  std::sort(heap.begin(), heap.end(), ScoredBefore);
  // A cancelled ParallelFor can also skip items without any lane seeing
  // the stop, so recheck after the join.
  if (truncated.load(std::memory_order_relaxed) ||
      (lanes > 1 && last_stats_.documents_scored < num_docs)) {
    last_stats_.truncated = true;
  }
  last_stats_.ddq_memo_hits = memo_hits.load(std::memory_order_relaxed);
  last_stats_.ddq_memo_misses = memo_misses.load(std::memory_order_relaxed);
  last_stats_.seconds = timer.ElapsedSeconds();
  return heap;
}

util::StatusOr<std::vector<ScoredDocument>> ExhaustiveRanker::TopKRelevant(
    std::span<const ontology::ConceptId> query, std::uint32_t k) {
  const std::vector<ontology::ConceptId> canonical = Distinct(query);
  const QuerySig sig = SignatureOfConcepts(canonical, /*sds=*/false);
  return Rank(k, sig,
              [&](Drc* engine, corpus::DocId,
                  const corpus::Document& doc) -> util::StatusOr<double> {
                util::StatusOr<std::uint64_t> distance =
                    engine->DocQueryDistance(doc.concepts(), canonical);
                ECDR_RETURN_IF_ERROR(distance.status());
                return static_cast<double>(*distance);
              });
}

util::StatusOr<std::vector<ScoredDocument>> ExhaustiveRanker::TopKSimilar(
    const corpus::Document& query_doc, std::uint32_t k) {
  // Document concepts are already sorted and unique.
  const QuerySig sig = SignatureOfConcepts(query_doc.concepts(), /*sds=*/true);
  return Rank(k, sig,
              [&](Drc* engine, corpus::DocId,
                  const corpus::Document& doc) -> util::StatusOr<double> {
                return engine->DocDocDistance(query_doc.concepts(),
                                              doc.concepts());
              });
}

util::StatusOr<std::vector<ScoredDocument>>
ExhaustiveRanker::TopKRelevantWeighted(std::span<const WeightedConcept> query,
                                       std::uint32_t k) {
  const std::vector<WeightedConcept> normalized =
      NormalizeWeightedConcepts(query);
  const QuerySig sig = SignatureOfWeighted(normalized);
  return Rank(k, sig,
              [&](Drc* engine, corpus::DocId,
                  const corpus::Document& doc) -> util::StatusOr<double> {
                return engine->DocQueryDistanceWeighted(doc.concepts(),
                                                        normalized);
              });
}

util::StatusOr<std::vector<ScoredDocument>>
ExhaustiveRanker::TopKSimilarWeighted(const corpus::Document& query_doc,
                                      const ConceptWeights& weights,
                                      std::uint32_t k) {
  // Weighted SDS depends on the full per-concept weight table, so it is
  // not memoized: the invalid signature bypasses the memo.
  return Rank(k, QuerySig{},
              [&](Drc* engine, corpus::DocId,
                  const corpus::Document& doc) -> util::StatusOr<double> {
                return engine->DocDocDistanceWeighted(
                    query_doc.concepts(), doc.concepts(), weights);
              });
}

}  // namespace ecdr::core
