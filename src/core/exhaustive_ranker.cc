#include "core/exhaustive_ranker.h"

#include <algorithm>

#include "util/timer.h"

namespace ecdr::core {

ExhaustiveRanker::ExhaustiveRanker(const corpus::Corpus& corpus, Drc* drc)
    : corpus_(&corpus), drc_(drc) {
  ECDR_CHECK(drc != nullptr);
}

template <typename ScoreFn>
util::StatusOr<std::vector<ScoredDocument>> ExhaustiveRanker::Rank(
    std::uint32_t k, ScoreFn&& score) {
  last_stats_ = Stats();
  util::WallTimer timer;
  // Max-heap of the k best: the worst kept document sits at the front.
  std::vector<ScoredDocument> heap;
  for (corpus::DocId d = 0; d < corpus_->num_documents(); ++d) {
    util::StatusOr<double> distance = score(d);
    ECDR_RETURN_IF_ERROR(distance.status());
    ++last_stats_.documents_scored;
    const ScoredDocument scored{d, *distance};
    if (heap.size() < k) {
      heap.push_back(scored);
      std::push_heap(heap.begin(), heap.end(), ScoredBefore);
    } else if (k > 0 && ScoredBefore(scored, heap.front())) {
      std::pop_heap(heap.begin(), heap.end(), ScoredBefore);
      heap.back() = scored;
      std::push_heap(heap.begin(), heap.end(), ScoredBefore);
    }
  }
  std::sort(heap.begin(), heap.end(), ScoredBefore);
  last_stats_.seconds = timer.ElapsedSeconds();
  return heap;
}

util::StatusOr<std::vector<ScoredDocument>> ExhaustiveRanker::TopKRelevant(
    std::span<const ontology::ConceptId> query, std::uint32_t k) {
  return Rank(k, [&](corpus::DocId d) -> util::StatusOr<double> {
    util::StatusOr<std::uint64_t> distance =
        drc_->DocQueryDistance(corpus_->document(d).concepts(), query);
    ECDR_RETURN_IF_ERROR(distance.status());
    return static_cast<double>(*distance);
  });
}

util::StatusOr<std::vector<ScoredDocument>> ExhaustiveRanker::TopKSimilar(
    const corpus::Document& query_doc, std::uint32_t k) {
  return Rank(k, [&](corpus::DocId d) -> util::StatusOr<double> {
    return drc_->DocDocDistance(query_doc.concepts(),
                                corpus_->document(d).concepts());
  });
}

util::StatusOr<std::vector<ScoredDocument>>
ExhaustiveRanker::TopKRelevantWeighted(std::span<const WeightedConcept> query,
                                       std::uint32_t k) {
  const std::vector<WeightedConcept> normalized =
      NormalizeWeightedConcepts(query);
  return Rank(k, [&](corpus::DocId d) -> util::StatusOr<double> {
    return drc_->DocQueryDistanceWeighted(corpus_->document(d).concepts(),
                                          normalized);
  });
}

util::StatusOr<std::vector<ScoredDocument>>
ExhaustiveRanker::TopKSimilarWeighted(const corpus::Document& query_doc,
                                      const ConceptWeights& weights,
                                      std::uint32_t k) {
  return Rank(k, [&](corpus::DocId d) -> util::StatusOr<double> {
    return drc_->DocDocDistanceWeighted(
        query_doc.concepts(), corpus_->document(d).concepts(), weights);
  });
}

}  // namespace ecdr::core
