#include "core/semantic_similarity.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

namespace ecdr::core {

const char* SemanticMeasureName(SemanticMeasure measure) {
  switch (measure) {
    case SemanticMeasure::kShortestPath:
      return "shortest-path";
    case SemanticMeasure::kWuPalmer:
      return "wu-palmer";
    case SemanticMeasure::kResnik:
      return "resnik";
    case SemanticMeasure::kLin:
      return "lin";
  }
  return "unknown";
}

ConceptSimilarity::ConceptSimilarity(const ontology::Ontology& ontology,
                                     const corpus::Corpus* corpus,
                                     SemanticMeasure measure,
                                     ontology::ConceptPairCache* pair_cache)
    : ontology_(&ontology),
      measure_(measure),
      oracle_(ontology, pair_cache) {
  if (measure != SemanticMeasure::kResnik && measure != SemanticMeasure::kLin) {
    return;
  }
  ECDR_CHECK(corpus != nullptr);
  // Propagated occurrence counts: each document occurrence of a concept
  // counts toward the concept and all its ancestors. Propagation runs in
  // reverse topological order along parent links.
  const std::uint32_t n = ontology.num_concepts();
  std::vector<double> counts(n, 1.0);  // Laplace smoothing: never zero.
  double total = n;
  for (corpus::DocId d = 0; d < corpus->num_documents(); ++d) {
    for (ontology::ConceptId c : corpus->document(d).concepts()) {
      counts[c] += 1.0;
      total += 1.0;
    }
  }
  // Reverse topological order via Kahn over children.
  std::vector<std::uint32_t> pending(n, 0);
  for (ontology::ConceptId c = 0; c < n; ++c) {
    pending[c] = static_cast<std::uint32_t>(ontology.children(c).size());
  }
  std::vector<ontology::ConceptId> order;
  order.reserve(n);
  for (ontology::ConceptId c = 0; c < n; ++c) {
    if (pending[c] == 0) order.push_back(c);
  }
  for (std::size_t head = 0; head < order.size(); ++head) {
    const ontology::ConceptId c = order[head];
    for (ontology::ConceptId parent : ontology.parents(c)) {
      counts[parent] += counts[c];
      if (--pending[parent] == 0) order.push_back(parent);
    }
  }
  ECDR_CHECK_EQ(order.size(), n);

  information_content_.resize(n);
  const double root_count = counts[ontology.root()];
  (void)total;
  for (ontology::ConceptId c = 0; c < n; ++c) {
    // Normalize by the root's propagated count so IC(root) == 0.
    information_content_[c] =
        -std::log(std::min(1.0, counts[c] / root_count));
  }
}

double ConceptSimilarity::InformationContent(ontology::ConceptId c) const {
  ECDR_CHECK(!information_content_.empty());
  ECDR_DCHECK(ontology_->Contains(c));
  return information_content_[c];
}

std::vector<ConceptSimilarity::CommonAncestor>
ConceptSimilarity::CommonAncestors(ontology::ConceptId a,
                                   ontology::ConceptId b) {
  std::unordered_map<ontology::ConceptId, std::uint32_t> up_a;
  std::unordered_map<ontology::ConceptId, std::uint32_t> up_b;
  oracle_.UpDistances(a, &up_a);
  oracle_.UpDistances(b, &up_b);
  std::vector<CommonAncestor> common;
  for (const auto& [ancestor, dist_a] : up_a) {
    const auto it = up_b.find(ancestor);
    if (it != up_b.end()) {
      common.push_back(CommonAncestor{ancestor, dist_a, it->second});
    }
  }
  return common;
}

double ConceptSimilarity::Distance(ontology::ConceptId a,
                                   ontology::ConceptId b) {
  ECDR_DCHECK(ontology_->Contains(a));
  ECDR_DCHECK(ontology_->Contains(b));
  switch (measure_) {
    case SemanticMeasure::kShortestPath:
      return static_cast<double>(oracle_.ConceptDistance(a, b));
    case SemanticMeasure::kWuPalmer: {
      // sim = 2*depth(lcs) / (depth(a) + depth(b)), lcs maximizing depth.
      if (a == b) return 0.0;
      std::uint32_t best_depth = 0;
      for (const CommonAncestor& ca : CommonAncestors(a, b)) {
        best_depth = std::max(best_depth, ontology_->depth(ca.concept_id));
      }
      const double denominator =
          static_cast<double>(ontology_->depth(a) + ontology_->depth(b));
      if (denominator == 0.0) return 0.0;  // Both are the root.
      return 1.0 - 2.0 * static_cast<double>(best_depth) / denominator;
    }
    case SemanticMeasure::kResnik: {
      double best_ic = 0.0;
      for (const CommonAncestor& ca : CommonAncestors(a, b)) {
        best_ic = std::max(best_ic, InformationContent(ca.concept_id));
      }
      return 1.0 / (1.0 + best_ic);
    }
    case SemanticMeasure::kLin: {
      if (a == b) return 0.0;
      double best_ic = 0.0;
      for (const CommonAncestor& ca : CommonAncestors(a, b)) {
        best_ic = std::max(best_ic, InformationContent(ca.concept_id));
      }
      const double denominator = InformationContent(a) + InformationContent(b);
      if (denominator == 0.0) return 0.0;
      return 1.0 - 2.0 * best_ic / denominator;
    }
  }
  ECDR_CHECK(false);
  return 0.0;
}

double ConceptSimilarity::DocDocDistance(
    std::span<const ontology::ConceptId> d1,
    std::span<const ontology::ConceptId> d2) {
  ECDR_CHECK(!d1.empty());
  ECDR_CHECK(!d2.empty());
  // Eq. 3 generalized: pairwise best-match in both directions. This is
  // quadratic; it exists for effectiveness comparisons, not speed.
  std::vector<double> min1(d1.size(), std::numeric_limits<double>::infinity());
  std::vector<double> min2(d2.size(), std::numeric_limits<double>::infinity());
  for (std::size_t i = 0; i < d1.size(); ++i) {
    for (std::size_t j = 0; j < d2.size(); ++j) {
      const double distance = Distance(d1[i], d2[j]);
      min1[i] = std::min(min1[i], distance);
      min2[j] = std::min(min2[j], distance);
    }
  }
  double sum1 = 0.0;
  for (double m : min1) sum1 += m;
  double sum2 = 0.0;
  for (double m : min2) sum2 += m;
  return sum1 / static_cast<double>(d1.size()) +
         sum2 / static_cast<double>(d2.size());
}

}  // namespace ecdr::core
