#include "core/snapshot_builder.h"

#include <algorithm>
#include <memory>
#include <utility>

namespace ecdr::core {

SnapshotBuilder::SnapshotBuilder(const ontology::Ontology& ontology,
                                 ontology::AddressEnumerator* addresses,
                                 DdqMemo* ddq_memo,
                                 util::SnapshotHandle<EngineSnapshot>* root,
                                 SnapshotOptions options)
    : ontology_(&ontology),
      addresses_(addresses),
      ddq_memo_(ddq_memo),
      root_(root),
      options_(options) {
  ECDR_CHECK(root != nullptr);
  std::lock_guard<std::mutex> lock(mutex_);
  PublishLocked();  // generation 0: the empty corpus
}

util::Status SnapshotBuilder::Validate(const corpus::Document& doc) const {
  // Mirrors Corpus::AddDocument so errors surface here, before the
  // document enters the pending delta (the publish-time insert below is
  // then infallible).
  if (doc.empty()) {
    return util::InvalidArgumentError("document has no concepts");
  }
  const ontology::ConceptId largest = doc.concepts().back();
  if (!ontology_->Contains(largest)) {
    return util::InvalidArgumentError(
        "document references concept id " + std::to_string(largest) +
        " outside the ontology (" + std::to_string(ontology_->num_concepts()) +
        " concepts)");
  }
  return util::Status::Ok();
}

util::StatusOr<corpus::DocId> SnapshotBuilder::AddDocument(
    corpus::Document doc) {
  ECDR_RETURN_IF_ERROR(Validate(doc));
  std::lock_guard<std::mutex> lock(mutex_);
  if (pending_.size() >= options_.max_pending_docs) {
    return util::ResourceExhaustedError(
        "write buffer full: " + std::to_string(pending_.size()) +
        " documents pending publish (max_pending_docs=" +
        std::to_string(options_.max_pending_docs) + "); Flush() or retry");
  }
  const std::shared_ptr<const EngineSnapshot> current = root_->Acquire();
  const corpus::DocId id = static_cast<corpus::DocId>(
      current->corpus.num_documents() + pending_.size());
  pending_.push_back(std::move(doc));
  // publish_batch_size 0 = manual mode: only Flush() publishes. A batch
  // larger than max_pending_docs can likewise never fill — both drain
  // through Flush() and shed with kResourceExhausted above meanwhile.
  if (options_.publish_batch_size > 0 &&
      pending_.size() >= options_.publish_batch_size) {
    PublishLocked();
  }
  return id;
}

util::Status SnapshotBuilder::AddCorpus(const corpus::Corpus& source) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!pending_.empty()) PublishLocked();
  const std::shared_ptr<const EngineSnapshot> current = root_->Acquire();
  corpus::Corpus next = current->corpus;
  const corpus::DocId first_new = next.num_documents();
  const std::uint64_t total = first_new + source.num_documents();
  if (next.segment_target() == 0 && options_.num_shards > 1 && total > 0) {
    next.set_segment_target(static_cast<std::uint32_t>(
        (total + options_.num_shards - 1) / options_.num_shards));
  }
  for (corpus::DocId d = 0; d < source.num_documents(); ++d) {
    const util::StatusOr<corpus::DocId> added =
        next.AddDocument(source.document(d));
    ECDR_RETURN_IF_ERROR(added.status());
  }
  index::ShardedIndex next_index(next, &current->index);
  if (ddq_memo_ != nullptr) {
    for (corpus::DocId d = first_new; d < next.num_documents(); ++d) {
      ddq_memo_->InvalidateDocument(d);
    }
  }
  root_->Publish(std::make_shared<EngineSnapshot>(
      next_generation_++, std::move(next), std::move(next_index), addresses_,
      ddq_memo_ != nullptr ? ddq_memo_->epoch() : 0));
  return util::Status::Ok();
}

void SnapshotBuilder::Flush() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!pending_.empty()) PublishLocked();
}

void SnapshotBuilder::PublishLocked() {
  const std::shared_ptr<const EngineSnapshot> current = root_->Acquire();
  corpus::Corpus next =
      current != nullptr ? current->corpus : corpus::Corpus(*ontology_);
  if (current == nullptr) {
    next.set_segment_target(options_.target_docs_per_shard);
  }
  const corpus::DocId first_new = next.num_documents();
  for (corpus::Document& doc : pending_) {
    // Validated on entry; the only failure modes were caught there.
    const util::StatusOr<corpus::DocId> added = next.AddDocument(std::move(doc));
    ECDR_CHECK(added.ok());
  }
  pending_.clear();
  index::ShardedIndex next_index(next,
                                 current != nullptr ? &current->index : nullptr);
  if (ddq_memo_ != nullptr) {
    for (corpus::DocId d = first_new; d < next.num_documents(); ++d) {
      ddq_memo_->InvalidateDocument(d);
    }
  }
  root_->Publish(std::make_shared<EngineSnapshot>(
      next_generation_++, std::move(next), std::move(next_index), addresses_,
      ddq_memo_ != nullptr ? ddq_memo_->epoch() : 0));
}

std::size_t SnapshotBuilder::pending_documents() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return pending_.size();
}

std::uint64_t SnapshotBuilder::generations_published() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return next_generation_;
}

}  // namespace ecdr::core
