#include "core/snapshot_builder.h"

#include <algorithm>
#include <memory>
#include <string>
#include <utility>

namespace ecdr::core {

SnapshotBuilder::SnapshotBuilder(
    std::shared_ptr<const ontology::OntologySnapshot> ontology,
    DdqMemo* ddq_memo, util::SnapshotHandle<EngineSnapshot>* root,
    SnapshotOptions options, storage::DocumentStore* store,
    RecoveredState* recovered)
    : ddq_memo_(ddq_memo),
      root_(root),
      options_(options),
      store_(store),
      ontology_(std::move(ontology)) {
  ECDR_CHECK(root != nullptr);
  ECDR_CHECK(ontology_ != nullptr);
  std::lock_guard<std::mutex> lock(mutex_);
  if (recovered == nullptr) {
    // Generation 0: the empty corpus. Infallible — nothing pending, so
    // the store (if any) has nothing to sync.
    ECDR_CHECK(PublishLocked().ok());
    return;
  }
  // Generation 0: the recovered pre-crash corpus. The image's index is
  // exact only when WAL replay applied nothing on top of it; otherwise
  // rebuild (one-time boot cost, shared nothing to reuse anyway).
  corpus::Corpus next = std::move(recovered->corpus);
  next.RebindOntology(ontology_->dag());
  if (next.segment_target() == 0) {
    next.set_segment_target(options_.target_docs_per_shard);
  }
  index::ShardedIndex next_index = recovered->index_exact
                                       ? std::move(recovered->index)
                                       : index::ShardedIndex(next);
  published_lsn_ = recovered->last_lsn;
  root_->Publish(std::make_shared<EngineSnapshot>(
      next_generation_++, std::move(next), std::move(next_index), ontology_,
      ddq_memo_ != nullptr ? ddq_memo_->epoch() : 0));
}

util::Status SnapshotBuilder::ValidateLocked(
    const corpus::Document& doc) const {
  // Mirrors Corpus::AddDocument so errors surface here, before the
  // document enters the pending delta (the publish-time insert below is
  // then infallible).
  if (doc.empty()) {
    return util::InvalidArgumentError("document has no concepts");
  }
  const ontology::Ontology& dag = ontology_->dag();
  const ontology::ConceptId largest = doc.concepts().back();
  if (!dag.Contains(largest)) {
    return util::InvalidArgumentError(
        "document references concept id " + std::to_string(largest) +
        " outside the ontology (" + std::to_string(dag.num_concepts()) +
        " concepts)");
  }
  // New writes may not reference retired concepts; existing documents
  // that do keep serving unchanged (retirement is forward-looking).
  if (ontology_->num_retired() > 0) {
    for (const ontology::ConceptId c : doc.concepts()) {
      if (ontology_->retired(c)) {
        return util::FailedPreconditionError(
            "document references retired concept " + std::to_string(c) +
            " ('" + std::string(dag.name(c)) + "')");
      }
    }
  }
  return util::Status::Ok();
}

util::Status SnapshotBuilder::ValidateTargetLocked(
    const EngineSnapshot& current, corpus::DocId doc) const {
  const corpus::DocId assigned = static_cast<corpus::DocId>(
      current.corpus.num_documents() + pending_adds_);
  if (doc >= assigned) {
    return util::OutOfRangeError("document id " + std::to_string(doc) +
                                 " out of range (" + std::to_string(assigned) +
                                 " documents)");
  }
  if (pending_deleted_.count(doc) != 0 ||
      (doc < current.corpus.num_documents() && current.corpus.IsDeleted(doc))) {
    return util::NotFoundError("document " + std::to_string(doc) +
                               " was deleted");
  }
  return util::Status::Ok();
}

util::Status SnapshotBuilder::MaybePublishBatchLocked() {
  // publish_batch_size 0 = manual mode: only Flush() publishes. A batch
  // larger than max_pending_docs can likewise never fill — both drain
  // through Flush() and shed with kResourceExhausted meanwhile.
  if (options_.publish_batch_size > 0 &&
      pending_.size() >= options_.publish_batch_size) {
    return PublishLocked();
  }
  return util::Status::Ok();
}

util::StatusOr<corpus::DocId> SnapshotBuilder::AddDocument(
    corpus::Document doc) {
  std::lock_guard<std::mutex> lock(mutex_);
  ECDR_RETURN_IF_ERROR(ValidateLocked(doc));
  if (pending_.size() >= options_.max_pending_docs) {
    return util::ResourceExhaustedError(
        "write buffer full: " + std::to_string(pending_.size()) +
        " operations pending publish (max_pending_docs=" +
        std::to_string(options_.max_pending_docs) + "); Flush() or retry");
  }
  const std::shared_ptr<const EngineSnapshot> current = root_->Acquire();
  const corpus::DocId id = static_cast<corpus::DocId>(
      current->corpus.num_documents() + pending_adds_);
  std::uint64_t lsn = 0;
  if (store_ != nullptr) {
    // Log-ahead: the record hits the WAL before any in-memory state
    // changes; on failure nothing was enqueued and nothing publishes.
    const util::StatusOr<std::uint64_t> logged = store_->LogAdd(doc);
    ECDR_RETURN_IF_ERROR(logged.status());
    lsn = *logged;
  }
  pending_.push_back(PendingOp{OpKind::kAdd, std::move(doc), id, lsn});
  ++pending_adds_;
  ECDR_RETURN_IF_ERROR(MaybePublishBatchLocked());
  return id;
}

util::Status SnapshotBuilder::DeleteDocument(corpus::DocId doc) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (pending_.size() >= options_.max_pending_docs) {
    return util::ResourceExhaustedError(
        "write buffer full: " + std::to_string(pending_.size()) +
        " operations pending publish; Flush() or retry");
  }
  const std::shared_ptr<const EngineSnapshot> current = root_->Acquire();
  ECDR_RETURN_IF_ERROR(ValidateTargetLocked(*current, doc));
  std::uint64_t lsn = 0;
  if (store_ != nullptr) {
    const util::StatusOr<std::uint64_t> logged = store_->LogDelete(doc);
    ECDR_RETURN_IF_ERROR(logged.status());
    lsn = *logged;
  }
  pending_.push_back(PendingOp{OpKind::kDelete, corpus::Document(), doc, lsn});
  pending_deleted_.insert(doc);
  return MaybePublishBatchLocked();
}

util::Status SnapshotBuilder::UpdateDocument(corpus::DocId doc,
                                             corpus::Document new_doc) {
  std::lock_guard<std::mutex> lock(mutex_);
  ECDR_RETURN_IF_ERROR(ValidateLocked(new_doc));
  if (pending_.size() >= options_.max_pending_docs) {
    return util::ResourceExhaustedError(
        "write buffer full: " + std::to_string(pending_.size()) +
        " operations pending publish; Flush() or retry");
  }
  const std::shared_ptr<const EngineSnapshot> current = root_->Acquire();
  ECDR_RETURN_IF_ERROR(ValidateTargetLocked(*current, doc));
  std::uint64_t lsn = 0;
  if (store_ != nullptr) {
    const util::StatusOr<std::uint64_t> logged =
        store_->LogUpdate(doc, new_doc);
    ECDR_RETURN_IF_ERROR(logged.status());
    lsn = *logged;
  }
  pending_.push_back(
      PendingOp{OpKind::kUpdate, std::move(new_doc), doc, lsn});
  return MaybePublishBatchLocked();
}

util::Status SnapshotBuilder::AddCorpus(const corpus::Corpus& source) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!pending_.empty()) ECDR_RETURN_IF_ERROR(PublishLocked());
  const std::shared_ptr<const EngineSnapshot> current = root_->Acquire();
  corpus::Corpus next = current->corpus;
  const corpus::DocId first_new = next.num_documents();
  const std::uint64_t total = first_new + source.num_documents();
  if (next.segment_target() == 0 && options_.num_shards > 1 && total > 0) {
    next.set_segment_target(static_cast<std::uint32_t>(
        (total + options_.num_shards - 1) / options_.num_shards));
  }
  std::uint64_t max_lsn = published_lsn_;
  for (corpus::DocId d = 0; d < source.num_documents(); ++d) {
    if (store_ != nullptr) {
      const util::StatusOr<std::uint64_t> logged =
          store_->LogAdd(source.document(d));
      ECDR_RETURN_IF_ERROR(logged.status());
      max_lsn = *logged;
    }
    const util::StatusOr<corpus::DocId> added =
        next.AddDocument(source.document(d));
    ECDR_RETURN_IF_ERROR(added.status());
  }
  if (store_ != nullptr) ECDR_RETURN_IF_ERROR(store_->SyncWal());
  index::ShardedIndex next_index(next, &current->index);
  if (ddq_memo_ != nullptr) {
    for (corpus::DocId d = first_new; d < next.num_documents(); ++d) {
      ddq_memo_->InvalidateDocument(d);
    }
  }
  root_->Publish(std::make_shared<EngineSnapshot>(
      next_generation_++, std::move(next), std::move(next_index), ontology_,
      ddq_memo_ != nullptr ? ddq_memo_->epoch() : 0));
  published_lsn_ = max_lsn;
  return util::Status::Ok();
}

util::Status SnapshotBuilder::Flush() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!pending_.empty()) return PublishLocked();
  return util::Status::Ok();
}

util::Status SnapshotBuilder::PublishLocked() {
  // Durability barrier before visibility: when a store is attached, an
  // acknowledged publish must survive kill -9 (fsync_mode permitting).
  // On failure the delta stays pending — retried by the next Flush —
  // and readers never see unsynced state.
  if (store_ != nullptr && !pending_.empty()) {
    ECDR_RETURN_IF_ERROR(store_->SyncWal());
  }
  const std::shared_ptr<const EngineSnapshot> current = root_->Acquire();
  corpus::Corpus next =
      current != nullptr ? current->corpus : corpus::Corpus(ontology_->dag());
  if (current == nullptr) {
    next.set_segment_target(options_.target_docs_per_shard);
  }
  std::uint64_t max_lsn = published_lsn_;
  for (PendingOp& op : pending_) {
    // Validated on entry; the only failure modes were caught there.
    switch (op.kind) {
      case OpKind::kAdd: {
        const util::StatusOr<corpus::DocId> added =
            next.AddDocument(std::move(op.doc));
        ECDR_CHECK(added.ok());
        ECDR_CHECK_EQ(*added, op.target);
        break;
      }
      case OpKind::kDelete:
        ECDR_CHECK(next.DeleteDocument(op.target).ok());
        break;
      case OpKind::kUpdate:
        ECDR_CHECK(next.UpdateDocument(op.target, std::move(op.doc)).ok());
        break;
    }
    if (ddq_memo_ != nullptr) ddq_memo_->InvalidateDocument(op.target);
    max_lsn = std::max(max_lsn, op.lsn);
  }
  pending_.clear();
  pending_adds_ = 0;
  pending_deleted_.clear();
  index::ShardedIndex next_index(next,
                                 current != nullptr ? &current->index : nullptr);
  root_->Publish(std::make_shared<EngineSnapshot>(
      next_generation_++, std::move(next), std::move(next_index), ontology_,
      ddq_memo_ != nullptr ? ddq_memo_->epoch() : 0));
  published_lsn_ = max_lsn;
  return util::Status::Ok();
}

util::Status SnapshotBuilder::Compact(std::uint32_t min_docs_per_segment) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!pending_.empty()) ECDR_RETURN_IF_ERROR(PublishLocked());
  const std::shared_ptr<const EngineSnapshot> current = root_->Acquire();
  corpus::Corpus next = current->corpus.Compacted(min_docs_per_segment);
  if (next.num_segments() == current->corpus.num_segments()) {
    return util::Status::Ok();  // Nothing small enough to merge.
  }
  // Untouched (large) segments keep their identity, so their shards are
  // shared; only merged runs are re-indexed. Documents are unchanged —
  // no cache invalidation, same ddq epoch.
  index::ShardedIndex next_index(next, &current->index);
  root_->Publish(std::make_shared<EngineSnapshot>(
      next_generation_++, std::move(next), std::move(next_index), ontology_,
      current->ddq_epoch));
  return util::Status::Ok();
}

util::Status SnapshotBuilder::SwapOntology(
    std::shared_ptr<const ontology::OntologySnapshot> next_ontology) {
  ECDR_CHECK(next_ontology != nullptr);
  std::lock_guard<std::mutex> lock(mutex_);
  // Drain the delta under the OLD version first: its documents were
  // validated (and WAL-ordered) against it, and the publish below must
  // carry exactly one ontology step.
  if (!pending_.empty()) ECDR_RETURN_IF_ERROR(PublishLocked());
  const std::shared_ptr<const EngineSnapshot> current = root_->Acquire();
  ontology_ = std::move(next_ontology);
  corpus::Corpus next = current->corpus;
  next.RebindOntology(ontology_->dag());
  // Share, don't rebuild: evolution is append-only, so no stored
  // document references a concept the old index lacks, and the index
  // answers empty postings for concepts beyond its build-time bound.
  index::ShardedIndex next_index(next, &current->index);
  // Same documents, new ontology: document identities are untouched, so
  // the ddq epoch carries over (memo correctness across the structural
  // change is the signature salt's job, not the epoch's).
  root_->Publish(std::make_shared<EngineSnapshot>(
      next_generation_++, std::move(next), std::move(next_index), ontology_,
      current->ddq_epoch));
  return util::Status::Ok();
}

util::Status SnapshotBuilder::Checkpoint(storage::DocumentStore* store) {
  ECDR_CHECK(store != nullptr);
  std::lock_guard<std::mutex> lock(mutex_);
  if (!pending_.empty()) ECDR_RETURN_IF_ERROR(PublishLocked());
  const std::shared_ptr<const EngineSnapshot> current = root_->Acquire();
  // Image generations are store-monotone (they survive restarts; engine
  // generations restart at 0 every boot).
  const std::uint64_t generation = store->stats().image_generation + 1;
  const ontology::FlatDeweyPool* dewey =
      ontology_->addresses() != nullptr ? ontology_->addresses()->flat_pool()
                                        : nullptr;
  return store->WriteCheckpoint(current->corpus, current->index, dewey,
                                ontology_.get(), generation, published_lsn_);
}

std::shared_ptr<const ontology::OntologySnapshot> SnapshotBuilder::ontology()
    const {
  std::lock_guard<std::mutex> lock(mutex_);
  return ontology_;
}

std::size_t SnapshotBuilder::pending_documents() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return pending_.size();
}

std::uint64_t SnapshotBuilder::generations_published() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return next_generation_;
}

std::uint64_t SnapshotBuilder::published_lsn() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return published_lsn_;
}

}  // namespace ecdr::core
