#include "core/query_expansion.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <unordered_map>

#include "core/drc.h"
#include "ontology/valid_path_bfs.h"

namespace ecdr::core {

namespace {

using ontology::ConceptId;

/// Ancestors-only expansion: plain BFS over parent edges.
void ExpandAncestors(const ontology::Ontology& ontology, ConceptId source,
                     std::uint32_t radius,
                     std::vector<std::pair<ConceptId, std::uint32_t>>* out) {
  std::unordered_map<ConceptId, std::uint32_t> distance;
  std::queue<ConceptId> frontier;
  distance.emplace(source, 0);
  frontier.push(source);
  while (!frontier.empty()) {
    const ConceptId current = frontier.front();
    frontier.pop();
    const std::uint32_t next = distance.at(current) + 1;
    if (next > radius) continue;
    for (ConceptId parent : ontology.parents(current)) {
      if (distance.emplace(parent, next).second) {
        out->emplace_back(parent, next);
        frontier.push(parent);
      }
    }
  }
}

/// Full expansion: valid-path BFS truncated at the radius.
void ExpandValidPaths(const ontology::Ontology& ontology, ConceptId source,
                      std::uint32_t radius,
                      std::vector<std::pair<ConceptId, std::uint32_t>>* out) {
  ontology::ValidPathBfs bfs(ontology);
  const ConceptId sources[] = {source};
  bfs.Start(sources);
  std::vector<ConceptId> visited;
  std::uint32_t level = 0;
  while (bfs.NextLevel(&visited, &level)) {
    if (level > radius) break;
    for (ConceptId c : visited) {
      if (c != source) out->emplace_back(c, level);
    }
    visited.clear();
  }
}

}  // namespace

util::StatusOr<std::vector<WeightedConcept>> ExpandQuery(
    const ontology::Ontology& ontology,
    std::span<const ontology::ConceptId> query,
    const QueryExpansionOptions& options) {
  if (query.empty()) {
    return util::InvalidArgumentError("query has no concepts");
  }
  if (options.decay <= 0.0 || options.decay > 1.0) {
    return util::InvalidArgumentError("decay must be in (0, 1]");
  }
  for (ConceptId c : query) {
    if (!ontology.Contains(c)) {
      return util::InvalidArgumentError("query references unknown concept id " +
                                        std::to_string(c));
    }
  }

  std::vector<WeightedConcept> expanded;
  for (ConceptId source : query) {
    ECDR_RETURN_IF_ERROR(util::CheckCancellation(
        options.cancel_token, options.deadline, "query expansion"));
    expanded.push_back(WeightedConcept{source, 1.0});
    std::vector<std::pair<ConceptId, std::uint32_t>> reached;
    if (options.ancestors_only) {
      ExpandAncestors(ontology, source, options.radius, &reached);
    } else {
      ExpandValidPaths(ontology, source, options.radius, &reached);
    }
    // Keep the nearest expansions (ties by id) up to the per-source cap.
    std::sort(reached.begin(), reached.end(),
              [](const auto& a, const auto& b) {
                if (a.second != b.second) return a.second < b.second;
                return a.first < b.first;
              });
    if (reached.size() > options.max_expansions_per_concept) {
      reached.resize(options.max_expansions_per_concept);
    }
    for (const auto& [concept_id, distance] : reached) {
      expanded.push_back(WeightedConcept{
          concept_id, std::pow(options.decay, distance)});
    }
  }
  return NormalizeWeightedConcepts(expanded);
}

}  // namespace ecdr::core
