// The D-Radix DAG (paper Section 4.2, Definition 3).
//
// Given a document d and a query q (two concept sets), the D-Radix DAG
// indexes every Dewey address of every concept in d and q, path-
// compressed like a radix (Patricia) tree but with two departures:
//   1. it is a DAG: an address split or insertion that lands on a concept
//      already present reuses that node (the paper's FindNodeByDewey),
//      giving the node multiple parents — this is what lets one
//      bottom-up + top-down sweep propagate distances through shared
//      ancestors reached by different addresses;
//   2. nodes of concepts in d or q are never merged into an edge label,
//      even when they have no branch (paper: R and U stay separate).
//
// Each node carries two distances — to the nearest document concept and
// to the nearest query concept — initialized to 0/infinity at insertion
// and finalized by TuneDistances() (Eq. 4). Edge labels are runs of
// Dewey components; an edge's length (its component count) is the number
// of ontology is-a edges it compresses.
//
// Storage is structure-of-arrays, built for reuse: per-node attributes
// live in parallel vectors, edges in one flat array chained into
// per-node singly-linked lists, and edge labels are {offset,length}
// runs in a DAG-owned component arena. InsertAddress() appends the
// address to the arena exactly once; a label is always a contiguous
// subrange of one inserted address, so radix splits are offset
// arithmetic, never copies. Reset() rewinds the arena while keeping
// capacity, and the concept -> node table is epoch-stamped so a reset
// costs O(1), not O(num_concepts). One DRadixDag can therefore be
// recycled across millions of DRC calls without touching the heap —
// see core/drc.h's Drc::Scratch.
//
// The DAG is self-contained: it copies address components into its own
// arena, so it may outlive the enumerator / Drc that built it. Edge
// label spans handed out by node()/children() point into that arena and
// stay valid until the next Reset().

#ifndef ECDR_CORE_D_RADIX_H_
#define ECDR_CORE_D_RADIX_H_

#include <cstdint>
#include <span>
#include <vector>

#include "ontology/ontology.h"
#include "ontology/types.h"
#include "util/status.h"

namespace ecdr::core {

class DRadixDag {
 public:
  using NodeIndex = std::uint32_t;
  static constexpr NodeIndex kInvalidNode = 0xFFFFFFFFu;
  /// Large enough to survive += label lengths without overflow.
  static constexpr std::uint32_t kUnreachable = 0x3FFFFFFFu;

  /// A child edge, viewed: `label` points into the DAG's component
  /// arena (valid until the next Reset()).
  struct Edge {
    std::span<const std::uint32_t> label;  // Dewey components; length >= 1.
    NodeIndex target = kInvalidNode;

    std::uint32_t length() const {
      return static_cast<std::uint32_t>(label.size());
    }
  };

  /// Forward range over a node's child edges (views assembled on the
  /// fly from the flat edge array).
  class EdgeRange {
   public:
    class Iterator {
     public:
      Iterator(const DRadixDag* dag, std::uint32_t edge)
          : dag_(dag), edge_(edge) {}
      Edge operator*() const { return dag_->EdgeAt(edge_); }
      Iterator& operator++() {
        edge_ = dag_->NextEdge(edge_);
        return *this;
      }
      bool operator==(const Iterator& other) const {
        return edge_ == other.edge_;
      }
      bool operator!=(const Iterator& other) const {
        return edge_ != other.edge_;
      }

     private:
      const DRadixDag* dag_;
      std::uint32_t edge_;
    };

    EdgeRange(const DRadixDag* dag, std::uint32_t first)
        : dag_(dag), first_(first) {}
    Iterator begin() const { return Iterator(dag_, first_); }
    Iterator end() const { return Iterator(dag_, kNilEdge); }
    bool empty() const { return first_ == kNilEdge; }

   private:
    const DRadixDag* dag_;
    std::uint32_t first_;
  };

  /// A node, viewed (assembled from the parallel arrays). Hot code uses
  /// the direct per-attribute accessors below instead.
  struct Node {
    ontology::ConceptId concept_id = ontology::kInvalidConcept;
    bool in_doc = false;
    bool in_query = false;
    /// Distance to the nearest document / query concept; valid after
    /// TuneDistances().
    std::uint32_t dist_to_doc = kUnreachable;
    std::uint32_t dist_to_query = kUnreachable;
    EdgeRange children;
    std::uint32_t in_degree = 0;
  };

  /// An unbound arena: Reset(ontology) must run before any insertion.
  DRadixDag() = default;

  /// Creates the index with a single root node for the ontology root.
  explicit DRadixDag(const ontology::Ontology& ontology) { Reset(ontology); }

  DRadixDag(DRadixDag&&) = default;
  DRadixDag& operator=(DRadixDag&&) = default;
  DRadixDag(const DRadixDag&) = delete;
  DRadixDag& operator=(const DRadixDag&) = delete;

  /// Rewinds to a single root node over `ontology`, keeping every
  /// buffer's capacity. O(1) apart from first-time (or first-ontology)
  /// concept-table sizing; after warm-up it performs no allocation.
  void Reset(const ontology::Ontology& ontology);

  /// Replaces this DAG's contents with a copy of `other` (which must
  /// not have an open merge). Equivalent to replaying other's exact
  /// insertion sequence, but by bulk array copies: O(nodes + edges +
  /// label components) sequential memory, no radix walks. This is how
  /// DRC stamps a cached per-document DAG into the scratch arena before
  /// layering a query on top (see drc.h). Buffers keep their capacity,
  /// so copying same-shaped sources repeatedly does not allocate. The
  /// copy starts a fresh generation (like Reset) and does not resume
  /// other's insertion path: the next insertion walks from the root.
  void CopyFrom(const DRadixDag& other);

  /// Inserts one Dewey address of `concept`, flagged as a document and/or
  /// query concept. `address` must resolve to `concept` in the ontology;
  /// its components are copied into the DAG's arena, so the caller's
  /// storage may be transient. All addresses of all concepts in d and q
  /// must be inserted for the distances to be exact (the paper's Pd / Pq
  /// lists).
  void InsertAddress(ontology::ConceptId concept_id,
                     std::span<const std::uint32_t> address, bool in_doc,
                     bool in_query);

  /// InsertAddress with the common-prefix length against the previously
  /// inserted address supplied by the caller instead of recomputed here
  /// (DRC derives it from FlatDeweyPool::rank_lcp() — a window minimum
  /// of precomputed u32s instead of a component-wise compare). Two
  /// extra contract points: an insertion must already be resumable
  /// (some address was inserted since Reset(), and neither Rollback-
  /// Merge nor Reset intervened), and `address` must stay readable
  /// until the next insertion or Reset — the DAG keeps a view of it
  /// instead of copying it. Pool-arena spans satisfy this for free.
  void InsertAddressResumed(ontology::ConceptId concept_id,
                            std::span<const std::uint32_t> address,
                            std::uint32_t lcp_with_previous, bool in_doc,
                            bool in_query);

  /// True if the next insertion may use InsertAddressResumed.
  bool resume_valid() const { return resume_valid_; }

  /// The tuning phase: one bottom-up and one top-down relaxation sweep in
  /// topological order (Eq. 4), after which every node's dist_to_doc /
  /// dist_to_query equal its shortest valid-path distance to the nearest
  /// document / query concept within the ontology.
  void TuneDistances();

  /// Starts an undoable span: from here until RollbackMerge(), every
  /// structural mutation of pre-existing state (head pointers, sibling
  /// links, flags, in-degrees) is recorded in an undo log, and appended
  /// nodes/edges/label components are tracked by size marks. This is
  /// how DRC merges one candidate document's address paths into a
  /// persistent query skeleton and detaches them afterwards: appended
  /// storage is truncated, logged slots are replayed in reverse, so the
  /// DAG returns to a state bit-identical with the pre-merge one (see
  /// DESIGN.md "Query-skeleton reuse"). One merge may be open at a
  /// time; Reset() discards an open merge.
  void BeginMerge();

  /// Undoes everything since BeginMerge() (see above). The restored
  /// state is bit-identical except dist_to_doc_/dist_to_query_, which
  /// are derived and overwritten wholesale by the next TuneDistances().
  void RollbackMerge();

  bool merge_active() const { return merge_active_; }

  /// Undo-log length of the open merge — DRC's cheap proxy for "is a
  /// rollback cheaper than a fresh skeleton build".
  std::size_t merge_log_size() const { return undo_log_.size(); }

  /// Bumps on every Reset(); lets callers detect that a DAG they cached
  /// derived state against has been rebuilt behind their back.
  std::uint32_t generation() const { return epoch_; }

  /// ORs the doc/query flags onto the existing node of `concept_id`
  /// (which must be in the DAG — it aborts otherwise). Used when a
  /// merge adds a side flag to a concept whose addresses the skeleton
  /// already carries; logged like any other merge mutation.
  void MarkFlags(ontology::ConceptId concept_id, bool in_doc, bool in_query);

  NodeIndex root() const { return 0; }
  Node node(NodeIndex i) const {
    ECDR_DCHECK_LT(i, concept_ids_.size());
    Node view{concept_ids_[i],
              (flags_[i] & kInDocFlag) != 0,
              (flags_[i] & kInQueryFlag) != 0,
              dist_to_doc_[i],
              dist_to_query_[i],
              EdgeRange(this, first_edge_[i]),
              in_degree_[i]};
    return view;
  }
  std::size_t num_nodes() const { return concept_ids_.size(); }
  std::size_t num_edges() const { return num_live_edges_; }

  /// Hot-path per-attribute accessors (no view assembly).
  ontology::ConceptId concept_id(NodeIndex i) const {
    return concept_ids_[i];
  }
  std::uint32_t dist_to_doc(NodeIndex i) const { return dist_to_doc_[i]; }
  std::uint32_t dist_to_query(NodeIndex i) const { return dist_to_query_[i]; }
  EdgeRange children(NodeIndex i) const {
    return EdgeRange(this, first_edge_[i]);
  }

  /// Index of the node representing `concept`, or kInvalidNode.
  NodeIndex FindNode(ontology::ConceptId concept_id) const {
    ECDR_DCHECK(ontology_ != nullptr && ontology_->Contains(concept_id));
    return concept_epoch_[concept_id] == epoch_ ? concept_node_[concept_id]
                                                : kInvalidNode;
  }

  /// Structural self-check used by tests: sibling edge labels share no
  /// first component, labels resolve to their targets' concepts, in-
  /// degrees are consistent, the graph is acyclic, and concepts map to
  /// unique nodes.
  util::Status CheckInvariants() const;

 private:
  static constexpr std::uint32_t kNilEdge = 0xFFFFFFFFu;
  static constexpr std::uint8_t kInDocFlag = 1;
  static constexpr std::uint8_t kInQueryFlag = 2;

  /// One slot of the flat edge array. The label is an {offset,length}
  /// run in label_components_ (offsets, not pointers, so arena growth
  /// never invalidates records). Slots detached by radix splits stay
  /// behind as unreferenced garbage until the next Reset() — the
  /// per-node lists simply skip them — which keeps DetachEdge O(1).
  struct EdgeRec {
    std::uint32_t label_offset = 0;
    std::uint32_t label_length = 0;
    NodeIndex target = kInvalidNode;
    std::uint32_t next = kNilEdge;  // Next sibling under the same parent.
    // First label component, duplicated out of the arena so sibling
    // scans stay inside this record instead of chasing label_offset
    // (one dependent load per visited sibling on the hottest loop).
    // Immutable after AddEdgeRaw, like offset/length: splits detach and
    // re-add, so rollback's truncate-and-replay restores it for free.
    std::uint32_t label_first = 0;
  };

  std::span<const std::uint32_t> LabelOf(const EdgeRec& rec) const {
    return {label_components_.data() + rec.label_offset, rec.label_length};
  }

  Edge EdgeAt(std::uint32_t e) const {
    const EdgeRec& rec = edges_[e];
    return Edge{LabelOf(rec), rec.target};
  }
  std::uint32_t NextEdge(std::uint32_t e) const { return edges_[e].next; }

  NodeIndex NodeFor(ontology::ConceptId concept_id);

  /// ORs `new_flags` into flags_[index], logging the old value when an
  /// open merge touches a pre-merge node.
  void SetFlags(NodeIndex index, std::uint8_t new_flags);

  /// Walks `components` down ontology child ordinals starting at `from`.
  ontology::ConceptId ResolveRelative(
      ontology::ConceptId from,
      std::span<const std::uint32_t> components) const;

  /// Adds an edge parent -> target labelled by the arena run
  /// [offset, offset + length), splitting existing edges as needed to
  /// keep the radix invariants (the paper's InsertPath). Used for the
  /// off-path suffix re-attachment a split displaces; the main
  /// insertion path is the iterative AttachEdgeWalk below.
  void AttachEdge(NodeIndex parent, std::uint32_t label_offset,
                  std::uint32_t length, NodeIndex target);

  /// Iterative AttachEdge along the current address's root path,
  /// starting `depth` components below the root at `parent`. Pushes
  /// every node it descends through, splits out, or creates onto
  /// insert_path_ (with its component depth), which is what the next
  /// InsertAddress resumes from.
  void AttachEdgeWalk(NodeIndex parent, std::uint32_t label_offset,
                      std::uint32_t length, NodeIndex target,
                      std::uint32_t depth);

  void AddEdgeRaw(NodeIndex parent, std::uint32_t label_offset,
                  std::uint32_t length, NodeIndex target);

  /// Unlinks edge `e` (whose predecessor under `parent` is `prev`, or
  /// kNilEdge if `e` is the list head) and returns a copy of its record.
  EdgeRec DetachEdge(NodeIndex parent, std::uint32_t prev, std::uint32_t e);

  /// Kahn's algorithm from the root into topo_order_ (reused scratch).
  void BuildTopologicalOrder() const;

  const ontology::Ontology* ontology_ = nullptr;

  // Node attributes, indexed by NodeIndex.
  std::vector<ontology::ConceptId> concept_ids_;
  std::vector<std::uint8_t> flags_;
  std::vector<std::uint32_t> dist_to_doc_;
  std::vector<std::uint32_t> dist_to_query_;
  std::vector<std::uint32_t> in_degree_;
  std::vector<std::uint32_t> first_edge_;

  std::vector<EdgeRec> edges_;
  std::size_t num_live_edges_ = 0;

  // Component arena the edge labels index into; one append per inserted
  // address, rewound (capacity kept) by Reset().
  std::vector<std::uint32_t> label_components_;

  // Concept -> node map as an epoch-stamped direct-mapped table
  // (concept ids are dense): a stamp != epoch_ means "absent", so
  // Reset() only bumps epoch_ instead of clearing num_concepts entries.
  std::vector<NodeIndex> concept_node_;
  std::vector<std::uint32_t> concept_epoch_;
  std::uint32_t epoch_ = 0;

  // TuneDistances / CheckInvariants scratch, reused across generations.
  mutable std::vector<NodeIndex> topo_order_;
  mutable std::vector<std::uint32_t> topo_pending_;

  // ---- Merge/rollback state (BeginMerge .. RollbackMerge) ----
  //
  // Appended storage is undone by truncating to the size marks; in-place
  // mutations of pre-mark slots are undone by replaying old-value
  // records in reverse. Both reuse capacity across merges.
  struct UndoRec {
    enum Kind : std::uint32_t {
      kFirstEdge,  // first_edge_[index] = value
      kEdgeNext,   // edges_[index].next = value
      kFlags,      // flags_[index] = value
      kInDegree,   // in_degree_[index] = value
    };
    Kind kind;
    std::uint32_t index;
    std::uint32_t value;
  };
  bool merge_active_ = false;
  std::uint32_t mark_nodes_ = 0;
  std::uint32_t mark_edges_ = 0;
  std::uint32_t mark_labels_ = 0;
  std::size_t mark_live_edges_ = 0;
  std::vector<UndoRec> undo_log_;

  // ---- Insertion-resume state ----
  //
  // The materialized nodes on the most recently inserted address's root
  // path, with their depths (in components), plus that address's
  // components. The next InsertAddress computes the common prefix with
  // the previous address and re-enters the radix walk at the deepest
  // recorded node not below it — with inserts sorted by global address
  // rank (drc.cc), nearly the whole walk is skipped. Correctness does
  // not depend on insertion order: any recorded ancestor is a valid
  // re-entry point, sorting only maximizes the shared prefix.
  struct PathEntry {
    NodeIndex node;
    std::uint32_t depth;
  };
  std::vector<PathEntry> insert_path_;
  // The previous address is held as a view: InsertAddressResumed points
  // it at the caller's (stable) storage without copying; InsertAddress
  // copies into prev_address_ and points the view there. Only plain
  // InsertAddress ever reads it (to compute the resume LCP).
  std::vector<std::uint32_t> prev_address_;
  std::span<const std::uint32_t> prev_view_;
  bool resume_valid_ = false;

  /// Common tail of both insert entry points: resumes the walk at the
  /// deepest recorded node with depth <= lcp and attaches the suffix.
  void InsertResumed(ontology::ConceptId concept_id,
                     std::span<const std::uint32_t> address,
                     std::uint32_t lcp, std::uint8_t new_flags);
};

}  // namespace ecdr::core

#endif  // ECDR_CORE_D_RADIX_H_
