// The D-Radix DAG (paper Section 4.2, Definition 3).
//
// Given a document d and a query q (two concept sets), the D-Radix DAG
// indexes every Dewey address of every concept in d and q, path-
// compressed like a radix (Patricia) tree but with two departures:
//   1. it is a DAG: an address split or insertion that lands on a concept
//      already present reuses that node (the paper's FindNodeByDewey),
//      giving the node multiple parents — this is what lets one
//      bottom-up + top-down sweep propagate distances through shared
//      ancestors reached by different addresses;
//   2. nodes of concepts in d or q are never merged into an edge label,
//      even when they have no branch (paper: R and U stay separate).
//
// Each node carries two distances — to the nearest document concept and
// to the nearest query concept — initialized to 0/infinity at insertion
// and finalized by TuneDistances() (Eq. 4). Edge labels are runs of
// Dewey components; an edge's length (its component count) is the number
// of ontology is-a edges it compresses.

#ifndef ECDR_CORE_D_RADIX_H_
#define ECDR_CORE_D_RADIX_H_

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "ontology/ontology.h"
#include "ontology/types.h"
#include "util/status.h"

namespace ecdr::core {

class DRadixDag {
 public:
  using NodeIndex = std::uint32_t;
  static constexpr NodeIndex kInvalidNode = 0xFFFFFFFFu;
  /// Large enough to survive += label lengths without overflow.
  static constexpr std::uint32_t kUnreachable = 0x3FFFFFFFu;

  struct Edge {
    std::vector<std::uint32_t> label;  // Dewey components; length >= 1.
    NodeIndex target = kInvalidNode;

    std::uint32_t length() const {
      return static_cast<std::uint32_t>(label.size());
    }
  };

  struct Node {
    ontology::ConceptId concept_id = ontology::kInvalidConcept;
    bool in_doc = false;
    bool in_query = false;
    /// Distance to the nearest document / query concept; valid after
    /// TuneDistances().
    std::uint32_t dist_to_doc = kUnreachable;
    std::uint32_t dist_to_query = kUnreachable;
    std::vector<Edge> children;
    std::uint32_t in_degree = 0;
  };

  /// Creates the index with a single root node for the ontology root.
  explicit DRadixDag(const ontology::Ontology& ontology);

  /// Inserts one Dewey address of `concept`, flagged as a document and/or
  /// query concept. `address` must resolve to `concept` in the ontology.
  /// All addresses of all concepts in d and q must be inserted for the
  /// distances to be exact (the paper's Pd / Pq lists).
  void InsertAddress(ontology::ConceptId concept_id,
                     std::span<const std::uint32_t> address, bool in_doc,
                     bool in_query);

  /// The tuning phase: one bottom-up and one top-down relaxation sweep in
  /// topological order (Eq. 4), after which every node's dist_to_doc /
  /// dist_to_query equal its shortest valid-path distance to the nearest
  /// document / query concept within the ontology.
  void TuneDistances();

  NodeIndex root() const { return 0; }
  const Node& node(NodeIndex i) const {
    ECDR_DCHECK_LT(i, nodes_.size());
    return nodes_[i];
  }
  std::size_t num_nodes() const { return nodes_.size(); }
  std::size_t num_edges() const { return num_edges_; }

  /// Index of the node representing `concept`, or kInvalidNode.
  NodeIndex FindNode(ontology::ConceptId concept_id) const;

  /// Structural self-check used by tests: sibling edge labels share no
  /// first component, labels resolve to their targets' concepts, in-
  /// degrees are consistent, the graph is acyclic, and concepts map to
  /// unique nodes.
  util::Status CheckInvariants() const;

 private:
  NodeIndex NodeFor(ontology::ConceptId concept_id);

  /// Walks `components` down ontology child ordinals starting at `from`.
  ontology::ConceptId ResolveRelative(
      ontology::ConceptId from, std::span<const std::uint32_t> components) const;

  /// Adds an edge parent -> target with `label`, splitting existing edges
  /// as needed to keep the radix invariants (the paper's InsertPath).
  void AttachEdge(NodeIndex parent, std::vector<std::uint32_t> label,
                  NodeIndex target);

  void AddEdgeRaw(NodeIndex parent, std::vector<std::uint32_t> label,
                  NodeIndex target);
  Edge DetachEdge(NodeIndex parent, std::size_t edge_position);

  /// Topological order from the root; computed lazily by TuneDistances.
  std::vector<NodeIndex> TopologicalOrder() const;

  const ontology::Ontology* ontology_;
  std::vector<Node> nodes_;
  std::unordered_map<ontology::ConceptId, NodeIndex> node_index_;
  std::size_t num_edges_ = 0;
};

}  // namespace ecdr::core

#endif  // ECDR_CORE_D_RADIX_H_
