#include "core/ranking_engine.h"

#include <algorithm>
#include <chrono>

#include "corpus/corpus_io.h"
#include "ontology/ontology_io.h"

namespace ecdr::core {

RankingEngine::RankingEngine(ontology::Ontology ontology, Options options)
    : options_(options),
      ontology_(std::make_unique<ontology::Ontology>(std::move(ontology))),
      addresses_(std::make_unique<ontology::AddressEnumerator>(
          *ontology_, options.addresses)),
      pair_cache_(ontology::ConceptPairCacheOptions{
          options.knds.cache.effective_concept_pair_capacity(),
          /*num_shards=*/64}),
      ddq_memo_(options.knds.cache) {
  if (options_.precompute_addresses) addresses_->PrecomputeAll();
  // The builder publishes generation 0 (empty corpus) into root_, so
  // searches may start before the first write.
  builder_ = std::make_unique<SnapshotBuilder>(
      *ontology_, addresses_.get(), &ddq_memo_, &root_, options_.snapshot);
  const std::size_t threads = options_.knds.num_threads == 0
                                  ? util::ThreadPool::DefaultThreads()
                                  : options_.knds.num_threads;
  if (threads > 1) {
    // Shared across all concurrent searches; each search adds itself as
    // the extra lane, so size the pool one short of the lane count.
    pool_ = std::make_unique<util::ThreadPool>(threads - 1);
  }
}

std::unique_ptr<RankingEngine> RankingEngine::Create(
    ontology::Ontology ontology, Options options) {
  return std::unique_ptr<RankingEngine>(
      new RankingEngine(std::move(ontology), options));
}

util::StatusOr<std::unique_ptr<RankingEngine>> RankingEngine::CreateFromFiles(
    const std::string& ontology_path, const std::string& corpus_path,
    Options options) {
  util::StatusOr<ontology::Ontology> ontology =
      ontology::LoadOntologyAuto(ontology_path);
  ECDR_RETURN_IF_ERROR(ontology.status());
  std::unique_ptr<RankingEngine> engine =
      Create(std::move(ontology).value(), options);
  util::StatusOr<corpus::Corpus> corpus =
      corpus::LoadCorpusAuto(*engine->ontology_, corpus_path);
  ECDR_RETURN_IF_ERROR(corpus.status());
  ECDR_RETURN_IF_ERROR(engine->AddCorpus(*corpus));
  return engine;
}

util::StatusOr<corpus::DocId> RankingEngine::AddDocument(
    std::vector<ontology::ConceptId> concepts) {
  return builder_->AddDocument(corpus::Document(std::move(concepts)));
}

util::Status RankingEngine::AddCorpus(const corpus::Corpus& source) {
  return builder_->AddCorpus(source);
}

void RankingEngine::Flush() { builder_->Flush(); }

SnapshotStats RankingEngine::snapshot_stats() const {
  SnapshotStats stats;
  const util::SnapshotHandle<EngineSnapshot>::Stats handle = root_.stats();
  stats.published = handle.published;
  stats.acquires = handle.acquires;
  stats.retired_live = handle.retired_live;
  const std::shared_ptr<const EngineSnapshot> snap = root_.Acquire();
  stats.generation = snap->generation;
  stats.index_shards = snap->index.num_shards();
  stats.pending_documents = builder_->pending_documents();
  return stats;
}

util::Deadline RankingEngine::EffectiveDeadline(
    const SearchControl& control) const {
  if (!control.deadline.IsInfinite() ||
      options_.admission.default_deadline_seconds <= 0.0) {
    return control.deadline;
  }
  return util::Deadline::After(options_.admission.default_deadline_seconds);
}

util::Status RankingEngine::AcquireSearchSlot(
    const util::Deadline& deadline, const util::CancelToken* cancel) {
  const AdmissionOptions& admission = options_.admission;
  if (admission.max_in_flight == 0) return util::Status::Ok();
  std::unique_lock<std::mutex> lock(admission_mutex_);
  if (in_flight_ < admission.max_in_flight) {
    ++in_flight_;
    ++admitted_;
    return util::Status::Ok();
  }
  if (queued_ >= admission.max_queued) {
    ++rejected_;
    return util::ResourceExhaustedError(
        "engine saturated: " + std::to_string(in_flight_) +
        " searches in flight, " + std::to_string(queued_) + " queued");
  }
  ++queued_;
  while (in_flight_ >= admission.max_in_flight) {
    if (cancel != nullptr && cancel->cancelled()) {
      --queued_;
      ++abandoned_;
      return util::CancelledError("cancelled while queued for admission");
    }
    if (deadline.Expired()) {
      --queued_;
      ++abandoned_;
      return util::DeadlineExceededError(
          "deadline expired while queued for admission");
    }
    // Bounded wait slices so a cancel (which nothing notifies on) is
    // observed promptly even under an infinite deadline.
    auto wake = util::Deadline::Clock::now() + std::chrono::milliseconds(50);
    if (!deadline.IsInfinite()) wake = std::min(wake, deadline.time_point());
    admission_cv_.wait_until(lock, wake);
  }
  --queued_;
  ++in_flight_;
  ++admitted_;
  return util::Status::Ok();
}

void RankingEngine::ReleaseSearchSlot() {
  if (options_.admission.max_in_flight == 0) return;
  {
    std::lock_guard<std::mutex> lock(admission_mutex_);
    --in_flight_;
  }
  admission_cv_.notify_one();
}

AdmissionStats RankingEngine::admission_stats() const {
  std::lock_guard<std::mutex> lock(admission_mutex_);
  AdmissionStats stats;
  stats.admitted = admitted_;
  stats.rejected = rejected_;
  stats.abandoned = abandoned_;
  stats.in_flight = in_flight_;
  stats.queued = queued_;
  return stats;
}

template <typename SearchFn>
util::StatusOr<std::vector<ScoredDocument>> RankingEngine::RunSearch(
    const SearchControl& control, SearchFn&& search) {
  // One deadline bounds the whole query: the admission wait consumes
  // part of the budget, the search gets whatever remains.
  const util::Deadline deadline = EffectiveDeadline(control);
  ECDR_RETURN_IF_ERROR(AcquireSearchSlot(deadline, control.cancel_token));
  struct SlotRelease {
    RankingEngine* engine;
    ~SlotRelease() { engine->ReleaseSearchSlot(); }
  } release{this};

  // The whole read path: one atomic load pins this generation for the
  // duration of the search. Writers publish successors concurrently;
  // nothing here blocks on them or on other readers.
  const std::shared_ptr<const EngineSnapshot> snap = root_.Acquire();
  // Per-call engines: Drc and Knds hold per-query mutable state, so
  // concurrent readers each get their own (cheap — a few pointers) over
  // the snapshot's corpus, index and the shared frozen address cache.
  KndsOptions per_call = options_.knds;
  per_call.deadline = deadline;
  per_call.cancel_token = control.cancel_token;
  if (control.error_threshold >= 0.0) {
    per_call.error_threshold = control.error_threshold;
  }
  per_call.drc_scratch_pool = &drc_scratches_;
  Drc::ScratchPool::Lease scratch(&drc_scratches_);
  Drc drc(*ontology_, addresses_.get(), scratch.get());
  Knds knds(snap->corpus, snap->index, &drc, per_call, pool_.get(),
            &ddq_memo_);
  util::StatusOr<std::vector<ScoredDocument>> result = search(&knds, *snap);
  if (result.ok() && control.stats_out != nullptr) {
    *control.stats_out = knds.last_stats();
  }
  last_stats_.store(std::make_shared<const KndsStats>(knds.last_stats()),
                    std::memory_order_release);
  return result;
}

util::StatusOr<std::vector<ScoredDocument>> RankingEngine::FindRelevant(
    std::span<const ontology::ConceptId> query, std::uint32_t k,
    const SearchControl& control) {
  return RunSearch(control, [&](Knds* knds, const EngineSnapshot&) {
    return knds->SearchRds(query, k);
  });
}

util::StatusOr<std::vector<ScoredDocument>> RankingEngine::FindRelevantByName(
    std::span<const std::string_view> names, std::uint32_t k,
    const SearchControl& control) {
  std::vector<ontology::ConceptId> query;
  query.reserve(names.size());
  for (std::string_view name : names) {
    const ontology::ConceptId id = ontology_->FindByName(name);
    if (id == ontology::kInvalidConcept) {
      return util::NotFoundError("unknown concept '" + std::string(name) +
                                 "'");
    }
    query.push_back(id);
  }
  return RunSearch(control, [&](Knds* knds, const EngineSnapshot&) {
    return knds->SearchRds(query, k);
  });
}

util::StatusOr<std::vector<ScoredDocument>>
RankingEngine::FindRelevantWeighted(std::span<const WeightedConcept> query,
                                    std::uint32_t k,
                                    const SearchControl& control) {
  return RunSearch(control, [&](Knds* knds, const EngineSnapshot&) {
    return knds->SearchRdsWeighted(query, k);
  });
}

util::StatusOr<std::vector<ScoredDocument>> RankingEngine::FindSimilar(
    corpus::DocId doc, std::uint32_t k, const SearchControl& control) {
  return RunSearch(
      control,
      [&](Knds* knds, const EngineSnapshot& snap)
          -> util::StatusOr<std::vector<ScoredDocument>> {
        // Range-check against the search's own snapshot: the id and the
        // searched corpus belong to one generation, so a concurrent
        // publish cannot invalidate the answer between check and search.
        if (doc >= snap.corpus.num_documents()) {
          return util::OutOfRangeError("document id " + std::to_string(doc) +
                                       " out of range");
        }
        return knds->SearchSds(snap.corpus.document(doc), k);
      });
}

util::StatusOr<std::vector<ScoredDocument>>
RankingEngine::FindSimilarToConcepts(
    std::vector<ontology::ConceptId> concepts, std::uint32_t k,
    const SearchControl& control) {
  const corpus::Document query_doc(std::move(concepts));
  if (query_doc.empty()) {
    return util::InvalidArgumentError("query document has no concepts");
  }
  return RunSearch(control, [&](Knds* knds, const EngineSnapshot&) {
    return knds->SearchSds(query_doc, k);
  });
}

util::StatusOr<double> RankingEngine::DocumentDistance(
    corpus::DocId a, corpus::DocId b, const SearchControl& control) {
  const std::shared_ptr<const EngineSnapshot> snap = root_.Acquire();
  if (a >= snap->corpus.num_documents() || b >= snap->corpus.num_documents()) {
    return util::OutOfRangeError("document id out of range");
  }
  Drc::ScratchPool::Lease scratch(&drc_scratches_);
  Drc drc(*ontology_, addresses_.get(), scratch.get());
  drc.SetCancellation(control.cancel_token, EffectiveDeadline(control));
  return drc.DocDocDistance(snap->corpus.document(a).concepts(),
                            snap->corpus.document(b).concepts());
}

}  // namespace ecdr::core
