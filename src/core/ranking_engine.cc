#include "core/ranking_engine.h"

#include "corpus/corpus_io.h"
#include "ontology/ontology_io.h"

namespace ecdr::core {

RankingEngine::RankingEngine(ontology::Ontology ontology, Options options)
    : ontology_(std::make_unique<ontology::Ontology>(std::move(ontology))),
      corpus_(std::make_unique<corpus::Corpus>(*ontology_)),
      inverted_(std::make_unique<index::InvertedIndex>(*corpus_)),
      addresses_(std::make_unique<ontology::AddressEnumerator>(
          *ontology_, options.addresses)),
      drc_(std::make_unique<Drc>(*ontology_, addresses_.get())),
      knds_(std::make_unique<Knds>(*corpus_, *inverted_, drc_.get(),
                                   options.knds)) {}

std::unique_ptr<RankingEngine> RankingEngine::Create(
    ontology::Ontology ontology, Options options) {
  return std::unique_ptr<RankingEngine>(
      new RankingEngine(std::move(ontology), options));
}

util::StatusOr<std::unique_ptr<RankingEngine>> RankingEngine::CreateFromFiles(
    const std::string& ontology_path, const std::string& corpus_path,
    Options options) {
  util::StatusOr<ontology::Ontology> ontology =
      ontology::LoadOntologyAuto(ontology_path);
  ECDR_RETURN_IF_ERROR(ontology.status());
  std::unique_ptr<RankingEngine> engine =
      Create(std::move(ontology).value(), options);
  util::StatusOr<corpus::Corpus> corpus =
      corpus::LoadCorpusAuto(*engine->ontology_, corpus_path);
  ECDR_RETURN_IF_ERROR(corpus.status());
  for (corpus::DocId d = 0; d < corpus->num_documents(); ++d) {
    util::StatusOr<corpus::DocId> added =
        engine->corpus_->AddDocument(corpus->document(d));
    ECDR_RETURN_IF_ERROR(added.status());
    engine->inverted_->AddDocument(*added, engine->corpus_->document(*added));
  }
  return engine;
}

util::StatusOr<corpus::DocId> RankingEngine::AddDocument(
    std::vector<ontology::ConceptId> concepts) {
  util::StatusOr<corpus::DocId> added =
      corpus_->AddDocument(corpus::Document(std::move(concepts)));
  ECDR_RETURN_IF_ERROR(added.status());
  inverted_->AddDocument(*added, corpus_->document(*added));
  return added;
}

util::StatusOr<std::vector<ScoredDocument>> RankingEngine::FindRelevant(
    std::span<const ontology::ConceptId> query, std::uint32_t k) {
  return knds_->SearchRds(query, k);
}

util::StatusOr<std::vector<ScoredDocument>> RankingEngine::FindRelevantByName(
    std::span<const std::string_view> names, std::uint32_t k) {
  std::vector<ontology::ConceptId> query;
  query.reserve(names.size());
  for (std::string_view name : names) {
    const ontology::ConceptId id = ontology_->FindByName(name);
    if (id == ontology::kInvalidConcept) {
      return util::NotFoundError("unknown concept '" + std::string(name) +
                                 "'");
    }
    query.push_back(id);
  }
  return knds_->SearchRds(query, k);
}

util::StatusOr<std::vector<ScoredDocument>>
RankingEngine::FindRelevantWeighted(std::span<const WeightedConcept> query,
                                    std::uint32_t k) {
  return knds_->SearchRdsWeighted(query, k);
}

util::StatusOr<std::vector<ScoredDocument>> RankingEngine::FindSimilar(
    corpus::DocId doc, std::uint32_t k) {
  if (doc >= corpus_->num_documents()) {
    return util::OutOfRangeError("document id " + std::to_string(doc) +
                                 " out of range");
  }
  return knds_->SearchSds(corpus_->document(doc), k);
}

util::StatusOr<std::vector<ScoredDocument>>
RankingEngine::FindSimilarToConcepts(
    std::vector<ontology::ConceptId> concepts, std::uint32_t k) {
  const corpus::Document query_doc(std::move(concepts));
  if (query_doc.empty()) {
    return util::InvalidArgumentError("query document has no concepts");
  }
  return knds_->SearchSds(query_doc, k);
}

util::StatusOr<double> RankingEngine::DocumentDistance(corpus::DocId a,
                                                       corpus::DocId b) {
  if (a >= corpus_->num_documents() || b >= corpus_->num_documents()) {
    return util::OutOfRangeError("document id out of range");
  }
  return drc_->DocDocDistance(corpus_->document(a).concepts(),
                              corpus_->document(b).concepts());
}

}  // namespace ecdr::core
