#include "core/ranking_engine.h"

#include <algorithm>
#include <chrono>
#include <optional>

#include "corpus/corpus_io.h"
#include "ontology/ontology_io.h"

namespace ecdr::core {

RankingEngine::RankingEngine(ontology::Ontology ontology, Options options)
    : options_(options),
      baseline_dag_(std::make_shared<const ontology::Ontology>(
          std::move(ontology))),
      pair_cache_(ontology::ConceptPairCacheOptions{
          options.knds.cache.effective_concept_pair_capacity(),
          /*num_shards=*/64}),
      ddq_memo_(options.knds.cache) {}

RankingEngine::~RankingEngine() {
  // Drain queued background maintenance before members it touches
  // (builder_, store_) go away.
  pool_.reset();
}

util::Status RankingEngine::Init() {
  std::optional<RecoveredState> recovered;
  std::shared_ptr<const ontology::OntologySnapshot> onto;
  if (!options_.storage.data_dir.empty()) {
    // The store decodes the recovered corpus against the engine's boot
    // baseline DAG; any persisted evolution (image ONTO section, WAL
    // mutation records) is replayed on top and surfaces below.
    util::StatusOr<std::unique_ptr<storage::DocumentStore>> store =
        storage::DocumentStore::Open(options_.storage, *baseline_dag_);
    ECDR_RETURN_IF_ERROR(store.status());
    store_ = std::move(store).value();
    std::shared_ptr<const ontology::Ontology> dag =
        store_->TakeRecoveredOntology();
    const std::uint64_t version = store_->recovered_ontology_version();
    // Adopting the image's flattened address pool skips the enumeration
    // DFS, so suppress the factory's PrecomputeAll in that case. A
    // frozen (adopted) pool keeps evolution on the incremental path
    // regardless of how it froze.
    const bool adopt_dewey =
        store_->has_recovered_dewey() && options_.precompute_addresses;
    const bool precompute = options_.precompute_addresses && !adopt_dewey;
    if (dag != nullptr || version > 0) {
      // The data dir ends at an evolved ontology version: restore it as
      // the current snapshot. The lineage anchor stays the boot
      // baseline (the store already verified the image against it).
      const std::uint64_t baseline_hash = ontology::OntologyIdentityHash(
          *baseline_dag_, {}, options_.addresses.max_addresses);
      if (dag == nullptr) dag = baseline_dag_;  // retire-only history
      onto = ontology::OntologySnapshot::Restore(
          std::move(dag), store_->TakeRecoveredRetired(), version,
          baseline_hash, options_.addresses, precompute);
    } else {
      onto = ontology::OntologySnapshot::Baseline(baseline_dag_,
                                                  options_.addresses,
                                                  precompute);
    }
    if (adopt_dewey) {
      // A stale pool (ontology changed under the data dir) fails
      // validation; fall back to recomputing.
      const util::Status adopted = onto->addresses()->AdoptPrecomputed(
          store_->TakeDeweyComponents(), store_->TakeDeweySpans(),
          store_->TakeDeweyConceptFirst());
      if (!adopted.ok()) onto->addresses()->PrecomputeAll();
    }
    recovered.emplace(RecoveredState{store_->TakeRecoveredCorpus(),
                                     store_->TakeRecoveredIndex(),
                                     store_->recovered_index_exact(),
                                     store_->stats().last_lsn});
  } else {
    onto = ontology::OntologySnapshot::Baseline(
        baseline_dag_, options_.addresses, options_.precompute_addresses);
  }
  // The builder publishes generation 0 (the recovered corpus, or empty)
  // into root_, so searches may start before the first write.
  builder_ = std::make_unique<SnapshotBuilder>(
      std::move(onto), &ddq_memo_, &root_, options_.snapshot, store_.get(),
      recovered.has_value() ? &*recovered : nullptr);
  const std::size_t threads = options_.knds.num_threads == 0
                                  ? util::ThreadPool::DefaultThreads()
                                  : options_.knds.num_threads;
  if (threads > 1) {
    // Shared across all concurrent searches; each search adds itself as
    // the extra lane, so size the pool one short of the lane count.
    pool_ = std::make_unique<util::ThreadPool>(threads - 1);
  }
  return util::Status::Ok();
}

std::unique_ptr<RankingEngine> RankingEngine::Create(
    ontology::Ontology ontology, Options options) {
  // Durable engines go through Open(): recovery can fail, and this
  // factory has no status channel.
  ECDR_CHECK(options.storage.data_dir.empty());
  std::unique_ptr<RankingEngine> engine(
      new RankingEngine(std::move(ontology), options));
  ECDR_CHECK(engine->Init().ok());  // Infallible without a data_dir.
  return engine;
}

util::StatusOr<std::unique_ptr<RankingEngine>> RankingEngine::Open(
    ontology::Ontology ontology, Options options) {
  if (options.storage.data_dir.empty()) {
    return util::InvalidArgumentError(
        "Open() requires Options::storage.data_dir; use Create() for an "
        "ephemeral engine");
  }
  std::unique_ptr<RankingEngine> engine(
      new RankingEngine(std::move(ontology), options));
  ECDR_RETURN_IF_ERROR(engine->Init());
  return engine;
}

util::StatusOr<std::unique_ptr<RankingEngine>> RankingEngine::CreateFromFiles(
    const std::string& ontology_path, const std::string& corpus_path,
    Options options) {
  util::StatusOr<ontology::Ontology> ontology =
      ontology::LoadOntologyAuto(ontology_path);
  ECDR_RETURN_IF_ERROR(ontology.status());
  std::unique_ptr<RankingEngine> engine =
      Create(std::move(ontology).value(), options);
  util::StatusOr<corpus::Corpus> corpus =
      corpus::LoadCorpusAuto(engine->ontology(), corpus_path);
  ECDR_RETURN_IF_ERROR(corpus.status());
  ECDR_RETURN_IF_ERROR(engine->AddCorpus(*corpus));
  return engine;
}

util::StatusOr<corpus::DocId> RankingEngine::AddDocument(
    std::vector<ontology::ConceptId> concepts) {
  util::StatusOr<corpus::DocId> added =
      builder_->AddDocument(corpus::Document(std::move(concepts)));
  if (added.ok()) {
    records_since_checkpoint_.fetch_add(1, std::memory_order_relaxed);
    MaybeScheduleMaintenance();
  }
  return added;
}

util::Status RankingEngine::DeleteDocument(corpus::DocId doc) {
  ECDR_RETURN_IF_ERROR(builder_->DeleteDocument(doc));
  records_since_checkpoint_.fetch_add(1, std::memory_order_relaxed);
  MaybeScheduleMaintenance();
  return util::Status::Ok();
}

util::Status RankingEngine::UpdateDocument(
    corpus::DocId doc, std::vector<ontology::ConceptId> concepts) {
  ECDR_RETURN_IF_ERROR(
      builder_->UpdateDocument(doc, corpus::Document(std::move(concepts))));
  records_since_checkpoint_.fetch_add(1, std::memory_order_relaxed);
  MaybeScheduleMaintenance();
  return util::Status::Ok();
}

util::Status RankingEngine::AddCorpus(const corpus::Corpus& source) {
  ECDR_RETURN_IF_ERROR(builder_->AddCorpus(source));
  records_since_checkpoint_.fetch_add(source.num_documents(),
                                      std::memory_order_relaxed);
  MaybeScheduleMaintenance();
  return util::Status::Ok();
}

util::Status RankingEngine::Flush() { return builder_->Flush(); }

util::Status RankingEngine::Checkpoint() {
  if (store_ == nullptr) {
    return util::FailedPreconditionError(
        "engine is ephemeral (no Options::storage.data_dir); nothing to "
        "checkpoint");
  }
  ECDR_RETURN_IF_ERROR(builder_->Checkpoint(store_.get()));
  records_since_checkpoint_.store(0, std::memory_order_relaxed);
  return util::Status::Ok();
}

util::Status RankingEngine::Compact() {
  std::uint32_t min_docs = options_.compaction.min_docs_per_segment;
  if (min_docs == 0) {
    min_docs = options_.snapshot.target_docs_per_shard != 0
                   ? options_.snapshot.target_docs_per_shard
                   : 1024;
  }
  return builder_->Compact(min_docs);
}

util::Status RankingEngine::SyncDurability() {
  if (store_ == nullptr) return util::Status::Ok();
  ECDR_RETURN_IF_ERROR(Flush());
  return store_->SyncWal();
}

void RankingEngine::MaybeScheduleMaintenance() {
  const bool checkpoint_due =
      store_ != nullptr && options_.checkpoint_every_records > 0 &&
      records_since_checkpoint_.load(std::memory_order_relaxed) >=
          options_.checkpoint_every_records;
  bool compaction_due = false;
  if (options_.compaction.max_segments > 0) {
    const std::shared_ptr<const EngineSnapshot> snap = root_.Acquire();
    compaction_due =
        snap->corpus.num_segments() > options_.compaction.max_segments;
  }
  if (!checkpoint_due && !compaction_due) return;
  if (maintenance_running_.exchange(true, std::memory_order_acq_rel)) return;
  if (pool_ != nullptr) {
    pool_->Submit([this](std::size_t) { RunMaintenance(); });
  } else {
    RunMaintenance();
  }
}

void RankingEngine::RunMaintenance() {
  // Best-effort: a failed checkpoint or compaction leaves the engine
  // fully serviceable (the WAL still covers everything); thresholds
  // re-trip on the next write and retry.
  if (options_.compaction.max_segments > 0) {
    const std::shared_ptr<const EngineSnapshot> snap = root_.Acquire();
    if (snap->corpus.num_segments() > options_.compaction.max_segments) {
      (void)Compact();
    }
  }
  if (store_ != nullptr && options_.checkpoint_every_records > 0 &&
      records_since_checkpoint_.load(std::memory_order_relaxed) >=
          options_.checkpoint_every_records) {
    (void)Checkpoint();
  }
  maintenance_running_.store(false, std::memory_order_release);
}

SnapshotStats RankingEngine::snapshot_stats() const {
  SnapshotStats stats;
  const util::SnapshotHandle<EngineSnapshot>::Stats handle = root_.stats();
  stats.published = handle.published;
  stats.acquires = handle.acquires;
  stats.retired_live = handle.retired_live;
  const std::shared_ptr<const EngineSnapshot> snap = root_.Acquire();
  stats.generation = snap->generation;
  stats.index_shards = snap->index.num_shards();
  stats.pending_documents = builder_->pending_documents();
  stats.tombstones = snap->corpus.num_tombstones();
  return stats;
}

DurabilityStats RankingEngine::durability_stats() const {
  DurabilityStats stats;
  stats.enabled = store_ != nullptr;
  if (store_ != nullptr) stats.store = store_->stats();
  return stats;
}

util::Deadline RankingEngine::EffectiveDeadline(
    const SearchControl& control) const {
  if (!control.deadline.IsInfinite() ||
      options_.admission.default_deadline_seconds <= 0.0) {
    return control.deadline;
  }
  return util::Deadline::After(options_.admission.default_deadline_seconds);
}

util::Status RankingEngine::AcquireSearchSlot(
    const util::Deadline& deadline, const util::CancelToken* cancel) {
  const AdmissionOptions& admission = options_.admission;
  if (admission.max_in_flight == 0) return util::Status::Ok();
  std::unique_lock<std::mutex> lock(admission_mutex_);
  if (in_flight_ < admission.max_in_flight) {
    ++in_flight_;
    ++admitted_;
    return util::Status::Ok();
  }
  if (queued_ >= admission.max_queued) {
    ++rejected_;
    return util::ResourceExhaustedError(
        "engine saturated: " + std::to_string(in_flight_) +
        " searches in flight, " + std::to_string(queued_) + " queued");
  }
  ++queued_;
  while (in_flight_ >= admission.max_in_flight) {
    if (cancel != nullptr && cancel->cancelled()) {
      --queued_;
      ++abandoned_;
      return util::CancelledError("cancelled while queued for admission");
    }
    if (deadline.Expired()) {
      --queued_;
      ++abandoned_;
      return util::DeadlineExceededError(
          "deadline expired while queued for admission");
    }
    // Bounded wait slices so a cancel (which nothing notifies on) is
    // observed promptly even under an infinite deadline.
    auto wake = util::Deadline::Clock::now() + std::chrono::milliseconds(50);
    if (!deadline.IsInfinite()) wake = std::min(wake, deadline.time_point());
    admission_cv_.wait_until(lock, wake);
  }
  --queued_;
  ++in_flight_;
  ++admitted_;
  return util::Status::Ok();
}

void RankingEngine::ReleaseSearchSlot() {
  if (options_.admission.max_in_flight == 0) return;
  {
    std::lock_guard<std::mutex> lock(admission_mutex_);
    --in_flight_;
  }
  admission_cv_.notify_one();
}

AdmissionStats RankingEngine::admission_stats() const {
  std::lock_guard<std::mutex> lock(admission_mutex_);
  AdmissionStats stats;
  stats.admitted = admitted_;
  stats.rejected = rejected_;
  stats.abandoned = abandoned_;
  stats.in_flight = in_flight_;
  stats.queued = queued_;
  return stats;
}

template <typename SearchFn>
util::StatusOr<std::vector<ScoredDocument>> RankingEngine::RunSearch(
    const SearchControl& control, SearchFn&& search) {
  // One deadline bounds the whole query: the admission wait consumes
  // part of the budget, the search gets whatever remains.
  const util::Deadline deadline = EffectiveDeadline(control);
  ECDR_RETURN_IF_ERROR(AcquireSearchSlot(deadline, control.cancel_token));
  struct SlotRelease {
    RankingEngine* engine;
    ~SlotRelease() { engine->ReleaseSearchSlot(); }
  } release{this};

  // The whole read path: one atomic load pins this generation for the
  // duration of the search. Writers publish successors concurrently;
  // nothing here blocks on them or on other readers.
  const std::shared_ptr<const EngineSnapshot> snap = root_.Acquire();
  // Per-call engines: Drc and Knds hold per-query mutable state, so
  // concurrent readers each get their own (cheap — a few pointers) over
  // the snapshot's corpus, index and the shared frozen address cache.
  KndsOptions per_call = options_.knds;
  per_call.deadline = deadline;
  per_call.cancel_token = control.cancel_token;
  if (control.error_threshold >= 0.0) {
    per_call.error_threshold = control.error_threshold;
  }
  per_call.drc_scratch_pool = &drc_scratches_;
  // Salt the cross-query Ddq memo with the snapshot's structural hash:
  // entries written under an older ontology structure can never hit a
  // search on the new one (retire-only evolution keeps the salt, and
  // with it every warm entry).
  per_call.memo_salt = snap->ontology->structural_hash();
  Drc::ScratchPool::Lease scratch(&drc_scratches_);
  Drc drc(snap->ontology->dag(), snap->ontology->addresses(), scratch.get());
  Knds knds(snap->corpus, snap->index, &drc, per_call, pool_.get(),
            &ddq_memo_);
  util::StatusOr<std::vector<ScoredDocument>> result = search(&knds, *snap);
  if (result.ok() && control.stats_out != nullptr) {
    *control.stats_out = knds.last_stats();
  }
  last_stats_.store(std::make_shared<const KndsStats>(knds.last_stats()),
                    std::memory_order_release);
  return result;
}

util::StatusOr<std::vector<ScoredDocument>> RankingEngine::FindRelevant(
    std::span<const ontology::ConceptId> query, std::uint32_t k,
    const SearchControl& control) {
  return RunSearch(control, [&](Knds* knds, const EngineSnapshot&) {
    return knds->SearchRds(query, k);
  });
}

util::StatusOr<std::vector<ScoredDocument>> RankingEngine::FindRelevantByName(
    std::span<const std::string_view> names, std::uint32_t k,
    const SearchControl& control) {
  // Resolve names against the current version; the search itself pins
  // its own snapshot, so a concurrent evolution between the two loads
  // still sees only ids valid in both (ids are never reused).
  const std::shared_ptr<const EngineSnapshot> named = root_.Acquire();
  std::vector<ontology::ConceptId> query;
  query.reserve(names.size());
  for (std::string_view name : names) {
    const ontology::ConceptId id = named->ontology->dag().FindByName(name);
    if (id == ontology::kInvalidConcept) {
      return util::NotFoundError("unknown concept '" + std::string(name) +
                                 "'");
    }
    query.push_back(id);
  }
  return RunSearch(control, [&](Knds* knds, const EngineSnapshot&) {
    return knds->SearchRds(query, k);
  });
}

util::StatusOr<std::vector<ScoredDocument>>
RankingEngine::FindRelevantWeighted(std::span<const WeightedConcept> query,
                                    std::uint32_t k,
                                    const SearchControl& control) {
  return RunSearch(control, [&](Knds* knds, const EngineSnapshot&) {
    return knds->SearchRdsWeighted(query, k);
  });
}

util::StatusOr<std::vector<ScoredDocument>> RankingEngine::FindSimilar(
    corpus::DocId doc, std::uint32_t k, const SearchControl& control) {
  return RunSearch(
      control,
      [&](Knds* knds, const EngineSnapshot& snap)
          -> util::StatusOr<std::vector<ScoredDocument>> {
        // Range-check against the search's own snapshot: the id and the
        // searched corpus belong to one generation, so a concurrent
        // publish cannot invalidate the answer between check and search.
        if (doc >= snap.corpus.num_documents()) {
          return util::OutOfRangeError("document id " + std::to_string(doc) +
                                       " out of range");
        }
        // A tombstoned slot keeps its id but holds no concepts; it is
        // not a valid similarity anchor.
        if (snap.corpus.IsDeleted(doc)) {
          return util::NotFoundError("document " + std::to_string(doc) +
                                     " was deleted");
        }
        return knds->SearchSds(snap.corpus.document(doc), k);
      });
}

util::StatusOr<std::vector<ScoredDocument>>
RankingEngine::FindSimilarToConcepts(
    std::vector<ontology::ConceptId> concepts, std::uint32_t k,
    const SearchControl& control) {
  const corpus::Document query_doc(std::move(concepts));
  if (query_doc.empty()) {
    return util::InvalidArgumentError("query document has no concepts");
  }
  return RunSearch(control, [&](Knds* knds, const EngineSnapshot&) {
    return knds->SearchSds(query_doc, k);
  });
}

util::StatusOr<double> RankingEngine::DocumentDistance(
    corpus::DocId a, corpus::DocId b, const SearchControl& control) {
  const std::shared_ptr<const EngineSnapshot> snap = root_.Acquire();
  if (a >= snap->corpus.num_documents() || b >= snap->corpus.num_documents()) {
    return util::OutOfRangeError("document id out of range");
  }
  if (snap->corpus.IsDeleted(a) || snap->corpus.IsDeleted(b)) {
    return util::NotFoundError("document was deleted");
  }
  Drc::ScratchPool::Lease scratch(&drc_scratches_);
  Drc drc(snap->ontology->dag(), snap->ontology->addresses(), scratch.get());
  drc.SetCancellation(control.cancel_token, EffectiveDeadline(control));
  return drc.DocDocDistance(snap->corpus.document(a).concepts(),
                            snap->corpus.document(b).concepts());
}

util::StatusOr<ontology::EvolutionStats> RankingEngine::ApplyOntologyMutations(
    std::span<const ontology::OntologyMutation> mutations) {
  // One batch at a time. Validation and incremental re-enumeration run
  // here, outside the builder's write mutex, so document writes and
  // searches proceed while the successor version is being derived.
  std::lock_guard<std::mutex> lock(ontology_mutex_);
  const std::shared_ptr<const ontology::OntologySnapshot> base =
      builder_->ontology();
  ontology::EvolutionStats stats;
  util::StatusOr<std::shared_ptr<const ontology::OntologySnapshot>> next =
      ontology::EvolveSnapshot(base, mutations, &stats);
  ECDR_RETURN_IF_ERROR(next.status());
  if (store_ != nullptr) {
    // Log-ahead, same as the document path: every mutation record is
    // durable before the evolved version becomes visible. (Pending
    // document ops flushed by SwapOntology below were logged at write
    // time, so the WAL already orders them before this batch.)
    for (const ontology::OntologyMutation& m : mutations) {
      ECDR_RETURN_IF_ERROR(store_->LogOntologyMutation(m).status());
    }
    ECDR_RETURN_IF_ERROR(store_->SyncWal());
  }
  ECDR_RETURN_IF_ERROR(builder_->SwapOntology(std::move(next).value()));
  std::size_t invalidated = 0;
  if (!stats.invalidated_existing.empty()) {
    invalidated = pair_cache_.InvalidateConcepts(stats.invalidated_existing);
  }
  ++evolutions_;
  mutations_applied_ += mutations.size();
  readdressed_total_ += stats.readdressed_concepts;
  reused_total_ += stats.reused_concepts;
  pair_invalidated_total_ += invalidated;
  return stats;
}

util::StatusOr<ontology::EvolutionStats> RankingEngine::AddConcept(
    std::string name, std::vector<ontology::ConceptId> parents) {
  ontology::OntologyMutation m;
  m.kind = ontology::OntologyMutation::Kind::kAddConcept;
  m.name = std::move(name);
  m.parents = std::move(parents);
  return ApplyOntologyMutations({&m, 1});
}

util::StatusOr<ontology::EvolutionStats> RankingEngine::RetireConcept(
    ontology::ConceptId target) {
  ontology::OntologyMutation m;
  m.kind = ontology::OntologyMutation::Kind::kRetireConcept;
  m.target = target;
  return ApplyOntologyMutations({&m, 1});
}

util::StatusOr<ontology::EvolutionStats> RankingEngine::AddOntologyEdge(
    ontology::ConceptId parent, ontology::ConceptId child) {
  ontology::OntologyMutation m;
  m.kind = ontology::OntologyMutation::Kind::kAddEdge;
  m.parent = parent;
  m.child = child;
  return ApplyOntologyMutations({&m, 1});
}

OntologyStats RankingEngine::ontology_stats() const {
  OntologyStats stats;
  const std::shared_ptr<const ontology::OntologySnapshot> onto =
      root_.Acquire()->ontology;
  stats.version = onto->version();
  stats.identity_hash = onto->identity_hash();
  stats.structural_hash = onto->structural_hash();
  stats.baseline_hash = onto->baseline_hash();
  stats.num_concepts = onto->dag().num_concepts();
  stats.num_retired = onto->num_retired();
  stats.last = onto->last_evolution();
  std::lock_guard<std::mutex> lock(ontology_mutex_);
  stats.evolutions = evolutions_;
  stats.mutations_applied = mutations_applied_;
  stats.readdressed_total = readdressed_total_;
  stats.reused_total = reused_total_;
  stats.pair_entries_invalidated = pair_invalidated_total_;
  return stats;
}

}  // namespace ecdr::core
