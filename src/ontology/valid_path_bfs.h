// Breadth-first traversal over *valid* paths (paper Sections 3.2, 5.3).
//
// A valid path between two concepts ascends is-a edges to a common
// ancestor and then descends; a path may never go down and back up (in
// paper Fig. 3, D(G, F) is 5 via the root, not 2 through their shared
// child J). The traversal therefore tracks an "ascending"/"descending"
// automaton state per concept:
//   - from an ascending visit we may continue to parents (still
//     ascending) or switch to children (descending);
//   - from a descending visit we may only continue to children.
// Each concept is expanded at most once per state, so a full traversal is
// O(|C| + |E|). A concept is *reported* once, at its minimum valid-path
// distance from the source set.
//
// kNDS runs one of these per query concept; the distance oracle runs a
// single multi-source instance.

#ifndef ECDR_ONTOLOGY_VALID_PATH_BFS_H_
#define ECDR_ONTOLOGY_VALID_PATH_BFS_H_

#include <cstdint>
#include <span>
#include <vector>

#include "ontology/ontology.h"
#include "ontology/types.h"

namespace ecdr::ontology {

class ValidPathBfs {
 public:
  explicit ValidPathBfs(const Ontology& ontology);

  /// Restarts the traversal from `sources` (all at distance 0).
  /// Reuses internal state across runs without clearing (epoch trick).
  void Start(std::span<const ConceptId> sources);

  /// Reports the concepts first reached at the next distance level:
  /// appends them to `out` and sets `*level` to their distance, then
  /// expands the frontier. Returns false (touching neither output) once
  /// the traversal is exhausted.
  bool NextLevel(std::vector<ConceptId>* out, std::uint32_t* level);

  /// Concepts queued for the *next* unreported level; this is the queue
  /// size kNDS's node-queue limit applies to.
  std::size_t frontier_size() const {
    return ascending_.size() + descending_.size();
  }

  bool exhausted() const { return frontier_size() == 0; }

 private:
  bool MarkAscending(ConceptId c);
  bool MarkDescending(ConceptId c);

  const Ontology* ontology_;
  std::vector<std::uint32_t> ascending_epoch_;
  std::vector<std::uint32_t> descending_epoch_;
  std::vector<std::uint32_t> reported_epoch_;
  std::uint32_t epoch_ = 0;
  std::vector<ConceptId> ascending_, descending_;
  std::vector<ConceptId> next_ascending_, next_descending_;
  std::uint32_t level_ = 0;
};

}  // namespace ecdr::ontology

#endif  // ECDR_ONTOLOGY_VALID_PATH_BFS_H_
