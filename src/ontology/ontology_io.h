// Text serialization for ontologies.
//
// Format (line-oriented, '#' comments and blank lines ignored):
//   ecdr-ontology-v1
//   concepts <N>
//   <name>                 # N lines; line order assigns ids 0..N-1
//   edges <M>
//   <parent-id> <child-id> # M lines; order defines Dewey child ordinals
//
// Loading re-runs full OntologyBuilder validation, so corrupt files
// (cycles, multiple roots, dangling ids) are rejected with a Status.

#ifndef ECDR_ONTOLOGY_ONTOLOGY_IO_H_
#define ECDR_ONTOLOGY_ONTOLOGY_IO_H_

#include <string>

#include "ontology/ontology.h"
#include "util/status.h"

namespace ecdr::ontology {

util::Status SaveOntology(const Ontology& ontology, const std::string& path);

util::StatusOr<Ontology> LoadOntology(const std::string& path);

/// Binary counterparts for large ontologies (little-endian; see
/// util/binary_stream.h). Loading revalidates through OntologyBuilder,
/// so a corrupt file cannot produce a malformed DAG.
util::Status SaveOntologyBinary(const Ontology& ontology,
                                const std::string& path);

util::StatusOr<Ontology> LoadOntologyBinary(const std::string& path);

/// Sniffs the format (binary magic vs text header) and dispatches.
util::StatusOr<Ontology> LoadOntologyAuto(const std::string& path);

}  // namespace ecdr::ontology

#endif  // ECDR_ONTOLOGY_ONTOLOGY_IO_H_
