#include "ontology/valid_path_bfs.h"

namespace ecdr::ontology {

ValidPathBfs::ValidPathBfs(const Ontology& ontology)
    : ontology_(&ontology),
      ascending_epoch_(ontology.num_concepts(), 0),
      descending_epoch_(ontology.num_concepts(), 0),
      reported_epoch_(ontology.num_concepts(), 0) {}

void ValidPathBfs::Start(std::span<const ConceptId> sources) {
  ++epoch_;
  ascending_.clear();
  descending_.clear();
  next_ascending_.clear();
  next_descending_.clear();
  level_ = 0;
  for (ConceptId c : sources) {
    ECDR_DCHECK(ontology_->Contains(c));
    if (MarkAscending(c)) ascending_.push_back(c);
  }
}

bool ValidPathBfs::MarkAscending(ConceptId c) {
  if (ascending_epoch_[c] == epoch_) return false;
  ascending_epoch_[c] = epoch_;
  return true;
}

bool ValidPathBfs::MarkDescending(ConceptId c) {
  // An ascending visit strictly dominates a descending one: it expands
  // the same children plus the parents. Skip descending if either state
  // was already reached.
  if (descending_epoch_[c] == epoch_ || ascending_epoch_[c] == epoch_) {
    return false;
  }
  descending_epoch_[c] = epoch_;
  return true;
}

bool ValidPathBfs::NextLevel(std::vector<ConceptId>* out,
                             std::uint32_t* level) {
  if (ascending_.empty() && descending_.empty()) return false;
  *level = level_;

  const auto report = [&](ConceptId c) {
    if (reported_epoch_[c] != epoch_) {
      reported_epoch_[c] = epoch_;
      out->push_back(c);
    }
  };

  next_ascending_.clear();
  next_descending_.clear();
  for (ConceptId c : ascending_) {
    report(c);
    for (ConceptId parent : ontology_->parents(c)) {
      if (MarkAscending(parent)) next_ascending_.push_back(parent);
    }
    for (ConceptId child : ontology_->children(c)) {
      if (MarkDescending(child)) next_descending_.push_back(child);
    }
  }
  for (ConceptId c : descending_) {
    report(c);
    for (ConceptId child : ontology_->children(c)) {
      if (MarkDescending(child)) next_descending_.push_back(child);
    }
  }
  ascending_.swap(next_ascending_);
  descending_.swap(next_descending_);
  ++level_;
  return true;
}

}  // namespace ecdr::ontology
