// The flattened Dewey address pool and the SIMD Dewey kernels.
//
// FlatDeweyPool stores every concept's Dewey address set in one
// contiguous CSR layout (component arena + {offset,length} spans +
// per-concept prefix array), built by AddressEnumerator::PrecomputeAll.
// Alongside the spans it keeps each address's *global lexicographic
// rank*, which is what lets DRC insert a document's whole address list
// in globally sorted order and resume every D-Radix walk from the
// previous address's longest common prefix (see core/drc.cc).
//
// The kernels at the bottom are the hot inner loops of that pipeline:
// DeweyCommonPrefix (one call per radix-edge comparison and per
// insert-resume) and BuildSortKeys (the CSR gather that turns a
// concept's rank run into 64-bit sort keys). Both are compiled in
// scalar, SSE2 and AVX2 variants and selected once at startup by
// runtime CPU detection; the `ECDR_SIMD` environment variable
// (off|scalar|sse2|avx2|auto) caps the choice, and tests force a level
// in-process via simd::ForceLevel. All variants are exact drop-in
// replacements — results are identical bit for bit, only the width of
// the compare changes.

#ifndef ECDR_ONTOLOGY_FLAT_DEWEY_POOL_H_
#define ECDR_ONTOLOGY_FLAT_DEWEY_POOL_H_

#include <cstdint>
#include <span>
#include <vector>

#include "ontology/types.h"
#include "util/macros.h"

namespace ecdr::ontology {

class AddressEnumerator;

/// Lexicographic comparison of addresses (component-wise numeric).
bool DeweyLess(std::span<const std::uint32_t> a,
               std::span<const std::uint32_t> b);

/// Length of the longest common prefix of `a` and `b`, in components.
/// Dispatched to the widest compare the CPU (and ECDR_SIMD) allows.
std::size_t DeweyCommonPrefix(std::span<const std::uint32_t> a,
                              std::span<const std::uint32_t> b);

/// One address inside a FlatDeweyPool: `length` components starting at
/// `offset` in the pool's component arena. `length == 0` is the root's
/// empty address.
struct AddressSpan {
  std::uint32_t offset = 0;
  std::uint32_t length = 0;
};

/// Every concept's Dewey address set in one contiguous layout: a single
/// uint32 component arena plus {offset,len} spans, grouped per concept
/// by a prefix array (CSR, like ontology::Ontology's edge storage).
/// Addresses keep the enumerator's per-concept lexicographic order, so
/// DRC can consume spans instead of vector<vector<uint32_t>> without
/// changing the merge order it feeds the D-Radix build.
///
/// Built by AddressEnumerator::PrecomputeAll() and cleared by
/// ClearCache(); the arena pointers it hands out follow the same
/// lifetime contract as Addresses() references (ReaderLease guards).
class FlatDeweyPool {
 public:
  /// False until the owning enumerator has precomputed (or after
  /// ClearCache()); all other accessors require built().
  bool built() const { return !concept_first_.empty(); }

  std::uint32_t num_concepts() const {
    return concept_first_.empty()
               ? 0
               : static_cast<std::uint32_t>(concept_first_.size() - 1);
  }

  /// The spans of `c`'s addresses, lexicographically sorted.
  std::span<const AddressSpan> spans(ConceptId c) const {
    ECDR_DCHECK_LT(c + 1, concept_first_.size());
    return {spans_.data() + concept_first_[c],
            concept_first_[c + 1] - concept_first_[c]};
  }

  /// The global lexicographic rank of each of `c`'s addresses, parallel
  /// to spans(c). Ranks are a permutation of [0, num_addresses): every
  /// address resolves to exactly one concept, so no two pool entries
  /// are equal and the order is strict. Sorting any subset of spans by
  /// rank therefore reproduces the global Dewey-lexicographic order —
  /// DRC's document-at-a-time merge sorts these u32s instead of
  /// comparing component strings.
  std::span<const std::uint32_t> ranks(ConceptId c) const {
    ECDR_DCHECK_LT(c + 1, concept_first_.size());
    return {span_ranks_.data() + concept_first_[c],
            concept_first_[c + 1] - concept_first_[c]};
  }

  /// rank_lcp()[r] is the length of the longest common prefix between
  /// the addresses of global rank r-1 and r (rank_lcp()[0] == 0). By
  /// the standard sorted-order property, the LCP of any two addresses
  /// with ranks ra < rb is min(rank_lcp()[ra+1 .. rb]) — a small
  /// window minimum instead of a component-wise compare. This is what
  /// lets the rank-sorted D-Radix merge resume each insertion without
  /// ever re-reading the previous address.
  std::span<const std::uint32_t> rank_lcp() const { return rank_lcp_; }

  /// The components of one address.
  std::span<const std::uint32_t> components(AddressSpan span) const {
    ECDR_DCHECK_LE(span.offset + span.length, components_.size());
    return {components_.data() + span.offset, span.length};
  }

  /// Base of the component arena, for callers that turn spans into raw
  /// {pointer,length} views (the D-Radix edge labels).
  const std::uint32_t* component_data() const { return components_.data(); }

  std::uint64_t num_addresses() const { return spans_.size(); }
  std::uint64_t num_components() const { return components_.size(); }

 private:
  friend class AddressEnumerator;

  void Clear() {
    components_.clear();
    components_.shrink_to_fit();
    spans_.clear();
    spans_.shrink_to_fit();
    concept_first_.clear();
    concept_first_.shrink_to_fit();
    span_ranks_.clear();
    span_ranks_.shrink_to_fit();
    rank_lcp_.clear();
    rank_lcp_.shrink_to_fit();
  }

  /// Fills span_ranks_ and rank_lcp_ from spans_ (one global sort; at
  /// PrecomputeAll-time only, never on a distance path).
  void BuildRanks();

  std::vector<std::uint32_t> components_;
  std::vector<AddressSpan> spans_;
  std::vector<std::uint32_t> concept_first_;  // Size num_concepts + 1.
  std::vector<std::uint32_t> span_ranks_;     // Parallel to spans_.
  std::vector<std::uint32_t> rank_lcp_;       // Indexed by rank.
};

namespace simd {

/// The kernel families, narrowest to widest. Scalar is the portable
/// word-wide code every other variant must agree with bit for bit.
enum class Level : int { kScalar = 0, kSse2 = 1, kAvx2 = 2 };

/// The level the kernels currently dispatch to.
Level ActiveLevel();

const char* LevelName(Level level);

/// Re-points the dispatch table at min(level, what the CPU supports).
/// For tests and benches; do not race with in-flight kernel calls.
void ForceLevel(Level level);

/// Restores the startup choice: ECDR_SIMD (off|scalar|sse2|avx2|auto)
/// capped by CPU detection.
void ResetLevel();

}  // namespace simd

/// The CSR rank-gather kernel: keys[i] = (ranks[i] << 32) | (first + i)
/// for i in [0, count). The high half orders keys globally by address
/// rank; the low half indexes the caller's gathered span array, so one
/// u64 radix sort yields the insertion order and the gather permutation
/// at once. `out` must hold `count` entries.
void BuildSortKeys(const std::uint32_t* ranks, std::uint32_t first,
                   std::size_t count, std::uint64_t* out);

}  // namespace ecdr::ontology

#endif  // ECDR_ONTOLOGY_FLAT_DEWEY_POOL_H_
